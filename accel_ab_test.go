package mobisense

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	ifield "mobisense/internal/field"
)

// TestAccelSweepRecordsByteIdentical is the acceptance check for the
// geometry acceleration layer: an obstacle-heavy sweep stored with the
// acceleration structure enabled must produce byte-identical manifest and
// records files to the same sweep on the retained brute-force paths. The
// accelerated kernels are exact pruning transformations, so any byte of
// difference is a bug, not noise.
func TestAccelSweepRecordsByteIdentical(t *testing.T) {
	cfg := sweepConfig()
	cfg.Duration = 60
	sweep := Sweep{
		Base:      cfg,
		Schemes:   []Scheme{SchemeCPVF, SchemeFLOOR},
		Scenarios: []string{"narrow-door", "random-obstacles"},
		Ns:        []int{25},
		Repeats:   2,
		Seed:      7,
	}
	dirs := map[bool]string{
		true:  filepath.Join(t.TempDir(), "accel"),
		false: filepath.Join(t.TempDir(), "brute"),
	}
	for _, accel := range []bool{true, false} {
		prev := ifield.SetAccelEnabled(accel)
		_, err := sweep.Run(context.Background(), BatchOptions{
			Workers: 4,
			Store:   &Store{Dir: dirs[accel]},
		})
		ifield.SetAccelEnabled(prev)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, file := range []string{"manifest.json", "records.jsonl"} {
		a, err := os.ReadFile(filepath.Join(dirs[true], file))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirs[false], file))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between accelerated and brute-force sweeps", file)
		}
	}
	if len(bytesOrEmpty(t, dirs[true], "records.jsonl")) == 0 {
		t.Fatal("records.jsonl is empty")
	}
}
