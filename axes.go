package mobisense

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// The axis system generalizes sweeps beyond scheme × scenario × N: any
// config parameter — communication range, sensing range, speed, a scheme
// option like FLOOR's invitation TTL or CPVF's oscillation factor δ —
// becomes a first-class sweep dimension. The paper's evaluation is exactly
// this shape: Figures 9–13 and Table 1 hold the deployment fixed and vary
// one or two knobs, which previously lived as hand-built config lists.
//
// An axis is a name, an ordered value list, and a setter that applies one
// value to a Config. Sweep.Expand folds every axis into the cross-product;
// run specs, store records, aggregates and the HTTP API all carry the
// per-run axis values, so varying rc can never silently merge two
// different computations into one aggregate row.

// ParamAxis is one generalized sweep dimension.
type ParamAxis struct {
	// Name identifies the axis in specs, records, aggregates and reports.
	Name string
	// Values is the ordered list of axis values to expand.
	Values []float64
	// Set applies one value to a run's config. It runs after the scheme,
	// scenario field, N and seed are assigned, so setters may depend on
	// them (e.g. a TTL expressed as a fraction of N, or a scheme-specific
	// measurement protocol). Setters must not mutate structs shared with
	// the base config — copy option structs before writing.
	Set func(cfg *Config, v float64)
}

func (a ParamAxis) validate() error {
	if a.Name == "" {
		return fmt.Errorf("mobisense: axis has no name")
	}
	if len(a.Values) == 0 {
		return fmt.Errorf("mobisense: axis %q has no values", a.Name)
	}
	if a.Set == nil {
		return fmt.Errorf("mobisense: axis %q has no setter", a.Name)
	}
	return nil
}

// AxisValue is one axis assignment of an expanded run, carried on
// RunSpec, store records and aggregates.
type AxisValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// AxisSpec is the serializable form of a built-in axis — the wire shape
// used by the server's SweepRequest (custom setters don't serialize).
// Resolve one with BuildAxis.
type AxisSpec struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// NewAxis defines a custom axis — the extension point for parameters the
// built-ins don't cover (oscillation modes, TTLs as a fraction of N,
// coupled rc/rs ratios, ...).
func NewAxis(name string, set func(cfg *Config, v float64), values ...float64) ParamAxis {
	return ParamAxis{Name: name, Values: values, Set: set}
}

// builtinAxes maps the axis names accepted by BuildAxis (and therefore the
// -axis CLI flag and the HTTP SweepRequest) to their setters. Option-struct
// setters copy before writing so the shared base config stays untouched.
var builtinAxes = map[string]func(cfg *Config, v float64){
	"rc":    func(cfg *Config, v float64) { cfg.Rc = v },
	"rs":    func(cfg *Config, v float64) { cfg.Rs = v },
	"speed": func(cfg *Config, v float64) { cfg.Speed = v },
	"cpvf.delta": func(cfg *Config, v float64) {
		o := CPVFOptions{}
		if cfg.CPVF != nil {
			o = *cfg.CPVF
		}
		o.Delta = v
		cfg.CPVF = &o
	},
	"floor.ttl": func(cfg *Config, v float64) {
		o := FloorOptions{}
		if cfg.Floor != nil {
			o = *cfg.Floor
		}
		o.TTL = int(v)
		cfg.Floor = &o
	},
}

// AxisNames lists the built-in axis names BuildAxis accepts, sorted.
func AxisNames() []string {
	names := make([]string, 0, len(builtinAxes))
	for name := range builtinAxes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// AxisRc, AxisRs and AxisSpeed sweep the communication range rc, sensing
// range rs and maximum speed V.
func AxisRc(values ...float64) ParamAxis    { return mustBuildAxis("rc", values) }
func AxisRs(values ...float64) ParamAxis    { return mustBuildAxis("rs", values) }
func AxisSpeed(values ...float64) ParamAxis { return mustBuildAxis("speed", values) }

// AxisCPVFDelta sweeps CPVF's oscillation-avoidance factor δ (§6.3).
func AxisCPVFDelta(values ...float64) ParamAxis { return mustBuildAxis("cpvf.delta", values) }

// AxisFloorTTL sweeps FLOOR's invitation random-walk TTL in hops (§5.2).
func AxisFloorTTL(values ...float64) ParamAxis { return mustBuildAxis("floor.ttl", values) }

func mustBuildAxis(name string, values []float64) ParamAxis {
	ax, err := BuildAxis(name, values...)
	if err != nil {
		panic(err)
	}
	return ax
}

// BuildAxis resolves a built-in axis by name over the given values — the
// registry behind the CLI's -axis flag and the server's SweepRequest axes.
func BuildAxis(name string, values ...float64) (ParamAxis, error) {
	set, ok := builtinAxes[name]
	if !ok {
		return ParamAxis{}, fmt.Errorf("mobisense: unknown axis %q (have %s)", name, strings.Join(AxisNames(), ", "))
	}
	return ParamAxis{Name: name, Values: values, Set: set}, nil
}

// ParseAxis parses the CLI axis syntax "name=v1,v2,..." into a built-in
// axis.
func ParseAxis(spec string) (ParamAxis, error) {
	name, list, ok := strings.Cut(spec, "=")
	if !ok || name == "" || list == "" {
		return ParamAxis{}, fmt.Errorf("mobisense: bad axis %q: want \"name=v1,v2,...\", e.g. rc=30,60", spec)
	}
	parts := strings.Split(list, ",")
	values := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return ParamAxis{}, fmt.Errorf("mobisense: bad axis %q: value %q is not a number", spec, p)
		}
		values[i] = v
	}
	return BuildAxis(name, values...)
}

// formatAxisValue renders an axis value compactly and losslessly for keys,
// tables and CSV columns.
func formatAxisValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// axisTupleKey condenses a run's axis assignments into a comparable string
// for aggregate grouping: two runs land in the same aggregate row only
// when every axis value matches. Runs without axes share the empty key,
// preserving the pre-axis grouping.
func axisTupleKey(axes []AxisValue) string {
	if len(axes) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, a := range axes {
		sb.WriteString(a.Name)
		sb.WriteByte('=')
		sb.WriteString(formatAxisValue(a.Value))
		sb.WriteByte(';')
	}
	return sb.String()
}
