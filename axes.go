package mobisense

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strconv"
	"strings"

	"mobisense/internal/field"
)

// The axis system generalizes sweeps beyond scheme × scenario × N: any
// config parameter — communication range, sensing range, speed, a scheme
// option like FLOOR's invitation TTL or CPVF's oscillation factor δ, and
// since the field-spec refactor the environment itself (obstacle count,
// obstacle density, base-station placement) — becomes a first-class sweep
// dimension. The paper's evaluation is exactly this shape: Figures 9–13
// and Table 1 hold the deployment fixed and vary one or two knobs, which
// previously lived as hand-built config lists.
//
// An axis is a name, an ordered value list, and a setter that applies one
// value to a Config. Sweep.Expand folds every axis into the cross-product;
// run specs, store records, aggregates and the HTTP API all carry the
// per-run axis values, so varying rc can never silently merge two
// different computations into one aggregate row.

// ParamAxis is one generalized sweep dimension.
type ParamAxis struct {
	// Name identifies the axis in specs, records, aggregates and reports.
	Name string
	// Values is the ordered list of axis values to expand.
	Values []float64
	// Integer marks an axis whose values must be whole numbers (hop
	// counts, obstacle counts, round counts). Validation rejects
	// fractional values up front — the setter would otherwise truncate
	// silently while records carried the fractional value — and setters
	// receive values that round-trip exactly through float64.
	Integer bool
	// Set applies one value to a run's config. It runs after the scheme,
	// scenario field, N and seed are assigned, so setters may depend on
	// them (e.g. a TTL expressed as a fraction of N, or a field rebuilt
	// around a moved base station). Setters must not mutate structs shared
	// with the base config — copy option structs before writing.
	Set func(cfg *Config, v float64)
	// Strings is the ordered value list of a categorical (string-valued)
	// axis — oscillation modes, strategy names, backend choices. Mutually
	// exclusive with Values; categorical axes use SetString instead of
	// Set and flow through records, aggregates, report columns and the
	// serve API exactly like numeric ones.
	Strings []string
	// SetString applies one categorical value to a run's config; required
	// when Strings is set, with the same copy-before-write rules as Set.
	SetString func(cfg *Config, v string)
}

// categorical reports whether the axis is string-valued.
func (a ParamAxis) categorical() bool { return len(a.Strings) > 0 }

// size returns the number of values the axis expands to.
func (a ParamAxis) size() int {
	if a.categorical() {
		return len(a.Strings)
	}
	return len(a.Values)
}

func (a ParamAxis) validate() error {
	if a.Name == "" {
		return fmt.Errorf("mobisense: axis has no name")
	}
	if len(a.Values) > 0 && len(a.Strings) > 0 {
		return fmt.Errorf("mobisense: axis %q has both numeric and string values", a.Name)
	}
	if a.categorical() {
		if a.SetString == nil {
			return fmt.Errorf("mobisense: string-valued axis %q has no string setter", a.Name)
		}
		if a.Integer {
			return fmt.Errorf("mobisense: axis %q cannot be both integer- and string-valued", a.Name)
		}
		for _, s := range a.Strings {
			if s == "" {
				return fmt.Errorf("mobisense: string-valued axis %q has an empty value", a.Name)
			}
		}
		return nil
	}
	if len(a.Values) == 0 {
		return fmt.Errorf("mobisense: axis %q has no values", a.Name)
	}
	if a.Set == nil {
		return fmt.Errorf("mobisense: axis %q has no setter", a.Name)
	}
	if a.Integer {
		for _, v := range a.Values {
			if math.Trunc(v) != v {
				return fmt.Errorf("mobisense: axis %q is integer-valued but has value %v", a.Name, v)
			}
		}
	}
	return nil
}

// AxisValue is one axis assignment of an expanded run, carried on
// RunSpec, store records and aggregates. Numeric axes fill Value;
// categorical axes fill Str (a non-empty Str wins when rendering).
type AxisValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Str   string  `json:"str,omitempty"`
}

// ValueString renders the assignment's value — the categorical string,
// or the compact lossless numeric form.
func (a AxisValue) ValueString() string {
	if a.Str != "" {
		return a.Str
	}
	return formatAxisValue(a.Value)
}

// AxisSpec is the serializable form of a built-in axis — the wire shape
// used by the server's SweepRequest (custom setters don't serialize).
// Exactly one of Values and Strings is set; resolve with BuildAxis or
// BuildStringAxis.
type AxisSpec struct {
	Name    string    `json:"name"`
	Values  []float64 `json:"values,omitempty"`
	Strings []string  `json:"strings,omitempty"`
}

// NewAxis defines a custom axis — the extension point for parameters the
// built-ins don't cover (oscillation modes, TTLs as a fraction of N,
// coupled rc/rs ratios, ...). Set ParamAxis.Integer afterwards for
// whole-number axes.
func NewAxis(name string, set func(cfg *Config, v float64), values ...float64) ParamAxis {
	return ParamAxis{Name: name, Values: values, Set: set}
}

// NewStringAxis defines a custom categorical axis over string values.
func NewStringAxis(name string, set func(cfg *Config, v string), values ...string) ParamAxis {
	return ParamAxis{Name: name, Strings: values, SetString: set}
}

// builtinAxis is one entry of the axis registry behind BuildAxis (and
// therefore the -axis CLI flag and the HTTP SweepRequest). Numeric axes
// fill set; categorical axes fill setStr (plus the allowed value list
// used for up-front validation).
type builtinAxis struct {
	set     func(cfg *Config, v float64)
	setStr  func(cfg *Config, v string)
	allowed []string
	integer bool
	desc    string
}

// builtinAxes maps axis names to their setters. Option-struct setters
// copy before writing so the shared base config stays untouched;
// field-rebuilding setters go through the spec layer and the shared
// build cache.
var builtinAxes = map[string]builtinAxis{
	"rc":    {set: func(cfg *Config, v float64) { cfg.Rc = v }, desc: "communication range rc (m)"},
	"rs":    {set: func(cfg *Config, v float64) { cfg.Rs = v }, desc: "sensing range rs (m)"},
	"speed": {set: func(cfg *Config, v float64) { cfg.Speed = v }, desc: "maximum speed V (m/s)"},
	"cpvf.delta": {
		set: func(cfg *Config, v float64) {
			o := CPVFOptions{}
			if cfg.CPVF != nil {
				o = *cfg.CPVF
			}
			o.Delta = v
			cfg.CPVF = &o
		},
		desc: "CPVF oscillation-avoidance factor δ (§6.3)",
	},
	"cpvf.osc": {
		setStr: func(cfg *Config, v string) {
			o := CPVFOptions{}
			if cfg.CPVF != nil {
				o = *cfg.CPVF
			}
			o.Oscillation = v
			cfg.CPVF = &o
		},
		allowed: []string{"none", "one-step", "two-step"},
		desc:    "CPVF oscillation-avoidance mode (§6.3): none, one-step or two-step",
	},
	"floor.ttl": {
		set: func(cfg *Config, v float64) {
			o := FloorOptions{}
			if cfg.Floor != nil {
				o = *cfg.Floor
			}
			o.TTL = int(v)
			cfg.Floor = &o
		},
		integer: true,
		desc:    "FLOOR invitation random-walk TTL in hops (§5.2)",
	},
	"field.obstacles": {
		set: func(cfg *Config, v float64) {
			regenerateField(cfg, func(spec *FieldSpec) {
				g := generatorOf(spec)
				g.MinCount, g.MaxCount = int(v), int(v)
				spec.Generator = g
			})
		},
		integer: true,
		desc:    "exact random-obstacle count; regenerates the field per axis point",
	},
	"field.density": {
		set: func(cfg *Config, v float64) {
			regenerateField(cfg, func(spec *FieldSpec) {
				g := generatorOf(spec)
				b := spec.Bounds
				w, h := b.MaxX-b.MinX, b.MaxY-b.MinY
				// Size the count from the side range the generator
				// actually samples (clamped to the field), or small
				// fields would silently undershoot the requested density.
				minSide, maxSide := g.ClampedSides(w, h)
				mean := (minSide + maxSide) / 2
				n := 0
				if mean > 0 {
					n = int(math.Round(v * w * h / (mean * mean)))
				}
				if n < 0 {
					n = 0
				}
				g.MinCount, g.MaxCount = n, n
				spec.Generator = g
			})
		},
		desc: "target obstacle area fraction; picks a random-obstacle count to match and regenerates the field",
	},
	"field.ref": {
		set: func(cfg *Config, v float64) {
			regenerateField(cfg, func(spec *FieldSpec) {
				b := spec.Bounds
				spec.Reference = &PointSpec{
					X: b.MinX + v*(b.MaxX-b.MinX),
					Y: b.MinY + v*(b.MaxY-b.MinY),
				}
			})
		},
		desc: "base-station placement: fraction 0..1 along the field diagonal from the lower-left corner",
	},
}

// generatorOf returns a copy of the spec's generator, or the §6.4
// default side range when the field has none (fixed-geometry fields gain
// generated obstacles on top of their fixed ones). Counts are always
// overwritten by the caller.
func generatorOf(spec *FieldSpec) *GeneratorSpec {
	if spec.Generator != nil {
		g := *spec.Generator
		return &g
	}
	def := field.DefaultRandomObstacleConfig()
	return &GeneratorSpec{MinSide: def.MinSide, MaxSide: def.MaxSide, KeepClear: def.KeepClear}
}

// regenerateField rebuilds cfg.Field from a mutated copy of its spec,
// seeded by the run's environment seed (assigned per (scenario, repeat)
// slot, independent of the scheme, N and the other axes) so every run
// of one comparison point deploys into the same regenerated
// environment. Build failures — an unreachable reference point,
// obstacles that partition the field — are deferred to the run's
// validation, failing that run with a clear error instead of aborting
// the whole sweep expansion.
func regenerateField(cfg *Config, mutate func(*FieldSpec)) {
	if cfg.Field.internal() == nil {
		cfg.specErr = fmt.Errorf("mobisense: field axis applied to a config with no field")
		return
	}
	spec := cfg.Field.Spec()
	mutate(&spec)
	seed := cfg.fieldSeed
	if seed == 0 {
		seed = cfg.Seed
	}
	f, err := BuildFieldSpec(spec, seed)
	if err != nil {
		cfg.specErr = fmt.Errorf("mobisense: field axis: %w", err)
		return
	}
	cfg.Field = f
}

// AxisNames lists the built-in axis names BuildAxis accepts, sorted.
func AxisNames() []string {
	names := make([]string, 0, len(builtinAxes))
	for name := range builtinAxes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// AxisRc, AxisRs and AxisSpeed sweep the communication range rc, sensing
// range rs and maximum speed V.
func AxisRc(values ...float64) ParamAxis    { return mustBuildAxis("rc", values) }
func AxisRs(values ...float64) ParamAxis    { return mustBuildAxis("rs", values) }
func AxisSpeed(values ...float64) ParamAxis { return mustBuildAxis("speed", values) }

// AxisCPVFDelta sweeps CPVF's oscillation-avoidance factor δ (§6.3).
func AxisCPVFDelta(values ...float64) ParamAxis { return mustBuildAxis("cpvf.delta", values) }

// AxisFloorTTL sweeps FLOOR's invitation random-walk TTL in hops (§5.2).
func AxisFloorTTL(values ...float64) ParamAxis { return mustBuildAxis("floor.ttl", values) }

// AxisFieldObstacles sweeps the exact random-obstacle count of the run's
// field, regenerating it per axis point (seed-paired across schemes).
func AxisFieldObstacles(values ...float64) ParamAxis { return mustBuildAxis("field.obstacles", values) }

// AxisFieldDensity sweeps the target obstacle area fraction of the run's
// field.
func AxisFieldDensity(values ...float64) ParamAxis { return mustBuildAxis("field.density", values) }

// AxisFieldRef sweeps the base-station placement as a fraction 0..1
// along the field diagonal, rebuilding the field around the moved
// reference point.
func AxisFieldRef(values ...float64) ParamAxis { return mustBuildAxis("field.ref", values) }

func mustBuildAxis(name string, values []float64) ParamAxis {
	ax, err := BuildAxis(name, values...)
	if err != nil {
		panic(err)
	}
	return ax
}

// BuildAxis resolves a built-in axis by name over the given values — the
// registry behind the CLI's -axis flag and the server's SweepRequest
// axes. Integer-valued axes reject fractional values here, before any
// run executes.
func BuildAxis(name string, values ...float64) (ParamAxis, error) {
	def, ok := builtinAxes[name]
	if !ok {
		return ParamAxis{}, fmt.Errorf("mobisense: unknown axis %q (have %s)", name, strings.Join(AxisNames(), ", "))
	}
	if def.setStr != nil {
		return ParamAxis{}, fmt.Errorf("mobisense: axis %q is string-valued; use BuildStringAxis", name)
	}
	ax := ParamAxis{Name: name, Values: values, Integer: def.integer, Set: def.set}
	if len(values) > 0 {
		if err := ax.validate(); err != nil {
			return ParamAxis{}, err
		}
	}
	return ax, nil
}

// BuildStringAxis resolves a built-in categorical axis by name over the
// given string values, validating each against the axis's allowed set.
func BuildStringAxis(name string, values ...string) (ParamAxis, error) {
	def, ok := builtinAxes[name]
	if !ok {
		return ParamAxis{}, fmt.Errorf("mobisense: unknown axis %q (have %s)", name, strings.Join(AxisNames(), ", "))
	}
	if def.setStr == nil {
		return ParamAxis{}, fmt.Errorf("mobisense: axis %q is numeric; use BuildAxis", name)
	}
	for _, v := range values {
		if len(def.allowed) > 0 && !slices.Contains(def.allowed, v) {
			return ParamAxis{}, fmt.Errorf("mobisense: axis %q has no value %q (have %s)", name, v, strings.Join(def.allowed, ", "))
		}
	}
	ax := ParamAxis{Name: name, Strings: values, SetString: def.setStr}
	if len(values) > 0 {
		if err := ax.validate(); err != nil {
			return ParamAxis{}, err
		}
	}
	return ax, nil
}

// AxisIsString reports whether the named built-in axis is categorical
// (string-valued); its allowed values are AxisStringValues.
func AxisIsString(name string) bool { return builtinAxes[name].setStr != nil }

// AxisStringValues returns the allowed values of a built-in categorical
// axis (nil for numeric or unknown names).
func AxisStringValues(name string) []string {
	return slices.Clone(builtinAxes[name].allowed)
}

// AxisIsInteger reports whether the named built-in axis takes integer
// values (and "" description for unknown names).
func AxisIsInteger(name string) bool { return builtinAxes[name].integer }

// AxisDescription returns the one-line description of a built-in axis.
func AxisDescription(name string) string { return builtinAxes[name].desc }

// ParseAxis parses the CLI axis syntax "name=v1,v2,..." into a built-in
// axis. Integer-valued axes (floor.ttl, field.obstacles) reject
// fractional values; categorical axes (cpvf.osc) take their values as
// strings, e.g. "cpvf.osc=none,two-step".
func ParseAxis(spec string) (ParamAxis, error) {
	name, list, ok := strings.Cut(spec, "=")
	if !ok || name == "" || list == "" {
		return ParamAxis{}, fmt.Errorf("mobisense: bad axis %q: want \"name=v1,v2,...\", e.g. rc=30,60", spec)
	}
	parts := strings.Split(list, ",")
	if AxisIsString(name) {
		values := make([]string, len(parts))
		for i, p := range parts {
			values[i] = strings.TrimSpace(p)
		}
		return BuildStringAxis(name, values...)
	}
	values := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return ParamAxis{}, fmt.Errorf("mobisense: bad axis %q: value %q is not a number", spec, p)
		}
		values[i] = v
	}
	return BuildAxis(name, values...)
}

// formatAxisValue renders an axis value compactly and losslessly for keys,
// tables and CSV columns (integer axis values render without a decimal
// point).
func formatAxisValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// axisTupleKey condenses a run's axis assignments into a comparable string
// for aggregate grouping: two runs land in the same aggregate row only
// when every axis value matches. Runs without axes share the empty key,
// preserving the pre-axis grouping.
func axisTupleKey(axes []AxisValue) string {
	if len(axes) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, a := range axes {
		sb.WriteString(a.Name)
		sb.WriteByte('=')
		sb.WriteString(a.ValueString())
		sb.WriteByte(';')
	}
	return sb.String()
}
