package mobisense

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"
)

// axisSweep is a small two-axis sweep used across the axis tests.
func axisSweep() Sweep {
	return Sweep{
		Base:    sweepConfig(),
		Schemes: []Scheme{SchemeCPVF, SchemeFLOOR},
		Axes: []ParamAxis{
			AxisRc(50, 60),
			AxisFloorTTL(4, 8),
		},
		Repeats: 2,
		Seed:    42,
	}
}

func TestAxisExpansion(t *testing.T) {
	specs, err := axisSweep().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2*2*2*2 {
		t.Fatalf("expanded %d specs, want %d", len(specs), 2*2*2*2)
	}
	for _, sp := range specs {
		if len(sp.Axes) != 2 {
			t.Fatalf("run %d carries %d axis values, want 2", sp.Index, len(sp.Axes))
		}
		rc, ttl := sp.Axes[0], sp.Axes[1]
		if rc.Name != "rc" || ttl.Name != "floor.ttl" {
			t.Fatalf("run %d axes = %+v", sp.Index, sp.Axes)
		}
		// The setters must have applied the values to the config.
		if sp.Config.Rc != rc.Value {
			t.Errorf("run %d config rc = %g, axis says %g", sp.Index, sp.Config.Rc, rc.Value)
		}
		if sp.Config.Floor == nil || sp.Config.Floor.TTL != int(ttl.Value) {
			t.Errorf("run %d config TTL = %+v, axis says %g", sp.Index, sp.Config.Floor, ttl.Value)
		}
	}
	// The last axis is innermost: the first two specs differ in TTL only.
	if specs[0].Axes[0].Value != specs[1].Axes[0].Value ||
		specs[0].Axes[1].Value == specs[1].Axes[1].Value {
		t.Errorf("axis nesting wrong: spec0 %+v, spec1 %+v", specs[0].Axes, specs[1].Axes)
	}
	// Option-struct setters copy before writing: the expansion must not
	// reach back into the shared base config.
	s := axisSweep()
	s.Base.Floor = &FloorOptions{TTL: 99}
	specs2, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if s.Base.Floor.TTL != 99 {
		t.Errorf("axis setter mutated the shared base config: TTL = %d", s.Base.Floor.TTL)
	}
	if specs2[0].Config.Floor.TTL != 4 {
		t.Errorf("axis value not applied over base options: TTL = %d", specs2[0].Config.Floor.TTL)
	}
}

// TestAxisSeedsPairSchemes: axis indices enter seed derivation (distinct
// axis points get distinct seeds) while the scheme stays excluded (paired
// comparisons).
func TestAxisSeedsPairSchemes(t *testing.T) {
	specs, err := axisSweep().Expand()
	if err != nil {
		t.Fatal(err)
	}
	type point struct {
		repeat int
		axes   string
	}
	byPoint := map[point]uint64{}
	seen := map[uint64]string{}
	for _, sp := range specs {
		p := point{sp.Repeat, axisTupleKey(sp.Axes)}
		if prev, ok := byPoint[p]; ok {
			if prev != sp.Seed {
				t.Errorf("point %+v seeds differ across schemes: %d vs %d", p, prev, sp.Seed)
			}
			continue
		}
		byPoint[p] = sp.Seed
		if at, dup := seen[sp.Seed]; dup {
			t.Errorf("axis points %q and %+v share seed %d", at, p, sp.Seed)
		}
		seen[sp.Seed] = p.axes
	}
	// An axis-free sweep derives the exact pre-axis seeds.
	withAxes := axisSweep()
	withAxes.Axes = nil
	a, err := withAxes.Expand()
	if err != nil {
		t.Fatal(err)
	}
	pre := Sweep{Base: withAxes.Base, Schemes: withAxes.Schemes, Repeats: 2, Seed: 42}
	b, err := pre.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Seed != b[i].Seed {
			t.Fatalf("axis-free sweep changed seed derivation at run %d", i)
		}
	}
}

func TestFixedSeedSweep(t *testing.T) {
	s := axisSweep()
	s.FixedSeed = true
	s.Repeats = 1
	specs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		if sp.Seed != 42 {
			t.Fatalf("fixed-seed run %d got derived seed %d", sp.Index, sp.Seed)
		}
	}
}

// TestAggregateSplitsOnAxisValues is the regression test for the old
// (scheme, scenario, N) aggregation key: two rc values must never merge
// into one aggregate row.
func TestAggregateSplitsOnAxisValues(t *testing.T) {
	s := Sweep{
		Base:    sweepConfig(),
		Axes:    []ParamAxis{AxisRc(40, 60)},
		Repeats: 2,
		Seed:    7,
	}
	sr, err := s.Run(context.Background(), BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Aggregates) != 2 {
		t.Fatalf("got %d aggregate rows for 2 rc values, want 2 (rc runs merged)", len(sr.Aggregates))
	}
	for i, want := range []float64{40, 60} {
		a := sr.Aggregates[i]
		if a.Runs != 2 {
			t.Errorf("aggregate %d has %d runs, want 2", i, a.Runs)
		}
		if len(a.Axes) != 1 || a.Axes[0].Name != "rc" || a.Axes[0].Value != want {
			t.Errorf("aggregate %d axes = %+v, want rc=%g", i, a.Axes, want)
		}
	}
	if reflect.DeepEqual(sr.Aggregates[0].Coverage, sr.Aggregates[1].Coverage) {
		t.Error("rc=40 and rc=60 coverage summaries are identical; the axis was not applied")
	}
}

// TestAxisStoreRoundTrip: axis sweeps persist, resume and shard-merge like
// every other sweep, with axis values carried in records and aggregates.
func TestAxisStoreRoundTrip(t *testing.T) {
	s := axisSweep()
	base := t.TempDir()
	full := filepath.Join(base, "full")
	want, err := s.Run(context.Background(), BatchOptions{Store: &Store{Dir: full}})
	if err != nil {
		t.Fatal(err)
	}

	// Resume of a complete axis store executes nothing.
	executed := 0
	resumed, err := s.Run(context.Background(), BatchOptions{
		Store:      &Store{Dir: full, Resume: true},
		OnProgress: func(int, int) { executed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if executed != 0 {
		t.Errorf("resume executed %d runs, want 0", executed)
	}
	if !reflect.DeepEqual(resumed.Aggregates, want.Aggregates) {
		t.Error("resumed axis aggregates differ from live run")
	}

	// Shards merge to the unsharded aggregates, axes intact.
	shardDirs := []string{filepath.Join(base, "s0"), filepath.Join(base, "s1")}
	for i, dir := range shardDirs {
		if _, err := s.Run(context.Background(), BatchOptions{
			Store: &Store{Dir: dir},
			Shard: Shard{Index: i, Count: 2},
		}); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := LoadStores(shardDirs...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Aggregates, want.Aggregates) {
		t.Errorf("merged axis aggregates differ:\nmerged: %+v\nwant:   %+v",
			merged.Aggregates, want.Aggregates)
	}
	for _, br := range merged.Runs {
		if len(br.Spec.Axes) != 2 {
			t.Fatalf("loaded run %d lost its axes: %+v", br.Spec.Index, br.Spec.Axes)
		}
	}

	// Resuming with different axis values is a different sweep.
	other := s
	other.Axes = []ParamAxis{AxisRc(50, 70), AxisFloorTTL(4, 8)}
	if _, err := other.Run(context.Background(), BatchOptions{Store: &Store{Dir: full, Resume: true}}); err == nil {
		t.Error("resuming with different axis values should error")
	}
	// ... and so is the same store definition with FixedSeed flipped.
	fixed := s
	fixed.FixedSeed = true
	if _, err := fixed.Run(context.Background(), BatchOptions{Store: &Store{Dir: full, Resume: true}}); err == nil {
		t.Error("resuming with FixedSeed flipped should error")
	}
}

func TestAxisValidation(t *testing.T) {
	base := sweepConfig()
	for name, axes := range map[string][]ParamAxis{
		"empty name":     {NewAxis("", func(*Config, float64) {}, 1)},
		"no values":      {AxisRc()},
		"nil setter":     {{Name: "rc", Values: []float64{1}}},
		"duplicate name": {AxisRc(40), AxisRc(60)},
	} {
		if _, err := (Sweep{Base: base, Axes: axes}).Expand(); err == nil {
			t.Errorf("sweep with %s axis should error", name)
		}
	}
	if _, err := BuildAxis("bogus", 1, 2); err == nil {
		t.Error("unknown built-in axis should error")
	}
	names := AxisNames()
	want := []string{"cpvf.delta", "floor.ttl", "rc", "rs", "speed"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("AxisNames() = %v, want %v", names, want)
	}
}

func TestParseAxis(t *testing.T) {
	ax, err := ParseAxis("rc=30,45.5,60")
	if err != nil {
		t.Fatal(err)
	}
	if ax.Name != "rc" || !reflect.DeepEqual(ax.Values, []float64{30, 45.5, 60}) {
		t.Errorf("ParseAxis = %q %v", ax.Name, ax.Values)
	}
	if ax.Set == nil {
		t.Error("parsed axis has no setter")
	}
	for _, bad := range []string{"", "rc", "rc=", "=30", "rc=a,b", "bogus=1"} {
		if _, err := ParseAxis(bad); err == nil {
			t.Errorf("ParseAxis(%q) should error", bad)
		}
	}
}

// TestSpeedAndDeltaAxes applies the remaining built-in setters.
func TestSpeedAndDeltaAxes(t *testing.T) {
	s := Sweep{
		Base: sweepConfig(),
		Axes: []ParamAxis{AxisSpeed(1, 2), AxisRs(30, 40), AxisCPVFDelta(2, 8)},
	}
	specs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 8 {
		t.Fatalf("expanded %d specs, want 8", len(specs))
	}
	last := specs[7].Config
	if last.Speed != 2 || last.Rs != 40 || last.CPVF == nil || last.CPVF.Delta != 8 {
		t.Errorf("last combo config = speed %g rs %g cpvf %+v", last.Speed, last.Rs, last.CPVF)
	}
}
