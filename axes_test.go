package mobisense

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
)

// axisSweep is a small two-axis sweep used across the axis tests.
func axisSweep() Sweep {
	return Sweep{
		Base:    sweepConfig(),
		Schemes: []Scheme{SchemeCPVF, SchemeFLOOR},
		Axes: []ParamAxis{
			AxisRc(50, 60),
			AxisFloorTTL(4, 8),
		},
		Repeats: 2,
		Seed:    42,
	}
}

func TestAxisExpansion(t *testing.T) {
	specs, err := axisSweep().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2*2*2*2 {
		t.Fatalf("expanded %d specs, want %d", len(specs), 2*2*2*2)
	}
	for _, sp := range specs {
		if len(sp.Axes) != 2 {
			t.Fatalf("run %d carries %d axis values, want 2", sp.Index, len(sp.Axes))
		}
		rc, ttl := sp.Axes[0], sp.Axes[1]
		if rc.Name != "rc" || ttl.Name != "floor.ttl" {
			t.Fatalf("run %d axes = %+v", sp.Index, sp.Axes)
		}
		// The setters must have applied the values to the config.
		if sp.Config.Rc != rc.Value {
			t.Errorf("run %d config rc = %g, axis says %g", sp.Index, sp.Config.Rc, rc.Value)
		}
		if sp.Config.Floor == nil || sp.Config.Floor.TTL != int(ttl.Value) {
			t.Errorf("run %d config TTL = %+v, axis says %g", sp.Index, sp.Config.Floor, ttl.Value)
		}
	}
	// The last axis is innermost: the first two specs differ in TTL only.
	if specs[0].Axes[0].Value != specs[1].Axes[0].Value ||
		specs[0].Axes[1].Value == specs[1].Axes[1].Value {
		t.Errorf("axis nesting wrong: spec0 %+v, spec1 %+v", specs[0].Axes, specs[1].Axes)
	}
	// Option-struct setters copy before writing: the expansion must not
	// reach back into the shared base config.
	s := axisSweep()
	s.Base.Floor = &FloorOptions{TTL: 99}
	specs2, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if s.Base.Floor.TTL != 99 {
		t.Errorf("axis setter mutated the shared base config: TTL = %d", s.Base.Floor.TTL)
	}
	if specs2[0].Config.Floor.TTL != 4 {
		t.Errorf("axis value not applied over base options: TTL = %d", specs2[0].Config.Floor.TTL)
	}
}

// TestAxisSeedsPairSchemes: axis indices enter seed derivation (distinct
// axis points get distinct seeds) while the scheme stays excluded (paired
// comparisons).
func TestAxisSeedsPairSchemes(t *testing.T) {
	specs, err := axisSweep().Expand()
	if err != nil {
		t.Fatal(err)
	}
	type point struct {
		repeat int
		axes   string
	}
	byPoint := map[point]uint64{}
	seen := map[uint64]string{}
	for _, sp := range specs {
		p := point{sp.Repeat, axisTupleKey(sp.Axes)}
		if prev, ok := byPoint[p]; ok {
			if prev != sp.Seed {
				t.Errorf("point %+v seeds differ across schemes: %d vs %d", p, prev, sp.Seed)
			}
			continue
		}
		byPoint[p] = sp.Seed
		if at, dup := seen[sp.Seed]; dup {
			t.Errorf("axis points %q and %+v share seed %d", at, p, sp.Seed)
		}
		seen[sp.Seed] = p.axes
	}
	// An axis-free sweep derives the exact pre-axis seeds.
	withAxes := axisSweep()
	withAxes.Axes = nil
	a, err := withAxes.Expand()
	if err != nil {
		t.Fatal(err)
	}
	pre := Sweep{Base: withAxes.Base, Schemes: withAxes.Schemes, Repeats: 2, Seed: 42}
	b, err := pre.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Seed != b[i].Seed {
			t.Fatalf("axis-free sweep changed seed derivation at run %d", i)
		}
	}
}

func TestFixedSeedSweep(t *testing.T) {
	s := axisSweep()
	s.FixedSeed = true
	s.Repeats = 1
	specs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		if sp.Seed != 42 {
			t.Fatalf("fixed-seed run %d got derived seed %d", sp.Index, sp.Seed)
		}
	}
}

// TestAggregateSplitsOnAxisValues is the regression test for the old
// (scheme, scenario, N) aggregation key: two rc values must never merge
// into one aggregate row.
func TestAggregateSplitsOnAxisValues(t *testing.T) {
	s := Sweep{
		Base:    sweepConfig(),
		Axes:    []ParamAxis{AxisRc(40, 60)},
		Repeats: 2,
		Seed:    7,
	}
	sr, err := s.Run(context.Background(), BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Aggregates) != 2 {
		t.Fatalf("got %d aggregate rows for 2 rc values, want 2 (rc runs merged)", len(sr.Aggregates))
	}
	for i, want := range []float64{40, 60} {
		a := sr.Aggregates[i]
		if a.Runs != 2 {
			t.Errorf("aggregate %d has %d runs, want 2", i, a.Runs)
		}
		if len(a.Axes) != 1 || a.Axes[0].Name != "rc" || a.Axes[0].Value != want {
			t.Errorf("aggregate %d axes = %+v, want rc=%g", i, a.Axes, want)
		}
	}
	if reflect.DeepEqual(sr.Aggregates[0].Coverage, sr.Aggregates[1].Coverage) {
		t.Error("rc=40 and rc=60 coverage summaries are identical; the axis was not applied")
	}
}

// TestAxisStoreRoundTrip: axis sweeps persist, resume and shard-merge like
// every other sweep, with axis values carried in records and aggregates.
func TestAxisStoreRoundTrip(t *testing.T) {
	s := axisSweep()
	base := t.TempDir()
	full := filepath.Join(base, "full")
	want, err := s.Run(context.Background(), BatchOptions{Store: &Store{Dir: full}})
	if err != nil {
		t.Fatal(err)
	}

	// Resume of a complete axis store executes nothing.
	executed := 0
	resumed, err := s.Run(context.Background(), BatchOptions{
		Store:      &Store{Dir: full, Resume: true},
		OnProgress: func(int, int) { executed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if executed != 0 {
		t.Errorf("resume executed %d runs, want 0", executed)
	}
	if !reflect.DeepEqual(resumed.Aggregates, want.Aggregates) {
		t.Error("resumed axis aggregates differ from live run")
	}

	// Shards merge to the unsharded aggregates, axes intact.
	shardDirs := []string{filepath.Join(base, "s0"), filepath.Join(base, "s1")}
	for i, dir := range shardDirs {
		if _, err := s.Run(context.Background(), BatchOptions{
			Store: &Store{Dir: dir},
			Shard: Shard{Index: i, Count: 2},
		}); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := LoadStores(shardDirs...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Aggregates, want.Aggregates) {
		t.Errorf("merged axis aggregates differ:\nmerged: %+v\nwant:   %+v",
			merged.Aggregates, want.Aggregates)
	}
	for _, br := range merged.Runs {
		if len(br.Spec.Axes) != 2 {
			t.Fatalf("loaded run %d lost its axes: %+v", br.Spec.Index, br.Spec.Axes)
		}
	}

	// Resuming with different axis values is a different sweep.
	other := s
	other.Axes = []ParamAxis{AxisRc(50, 70), AxisFloorTTL(4, 8)}
	if _, err := other.Run(context.Background(), BatchOptions{Store: &Store{Dir: full, Resume: true}}); err == nil {
		t.Error("resuming with different axis values should error")
	}
	// ... and so is the same store definition with FixedSeed flipped.
	fixed := s
	fixed.FixedSeed = true
	if _, err := fixed.Run(context.Background(), BatchOptions{Store: &Store{Dir: full, Resume: true}}); err == nil {
		t.Error("resuming with FixedSeed flipped should error")
	}
}

func TestAxisValidation(t *testing.T) {
	base := sweepConfig()
	for name, axes := range map[string][]ParamAxis{
		"empty name":     {NewAxis("", func(*Config, float64) {}, 1)},
		"no values":      {AxisRc()},
		"nil setter":     {{Name: "rc", Values: []float64{1}}},
		"duplicate name": {AxisRc(40), AxisRc(60)},
	} {
		if _, err := (Sweep{Base: base, Axes: axes}).Expand(); err == nil {
			t.Errorf("sweep with %s axis should error", name)
		}
	}
	if _, err := BuildAxis("bogus", 1, 2); err == nil {
		t.Error("unknown built-in axis should error")
	}
	names := AxisNames()
	want := []string{"cpvf.delta", "cpvf.osc", "field.density", "field.obstacles", "field.ref", "floor.ttl", "rc", "rs", "speed"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("AxisNames() = %v, want %v", names, want)
	}
}

func TestParseAxis(t *testing.T) {
	ax, err := ParseAxis("rc=30,45.5,60")
	if err != nil {
		t.Fatal(err)
	}
	if ax.Name != "rc" || !reflect.DeepEqual(ax.Values, []float64{30, 45.5, 60}) {
		t.Errorf("ParseAxis = %q %v", ax.Name, ax.Values)
	}
	if ax.Set == nil {
		t.Error("parsed axis has no setter")
	}
	for _, bad := range []string{"", "rc", "rc=", "=30", "rc=a,b", "bogus=1"} {
		if _, err := ParseAxis(bad); err == nil {
			t.Errorf("ParseAxis(%q) should error", bad)
		}
	}
}

// TestSpeedAndDeltaAxes applies the remaining built-in setters.
func TestSpeedAndDeltaAxes(t *testing.T) {
	s := Sweep{
		Base: sweepConfig(),
		Axes: []ParamAxis{AxisSpeed(1, 2), AxisRs(30, 40), AxisCPVFDelta(2, 8)},
	}
	specs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 8 {
		t.Fatalf("expanded %d specs, want 8", len(specs))
	}
	last := specs[7].Config
	if last.Speed != 2 || last.Rs != 40 || last.CPVF == nil || last.CPVF.Delta != 8 {
		t.Errorf("last combo config = speed %g rs %g cpvf %+v", last.Speed, last.Rs, last.CPVF)
	}
}

// TestIntegerAxisValidation is the regression test for the silent
// floor.ttl truncation: integer-valued axes reject fractional values at
// every entry point (BuildAxis, ParseAxis, Sweep.Expand) instead of
// running one computation while recording another.
func TestIntegerAxisValidation(t *testing.T) {
	if _, err := BuildAxis("floor.ttl", 4, 6.5); err == nil {
		t.Error("BuildAxis(floor.ttl, 6.5) should reject the fractional value")
	}
	if _, err := ParseAxis("floor.ttl=4,4.5"); err == nil {
		t.Error("ParseAxis(floor.ttl=4.5) should reject the fractional value")
	}
	if _, err := ParseAxis("field.obstacles=2.5"); err == nil {
		t.Error("ParseAxis(field.obstacles=2.5) should reject the fractional value")
	}
	// Whole-number values pass and apply exactly.
	ax, err := ParseAxis("floor.ttl=4,8")
	if err != nil {
		t.Fatal(err)
	}
	if !ax.Integer {
		t.Error("floor.ttl should be an integer axis")
	}
	for _, v := range ax.Values {
		if formatAxisValue(v) != fmt.Sprintf("%d", int(v)) {
			t.Errorf("integer axis value %v renders as %q", v, formatAxisValue(v))
		}
	}
	// A custom integer axis is validated by the sweep too.
	custom := NewAxis("probe", func(*Config, float64) {}, 1, 2.5)
	custom.Integer = true
	if _, err := (Sweep{Base: sweepConfig(), Axes: []ParamAxis{custom}}).Expand(); err == nil {
		t.Error("sweep with fractional values on an integer axis should error")
	}
	// Float axes still accept fractions.
	if _, err := ParseAxis("rc=45.5,60"); err != nil {
		t.Errorf("float axis rejected fractional value: %v", err)
	}
	// The integer flag reaches the HTTP introspection layer.
	if !AxisIsInteger("floor.ttl") || AxisIsInteger("rc") {
		t.Error("AxisIsInteger misreports the built-ins")
	}
}

// TestFieldRefAxis: the base-station placement axis moves the reference
// point along the field diagonal, rebuilding the field per axis point
// while keeping it paired across schemes.
func TestFieldRefAxis(t *testing.T) {
	s := Sweep{
		Base:    sweepConfig(),
		Schemes: []Scheme{SchemeCPVF, SchemeFLOOR},
		Axes:    []ParamAxis{AxisFieldRef(0, 0.5)},
		Seed:    11,
	}
	specs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("expanded %d specs, want 4", len(specs))
	}
	refs := map[float64]PointSpec{}
	for _, sp := range specs {
		if sp.Config.specErr != nil {
			t.Fatalf("run %d field rebuild failed: %v", sp.Index, sp.Config.specErr)
		}
		got := *sp.Config.Field.Spec().Reference
		want := PointSpec{X: sp.Axes[0].Value * 1000, Y: sp.Axes[0].Value * 1000}
		if got != want {
			t.Errorf("run %d reference = %+v, want %+v", sp.Index, got, want)
		}
		if prev, ok := refs[sp.Axes[0].Value]; ok && prev != got {
			t.Errorf("axis point %g has unpaired references across schemes", sp.Axes[0].Value)
		}
		refs[sp.Axes[0].Value] = got
	}
	// Out-of-bounds placement fails that run (not the whole sweep) with a
	// clear error.
	bad := Sweep{Base: sweepConfig(), Axes: []ParamAxis{AxisFieldRef(5)}, Seed: 3}
	sr, err := bad.Run(context.Background(), BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Runs[0].Err == nil {
		t.Error("reference outside the field should fail the run")
	}
}

// TestFieldObstaclesAxis: the obstacle-count axis regenerates the run's
// field with exactly the requested number of random obstacles, sharing
// the generated field across schemes of one axis point.
func TestFieldObstaclesAxis(t *testing.T) {
	s := Sweep{
		Base:      sweepConfig(),
		Schemes:   []Scheme{SchemeCPVF, SchemeFLOOR},
		Scenarios: []string{"random-field"},
		Axes:      []ParamAxis{AxisFieldObstacles(1, 3)},
		Seed:      13,
	}
	specs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	fieldsAt := map[float64]Field{}
	for _, sp := range specs {
		if sp.Config.specErr != nil {
			t.Fatalf("run %d field rebuild failed: %v", sp.Index, sp.Config.specErr)
		}
		want := int(sp.Axes[0].Value)
		if got := sp.Config.Field.NumObstacles(); got != want {
			t.Errorf("run %d has %d obstacles, want %d", sp.Index, got, want)
		}
		if g := sp.Config.Field.Spec().Generator; g == nil || g.MinCount != want || g.MaxCount != want {
			t.Errorf("run %d generator = %+v, want pinned count %d", sp.Index, g, want)
		}
		if prev, ok := fieldsAt[sp.Axes[0].Value]; ok && prev.f != sp.Config.Field.f {
			t.Errorf("axis point %g rebuilt distinct fields across schemes (cache miss)", sp.Axes[0].Value)
		}
		fieldsAt[sp.Axes[0].Value] = sp.Config.Field
	}
	// field.density on a plain field gains generated obstacles matching
	// the requested fraction (count = round(density * area / meanSide²)).
	d := Sweep{Base: sweepConfig(), Axes: []ParamAxis{AxisFieldDensity(0.2)}, Seed: 17}
	dspecs, err := d.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if dspecs[0].Config.specErr != nil {
		t.Fatalf("density rebuild failed: %v", dspecs[0].Config.specErr)
	}
	// Default generator sides 80..400 → mean 240 → 0.2*1e6/57600 ≈ 3.
	if got := dspecs[0].Config.Field.NumObstacles(); got != 3 {
		t.Errorf("density 0.2 produced %d obstacles, want 3", got)
	}
}

// TestFieldAxesPairAcrossOtherAxes: regenerated environments derive
// from the (scenario, repeat) slot's field seed, so rc=30 and rc=60 (or
// two N values) of one comparison point deploy into the same random
// layout — only the field axes themselves and the repeat change it.
func TestFieldAxesPairAcrossOtherAxes(t *testing.T) {
	s := Sweep{
		Base:      sweepConfig(),
		Scenarios: []string{"random-field"},
		Ns:        []int{20, 30},
		Axes:      []ParamAxis{AxisRc(30, 60), AxisFieldObstacles(3)},
		Repeats:   2,
		Seed:      21,
	}
	specs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	byRepeat := map[int]Field{}
	for _, sp := range specs {
		if sp.Config.specErr != nil {
			t.Fatalf("run %d: %v", sp.Index, sp.Config.specErr)
		}
		if prev, ok := byRepeat[sp.Repeat]; ok {
			if prev.f != sp.Config.Field.f {
				t.Fatalf("repeat %d regenerated distinct layouts across rc/N (run %d)", sp.Repeat, sp.Index)
			}
			continue
		}
		byRepeat[sp.Repeat] = sp.Config.Field
	}
	if byRepeat[0].f == byRepeat[1].f {
		t.Error("distinct repeats should see distinct generated layouts")
	}
}

// TestFieldDensityOnSmallField: the density→count formula uses the side
// range the generator actually samples (clamped to the field), so small
// custom fields get obstacles instead of silently running empty.
func TestFieldDensityOnSmallField(t *testing.T) {
	small, err := BuildFieldSpec(FieldSpec{Bounds: RectSpec{MaxX: 200, MaxY: 200}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := sweepConfig()
	base.Field = small
	s := Sweep{Base: base, Axes: []ParamAxis{AxisFieldDensity(0.5)}, Seed: 3}
	specs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Config.specErr != nil {
		t.Fatalf("density rebuild failed: %v", specs[0].Config.specErr)
	}
	// Clamped sides 80..200 → mean 140 → round(0.5·200²/140²) = 1.
	if got := specs[0].Config.Field.NumObstacles(); got != 1 {
		t.Errorf("density 0.5 on a 200 m field produced %d obstacles, want 1", got)
	}
}
