package mobisense

import (
	"fmt"
	"runtime"
	"sync"

	"mobisense/internal/coverage"
	"mobisense/internal/field"
	"mobisense/internal/stats"
)

// The batch subsystem executes many independent deployments on a worker
// pool. The paper's evaluation is exactly this shape — Figure 13 alone
// averages 300 random-obstacle runs — and every run is deterministic given
// its config, so a sweep produces identical results at any worker count.

// BatchOptions tune RunBatch and Sweep.Run.
type BatchOptions struct {
	// Workers is the worker-pool size; 1 runs sequentially and values < 1
	// default to GOMAXPROCS.
	Workers int
	// OnProgress, if set, is called after each completed run with the
	// number done so far and the total. Calls are serialized.
	OnProgress func(done, total int)
}

func (o BatchOptions) workers(jobs int) int {
	w := o.Workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	return w
}

// RunSpec identifies one expanded run of a batch or sweep.
type RunSpec struct {
	// Index is the run's position in the batch (results keep this order).
	Index int
	// Scheme, Scenario, N and Repeat are the sweep axis values that
	// produced this run (Scenario is "" when the config's field was given
	// directly, Repeat is 0 for plain batches).
	Scheme   Scheme
	Scenario string
	N        int
	Repeat   int
	// Seed is the run's derived seed.
	Seed uint64
	// Config is the fully expanded configuration.
	Config Config
}

// BatchResult pairs one run's spec with its outcome.
type BatchResult struct {
	Spec   RunSpec
	Result Result
	Err    error
}

// RunBatch executes the given configs on a worker pool and returns the
// results in input order. Per-run failures are reported in the
// corresponding BatchResult, never as a panic. All runs sharing a field
// and coverage resolution share one coverage estimator.
func RunBatch(cfgs []Config, opts BatchOptions) []BatchResult {
	specs := make([]RunSpec, len(cfgs))
	for i, cfg := range cfgs {
		specs[i] = RunSpec{
			Index:  i,
			Scheme: cfg.Scheme,
			N:      cfg.N,
			Seed:   cfg.Seed,
			Config: cfg,
		}
	}
	return runSpecs(specs, opts)
}

// runSpecs is the shared worker-pool executor behind RunBatch and
// Sweep.Run.
func runSpecs(specs []RunSpec, opts BatchOptions) []BatchResult {
	out := make([]BatchResult, len(specs))
	if len(specs) == 0 {
		return out
	}
	cache := newEstimatorCache()
	jobs := make(chan int)
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	done := 0
	for k := opts.workers(len(specs)); k > 0; k-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				cfg := specs[i].Config
				cfg.estimators = cache
				res, err := Run(cfg)
				out[i] = BatchResult{Spec: specs[i], Result: res, Err: err}
				if opts.OnProgress != nil {
					progressMu.Lock()
					done++
					opts.OnProgress(done, len(specs))
					progressMu.Unlock()
				}
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// Sweep describes a cross-product experiment: every combination of
// scheme × scenario × sensor count, repeated Repeats times. Each run gets
// a deterministic seed derived from the base seed and its axis indices, so
// the expansion — and therefore every result — is independent of worker
// count and execution order. The scheme axis is excluded from seed
// derivation: all schemes of one (scenario, N, repeat) share a seed and
// hence an identical initial layout, making scheme comparisons paired.
type Sweep struct {
	// Base is the config template; the axes below override its Scheme,
	// Field, N and Seed per run.
	Base Config
	// Schemes to run (default: just Base.Scheme).
	Schemes []Scheme
	// Scenarios are registry names (see ScenarioNames). Empty keeps
	// Base.Field for every run. Unseeded scenarios are built once and
	// shared; seeded ones are rebuilt per repeat with a seed derived from
	// the scenario and repeat only, so every scheme and N sees the same
	// sequence of generated environments (paired comparisons).
	Scenarios []string
	// Ns are sensor counts (default: just Base.N).
	Ns []int
	// Repeats is the number of seeds per combination (default 1).
	Repeats int
	// Seed is the base seed for derivation (default Base.Seed, then 1).
	Seed uint64
}

// Domain-separation tags for deriveSeed.
const (
	seedDomainRun = iota + 1
	seedDomainField
)

// Expand materializes the sweep's cross-product into run specs, building
// scenario fields as needed.
func (s Sweep) Expand() ([]RunSpec, error) {
	schemes := s.Schemes
	if len(schemes) == 0 {
		schemes = []Scheme{s.Base.Scheme}
	}
	ns := s.Ns
	if len(ns) == 0 {
		ns = []int{s.Base.N}
	}
	repeats := s.Repeats
	if repeats < 1 {
		repeats = 1
	}
	base := s.Seed
	if base == 0 {
		base = s.Base.Seed
	}
	if base == 0 {
		base = 1
	}

	type slot struct {
		name string
		sc   Scenario
	}
	var scenarios []slot
	if len(s.Scenarios) == 0 {
		scenarios = []slot{{name: ""}}
	} else {
		for _, name := range s.Scenarios {
			sc, ok := LookupScenario(name)
			if !ok {
				return nil, fmt.Errorf("mobisense: unknown scenario %q (have %v)", name, ScenarioNames())
			}
			scenarios = append(scenarios, slot{name: sc.Name, sc: sc})
		}
	}

	// Pre-build each scenario's fields: one shared field for unseeded
	// scenarios, one per repeat for seeded ones.
	fields := make([][]Field, len(scenarios))
	for ci, sl := range scenarios {
		if sl.name == "" {
			fields[ci] = []Field{s.Base.Field}
			continue
		}
		n := 1
		if sl.sc.Seeded {
			n = repeats
		}
		fields[ci] = make([]Field, n)
		for r := 0; r < n; r++ {
			f, err := sl.sc.Build(deriveSeed(base, seedDomainField, uint64(ci), uint64(r)))
			if err != nil {
				return nil, fmt.Errorf("mobisense: scenario %q repeat %d: %w", sl.name, r, err)
			}
			fields[ci][r] = f
		}
	}

	specs := make([]RunSpec, 0, len(schemes)*len(scenarios)*len(ns)*repeats)
	for _, scheme := range schemes {
		for ci, sl := range scenarios {
			for ni, n := range ns {
				for r := 0; r < repeats; r++ {
					cfg := s.Base
					cfg.Scheme = scheme
					cfg.N = n
					cfg.Seed = deriveSeed(base, seedDomainRun,
						uint64(ci), uint64(ni), uint64(r))
					if len(fields[ci]) > 1 {
						cfg.Field = fields[ci][r]
					} else {
						cfg.Field = fields[ci][0]
					}
					specs = append(specs, RunSpec{
						Index:    len(specs),
						Scheme:   scheme,
						Scenario: sl.name,
						N:        n,
						Repeat:   r,
						Seed:     cfg.Seed,
						Config:   cfg,
					})
				}
			}
		}
	}
	return specs, nil
}

// Run expands the sweep and executes it on a worker pool, returning the
// per-run results (in expansion order) and per-combination aggregates.
func (s Sweep) Run(opts BatchOptions) (SweepResult, error) {
	specs, err := s.Expand()
	if err != nil {
		return SweepResult{}, err
	}
	runs := runSpecs(specs, opts)
	return SweepResult{Runs: runs, Aggregates: aggregateRuns(runs)}, nil
}

// SweepResult holds a sweep's per-run outcomes and aggregated summaries.
type SweepResult struct {
	Runs       []BatchResult
	Aggregates []Aggregate
}

// MetricSummary is the mean/CI summary of one metric over a group of runs.
type MetricSummary struct {
	// N is the number of samples.
	N int
	// Mean and StdDev are the sample mean and standard deviation.
	Mean, StdDev float64
	// CI95 is the half-width of the normal-approximation 95% confidence
	// interval of the mean.
	CI95 float64
	// Min and Max are the sample range.
	Min, Max float64
}

func metricSummary(xs []float64) MetricSummary {
	s := stats.Summarize(xs)
	return MetricSummary{N: s.N, Mean: s.Mean, StdDev: s.StdDev, CI95: s.CI95, Min: s.Min, Max: s.Max}
}

// Aggregate summarizes all runs of one (scheme, scenario, N) combination.
type Aggregate struct {
	Scheme   Scheme
	Scenario string
	N        int
	// Runs and Errors count the successful and failed runs.
	Runs, Errors int
	// Metric summaries over the successful runs.
	Coverage        MetricSummary
	Coverage2       MetricSummary
	AvgMoveDistance MetricSummary
	Messages        MetricSummary
	ConvergenceTime MetricSummary
	// ConnectedFraction is the fraction of successful runs whose final
	// layout was fully connected.
	ConnectedFraction float64
}

// aggregateRuns groups runs by (scheme, scenario, N) in first-seen order
// and summarizes each group. Iterating in run-index order makes the
// output bit-identical regardless of how many workers executed the batch.
func aggregateRuns(runs []BatchResult) []Aggregate {
	type key struct {
		scheme   Scheme
		scenario string
		n        int
	}
	var order []key
	groups := map[key][]BatchResult{}
	for _, r := range runs {
		k := key{r.Spec.Scheme, r.Spec.Scenario, r.Spec.N}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	out := make([]Aggregate, 0, len(order))
	for _, k := range order {
		agg := Aggregate{Scheme: k.scheme, Scenario: k.scenario, N: k.n}
		var cov, cov2, dist, msgs, conv []float64
		connected := 0
		for _, r := range groups[k] {
			if r.Err != nil {
				agg.Errors++
				continue
			}
			agg.Runs++
			cov = append(cov, r.Result.Coverage)
			cov2 = append(cov2, r.Result.Coverage2)
			dist = append(dist, r.Result.AvgMoveDistance)
			msgs = append(msgs, float64(r.Result.Messages))
			conv = append(conv, r.Result.ConvergenceTime)
			if r.Result.Connected {
				connected++
			}
		}
		agg.Coverage = metricSummary(cov)
		agg.Coverage2 = metricSummary(cov2)
		agg.AvgMoveDistance = metricSummary(dist)
		agg.Messages = metricSummary(msgs)
		agg.ConvergenceTime = metricSummary(conv)
		if agg.Runs > 0 {
			agg.ConnectedFraction = float64(connected) / float64(agg.Runs)
		}
		out = append(out, agg)
	}
	return out
}

// deriveSeed mixes the base seed with axis indices through splitmix64 so
// every run of a sweep gets a stable, well-distributed seed that does not
// depend on execution order.
func deriveSeed(base uint64, parts ...uint64) uint64 {
	h := splitmix64(base)
	for _, p := range parts {
		h = splitmix64(h ^ splitmix64(p+0x9e3779b97f4a7c15))
	}
	return h
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// estimatorCache shares one coverage.Estimator per (field, resolution)
// across the runs of a batch: rebuilding the free-space mask per run is
// pure waste in sweeps. Estimators are immutable after construction, so
// concurrent use is safe.
type estimatorCache struct {
	mu sync.Mutex
	m  map[estimatorKey]*coverage.Estimator
}

type estimatorKey struct {
	f   *field.Field
	res float64
}

func newEstimatorCache() *estimatorCache {
	return &estimatorCache{m: map[estimatorKey]*coverage.Estimator{}}
}

func (c *estimatorCache) get(f *field.Field, res float64) *coverage.Estimator {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := estimatorKey{f, res}
	e, ok := c.m[k]
	if !ok {
		e = coverage.NewEstimator(f, res)
		c.m[k] = e
	}
	return e
}
