package mobisense

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"mobisense/internal/coverage"
	"mobisense/internal/field"
	"mobisense/internal/stats"
	istore "mobisense/internal/store"
)

// The batch subsystem executes many independent deployments on a worker
// pool. The paper's evaluation is exactly this shape — Figure 13 alone
// averages 300 random-obstacle runs — and every run is deterministic given
// its config, so a sweep produces identical results at any worker count.
//
// Batches are cancellable (the context stops dispatching new runs while
// every in-flight run finishes), persistable (a Store streams each finished
// run to disk), resumable (runs already in the store are replayed instead
// of re-executed) and shardable across machines (a Shard selects a
// deterministic subset of the expansion; cmd/report merges shard stores).

// BatchOptions tune RunBatch and Sweep.Run.
type BatchOptions struct {
	// Workers is the worker-pool size; 1 runs sequentially, 0 defaults to
	// GOMAXPROCS, and negative values are an error.
	Workers int
	// OnProgress, if set, is called after each completed run with the
	// number done so far and the total. Calls are serialized. Runs replayed
	// from a store count as already done.
	OnProgress func(done, total int)
	// Store, if set, persists every finished run to disk and — when
	// Store.Resume is set — skips runs whose records are already present.
	Store *Store
	// Shard restricts execution to a deterministic subset of the runs for
	// cross-machine sharding; the zero value runs everything.
	Shard Shard
}

func (o BatchOptions) workers(jobs int) int {
	w := o.Workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	return w
}

// Shard identifies one slice of a sweep: runs whose expansion index is
// congruent to Index modulo Count. Count <= 1 means no sharding.
type Shard struct {
	Index, Count int
}

func (sh Shard) validate() error {
	if sh.Count <= 1 && sh.Index == 0 {
		return nil
	}
	if sh.Count < 1 || sh.Index < 0 || sh.Index >= sh.Count {
		return fmt.Errorf("mobisense: invalid shard %d/%d (want 0 <= index < count)", sh.Index, sh.Count)
	}
	return nil
}

// count normalizes Count for manifests (0 → 1).
func (sh Shard) count() int {
	if sh.Count < 1 {
		return 1
	}
	return sh.Count
}

// ParseShard parses the CLI shard syntax "i/n" ("" = no sharding). Unlike
// the zero Shard value, an explicit spec must be well-formed: n >= 1 and
// 0 <= i < n, with no trailing input.
func ParseShard(s string) (Shard, error) {
	if s == "" {
		return Shard{}, nil
	}
	idx, cnt, ok := strings.Cut(s, "/")
	var sh Shard
	var err1, err2 error
	if ok {
		sh.Index, err1 = strconv.Atoi(idx)
		sh.Count, err2 = strconv.Atoi(cnt)
	}
	if !ok || err1 != nil || err2 != nil {
		return Shard{}, fmt.Errorf("mobisense: bad shard %q: want \"i/n\", e.g. 0/4", s)
	}
	if sh.Count < 1 || sh.Index < 0 || sh.Index >= sh.Count {
		return Shard{}, fmt.Errorf("mobisense: bad shard %q: want 0 <= i < n", s)
	}
	return sh, nil
}

// filter keeps the specs belonging to this shard, preserving their global
// expansion indices so merged shards reproduce the unsharded order.
func (sh Shard) filter(specs []RunSpec) []RunSpec {
	if sh.Count <= 1 {
		return specs
	}
	out := make([]RunSpec, 0, (len(specs)+sh.Count-1)/sh.Count)
	for _, sp := range specs {
		if sp.Index%sh.Count == sh.Index {
			out = append(out, sp)
		}
	}
	return out
}

// RunSpec identifies one expanded run of a batch or sweep.
type RunSpec struct {
	// Index is the run's position in the full batch or sweep expansion
	// (results keep this order; shards keep their global indices).
	Index int
	// Scheme, Scenario, N and Repeat are the sweep axis values that
	// produced this run (Scenario is "" when the config's field was given
	// directly, Repeat is 0 for plain batches).
	Scheme   Scheme
	Scenario string
	N        int
	Repeat   int
	// Axes are the run's generalized axis assignments (Sweep.Axes), in
	// axis order; nil for plain batches and axis-free sweeps.
	Axes []AxisValue
	// Seed is the run's derived seed.
	Seed uint64
	// Config is the fully expanded configuration.
	Config Config
}

// BatchResult pairs one run's spec with its outcome. Runs skipped by a
// context cancellation carry the context's error; runs replayed from a
// store carry the stored metrics (but not layouts).
type BatchResult struct {
	Spec   RunSpec
	Result Result
	Err    error
}

// skipped reports whether this run was never executed (batch cancelled).
func (br BatchResult) skipped() bool {
	return errors.Is(br.Err, context.Canceled) || errors.Is(br.Err, context.DeadlineExceeded)
}

// RunBatch executes the given configs on a worker pool and returns the
// results in input order. Per-run failures are reported in the
// corresponding BatchResult, never as a panic. All runs sharing a field
// and coverage resolution share one coverage estimator.
//
// Cancelling the context stops dispatching new runs; in-flight runs finish
// (and reach the store, if any) and the remaining results carry the
// context's error, which is also returned.
func RunBatch(ctx context.Context, cfgs []Config, opts BatchOptions) ([]BatchResult, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("mobisense: RunBatch with no configs")
	}
	specs := make([]RunSpec, len(cfgs))
	for i, cfg := range cfgs {
		specs[i] = RunSpec{
			Index:  i,
			Scheme: cfg.Scheme,
			N:      cfg.N,
			Seed:   cfg.Seed,
			Config: cfg,
		}
	}
	// The fingerprint covers the full config list — not just this shard's
	// slice — so every shard of one batch shares a manifest identity and
	// cmd/report will merge their stores. It is only worth hashing when a
	// store will actually record it.
	var m istore.Manifest
	if opts.Store != nil {
		m = istore.Manifest{
			Kind:              "batch",
			ConfigFingerprint: combinedFingerprint(specs),
			ShardIndex:        opts.Shard.Index,
			ShardCount:        opts.Shard.count(),
			Layouts:           opts.Store.Layouts,
			Trace:             opts.Store.Trace,
			TraceLayouts:      opts.Store.Trace && traceLayouts(cfgs),
		}
	}
	specs = opts.Shard.filter(specs)
	m.TotalRuns = len(specs)
	return runSpecs(ctx, specs, opts, m)
}

// traceLayouts reports whether any config samples layout snapshots into
// its trace; the manifest records it so readers know whether the store's
// trace records can drive a replay.
func traceLayouts(cfgs []Config) bool {
	for _, cfg := range cfgs {
		if cfg.Trace != nil && cfg.Trace.Layouts {
			return true
		}
	}
	return false
}

// runSpecs is the shared worker-pool executor behind RunBatch and
// Sweep.Run. The specs' Index fields address the full expansion; the slice
// itself holds only this shard's runs.
func runSpecs(ctx context.Context, specs []RunSpec, opts BatchOptions, m istore.Manifest) ([]BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("mobisense: negative worker count %d", opts.Workers)
	}
	if err := opts.Shard.validate(); err != nil {
		return nil, err
	}
	out := make([]BatchResult, len(specs))
	sess, err := opts.Store.begin(m)
	if err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		// A legitimately empty shard still leaves a (complete, zero-run)
		// store behind so the merge workflow sees every shard.
		if sess != nil {
			if err := sess.close(); err != nil {
				return out, err
			}
		}
		return out, nil
	}

	// Partition into replayed (already in the store) and live runs. toRun
	// holds positions into specs; a live run's position in toRun is its
	// deterministic dispatch sequence number, which the store writer uses
	// to keep the on-disk order independent of the worker count.
	toRun := make([]int, 0, len(specs))
	for i, sp := range specs {
		if sess != nil {
			if rec, ok := sess.lookup(sp); ok {
				out[i] = replayedResult(sp, rec)
				continue
			}
		}
		toRun = append(toRun, i)
	}

	cache := newEstimatorCache()
	jobs := make(chan int)
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	done := len(specs) - len(toRun)
	for k := opts.workers(len(toRun)); k > 0; k-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := range jobs {
				i := toRun[seq]
				cfg := specs[i].Config
				cfg.estimators = cache
				start := time.Now()
				res, err := Run(cfg)
				out[i] = BatchResult{Spec: specs[i], Result: res, Err: err}
				if sess != nil {
					sess.append(seq, specs[i], res, err, time.Since(start))
				}
				if opts.OnProgress != nil {
					progressMu.Lock()
					done++
					opts.OnProgress(done, len(specs))
					progressMu.Unlock()
				}
			}
		}()
	}
	// Dispatch in order; once the context is cancelled no further run
	// starts, but every dispatched run completes, so the store never holds
	// a torn batch.
	dispatched := 0
dispatch:
	for seq := range toRun {
		select {
		case <-ctx.Done():
			break dispatch
		default:
		}
		select {
		case jobs <- seq:
			dispatched++
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	for _, i := range toRun[dispatched:] {
		out[i] = BatchResult{Spec: specs[i], Err: ctx.Err()}
	}

	if sess != nil {
		if err := sess.close(); err != nil {
			return out, err
		}
	}
	return out, ctx.Err()
}

// Sweep describes a cross-product experiment: every combination of
// scheme × scenario × sensor count × generalized axis values, repeated
// Repeats times. Each run gets a deterministic seed derived from the base
// seed and its axis indices, so the expansion — and therefore every
// result — is independent of worker count and execution order. The scheme
// axis is excluded from seed derivation: all schemes of one
// (scenario, N, repeat, axis combination) share a seed and hence an
// identical initial layout, making scheme comparisons paired.
type Sweep struct {
	// Base is the config template; the axes below override its Scheme,
	// Field, N and Seed per run.
	Base Config
	// Schemes to run (default: just Base.Scheme).
	Schemes []Scheme
	// Scenarios are registry names (see ScenarioNames). Empty keeps
	// Base.Field (or Field, below) for every run. Unseeded scenarios are
	// built once and shared; seeded ones are rebuilt per repeat with a
	// seed derived from the scenario and repeat only, so every scheme and
	// N sees the same sequence of generated environments (paired
	// comparisons).
	Scenarios []string
	// Field is an inline declarative environment used when Scenarios is
	// empty: the custom-field counterpart of a scenario name (deploy
	// -field, the serve API's inline "field"). Seeded specs (generator
	// set) derive one layout per repeat exactly like seeded scenarios;
	// fixed specs build once. Setting both Field and Scenarios is an
	// error.
	Field *FieldSpec
	// Ns are sensor counts (default: just Base.N).
	Ns []int
	// Axes are generalized parameter dimensions folded into the
	// cross-product: communication/sensing ranges, speed, scheme options —
	// any config knob with a ParamAxis setter. Built-ins resolve by name
	// through BuildAxis; NewAxis defines custom ones. Axis names must be
	// unique within one sweep.
	Axes []ParamAxis
	// Repeats is the number of seeds per combination (default 1).
	Repeats int
	// Seed is the base seed for derivation (default Base.Seed, then 1).
	Seed uint64
	// FixedSeed gives every run the base seed verbatim instead of a
	// per-combination derived seed. The paper's parameter studies
	// (Figures 9, 10, 12, Table 1) are this shape: one fixed initial
	// deployment, one knob varied — pairing every axis point, not just
	// every scheme. Seeded scenario fields still derive per repeat.
	FixedSeed bool
}

// Domain-separation tags for deriveSeed.
const (
	seedDomainRun = iota + 1
	seedDomainField
)

// resolve computes the sweep's effective axis values (defaults applied)
// and validates them: empty axis entries and non-positive sensor counts
// are explicit errors rather than silent zero-length or degenerate sweeps.
func (s Sweep) resolve() (schemes []Scheme, ns []int, repeats int, base uint64, err error) {
	schemes = s.Schemes
	if len(schemes) == 0 {
		schemes = []Scheme{s.Base.Scheme}
	}
	for _, sc := range schemes {
		if sc == "" {
			return nil, nil, 0, 0, fmt.Errorf("mobisense: sweep has an empty scheme (set Sweep.Schemes or Base.Scheme)")
		}
	}
	ns = s.Ns
	if len(ns) == 0 {
		ns = []int{s.Base.N}
	}
	for _, n := range ns {
		if n <= 0 {
			return nil, nil, 0, 0, fmt.Errorf("mobisense: sweep has non-positive sensor count %d (set Sweep.Ns or Base.N)", n)
		}
	}
	seen := make(map[string]bool, len(s.Axes))
	for _, ax := range s.Axes {
		if err := ax.validate(); err != nil {
			return nil, nil, 0, 0, err
		}
		if seen[ax.Name] {
			return nil, nil, 0, 0, fmt.Errorf("mobisense: sweep has duplicate axis %q", ax.Name)
		}
		seen[ax.Name] = true
	}
	repeats = s.Repeats
	if repeats < 0 {
		return nil, nil, 0, 0, fmt.Errorf("mobisense: negative sweep repeats %d", s.Repeats)
	}
	if repeats == 0 {
		repeats = 1
	}
	base = s.Seed
	if base == 0 {
		base = s.Base.Seed
	}
	if base == 0 {
		base = 1
	}
	return schemes, ns, repeats, base, nil
}

// Expand materializes the sweep's cross-product into run specs, building
// scenario fields as needed.
func (s Sweep) Expand() ([]RunSpec, error) {
	schemes, ns, repeats, base, err := s.resolve()
	if err != nil {
		return nil, err
	}

	// Each slot is one value of the environment axis: a registry scenario,
	// an inline field spec, or ("" with no spec) the base config's field.
	// Inline specs reuse the scenario machinery through a synthetic
	// Scenario so seeding, pairing and the build cache behave identically.
	type slot struct {
		name  string
		sc    Scenario
		build bool
	}
	var scenarios []slot
	if len(s.Scenarios) == 0 {
		if s.Field != nil {
			spec, err := s.Field.Normalize()
			if err != nil {
				return nil, fmt.Errorf("mobisense: sweep field: %w", err)
			}
			scenarios = []slot{{sc: Scenario{Spec: spec, Seeded: spec.Seeded()}, build: true}}
		} else {
			scenarios = []slot{{}}
		}
	} else {
		if s.Field != nil {
			return nil, fmt.Errorf("mobisense: sweep sets both Scenarios and an inline Field; pick one environment axis")
		}
		for _, name := range s.Scenarios {
			sc, ok := LookupScenario(name)
			if !ok {
				return nil, fmt.Errorf("mobisense: unknown scenario %q (have %v)", name, ScenarioNames())
			}
			scenarios = append(scenarios, slot{name: sc.Name, sc: sc, build: true})
		}
	}

	// Pre-build each scenario's fields: one shared field for unseeded
	// scenarios, one per repeat for seeded ones. The build cache
	// deduplicates across repeated expansions (the server expands once to
	// fingerprint a job and again to execute it) and across sweeps.
	fields := make([][]Field, len(scenarios))
	for ci, sl := range scenarios {
		if !sl.build {
			fields[ci] = []Field{s.Base.Field}
			continue
		}
		n := 1
		if sl.sc.Seeded {
			n = repeats
		}
		fields[ci] = make([]Field, n)
		for r := 0; r < n; r++ {
			f, err := sl.sc.buildField(deriveSeed(base, seedDomainField, uint64(ci), uint64(r)))
			if err != nil {
				if sl.name == "" {
					return nil, fmt.Errorf("mobisense: sweep field repeat %d: %w", r, err)
				}
				return nil, fmt.Errorf("mobisense: scenario %q repeat %d: %w", sl.name, r, err)
			}
			fields[ci][r] = f
		}
	}

	combos := 1
	for _, ax := range s.Axes {
		combos *= ax.size()
	}
	specs := make([]RunSpec, 0, len(schemes)*len(scenarios)*len(ns)*repeats*combos)
	for _, scheme := range schemes {
		for ci, sl := range scenarios {
			for ni, n := range ns {
				for r := 0; r < repeats; r++ {
					// Enumerate every axis-value combination with an
					// odometer over the axis indices, the last axis
					// innermost. With no axes this is one iteration and
					// the derived seeds reduce to the pre-axis
					// (scenario, N, repeat) derivation, so existing
					// sweeps — and their stores — expand unchanged.
					idx := make([]int, len(s.Axes))
					for {
						cfg := s.Base
						cfg.Scheme = scheme
						cfg.N = n
						// The environment seed of this (scenario, repeat)
						// slot — the seed its field was (or would be) built
						// with. Field-rebuilding axis setters use it so
						// regenerated environments stay paired across
						// schemes, Ns and the other axes.
						cfg.fieldSeed = deriveSeed(base, seedDomainField, uint64(ci), uint64(r))
						if s.FixedSeed {
							cfg.Seed = base
						} else {
							parts := make([]uint64, 0, 4+len(idx))
							parts = append(parts, seedDomainRun, uint64(ci), uint64(ni), uint64(r))
							for _, ai := range idx {
								parts = append(parts, uint64(ai))
							}
							cfg.Seed = deriveSeed(base, parts...)
						}
						if len(fields[ci]) > 1 {
							cfg.Field = fields[ci][r]
						} else {
							cfg.Field = fields[ci][0]
						}
						// Apply axes last: setters see the fully resolved
						// scheme, field, N and seed.
						var axes []AxisValue
						if len(s.Axes) > 0 {
							axes = make([]AxisValue, len(s.Axes))
							for a, ax := range s.Axes {
								if ax.categorical() {
									v := ax.Strings[idx[a]]
									ax.SetString(&cfg, v)
									axes[a] = AxisValue{Name: ax.Name, Str: v}
								} else {
									v := ax.Values[idx[a]]
									ax.Set(&cfg, v)
									axes[a] = AxisValue{Name: ax.Name, Value: v}
								}
							}
						}
						specs = append(specs, RunSpec{
							Index:    len(specs),
							Scheme:   scheme,
							Scenario: sl.name,
							N:        n,
							Repeat:   r,
							Axes:     axes,
							Seed:     cfg.Seed,
							Config:   cfg,
						})
						a := len(idx) - 1
						for ; a >= 0; a-- {
							idx[a]++
							if idx[a] < s.Axes[a].size() {
								break
							}
							idx[a] = 0
						}
						if a < 0 {
							break
						}
					}
				}
			}
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("mobisense: sweep expands to no runs")
	}
	return specs, nil
}

// manifest describes this sweep (and the selected shard of it) for a
// persistent store.
func (s Sweep) manifest(sh Shard, totalRuns int) istore.Manifest {
	schemes, ns, repeats, base, err := s.resolve()
	if err != nil {
		// Run validates via Expand before building the manifest.
		panic(err)
	}
	names := make([]string, len(schemes))
	for i, sc := range schemes {
		names[i] = string(sc)
	}
	// scenarios stays nil (not empty) when the sweep has none: omitempty
	// drops it from the manifest JSON, and the reloaded manifest must
	// DeepEqual this one for resume to be accepted.
	var scenarios []string
	for _, name := range s.Scenarios {
		if sc, ok := LookupScenario(name); ok {
			name = sc.Name
		}
		scenarios = append(scenarios, name)
	}
	// Generalized axes are recorded by name and value list: the setter is
	// code, but two sweeps sharing an axis name, its values and the base
	// fingerprint are the same computation, which is all resume
	// compatibility needs. Axis-free sweeps leave the field empty, so
	// their manifests stay byte-identical to pre-axis stores.
	var axes []istore.Axis
	for _, ax := range s.Axes {
		axes = append(axes, istore.Axis{Name: ax.Name, Values: ax.Values, Strings: ax.Strings})
	}
	return istore.Manifest{
		Kind: "sweep",
		Sweep: istore.SweepAxes{
			Schemes:   names,
			Scenarios: scenarios,
			Ns:        ns,
			Axes:      axes,
			Repeats:   repeats,
			Seed:      base,
			FixedSeed: s.FixedSeed,
		},
		Fields:            s.fieldEntries(),
		ConfigFingerprint: configFingerprint(s.Base),
		ShardIndex:        sh.Index,
		ShardCount:        sh.count(),
		TotalRuns:         totalRuns,
	}
}

// fieldEntries collects the sweep's environment geometry as declarative
// specs for the store manifest: one entry per scenario (its registered
// spec) or one for the inline/base field. A store carrying them is
// reproducible on a machine that has neither the originating binary nor
// the -field file. Scenarios that only exist as code (Build-only, no
// spec) are skipped; manifests written before the field-spec refactor
// have no entries at all, and resume tolerates their absence.
func (s Sweep) fieldEntries() []istore.FieldEntry {
	if len(s.Scenarios) > 0 {
		var out []istore.FieldEntry
		for _, name := range s.Scenarios {
			sc, ok := LookupScenario(name)
			if !ok || sc.Spec.Empty() {
				continue
			}
			out = append(out, istore.FieldEntry{Scenario: sc.Name, Spec: sc.Spec})
		}
		return out
	}
	var spec FieldSpec
	switch {
	case s.Field != nil:
		n, err := s.Field.Normalize()
		if err != nil {
			return nil
		}
		spec = n
	case s.Base.Field.internal() != nil:
		spec = s.Base.Field.Spec()
	default:
		return nil
	}
	// The manifest is hashed into the sweep's cache fingerprint and
	// compared for resume/merge compatibility, and the contract is that
	// geometry — not names — decides identity: renaming a spec file's
	// cosmetic "name" must stay a cache hit. Scenario entries carry their
	// identity in FieldEntry.Scenario; the custom entry carries none.
	spec.Name = ""
	return []istore.FieldEntry{{Spec: spec}}
}

// Run expands the sweep and executes it on a worker pool, returning the
// per-run results (in expansion order) and per-combination aggregates.
// Cancelling the context stops dispatching new runs and returns the
// partial result alongside the context's error; with a Store attached the
// finished runs persist, so re-running with Store.Resume picks up exactly
// where the cancelled sweep stopped.
func (s Sweep) Run(ctx context.Context, opts BatchOptions) (SweepResult, error) {
	specs, err := s.Expand()
	if err != nil {
		return SweepResult{}, err
	}
	specs = opts.Shard.filter(specs)
	var m istore.Manifest
	if opts.Store != nil {
		m = s.manifest(opts.Shard, len(specs))
		m.Layouts = opts.Store.Layouts
		m.Trace = opts.Store.Trace
		m.TraceLayouts = opts.Store.Trace && s.Base.Trace != nil && s.Base.Trace.Layouts
	}
	runs, err := runSpecs(ctx, specs, opts, m)
	return SweepResult{Runs: runs, Aggregates: aggregateRuns(runs)}, err
}

// SweepResult holds a sweep's per-run outcomes and aggregated summaries.
type SweepResult struct {
	Runs       []BatchResult
	Aggregates []Aggregate
}

// MetricSummary is the mean/CI summary of one metric over a group of
// runs. The JSON form feeds the deployment server's aggregate responses.
type MetricSummary struct {
	// N is the number of samples.
	N int `json:"n"`
	// Mean and StdDev are the sample mean and standard deviation.
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"std_dev"`
	// CI95 is the half-width of the normal-approximation 95% confidence
	// interval of the mean.
	CI95 float64 `json:"ci95"`
	// Min and Max are the sample range.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

func metricSummary(xs []float64) MetricSummary {
	s := stats.Summarize(xs)
	return MetricSummary{N: s.N, Mean: s.Mean, StdDev: s.StdDev, CI95: s.CI95, Min: s.Min, Max: s.Max}
}

// Aggregate summarizes all runs of one (scheme, scenario, N, axis tuple)
// combination.
type Aggregate struct {
	Scheme   Scheme `json:"scheme"`
	Scenario string `json:"scenario,omitempty"`
	N        int    `json:"n"`
	// Axes are the group's generalized axis assignments (empty for
	// axis-free sweeps and plain batches).
	Axes []AxisValue `json:"axes,omitempty"`
	// Runs and Errors count the successful and failed runs; Skipped counts
	// runs never executed because the batch was cancelled.
	Runs    int `json:"runs"`
	Errors  int `json:"errors,omitempty"`
	Skipped int `json:"skipped,omitempty"`
	// Metric summaries over the successful runs.
	Coverage        MetricSummary `json:"coverage"`
	Coverage2       MetricSummary `json:"coverage2"`
	AvgMoveDistance MetricSummary `json:"avg_move_distance"`
	Messages        MetricSummary `json:"messages"`
	ConvergenceTime MetricSummary `json:"convergence_time"`
	// ConnectedFraction is the fraction of successful runs whose final
	// layout was fully connected.
	ConnectedFraction float64 `json:"connected_fraction"`
	// Convergence summarizes the trace-derived convergence metrics of the
	// group's traced runs; nil when no run carried a trace.
	Convergence *ConvergenceAggregate `json:"convergence,omitempty"`
}

// aggregateRuns groups runs by (scheme, scenario, N, axis tuple) in
// first-seen order and summarizes each group. The axis tuple is part of
// the key so runs that differ in any varied config parameter — two rc
// values, two TTLs — land in separate rows instead of silently averaging
// into one. Iterating in run-index order makes the output bit-identical
// regardless of how many workers executed the batch.
func aggregateRuns(runs []BatchResult) []Aggregate {
	type key struct {
		scheme   Scheme
		scenario string
		n        int
		axes     string
	}
	var order []key
	groups := map[key][]BatchResult{}
	axesOf := map[key][]AxisValue{}
	for _, r := range runs {
		k := key{r.Spec.Scheme, r.Spec.Scenario, r.Spec.N, axisTupleKey(r.Spec.Axes)}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
			axesOf[k] = r.Spec.Axes
		}
		groups[k] = append(groups[k], r)
	}
	out := make([]Aggregate, 0, len(order))
	for _, k := range order {
		agg := Aggregate{Scheme: k.scheme, Scenario: k.scenario, N: k.n, Axes: axesOf[k]}
		var cov, cov2, dist, msgs, conv []float64
		connected := 0
		for _, r := range groups[k] {
			if r.skipped() {
				agg.Skipped++
				continue
			}
			if r.Err != nil {
				agg.Errors++
				continue
			}
			agg.Runs++
			cov = append(cov, r.Result.Coverage)
			cov2 = append(cov2, r.Result.Coverage2)
			dist = append(dist, r.Result.AvgMoveDistance)
			msgs = append(msgs, float64(r.Result.Messages))
			conv = append(conv, r.Result.ConvergenceTime)
			if r.Result.Connected {
				connected++
			}
		}
		agg.Coverage = metricSummary(cov)
		agg.Coverage2 = metricSummary(cov2)
		agg.AvgMoveDistance = metricSummary(dist)
		agg.Messages = metricSummary(msgs)
		agg.ConvergenceTime = metricSummary(conv)
		if agg.Runs > 0 {
			agg.ConnectedFraction = float64(connected) / float64(agg.Runs)
		}
		agg.Convergence = aggregateConvergence(groups[k])
		out = append(out, agg)
	}
	return out
}

// deriveSeed mixes the base seed with axis indices through splitmix64 so
// every run of a sweep gets a stable, well-distributed seed that does not
// depend on execution order.
func deriveSeed(base uint64, parts ...uint64) uint64 {
	h := splitmix64(base)
	for _, p := range parts {
		h = splitmix64(h ^ splitmix64(p+0x9e3779b97f4a7c15))
	}
	return h
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// estimatorCache shares one coverage.Estimator per (field, resolution)
// across the runs of a batch: rebuilding the free-space mask per run is
// pure waste in sweeps. The shared geometry (free-space mask, bounds) is
// immutable after construction and the mutable query scratch lives in an
// internal sync.Pool, so concurrent use is safe.
type estimatorCache struct {
	mu sync.Mutex
	m  map[estimatorKey]*coverage.Estimator
}

type estimatorKey struct {
	f   *field.Field
	res float64
}

func newEstimatorCache() *estimatorCache {
	return &estimatorCache{m: map[estimatorKey]*coverage.Estimator{}}
}

func (c *estimatorCache) get(f *field.Field, res float64) *coverage.Estimator {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := estimatorKey{f, res}
	e, ok := c.m[k]
	if !ok {
		e = coverage.NewEstimator(f, res)
		c.m[k] = e
	}
	return e
}
