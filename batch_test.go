package mobisense

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
)

// sweepConfig is a small, fast base config for batch tests.
func sweepConfig() Config {
	cfg := DefaultConfig(SchemeFLOOR)
	cfg.N = 30
	cfg.Duration = 90
	cfg.Rc = 60
	cfg.Rs = 40
	return cfg
}

// stripVolatile clears the fields that legitimately vary between
// executions (wall-clock timing); everything else must be identical.
func stripVolatile(runs []BatchResult) []BatchResult {
	out := append([]BatchResult(nil), runs...)
	for i := range out {
		out[i].Result.Elapsed = 0
		out[i].Spec.Config = Config{}
	}
	return out
}

// TestSweepDeterministicAcrossWorkers is the acceptance check for the
// batch runner: the same sweep at workers=1 and workers=GOMAXPROCS must
// produce identical per-run results and identical aggregates.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	sweep := Sweep{
		Base:      sweepConfig(),
		Schemes:   []Scheme{SchemeCPVF, SchemeFLOOR, SchemeOPT},
		Scenarios: []string{"free", "two-obstacles", "random-obstacles"},
		Ns:        []int{20, 30},
		Repeats:   2,
		Seed:      42,
	}
	seq, err := sweep.Run(context.Background(), BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// max(4, GOMAXPROCS) keeps the parallel leg genuinely concurrent even
	// on single-core machines.
	par, err := sweep.Run(context.Background(), BatchOptions{Workers: max(4, runtime.GOMAXPROCS(0))})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Runs) != 3*3*2*2 {
		t.Fatalf("runs = %d, want %d", len(seq.Runs), 3*3*2*2)
	}
	if !reflect.DeepEqual(stripVolatile(seq.Runs), stripVolatile(par.Runs)) {
		t.Error("per-run results differ between workers=1 and parallel")
	}
	if !reflect.DeepEqual(seq.Aggregates, par.Aggregates) {
		t.Errorf("aggregates differ between workers=1 and parallel:\nseq: %+v\npar: %+v",
			seq.Aggregates, par.Aggregates)
	}
}

// TestSweepMixedRace exercises a mixed scheme×scenario sweep with progress
// reporting under the race detector.
func TestSweepMixedRace(t *testing.T) {
	sweep := Sweep{
		Base:      sweepConfig(),
		Schemes:   []Scheme{SchemeCPVF, SchemeFLOOR, SchemeVOR, SchemeMinimax, SchemeOPT},
		Scenarios: []string{"free", "corridor", "campus", "disaster"},
		Repeats:   2,
		Seed:      7,
	}
	var mu sync.Mutex
	var last int
	sr, err := sweep.Run(context.Background(), BatchOptions{OnProgress: func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if done != last+1 || total != 5*4*2 {
			t.Errorf("progress (%d, %d) after %d", done, total, last)
		}
		last = done
	}})
	if err != nil {
		t.Fatal(err)
	}
	if last != len(sr.Runs) {
		t.Errorf("progress reached %d of %d", last, len(sr.Runs))
	}
	for _, br := range sr.Runs {
		// The VD baselines reject obstacle fields by design (§6.4); those
		// failures must surface as per-run errors, not kill the batch.
		vd := br.Spec.Scheme == SchemeVOR || br.Spec.Scheme == SchemeMinimax
		if vd && br.Spec.Scenario != "free" {
			if br.Err == nil {
				t.Errorf("%s on %s should reject obstacles", br.Spec.Scheme, br.Spec.Scenario)
			}
			continue
		}
		if br.Err != nil {
			t.Errorf("%s on %s repeat %d: %v", br.Spec.Scheme, br.Spec.Scenario, br.Spec.Repeat, br.Err)
		}
	}
	if len(sr.Aggregates) != 5*4 {
		t.Errorf("aggregates = %d, want %d", len(sr.Aggregates), 5*4)
	}
}

func TestSweepPairsSeededScenarioFields(t *testing.T) {
	sweep := Sweep{
		Base:      sweepConfig(),
		Schemes:   []Scheme{SchemeCPVF, SchemeFLOOR},
		Scenarios: []string{"random-obstacles"},
		Repeats:   2,
		Seed:      3,
	}
	specs, err := sweep.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Runs of different schemes with the same repeat share the same
	// generated field (paired comparison); different repeats do not.
	byKey := map[[2]interface{}]Field{}
	for _, sp := range specs {
		k := [2]interface{}{sp.Scheme, sp.Repeat}
		byKey[k] = sp.Config.Field
	}
	same := byKey[[2]interface{}{SchemeCPVF, 0}].internal() == byKey[[2]interface{}{SchemeFLOOR, 0}].internal()
	if !same {
		t.Error("repeat 0 fields differ across schemes")
	}
	if byKey[[2]interface{}{SchemeCPVF, 0}].internal() == byKey[[2]interface{}{SchemeCPVF, 1}].internal() {
		t.Error("different repeats share one seeded field")
	}
}

func TestSweepSeedsAreStable(t *testing.T) {
	sweep := Sweep{
		Base:    sweepConfig(),
		Schemes: []Scheme{SchemeCPVF, SchemeFLOOR},
		Repeats: 3,
		Seed:    9,
	}
	a, err := sweep.Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sweep.Expand()
	if err != nil {
		t.Fatal(err)
	}
	perScheme := map[Scheme]map[uint64]bool{}
	byRepeat := map[int]uint64{}
	for i := range a {
		if a[i].Seed != b[i].Seed {
			t.Fatalf("run %d seed not stable: %d vs %d", i, a[i].Seed, b[i].Seed)
		}
		// Repeats within one scheme must not collide.
		seen := perScheme[a[i].Scheme]
		if seen == nil {
			seen = map[uint64]bool{}
			perScheme[a[i].Scheme] = seen
		}
		if seen[a[i].Seed] {
			t.Fatalf("run %d reuses seed %d within scheme %s", i, a[i].Seed, a[i].Scheme)
		}
		seen[a[i].Seed] = true
		// The scheme axis is excluded from derivation: every scheme of one
		// repeat shares a seed (paired initial layouts).
		if prev, ok := byRepeat[a[i].Repeat]; ok {
			if prev != a[i].Seed {
				t.Errorf("repeat %d seeds differ across schemes: %d vs %d", a[i].Repeat, prev, a[i].Seed)
			}
		} else {
			byRepeat[a[i].Repeat] = a[i].Seed
		}
	}
}

func TestRunBatchReportsPerRunErrors(t *testing.T) {
	good := sweepConfig()
	bad := sweepConfig()
	bad.Scheme = "bogus"
	out, err := RunBatch(context.Background(), []Config{good, bad}, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Err != nil {
		t.Errorf("good run failed: %v", out[0].Err)
	}
	if out[1].Err == nil {
		t.Error("bogus scheme should fail")
	}
}

func TestSweepUnknownScenario(t *testing.T) {
	sweep := Sweep{Base: sweepConfig(), Scenarios: []string{"atlantis"}}
	if _, err := sweep.Run(context.Background(), BatchOptions{}); err == nil {
		t.Error("unknown scenario should error")
	}
}

// TestBatchEmptyAndInvalidInputs covers the explicit guards against
// silently degenerate batches.
func TestBatchEmptyAndInvalidInputs(t *testing.T) {
	ctx := context.Background()
	if _, err := RunBatch(ctx, nil, BatchOptions{}); err == nil {
		t.Error("RunBatch with no configs should error")
	}
	if _, err := RunBatch(ctx, []Config{}, BatchOptions{}); err == nil {
		t.Error("RunBatch with empty config slice should error")
	}
	if _, err := RunBatch(ctx, []Config{sweepConfig()}, BatchOptions{Workers: -1}); err == nil {
		t.Error("negative Workers should error")
	}
	if _, err := RunBatch(ctx, []Config{sweepConfig()}, BatchOptions{Shard: Shard{Index: 2, Count: 2}}); err == nil {
		t.Error("out-of-range shard should error")
	}
	if _, err := RunBatch(ctx, []Config{sweepConfig()}, BatchOptions{Shard: Shard{Index: -1, Count: 2}}); err == nil {
		t.Error("negative shard index should error")
	}

	if _, err := (Sweep{}).Expand(); err == nil {
		t.Error("zero-value sweep (no scheme) should error")
	}
	if _, err := (Sweep{Base: Config{Scheme: SchemeFLOOR}}).Expand(); err == nil {
		t.Error("sweep with N=0 should error")
	}
	if _, err := (Sweep{Base: sweepConfig(), Ns: []int{30, 0}}).Expand(); err == nil {
		t.Error("sweep with a non-positive N axis value should error")
	}
	if _, err := (Sweep{Base: sweepConfig(), Schemes: []Scheme{SchemeFLOOR, ""}}).Expand(); err == nil {
		t.Error("sweep with an empty scheme axis value should error")
	}
	if _, err := (Sweep{Base: sweepConfig(), Repeats: -1}).Expand(); err == nil {
		t.Error("sweep with negative repeats should error")
	}
	// The defaults still work: a sweep over just the base config is one run.
	specs, err := (Sweep{Base: sweepConfig()}).Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 {
		t.Errorf("default expansion = %d specs, want 1", len(specs))
	}
}

func TestParseShard(t *testing.T) {
	for spec, want := range map[string]Shard{
		"":    {},
		"0/1": {Index: 0, Count: 1},
		"1/2": {Index: 1, Count: 2},
		"3/8": {Index: 3, Count: 8},
	} {
		got, err := ParseShard(spec)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %+v, %v; want %+v", spec, got, err, want)
		}
	}
	for _, spec := range []string{"0/0", "0/-5", "-1/2", "2/2", "1/2x", "x/2", "1", "1/", "/2", "1/2/3"} {
		if _, err := ParseShard(spec); err == nil {
			t.Errorf("ParseShard(%q) should error", spec)
		}
	}
}

// TestRunBatchCancellation checks that cancelling the context aborts
// dispatch while keeping every finished run's result.
func TestRunBatchCancellation(t *testing.T) {
	cfgs := make([]Config, 8)
	for i := range cfgs {
		cfgs[i] = sweepConfig()
		cfgs[i].Seed = uint64(i + 1)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	finished := 0
	out, err := RunBatch(ctx, cfgs, BatchOptions{
		Workers: 1,
		OnProgress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			finished = done
			if done == 2 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled batch should return the context error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	done, skipped := 0, 0
	for _, br := range out {
		switch {
		case br.Err == nil:
			done++
		case errors.Is(br.Err, context.Canceled):
			skipped++
		default:
			t.Errorf("unexpected error: %v", br.Err)
		}
	}
	if done < 2 || skipped == 0 || done+skipped != len(cfgs) {
		t.Errorf("done=%d skipped=%d of %d (finished callback saw %d)", done, skipped, len(cfgs), finished)
	}
	// Finished runs must carry real results.
	if out[0].Err != nil || out[0].Result.Coverage <= 0 {
		t.Errorf("first run should have completed: %+v", out[0])
	}
}

func TestSchemeRegistry(t *testing.T) {
	got := RegisteredSchemes()
	want := []Scheme{SchemeCPVF, SchemeFLOOR, SchemeMinimax, SchemeOPT, SchemeVOR}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RegisteredSchemes() = %v, want %v", got, want)
	}
}

func TestScenarioRegistry(t *testing.T) {
	names := ScenarioNames()
	for _, want := range []string{"free", "two-obstacles", "random-obstacles", "corridor",
		"campus", "disaster", "narrow-door", "l-shaped", "random-field"} {
		sc, ok := LookupScenario(want)
		if !ok {
			t.Errorf("scenario %q missing (have %v)", want, names)
			continue
		}
		if sc.Spec.Empty() {
			t.Errorf("scenario %q has no declarative spec", want)
		}
		f, err := BuildScenario(want, 5)
		if err != nil {
			t.Errorf("build %q: %v", want, err)
			continue
		}
		if w, h := f.Bounds(); w <= 0 || h <= 0 {
			t.Errorf("%q bounds = %v×%v", want, w, h)
		}
	}
	for alias, target := range map[string]string{"obstacle-free": "free", "random": "random-obstacles", "maze": "corridor"} {
		sc, ok := LookupScenario(alias)
		if !ok || sc.Name != target {
			t.Errorf("alias %q should resolve to %q, got %q (ok=%v)", alias, target, sc.Name, ok)
		}
	}
}

// TestScenariosRunnable deploys a small FLOOR network in every registered
// scenario, confirming each environment is a valid connected field.
func TestScenariosRunnable(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			f, err := BuildScenario(sc.Name, 11)
			if err != nil {
				t.Fatal(err)
			}
			cfg := sweepConfig()
			cfg.Duration = 60
			cfg.Field = f
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Coverage <= 0 {
				t.Errorf("coverage = %v", res.Coverage)
			}
		})
	}
}

func TestStabilizeExtendsRun(t *testing.T) {
	cfg := sweepConfig()
	cfg.Duration = 30
	cfg.Stabilize = &StabilizeOptions{Cap: 400, Chunk: 100}
	stable, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 30 sensors spreading over 1 km² are nowhere near settled after 30 s,
	// so stabilization must keep the run moving past the nominal horizon.
	if stable.ConvergenceTime <= cfg.Duration {
		t.Errorf("stabilized run stopped moving at %v s, within the %v s horizon",
			stable.ConvergenceTime, cfg.Duration)
	}
	if stable.Coverage <= 0 {
		t.Errorf("coverage = %v", stable.Coverage)
	}
}
