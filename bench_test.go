package mobisense_test

// The bench harness regenerates every table and figure of the paper's
// evaluation as Go benchmarks, reporting the headline quantity of each
// artifact through b.ReportMetric so that
//
//	go test -bench=. -benchmem
//
// reproduces the paper's evaluation end to end. Benches run the Quick
// variants of the experiment sweeps (full N = 240 scenarios, reduced sweep
// grids); the cmd/experiments binary runs the full grids.

import (
	"context"
	"strings"
	"testing"
	"time"

	"mobisense"
	"mobisense/internal/experiments"
	"mobisense/internal/store"
)

// metricName sanitizes a row label into a benchmark metric unit (metric
// units must not contain whitespace).
func metricName(label, metric string) string {
	r := strings.NewReplacer(" ", "_", "(", "", ")", "", "=", "", ",", "")
	return r.Replace(label) + "/" + metric
}

func reportRows(b *testing.B, rows []experiments.Row, metrics ...string) {
	b.Helper()
	for _, r := range rows {
		for _, m := range metrics {
			b.ReportMetric(r.Get(m), metricName(r.Label, m))
		}
	}
}

// BenchmarkFig3CPVFCoverage regenerates Figure 3: CPVF's coverage in the
// three canonical scenarios (obstacle-free rc=60/rs=40, rc=30, and the
// two-obstacle field).
func BenchmarkFig3CPVFCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig3(experiments.Options{Quick: true})
		if i == b.N-1 {
			reportRows(b, rows, "coverage", "paper_coverage")
		}
	}
}

// BenchmarkFig8FLOORCoverage regenerates Figure 8: FLOOR in the same
// scenarios.
func BenchmarkFig8FLOORCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig8(experiments.Options{Quick: true})
		if i == b.N-1 {
			reportRows(b, rows, "coverage", "paper_coverage")
		}
	}
}

// BenchmarkFig9CoverageSweep regenerates Figure 9: coverage of CPVF,
// FLOOR and OPT across sensor counts and (rc, rs) pairs.
func BenchmarkFig9CoverageSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig9(experiments.Options{Quick: true})
		if i == b.N-1 {
			reportRows(b, rows, "cpvf_coverage", "floor_coverage", "opt_coverage")
		}
	}
}

// BenchmarkFig10VoronoiComparison regenerates Figure 10: FLOOR vs VOR vs
// Minimax over rc/rs, with disconnection and incorrect-VD detection.
func BenchmarkFig10VoronoiComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig10(experiments.Options{Quick: true})
		if i == b.N-1 {
			reportRows(b, rows, "floor_coverage", "vor_coverage", "minimax_coverage",
				"vor_connected", "minimax_connected")
		}
	}
}

// BenchmarkFig11MovingDistance regenerates Figure 11: average moving
// distance of the six schemes.
func BenchmarkFig11MovingDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig11(experiments.Options{Quick: true})
		if i == b.N-1 {
			reportRows(b, rows, "avg_distance")
		}
	}
}

// BenchmarkFig12OscillationAvoidance regenerates Figure 12: the effect of
// the oscillation-avoidance factor δ on CPVF's distance and coverage.
func BenchmarkFig12OscillationAvoidance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig12(experiments.Options{Quick: true})
		if i == b.N-1 {
			reportRows(b, rows, "avg_distance", "coverage")
		}
	}
}

// BenchmarkFig13RandomObstacles regenerates Figure 13: coverage and
// moving-distance distributions of CPVF and FLOOR over random-obstacle
// deployments.
func BenchmarkFig13RandomObstacles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig13(experiments.Options{Quick: true})
		if i == b.N-1 {
			reportRows(b, rows[:1], "cpvf_coverage", "floor_coverage",
				"cpvf_distance", "floor_distance")
		}
	}
}

// BenchmarkTable1MessageOverhead regenerates Table 1: FLOOR's protocol
// message counts across N and invitation TTL.
func BenchmarkTable1MessageOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(experiments.Options{Quick: true})
		if i == b.N-1 {
			reportRows(b, rows, "total_k", "per_node_k", "paper_total_k")
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benches for the design choices DESIGN.md calls out.

func ablationConfig(s mobisense.Scheme) mobisense.Config {
	cfg := mobisense.DefaultConfig(s)
	cfg.N = 120
	return cfg
}

// BenchmarkAblationLazyMovement compares CPVF's moving distance with and
// without the §3.3 lazy-movement strategy.
func BenchmarkAblationLazyMovement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on, err := mobisense.Run(ablationConfig(mobisense.SchemeCPVF))
		if err != nil {
			b.Fatal(err)
		}
		cfg := ablationConfig(mobisense.SchemeCPVF)
		cfg.CPVF = &mobisense.CPVFOptions{DisableLazy: true}
		offRes, err := mobisense.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(on.AvgMoveDistance, "lazy-on/distance")
			b.ReportMetric(offRes.AvgMoveDistance, "lazy-off/distance")
			b.ReportMetric(on.Coverage, "lazy-on/coverage")
			b.ReportMetric(offRes.Coverage, "lazy-off/coverage")
		}
	}
}

// BenchmarkAblationParentChange compares CPVF with and without the §4.2
// parent-change protocol.
func BenchmarkAblationParentChange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on, err := mobisense.Run(ablationConfig(mobisense.SchemeCPVF))
		if err != nil {
			b.Fatal(err)
		}
		cfg := ablationConfig(mobisense.SchemeCPVF)
		cfg.CPVF = &mobisense.CPVFOptions{DisallowParentChange: true}
		off, err := mobisense.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(on.Coverage, "parent-change-on/coverage")
			b.ReportMetric(off.Coverage, "parent-change-off/coverage")
		}
	}
}

// BenchmarkAblationFloorTTL sweeps FLOOR's invitation TTL, the
// message-overhead vs coverage trade of Table 1.
func BenchmarkAblationFloorTTL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ttl := range []int{12, 24, 48} {
			cfg := ablationConfig(mobisense.SchemeFLOOR)
			cfg.Floor = &mobisense.FloorOptions{TTL: ttl}
			res, err := mobisense.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				label := "ttl-" + itoa(ttl)
				b.ReportMetric(res.Coverage, label+"/coverage")
				b.ReportMetric(float64(res.Messages)/1000, label+"/messages_k")
			}
		}
	}
}

// BenchmarkAblationExclusiveFrac sweeps FLOOR's §5.3 movability threshold.
func BenchmarkAblationExclusiveFrac(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, frac := range []float64{0.2, 0.4, 0.6, 0.8} {
			cfg := ablationConfig(mobisense.SchemeFLOOR)
			cfg.Floor = &mobisense.FloorOptions{ExclusiveFrac: frac}
			res, err := mobisense.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				label := "frac-" + ftoa(frac)
				b.ReportMetric(res.Coverage, label+"/coverage")
				b.ReportMetric(res.AvgMoveDistance, label+"/distance")
			}
		}
	}
}

// BenchmarkAblationFloorRouting compares Algorithm 1's three-leg connect
// route against a straight BUG2 walk (§5.2's overlap-reduction claim).
func BenchmarkAblationFloorRouting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		threeLeg, err := mobisense.Run(ablationConfig(mobisense.SchemeFLOOR))
		if err != nil {
			b.Fatal(err)
		}
		cfg := ablationConfig(mobisense.SchemeFLOOR)
		cfg.Floor = &mobisense.FloorOptions{DirectConnectWalk: true}
		direct, err := mobisense.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(threeLeg.Coverage, "three-leg/coverage")
			b.ReportMetric(direct.Coverage, "direct/coverage")
			b.ReportMetric(threeLeg.AvgMoveDistance, "three-leg/distance")
			b.ReportMetric(direct.AvgMoveDistance, "direct/distance")
		}
	}
}

// BenchmarkAblationExpansionPriority compares FLOOR with and without the
// FLG > BLG > IFLG invitation priority (§5.5.1).
func BenchmarkAblationExpansionPriority(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on, err := mobisense.Run(ablationConfig(mobisense.SchemeFLOOR))
		if err != nil {
			b.Fatal(err)
		}
		cfg := ablationConfig(mobisense.SchemeFLOOR)
		cfg.Floor = &mobisense.FloorOptions{DisablePriority: true}
		off, err := mobisense.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(on.Coverage, "priority-on/coverage")
			b.ReportMetric(off.Coverage, "priority-off/coverage")
		}
	}
}

// ---------------------------------------------------------------------------
// Batch-runner throughput: the same small scheme×scenario sweep executed
// sequentially and on the full worker pool. The ratio tracks how well the
// experiment suite's hot path saturates the hardware.

func batchSweep() mobisense.Sweep {
	cfg := mobisense.DefaultConfig(mobisense.SchemeFLOOR)
	cfg.N = 60
	cfg.Duration = 150
	return mobisense.Sweep{
		Base:      cfg,
		Schemes:   []mobisense.Scheme{mobisense.SchemeCPVF, mobisense.SchemeFLOOR},
		Scenarios: []string{"free", "two-obstacles"},
		Repeats:   2,
		Seed:      1,
	}
}

func benchmarkBatchSweep(b *testing.B, workers int) {
	// Allocation tracking guards the per-run pooling work. The first
	// pooling pass (event heaps, spatial indexes, neighbor scratch) cut
	// this sweep from ~594k to ~199k allocs/op; the epoch-stamped coverage
	// scratch, dense spatial buckets, struct-of-arrays world state and
	// scheme-layer scratch then took it to ~2.8k allocs/op and ~1.6 MB/op,
	// every step with bit-identical coverage metrics. The checked-in
	// BENCH_PR6.json snapshot and cmd/bench gate this in CI.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sr, err := batchSweep().Run(context.Background(), mobisense.BatchOptions{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, a := range sr.Aggregates {
				label := string(a.Scheme) + "-" + a.Scenario
				b.ReportMetric(a.Coverage.Mean, label+"/coverage")
			}
		}
	}
}

// BenchmarkBatchSweepSequential runs the sweep on one worker.
func BenchmarkBatchSweepSequential(b *testing.B) { benchmarkBatchSweep(b, 1) }

// BenchmarkBatchSweepParallel runs the same sweep on GOMAXPROCS workers.
func BenchmarkBatchSweepParallel(b *testing.B) { benchmarkBatchSweep(b, 0) }

// BenchmarkIncrementalTraceSweep measures the workload the incremental
// coverage engine targets: a densely-traced obstacle sweep where every
// trace sample needs the coverage fraction. With the engine enabled
// (default) each sample costs O(moved sensors × disk window); the
// MOBISENSE_NO_INCR fallback re-scans every sensor's disk per sample.
// The store byte-compare test pins both paths to identical records.
func BenchmarkIncrementalTraceSweep(b *testing.B) {
	cfg := mobisense.DefaultConfig(mobisense.SchemeFLOOR)
	cfg.N = 40
	cfg.Duration = 300
	cfg.Trace = &mobisense.TraceOptions{Stride: 2}
	sweep := mobisense.Sweep{
		Base:      cfg,
		Schemes:   []mobisense.Scheme{mobisense.SchemeCPVF, mobisense.SchemeFLOOR},
		Scenarios: []string{"narrow-door", "random-obstacles"},
		Repeats:   2,
		Seed:      7,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sr, err := sweep.Run(context.Background(), mobisense.BatchOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, a := range sr.Aggregates {
				label := string(a.Scheme) + "-" + a.Scenario
				b.ReportMetric(a.Coverage.Mean, label+"/coverage")
			}
		}
	}
}

// BenchmarkStoreWrite measures the sweep store's per-record JSONL
// encode+flush cost — the persistence overhead each finished run pays on
// top of its simulation time.
func BenchmarkStoreWrite(b *testing.B) {
	w, err := store.Create(b.TempDir(), store.Manifest{Kind: "batch", TotalRuns: b.N})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	rec := store.Record{
		Scheme:            "floor",
		Scenario:          "random-obstacles",
		N:                 240,
		Seed:              0x9e3779b97f4a7c15,
		ConfigFingerprint: "a1b2c3d4e5f60718",
		Coverage:          0.7312345678,
		Coverage2:         0.3312345678,
		Alive:             240,
		AvgMoveDistance:   123.456789,
		Messages:          457000,
		ConvergenceTime:   714.25,
		Connected:         true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Index = i
		rec.Repeat = i
		if err := w.Append(i, rec, 250*time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N), "records")
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func ftoa(v float64) string {
	return itoa(int(v*10 + 0.5))
}
