// Command bench runs the repository's perf-tracking benchmark suite with
// allocation accounting, records the results as a JSON snapshot, and
// compares the current tree against a checked-in snapshot.
//
// Snapshot a baseline (done once per perf-sensitive PR):
//
//	go run ./cmd/bench -count 5 -out BENCH_PR9.json
//
// Gate the current tree against it (CI's bench-gate job):
//
//	go run ./cmd/bench -count 5 -compare BENCH_PR9.json -ns-gate -ns-tol 0.75
//
// The gate fails when any benchmark's allocs/op regresses by more than
// -allocs-tol (default 10%). Wall-clock (ns/op) is machine-dependent, so
// ns/op regressions beyond -ns-tol (default 15%) only warn unless -ns-gate
// is set; CI gates with a generous tolerance that still catches the
// multi-x cost of losing a kernel fast path. With -count > 1 the best
// (minimum) of the repetitions is used, which suppresses GC-timing noise
// in pooled allocation counts and scheduler jitter in wall-clock numbers.
//
// To profile a kernel, narrow -pkgs to one package and pass the profile
// through:
//
//	go run ./cmd/bench -pkgs ./internal/coverage -bench BenchmarkFractionLOS -cpuprofile cpu.out
//	go tool pprof -top cpu.out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// defaultBenchRegexp selects the perf-tracking benchmarks: the end-to-end
// batch sweep (the headline allocs/op number), the store writer, the
// pooled hot-path micro benches in internal/coverage and internal/spatial,
// and the geometry/connectivity kernel benches guarded by the ns/op gate
// (FirstHit, LOS coverage, exclusive area, unit-disk flood).
const defaultBenchRegexp = "^(BenchmarkBatchSweepSequential|BenchmarkBatchSweepParallel|" +
	"BenchmarkStoreWrite|BenchmarkFractionReuse|BenchmarkInsertMoveQuery|" +
	"BenchmarkFirstHit|BenchmarkFractionLOS|BenchmarkExclusiveArea|BenchmarkUnitDiskReachable|" +
	"BenchmarkFractionIncremental|BenchmarkIncrementalTraceSweep)$"

// Result is one benchmark's measured costs.
type Result struct {
	Pkg      string  `json:"pkg"`
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// Snapshot is the on-disk baseline format (BENCH_PR6.json).
type Snapshot struct {
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	BenchRegex string            `json:"bench_regex"`
	BenchTime  string            `json:"bench_time"`
	Count      int               `json:"count"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	var (
		benchRe   = flag.String("bench", defaultBenchRegexp, "benchmark regexp passed to go test -bench")
		benchTime = flag.String("benchtime", "1x", "go test -benchtime value")
		count     = flag.Int("count", 1, "repetitions; the best (min) of each metric is kept")
		pkgs      = flag.String("pkgs", "./...", "packages to benchmark")
		out       = flag.String("out", "", "write the snapshot JSON to this path")
		compare   = flag.String("compare", "", "compare against the snapshot JSON at this path")
		allocsTol = flag.Float64("allocs-tol", 0.10, "max allowed fractional allocs/op regression")
		nsTol     = flag.Float64("ns-tol", 0.15, "ns/op regression fraction that triggers a warning")
		nsGate    = flag.Bool("ns-gate", false, "fail (not just warn) on ns/op regressions beyond -ns-tol")
		cpuProf   = flag.String("cpuprofile", "", "pass -cpuprofile to go test (requires -pkgs to name a single package)")
		memProf   = flag.String("memprofile", "", "pass -memprofile to go test (requires -pkgs to name a single package)")
	)
	flag.Parse()

	cur, err := run(*benchRe, *benchTime, *count, *pkgs, *cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	snap := Snapshot{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BenchRegex: *benchRe,
		BenchTime:  *benchTime,
		Count:      *count,
		Benchmarks: cur,
	}

	for _, name := range sortedNames(cur) {
		r := cur[name]
		fmt.Printf("%-32s %14.0f ns/op %12.0f B/op %10.0f allocs/op\n", name, r.NsOp, r.BOp, r.AllocsOp)
	}

	if *out != "" {
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Println("snapshot written to", *out)
	}

	if *compare != "" {
		base, err := load(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if base.GOMAXPROCS != snap.GOMAXPROCS {
			fmt.Printf("note: snapshot taken at GOMAXPROCS=%d, running at %d; "+
				"ns/op comparisons are indicative only\n", base.GOMAXPROCS, snap.GOMAXPROCS)
		}
		printDelta(base, snap)
		if !gate(base, snap, *allocsTol, *nsTol, *nsGate) {
			os.Exit(1)
		}
		fmt.Println("bench gate: PASS")
	}
}

// run executes the benchmark suite `count` times and keeps the minimum of
// every metric per benchmark.
func run(benchRe, benchTime string, count int, pkgs, cpuProf, memProf string) (map[string]Result, error) {
	args := []string{"test", "-run", "^$", "-bench", benchRe, "-benchmem",
		"-benchtime", benchTime, "-count", strconv.Itoa(count)}
	// Profile passthrough: go test rejects profile flags across multiple
	// packages, so callers narrow with -pkgs (see the README profiling
	// workflow).
	if cpuProf != "" {
		args = append(args, "-cpuprofile", cpuProf)
	}
	if memProf != "" {
		args = append(args, "-memprofile", memProf)
	}
	args = append(args, strings.Fields(pkgs)...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBuf, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	res := parse(string(outBuf))
	if len(res) == 0 {
		return nil, fmt.Errorf("no benchmark results matched %q", benchRe)
	}
	return res, nil
}

// parse extracts ns/op, B/op and allocs/op from `go test -bench` output,
// keeping the minimum across repeated lines of the same benchmark.
func parse(out string) map[string]Result {
	res := make(map[string]Result)
	pkg := ""
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") || !strings.Contains(line, "ns/op") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		// Strip the -GOMAXPROCS suffix from the name.
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i]
		}
		r := Result{Pkg: pkg, NsOp: -1, BOp: -1, AllocsOp: -1}
		for i := 2; i < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				continue
			}
			switch fields[i] {
			case "ns/op":
				r.NsOp = v
			case "B/op":
				r.BOp = v
			case "allocs/op":
				r.AllocsOp = v
			}
		}
		if r.NsOp < 0 {
			continue
		}
		if prev, ok := res[name]; ok {
			r.NsOp = min(r.NsOp, prev.NsOp)
			r.BOp = min(r.BOp, prev.BOp)
			r.AllocsOp = min(r.AllocsOp, prev.AllocsOp)
		}
		res[name] = r
	}
	return res
}

// printDelta prints a benchstat-style comparison of the current run
// against the baseline snapshot — old, new and % change for ns/op, B/op
// and allocs/op — covering every benchmark present in either side, so
// before/after tables in the README and PR descriptions can be pasted
// instead of hand-assembled.
func printDelta(base, cur Snapshot) {
	all := make(map[string]Result, len(base.Benchmarks)+len(cur.Benchmarks))
	for n, r := range base.Benchmarks {
		all[n] = r
	}
	for n, r := range cur.Benchmarks {
		all[n] = r
	}
	fmt.Printf("\n%-32s %35s  %35s  %35s\n", "", "ns/op", "B/op", "allocs/op")
	fmt.Printf("%-32s %12s %12s %9s  %12s %12s %9s  %12s %12s %9s\n",
		"benchmark", "old", "new", "delta", "old", "new", "delta", "old", "new", "delta")
	for _, name := range sortedNames(all) {
		b, inBase := base.Benchmarks[name]
		c, inCur := cur.Benchmarks[name]
		row := fmt.Sprintf("%-32s", strings.TrimPrefix(name, "Benchmark"))
		for _, m := range [][2]float64{{b.NsOp, c.NsOp}, {b.BOp, c.BOp}, {b.AllocsOp, c.AllocsOp}} {
			row += fmt.Sprintf(" %12s %12s %9s ",
				cell(m[0], inBase), cell(m[1], inCur), delta(m[0], m[1], inBase && inCur))
		}
		fmt.Println(row)
	}
	fmt.Println()
}

// cell renders one metric value ("-" for a side the benchmark is missing
// from).
func cell(v float64, present bool) string {
	if !present || v < 0 {
		return "-"
	}
	return strconv.FormatFloat(v, 'f', 0, 64)
}

// delta renders the percent change between a baseline and current value.
func delta(old, new float64, comparable bool) string {
	switch {
	case !comparable || old < 0 || new < 0:
		return "-"
	case old == 0 && new == 0:
		return "~"
	case old == 0:
		return "+inf%"
	default:
		return fmt.Sprintf("%+.1f%%", 100*(new/old-1))
	}
}

// gate compares current results against the baseline snapshot. It returns
// false when any gated threshold is exceeded or a baseline benchmark is
// missing from the current run.
func gate(base, cur Snapshot, allocsTol, nsTol float64, nsGate bool) bool {
	ok := true
	for _, name := range sortedNames(base.Benchmarks) {
		b := base.Benchmarks[name]
		c, found := cur.Benchmarks[name]
		if !found {
			fmt.Printf("FAIL %s: benchmark missing from current run\n", name)
			ok = false
			continue
		}
		if b.AllocsOp > 0 {
			frac := c.AllocsOp/b.AllocsOp - 1
			if frac > allocsTol {
				fmt.Printf("FAIL %s: allocs/op %.0f -> %.0f (%+.1f%%, tolerance %.0f%%)\n",
					name, b.AllocsOp, c.AllocsOp, 100*frac, 100*allocsTol)
				ok = false
			} else {
				fmt.Printf("ok   %s: allocs/op %.0f -> %.0f (%+.1f%%)\n",
					name, b.AllocsOp, c.AllocsOp, 100*frac)
			}
		}
		if b.NsOp > 0 {
			frac := c.NsOp/b.NsOp - 1
			if frac > nsTol {
				verdict := "warn"
				if nsGate {
					verdict = "FAIL"
					ok = false
				}
				fmt.Printf("%s %s: ns/op %.0f -> %.0f (%+.1f%%, tolerance %.0f%%)\n",
					verdict, name, b.NsOp, c.NsOp, 100*frac, 100*nsTol)
			}
		}
	}
	return ok
}

func load(path string) (Snapshot, error) {
	var s Snapshot
	buf, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(buf, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func sortedNames(m map[string]Result) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
