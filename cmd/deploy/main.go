// Command deploy runs a single sensor deployment and reports its metrics,
// an ASCII layout map, and optionally a CSV of final positions.
//
// Examples:
//
//	deploy -scheme floor
//	deploy -scheme cpvf -field two-obstacles -n 240 -rc 60 -rs 40
//	deploy -scheme vor -rc 240 -rs 60 -map=false
//	deploy -scheme floor -field random -field-seed 7 -csv layout.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"mobisense"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		scheme    = flag.String("scheme", "floor", "deployment scheme: cpvf, floor, vor, minimax, opt")
		fieldKind = flag.String("field", "free", "field: free, two-obstacles, random")
		fieldSeed = flag.Uint64("field-seed", 1, "seed for -field random")
		n         = flag.Int("n", 240, "number of sensors")
		rc        = flag.Float64("rc", 60, "communication range (m)")
		rs        = flag.Float64("rs", 40, "sensing range (m)")
		speed     = flag.Float64("speed", 2, "maximum speed (m/s)")
		duration  = flag.Float64("duration", 750, "simulated time (s)")
		seed      = flag.Uint64("seed", 1, "run seed")
		uniform   = flag.Bool("uniform", false, "uniform initial distribution instead of clustered")
		osc       = flag.String("oscillation", "none", "CPVF oscillation avoidance: none, one-step, two-step")
		delta     = flag.Float64("delta", 4, "CPVF oscillation avoidance factor δ")
		ttl       = flag.Int("ttl", 0, "FLOOR invitation TTL in hops (0 = 0.2*N)")
		showMap   = flag.Bool("map", true, "print an ASCII layout map")
		csvPath   = flag.String("csv", "", "write final positions CSV to this path")
	)
	flag.Parse()

	cfg := mobisense.DefaultConfig(mobisense.Scheme(*scheme))
	cfg.N = *n
	cfg.Rc = *rc
	cfg.Rs = *rs
	cfg.Speed = *speed
	cfg.Duration = *duration
	cfg.Seed = *seed
	cfg.ClusterInit = !*uniform
	cfg.CPVF = &mobisense.CPVFOptions{Oscillation: *osc, Delta: *delta}
	cfg.Floor = &mobisense.FloorOptions{TTL: *ttl}

	switch *fieldKind {
	case "free":
		cfg.Field = mobisense.ObstacleFreeField()
	case "two-obstacles":
		cfg.Field = mobisense.TwoObstacleField()
	case "random":
		f, err := mobisense.RandomObstacleField(*fieldSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "random field: %v\n", err)
			return 1
		}
		cfg.Field = f
	default:
		fmt.Fprintf(os.Stderr, "unknown field %q\n", *fieldKind)
		return 2
	}

	res, err := mobisense.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "run: %v\n", err)
		return 1
	}

	fmt.Printf("scheme           %s\n", res.Scheme)
	fmt.Printf("coverage         %.1f%%\n", 100*res.Coverage)
	fmt.Printf("avg distance     %.1f m\n", res.AvgMoveDistance)
	fmt.Printf("connected        %v\n", res.Connected)
	if res.Messages > 0 {
		fmt.Printf("messages         %d (%.1f per sensor per second)\n",
			res.Messages, float64(res.Messages)/float64(cfg.N)/cfg.Duration)
	}
	if res.ConvergenceTime > 0 {
		fmt.Printf("last movement    %.0f s\n", res.ConvergenceTime)
	}
	if res.Placements != nil {
		fmt.Printf("floor placements flg=%d blg=%d iflg=%d\n",
			res.Placements["flg"], res.Placements["blg"], res.Placements["iflg"])
	}
	if res.IncorrectVoronoiCells > 0 {
		fmt.Printf("incorrect cells  %d\n", res.IncorrectVoronoiCells)
	}
	fmt.Printf("wall time        %s\n", res.Elapsed.Round(1e6))

	if *showMap {
		fmt.Println()
		fmt.Print(res.ASCIIMap(72))
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(res.PositionsCSV()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write csv: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	return 0
}
