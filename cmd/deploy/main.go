// Command deploy runs sensor deployments and reports their metrics, an
// ASCII layout map, and optionally a CSV of final positions. Schemes and
// scenarios resolve through the mobisense registries, and multi-run
// invocations fan out across cores via the batch runner.
//
// Sweeps can stream every finished run to an on-disk store (-store),
// survive Ctrl-C (finished runs persist; re-run with -resume to continue),
// stop deterministically after a number of runs (-max-runs), and split
// across machines (-shard i/n, one store per shard; merge the stores with
// cmd/report).
//
// Examples:
//
//	deploy -scheme floor
//	deploy -scheme cpvf -scenario two-obstacles -n 240 -rc 60 -rs 40
//	deploy -scheme vor -rc 240 -rs 60 -map=false
//	deploy -scheme floor -scenario random-obstacles -field-seed 7 -csv layout.csv
//	deploy -scheme floor -scenario disaster -runs 30 -workers 8
//	deploy -scheme floor -scenario random -runs 300 -store sweep/
//	deploy -scheme floor -scenario random -runs 300 -store sweep/ -resume
//	deploy -scheme floor -scenario random -runs 300 -store shard0/ -shard 0/2
//
// Generalized parameter axes sweep any built-in knob (rc, rs, speed,
// cpvf.delta, floor.ttl) as a cross-product; -axis repeats for multiple
// dimensions and -fixed-seed pairs every axis point on one initial
// deployment (the paper's parameter-study protocol):
//
//	deploy -scheme floor -axis rc=30,45,60 -runs 10
//	deploy -scheme cpvf -axis rc=40,60 -axis speed=1,2 -fixed-seed
//
// Custom environments load from declarative field-spec JSON files
// (-field): bounds, polygonal obstacles, the base-station reference
// point, and optionally a seeded random-obstacle generator. The store
// manifest embeds the spec, so the sweep reproduces anywhere:
//
//	deploy -scheme floor -field warehouse.json -runs 20 -store sweep/
//
// Per-tick run telemetry (-trace, stride in simulated seconds) samples
// coverage, connectivity and movement as the deployment unfolds: single
// runs print the series, sweeps persist it in store records for the
// serve dashboard's trace chart:
//
//	deploy -scheme floor -trace 25
//	deploy -scheme floor -trace 25 -trace-csv series.csv
//	deploy -scheme floor -trace 25 -trace-layouts -runs 10 -store sweep/
//	deploy -scheme floor -runs 30 -store sweep/ -trace 25
//
// Traced runs also report convergence metrics (time to 90%/99% of final
// coverage, time to stable connectivity, settling time and the movement
// cost at convergence); -trace-layouts additionally snapshots the sensor
// layout at every sample, which powers the serve dashboard's replay
// animation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"mobisense"
)

func main() {
	os.Exit(run())
}

func run() int {
	schemeNames := make([]string, 0, 8)
	for _, s := range mobisense.RegisteredSchemes() {
		schemeNames = append(schemeNames, string(s))
	}
	var (
		scheme    = flag.String("scheme", "floor", "deployment scheme: "+strings.Join(schemeNames, ", "))
		scenario  = flag.String("scenario", "free", "scenario: "+strings.Join(mobisense.ScenarioNames(), ", "))
		fieldKind = flag.String("field", "", "field-spec JSON file defining a custom environment (overrides -scenario); a registered scenario name is accepted as a deprecated alias for -scenario")
		fieldSeed = flag.Uint64("field-seed", 1, "seed for seeded scenarios/specs in single runs; sweeps (-runs > 1) derive fields from -seed")
		n         = flag.Int("n", 240, "number of sensors")
		rc        = flag.Float64("rc", 60, "communication range (m)")
		rs        = flag.Float64("rs", 40, "sensing range (m)")
		speed     = flag.Float64("speed", 2, "maximum speed (m/s)")
		duration  = flag.Float64("duration", 750, "simulated time (s)")
		seed      = flag.Uint64("seed", 1, "run seed (base seed for -runs > 1)")
		runs      = flag.Int("runs", 1, "number of repeated runs with derived seeds")
		workers   = flag.Int("workers", 0, "worker-pool size for -runs > 1 (0 = GOMAXPROCS)")
		uniform   = flag.Bool("uniform", false, "uniform initial distribution instead of clustered")
		osc       = flag.String("oscillation", "none", "CPVF oscillation avoidance: none, one-step, two-step")
		delta     = flag.Float64("delta", 4, "CPVF oscillation avoidance factor δ")
		ttl       = flag.Int("ttl", 0, "FLOOR invitation TTL in hops (0 = 0.2*N)")
		showMap   = flag.Bool("map", true, "print an ASCII layout map (single run only)")
		csvPath   = flag.String("csv", "", "write final positions CSV to this path (single run only)")
		storeDir  = flag.String("store", "", "stream finished runs to this store directory (-runs > 1)")
		layouts   = flag.Bool("store-layouts", false, "persist each run's initial and final sensor layouts in its store record (requires -store)")
		trace     = flag.Float64("trace", 0, "sample per-tick telemetry every this many simulated seconds (0 = off); single runs print the series, sweeps persist it in -store records")
		traceLay  = flag.Bool("trace-layouts", false, "capture the full sensor layout in every trace sample for replay animation (requires -trace)")
		traceLayN = flag.Int("trace-layout-stride", 0, "capture layouts only every Nth trace sample (0 or 1 = every; requires -trace-layouts)")
		traceCSV  = flag.String("trace-csv", "", "write the run's trace series as CSV to this path (single run only, requires -trace)")
		resume    = flag.Bool("resume", false, "continue an interrupted sweep in the -store directory")
		shardSpec = flag.String("shard", "", "run only shard i of n, as \"i/n\" (requires -store; merge with cmd/report)")
		maxRuns   = flag.Int("max-runs", 0, "stop dispatching after this many completed runs (0 = all); finished runs stay in the store")
		fixedSeed = flag.Bool("fixed-seed", false, "give every sweep run the -seed verbatim instead of derived seeds (paired axis points)")
	)
	var axes []mobisense.ParamAxis
	flag.Func("axis", "sweep a built-in axis as \"name=v1,v2,...\" ("+strings.Join(mobisense.AxisNames(), ", ")+"); string-valued axes take their values by name, e.g. cpvf.osc=none,two-step; repeatable",
		func(spec string) error {
			ax, err := mobisense.ParseAxis(spec)
			if err != nil {
				return err
			}
			axes = append(axes, ax)
			return nil
		})
	flag.Parse()

	scenarioExplicit := false
	flag.Visit(func(f *flag.Flag) { scenarioExplicit = scenarioExplicit || f.Name == "scenario" })
	scenarioName := *scenario
	var fieldSpec *mobisense.FieldSpec
	if *fieldKind != "" {
		// A regular file is a spec; anything else (including a directory
		// that happens to share a scenario's name) falls through to the
		// deprecated -field <scenario-name> alias.
		if st, statErr := os.Stat(*fieldKind); statErr == nil && st.Mode().IsRegular() {
			if scenarioExplicit {
				// Mirror the serve API: a request may name a scenario or
				// supply a field spec, never both silently.
				fmt.Fprintln(os.Stderr, "-scenario and a -field spec file conflict: pick one environment")
				return 2
			}
			spec, err := mobisense.LoadFieldSpecFile(*fieldKind)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			fieldSpec = &spec
		} else if _, ok := mobisense.LookupScenario(*fieldKind); ok {
			scenarioName = *fieldKind
		} else {
			fmt.Fprintf(os.Stderr, "-field %q is neither a readable spec file nor a scenario name (have %s)\n",
				*fieldKind, strings.Join(mobisense.ScenarioNames(), ", "))
			return 2
		}
	}
	if fieldSpec == nil {
		if _, ok := mobisense.LookupScenario(scenarioName); !ok {
			fmt.Fprintf(os.Stderr, "unknown scenario %q (have %s)\n",
				scenarioName, strings.Join(mobisense.ScenarioNames(), ", "))
			return 2
		}
	}
	shard, err := mobisense.ParseShard(*shardSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *resume && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "-resume needs -store: there is nothing to resume from")
		return 2
	}
	if shard.Count > 1 && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "-shard needs -store: a shard's slice of the aggregates is useless unpersisted")
		return 2
	}
	if *layouts && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "-store-layouts needs -store: layouts persist in store records")
		return 2
	}
	if math.IsNaN(*trace) || math.IsInf(*trace, 0) || *trace < 0 {
		fmt.Fprintf(os.Stderr, "-trace stride must be a finite value >= 0, got %g\n", *trace)
		return 2
	}
	if *trace > 0 && (*runs > 1 || len(axes) > 0) && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "-trace in a sweep needs -store: the series persist in store records")
		return 2
	}
	if *traceLay && *trace == 0 {
		fmt.Fprintln(os.Stderr, "-trace-layouts needs -trace: there is no series to capture layouts into")
		return 2
	}
	if *traceLayN < 0 {
		fmt.Fprintf(os.Stderr, "-trace-layout-stride must be >= 0, got %d\n", *traceLayN)
		return 2
	}
	if *traceLayN > 1 && !*traceLay {
		fmt.Fprintln(os.Stderr, "-trace-layout-stride needs -trace-layouts: there are no layout samples to thin")
		return 2
	}
	if *traceCSV != "" && *trace == 0 {
		fmt.Fprintln(os.Stderr, "-trace-csv needs -trace: there is no series to write")
		return 2
	}
	if *traceCSV != "" && (*runs > 1 || len(axes) > 0) {
		fmt.Fprintln(os.Stderr, "-trace-csv is single-run only; sweeps export aggregated curves via report -traces")
		return 2
	}

	cfg := mobisense.DefaultConfig(mobisense.Scheme(*scheme))
	cfg.N = *n
	cfg.Rc = *rc
	cfg.Rs = *rs
	cfg.Speed = *speed
	cfg.Duration = *duration
	cfg.Seed = *seed
	cfg.ClusterInit = !*uniform
	cfg.CPVF = &mobisense.CPVFOptions{Oscillation: *osc, Delta: *delta}
	cfg.Floor = &mobisense.FloorOptions{TTL: *ttl}
	if *trace > 0 {
		cfg.Trace = &mobisense.TraceOptions{Stride: *trace, Layouts: *traceLay, LayoutStride: *traceLayN}
	}

	// Ctrl-C cancels the sweep; every finished run is kept (and persisted
	// when a store is attached).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *runs <= 1 && len(axes) == 0 {
		if *storeDir != "" || shard.Count > 1 {
			fmt.Fprintln(os.Stderr, "-store and -shard need a sweep: set -runs > 1 or add -axis")
			return 2
		}
		// For one run, honor -seed and -field-seed verbatim rather than
		// deriving, so single-run invocations stay reproducible by hand.
		var f mobisense.Field
		var err error
		if fieldSpec != nil {
			f, err = mobisense.BuildFieldSpec(*fieldSpec, *fieldSeed)
		} else {
			f, err = mobisense.BuildScenario(scenarioName, *fieldSeed)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
			return 1
		}
		cfg.Field = f
		out, err := mobisense.RunBatch(ctx, []mobisense.Config{cfg}, mobisense.BatchOptions{Workers: 1})
		if err != nil {
			fmt.Fprintf(os.Stderr, "run: %v\n", err)
			return 1
		}
		if err := out[0].Err; err != nil {
			fmt.Fprintf(os.Stderr, "run: %v\n", err)
			return 1
		}
		return printSingle(cfg, out[0].Result, *showMap, *csvPath, *traceCSV)
	}

	// Sweeps derive both run seeds and seeded-scenario fields from -seed
	// (-fixed-seed keeps run seeds verbatim for paired axis studies).
	sweep := mobisense.Sweep{
		Base:      cfg,
		Axes:      axes,
		Repeats:   *runs,
		Seed:      *seed,
		FixedSeed: *fixedSeed,
	}
	if fieldSpec != nil {
		// The spec is the environment axis; the base config carries a
		// field built from it (field-seed layout) so fingerprints match
		// the serve API's handling of the same inline spec.
		f, err := mobisense.BuildFieldSpec(*fieldSpec, *fieldSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "field: %v\n", err)
			return 1
		}
		sweep.Base.Field = f
		sweep.Field = fieldSpec
	} else {
		sweep.Scenarios = []string{scenarioName}
	}
	opts := mobisense.BatchOptions{
		Workers: *workers,
		Shard:   shard,
	}
	if *storeDir != "" {
		opts.Store = &mobisense.Store{Dir: *storeDir, Resume: *resume, Layouts: *layouts, Trace: *trace > 0}
	}
	// -max-runs cancels dispatch once enough runs completed — the
	// deterministic stand-in for Ctrl-C in scripts and CI.
	capCtx, capStop := context.WithCancel(ctx)
	defer capStop()
	completed := 0
	opts.OnProgress = func(done, total int) {
		fmt.Fprintf(os.Stderr, "\r%d/%d runs", done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
		completed++
		if *maxRuns > 0 && completed >= *maxRuns {
			capStop()
		}
	}
	sr, err := sweep.Run(capCtx, opts)
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		return 1
	}
	if interrupted {
		fmt.Fprintln(os.Stderr)
	}
	printAggregates(sr)
	if interrupted {
		done := 0
		for _, br := range sr.Runs {
			if !errors.Is(br.Err, context.Canceled) {
				done++
			}
		}
		fmt.Fprintf(os.Stderr, "interrupted after %d/%d runs\n", done, len(sr.Runs))
		if *storeDir != "" {
			fmt.Fprintf(os.Stderr, "finished runs are stored in %s (re-run with -resume to continue)\n", *storeDir)
		}
		if *maxRuns > 0 && ctx.Err() == nil {
			return 0 // the -max-runs cap, not a Ctrl-C
		}
		return 130
	}
	// Surface every distinct failure cause, not just the first.
	counts := map[string]int{}
	var order []string
	for _, br := range sr.Runs {
		if br.Err != nil {
			msg := br.Err.Error()
			if counts[msg] == 0 {
				order = append(order, msg)
			}
			counts[msg]++
		}
	}
	for _, msg := range order {
		fmt.Fprintf(os.Stderr, "%d run(s) failed: %s\n", counts[msg], msg)
	}
	if len(order) > 0 {
		return 1
	}
	return 0
}

func printSingle(cfg mobisense.Config, res mobisense.Result, showMap bool, csvPath, traceCSV string) int {
	fmt.Printf("scheme           %s\n", res.Scheme)
	fmt.Printf("coverage         %.1f%%\n", 100*res.Coverage)
	fmt.Printf("avg distance     %.1f m\n", res.AvgMoveDistance)
	fmt.Printf("connected        %v\n", res.Connected)
	if res.Messages > 0 {
		fmt.Printf("messages         %d (%.1f per sensor per second)\n",
			res.Messages, float64(res.Messages)/float64(cfg.N)/cfg.Duration)
	}
	if res.ConvergenceTime > 0 {
		fmt.Printf("last movement    %.0f s\n", res.ConvergenceTime)
	}
	if res.Placements != nil {
		fmt.Printf("floor placements flg=%d blg=%d iflg=%d\n",
			res.Placements["flg"], res.Placements["blg"], res.Placements["iflg"])
	}
	if res.IncorrectVoronoiCells > 0 {
		fmt.Printf("incorrect cells  %d\n", res.IncorrectVoronoiCells)
	}
	fmt.Printf("wall time        %s\n", res.Elapsed.Round(1e6))

	if cfg.Trace != nil && len(res.Trace) == 0 {
		// The Voronoi/OPT baselines compute layouts outside the event loop;
		// say so instead of printing an empty table.
		fmt.Printf("\nscheme %s yields no trace (its layout is computed outside the event loop)\n", res.Scheme)
	}
	if len(res.Trace) > 0 {
		fmt.Println()
		fmt.Println("     t  coverage  connected  moving  total moved  max moved")
		for _, s := range res.Trace {
			fmt.Printf("%6.0f    %5.1f%%  %9d  %6d  %9.1f m  %7.1f m\n",
				s.Time, 100*s.Coverage, s.Connected, s.Moving, s.TotalMoved, s.MaxMoved)
		}
	}
	if c := res.Convergence; c != nil {
		fmt.Println()
		fmt.Printf("t90 coverage     %.0f s\n", c.TimeTo90Coverage)
		fmt.Printf("t99 coverage     %.0f s\n", c.TimeTo99Coverage)
		if c.TimeToConnectivity >= 0 {
			fmt.Printf("connectivity     %.0f s\n", c.TimeToConnectivity)
		} else {
			fmt.Println("connectivity     never (final layout not fully connected)")
		}
		fmt.Printf("settled          %.0f s (total %.1f m, max %.1f m)\n",
			c.SettlingTime, c.TotalMovedAtSettle, c.MaxMovedAtSettle)
	}

	if showMap {
		fmt.Println()
		fmt.Print(res.ASCIIMap(72))
	}
	if csvPath != "" {
		if err := os.WriteFile(csvPath, []byte(res.PositionsCSV()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write csv: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", csvPath)
	}
	if traceCSV != "" {
		if err := os.WriteFile(traceCSV, []byte(traceSeriesCSV(res.Trace)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write trace csv: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", traceCSV)
	}
	return 0
}

// traceSeriesCSV renders a single run's telemetry series as CSV.
func traceSeriesCSV(trace []mobisense.TraceSample) string {
	var sb strings.Builder
	sb.WriteString("t,coverage,connected,alive,moving,total_moved,max_moved\n")
	for _, s := range trace {
		fmt.Fprintf(&sb, "%s,%s,%d,%d,%d,%s,%s\n",
			strconv.FormatFloat(s.Time, 'g', -1, 64),
			strconv.FormatFloat(s.Coverage, 'f', 6, 64),
			s.Connected, s.Alive, s.Moving,
			strconv.FormatFloat(s.TotalMoved, 'f', 6, 64),
			strconv.FormatFloat(s.MaxMoved, 'f', 6, 64))
	}
	return sb.String()
}

func printAggregates(sr mobisense.SweepResult) {
	for _, a := range sr.Aggregates {
		scen := a.Scenario
		if scen == "" {
			scen = "(custom field)"
		}
		fmt.Printf("%s on %s, N=%d", a.Scheme, scen, a.N)
		for _, ax := range a.Axes {
			fmt.Printf(", %s=%g", ax.Name, ax.Value)
		}
		fmt.Printf(": %d runs", a.Runs)
		if a.Errors > 0 {
			fmt.Printf(" (%d failed)", a.Errors)
		}
		if a.Skipped > 0 {
			fmt.Printf(" (%d not executed)", a.Skipped)
		}
		fmt.Println()
		if a.Runs == 0 {
			continue
		}
		fmt.Printf("  coverage       %.1f%% ± %.1f  (min %.1f%%, max %.1f%%)\n",
			100*a.Coverage.Mean, 100*a.Coverage.CI95, 100*a.Coverage.Min, 100*a.Coverage.Max)
		fmt.Printf("  avg distance   %.1f m ± %.1f\n", a.AvgMoveDistance.Mean, a.AvgMoveDistance.CI95)
		if a.Messages.Mean > 0 {
			fmt.Printf("  messages       %.0f ± %.0f\n", a.Messages.Mean, a.Messages.CI95)
		}
		fmt.Printf("  connected      %.0f%% of runs\n", 100*a.ConnectedFraction)
	}
}
