// Command experiments regenerates the paper's tables and figures
// (Figures 3 and 8–13, Table 1) as printed tables and CSV files.
//
// Usage:
//
//	experiments -run all -out results/
//	experiments -run fig9,fig10 -quick
//	experiments -run fig13 -store results/store -progress
//	experiments -run fig13 -store results/store -resume
//	experiments -run fig13 -store shard1 -shard 1/4
//
// The -quick flag shrinks sweeps for a fast smoke run; the full runs use
// the paper's parameters (240 sensors, 750 s, 300 random-obstacle
// deployments for Figure 13) and take a few minutes in total.
//
// With -store, every finished deployment streams to disk under
// <store>/<figure>; Ctrl-C keeps the finished runs and -resume continues
// an interrupted suite without re-running them. With -shard i/n the
// process executes only its slice of each experiment's runs into the
// store (no tables are printed); merge the shard stores with cmd/report.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"

	"mobisense"
	"mobisense/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		runFlag   = flag.String("run", "all", "comma-separated experiments: fig3,fig8,fig9,fig10,fig11,fig12,fig13,table1 or all")
		quick     = flag.Bool("quick", false, "shrink sweeps and run counts for a fast smoke run")
		seed      = flag.Uint64("seed", 1, "base random seed")
		workers   = flag.Int("workers", 0, "batch worker-pool size (0 = GOMAXPROCS, 1 = sequential)")
		progress  = flag.Bool("progress", false, "print batch progress to stderr")
		outDir    = flag.String("out", "", "directory for CSV output (omit to skip CSV files)")
		storeDir  = flag.String("store", "", "stream finished runs to per-figure stores under this directory")
		layouts   = flag.Bool("store-layouts", false, "persist full sensor layouts in store records (makes fig11 resumable and shardable; requires -store)")
		resume    = flag.Bool("resume", false, "continue interrupted stores under -store")
		shardSpec = flag.String("shard", "", "execute only shard i of n, as \"i/n\" (requires -store; merge with cmd/report)")
	)
	flag.Parse()

	all := map[string]func(experiments.Options) []experiments.Row{
		"fig3":   experiments.Fig3,
		"fig8":   experiments.Fig8,
		"fig9":   experiments.Fig9,
		"fig10":  experiments.Fig10,
		"fig11":  experiments.Fig11,
		"fig12":  experiments.Fig12,
		"fig13":  experiments.Fig13,
		"table1": experiments.Table1,
	}

	var names []string
	if *runFlag == "all" {
		for name := range all {
			names = append(names, name)
		}
		sort.Strings(names)
	} else {
		for _, name := range strings.Split(*runFlag, ",") {
			name = strings.TrimSpace(name)
			if _, ok := all[name]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
				return 2
			}
			names = append(names, name)
		}
	}

	shard, err := mobisense.ParseShard(*shardSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if shard.Count > 1 && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "-shard needs -store (shards only make sense persisted)")
		return 2
	}
	if *resume && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "-resume needs -store: there is nothing to resume from")
		return 2
	}
	if *layouts && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "-store-layouts needs -store: layouts persist in store records")
		return 2
	}

	// Ctrl-C cancels the suite; with -store, every finished run persists
	// and -resume continues where the interrupt landed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := experiments.Options{
		Quick:        *quick,
		Seed:         *seed,
		Workers:      *workers,
		Context:      ctx,
		StoreDir:     *storeDir,
		Resume:       *resume,
		StoreLayouts: *layouts,
		Shard:        shard,
	}
	if *progress {
		opts.OnProgress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d runs", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "create output dir: %v\n", err)
			return 1
		}
	}

	for _, name := range names {
		fmt.Printf("== %s ==\n", name)
		rows, err := runExperiment(all[name], opts)
		if experiments.Interrupted(err) {
			fmt.Fprintln(os.Stderr, "\ninterrupted")
			if *storeDir != "" {
				fmt.Fprintf(os.Stderr, "finished runs are stored under %s (re-run with -resume to continue)\n", *storeDir)
			}
			return 130
		}
		if err != nil {
			// runAll's panics already name the experiment.
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if shard.Count > 1 {
			if !experiments.Shardable(name, *layouts) {
				fmt.Printf("(%s needs every run's full layout and is skipped under -shard; run it unsharded or with -store-layouts)\n\n", name)
			} else {
				fmt.Printf("(shard %d/%d stored under %s; merge shard stores with cmd/report)\n\n",
					shard.Index, shard.Count, filepath.Join(*storeDir, name))
			}
			continue
		}
		printTable(rows)
		if *outDir != "" {
			path := filepath.Join(*outDir, name+".csv")
			if err := os.WriteFile(path, []byte(toCSV(rows)), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
				return 1
			}
			fmt.Printf("wrote %s\n", path)
		}
		fmt.Println()
	}
	return 0
}

// runExperiment runs one experiment function, converting the error panics
// the experiments package uses (cancellation, store failures) into clean
// returned errors; anything else keeps crashing loudly.
func runExperiment(fn func(experiments.Options) []experiments.Row, opts experiments.Options) (rows []experiments.Row, err error) {
	defer func() {
		if v := recover(); v != nil {
			if e, ok := v.(error); ok {
				err = e
				return
			}
			panic(v)
		}
	}()
	return fn(opts), nil
}

// printTable renders rows with a left label column and one column per
// metric.
func printTable(rows []experiments.Row) {
	if len(rows) == 0 {
		fmt.Println("(no rows)")
		return
	}
	header := []string{"label"}
	for _, c := range rows[0].Columns {
		header = append(header, c.Name)
	}
	widths := make([]int, len(header))
	lines := make([][]string, 0, len(rows)+1)
	lines = append(lines, header)
	for _, r := range rows {
		line := []string{r.Label}
		for _, c := range r.Columns {
			line = append(line, fmt.Sprintf("%.3f", c.Value))
		}
		lines = append(lines, line)
	}
	for _, line := range lines {
		for i, cell := range line {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, line := range lines {
		var sb strings.Builder
		for i, cell := range line {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			if i == 0 {
				sb.WriteString(cell + strings.Repeat(" ", pad))
			} else {
				sb.WriteString(strings.Repeat(" ", pad) + cell)
			}
		}
		fmt.Println(sb.String())
	}
}

// toCSV renders rows as a CSV document.
func toCSV(rows []experiments.Row) string {
	if len(rows) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("label")
	for _, c := range rows[0].Columns {
		sb.WriteString("," + c.Name)
	}
	sb.WriteString("\n")
	for _, r := range rows {
		sb.WriteString(strings.ReplaceAll(r.Label, ",", ";"))
		for _, c := range r.Columns {
			fmt.Fprintf(&sb, ",%.6f", c.Value)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
