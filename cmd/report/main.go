// Command report merges one or more sweep store directories — typically
// the shards of one sweep run on different machines, or a single store
// written by deploy -store / experiments -store — and prints the
// per-(scheme, scenario, N) aggregates recomputed from the stored records.
//
// Usage:
//
//	report sweep/
//	report shard0/ shard1/ shard2/ shard3/
//	report -csv aggregates.csv shard0/ shard1/
//	report -traces curves.csv sweep/   # aggregated trace curves (deploy -trace stores)
//	report -runs sweep/             # per-run records instead of aggregates
//	report -watch sweep/            # live-refresh while another process writes
//	report -watch http://host:8080/v1/jobs/j000001/store   # remote server job
//
// A store argument may be an http(s) URL naming a deployment server's
// /v1/jobs/{id}/store endpoint instead of a local directory; the server
// serves the same manifest/records/timing files the directory would hold,
// so watching, merging and CSV export all work against a live remote job.
//
// With -watch, the stores are re-read every -interval and the aggregate
// table redrawn with a progress/ETA line (the ETA is extrapolated from
// the run-completion rate observed between polls). Watching exits once
// every store is complete, so it doubles as a wait-for-completion in
// scripts.
//
// Records are deduplicated by run key across directories, sorted into the
// unsharded sweep order, and aggregated exactly as a live Sweep.Run would:
// merging the shards of a sweep reproduces the unsharded aggregates bit
// for bit. The timing sidecars are read only for the informational
// "compute time" line — they never influence the aggregates.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"strconv"
	"strings"
	"time"

	"mobisense"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		csvPath    = flag.String("csv", "", "write the aggregate table as CSV to this path")
		tracesPath = flag.String("traces", "", "write the aggregated per-group trace curves (mean + CI per sample time) as CSV to this path; needs stores written with deploy -trace")
		showRuns   = flag.Bool("runs", false, "print one line per stored run instead of aggregates only")
		showFields = flag.Bool("fields", false, "dump the field specs embedded in the store manifests as JSON (rebuild any store's environments without the originating binary)")
		watch      = flag.Bool("watch", false, "poll the store directories and live-refresh the table until they complete")
		interval   = flag.Duration("interval", 2*time.Second, "poll interval for -watch")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: report [flags] store-dir-or-url [store-dir-or-url ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		flag.Usage()
		return 2
	}

	if *watch {
		return watchStores(dirs, *interval, *showRuns)
	}

	data, err := mobisense.LoadStores(dirs...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	for _, st := range data.Stores {
		state := "complete"
		if !st.Complete {
			state = fmt.Sprintf("%d/%d runs", st.Records, st.TotalRuns)
		}
		shard := ""
		if st.ShardCount > 1 {
			shard = fmt.Sprintf(" shard %d/%d", st.ShardIndex, st.ShardCount)
		}
		fmt.Printf("%s: %s store%s, %s, compute time %s\n",
			st.Dir, st.Kind, shard, state, st.Elapsed.Round(1e6))
	}
	fmt.Printf("merged: %d runs, %d aggregate group(s)\n\n", len(data.Runs), len(data.Aggregates))

	if *showFields {
		printFields(data.Stores)
	}

	if *showRuns {
		printRuns(data.Runs)
	}

	printAggregateTable(data.Aggregates)

	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(aggregatesCSV(data.Aggregates)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write csv: %v\n", err)
			return 1
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
	if *tracesPath != "" {
		traces := mobisense.AggregateTraces(data.Runs)
		if len(traces) == 0 {
			fmt.Fprintln(os.Stderr, "no trace series in the stores (write them with deploy -trace ... -store)")
			return 1
		}
		if err := os.WriteFile(*tracesPath, []byte(tracesCSV(traces)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write traces csv: %v\n", err)
			return 1
		}
		fmt.Printf("\nwrote %s\n", *tracesPath)
	}
	return 0
}

// tracesCSV renders aggregated trace curves as CSV: one row per group and
// sample time, with mean and CI for every traced metric. The row order is
// the deterministic aggregation order, so sharded and unsharded exports
// of one sweep are byte-identical.
func tracesCSV(traces []mobisense.TraceAggregate) string {
	var sb strings.Builder
	sb.WriteString("scheme,scenario,n,axes,t,runs," +
		"coverage_mean,coverage_ci95,connected_mean,moving_mean," +
		"total_moved_mean,total_moved_ci95,max_moved_mean,max_moved_ci95\n")
	for _, tr := range traces {
		axes := make([]string, len(tr.Axes))
		for i, ax := range tr.Axes {
			axes[i] = ax.Name + "=" + ax.ValueString()
		}
		prefix := fmt.Sprintf("%s,%s,%d,%s", tr.Scheme,
			strings.ReplaceAll(tr.Scenario, ",", ";"), tr.N, strings.Join(axes, ";"))
		for _, p := range tr.Points {
			fmt.Fprintf(&sb, "%s,%s,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n",
				prefix, strconv.FormatFloat(p.Time, 'g', -1, 64), p.Runs,
				p.Coverage.Mean, p.Coverage.CI95, p.Connected.Mean, p.Moving.Mean,
				p.TotalMoved.Mean, p.TotalMoved.CI95, p.MaxMoved.Mean, p.MaxMoved.CI95)
		}
	}
	return sb.String()
}

// watchStores polls store directories another process is writing and
// live-refreshes the aggregate table with a progress/ETA line, using the
// same progress-snapshot helper the deployment server's SSE stream uses.
// It returns once every store is complete. A store that was read
// successfully and later disappears (directory deleted, server job
// pruned) is a hard error — silently waiting for it to reappear would
// hang scripts that use -watch as a wait-for-completion.
func watchStores(dirs []string, interval time.Duration, showRuns bool) int {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	prevDone := -1
	prevTime := time.Now()
	seen := make(map[string]bool, len(dirs)) // dirs that held a store at least once
	for {
		done, total := 0, 0
		complete := true
		statusLines := make([]string, 0, len(dirs))
		// One LoadStores pass per poll supplies the per-store counts, the
		// runs and the aggregates together (parsing the records once).
		data, loadErr := mobisense.LoadStores(dirs...)
		if loadErr == nil {
			for _, st := range data.Stores {
				seen[st.Dir] = true
				done += st.Records
				total += st.TotalRuns
				if !st.Complete && st.Records < st.TotalRuns {
					complete = false
				}
				statusLines = append(statusLines, fmt.Sprintf("%s: %d/%d runs, compute time %s",
					st.Dir, st.Records, st.TotalRuns, st.Elapsed.Round(1e6)))
			}
		} else {
			// Stores still appearing (or torn mid-write): fall back to the
			// cheap per-directory progress probe until they merge cleanly.
			complete = false
			for _, dir := range dirs {
				ps, err := mobisense.ReadStoreProgress(dir)
				if err != nil {
					if seen[dir] && errors.Is(err, fs.ErrNotExist) {
						fmt.Fprintf(os.Stderr, "report: store %s disappeared mid-watch: %v\n", dir, err)
						return 1
					}
					statusLines = append(statusLines, fmt.Sprintf("%s: waiting for store...", dir))
					continue
				}
				seen[dir] = true
				done += ps.Done
				total += ps.Total
				statusLines = append(statusLines, fmt.Sprintf("%s: %d/%d runs, compute time %s",
					dir, ps.Done, ps.Total, ps.Elapsed.Round(1e6)))
			}
		}

		// The ETA extrapolates from the record-count delta between polls —
		// the writer's actual wall-clock rate, whatever its worker count.
		rate := 0
		elapsed := time.Since(prevTime)
		if prevDone >= 0 && done > prevDone {
			rate = done - prevDone
		}
		snap := mobisense.SnapshotProgress(done, total, rate, elapsed)
		prevDone, prevTime = done, time.Now()

		// Redraw from the top of the terminal.
		fmt.Print("\033[H\033[2J")
		for _, line := range statusLines {
			fmt.Println(line)
		}
		switch {
		case complete:
			fmt.Printf("total: %d/%d runs, complete\n\n", done, total)
		case snap.ETA > 0:
			fmt.Printf("total: %d/%d runs, ETA %s\n\n", done, total, snap.ETA.Round(time.Second))
		default:
			fmt.Printf("total: %d/%d runs\n\n", done, total)
		}

		if loadErr != nil {
			// Mid-write inconsistencies resolve on the next poll.
			fmt.Printf("(stores not mergeable yet: %v)\n", loadErr)
		} else {
			if showRuns {
				printRuns(data.Runs)
			}
			printAggregateTable(data.Aggregates)
		}
		if complete && loadErr == nil {
			return 0
		}
		time.Sleep(interval)
	}
}

// printFields dumps the field specs embedded in the stores' manifests —
// the geometry every run deployed into, reproducible with deploy -field
// or the serve API on any machine. Stores written before the field-spec
// refactor carry none.
func printFields(stores []mobisense.StoreInfo) {
	printed := map[string]bool{}
	for _, st := range stores {
		for _, fe := range st.Fields {
			data, err := json.MarshalIndent(fe.Spec, "", "  ")
			if err != nil {
				continue
			}
			if printed[string(data)] {
				continue // shards repeat the same specs
			}
			printed[string(data)] = true
			fmt.Printf("field %s:\n%s\n", scenarioLabel(fe.Scenario), data)
		}
	}
	if len(printed) == 0 {
		fmt.Println("no embedded field specs (store predates the field-spec format)")
	}
	fmt.Println()
}

func scenarioLabel(s string) string {
	if s == "" {
		return "(custom field)"
	}
	return s
}

// axisNames collects the union of axis names across the aggregates in
// first-seen order: the merged table gets one column per axis, and stores
// without axes get none (pre-axis output stays byte-identical).
func axisNames(aggs []mobisense.Aggregate) []string {
	var names []string
	seen := map[string]bool{}
	for _, a := range aggs {
		for _, ax := range a.Axes {
			if !seen[ax.Name] {
				seen[ax.Name] = true
				names = append(names, ax.Name)
			}
		}
	}
	return names
}

// axisCell renders one aggregate's value on the named axis ("" when the
// aggregate does not vary that axis).
func axisCell(a mobisense.Aggregate, name string) string {
	for _, ax := range a.Axes {
		if ax.Name == name {
			return ax.ValueString()
		}
	}
	return ""
}

// printRuns prints one line per stored run.
func printRuns(runs []mobisense.BatchResult) {
	for _, br := range runs {
		sp := br.Spec
		axes := ""
		for _, ax := range sp.Axes {
			axes += fmt.Sprintf(" %s=%g", ax.Name, ax.Value)
		}
		if br.Err != nil {
			fmt.Printf("%5d  %-8s %-16s N=%-4d r%-3d%s FAILED: %v\n",
				sp.Index, sp.Scheme, scenarioLabel(sp.Scenario), sp.N, sp.Repeat, axes, br.Err)
			continue
		}
		fmt.Printf("%5d  %-8s %-16s N=%-4d r%-3d%s cov=%.3f dist=%.1f connected=%v\n",
			sp.Index, sp.Scheme, scenarioLabel(sp.Scenario), sp.N, sp.Repeat, axes,
			br.Result.Coverage, br.Result.AvgMoveDistance, br.Result.Connected)
	}
	fmt.Println()
}

// anyConvergence reports whether any aggregate carries trace-derived
// convergence metrics. They gate the extra table/CSV columns, so
// untraced stores keep their exact pre-trace output.
func anyConvergence(aggs []mobisense.Aggregate) bool {
	for _, a := range aggs {
		if a.Convergence != nil {
			return true
		}
	}
	return false
}

// printAggregateTable renders the aggregates as an aligned text table,
// with one extra column per generalized axis the stores swept and —
// for traced stores — the trace-derived convergence summaries.
func printAggregateTable(aggs []mobisense.Aggregate) {
	axes := axisNames(aggs)
	conv := anyConvergence(aggs)
	header := append([]string{"scheme", "scenario", "N"}, axes...)
	header = append(header, "runs", "errs",
		"coverage", "±95%", "distance", "±95%", "messages", "conv_time", "connected")
	if conv {
		header = append(header, "t90", "±95%", "settle", "±95%")
	}
	lines := [][]string{header}
	for _, a := range aggs {
		line := []string{
			string(a.Scheme),
			scenarioLabel(a.Scenario),
			fmt.Sprintf("%d", a.N),
		}
		for _, name := range axes {
			line = append(line, axisCell(a, name))
		}
		line = append(line,
			fmt.Sprintf("%d", a.Runs),
			fmt.Sprintf("%d", a.Errors),
			fmt.Sprintf("%.4f", a.Coverage.Mean),
			fmt.Sprintf("%.4f", a.Coverage.CI95),
			fmt.Sprintf("%.1f", a.AvgMoveDistance.Mean),
			fmt.Sprintf("%.1f", a.AvgMoveDistance.CI95),
			fmt.Sprintf("%.0f", a.Messages.Mean),
			fmt.Sprintf("%.0f", a.ConvergenceTime.Mean),
			fmt.Sprintf("%.0f%%", 100*a.ConnectedFraction),
		)
		if conv {
			if c := a.Convergence; c != nil {
				line = append(line,
					fmt.Sprintf("%.0f", c.TimeTo90Coverage.Mean),
					fmt.Sprintf("%.0f", c.TimeTo90Coverage.CI95),
					fmt.Sprintf("%.0f", c.SettlingTime.Mean),
					fmt.Sprintf("%.0f", c.SettlingTime.CI95),
				)
			} else {
				line = append(line, "", "", "", "")
			}
		}
		lines = append(lines, line)
	}
	widths := make([]int, len(header))
	for _, line := range lines {
		for i, cell := range line {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, line := range lines {
		var sb strings.Builder
		for i, cell := range line {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := strings.Repeat(" ", widths[i]-len(cell))
			if i < 2 { // left-align the name columns
				sb.WriteString(cell + pad)
			} else {
				sb.WriteString(pad + cell)
			}
		}
		fmt.Println(sb.String())
	}
}

// aggregatesCSV renders the aggregates as a CSV document, inserting one
// "axis_<name>" column per swept axis after the n column. Axis-free
// stores produce the exact pre-axis header and rows, and untraced stores
// the exact pre-convergence ones — the extra convergence columns appear
// only when some aggregate carries trace-derived metrics.
func aggregatesCSV(aggs []mobisense.Aggregate) string {
	axes := axisNames(aggs)
	conv := anyConvergence(aggs)
	var sb strings.Builder
	sb.WriteString("scheme,scenario,n")
	for _, name := range axes {
		sb.WriteString(",axis_" + strings.ReplaceAll(name, ",", ";"))
	}
	sb.WriteString(",runs,errors,skipped," +
		"coverage_mean,coverage_ci95,coverage_min,coverage_max," +
		"coverage2_mean,distance_mean,distance_ci95," +
		"messages_mean,convergence_mean,connected_fraction")
	if conv {
		sb.WriteString(",conv_runs,t90_mean,t90_ci95,t99_mean,t99_ci95," +
			"settle_mean,settle_ci95,settle_total_moved_mean,settle_max_moved_mean," +
			"connected_runs,tconn_mean,tconn_ci95")
	}
	sb.WriteString("\n")
	for _, a := range aggs {
		fmt.Fprintf(&sb, "%s,%s,%d", a.Scheme, strings.ReplaceAll(a.Scenario, ",", ";"), a.N)
		for _, name := range axes {
			sb.WriteString("," + axisCell(a, name))
		}
		fmt.Fprintf(&sb, ",%d,%d,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f",
			a.Runs, a.Errors, a.Skipped,
			a.Coverage.Mean, a.Coverage.CI95, a.Coverage.Min, a.Coverage.Max,
			a.Coverage2.Mean, a.AvgMoveDistance.Mean, a.AvgMoveDistance.CI95,
			a.Messages.Mean, a.ConvergenceTime.Mean, a.ConnectedFraction)
		if conv {
			if c := a.Convergence; c != nil {
				fmt.Fprintf(&sb, ",%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%d,%.6f,%.6f",
					c.Runs,
					c.TimeTo90Coverage.Mean, c.TimeTo90Coverage.CI95,
					c.TimeTo99Coverage.Mean, c.TimeTo99Coverage.CI95,
					c.SettlingTime.Mean, c.SettlingTime.CI95,
					c.TotalMovedAtSettle.Mean, c.MaxMovedAtSettle.Mean,
					c.ConnectedRuns,
					c.TimeToConnectivity.Mean, c.TimeToConnectivity.CI95)
			} else {
				sb.WriteString(strings.Repeat(",", 12))
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
