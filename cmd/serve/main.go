// Command serve runs the deployment service: an HTTP API that accepts
// single deployments and full sweeps as asynchronous jobs, executes them
// on the batch runner's worker pool, streams per-run progress over SSE,
// caches results by config fingerprint, and persists every job through
// the sweep store so a restarted server resumes interrupted sweeps
// without re-running finished work.
//
// Usage:
//
//	serve -addr :8080 -data serve-data
//	serve -field warehouse.json        # register a custom scenario from a field spec
//
// API (see the README's Serving section for curl examples):
//
//	POST   /v1/runs               submit one deployment
//	POST   /v1/sweeps             submit a sweep
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          status, progress, aggregates
//	DELETE /v1/jobs/{id}          cancel (finished runs stay on disk)
//	GET    /v1/jobs/{id}/events   SSE progress stream
//	GET    /v1/jobs/{id}/records  stored records (JSONL, ?format=csv)
//	GET    /v1/schemes            scheme registry
//	GET    /v1/scenarios          scenario registry
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"mobisense"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dataDir   = flag.String("data", "serve-data", "server data directory (jobs, stores, cache source)")
		workers   = flag.Int("workers", 0, "batch worker-pool size per job (0 = GOMAXPROCS)")
		jobs      = flag.Int("jobs", 1, "number of jobs executing concurrently")
		jobsTTL   = flag.Duration("jobs-ttl", 0, "prune finished jobs (and their stores) older than this at startup and periodically (0 = keep forever)")
		cacheSize = flag.Int("cache-size", 0, "max entries in the fingerprint result cache, evicted LRU (0 = server default of 1024)")
	)
	var fieldErr error
	flag.Func("field", "register a custom scenario from a field-spec JSON file (named by the spec's \"name\"); repeatable",
		func(path string) error {
			spec, err := mobisense.LoadFieldSpecFile(path)
			if err != nil {
				return err
			}
			if spec.Name == "" {
				return fmt.Errorf("field spec %s has no \"name\"; served scenarios are resolved by name", path)
			}
			// Registration panics on duplicates; surface that as a flag error.
			defer func() {
				if r := recover(); r != nil {
					fieldErr = fmt.Errorf("%v", r)
				}
			}()
			mobisense.RegisterScenario(mobisense.Scenario{
				Name:        spec.Name,
				Description: "custom field from " + path,
				Spec:        spec,
			})
			return nil
		})
	flag.Parse()
	if fieldErr != nil {
		fmt.Fprintln(os.Stderr, fieldErr)
		return 2
	}

	svc, err := mobisense.NewService(*dataDir, mobisense.ServiceOptions{
		Workers:   *workers,
		Jobs:      *jobs,
		CacheSize: *cacheSize,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	if *jobsTTL > 0 {
		// Re-sweep at a quarter of the TTL (clamped to [1min, 1h]) so
		// expired jobs linger at most ~25% past their deadline without a
		// timer storm for tiny TTLs. The startup sweep runs in the same
		// goroutine: deleting a backlog of expired stores must not delay
		// the listener.
		interval := min(max(*jobsTTL/4, time.Minute), time.Hour)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		go func() {
			for {
				if n := svc.GC(*jobsTTL); n > 0 {
					fmt.Fprintf(os.Stderr, "pruned %d finished job(s) older than %s\n", n, *jobsTTL)
				}
				<-ticker.C
			}
		}()
	}

	hs := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "serving deployment API on %s (data in %s)\n", *addr, *dataDir)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	select {
	case <-ctx.Done():
		// Graceful shutdown: stop accepting requests, then cancel running
		// jobs — their finished runs persist and resume on the next start.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(shutdownCtx)
		svc.Close()
		fmt.Fprintln(os.Stderr, "shut down; interrupted jobs resume on the next start")
		return 0
	case err := <-errCh:
		svc.Close()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}
}
