// Command serve runs the deployment service: an HTTP API that accepts
// single deployments and full sweeps as asynchronous jobs, executes them
// on the batch runner's worker pool, streams per-run progress over SSE,
// caches results by config fingerprint, and persists every job through
// the sweep store so a restarted server resumes interrupted sweeps
// without re-running finished work.
//
// Usage:
//
//	serve -addr :8080 -data serve-data
//	serve -field warehouse.json        # register a custom scenario from a field spec
//	serve -log-format json -log-level debug
//	serve -debug-addr localhost:6060   # pprof + expvar on a separate listener
//
// The root path serves an embedded dashboard: live job list with
// progress/ETA, aggregate charts, per-run trace and layout views, and a
// metrics snapshot — open http://localhost:8080/ in a browser.
//
// API (see the README's Serving section for curl examples):
//
//	POST   /v1/runs                  submit one deployment
//	POST   /v1/sweeps                submit a sweep
//	GET    /v1/jobs                  list jobs
//	GET    /v1/jobs/{id}             status, progress, aggregates
//	DELETE /v1/jobs/{id}             cancel (finished runs stay on disk)
//	GET    /v1/jobs/{id}/events      SSE progress stream
//	GET    /v1/jobs/{id}/records     stored records (JSONL, ?format=csv)
//	GET    /v1/jobs/{id}/store/{f}   raw store files (report -watch remotely)
//	GET    /v1/schemes               scheme registry
//	GET    /v1/scenarios             scenario registry
//	GET    /v1/axes                  sweep axis registry
//	GET    /metrics                  Prometheus text (?format=json for expvar-style JSON)
//
// With -debug-addr, a second listener (keep it on localhost or behind a
// firewall) exposes net/http/pprof under /debug/pprof/ and expvar under
// /debug/vars for profiling a live server:
//
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=30
//	go tool pprof http://localhost:6060/debug/pprof/heap
//	curl localhost:6060/debug/vars
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"time"

	"mobisense"
	"mobisense/internal/metrics"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dataDir   = flag.String("data", "serve-data", "server data directory (jobs, stores, cache source)")
		workers   = flag.Int("workers", 0, "batch worker-pool size per job (0 = GOMAXPROCS)")
		jobs      = flag.Int("jobs", 1, "number of jobs executing concurrently")
		jobsTTL   = flag.Duration("jobs-ttl", 0, "prune finished jobs (and their stores) older than this at startup and periodically (0 = keep forever)")
		cacheSize = flag.Int("cache-size", 0, "max entries in the fingerprint result cache, evicted LRU (0 = server default of 1024)")
		logFormat = flag.String("log-format", "text", "structured log format: text or json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof and expvar on this extra listener (e.g. localhost:6060); off when empty")
	)
	var fieldErr error
	flag.Func("field", "register a custom scenario from a field-spec JSON file (named by the spec's \"name\"); repeatable",
		func(path string) error {
			spec, err := mobisense.LoadFieldSpecFile(path)
			if err != nil {
				return err
			}
			if spec.Name == "" {
				return fmt.Errorf("field spec %s has no \"name\"; served scenarios are resolved by name", path)
			}
			// Registration panics on duplicates; surface that as a flag error.
			defer func() {
				if r := recover(); r != nil {
					fieldErr = fmt.Errorf("%v", r)
				}
			}()
			mobisense.RegisterScenario(mobisense.Scenario{
				Name:        spec.Name,
				Description: "custom field from " + path,
				Spec:        spec,
			})
			return nil
		})
	flag.Parse()
	if fieldErr != nil {
		fmt.Fprintln(os.Stderr, fieldErr)
		return 2
	}

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	svc, err := mobisense.NewService(*dataDir, mobisense.ServiceOptions{
		Workers:   *workers,
		Jobs:      *jobs,
		CacheSize: *cacheSize,
		Logger:    logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	if *debugAddr != "" {
		// The profiling listener is separate from the API on purpose: the
		// imported net/http/pprof and expvar packages register only on
		// http.DefaultServeMux, which the API handler never serves, so
		// profiling endpoints are reachable exactly when -debug-addr is up.
		expvar.Publish("mobisense_metrics", expvar.Func(func() any {
			return metrics.Default.Snapshot()
		}))
		go func() {
			logger.Info("debug listener up", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, http.DefaultServeMux); err != nil {
				logger.Error("debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
	}

	if *jobsTTL > 0 {
		// Re-sweep at a quarter of the TTL (clamped to [1min, 1h]) so
		// expired jobs linger at most ~25% past their deadline without a
		// timer storm for tiny TTLs. The startup sweep runs in the same
		// goroutine: deleting a backlog of expired stores must not delay
		// the listener.
		interval := min(max(*jobsTTL/4, time.Minute), time.Hour)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		go func() {
			for {
				if n := svc.GC(*jobsTTL); n > 0 {
					fmt.Fprintf(os.Stderr, "pruned %d finished job(s) older than %s\n", n, *jobsTTL)
				}
				<-ticker.C
			}
		}()
	}

	hs := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "serving deployment API on %s (data in %s)\n", *addr, *dataDir)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	select {
	case <-ctx.Done():
		// Graceful shutdown: stop accepting requests, then cancel running
		// jobs — their finished runs persist and resume on the next start.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(shutdownCtx)
		svc.Close()
		fmt.Fprintln(os.Stderr, "shut down; interrupted jobs resume on the next start")
		return 0
	case err := <-errCh:
		svc.Close()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}
}

// buildLogger assembles the service's slog logger from the -log-format
// and -log-level flags; records go to stderr, keeping stdout clean for
// scripting.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}
