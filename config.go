package mobisense

import (
	"fmt"

	"mobisense/internal/baseline"
	"mobisense/internal/core"
	"mobisense/internal/coverage"
	"mobisense/internal/cpvf"
	"mobisense/internal/field"
	"mobisense/internal/floor"
	"mobisense/internal/geom"
)

// Scheme identifies a deployment scheme.
type Scheme string

// Available schemes.
const (
	// SchemeCPVF is the Connectivity-Preserved Virtual Force scheme (§4).
	SchemeCPVF Scheme = "cpvf"
	// SchemeFLOOR is the floor-based scheme (§5).
	SchemeFLOOR Scheme = "floor"
	// SchemeVOR is the Voronoi baseline of Wang et al. (§6.1,
	// connectivity-ignorant, obstacle-free fields only).
	SchemeVOR Scheme = "vor"
	// SchemeMinimax is the Minimax Voronoi baseline (§6.1).
	SchemeMinimax Scheme = "minimax"
	// SchemeOPT places the strip-based optimal pattern of Bai et al. [1]
	// directly; its moving distance is the Hungarian lower bound from the
	// initial layout (§6.2).
	SchemeOPT Scheme = "opt"
)

// Point is a 2-D point in meters.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Config describes one deployment run. The zero value is not runnable; use
// DefaultConfig and adjust.
type Config struct {
	// Scheme selects the deployment algorithm.
	Scheme Scheme
	// Field is the deployment area (defaults to the paper's 1000×1000 m
	// obstacle-free field).
	Field Field
	// N is the number of sensors.
	N int
	// Rc and Rs are the communication and sensing ranges in meters.
	Rc, Rs float64
	// Speed is the maximum moving speed V in m/s.
	Speed float64
	// Period is the decision period T in seconds.
	Period float64
	// Duration is the simulated horizon in seconds.
	Duration float64
	// Seed makes runs reproducible.
	Seed uint64
	// ClusterInit places sensors initially in the [0, W/2]×[0, H/2]
	// sub-area (the paper's clustered distribution); otherwise they start
	// uniformly across the field.
	ClusterInit bool
	// CoverageRes is the coverage-grid resolution in meters (default 5).
	CoverageRes float64

	// Stabilize, when set, keeps extending an event-driven run past
	// Duration until the layout stops changing (the paper's "after which
	// the sensor layout becomes quite stable").
	Stabilize *StabilizeOptions

	// Failures optionally injects sensor deaths during the run; CPVF and
	// FLOOR repair around them (the §7 failure-recovery extension).
	Failures *FailureOptions

	// Trace optionally samples per-tick telemetry (coverage, connectivity,
	// movement) during event-driven runs into Result.Trace. Sampling never
	// consumes engine randomness, so a traced run's metrics are
	// bit-identical to the same run untraced.
	Trace *TraceOptions

	// estimators is an optional cache of coverage estimators shared across
	// the runs of a batch (set by RunBatch/Sweep).
	estimators *estimatorCache
	// specErr records a deferred field-construction failure (an axis
	// setter rebuilding the field around an invalid spec); validate
	// surfaces it so only that run fails, with the cause.
	specErr error
	// fieldSeed is the environment-derivation seed Sweep.Expand assigned
	// to this run's (scenario, repeat) slot — independent of the scheme,
	// N and non-field axes, so field-rebuilding axis setters regenerate
	// the same environment for every run of one comparison point. Zero
	// (plain RunBatch configs) falls back to Seed.
	fieldSeed uint64
	// CPVF optionally tunes the CPVF scheme.
	CPVF *CPVFOptions
	// Floor optionally tunes the FLOOR scheme.
	Floor *FloorOptions
	// VD optionally tunes the VOR/Minimax baselines.
	VD *VDOptions
}

// StabilizeOptions extend an event-driven run past Config.Duration until
// no sensor moved during a whole chunk, or the cap is reached.
type StabilizeOptions struct {
	// Cap is the hard horizon in seconds; values at or below
	// Config.Duration disable stabilization.
	Cap float64
	// Chunk is the quiet-period length in seconds (default 250).
	Chunk float64
}

// FailureOptions injects sensor failures during event-driven runs.
type FailureOptions struct {
	// Interval is the time between kills in seconds (default 50).
	Interval float64
	// MaxKills bounds the number of failures (0 = keep killing until the
	// horizon).
	MaxKills int
}

// CPVFOptions tunes SchemeCPVF.
type CPVFOptions struct {
	// Oscillation selects §6.3 oscillation avoidance: "none", "one-step"
	// or "two-step".
	Oscillation string
	// Delta is the oscillation-avoidance factor δ.
	Delta float64
	// DisallowParentChange turns off the §4.2 parent-change protocol
	// (ablation).
	DisallowParentChange bool
	// ForceGain scales the virtual force before step saturation.
	ForceGain float64
	// DisableLazy turns off the lazy-movement strategy (§3.3 ablation).
	DisableLazy bool
}

// FloorOptions tunes SchemeFLOOR.
type FloorOptions struct {
	// TTL is the invitation random-walk TTL in hops (0 → 0.2·N).
	TTL int
	// ExclusiveFrac is the §5.3 movability threshold as a fraction of the
	// sensing disk area.
	ExclusiveFrac float64
	// DirectConnectWalk replaces Algorithm 1's three-leg connect route
	// with a straight BUG2 walk (ablation).
	DirectConnectWalk bool
	// DisablePriority makes movables ignore the FLG > BLG > IFLG
	// invitation priority (ablation).
	DisablePriority bool
}

// VDOptions tunes SchemeVOR / SchemeMinimax.
type VDOptions struct {
	// Rounds of Voronoi adjustment after the explosion (default 10).
	Rounds int
	// NoExplosion skips the §6.2 explosion stage.
	NoExplosion bool
	// PerfectKnowledge gives the schemes exact Voronoi cells instead of
	// rc-limited local ones.
	PerfectKnowledge bool
}

// DefaultConfig returns the paper's standard settings (§4.3): 240 sensors
// clustered in [0,500]², rc = 60 m, rs = 40 m, V = 2 m/s, T = 1 s, 750 s.
func DefaultConfig(scheme Scheme) Config {
	return Config{
		Scheme:      scheme,
		Field:       ObstacleFreeField(),
		N:           240,
		Rc:          60,
		Rs:          40,
		Speed:       2,
		Period:      1,
		Duration:    750,
		Seed:        1,
		ClusterInit: true,
		CoverageRes: 5,
	}
}

func (c Config) validate() error {
	if c.specErr != nil {
		return c.specErr
	}
	if _, ok := lookupScheme(c.Scheme); !ok {
		return fmt.Errorf("mobisense: unknown scheme %q", c.Scheme)
	}
	if c.Field.f == nil {
		return fmt.Errorf("mobisense: config has no field; use DefaultConfig or set Field")
	}
	if err := c.Trace.validate(); err != nil {
		return err
	}
	return c.params().Validate()
}

// estimatorFor returns the coverage estimator for this config's field,
// reusing the batch-wide cache when one is attached.
func (c Config) estimatorFor(f *field.Field) *coverage.Estimator {
	if c.estimators != nil {
		return c.estimators.get(f, c.coverageRes())
	}
	return coverage.NewEstimator(f, c.coverageRes())
}

func (c Config) coverageRes() float64 {
	if c.CoverageRes <= 0 {
		return 5
	}
	return c.CoverageRes
}

// params converts the public configuration into the internal one.
func (c Config) params() core.Params {
	b := c.Field.f.Bounds()
	init := b
	if c.ClusterInit {
		init = geom.R(b.Min.X, b.Min.Y, b.Min.X+b.W()/2, b.Min.Y+b.H()/2)
	}
	return core.Params{
		N:           c.N,
		Rc:          c.Rc,
		Rs:          c.Rs,
		Speed:       c.Speed,
		Period:      c.Period,
		Duration:    c.Duration,
		Seed:        c.Seed,
		PhaseJitter: 0.5,
		InitRegion:  init,
		CoverageRes: c.coverageRes(),
	}
}

func (c Config) cpvfConfig() cpvf.Config {
	cfg := cpvf.DefaultConfig()
	if o := c.CPVF; o != nil {
		switch o.Oscillation {
		case "", "none":
			cfg.Oscillation = cpvf.OscNone
		case "one-step":
			cfg.Oscillation = cpvf.OscOneStep
		case "two-step":
			cfg.Oscillation = cpvf.OscTwoStep
		}
		if o.Delta > 0 {
			cfg.Delta = o.Delta
		}
		if o.ForceGain > 0 {
			cfg.ForceGain = o.ForceGain
		}
		cfg.AllowParentChange = !o.DisallowParentChange
		cfg.DisableLazy = o.DisableLazy
	}
	return cfg
}

func (c Config) floorConfig() floor.Config {
	cfg := floor.DefaultConfig()
	if o := c.Floor; o != nil {
		if o.TTL > 0 {
			cfg.TTL = o.TTL
		}
		if o.ExclusiveFrac > 0 {
			cfg.ExclusiveFrac = o.ExclusiveFrac
		}
		cfg.DirectConnectWalk = o.DirectConnectWalk
		cfg.DisablePriority = o.DisablePriority
	}
	return cfg
}

func (c Config) vdConfig() baseline.VDConfig {
	cfg := baseline.DefaultVDConfig(c.Rc, c.Rs)
	cfg.Seed = c.Seed
	if o := c.VD; o != nil {
		if o.Rounds > 0 {
			cfg.Rounds = o.Rounds
		}
		cfg.Explode = !o.NoExplosion
		cfg.LocalKnowledge = !o.PerfectKnowledge
	}
	return cfg
}
