package mobisense

import (
	"runtime"

	"mobisense/internal/core"
	"mobisense/internal/coverage"
	"mobisense/internal/geom"
)

// worldTracker keeps an incremental coverage tracker in sync with a
// running world. It discovers dirty sensors through the world's per-node
// move epochs (bumped on every new step record, teleport, or failure)
// plus the step end times — schemes never call back into it — so each
// sync touches only the sensors whose position could have changed since
// the previous one, and each of those costs one disk window instead of a
// full grid rescan.
type worldTracker struct {
	t        *coverage.Tracker
	seen     []uint64 // last observed move epoch per sensor id
	pos      []geom.Vec
	alive    []bool
	lastSync float64
	seeded   bool
	workers  int // fan-out for full (seed/re-seed) evaluations
}

// newWorldTracker acquires a tracker for a run over w-sized worlds. The
// first sync seeds it with a full (row-sharded) evaluation; later syncs
// are incremental or, when nearly everything moved, a re-seed.
func newWorldTracker(est *coverage.Estimator, rs float64, n, workers int) *worldTracker {
	return &worldTracker{
		t:       est.AcquireTracker(rs, n),
		seen:    make([]uint64, n),
		pos:     make([]geom.Vec, n),
		alive:   make([]bool, n),
		workers: workers,
	}
}

// sync brings the tracker up to date with the world's current time. A
// sensor is provably clean — and skipped — when its move epoch is
// unchanged and its current step record ended at or before the previous
// sync; everything else is re-applied through an exact position compare
// (Set is a no-op when the position is bit-equal).
//
// Incremental application costs two disk-window scans per moved sensor,
// a full re-seed one scan per present sensor — so when more than half
// the fleet moved since the last sample (every transient tick of a
// converging scheme), sync re-seeds instead of updating. The counts are
// exact either way, so the crossover is pure policy and cannot affect
// results.
func (wt *worldTracker) sync(w *core.World) {
	now := w.Now()
	if !wt.seeded {
		wt.seed(w, now)
		return
	}
	cost, present := 0, 0
	for i := range wt.seen {
		wt.alive[i] = w.Alive(i)
		if wt.alive[i] {
			present++
			wt.pos[i] = w.PosAt(i, now)
		}
		if w.MoveEpoch(i) == wt.seen[i] && w.StepEndTime(i) <= wt.lastSync {
			continue
		}
		cost += wt.t.UpdateCost(i, wt.pos[i], wt.alive[i])
	}
	if cost > present {
		wt.seed(w, now)
		return
	}
	for i := range wt.seen {
		ep := w.MoveEpoch(i)
		if ep == wt.seen[i] && w.StepEndTime(i) <= wt.lastSync {
			continue
		}
		wt.seen[i] = ep
		if !wt.alive[i] {
			wt.t.Clear(i)
			continue
		}
		wt.t.Set(i, wt.pos[i])
	}
	wt.lastSync = now
}

// seed runs one full evaluation, refreshing every position, epoch and
// liveness flag.
func (wt *worldTracker) seed(w *core.World, now float64) {
	for i := range wt.seen {
		wt.seen[i] = w.MoveEpoch(i)
		wt.alive[i] = w.Alive(i)
		if wt.alive[i] {
			wt.pos[i] = w.PosAt(i, now)
		} else {
			wt.pos[i] = geom.Vec{}
		}
	}
	wt.t.Seed(wt.pos, wt.alive, wt.workers)
	wt.lastSync = now
	wt.seeded = true
}

func (wt *worldTracker) release() { wt.t.Release() }

// seedWorkers picks the fan-out for cold/full coverage evaluations: 1
// inside batch sweeps (the run-level worker pool already saturates the
// machine), all CPUs for standalone runs. The choice cannot affect
// results — the row-sharded seed is bit-identical at any worker count.
func seedWorkers(cfg Config) int {
	if cfg.estimators != nil {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// coveragePair computes the 1- and 2-coverage fractions of a final
// layout: one seeded tracker pass when the incremental engine is on
// (Fraction and KFraction then read the same running counts), the two
// brute-force scans otherwise. Bit-identical either way.
func coveragePair(cfg Config, est *coverage.Estimator, layout []geom.Vec) (cov, cov2 float64) {
	if !coverage.IncrementalEnabled() {
		return est.Fraction(layout, cfg.Rs), est.KFraction(layout, cfg.Rs, 2)
	}
	t := est.AcquireTracker(cfg.Rs, len(layout))
	t.Seed(layout, nil, seedWorkers(cfg))
	cov, cov2 = t.Fraction(), t.KFraction(2)
	t.Release()
	return cov, cov2
}
