// Campus monitoring: deploy sensors through a building complex with
// corridor-like passages — the kind of metropolitan environment with
// obstacles that §1 argues renders obstacle-free schemes ineffectual.
// The example uses the registered "campus" scenario (an 800×600 m field
// with three buildings forming two corridors and an open quad) and shows
// FLOOR's boundary-guided expansion threading the corridors.
package main

import (
	"fmt"
	"log"

	"mobisense"
)

func main() {
	campus, err := mobisense.BuildScenario("campus", 1)
	if err != nil {
		log.Fatal(err)
	}

	cfg := mobisense.DefaultConfig(mobisense.SchemeFLOOR)
	cfg.Field = campus
	cfg.N = 150
	cfg.Rc = 50
	cfg.Rs = 35
	cfg.Duration = 900

	res, err := mobisense.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Campus deployment with FLOOR:")
	fmt.Printf("  %d sensors, rc=%.0f m, rs=%.0f m\n", cfg.N, cfg.Rc, cfg.Rs)
	fmt.Printf("  coverage of open space: %.1f%%\n", 100*res.Coverage)
	fmt.Printf("  all sensors reach the gateway: %v\n", res.Connected)
	fmt.Printf("  converged after %.0f s\n", res.ConvergenceTime)

	fmt.Println("\nLayout ('#' = buildings, 'B' = gateway):")
	fmt.Print(res.ASCIIMap(64))
}
