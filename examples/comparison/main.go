// Head-to-head comparison of all five schemes on one scenario, showing the
// trade-offs the paper's evaluation quantifies: the Voronoi baselines only
// work with generous communication ranges and ignore connectivity, CPVF
// oscillates, FLOOR balances coverage against moving distance, and the
// centralized OPT pattern bounds what is achievable.
package main

import (
	"fmt"
	"log"

	"mobisense"
)

func main() {
	schemes := []mobisense.Scheme{
		mobisense.SchemeCPVF,
		mobisense.SchemeFLOOR,
		mobisense.SchemeVOR,
		mobisense.SchemeMinimax,
		mobisense.SchemeOPT,
	}

	fmt.Println("240 sensors, rc=60 m, rs=40 m, clustered start, 1 km² field")
	fmt.Println()
	fmt.Printf("%-8s  %9s  %9s  %10s  %s\n", "scheme", "coverage", "distance", "connected", "notes")

	for _, s := range schemes {
		cfg := mobisense.DefaultConfig(s)
		res, err := mobisense.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		notes := ""
		switch {
		case s == mobisense.SchemeOPT:
			notes = "centralized pattern; distance = Hungarian bound"
		case res.IncorrectVoronoiCells > 0:
			notes = fmt.Sprintf("%d incorrect local Voronoi cells", res.IncorrectVoronoiCells)
		case res.Messages > 0:
			notes = fmt.Sprintf("%d protocol messages", res.Messages)
		}
		fmt.Printf("%-8s  %8.1f%%  %8.0fm  %10v  %s\n",
			s, 100*res.Coverage, res.AvgMoveDistance, res.Connected, notes)
	}

	fmt.Println()
	fmt.Println("Note how the VD-based schemes need rc/rs ≥ 3 to build correct cells:")
	for _, rc := range []float64{48, 120, 240} {
		cfg := mobisense.DefaultConfig(mobisense.SchemeVOR)
		cfg.Rc = rc
		cfg.Rs = 60
		res, err := mobisense.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  VOR rc/rs=%.1f: coverage %5.1f%%, connected=%-5v, incorrect cells %d\n",
			rc/60, 100*res.Coverage, res.Connected, res.IncorrectVoronoiCells)
	}
}
