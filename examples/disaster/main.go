// Disaster-area deployment: sensors are air-dropped near a staging area at
// the edge of a zone strewn with debris (random rectangular obstacles) and
// must self-organize into a connected monitoring network without any map
// of the area — the paper's motivating scenario (§1) and its §6.4
// experiment.
package main

import (
	"fmt"
	"log"

	"mobisense"
)

func main() {
	// An unknown disaster zone: 1 km² strewn with random debris fields
	// (the registered "disaster" scenario). The deployment scheme receives
	// no layout information; sensors discover obstacles with their own
	// sensing.
	field, err := mobisense.BuildScenario("disaster", 2026)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Disaster zone: %d debris fields, %.0f%% of the area passable.\n",
		field.NumObstacles(), 100*field.FreeAreaFraction())

	cfg := mobisense.DefaultConfig(mobisense.SchemeFLOOR)
	cfg.Field = field
	cfg.Duration = 900

	res, err := mobisense.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nAfter %d simulated minutes:\n", int(cfg.Duration/60))
	fmt.Printf("  %.1f%% of the passable area is under sensor coverage\n", 100*res.Coverage)
	fmt.Printf("  every sensor connected to the command post: %v\n", res.Connected)
	fmt.Printf("  mean travel per sensor: %.0f m\n", res.AvgMoveDistance)
	fmt.Printf("  placements along floors/boundaries/gaps: %d/%d/%d\n",
		res.Placements["flg"], res.Placements["blg"], res.Placements["iflg"])

	fmt.Println("\nLayout ('#' = debris, 'B' = command post):")
	fmt.Print(res.ASCIIMap(64))

	// Contrast with the virtual-force scheme, which the paper shows gets
	// trapped by obstacles.
	cfg.Scheme = mobisense.SchemeCPVF
	cpvf, err := mobisense.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCPVF on the same zone reaches %.1f%% coverage with %.0f m of travel.\n",
		100*cpvf.Coverage, cpvf.AvgMoveDistance)
}
