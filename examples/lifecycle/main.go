// Lifecycle: deployment under attrition. Sensors die throughout the run
// (battery, damage) and the network repairs itself — the "whole life
// cycle" extension the paper's conclusion (§7) sketches: failure recovery
// on top of the FLOOR deployment scheme.
package main

import (
	"fmt"
	"log"

	"mobisense"
)

func main() {
	// A healthy baseline run, then the same scenario losing a sensor
	// every 30 simulated seconds.
	base := mobisense.DefaultConfig(mobisense.SchemeFLOOR)
	base.N = 200
	base.Duration = 1500

	healthy, err := mobisense.Run(base)
	if err != nil {
		log.Fatal(err)
	}

	failing := base
	failing.Failures = &mobisense.FailureOptions{Interval: 30, MaxKills: 20}
	recovered, err := mobisense.Run(failing)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("FLOOR deployment under sensor attrition")
	fmt.Println()
	fmt.Printf("%-22s %10s %12s %10s %9s\n", "run", "survivors", "coverage", "2-coverage", "connected")
	fmt.Printf("%-22s %10d %11.1f%% %9.1f%% %9v\n",
		"healthy", healthy.Alive, 100*healthy.Coverage, 100*healthy.Coverage2, healthy.Connected)
	fmt.Printf("%-22s %10d %11.1f%% %9.1f%% %9v\n",
		"20 failures injected", recovered.Alive, 100*recovered.Coverage, 100*recovered.Coverage2, recovered.Connected)
	fmt.Println()

	lost := healthy.Coverage - recovered.Coverage
	fmt.Printf("Losing %d of %d sensors cost %.1f coverage points;\n",
		base.N-recovered.Alive, base.N, 100*lost)
	fmt.Println("orphaned subtrees re-homed to surviving neighbors and the holes")
	fmt.Println("left by dead fixed nodes were re-advertised to spare movables.")
}
