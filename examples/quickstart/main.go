// Quickstart: deploy a mobile sensor network with FLOOR and print the
// paper's headline metrics — a 60-second tour of the public API.
package main

import (
	"fmt"
	"log"

	"mobisense"
)

func main() {
	// The paper's standard scenario: 240 sensors clustered in the
	// south-west quarter of a 1 km² field, base station at the origin.
	cfg := mobisense.DefaultConfig(mobisense.SchemeFLOOR)
	cfg.Duration = 750

	res, err := mobisense.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("FLOOR deployed %d sensors:\n", len(res.Positions))
	fmt.Printf("  coverage:        %.1f%% of the free area\n", 100*res.Coverage)
	fmt.Printf("  moving distance: %.0f m per sensor on average\n", res.AvgMoveDistance)
	fmt.Printf("  connected:       %v (every sensor reaches the base station)\n", res.Connected)
	fmt.Printf("  messages:        %d protocol transmissions\n", res.Messages)
	fmt.Println()

	// Compare with the virtual-force scheme on the same scenario.
	cfg.Scheme = mobisense.SchemeCPVF
	cpvf, err := mobisense.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CPVF on the same scenario: coverage %.1f%%, distance %.0f m\n",
		100*cpvf.Coverage, cpvf.AvgMoveDistance)
	fmt.Println()

	fmt.Println("Final FLOOR layout ('B' = base station, digits = sensors):")
	fmt.Print(res.ASCIIMap(64))
}
