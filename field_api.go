package mobisense

import (
	"fmt"
	"math/rand/v2"

	"mobisense/internal/field"
	"mobisense/internal/geom"
)

// Field is an opaque handle to a deployment area: a rectangle with
// optional polygonal obstacles. Construct with ObstacleFreeField,
// TwoObstacleField, RandomObstacleField or NewField.
type Field struct {
	f *field.Field
}

func (fl Field) internal() *field.Field { return fl.f }

// Bounds returns the field's width and height in meters.
func (fl Field) Bounds() (w, h float64) {
	if fl.f == nil {
		return 0, 0
	}
	b := fl.f.Bounds()
	return b.W(), b.H()
}

// NumObstacles returns the number of interior obstacles.
func (fl Field) NumObstacles() int {
	if fl.f == nil {
		return 0
	}
	return len(fl.f.Obstacles())
}

// FreeAreaFraction estimates the fraction of the field not blocked by
// obstacles.
func (fl Field) FreeAreaFraction() float64 {
	if fl.f == nil {
		return 0
	}
	return fl.f.FreeArea(5) / fl.f.Bounds().Area()
}

// ObstacleFreeField returns the paper's standard 1000×1000 m field with no
// obstacles and the base station at the origin.
func ObstacleFreeField() Field {
	return Field{f: field.ObstacleFree()}
}

// TwoObstacleField returns the Figure 3(c)/8(c) field: two rectangular
// slabs walling off the initial cluster area with three exits.
func TwoObstacleField() Field {
	return Field{f: field.TwoObstacles()}
}

// RandomObstacleField returns a 1000×1000 m field with 1–4 random
// rectangular obstacles per §6.4 (possibly overlapping, never partitioning
// the field).
func RandomObstacleField(seed uint64) (Field, error) {
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef12345))
	f, err := field.RandomObstacles(rng, field.DefaultRandomObstacleConfig())
	if err != nil {
		return Field{}, fmt.Errorf("mobisense: %w", err)
	}
	return Field{f: f}, nil
}

// NewField builds a custom field of the given size with rectangular
// obstacles, each given as [4]float64{x0, y0, x1, y1}. The base station
// sits at the origin. It errors if the obstacles partition the free space
// or bury the base station.
func NewField(width, height float64, obstacles [][4]float64) (Field, error) {
	polys := make([]geom.Polygon, len(obstacles))
	for i, r := range obstacles {
		polys[i] = geom.R(r[0], r[1], r[2], r[3]).Polygon()
	}
	f, err := field.New(geom.R(0, 0, width, height), polys)
	if err != nil {
		return Field{}, fmt.Errorf("mobisense: %w", err)
	}
	return Field{f: f}, nil
}
