package mobisense

import (
	"fmt"
	"os"

	"mobisense/internal/field"
)

// FieldSpec is the declarative, serializable description of a deployment
// environment: rectangular bounds, polygonal obstacles, the base-station
// reference point, and optionally a seeded random-obstacle generator.
// Specs are pure data — every registered scenario is one, stores embed
// them in their manifests, the HTTP API accepts them inline, and
// cmd/deploy loads them from JSON files — so any environment reproduces
// on any machine without the binary that first defined it.
//
// A minimal custom field:
//
//	{
//	  "name": "depot",
//	  "bounds": {"max_x": 800, "max_y": 600},
//	  "obstacles": [{"rect": [150, 100, 350, 250]}]
//	}
//
// The aliased types below (RectSpec, PointSpec, ObstacleSpec,
// GeneratorSpec) compose specs in Go; see the README's Scenarios section
// for the JSON shape.
type FieldSpec = field.Spec

// RectSpec is an axis-aligned rectangle in a field spec.
type RectSpec = field.RectSpec

// PointSpec is a point in a field spec, in meters.
type PointSpec = field.PointSpec

// ObstacleSpec is one obstacle in a field spec: a [x0,y0,x1,y1] Rect
// shorthand or an explicit polygon as Points.
type ObstacleSpec = field.ObstacleSpec

// GeneratorSpec parameterizes a spec's seeded random rectangular
// obstacles (§6.4).
type GeneratorSpec = field.GeneratorSpec

// RectObstacle is shorthand for an axis-aligned rectangular obstacle.
func RectObstacle(x0, y0, x1, y1 float64) ObstacleSpec {
	return ObstacleSpec{Rect: []float64{x0, y0, x1, y1}}
}

// ParseFieldSpec decodes a JSON field spec strictly: unknown fields,
// trailing input and non-normalizable geometry are errors.
func ParseFieldSpec(data []byte) (FieldSpec, error) {
	s, err := field.ParseSpec(data)
	if err != nil {
		return FieldSpec{}, fmt.Errorf("mobisense: %w", err)
	}
	return s, nil
}

// LoadFieldSpecFile reads and parses a field-spec JSON file (the format
// behind deploy/serve's -field flag).
func LoadFieldSpecFile(path string) (FieldSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return FieldSpec{}, fmt.Errorf("mobisense: field spec: %w", err)
	}
	s, err := ParseFieldSpec(data)
	if err != nil {
		return FieldSpec{}, fmt.Errorf("mobisense: field spec %s: %w", path, err)
	}
	return s, nil
}

// BuildFieldSpec constructs a field from a declarative spec. For seeded
// specs (Generator set) the seed selects the generated layout; fixed
// specs ignore it. Builds are cached by geometry fingerprint and seed, so
// sweeps, paired scheme comparisons and repeated service requests share
// one immutable field (and therefore one coverage estimator) instead of
// re-validating the free space every time.
func BuildFieldSpec(spec FieldSpec, seed uint64) (Field, error) {
	eff := seed
	if !spec.Seeded() {
		eff = 0
	}
	return cachedFieldBuild("spec:"+spec.Fingerprint(), eff, func() (Field, error) {
		f, err := spec.Build(seed)
		if err != nil {
			return Field{}, fmt.Errorf("mobisense: field spec: %w", err)
		}
		return Field{f: f}, nil
	})
}

// Spec returns the declarative spec describing this field. Fields built
// from a spec (scenario registry, BuildFieldSpec, -field files) return
// that spec, generator parameters included; fields built directly from
// geometry return an extraction of their bounds, reference and
// obstacles. A zero Field returns a zero spec.
func (fl Field) Spec() FieldSpec {
	if fl.f == nil {
		return FieldSpec{}
	}
	return fl.f.Spec()
}
