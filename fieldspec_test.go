package mobisense

import (
	"context"
	"encoding/json"
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	ifield "mobisense/internal/field"
	istore "mobisense/internal/store"
)

// specTestConfig is a small, fast config for spec-equivalence runs.
func specTestConfig() Config {
	cfg := DefaultConfig(SchemeFLOOR)
	cfg.N = 20
	cfg.Duration = 60
	return cfg
}

// runOn executes the test config on f with timing cleared, so results
// compare bit for bit.
func runOn(t *testing.T, f Field) Result {
	t.Helper()
	cfg := specTestConfig()
	cfg.Field = f
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Clear the volatile parts: wall-clock time, and the internal field
	// handle (two identical geometries are distinct instances).
	res.Elapsed = 0
	res.fieldRef = nil
	return res
}

// TestScenarioSpecsMatchLegacyBuilders is the field-spec refactor's
// acceptance test: every built-in scenario, rebuilt from its encoded
// (JSON round-tripped) spec, must produce bit-identical run metrics to
// the pre-spec code builder for that environment. New spec-only
// scenarios compare the registry build against an uncached rebuild from
// the encoded spec instead.
func TestScenarioSpecsMatchLegacyBuilders(t *testing.T) {
	const seed = 7
	legacy := map[string]func() (Field, error){
		"free":          func() (Field, error) { return Field{f: ifield.ObstacleFree()}, nil },
		"two-obstacles": func() (Field, error) { return Field{f: ifield.TwoObstacles()}, nil },
		"corridor":      func() (Field, error) { return Field{f: ifield.Corridor()}, nil },
		"campus":        func() (Field, error) { return Field{f: ifield.Campus()}, nil },
		"random-obstacles": func() (Field, error) {
			return RandomObstacleField(seed)
		},
		"disaster": func() (Field, error) {
			rng := rand.New(rand.NewPCG(seed, seed^0x6d0b15a7e9c3))
			f, err := ifield.RandomObstacles(rng, ifield.DisasterObstacleConfig())
			return Field{f: f}, err
		},
	}

	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			if sc.Spec.Empty() {
				t.Fatalf("built-in scenario %q is not expressed as a spec", sc.Name)
			}
			// Encode → decode → build, bypassing the build cache so the
			// comparison exercises a genuine reconstruction.
			data, err := json.Marshal(sc.Spec)
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := ParseFieldSpec(data)
			if err != nil {
				t.Fatal(err)
			}
			inner, err := decoded.Build(seed)
			if err != nil {
				t.Fatal(err)
			}
			fromSpec := runOn(t, Field{f: inner})

			build := legacy[sc.Name]
			if build == nil {
				// Spec-only scenario: the registry build is the reference.
				f, err := BuildScenario(sc.Name, seed)
				if err != nil {
					t.Fatal(err)
				}
				if ref := runOn(t, f); !reflect.DeepEqual(ref, fromSpec) {
					t.Errorf("registry and encoded-spec builds diverge:\nregistry: %+v\nspec:     %+v", ref, fromSpec)
				}
				return
			}
			f, err := build()
			if err != nil {
				t.Fatal(err)
			}
			if ref := runOn(t, f); !reflect.DeepEqual(ref, fromSpec) {
				t.Errorf("legacy builder and encoded spec diverge:\nlegacy: %+v\nspec:   %+v", ref, fromSpec)
			}
		})
	}
}

// TestSweepInlineFieldStoreReproducible: a sweep over an inline custom
// field embeds the spec in its store manifest, and the embedded spec
// alone — no scenario registry entry, no spec file — rebuilds the exact
// environment and reproduces the stored metrics.
func TestSweepInlineFieldStoreReproducible(t *testing.T) {
	spec := FieldSpec{
		Name:   "test-depot",
		Bounds: RectSpec{MaxX: 900, MaxY: 700},
		Obstacles: []ObstacleSpec{
			RectObstacle(300, 150, 500, 350),
			{Points: []PointSpec{{X: 600, Y: 100}, {X: 780, Y: 120}, {X: 690, Y: 300}}},
		},
	}
	base := specTestConfig()
	built, err := BuildFieldSpec(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	base.Field = built

	dir := filepath.Join(t.TempDir(), "store")
	s := Sweep{Base: base, Field: &spec, Repeats: 2, Seed: 5}
	want, err := s.Run(context.Background(), BatchOptions{Store: &Store{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}

	// The manifest embeds the normalized spec.
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"fields"`) {
		t.Fatalf("manifest has no embedded field specs:\n%s", raw)
	}

	// "Foreign machine": load the store, take the embedded spec, rebuild
	// the field, and re-run the first record's combination.
	data, err := LoadStores(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Stores[0].Fields) != 1 || data.Stores[0].Fields[0].Scenario != "" {
		t.Fatalf("loaded store fields = %+v", data.Stores[0].Fields)
	}
	embedded := data.Stores[0].Fields[0].Spec
	if embedded.Fingerprint() != spec.Fingerprint() {
		t.Fatalf("embedded spec fingerprint %s != source %s", embedded.Fingerprint(), spec.Fingerprint())
	}
	rebuilt, err := BuildFieldSpec(embedded, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := specTestConfig()
	cfg.Field = rebuilt
	cfg.Seed = want.Runs[0].Spec.Seed
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != want.Runs[0].Result.Coverage || res.Messages != want.Runs[0].Result.Messages {
		t.Errorf("re-run from embedded spec diverged: cov %v vs %v", res.Coverage, want.Runs[0].Result.Coverage)
	}

	// Resume of the spec-backed store executes nothing.
	executed := 0
	if _, err := s.Run(context.Background(), BatchOptions{
		Store:      &Store{Dir: dir, Resume: true},
		OnProgress: func(int, int) { executed++ },
	}); err != nil {
		t.Fatal(err)
	}
	if executed != 0 {
		t.Errorf("resume executed %d runs, want 0", executed)
	}

	// A name-only (pre-spec) manifest still resumes: strip the fields
	// section and retry.
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "fields")
	stripped, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), stripped, 0o644); err != nil {
		t.Fatal(err)
	}
	executed = 0
	if _, err := s.Run(context.Background(), BatchOptions{
		Store:      &Store{Dir: dir, Resume: true},
		OnProgress: func(int, int) { executed++ },
	}); err != nil {
		t.Fatalf("name-only manifest no longer resumes: %v", err)
	}
	if executed != 0 {
		t.Errorf("name-only resume executed %d runs, want 0", executed)
	}
}

// TestSweepScenarioManifestEmbedsSpecs: scenario sweeps record each
// scenario's registered spec in the manifest, keyed by name.
func TestSweepScenarioManifestEmbedsSpecs(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	s := Sweep{Base: specTestConfig(), Scenarios: []string{"free", "narrow-door"}, Seed: 3}
	if _, err := s.Run(context.Background(), BatchOptions{Store: &Store{Dir: dir}}); err != nil {
		t.Fatal(err)
	}
	m, _, err := istore.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Fields) != 2 {
		t.Fatalf("manifest fields = %+v, want 2 entries", m.Fields)
	}
	byName := map[string]FieldSpec{}
	for _, fe := range m.Fields {
		byName[fe.Scenario] = fe.Spec
	}
	if door, ok := byName["narrow-door"]; !ok || len(door.Obstacles) != 2 {
		t.Errorf("narrow-door spec not embedded: %+v", byName)
	}
	if free, ok := byName["free"]; !ok || free.Bounds.MaxX != 1000 {
		t.Errorf("free spec not embedded: %+v", byName)
	}
}

// TestSweepFieldScenarioExclusive: a sweep may vary scenarios or supply
// one inline field, not both.
func TestSweepFieldScenarioExclusive(t *testing.T) {
	spec := FieldSpec{Bounds: RectSpec{MaxX: 500, MaxY: 500}}
	s := Sweep{Base: specTestConfig(), Scenarios: []string{"free"}, Field: &spec}
	if _, err := s.Expand(); err == nil || !strings.Contains(err.Error(), "both") {
		t.Errorf("Expand with Scenarios and Field should error, got %v", err)
	}
}

// TestScenarioBuildCache: seeded scenario builds are cached per
// (scenario, seed) — repeated expansions and paired scheme comparisons
// share one generated field instead of re-running the generator.
func TestScenarioBuildCache(t *testing.T) {
	builds := 0
	RegisterScenario(Scenario{
		Name:        "cache-probe",
		Description: "test scenario counting its builds",
		Seeded:      true,
		Build: func(seed uint64) (Field, error) {
			builds++
			return RandomObstacleField(seed)
		},
	})

	f1, err := BuildScenario("cache-probe", 31)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := BuildScenario("cache-probe", 31)
	if err != nil {
		t.Fatal(err)
	}
	if builds != 1 {
		t.Errorf("two builds of the same (scenario, seed) ran the builder %d times, want 1", builds)
	}
	if f1.f != f2.f {
		t.Error("cache returned distinct field instances for one (scenario, seed)")
	}
	if _, err := BuildScenario("cache-probe", 32); err != nil {
		t.Fatal(err)
	}
	if builds != 2 {
		t.Errorf("a new seed should build again (builds = %d)", builds)
	}

	// A two-scheme paired sweep over the seeded scenario: expanding twice
	// (the server expands once to fingerprint and once to execute) must
	// not rebuild the generated environments.
	builds = 0
	s := Sweep{
		Base:      specTestConfig(),
		Schemes:   []Scheme{SchemeCPVF, SchemeFLOOR},
		Scenarios: []string{"cache-probe"},
		Repeats:   2,
		Seed:      9,
	}
	if _, err := s.Expand(); err != nil {
		t.Fatal(err)
	}
	first := builds
	if first != 2 {
		t.Errorf("first expansion built %d fields, want 2 (one per repeat)", first)
	}
	if _, err := s.Expand(); err != nil {
		t.Fatal(err)
	}
	if builds != first {
		t.Errorf("re-expansion rebuilt fields (%d -> %d builds)", first, builds)
	}
}

// TestBuildFieldSpecCachesUnseeded: fixed-geometry specs ignore the seed
// in the cache key, so every seed maps to the single shared instance.
func TestBuildFieldSpecCachesUnseeded(t *testing.T) {
	spec := FieldSpec{Bounds: RectSpec{MaxX: 640, MaxY: 480}}
	a, err := BuildFieldSpec(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildFieldSpec(spec, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.f != b.f {
		t.Error("unseeded spec builds should share one instance across seeds")
	}
}

// TestManifestIgnoresSpecName: the cosmetic spec "name" must not enter
// sweep identity — renaming a spec file stays a cache hit and resumes
// the same store.
func TestManifestIgnoresSpecName(t *testing.T) {
	mk := func(name string) Sweep {
		spec := FieldSpec{Name: name, Bounds: RectSpec{MaxX: 600, MaxY: 600}}
		base := specTestConfig()
		f, err := BuildFieldSpec(spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		base.Field = f
		return Sweep{Base: base, Field: &spec, Repeats: 1, Seed: 5}
	}
	a := mk("alpha").manifest(Shard{}, 1)
	b := mk("beta").manifest(Shard{}, 1)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("manifests differ on the cosmetic spec name:\n%+v\n%+v", a, b)
	}
	// A renamed spec resumes the other name's store.
	dir := filepath.Join(t.TempDir(), "store")
	if _, err := mk("alpha").Run(context.Background(), BatchOptions{Store: &Store{Dir: dir}}); err != nil {
		t.Fatal(err)
	}
	executed := 0
	if _, err := mk("beta").Run(context.Background(), BatchOptions{
		Store:      &Store{Dir: dir, Resume: true},
		OnProgress: func(int, int) { executed++ },
	}); err != nil {
		t.Fatalf("renamed spec no longer resumes: %v", err)
	}
	if executed != 0 {
		t.Errorf("renamed spec re-executed %d runs, want 0", executed)
	}
}

// TestGeneratorClampsToSmallBounds: a generator tuned for the standard
// field applied to a small custom one clamps its side range to the
// bounds instead of sampling obstacle corners outside the field.
func TestGeneratorClampsToSmallBounds(t *testing.T) {
	spec := FieldSpec{
		Bounds:    RectSpec{MaxX: 300, MaxY: 300},
		Generator: &GeneratorSpec{MinCount: 1, MaxCount: 2, MinSide: 80, MaxSide: 400, KeepClear: 20},
	}
	for seed := uint64(1); seed <= 8; seed++ {
		f, err := BuildFieldSpec(spec, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, ob := range f.Spec().Obstacles {
			for _, p := range ob.Points {
				if p.X < 0 || p.X > 300 || p.Y < 0 || p.Y > 300 {
					t.Fatalf("seed %d obstacle %d vertex %+v outside the 300 m bounds", seed, i, p)
				}
			}
		}
	}
}
