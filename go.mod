module mobisense

go 1.24
