package mobisense

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"mobisense/internal/coverage"
)

// TestIncrementalSweepRecordsByteIdentical is the acceptance check for
// the incremental coverage engine: a traced obstacle-heavy sweep stored
// with the engine enabled (per-sample tracker updates, row-sharded
// seeding, early-exit exclusive-area tests) must produce byte-identical
// manifest and records files to the same sweep on the full-rescan paths
// (MOBISENSE_NO_INCR). The engine maintains the same integer counts the
// brute scans compute, so any byte of difference is a bug, not noise.
func TestIncrementalSweepRecordsByteIdentical(t *testing.T) {
	cfg := sweepConfig()
	cfg.Duration = 60
	cfg.Trace = &TraceOptions{Stride: 5}
	cfg.Failures = &FailureOptions{Interval: 20, MaxKills: 3}
	sweep := Sweep{
		Base:      cfg,
		Schemes:   []Scheme{SchemeCPVF, SchemeFLOOR},
		Scenarios: []string{"narrow-door", "random-obstacles"},
		Ns:        []int{25},
		Repeats:   2,
		Seed:      11,
	}
	dirs := map[bool]string{
		true:  filepath.Join(t.TempDir(), "incr"),
		false: filepath.Join(t.TempDir(), "brute"),
	}
	for _, incr := range []bool{true, false} {
		prev := coverage.SetIncrementalEnabled(incr)
		_, err := sweep.Run(context.Background(), BatchOptions{
			Workers: 4,
			Store:   &Store{Dir: dirs[incr], Trace: true},
		})
		coverage.SetIncrementalEnabled(prev)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, file := range []string{"manifest.json", "records.jsonl"} {
		a, err := os.ReadFile(filepath.Join(dirs[true], file))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirs[false], file))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between incremental and full-rescan sweeps", file)
		}
	}
	if len(bytesOrEmpty(t, dirs[true], "records.jsonl")) == 0 {
		t.Fatal("records.jsonl is empty")
	}
}
