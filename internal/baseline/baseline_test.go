package baseline

import (
	"math"
	"math/rand/v2"
	"testing"

	"mobisense/internal/core"
	"mobisense/internal/coverage"
	"mobisense/internal/field"
	"mobisense/internal/geom"
)

func TestVoronoiCellSinglePair(t *testing.T) {
	bounds := geom.R(0, 0, 100, 100)
	self := geom.V(25, 50)
	other := geom.V(75, 50)
	cell := VoronoiCell(self, []geom.Vec{other}, bounds)
	if cell == nil {
		t.Fatal("nil cell")
	}
	// The cell must be the left half of the field.
	if math.Abs(math.Abs(cell.Area())-5000) > 1 {
		t.Errorf("cell area = %v, want 5000", cell.Area())
	}
	if !cell.Contains(self) {
		t.Error("cell must contain its site")
	}
	if cell.Contains(geom.V(75, 50)) {
		t.Error("cell must not contain the neighbor")
	}
}

func TestVoronoiCellNoNeighbors(t *testing.T) {
	bounds := geom.R(0, 0, 100, 100)
	cell := VoronoiCell(geom.V(10, 10), nil, bounds)
	if math.Abs(cell.Area()-10000) > 1e-6 {
		t.Errorf("lonely cell should be the whole field, got area %v", cell.Area())
	}
}

func TestVoronoiCellsPartitionField(t *testing.T) {
	// True Voronoi cells must tile the bounds: areas sum to the total.
	bounds := geom.R(0, 0, 200, 200)
	rng := rand.New(rand.NewPCG(3, 3))
	positions := make([]geom.Vec, 15)
	for i := range positions {
		positions[i] = geom.V(rng.Float64()*200, rng.Float64()*200)
	}
	cells := TrueCells(positions, bounds)
	var sum float64
	for i, c := range cells {
		if c == nil {
			t.Fatalf("cell %d is nil", i)
		}
		if !c.Contains(positions[i]) {
			t.Errorf("cell %d does not contain its site", i)
		}
		sum += math.Abs(c.Area())
	}
	if math.Abs(sum-bounds.Area()) > 1 {
		t.Errorf("cells sum to %v, want %v", sum, bounds.Area())
	}
}

func TestIncorrectCellCount(t *testing.T) {
	bounds := geom.R(0, 0, 300, 300)
	// Three collinear sensors: with rc covering everything the local cells
	// are exact.
	positions := []geom.Vec{geom.V(50, 150), geom.V(150, 150), geom.V(250, 150)}
	if got := IncorrectCellCount(positions, 500, bounds, 0.01); got != 0 {
		t.Errorf("full knowledge: %d incorrect cells", got)
	}
	// With rc=120 the outer sensors cannot see each other; sensor 0's cell
	// should wrongly extend past sensor 2's bisector... it does not matter
	// for 0 (the middle sensor blocks), but shrink rc below the nearest
	// neighbor distance and every cell becomes the whole field.
	if got := IncorrectCellCount(positions, 50, bounds, 0.01); got != 3 {
		t.Errorf("blind sensors: %d incorrect cells, want 3", got)
	}
}

func TestFarthestVertex(t *testing.T) {
	cell := geom.R(0, 0, 10, 20).Polygon()
	v, ok := FarthestVertex(cell, geom.V(1, 1))
	if !ok || !v.Eq(geom.V(10, 20)) {
		t.Errorf("farthest = %v, %v", v, ok)
	}
	if _, ok := FarthestVertex(nil, geom.V(0, 0)); ok {
		t.Error("empty cell should report no vertex")
	}
}

func clusteredStart(f *field.Field, n int, seed uint64) []geom.Vec {
	rng := rand.New(rand.NewPCG(seed, seed+7))
	out := make([]geom.Vec, n)
	for i := range out {
		out[i] = f.RandomFreePoint(rng, geom.R(0, 0, 250, 250))
	}
	return out
}

func TestExplodeConservesSensors(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 500, 500), nil)
	start := clusteredStart(f, 30, 1)
	targets, dists, err := Explode(f, start, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 30 || len(dists) != 30 {
		t.Fatal("size mismatch")
	}
	for i := range targets {
		if !f.Free(targets[i]) {
			t.Errorf("target %d not free", i)
		}
		if math.Abs(start[i].Dist(targets[i])-dists[i]) > 1e-9 {
			t.Errorf("distance mismatch for %d", i)
		}
	}
}

func TestExplodeIsMinimal(t *testing.T) {
	// The Hungarian assignment must not cost more than the identity
	// assignment to the same target multiset.
	f := field.MustNew(geom.R(0, 0, 500, 500), nil)
	start := clusteredStart(f, 20, 2)
	rng := rand.New(rand.NewPCG(42, 42^0xda3e39cb94b95bdb))
	identity := make([]geom.Vec, len(start))
	var idCost float64
	for i := range identity {
		identity[i] = f.RandomFreePoint(rng, f.Bounds())
		idCost += start[i].Dist(identity[i])
	}
	_, dists, err := Explode(f, start, 42)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, d := range dists {
		total += d
	}
	if total > idCost+1e-6 {
		t.Errorf("explosion cost %v exceeds identity cost %v", total, idCost)
	}
}

func TestRunVORImprovesCoverage(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 500, 500), nil)
	start := clusteredStart(f, 40, 3)
	cfg := DefaultVDConfig(150, 60) // generous rc: correct cells
	res, err := RunVOR(f, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	est := coverage.NewEstimator(f, 5)
	before := est.Fraction(start, cfg.Rs)
	after := est.Fraction(res.Positions, cfg.Rs)
	if after <= before {
		t.Errorf("VOR coverage %.3f -> %.3f did not improve", before, after)
	}
	if after < 0.7 {
		t.Errorf("VOR with large rc should reach high coverage, got %.3f", after)
	}
}

func TestRunMinimaxImprovesCoverage(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 500, 500), nil)
	start := clusteredStart(f, 40, 4)
	cfg := DefaultVDConfig(240, 60) // rc/rs = 4: correct cells per Fig 10
	res, err := RunMinimax(f, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	est := coverage.NewEstimator(f, 5)
	after := est.Fraction(res.Positions, cfg.Rs)
	if after < 0.7 {
		t.Errorf("Minimax with large rc coverage = %.3f", after)
	}
}

func TestVDSmallRcProducesIncorrectCellsAndDisconnection(t *testing.T) {
	// Fig 10's regime: rc/rs <= 2 leaves the network disconnected and the
	// cells incorrect.
	f := field.MustNew(geom.R(0, 0, 500, 500), nil)
	start := clusteredStart(f, 40, 5)
	cfg := DefaultVDConfig(48, 60) // rc/rs = 0.8
	res, err := RunVOR(f, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.IncorrectCells == 0 {
		t.Error("expected incorrect local cells at rc/rs = 0.8")
	}
	if core.AllConnected(res.Positions, geom.Vec{}, cfg.Rc) {
		t.Error("expected a disconnected network at rc/rs = 0.8")
	}
}

func TestRunVDRejectsObstacles(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 500, 500),
		[]geom.Polygon{geom.R(200, 200, 300, 300).Polygon()})
	if _, err := RunVOR(f, clusteredStart(f, 5, 6), DefaultVDConfig(100, 50)); err == nil {
		t.Error("VOR on an obstacle field should error")
	}
}

func TestVDDistanceAccounting(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 500, 500), nil)
	start := clusteredStart(f, 25, 7)
	res, err := RunVOR(f, start, DefaultVDConfig(150, 60))
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgDistance() <= 0 {
		t.Error("average distance should be positive")
	}
	// Per-round cap: total ≤ explosion + rounds * rc/2.
	maxPossible := 0.0
	for _, d := range res.PerSensor {
		if d > maxPossible {
			maxPossible = d
		}
	}
	bound := math.Hypot(500, 500) + 10*150/2
	if maxPossible > bound {
		t.Errorf("per-sensor distance %v exceeds bound %v", maxPossible, bound)
	}
}

func TestStripPatternGeometry(t *testing.T) {
	bounds := geom.R(0, 0, 1000, 1000)
	rc, rs := 60.0, 40.0
	pts := StripPattern(bounds, 240, rc, rs)
	if len(pts) != 240 {
		t.Fatalf("placed %d, want 240", len(pts))
	}
	d1 := math.Min(rc, math.Sqrt(3)*rs)
	// First two sensors of the bottom row must be d1 apart.
	if d := pts[0].Dist(pts[1]); math.Abs(d-d1) > 1e-6 {
		t.Errorf("intra-row spacing = %v, want %v", d, d1)
	}
	for _, p := range pts {
		if !bounds.Contains(p) {
			t.Errorf("point %v outside bounds", p)
		}
	}
}

func TestStripPatternConnectivity(t *testing.T) {
	// With rc >= d1 and rows connected (directly or via connectors), the
	// pattern graph must be connected from the first sensor.
	bounds := geom.R(0, 0, 500, 500)
	for _, tc := range []struct{ rc, rs float64 }{
		{60, 40},  // d2 < rc: rows within reach? d1=60, d2=40+sqrt(1600-900)=66.5 > rc: connectors
		{100, 40}, // d1 = 69.3, d2 = 40+20=… within rc: no connectors
		{20, 60},  // tiny rc: connectors every 20
	} {
		pts := StripPattern(bounds, 400, tc.rc, tc.rs)
		if len(pts) == 0 {
			t.Fatal("no points")
		}
		if !core.AllConnected(pts, pts[0], tc.rc) {
			t.Errorf("rc=%v rs=%v: strip pattern disconnected", tc.rc, tc.rs)
		}
	}
}

func TestStripPatternCoverageNearOptimal(t *testing.T) {
	// With enough sensors the pattern should cover nearly everything.
	f := field.MustNew(geom.R(0, 0, 500, 500), nil)
	rc, rs := 60.0, 40.0
	need := StripPatternCount(f.Bounds(), rc, rs)
	pts := StripPattern(f.Bounds(), need, rc, rs)
	est := coverage.NewEstimator(f, 5)
	if cov := est.Fraction(pts, rs); cov < 0.95 {
		t.Errorf("saturated pattern coverage = %.3f, want >= 0.95", cov)
	}
}

func TestMinMatchingDistance(t *testing.T) {
	start := []geom.Vec{geom.V(0, 0), geom.V(10, 0)}
	layout := []geom.Vec{geom.V(10, 1), geom.V(0, 1)}
	dists, err := MinMatchingDistance(start, layout)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dists[0]-1) > 1e-9 || math.Abs(dists[1]-1) > 1e-9 {
		t.Errorf("dists = %v, want [1 1]", dists)
	}
	if _, err := MinMatchingDistance(start, layout[:1]); err == nil {
		t.Error("undersized layout should error")
	}
}

func TestStripPatternZeroBudget(t *testing.T) {
	if pts := StripPattern(geom.R(0, 0, 100, 100), 0, 50, 30); pts != nil {
		t.Errorf("zero budget should yield nil, got %d", len(pts))
	}
}
