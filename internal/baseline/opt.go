package baseline

import (
	"math"

	"mobisense/internal/geom"
)

// StripPattern generates the strip-based asymptotically optimal deployment
// pattern of Bai et al. [1] for general rc/rs, used as the OPT baseline of
// Figures 9 and 11. Sensors are placed in horizontal rows with intra-row
// spacing d1 = min(rc, √3·rs) and row separation d2 = rs + √(rs² − d1²/4);
// when d2 exceeds rc, a vertical connector chain along the left edge keeps
// the rows one-connected. Placement fills rows bottom-up and stops after n
// sensors.
func StripPattern(bounds geom.Rect, n int, rc, rs float64) []geom.Vec {
	if n <= 0 {
		return nil
	}
	d1 := math.Min(rc, math.Sqrt(3)*rs)
	d2 := rs + math.Sqrt(math.Max(0, rs*rs-d1*d1/4))

	out := make([]geom.Vec, 0, n)
	place := func(p geom.Vec) bool {
		if len(out) >= n {
			return false
		}
		out = append(out, p.Clamp(bounds))
		return len(out) < n
	}

	needConnectors := d2 > rc
	prevRowY := math.NaN()
	row := 0
	// The final row may overshoot the top edge; Clamp pulls it onto the
	// boundary, closing the top sliver.
	for y := bounds.Min.Y + rs; y <= bounds.Max.Y+d2/2; y += d2 {
		// Connector chain between this row and the previous one along the
		// left edge, spaced rc apart.
		if needConnectors && !math.IsNaN(prevRowY) {
			// 0.86·rc ≤ √(rc²−(d1/2)²) for every d1 ≤ rc, so each link in
			// the chain reaches the nearest sensor of either adjacent row
			// despite the stagger offset.
			cStep := 0.86 * rc
			for cy := prevRowY + cStep; cy < math.Min(y, bounds.Max.Y); cy += cStep {
				if !place(geom.V(bounds.Min.X+d1/2, cy)) {
					return out
				}
			}
		}
		// Alternate rows are staggered by half the intra-row spacing,
		// which is what closes the inter-row gaps in Bai et al.'s pattern.
		offset := d1 / 2
		if row%2 == 1 {
			offset = 0
		}
		for x := bounds.Min.X + offset; x <= bounds.Max.X; x += d1 {
			if !place(geom.V(x, y)) {
				return out
			}
		}
		prevRowY = y
		row++
	}
	return out
}

// StripPatternCount returns how many sensors the strip pattern needs to
// tile the whole bounds (the saturation point of the OPT curve in Fig 9).
func StripPatternCount(bounds geom.Rect, rc, rs float64) int {
	// Generate with a huge budget and count.
	return len(StripPattern(bounds, 1<<20, rc, rs))
}
