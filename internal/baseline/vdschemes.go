package baseline

import (
	"fmt"
	"math"
	"math/rand/v2"

	"mobisense/internal/field"
	"mobisense/internal/geom"
	"mobisense/internal/matching"
)

// VDConfig parameterizes a VOR or Minimax run (§6.1.2).
type VDConfig struct {
	// Rc and Rs are the communication and sensing ranges.
	Rc, Rs float64
	// Rounds is how many adjustment rounds run after the explosion; the
	// paper uses 10, "after which the coverage stabilizes".
	Rounds int
	// Explode enables the §6.2 explosion stage for clustered starts: the
	// sensors first disperse to a uniform random layout along
	// minimum-total-distance (Hungarian) routes.
	Explode bool
	// LocalKnowledge restricts Voronoi construction to rc-neighborhoods
	// (the realistic model). Disable to give the schemes perfect cells.
	LocalKnowledge bool
	// Seed drives the explosion target layout.
	Seed uint64
}

// DefaultVDConfig mirrors the paper's VOR/Minimax settings.
func DefaultVDConfig(rc, rs float64) VDConfig {
	return VDConfig{Rc: rc, Rs: rs, Rounds: 10, Explode: true, LocalKnowledge: true, Seed: 1}
}

// VDResult is the outcome of a VOR or Minimax run.
type VDResult struct {
	// Positions is the final layout.
	Positions []geom.Vec
	// PerSensor is each sensor's total moving distance, including the
	// explosion stage.
	PerSensor []float64
	// IncorrectCells is the number of sensors whose final local Voronoi
	// cell differs from the true cell (Figure 10's "Incorrect VD").
	IncorrectCells int
}

// AvgDistance returns the mean per-sensor moving distance.
func (r VDResult) AvgDistance() float64 {
	if len(r.PerSensor) == 0 {
		return 0
	}
	var sum float64
	for _, d := range r.PerSensor {
		sum += d
	}
	return sum / float64(len(r.PerSensor))
}

// vdRule computes one sensor's per-round target from its Voronoi cell.
type vdRule func(pos geom.Vec, cell geom.Polygon, rs float64) (geom.Vec, bool)

// vorRule moves toward the farthest Voronoi vertex, stopping where the
// sensing disk would touch it (Wang et al.'s VOR).
func vorRule(pos geom.Vec, cell geom.Polygon, rs float64) (geom.Vec, bool) {
	v, ok := FarthestVertex(cell, pos)
	if !ok {
		return geom.Vec{}, false
	}
	d := pos.Dist(v)
	if d <= rs {
		return pos, true // vertex already covered: no move needed
	}
	return v.Add(pos.Sub(v).Unit().Scale(rs)), true
}

// minimaxRule moves to the point minimizing the distance to the farthest
// cell vertex: the center of the minimal enclosing circle of the vertices.
func minimaxRule(pos geom.Vec, cell geom.Polygon, rs float64) (geom.Vec, bool) {
	if len(cell) == 0 {
		return geom.Vec{}, false
	}
	return geom.MinEnclosingCircle(cell).C, true
}

// RunVOR runs the VOR scheme of [14] from the given start layout on an
// obstacle-free field.
func RunVOR(f *field.Field, start []geom.Vec, cfg VDConfig) (VDResult, error) {
	return runVD(f, start, cfg, vorRule)
}

// RunMinimax runs the Minimax scheme of [14].
func RunMinimax(f *field.Field, start []geom.Vec, cfg VDConfig) (VDResult, error) {
	return runVD(f, start, cfg, minimaxRule)
}

func runVD(f *field.Field, start []geom.Vec, cfg VDConfig, rule vdRule) (VDResult, error) {
	if len(f.Obstacles()) != 0 {
		return VDResult{}, fmt.Errorf("baseline: VD-based schemes require an obstacle-free field (§6.4)")
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 10
	}
	n := len(start)
	pos := make([]geom.Vec, n)
	copy(pos, start)
	moved := make([]float64, n)

	if cfg.Explode {
		targets, dists, err := Explode(f, pos, cfg.Seed)
		if err != nil {
			return VDResult{}, err
		}
		copy(pos, targets)
		copy(moved, dists)
	}

	bounds := f.Bounds()
	maxMove := cfg.Rc / 2 // per-round movement constraint (§6.1)
	for round := 0; round < cfg.Rounds; round++ {
		var cells []geom.Polygon
		if cfg.LocalKnowledge {
			cells = LocalCells(pos, cfg.Rc, bounds)
		} else {
			cells = TrueCells(pos, bounds)
		}
		next := make([]geom.Vec, n)
		for i := range pos {
			next[i] = pos[i]
			target, ok := rule(pos[i], cells[i], cfg.Rs)
			if !ok {
				continue
			}
			step := target.Sub(pos[i])
			if l := step.Len(); l > maxMove {
				step = step.Unit().Scale(maxMove)
			}
			next[i] = pos[i].Add(step).Clamp(bounds)
		}
		for i := range pos {
			moved[i] += pos[i].Dist(next[i])
			pos[i] = next[i]
		}
	}

	return VDResult{
		Positions:      pos,
		PerSensor:      moved,
		IncorrectCells: IncorrectCellCount(pos, cfg.Rc, bounds, 0.01),
	}, nil
}

// Explode computes the §6.2 explosion stage: a uniform random target
// layout over the whole field, assigned to the sensors by minimum-cost
// matching (Hungarian algorithm) so the stage costs the minimum total
// moving distance. It returns the target positions (per original sensor
// index) and each sensor's travel distance.
func Explode(f *field.Field, start []geom.Vec, seed uint64) ([]geom.Vec, []float64, error) {
	n := len(start)
	rng := rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))
	targets := make([]geom.Vec, n)
	for i := range targets {
		targets[i] = f.RandomFreePoint(rng, f.Bounds())
	}
	src := make([]matching.Point, n)
	dst := make([]matching.Point, n)
	for i := 0; i < n; i++ {
		src[i] = matching.Point{X: start[i].X, Y: start[i].Y}
		dst[i] = matching.Point{X: targets[i].X, Y: targets[i].Y}
	}
	assign, _, err := matching.Solve(buildCost(src, dst))
	if err != nil {
		return nil, nil, fmt.Errorf("baseline: explosion matching: %w", err)
	}
	out := make([]geom.Vec, n)
	dists := make([]float64, n)
	for i, j := range assign {
		out[i] = targets[j]
		dists[i] = start[i].Dist(targets[j])
	}
	return out, dists, nil
}

func buildCost(src, dst []matching.Point) [][]float64 {
	cost := make([][]float64, len(src))
	for i, s := range src {
		row := make([]float64, len(dst))
		for j, d := range dst {
			row[j] = math.Hypot(s.X-d.X, s.Y-d.Y)
		}
		cost[i] = row
	}
	return cost
}

// MinMatchingDistance returns the per-sensor distances of the minimum-cost
// assignment from start to the first len(start) positions of layout; it is
// the Hungarian lower bound used twice in Figure 11 (optimal-pattern
// target and FLOOR's own final layout).
func MinMatchingDistance(start, layout []geom.Vec) ([]float64, error) {
	if len(layout) < len(start) {
		return nil, fmt.Errorf("baseline: layout has %d positions for %d sensors", len(layout), len(start))
	}
	src := make([]matching.Point, len(start))
	for i, p := range start {
		src[i] = matching.Point{X: p.X, Y: p.Y}
	}
	dst := make([]matching.Point, len(layout))
	for i, p := range layout {
		dst[i] = matching.Point{X: p.X, Y: p.Y}
	}
	assign, _, err := matching.Solve(buildCost(src, dst))
	if err != nil {
		return nil, err
	}
	dists := make([]float64, len(start))
	for i, j := range assign {
		dists[i] = start[i].Dist(layout[j])
	}
	return dists, nil
}
