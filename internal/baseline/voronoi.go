// Package baseline implements the comparison schemes of §6: the
// Voronoi-diagram-based VOR and Minimax schemes of Wang et al. [14]
// (including the §6.2 "explosion" lower bound for clustered starts), and
// the strip-based optimal deployment pattern of Bai et al. [1]. All three
// assume an obstacle-free field; VOR and Minimax are connectivity-ignorant,
// which is exactly the weakness Figure 10 demonstrates.
package baseline

import (
	"math"

	"mobisense/internal/geom"
)

// VoronoiCell computes sensor i's Voronoi cell restricted to bounds, using
// only the given neighbor positions: the bounds polygon clipped by the
// perpendicular-bisector half-plane of every neighbor. With all other
// sensors as neighbors this is the true Voronoi cell; with only the
// rc-visible neighbors it is the (possibly incorrect) local cell a real
// sensor can construct (§1, Figure 1).
func VoronoiCell(self geom.Vec, neighbors []geom.Vec, bounds geom.Rect) geom.Polygon {
	cell := bounds.Polygon()
	for _, nb := range neighbors {
		if cell == nil {
			return nil
		}
		d := nb.Sub(self)
		if d.Len() < geom.Eps {
			continue // coincident sensor: bisector undefined
		}
		mid := self.Lerp(nb, 0.5)
		// Direction along the bisector chosen so that `self` lies on the
		// kept (left) side of a→b.
		dir := d.Perp()
		a, b := mid, mid.Add(dir)
		if geom.Seg(a, b).Side(self) < 0 {
			a, b = b, a
		}
		cell = cell.ClipHalfPlane(a, b)
	}
	return cell
}

// LocalCells computes every sensor's local Voronoi cell from its
// rc-neighborhood.
func LocalCells(positions []geom.Vec, rc float64, bounds geom.Rect) []geom.Polygon {
	cells := make([]geom.Polygon, len(positions))
	for i, p := range positions {
		var nbrs []geom.Vec
		for j, q := range positions {
			if j != i && p.Dist(q) <= rc {
				nbrs = append(nbrs, q)
			}
		}
		cells[i] = VoronoiCell(p, nbrs, bounds)
	}
	return cells
}

// TrueCells computes every sensor's exact Voronoi cell (full knowledge).
func TrueCells(positions []geom.Vec, bounds geom.Rect) []geom.Polygon {
	cells := make([]geom.Polygon, len(positions))
	for i, p := range positions {
		nbrs := make([]geom.Vec, 0, len(positions)-1)
		for j, q := range positions {
			if j != i {
				nbrs = append(nbrs, q)
			}
		}
		cells[i] = VoronoiCell(p, nbrs, bounds)
	}
	return cells
}

// IncorrectCellCount returns how many sensors would construct a wrong
// Voronoi cell from their rc-neighborhood: the local cell's area differs
// from the true cell's by more than tol (relative). This drives the
// "Incorrect VD" annotations of Figure 10.
func IncorrectCellCount(positions []geom.Vec, rc float64, bounds geom.Rect, tol float64) int {
	if tol <= 0 {
		tol = 0.01
	}
	local := LocalCells(positions, rc, bounds)
	truth := TrueCells(positions, bounds)
	count := 0
	for i := range positions {
		la, ta := 0.0, 0.0
		if local[i] != nil {
			la = math.Abs(local[i].Area())
		}
		if truth[i] != nil {
			ta = math.Abs(truth[i].Area())
		}
		if ta == 0 {
			continue
		}
		if math.Abs(la-ta)/ta > tol {
			count++
		}
	}
	return count
}

// FarthestVertex returns the cell vertex farthest from p.
func FarthestVertex(cell geom.Polygon, p geom.Vec) (geom.Vec, bool) {
	if len(cell) == 0 {
		return geom.Vec{}, false
	}
	best := cell[0]
	bestD := p.Dist2(cell[0])
	for _, v := range cell[1:] {
		if d := p.Dist2(v); d > bestD {
			bestD = d
			best = v
		}
	}
	return best, true
}
