package baseline

import (
	"math/rand/v2"
	"testing"

	"mobisense/internal/field"
	"mobisense/internal/geom"
)

func fieldForTest(t *testing.T) *field.Field {
	t.Helper()
	return field.MustNew(geom.R(0, 0, 500, 500), nil)
}

// TestTrueCellsNearestSiteProperty is the defining property of a Voronoi
// diagram: every sampled point of a site's true cell is at least as close
// to that site as to any other site.
func TestTrueCellsNearestSiteProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 23))
	bounds := geom.R(0, 0, 300, 300)
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.IntN(12)
		sites := make([]geom.Vec, n)
		for i := range sites {
			sites[i] = geom.V(rng.Float64()*300, rng.Float64()*300)
		}
		cells := TrueCells(sites, bounds)
		for i, cell := range cells {
			if cell == nil {
				t.Fatalf("trial %d: nil cell %d", trial, i)
			}
			// Sample the cell interior by shrinking vertices toward the
			// centroid, avoiding boundary ties.
			c := cell.Centroid()
			for _, v := range cell {
				p := c.Lerp(v, 0.9)
				dOwn := p.Dist(sites[i])
				for j, s := range sites {
					if j == i {
						continue
					}
					if p.Dist(s) < dOwn-1e-6 {
						t.Fatalf("trial %d: point %v in cell %d is closer to site %d",
							trial, p, i, j)
					}
				}
			}
		}
	}
}

// TestLocalCellsSupersetOfTrue: with fewer known neighbors the local cell
// can only be larger than (or equal to) the true cell — missing a bisector
// never shrinks the clipped polygon.
func TestLocalCellsSupersetOfTrue(t *testing.T) {
	rng := rand.New(rand.NewPCG(29, 31))
	bounds := geom.R(0, 0, 300, 300)
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.IntN(10)
		sites := make([]geom.Vec, n)
		for i := range sites {
			sites[i] = geom.V(rng.Float64()*300, rng.Float64()*300)
		}
		rc := 50 + rng.Float64()*150
		local := LocalCells(sites, rc, bounds)
		truth := TrueCells(sites, bounds)
		for i := range sites {
			la, ta := local[i].Area(), truth[i].Area()
			if la < ta-1e-6 {
				t.Fatalf("trial %d: local cell %d area %.2f below true %.2f",
					trial, i, la, ta)
			}
		}
	}
}

// TestExplosionDistanceBelowDiameter: no optimal assignment can require a
// sensor to travel farther than the field diameter.
func TestExplosionDistanceBelowDiameter(t *testing.T) {
	f := fieldForTest(t)
	start := clusteredStart(f, 25, 11)
	_, dists, err := Explode(f, start, 3)
	if err != nil {
		t.Fatal(err)
	}
	diam := geom.V(0, 0).Dist(geom.V(500, 500))
	for i, d := range dists {
		if d > diam {
			t.Errorf("sensor %d travels %.1f m > diameter", i, d)
		}
	}
}
