// Package bug2 implements the Lumelsky–Stepanov BUG2 path-planning
// algorithm (§3.2 of the paper): move along the straight reference line from
// start to target; on hitting an obstacle, follow its boundary using the
// right-hand (or left-hand) rule until returning to the reference line at a
// point strictly closer to the target from which progress is possible, then
// resume the straight walk.
//
// The planner is incremental: Advance(budget) consumes up to budget meters
// of travel and returns, so a sensor can interleave planning with the
// per-period decisions of the deployment schemes. Overlapping obstacles are
// handled by switching to whichever solid the wall-following path collides
// with, which traces the boundary of the union.
package bug2

import (
	"math"

	"mobisense/internal/field"
	"mobisense/internal/geom"
)

// Status describes the planner's progress.
type Status int

// Planner states.
const (
	// StatusMoving means the planner has not yet reached the target.
	StatusMoving Status = iota + 1
	// StatusArrived means the position is within the arrival tolerance of
	// the target.
	StatusArrived
	// StatusHit is reported in stop-on-hit mode when the straight walk
	// first touches an obstacle (used by FLOOR's Algorithm 1 legs).
	StatusHit
	// StatusStuck means the target is unreachable: boundary following
	// returned to the hit point (or exceeded the union perimeter) without
	// finding a valid leave point.
	StatusStuck
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusMoving:
		return "moving"
	case StatusArrived:
		return "arrived"
	case StatusHit:
		return "hit"
	case StatusStuck:
		return "stuck"
	default:
		return "unknown"
	}
}

// Hand selects which hand stays on the wall while following a boundary.
type Hand int

// Wall-following hand rules.
const (
	// RightHand keeps the obstacle on the robot's right (clockwise
	// traversal of a CCW polygon); the paper's connectivity phase uses it.
	RightHand Hand = iota + 1
	// LeftHand keeps the obstacle on the left (counter-clockwise
	// traversal); §5.5.1 uses it to disperse into unexplored areas.
	LeftHand
)

// clearance is the standoff distance (meters) the planner keeps from walls
// to avoid degenerate tangential collision queries. It is two orders of
// magnitude below the smallest communication range in the paper, so it has
// no effect on scheme-level behaviour.
const clearance = 0.1

// defaultArriveTol is the default arrival tolerance.
const defaultArriveTol = 0.25

type mode int

const (
	modeStraight mode = iota + 1
	modeFollow
)

// Planner executes BUG2 incrementally between a start and a target.
type Planner struct {
	f      *field.Field
	start  geom.Vec
	target geom.Vec
	pos    geom.Vec
	status Status

	hand      Hand
	arriveTol float64
	stopOnHit bool

	mode mode
	// Boundary-following episode state.
	hitPoint     geom.Vec // H: where the straight walk hit the obstacle
	hitDist      float64  // |H - target|
	solid        int      // solid currently being followed
	edge         int      // edge index on that solid
	followTravel float64  // distance traveled in this following episode
	leftVicinity bool     // the walk has moved well away from the hit point
	maxFollow    float64  // following budget before declaring the target unreachable

	traveled float64
}

// Option configures a Planner.
type Option func(*Planner)

// WithHand selects the wall-following hand rule (default RightHand).
func WithHand(h Hand) Option {
	return func(p *Planner) { p.hand = h }
}

// WithArriveTolerance sets the distance at which the target counts as
// reached (default 0.25 m).
func WithArriveTolerance(tol float64) Option {
	return func(p *Planner) { p.arriveTol = tol }
}

// WithStopOnHit makes the planner report StatusHit and halt when the
// straight walk first touches an obstacle instead of wall-following. This
// realizes the "until ... hitting an obstacle" clauses of FLOOR's
// Algorithm 1.
func WithStopOnHit() Option {
	return func(p *Planner) { p.stopOnHit = true }
}

// New creates a planner from start to target on field f.
func New(f *field.Field, start, target geom.Vec, opts ...Option) *Planner {
	p := &Planner{hand: RightHand, arriveTol: defaultArriveTol}
	for _, opt := range opts {
		opt(p)
	}
	p.Init(f, start, target, p.hand, p.arriveTol, p.stopOnHit)
	return p
}

// Init (re)initializes p in place for a fresh start→target walk with the
// given configuration, letting callers that plan many consecutive legs
// (e.g. multi-leg route walkers) reuse one planner value instead of
// allocating one per leg. A zero arriveTol selects the default.
func (p *Planner) Init(f *field.Field, start, target geom.Vec, hand Hand, arriveTol float64, stopOnHit bool) {
	if arriveTol <= 0 {
		arriveTol = defaultArriveTol
	}
	*p = Planner{
		f:         f,
		start:     start,
		target:    target,
		pos:       start,
		status:    StatusMoving,
		hand:      hand,
		arriveTol: arriveTol,
		stopOnHit: stopOnHit,
		mode:      modeStraight,
		maxFollow: followBudget(f),
	}
	if p.pos.WithinDist(p.target, p.arriveTol) {
		p.status = StatusArrived
	}
}

// followBudget returns the maximum boundary-following distance before the
// planner declares the target unreachable: twice the total perimeter of all
// solids, which upper-bounds any union boundary walk.
func followBudget(f *field.Field) float64 {
	var sum float64
	for i := 0; i < f.NumSolids(); i++ {
		sum += f.Solid(i).Perimeter()
	}
	return 2*sum + 100
}

// Pos returns the planner's current position.
func (p *Planner) Pos() geom.Vec { return p.pos }

// Target returns the target point.
func (p *Planner) Target() geom.Vec { return p.target }

// Status returns the planner's current status.
func (p *Planner) Status() Status { return p.status }

// Traveled returns the total distance traveled so far.
func (p *Planner) Traveled() float64 { return p.traveled }

// Following reports whether the planner is currently wall-following.
func (p *Planner) Following() bool { return p.mode == modeFollow }

// refLine returns the BUG2 reference line segment.
func (p *Planner) refLine() geom.Segment { return geom.Seg(p.start, p.target) }

// Advance moves the planner up to budget meters along the BUG2 path and
// returns the distance actually moved. Movement stops early on arrival,
// on obstacle contact in stop-on-hit mode, or when the target is found
// unreachable.
func (p *Planner) Advance(budget float64) float64 {
	const minProgress = 1e-7
	var moved float64
	for iter := 0; iter < 100000; iter++ {
		if p.status != StatusMoving || budget <= minProgress {
			break
		}
		var step float64
		if p.mode == modeStraight {
			step = p.stepStraight(budget)
		} else {
			step = p.stepFollow(budget)
		}
		moved += step
		budget -= math.Max(step, minProgress)
	}
	p.traveled += moved
	return moved
}

// stepStraight advances along the line toward the target, entering
// following mode on collision. It returns the distance moved.
func (p *Planner) stepStraight(budget float64) float64 {
	toTarget := p.target.Sub(p.pos)
	dist := toTarget.Len()
	if dist <= p.arriveTol {
		p.status = StatusArrived
		return 0
	}
	stepLen := math.Min(budget, dist)
	dest := p.pos.Add(toTarget.Unit().Scale(stepLen))

	hit, ok := p.f.FirstHit(geom.Seg(p.pos, dest))
	if !ok {
		p.pos = dest
		if p.pos.WithinDist(p.target, p.arriveTol) {
			p.status = StatusArrived
		}
		return stepLen
	}

	// A hit within arrival tolerance of the target (e.g. a target on a
	// wall or at a field corner) counts as arrival.
	hitMoved := hit.T * stepLen
	if hit.Point.WithinDist(p.target, p.arriveTol+clearance) {
		p.pos = p.standOff(hit.Solid, hit.Edge, hit.Point)
		p.status = StatusArrived
		return hitMoved
	}

	// Collision: stand off the wall and begin (or report) the hit.
	p.enterFollow(hit)
	if p.stopOnHit {
		p.status = StatusHit
	}
	return hitMoved
}

// enterFollow transitions into boundary following at the given hit.
func (p *Planner) enterFollow(hit field.Hit) {
	p.mode = modeFollow
	p.hitPoint = hit.Point
	p.hitDist = hit.Point.Dist(p.target)
	p.solid = hit.Solid
	p.edge = hit.Edge
	p.followTravel = 0
	p.leftVicinity = false
	p.pos = p.standOff(hit.Solid, hit.Edge, hit.Point)
}

// standOff returns pt pushed clearance meters away from the solid along the
// edge's outward normal.
func (p *Planner) standOff(solid, edge int, pt geom.Vec) geom.Vec {
	e := p.f.Solid(solid).Edge(edge)
	outward := e.Dir().Perp().Neg() // CCW polygon: interior is left, so outward is right
	return pt.Add(outward.Scale(clearance))
}

// followDir returns +1 to traverse edges in CCW order (left hand on wall)
// or -1 for CW order (right hand on wall).
func (p *Planner) followDir() int {
	if p.hand == LeftHand {
		return 1
	}
	return -1
}

// stepFollow advances along the current solid's boundary, switching solids
// on collision (union boundaries), turning at corners, and testing the BUG2
// leave condition. It returns the distance moved.
func (p *Planner) stepFollow(budget float64) float64 {
	if p.followTravel > p.maxFollow {
		p.status = StatusStuck
		return 0
	}
	poly := p.f.Solid(p.solid)
	e := poly.Edge(p.edge)
	dir := p.followDir()

	param := e.ClosestParam(p.pos)
	var walk geom.Vec // unit walk direction along the edge
	var remaining float64
	if dir > 0 {
		walk = e.Dir()
		remaining = (1 - param) * e.Len()
	} else {
		walk = e.Dir().Neg()
		remaining = param * e.Len()
	}

	if remaining <= 1e-9 {
		return p.turnCorner(poly, budget)
	}

	stepLen := math.Min(budget, remaining)
	next := p.pos.Add(walk.Scale(stepLen))

	// Find the first collision along the sub-step (including this
	// polygon's other edges at concave corners, and other obstacles of an
	// overlapping union). Grazing contact with the edge being followed is
	// not a collision.
	tHit := math.Inf(1)
	var hit field.Hit
	if h, ok := p.f.FirstHit(geom.Seg(p.pos, next)); ok {
		if !(h.Solid == p.solid && h.Edge == p.edge) || h.T*stepLen > clearance {
			tHit = h.T
			hit = h
		}
	}

	// Leave condition: does this sub-step cross the reference line —
	// before any collision — at a point strictly closer to the target than
	// the hit point, from which progress toward the target is possible?
	if leavePt, ok := p.crossesReferenceLine(p.pos, next); ok {
		tCross := p.pos.Dist(leavePt) / stepLen
		if tCross < tHit &&
			leavePt.Dist(p.target) < p.hitDist-1e-9 && p.canProgress(leavePt) {
			movedToLeave := p.pos.Dist(leavePt)
			p.pos = leavePt
			p.followTravel += movedToLeave
			p.mode = modeStraight
			if p.pos.WithinDist(p.target, p.arriveTol) {
				p.status = StatusArrived
			}
			return movedToLeave
		}
	}

	if !math.IsInf(tHit, 1) {
		moved := tHit * stepLen
		p.solid = hit.Solid
		p.edge = hit.Edge
		p.pos = p.standOff(hit.Solid, hit.Edge, hit.Point)
		p.followTravel += moved
		return math.Max(moved, 1e-6)
	}

	swept := geom.Seg(p.pos, next)
	p.pos = next
	p.followTravel += stepLen
	if p.pos.WithinDist(p.target, p.arriveTol) {
		p.status = StatusArrived
	}
	// Unreachable-target detection: once the walk has moved well away from
	// the hit point, sweeping past it again means a full boundary lap
	// happened without a valid leave point (BUG2's unreachability
	// criterion).
	if !p.leftVicinity {
		p.leftVicinity = p.pos.Dist(p.hitPoint) > 10*clearance
	} else if swept.Dist(p.hitPoint) < 2*clearance {
		p.status = StatusStuck
	}
	return stepLen
}

// turnCorner pivots around the vertex at the end of the current edge onto
// the next edge in traversal order. The pivot arc around the corner is
// charged as the Euclidean jump between the two stand-off positions,
// clamped to the remaining budget so Advance never over-reports travel.
func (p *Planner) turnCorner(poly geom.Polygon, budget float64) float64 {
	n := poly.NumEdges()
	dir := p.followDir()
	if dir > 0 {
		p.edge = (p.edge + 1) % n
	} else {
		p.edge = (p.edge - 1 + n) % n
	}
	var anchor geom.Vec
	if dir > 0 {
		anchor = poly.Edge(p.edge).A
	} else {
		anchor = poly.Edge(p.edge).B
	}
	newPos := p.standOff(p.solid, p.edge, anchor)
	moved := p.pos.Dist(newPos)
	p.pos = newPos
	p.followTravel += moved
	// The pivot is atomic; charge at most the remaining budget (the jump
	// is bounded by the 2·clearance stand-off geometry, so the
	// under-report is negligible).
	return math.Max(math.Min(moved, budget), 1e-6)
}

// crossesReferenceLine reports whether the segment a→b crosses the BUG2
// reference line, returning the crossing point.
func (p *Planner) crossesReferenceLine(a, b geom.Vec) (geom.Vec, bool) {
	ref := p.refLine()
	sa, sb := ref.Side(a), ref.Side(b)
	if sa == sb || (sa == 0 && sb == 0) {
		return geom.Vec{}, false
	}
	pt, ok := geom.Seg(a, b).Intersect(geom.Seg(ref.A, ref.B))
	if !ok {
		// The sub-step crosses the infinite line outside the segment
		// extent; that is not a reference-line return.
		return geom.Vec{}, false
	}
	return pt, true
}

// canProgress reports whether a short probe from q toward the target stays
// in free space, i.e. the robot "can make progress on the reference line".
func (p *Planner) canProgress(q geom.Vec) bool {
	d := q.Dist(p.target)
	if d <= p.arriveTol {
		return true
	}
	probe := q.Towards(p.target, math.Min(1.0, d))
	return p.f.SegmentFree(q, probe)
}

// Resume re-enables a planner halted by StatusHit in stop-on-hit mode,
// switching it to full wall-following from its current position. Calling
// Resume in any other state is a no-op.
func (p *Planner) Resume() {
	if p.status == StatusHit {
		p.status = StatusMoving
		p.stopOnHit = false
	}
}
