package bug2

import (
	"math"
	"math/rand/v2"
	"testing"

	"mobisense/internal/field"
	"mobisense/internal/geom"
)

// run drives a planner to completion and returns the trajectory sampled at
// every advance call.
func run(t *testing.T, p *Planner, stepBudget, maxTravel float64) []geom.Vec {
	t.Helper()
	path := []geom.Vec{p.Pos()}
	for p.Status() == StatusMoving {
		p.Advance(stepBudget)
		path = append(path, p.Pos())
		if p.Traveled() > maxTravel {
			t.Fatalf("planner exceeded travel bound %v (at %v, status %v)",
				maxTravel, p.Pos(), p.Status())
		}
	}
	return path
}

func TestStraightLineNoObstacles(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 100, 100), nil)
	p := New(f, geom.V(10, 10), geom.V(80, 60))
	run(t, p, 2, 200)
	if p.Status() != StatusArrived {
		t.Fatalf("status = %v", p.Status())
	}
	want := geom.V(10, 10).Dist(geom.V(80, 60))
	if math.Abs(p.Traveled()-want) > 0.5 {
		t.Errorf("traveled %v, want ~%v", p.Traveled(), want)
	}
}

func TestAroundSingleObstacle(t *testing.T) {
	// Square obstacle directly between start and target.
	f := field.MustNew(geom.R(0, 0, 200, 100), []geom.Polygon{geom.R(80, 30, 120, 70).Polygon()})
	for _, hand := range []Hand{RightHand, LeftHand} {
		p := New(f, geom.V(10, 50), geom.V(190, 50), WithHand(hand))
		path := run(t, p, 2, 1000)
		if p.Status() != StatusArrived {
			t.Fatalf("hand %v: status = %v at %v", hand, p.Status(), p.Pos())
		}
		// Path must detour: longer than straight-line distance.
		straight := 180.0
		if p.Traveled() < straight {
			t.Errorf("hand %v: traveled %v < straight %v", hand, p.Traveled(), straight)
		}
		// BUG2 bound: D + n*l/2 with one crossing pair of a 160-perimeter
		// obstacle, plus slack for stand-off pivots.
		if p.Traveled() > straight+160+10 {
			t.Errorf("hand %v: traveled %v exceeds BUG2 bound", hand, p.Traveled())
		}
		for _, pt := range path {
			if !f.Free(pt) {
				t.Fatalf("hand %v: path point %v inside obstacle", hand, pt)
			}
		}
	}
}

func TestHandsDivergeAroundObstacle(t *testing.T) {
	// Heading east into the obstacle's west wall: keeping the right hand
	// on the wall means turning left (north), so the right-hand planner
	// rounds the obstacle over the top (y > 70); the left-hand planner
	// goes under it (y < 30).
	f := field.MustNew(geom.R(0, 0, 200, 100), []geom.Polygon{geom.R(80, 30, 120, 70).Polygon()})
	right := New(f, geom.V(10, 50), geom.V(190, 50), WithHand(RightHand))
	left := New(f, geom.V(10, 50), geom.V(190, 50), WithHand(LeftHand))
	var rightAbove, rightBelow, leftAbove, leftBelow bool
	for right.Status() == StatusMoving && right.Traveled() < 1000 {
		right.Advance(2)
		rightAbove = rightAbove || right.Pos().Y > 70
		rightBelow = rightBelow || right.Pos().Y < 30
	}
	for left.Status() == StatusMoving && left.Traveled() < 1000 {
		left.Advance(2)
		leftAbove = leftAbove || left.Pos().Y > 70
		leftBelow = leftBelow || left.Pos().Y < 30
	}
	if !rightAbove || rightBelow {
		t.Errorf("right-hand planner: above=%v below=%v, want above only", rightAbove, rightBelow)
	}
	if !leftBelow || leftAbove {
		t.Errorf("left-hand planner: above=%v below=%v, want below only", leftAbove, leftBelow)
	}
}

func TestFigure2TwoObstacles(t *testing.T) {
	// The paper's Figure 2: a walk to R encounters two obstacles on the
	// reference line and rounds each with the right-hand rule.
	f := field.MustNew(geom.R(0, 0, 300, 100), []geom.Polygon{
		geom.R(60, 20, 100, 80).Polygon(),
		geom.R(160, 10, 220, 60).Polygon(),
	})
	p := New(f, geom.V(10, 50), geom.V(280, 40))
	path := run(t, p, 2, 2000)
	if p.Status() != StatusArrived {
		t.Fatalf("status = %v at %v", p.Status(), p.Pos())
	}
	for _, pt := range path {
		if !f.Free(pt) {
			t.Fatalf("path point %v not free", pt)
		}
	}
}

func TestOverlappingObstaclesUnionBoundary(t *testing.T) {
	// Two overlapping rectangles form an L-shaped union; the planner must
	// switch solids mid-follow.
	f := field.MustNew(geom.R(0, 0, 200, 200), []geom.Polygon{
		geom.R(60, 40, 100, 160).Polygon(),
		geom.R(80, 80, 160, 120).Polygon(),
	})
	p := New(f, geom.V(20, 100), geom.V(190, 100))
	path := run(t, p, 2, 3000)
	if p.Status() != StatusArrived {
		t.Fatalf("status = %v at %v", p.Status(), p.Pos())
	}
	for _, pt := range path {
		if !f.Free(pt) {
			t.Fatalf("path point %v not free", pt)
		}
	}
}

func TestUnreachableTargetInsideObstacle(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 100, 100), []geom.Polygon{geom.R(40, 40, 60, 60).Polygon()})
	p := New(f, geom.V(10, 50), geom.V(50, 50)) // target at obstacle center
	for p.Status() == StatusMoving && p.Traveled() < 5000 {
		p.Advance(2)
	}
	if p.Status() != StatusStuck {
		t.Fatalf("status = %v, want stuck (traveled %v)", p.Status(), p.Traveled())
	}
}

func TestTargetOutsideFieldIsStuck(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 100, 100), nil)
	p := New(f, geom.V(50, 50), geom.V(150, 50))
	for p.Status() == StatusMoving && p.Traveled() < 30000 {
		p.Advance(5)
	}
	if p.Status() != StatusStuck {
		t.Fatalf("status = %v, want stuck", p.Status())
	}
}

func TestStopOnHit(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 200, 100), []geom.Polygon{geom.R(80, 30, 120, 70).Polygon()})
	p := New(f, geom.V(10, 50), geom.V(190, 50), WithStopOnHit())
	for p.Status() == StatusMoving {
		p.Advance(2)
	}
	if p.Status() != StatusHit {
		t.Fatalf("status = %v, want hit", p.Status())
	}
	if p.Pos().X > 81 {
		t.Errorf("stopped at %v, expected just before x=80", p.Pos())
	}
	// Resume converts the planner to full BUG2.
	p.Resume()
	run(t, p, 2, 1000)
	if p.Status() != StatusArrived {
		t.Fatalf("after resume: status = %v", p.Status())
	}
}

func TestResumeIsNoOpWhenMoving(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 100, 100), nil)
	p := New(f, geom.V(10, 10), geom.V(90, 90))
	p.Resume()
	if p.Status() != StatusMoving {
		t.Errorf("status = %v", p.Status())
	}
}

func TestAlreadyAtTarget(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 100, 100), nil)
	p := New(f, geom.V(50, 50), geom.V(50, 50.1))
	if p.Status() != StatusArrived {
		t.Errorf("status = %v, want arrived immediately", p.Status())
	}
	if moved := p.Advance(5); moved != 0 {
		t.Errorf("arrived planner moved %v", moved)
	}
}

func TestAdvanceBudgetRespected(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 1000, 1000), nil)
	p := New(f, geom.V(100, 100), geom.V(900, 900))
	moved := p.Advance(2)
	if math.Abs(moved-2) > 1e-9 {
		t.Errorf("moved %v, want 2", moved)
	}
	if math.Abs(p.Traveled()-2) > 1e-9 {
		t.Errorf("traveled %v", p.Traveled())
	}
}

func TestWallTargetReachableWithinTolerance(t *testing.T) {
	// FLOOR leg 2/3 targets lie on the field boundary (x=0). The planner
	// should arrive within tolerance despite the wall stand-off.
	f := field.MustNew(geom.R(0, 0, 100, 100), nil)
	p := New(f, geom.V(50, 40), geom.V(0, 40), WithArriveTolerance(0.5))
	run(t, p, 2, 500)
	if p.Status() != StatusArrived {
		t.Fatalf("status = %v at %v", p.Status(), p.Pos())
	}
	if p.Pos().Dist(geom.V(0, 40)) > 0.5 {
		t.Errorf("arrived at %v, too far from wall target", p.Pos())
	}
}

func TestCornerTargetReachable(t *testing.T) {
	// The base station sits at the field corner (0,0); both frames meet
	// there.
	f := field.MustNew(geom.R(0, 0, 100, 100), nil)
	p := New(f, geom.V(80, 30), geom.V(0, 0), WithArriveTolerance(0.5))
	run(t, p, 2, 500)
	if p.Status() != StatusArrived {
		t.Fatalf("status = %v at %v", p.Status(), p.Pos())
	}
}

// Property: on random connected fields with free start/target, BUG2 arrives
// and never leaves free space.
func TestRandomFieldsAlwaysArrive(t *testing.T) {
	rng := rand.New(rand.NewPCG(2024, 6))
	for trial := 0; trial < 25; trial++ {
		f, err := field.RandomObstacles(rng, field.DefaultRandomObstacleConfig())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		start := f.RandomFreePoint(rng, f.Bounds())
		target := f.RandomFreePoint(rng, f.Bounds())
		// Keep both a little away from walls so the trial is fair.
		if f.Clearance(start, 5) < 1 || f.Clearance(target, 5) < 1 {
			continue
		}
		p := New(f, start, target, WithArriveTolerance(0.5))
		for p.Status() == StatusMoving && p.Traveled() < 50000 {
			p.Advance(10)
			if pos := p.Pos(); !f.Free(pos) {
				t.Fatalf("trial %d: position %v not free (start %v target %v)",
					trial, pos, start, target)
			}
		}
		if p.Status() != StatusArrived {
			t.Fatalf("trial %d: status %v after %.0f m (start %v target %v pos %v)",
				trial, p.Status(), p.Traveled(), start, target, p.Pos())
		}
	}
}

// Property: path length never exceeds the BUG2 bound D + sum(perimeters),
// loosely.
func TestPathLengthBound(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 4))
	for trial := 0; trial < 15; trial++ {
		f, err := field.RandomObstacles(rng, field.DefaultRandomObstacleConfig())
		if err != nil {
			t.Fatal(err)
		}
		var perims float64
		for i := 0; i < f.NumSolids(); i++ {
			perims += f.Solid(i).Perimeter()
		}
		start := f.RandomFreePoint(rng, f.Bounds())
		target := f.RandomFreePoint(rng, f.Bounds())
		if f.Clearance(start, 5) < 1 || f.Clearance(target, 5) < 1 {
			continue
		}
		p := New(f, start, target, WithArriveTolerance(0.5))
		bound := start.Dist(target) + 2*perims
		for p.Status() == StatusMoving && p.Traveled() <= bound {
			p.Advance(10)
		}
		if p.Status() == StatusMoving {
			t.Fatalf("trial %d: exceeded bound %v", trial, bound)
		}
	}
}

func TestStatusString(t *testing.T) {
	tests := []struct {
		s    Status
		want string
	}{
		{StatusMoving, "moving"},
		{StatusArrived, "arrived"},
		{StatusHit, "hit"},
		{StatusStuck, "stuck"},
		{Status(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.s, got, tt.want)
		}
	}
}
