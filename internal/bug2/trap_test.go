package bug2

import (
	"testing"

	"mobisense/internal/field"
	"mobisense/internal/geom"
)

// TestConcaveTrapEscape drives the planner into a C-shaped pocket opening
// away from the target; BUG2 must wall-follow out of the pocket and around
// the obstacle.
func TestConcaveTrapEscape(t *testing.T) {
	// C-shape opening west, target to the east behind it.
	c := geom.Polygon{
		geom.V(100, 40), geom.V(160, 40), geom.V(160, 160), geom.V(100, 160),
		geom.V(100, 140), geom.V(140, 140), geom.V(140, 60), geom.V(100, 60),
	}
	f := field.MustNew(geom.R(0, 0, 300, 200), []geom.Polygon{c})
	// Start inside the pocket.
	p := New(f, geom.V(120, 100), geom.V(280, 100), WithArriveTolerance(0.5))
	path := run(t, p, 2, 3000)
	if p.Status() != StatusArrived {
		t.Fatalf("status = %v at %v", p.Status(), p.Pos())
	}
	for _, pt := range path {
		if !f.Free(pt) {
			t.Fatalf("path point %v not free", pt)
		}
	}
}

// TestDeadEndCorridor: a corridor with a closed end; the target is outside
// the corridor so the planner must back out around the walls.
func TestDeadEndCorridor(t *testing.T) {
	walls := []geom.Polygon{
		geom.R(80, 140, 220, 150).Polygon(), // north wall
		geom.R(80, 50, 220, 60).Polygon(),   // south wall
		geom.R(210, 60, 220, 140).Polygon(), // closed east end; open to the west
	}
	f := field.MustNew(geom.R(0, 0, 300, 200), walls,
		field.WithValidationResolution(2))
	// Start inside the corridor, target north of it.
	p := New(f, geom.V(150, 100), geom.V(150, 180), WithArriveTolerance(0.5))
	for p.Status() == StatusMoving && p.Traveled() < 5000 {
		p.Advance(2)
		if !f.Free(p.Pos()) {
			t.Fatalf("position %v not free", p.Pos())
		}
	}
	if p.Status() != StatusArrived {
		t.Fatalf("status = %v at %v", p.Status(), p.Pos())
	}
}
