// Package calib holds the paper-scale integration tests: full 240-sensor
// runs on the 1000×1000 m field checking the qualitative relationships
// the paper's evaluation reports. These are the slowest tests in the
// module (a few seconds in total); `go test -short` skips them.
package calib

import (
	"testing"
	"time"

	"mobisense/internal/core"
	"mobisense/internal/coverage"
	"mobisense/internal/cpvf"
	"mobisense/internal/field"
	"mobisense/internal/floor"
)

type outcome struct {
	cov       float64
	dist      float64
	connected bool
	msgs      int64
}

func run(t *testing.T, name string, f *field.Field, p core.Params, s core.Scheme) outcome {
	t.Helper()
	start := time.Now()
	w, err := core.NewWorld(f, p)
	if err != nil {
		t.Fatal(err)
	}
	s.Attach(w)
	w.E.RunUntil(p.Duration)
	est := coverage.NewEstimator(f, 5)
	o := outcome{
		cov:       est.Fraction(w.Layout(), p.Rs),
		dist:      w.AvgTraveled(),
		connected: core.AllConnected(w.Layout(), w.F.Reference(), p.Rc),
		msgs:      w.Msg.Total(),
	}
	t.Logf("%-16s cov=%.3f dist=%.1f conn=%v msgs=%dk wall=%v",
		name, o.cov, o.dist, o.connected, o.msgs/1000, time.Since(start).Round(time.Millisecond))
	return o
}

// TestPaperScaleQualitativeClaims runs the canonical scenarios of Figures
// 3 and 8 at full paper scale and asserts the relationships the paper
// reports (the per-scenario numeric record is in EXPERIMENTS.md).
func TestPaperScaleQualitativeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale integration test")
	}
	p := core.DefaultParams()
	p30 := p
	p30.Rc = 30

	cpvf60 := run(t, "CPVF rc60", field.ObstacleFree(), p, cpvf.New(cpvf.DefaultConfig()))
	floor60 := run(t, "FLOOR rc60", field.ObstacleFree(), p, floor.New(floor.DefaultConfig()))
	cpvf30 := run(t, "CPVF rc30", field.ObstacleFree(), p30, cpvf.New(cpvf.DefaultConfig()))
	floor30 := run(t, "FLOOR rc30", field.ObstacleFree(), p30, floor.New(floor.DefaultConfig()))
	cpvfObs := run(t, "CPVF two-obs", field.TwoObstacles(), p, cpvf.New(cpvf.DefaultConfig()))
	floorObs := run(t, "FLOOR two-obs", field.TwoObstacles(), p, floor.New(floor.DefaultConfig()))

	// Fig 3: small rc collapses CPVF's coverage; obstacles hurt it badly.
	if cpvf30.cov > 0.6*cpvf60.cov {
		t.Errorf("CPVF rc=30 coverage %.3f should be well below rc=60's %.3f", cpvf30.cov, cpvf60.cov)
	}
	if cpvfObs.cov >= cpvf60.cov {
		t.Errorf("obstacles should reduce CPVF coverage: %.3f vs %.3f", cpvfObs.cov, cpvf60.cov)
	}
	// Fig 8 vs Fig 3: FLOOR dominates CPVF at small rc and with obstacles.
	if floor30.cov < 1.4*cpvf30.cov {
		t.Errorf("FLOOR rc=30 %.3f should dominate CPVF %.3f", floor30.cov, cpvf30.cov)
	}
	if floorObs.cov < 1.2*cpvfObs.cov {
		t.Errorf("FLOOR two-obs %.3f should dominate CPVF %.3f", floorObs.cov, cpvfObs.cov)
	}
	// The connectivity guarantee holds wherever the pipeline converges
	// within the horizon (EXPERIMENTS.md documents the D4 horizon effect
	// for FLOOR's rc=30 and obstacle scenarios).
	for name, o := range map[string]outcome{
		"cpvf60": cpvf60, "cpvf30": cpvf30, "cpvfObs": cpvfObs, "floor60": floor60,
	} {
		if !o.connected {
			t.Errorf("%s: final network disconnected", name)
		}
	}
	// Message overhead stays within the paper's order of magnitude.
	for name, o := range map[string]outcome{"floor60": floor60, "floor30": floor30} {
		if o.msgs > 3_000_000 {
			t.Errorf("%s: %d messages beyond the paper's order of magnitude", name, o.msgs)
		}
	}
}
