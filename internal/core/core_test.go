package core

import (
	"math"
	"testing"

	"mobisense/internal/field"
	"mobisense/internal/geom"
)

func testParams() Params {
	p := DefaultParams()
	p.N = 20
	p.InitRegion = geom.R(0, 0, 100, 100)
	return p
}

func testWorld(t *testing.T) *World {
	t.Helper()
	f := field.MustNew(geom.R(0, 0, 200, 200), nil)
	w, err := NewWorld(f, testParams())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.N = 0 },
		func(p *Params) { p.Rc = 0 },
		func(p *Params) { p.Rs = -1 },
		func(p *Params) { p.Speed = 0 },
		func(p *Params) { p.Period = 0 },
		func(p *Params) { p.Duration = -1 },
		func(p *Params) { p.PhaseJitter = 1 },
		func(p *Params) { p.CoverageRes = 0 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestNewWorldPlacement(t *testing.T) {
	w := testWorld(t)
	for i := range w.Sensors {
		pos := w.PosAt(i, 0)
		if !w.P.InitRegion.Contains(pos) {
			t.Errorf("sensor %d at %v outside init region", i, pos)
		}
		if !w.F.Free(pos) {
			t.Errorf("sensor %d placed in obstacle", i)
		}
	}
}

func TestWorldDeterminism(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 200, 200), nil)
	w1, _ := NewWorld(f, testParams())
	w2, _ := NewWorld(f, testParams())
	for i := range w1.Sensors {
		if !w1.PosAt(i, 0).Eq(w2.PosAt(i, 0)) {
			t.Fatal("same seed produced different initial layouts")
		}
	}
}

func TestSensorPosInterpolation(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 200, 200), nil)
	p := testParams()
	p.N = 1
	w, err := NewWorld(f, p)
	if err != nil {
		t.Fatal(err)
	}
	// Install a step record directly: 0 moves (0,0)→(10,0) over [5, 10].
	w.stepFrom[0] = geom.V(0, 0)
	w.stepTo[0] = geom.V(10, 0)
	w.stepT0[0] = 5
	w.stepT1[0] = 10
	tests := []struct {
		t    float64
		want geom.Vec
	}{
		{0, geom.V(0, 0)},
		{5, geom.V(0, 0)},
		{7.5, geom.V(5, 0)},
		{10, geom.V(10, 0)},
		{99, geom.V(10, 0)},
	}
	for _, tt := range tests {
		if got := w.PosAt(0, tt.t); !got.Eq(tt.want) {
			t.Errorf("PosAt(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
	if !w.Moving(0, 7) || w.Moving(0, 4) || w.Moving(0, 10) {
		t.Error("Moving window incorrect")
	}
}

func TestBeginStepAccounting(t *testing.T) {
	w := testWorld(t)
	start := w.Pos(0)
	to := start.Add(geom.V(1.5, 0))
	w.BeginStep(0, to, 1.5, 1)
	if w.Sensors[0].Traveled != 1.5 {
		t.Errorf("traveled = %v", w.Sensors[0].Traveled)
	}
	if w.LastMoveTime() != 1 {
		t.Errorf("last move time = %v", w.LastMoveTime())
	}
	// Mid-step interpolation.
	mid := w.PosAt(0, 0.5)
	if !mid.Eq(start.Add(geom.V(0.75, 0))) {
		t.Errorf("mid = %v", mid)
	}
}

func TestBeginStepSpeedLimitPanics(t *testing.T) {
	w := testWorld(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for over-speed step")
		}
	}()
	w.BeginStep(0, w.Pos(0).Add(geom.V(10, 0)), 10, 1) // 10 m in 1 s at V=2
}

func TestNeighborsExactRadius(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 200, 200), nil)
	p := testParams()
	p.N = 3
	w, err := NewWorld(f, p)
	if err != nil {
		t.Fatal(err)
	}
	// Force positions.
	w.Teleport(0, geom.V(50, 50))
	w.Teleport(1, geom.V(50, 80))
	w.Teleport(2, geom.V(150, 150))

	got := w.Neighbors(0, 40)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("Neighbors = %v, want [1]", got)
	}
	got = w.Neighbors(0, 20)
	if len(got) != 0 {
		t.Errorf("Neighbors = %v, want none", got)
	}
}

func TestNeighborsSeeMovingSensors(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 200, 200), nil)
	p := testParams()
	p.N = 2
	w, err := NewWorld(f, p)
	if err != nil {
		t.Fatal(err)
	}
	w.Teleport(0, geom.V(50, 50))
	// Sensor 1 starts outside radius 30 of sensor 0 and walks in.
	w.Teleport(1, geom.V(90, 50))
	w.BeginStep(1, geom.V(88, 50), 2, 1)
	w.E.RunUntil(1)
	w.BeginStep(1, geom.V(86, 50), 2, 1)
	w.E.RunUntil(1.75)
	// At t=1.75, sensor 1 is at 86.5: within 40 of 50? dist=36.5 <= 37.
	got := w.Neighbors(0, 37)
	if len(got) != 1 {
		t.Errorf("moving neighbor not seen: %v (pos %v)", got, w.Pos(1))
	}
}

func TestPeriodStart(t *testing.T) {
	w := testWorld(t)
	w.Sensors[0].Phase = 0.25
	tests := []struct {
		t, want float64
	}{
		{0, 0.25},
		{0.25, 0.25},
		{0.26, 1.25},
		{1.25, 1.25},
		{10.5, 11.25},
	}
	for _, tt := range tests {
		if got := w.PeriodStart(0, tt.t); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("PeriodStart(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestMsgStats(t *testing.T) {
	var m MsgStats
	m.Count(MsgFlood, 3)
	m.Count(MsgInvite, 2)
	m.Count(MsgInvite, 1)
	m.Count(MsgKind(0), 5)  // invalid kind ignored
	m.Count(numMsgKinds, 5) // invalid kind ignored
	m.Count(MsgAck, -1)     // negative ignored
	if m.Total() != 6 {
		t.Errorf("total = %d", m.Total())
	}
	if m.Of(MsgInvite) != 3 {
		t.Errorf("invites = %d", m.Of(MsgInvite))
	}
	by := m.ByKind()
	if by["flood"] != 3 || by["invite"] != 3 || len(by) != 2 {
		t.Errorf("by kind = %v", by)
	}
}

func TestMsgKindStrings(t *testing.T) {
	kinds := []MsgKind{MsgFlood, MsgBeacon, MsgTreeCtl, MsgPathInquiry, MsgReport,
		MsgQuery, MsgInvite, MsgAccept, MsgAck, MsgUpdate}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Errorf("kind %d has bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if MsgKind(0).String() != "unknown" {
		t.Error("zero kind should be unknown")
	}
}

func TestTreeBasics(t *testing.T) {
	tr := NewTree(5)
	if !tr.SetParent(0, BaseParent) {
		t.Fatal("SetParent to base failed")
	}
	if !tr.SetParent(1, 0) || !tr.SetParent(2, 0) || !tr.SetParent(3, 1) {
		t.Fatal("SetParent failed")
	}
	if tr.Parent(3) != 1 || tr.Parent(0) != BaseParent || tr.Parent(4) != NoParent {
		t.Error("parents wrong")
	}
	if !tr.InTree(3) || tr.InTree(4) {
		t.Error("InTree wrong")
	}
	if d := tr.Depth(3); d != 3 {
		t.Errorf("depth = %d, want 3", d)
	}
	if d := tr.Depth(4); d != -1 {
		t.Errorf("detached depth = %d", d)
	}
	anc := tr.Ancestors(3)
	if len(anc) != 2 || anc[0] != 1 || anc[1] != 0 {
		t.Errorf("ancestors = %v", anc)
	}
	sub := tr.Subtree(0)
	if len(sub) != 4 {
		t.Errorf("subtree = %v", sub)
	}
}

func TestTreeLoopRejection(t *testing.T) {
	tr := NewTree(4)
	tr.SetParent(0, BaseParent)
	tr.SetParent(1, 0)
	tr.SetParent(2, 1)
	if tr.SetParent(0, 2) {
		t.Error("creating a cycle should fail")
	}
	if tr.SetParent(1, 1) {
		t.Error("self-parent should fail")
	}
	// Legal re-parent.
	if !tr.SetParent(2, 0) {
		t.Error("legal reparent failed")
	}
	if tr.Parent(2) != 0 {
		t.Error("reparent not applied")
	}
	// Old parent's children list updated.
	for _, c := range tr.Children(1) {
		if c == 2 {
			t.Error("stale child entry")
		}
	}
}

func TestTreeDetach(t *testing.T) {
	tr := NewTree(3)
	tr.SetParent(0, BaseParent)
	tr.SetParent(1, 0)
	tr.SetParent(2, 1)
	tr.Detach(1)
	if tr.Parent(1) != NoParent {
		t.Error("detach failed")
	}
	if tr.InTree(2) {
		t.Error("descendant of detached node should not be in tree")
	}
	if len(tr.Children(0)) != 0 {
		t.Error("children list not updated")
	}
}

func TestTreeDist(t *testing.T) {
	tr := NewTree(6)
	tr.SetParent(0, BaseParent)
	tr.SetParent(1, 0)
	tr.SetParent(2, 0)
	tr.SetParent(3, 1)
	tr.SetParent(4, 2)
	tests := []struct {
		a, b, want int
	}{
		{3, 4, 4}, // 3-1-0-2-4
		{1, 2, 2},
		{0, 3, 2},
		{3, 3, 0},
		{5, 0, -1}, // 5 detached
	}
	for _, tt := range tests {
		if got := tr.TreeDist(tt.a, tt.b); got != tt.want {
			t.Errorf("TreeDist(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestUnitDiskReachable(t *testing.T) {
	base := geom.V(0, 0)
	positions := []geom.Vec{
		geom.V(5, 0),  // adjacent to base
		geom.V(12, 0), // via 0
		geom.V(50, 0), // isolated
	}
	got := UnitDiskReachable(positions, base, 10)
	want := []bool{true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("reachable[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if AllConnected(positions, base, 10) {
		t.Error("AllConnected should be false")
	}
	if !AllConnected(positions[:2], base, 10) {
		t.Error("AllConnected should be true for first two")
	}
	if len(UnitDiskReachable(nil, base, 10)) != 0 {
		t.Error("empty input should return empty mask")
	}
}

func TestFloodFromBase(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 200, 200), nil)
	p := testParams()
	p.N = 4
	w, err := NewWorld(f, p)
	if err != nil {
		t.Fatal(err)
	}
	// Chain: base (0,0) - s0 (30,0) - s1 (60,0) - s2 (90,0); s3 far away.
	coords := []geom.Vec{geom.V(30, 0), geom.V(60, 0), geom.V(90, 0), geom.V(190, 190)}
	for i, c := range coords {
		w.Teleport(i, c)
	}
	w.FloodFromBase(40)
	for i := 0; i < 3; i++ {
		if !w.Sensors[i].Connected {
			t.Errorf("sensor %d should be connected", i)
		}
		if !w.Tree.InTree(i) {
			t.Errorf("sensor %d should be in tree", i)
		}
	}
	if w.Sensors[3].Connected {
		t.Error("sensor 3 should be disconnected")
	}
	// Base + 3 reached sensors broadcast once each.
	if got := w.Msg.Of(MsgFlood); got != 4 {
		t.Errorf("flood messages = %d, want 4", got)
	}
	if w.ConnectedCount() != 3 {
		t.Errorf("connected = %d", w.ConnectedCount())
	}
}

func TestRouteWalkerLegs(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 100, 100), nil)
	legs := []Leg{
		{Target: geom.V(50, 10)},
		{Target: geom.V(50, 50)},
	}
	wk := NewRouteWalker(f, geom.V(10, 10), legs, 1)
	total := 0.0
	for !wk.Arrived() && !wk.Stuck() && total < 500 {
		total += wk.Advance(2)
	}
	if !wk.Arrived() {
		t.Fatalf("walker did not arrive (pos %v)", wk.Pos())
	}
	if wk.Pos().Dist(geom.V(50, 50)) > 1 {
		t.Errorf("final pos = %v", wk.Pos())
	}
	// Route length ≈ 40 + 40 with 0.5 m arrival tolerances.
	if total < 75 || total > 85 {
		t.Errorf("total moved = %v, want ~80", total)
	}
}

func TestRouteWalkerStopOnHitLegAdvances(t *testing.T) {
	// Leg 1 ends at the wall (stop-on-hit); leg 2 proceeds from there.
	f := field.MustNew(geom.R(0, 0, 200, 100), []geom.Polygon{geom.R(80, 0, 120, 60).Polygon()})
	legs := []Leg{
		{Target: geom.V(190, 30), StopOnHit: true}, // blocked by the slab
		{Target: geom.V(10, 90)},                   // back to the open corner
	}
	wk := NewRouteWalker(f, geom.V(10, 30), legs, 1)
	total := 0.0
	for !wk.Arrived() && !wk.Stuck() && total < 1000 {
		total += wk.Advance(2)
	}
	if !wk.Arrived() {
		t.Fatalf("walker stuck at %v", wk.Pos())
	}
	if wk.Pos().Dist(geom.V(10, 90)) > 1 {
		t.Errorf("final pos = %v", wk.Pos())
	}
}

func TestRouteWalkerEmptyLegs(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 100, 100), nil)
	wk := NewRouteWalker(f, geom.V(5, 5), nil, 1)
	wk.Advance(2)
	if !wk.Arrived() {
		t.Error("empty-route walker should immediately arrive")
	}
}

func TestLazyCoordinatorJoinsBase(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 200, 200), nil)
	p := testParams()
	p.N = 1
	w, err := NewWorld(f, p)
	if err != nil {
		t.Fatal(err)
	}
	w.Teleport(0, geom.V(100, 0))
	walkers := []Walker{NewDirectWalker(f, geom.V(100, 0), f.Reference())}
	lc := NewLazyCoordinator(w, walkers, LazyConfig{ConnectRadius: p.Rc})

	var res LazyResult
	for i := 0; i < 100; i++ {
		res = lc.Step(0)
		if res.Outcome != LazyMoved {
			break
		}
		w.E.RunUntil(w.Now() + p.Period)
	}
	if res.Outcome != LazyJoinedBase {
		t.Fatalf("outcome = %v, want LazyJoinedBase", res.Outcome)
	}
	// Started 100 m out, connect radius 60: roughly 40 m of travel.
	if tr := w.Sensors[0].Traveled; tr < 35 || tr > 45 {
		t.Errorf("traveled = %v, want ~40", tr)
	}
}

func TestLazyCoordinatorWaitsOnPathParent(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 400, 400), nil)
	p := testParams()
	p.N = 2
	p.Rc = 60
	w, err := NewWorld(f, p)
	if err != nil {
		t.Fatal(err)
	}
	// Sensor 1 is ahead of sensor 0 on the way to the base.
	w.Teleport(0, geom.V(300, 0))
	w.Teleport(1, geom.V(260, 0))
	walkers := []Walker{
		NewDirectWalker(f, geom.V(300, 0), f.Reference()),
		NewDirectWalker(f, geom.V(260, 0), f.Reference()),
	}
	lc := NewLazyCoordinator(w, walkers, LazyConfig{ConnectRadius: p.Rc})
	res := lc.Step(0)
	if res.Outcome != LazyWaiting {
		t.Fatalf("outcome = %v, want LazyWaiting", res.Outcome)
	}
	if lc.PathParent(0) != 1 {
		t.Errorf("path parent = %d, want 1", lc.PathParent(0))
	}
	// Sensor 1 sees no one ahead, so it moves.
	res = lc.Step(1)
	if res.Outcome != LazyMoved {
		t.Fatalf("sensor 1 outcome = %v, want LazyMoved", res.Outcome)
	}
	// And sensor 1 cannot adopt sensor 0 (which waits on it) even if 0
	// were ahead; here 0 is behind anyway.
	if lc.PathParent(1) != NoParent {
		t.Errorf("sensor 1 path parent = %d", lc.PathParent(1))
	}
}

func TestLazyCoordinatorDirectMutualWaitPrevented(t *testing.T) {
	// §3.3: "A sensor can take a neighbor as a real path parent, only when
	// that neighbor is not adopting the sensor itself as a path parent."
	// Construct two sensors each seeing the other as ahead; the second one
	// to decide must move instead of waiting.
	f := field.MustNew(geom.R(0, 0, 400, 400), nil)
	p := testParams()
	p.N = 2
	w, err := NewWorld(f, p)
	if err != nil {
		t.Fatal(err)
	}
	a, b := geom.V(300, 300), geom.V(320, 320)
	w.Teleport(0, a)
	w.Teleport(1, b)
	// Each walker targets a point beyond the other sensor.
	walkers := []Walker{
		NewDirectWalker(f, a, geom.V(390, 390)),
		NewDirectWalker(f, b, geom.V(5, 5)),
	}
	lc := NewLazyCoordinator(w, walkers, LazyConfig{ConnectRadius: 10})
	if res := lc.Step(0); res.Outcome != LazyWaiting {
		t.Fatalf("sensor 0 outcome = %v, want LazyWaiting", res.Outcome)
	}
	if res := lc.Step(1); res.Outcome != LazyMoved {
		t.Fatalf("sensor 1 outcome = %v, want LazyMoved (direct cycle prevented)", res.Outcome)
	}
}

func TestLazyCoordinatorBreaksIndirectLoop(t *testing.T) {
	// An indirect waiting loop 0→1→2→0 must be detected by the
	// PathParentInquiry probe and broken (§3.3).
	f := field.MustNew(geom.R(0, 0, 500, 500), nil)
	p := testParams()
	p.N = 3
	p.Rc = 60
	w, err := NewWorld(f, p)
	if err != nil {
		t.Fatal(err)
	}
	w.Teleport(0, geom.V(300, 300))
	w.Teleport(1, geom.V(340, 300)) // ahead of 0 toward (400,300)
	w.Teleport(2, geom.V(300, 340)) // not ahead of 0
	walkers := []Walker{
		NewDirectWalker(f, geom.V(300, 300), geom.V(400, 300)),
		NewDirectWalker(f, geom.V(340, 300), geom.V(400, 300)),
		NewDirectWalker(f, geom.V(300, 340), geom.V(400, 300)),
	}
	lc := NewLazyCoordinator(w, walkers, LazyConfig{ConnectRadius: 10, LoopCheckAfter: 1})
	// Seed the rest of the loop: 1 waits on 2, 2 waits on 0.
	lc.SetPathParentForTest(1, 2)
	lc.SetPathParentForTest(2, 0)

	res := lc.Step(0)
	if res.Outcome != LazyWaiting {
		t.Fatalf("outcome = %v, want LazyWaiting on first step", res.Outcome)
	}
	if w.Msg.Of(MsgPathInquiry) == 0 {
		t.Fatal("no PathParentInquiry messages were sent")
	}
	// The loop was detected, so the path parent was disregarded; the next
	// step must move (sensor 1 is rejected, sensor 2 is not ahead).
	w.E.RunUntil(w.Now() + p.Period)
	if res := lc.Step(0); res.Outcome != LazyMoved {
		t.Fatalf("outcome after loop break = %v, want LazyMoved", res.Outcome)
	}
}

func TestLayoutAndAvgTraveled(t *testing.T) {
	w := testWorld(t)
	layout := w.Layout()
	if len(layout) != w.P.N {
		t.Fatalf("layout size = %d", len(layout))
	}
	if w.AvgTraveled() != 0 {
		t.Error("initial traveled should be 0")
	}
	w.BeginStep(0, w.Pos(0).Add(geom.V(2, 0)), 2, 1)
	if got := w.AvgTraveled(); math.Abs(got-2.0/float64(w.P.N)) > 1e-12 {
		t.Errorf("avg traveled = %v", got)
	}
}
