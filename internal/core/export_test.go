package core

// SetPathParentForTest seeds the lazy-movement path-parent chain so tests
// can construct indirect waiting loops deterministically.
func (lc *LazyCoordinator) SetPathParentForTest(id, parent int) {
	lc.pathParent[id] = parent
}
