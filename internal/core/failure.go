package core

import (
	"math/rand/v2"

	"mobisense/internal/geom"
)

// Sensor failure support — the paper's §7 names failure recovery as the
// next step for these schemes ("extend these schemes from deployment
// through to the whole life cycle ... including tasks such as failure
// recovery"); the world model therefore supports killing sensors, and
// FLOOR implements a repair path on top of it.

// Kill marks sensor id as failed: it stops where it is, leaves the
// connectivity tree (its children become detached roots until a scheme
// re-homes them), and disappears from the radio neighborhood. Killing an
// already-dead sensor is a no-op. It returns the sensor's former children.
func (w *World) Kill(id int) []int {
	s := &w.Sensors[id]
	if s.Failed {
		return nil
	}
	now := w.Now()
	pos := w.PosAt(id, now)
	w.stepFrom[id], w.stepTo[id] = pos, pos
	w.stepT0[id], w.stepT1[id] = now, now
	w.moveEpoch[id]++
	s.Failed = true
	s.Connected = false

	orphans := append([]int(nil), w.Tree.Children(id)...)
	for _, c := range orphans {
		w.Tree.Detach(c)
	}
	w.Tree.Detach(id)
	w.idx.Remove(id)
	return orphans
}

// Alive reports whether sensor id has not failed.
func (w *World) Alive(id int) bool { return !w.Sensors[id].Failed }

// AliveCount returns the number of non-failed sensors.
func (w *World) AliveCount() int {
	n := 0
	for i := range w.Sensors {
		if !w.Sensors[i].Failed {
			n++
		}
	}
	return n
}

// AliveLayout returns the positions of the non-failed sensors.
func (w *World) AliveLayout() []geom.Vec {
	out := make([]geom.Vec, 0, len(w.Sensors))
	now := w.Now()
	for i := range w.Sensors {
		if !w.Sensors[i].Failed {
			out = append(out, w.PosAt(i, now))
		}
	}
	return out
}

// PhysicallyStranded returns the alive sensors that are flagged Connected
// but no longer unit-disk reachable from the base station at the given
// radius. A mid-chain death can break physical connectivity without
// orphaning anyone in the tree; the base station notices the lost
// heartbeats and the scheme sends the strays back to re-join.
func (w *World) PhysicallyStranded(radius float64) []int {
	positions := make([]geom.Vec, 0, len(w.Sensors))
	ids := make([]int, 0, len(w.Sensors))
	now := w.Now()
	for i := range w.Sensors {
		if !w.Sensors[i].Failed {
			positions = append(positions, w.PosAt(i, now))
			ids = append(ids, i)
		}
	}
	reach := UnitDiskReachable(positions, w.F.Reference(), radius)
	var out []int
	for k, ok := range reach {
		if !ok && w.Sensors[ids[k]].Connected {
			out = append(out, ids[k])
		}
	}
	return out
}

// FailureInjector kills a random alive sensor at a fixed interval,
// modeling attritional sensor death during deployment. Attach it after the
// scheme so the scheme's recovery hooks observe the failures.
type FailureInjector struct {
	// Interval between kills, in seconds.
	Interval float64
	// MaxKills bounds the total number of failures (0 = unbounded).
	MaxKills int
	// OnKill, if set, is invoked after each kill with the victim and its
	// orphaned children (schemes register their repair handler here).
	OnKill func(victim int, orphans []int)

	killed int
}

// Attach schedules the injector's periodic kills on the world.
func (fi *FailureInjector) Attach(w *World) {
	if fi.Interval <= 0 {
		fi.Interval = 50
	}
	var tick func()
	tick = func() {
		if fi.MaxKills > 0 && fi.killed >= fi.MaxKills {
			return
		}
		if victim, ok := fi.pickVictim(w, w.E.Rand()); ok {
			orphans := w.Kill(victim)
			fi.killed++
			if fi.OnKill != nil {
				fi.OnKill(victim, orphans)
			}
		}
		if w.Now() < w.P.Duration {
			w.E.Schedule(fi.Interval, tick)
		}
	}
	w.E.Schedule(fi.Interval, tick)
}

// Killed returns how many sensors the injector has killed so far.
func (fi *FailureInjector) Killed() int { return fi.killed }

func (fi *FailureInjector) pickVictim(w *World, rng *rand.Rand) (int, bool) {
	alive := make([]int, 0, len(w.Sensors))
	for i := range w.Sensors {
		if !w.Sensors[i].Failed {
			alive = append(alive, i)
		}
	}
	if len(alive) == 0 {
		return 0, false
	}
	return alive[rng.IntN(len(alive))], true
}
