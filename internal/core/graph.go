package core

import (
	"mobisense/internal/geom"
	"mobisense/internal/spatial"
)

// UnitDiskReachable computes which positions are connected to base through
// the unit-disk graph of the given radius: two nodes are adjacent when
// within radius of each other, and a node is adjacent to the base when
// within radius of it. It returns a reachability mask.
//
// This is the ground-truth connectivity used for the flood of §4.1, for
// verifying the schemes' connectivity guarantee, and for the "Disconn."
// labels of Figure 10.
func UnitDiskReachable(positions []geom.Vec, base geom.Vec, radius float64) []bool {
	n := len(positions)
	reached := make([]bool, n)
	if n == 0 {
		return reached
	}
	idx := spatial.NewBounded(radius, boundsOf(positions), n)
	defer idx.Release()
	for i, p := range positions {
		idx.Insert(i, p)
	}
	queue := make([]int, 0, n)
	for i, p := range positions {
		if p.WithinDist(base, radius) {
			reached[i] = true
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		cur := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		idx.ForNeighbors(positions[cur], radius, func(j int, _ geom.Vec) {
			if !reached[j] {
				reached[j] = true
				queue = append(queue, j)
			}
		})
	}
	return reached
}

// boundsOf returns the bounding rectangle of the given points.
func boundsOf(pts []geom.Vec) geom.Rect {
	b := geom.Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		if p.X < b.Min.X {
			b.Min.X = p.X
		}
		if p.Y < b.Min.Y {
			b.Min.Y = p.Y
		}
		if p.X > b.Max.X {
			b.Max.X = p.X
		}
		if p.Y > b.Max.Y {
			b.Max.Y = p.Y
		}
	}
	return b
}

// AllConnected reports whether every position is unit-disk reachable from
// the base.
func AllConnected(positions []geom.Vec, base geom.Vec, radius float64) bool {
	for _, ok := range UnitDiskReachable(positions, base, radius) {
		if !ok {
			return false
		}
	}
	return true
}

// FloodFromBase runs the connectivity flood of §4.1 at the current time:
// sensors within the radius of the base learn they are connected and
// rebroadcast; every sensor the flood reaches is marked Connected and
// attached to the tree through the neighbor it first heard from (BFS
// parent), giving an initial shortest-hop tree. One MsgFlood transmission
// is counted per node that broadcasts (each sends once). The traversal
// runs on scratch buffers held by the world, so repeated floods allocate
// nothing.
func (w *World) FloodFromBase(radius float64) {
	n := len(w.Sensors)
	now := w.Now()
	positions := resize(w.floodPos, n)
	w.floodPos = positions
	for i := range w.Sensors {
		positions[i] = w.PosAt(i, now)
	}
	idx := spatial.NewBounded(radius, w.F.Bounds(), n)
	defer idx.Release()
	for i, p := range positions {
		idx.Insert(i, p)
	}
	visited := resize(w.floodVisited, n)
	w.floodVisited = visited
	clear(visited)
	queue := w.floodQueue[:0]
	w.Msg.Count(MsgFlood, 1) // base station's initial broadcast
	for i, p := range positions {
		if p.WithinDist(w.F.Reference(), radius) {
			visited[i] = true
			w.Sensors[i].Connected = true
			w.Tree.SetParent(i, BaseParent)
			queue = append(queue, i)
		}
	}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		w.Msg.Count(MsgFlood, 1) // cur rebroadcasts once
		idx.ForNeighbors(positions[cur], radius, func(j int, _ geom.Vec) {
			if visited[j] {
				return
			}
			visited[j] = true
			w.Sensors[j].Connected = true
			w.Tree.SetParent(j, cur)
			queue = append(queue, j)
		})
	}
	w.floodQueue = queue
}
