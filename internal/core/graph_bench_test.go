package core

import (
	"math/rand/v2"
	"testing"

	"mobisense/internal/geom"
)

// BenchmarkUnitDiskReachable measures the connectivity flood over a
// 2000-node uniform layout — the ground-truth check every period of every
// run pays.
func BenchmarkUnitDiskReachable(b *testing.B) {
	rng := rand.New(rand.NewPCG(4, 2))
	positions := make([]geom.Vec, 2000)
	for i := range positions {
		positions[i] = geom.V(rng.Float64()*1000, rng.Float64()*1000)
	}
	base := geom.V(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UnitDiskReachable(positions, base, 60)
	}
}
