package core

import (
	"math"

	"mobisense/internal/geom"
)

// LazyOutcome describes what a disconnected sensor did in one period under
// the lazy-movement strategy (§3.3).
type LazyOutcome int

// Lazy movement outcomes.
const (
	// LazyMoved: the sensor advanced along its route.
	LazyMoved LazyOutcome = iota + 1
	// LazyWaiting: the sensor paused, hoping its path parent connects
	// first.
	LazyWaiting
	// LazyJoined: the sensor entered the connect radius of a connected
	// sensor (Parent holds its ID).
	LazyJoined
	// LazyJoinedBase: the sensor entered the connect radius of the base
	// station.
	LazyJoinedBase
	// LazyStuck: the walker cannot complete its route.
	LazyStuck
)

// LazyResult is the outcome of one lazy-movement period.
type LazyResult struct {
	Outcome LazyOutcome
	// Parent is the connected sensor joined when Outcome is LazyJoined.
	Parent int
}

// LazyConfig tunes the lazy-movement strategy.
type LazyConfig struct {
	// ConnectRadius is the distance at which a sensor attaches to a
	// connected node: rc for CPVF, min(rc, 2*rs) for FLOOR (§5.2).
	ConnectRadius float64
	// LoopCheckAfter is how many consecutive waiting periods pass before
	// the sensor starts sending PathParentInquiry loop probes.
	LoopCheckAfter int
	// Disabled turns lazy movement off entirely: every disconnected
	// sensor walks every period (the §3.3 ablation).
	Disabled bool
}

// LazyCoordinator drives the lazy movement of all disconnected sensors:
// pause when a neighbor is ahead on the route, probe for mutual-wait loops
// with PathParentInquiry messages, and resume walking when a loop is found
// (§3.3).
type LazyCoordinator struct {
	w   *World
	cfg LazyConfig

	walkers    []Walker
	pathParent []int
	stalled    []int
	rejected   []map[int]bool
}

// NewLazyCoordinator creates a coordinator for the given per-sensor
// walkers. walkers[i] must start at sensor i's initial position.
func NewLazyCoordinator(w *World, walkers []Walker, cfg LazyConfig) *LazyCoordinator {
	if cfg.LoopCheckAfter <= 0 {
		cfg.LoopCheckAfter = 3
	}
	if cfg.ConnectRadius <= 0 {
		cfg.ConnectRadius = w.P.Rc
	}
	lc := &LazyCoordinator{
		w:          w,
		cfg:        cfg,
		walkers:    walkers,
		pathParent: make([]int, len(walkers)),
		stalled:    make([]int, len(walkers)),
		rejected:   make([]map[int]bool, len(walkers)),
	}
	for i := range lc.pathParent {
		lc.pathParent[i] = NoParent
	}
	return lc
}

// Step performs one period of lazy movement for disconnected sensor id and
// commits the resulting motion (or a stationary period) to the world. The
// caller flags the sensor Connected and updates the tree on LazyJoined /
// LazyJoinedBase.
func (lc *LazyCoordinator) Step(id int) LazyResult {
	w := lc.w
	T := w.P.Period

	// One local broadcast per period to learn neighbor states (§3.1:
	// location is known only through communication).
	w.Msg.Count(MsgBeacon, 1)

	// Already in range of the base station?
	if w.NearBase(id, lc.cfg.ConnectRadius) {
		w.Stay(id, T)
		return LazyResult{Outcome: LazyJoinedBase}
	}

	// In range of a connected sensor? Join the nearest whose committed
	// motion keeps it in range: the new parent only learns about us at its
	// next decision, so the link must survive the remainder of its current
	// step (Appendix A's conditions, applied to the join).
	joined := NoParent
	best := math.Inf(1)
	pos := w.Pos(id)
	now := w.Now()
	w.ForNeighbors(id, lc.cfg.ConnectRadius, func(j int, p geom.Vec) {
		if !w.Sensors[j].Connected {
			return
		}
		if w.PosAt(j, math.Max(w.StepEndTime(j), now)).Dist(pos) > lc.cfg.ConnectRadius {
			return
		}
		if d := p.Dist(pos); d < best {
			best = d
			joined = j
		}
	})
	if joined != NoParent {
		w.Stay(id, T)
		return LazyResult{Outcome: LazyJoined, Parent: joined}
	}

	walker := lc.walkers[id]
	if walker.Stuck() {
		w.Stay(id, T)
		return LazyResult{Outcome: LazyStuck}
	}

	if lc.cfg.Disabled {
		moved := walker.Advance(w.P.MaxStep())
		w.BeginStep(id, walker.Pos(), moved, T)
		if walker.Stuck() {
			return LazyResult{Outcome: LazyStuck}
		}
		return LazyResult{Outcome: LazyMoved}
	}

	// Path-parent selection: the nearest neighbor strictly closer to the
	// current destination (§3.3). The communication radius (not the
	// connect radius) governs who can be seen.
	target := walker.Target()
	myDist := pos.Dist(target)
	cand := NoParent
	candDist := math.Inf(1)
	w.ForNeighbors(id, w.P.Rc, func(j int, p geom.Vec) {
		if w.Sensors[j].Connected || lc.rejected[id][j] {
			return
		}
		if p.Dist(target) >= myDist-1e-9 {
			return
		}
		if d := p.Dist(pos); d < candDist {
			candDist = d
			cand = j
		}
	})

	// A neighbor already waiting on us cannot be our path parent.
	if cand != NoParent && lc.pathParent[cand] == id {
		cand = NoParent
	}

	if cand != NoParent {
		lc.pathParent[id] = cand
		lc.stalled[id]++
		if lc.stalled[id] >= lc.cfg.LoopCheckAfter && lc.loopDetected(id) {
			// Disregard this path parent for good and resume walking at
			// the next step (§3.3).
			if lc.rejected[id] == nil {
				lc.rejected[id] = make(map[int]bool)
			}
			lc.rejected[id][cand] = true
			lc.pathParent[id] = NoParent
			lc.stalled[id] = 0
		}
		w.Stay(id, T)
		return LazyResult{Outcome: LazyWaiting}
	}

	// No path parent: walk.
	lc.pathParent[id] = NoParent
	lc.stalled[id] = 0
	moved := walker.Advance(w.P.MaxStep())
	w.BeginStep(id, walker.Pos(), moved, T)
	if walker.Stuck() {
		return LazyResult{Outcome: LazyStuck}
	}
	return LazyResult{Outcome: LazyMoved}
}

// loopDetected sends a PathParentInquiry along the path-parent chain and
// reports whether it returns to the sender.
func (lc *LazyCoordinator) loopDetected(id int) bool {
	hops := 0
	cur := lc.pathParent[id]
	for cur != NoParent && hops <= len(lc.walkers) {
		hops++
		if cur == id {
			lc.w.Msg.Count(MsgPathInquiry, hops)
			return true
		}
		cur = lc.pathParent[cur]
	}
	lc.w.Msg.Count(MsgPathInquiry, maxIntCore(hops, 1))
	return false
}

// PathParent returns sensor id's current path parent (NoParent if none),
// exposed for tests and diagnostics.
func (lc *LazyCoordinator) PathParent(id int) int { return lc.pathParent[id] }

// ReplaceWalker installs a fresh route walker for sensor id and resets its
// lazy-movement state. Used when a sensor must re-establish connectivity
// after its neighborhood dissolved (e.g. a stranded movable in FLOOR).
func (lc *LazyCoordinator) ReplaceWalker(id int, w Walker) {
	lc.walkers[id] = w
	lc.pathParent[id] = NoParent
	lc.stalled[id] = 0
	lc.rejected[id] = nil
}

// Walker returns sensor id's route walker.
func (lc *LazyCoordinator) Walker(id int) Walker { return lc.walkers[id] }

func maxIntCore(a, b int) int {
	if a > b {
		return a
	}
	return b
}
