package core

// MsgKind classifies protocol messages for the overhead accounting of §6.5
// (Table 1). Every transmission (one broadcast, or one hop of a unicast
// path) counts as one message.
type MsgKind int

// Message kinds used by the schemes.
const (
	// MsgFlood is the connectivity flood of §4.1.
	MsgFlood MsgKind = iota + 1
	// MsgBeacon is a local neighborhood probe (position/state exchange).
	MsgBeacon
	// MsgTreeCtl is tree maintenance: LockTree/UnLockTree/join (§4.2),
	// movable identification traffic (§5.3).
	MsgTreeCtl
	// MsgPathInquiry is the PathParentInquiry loop check of §3.3.
	MsgPathInquiry
	// MsgReport is a connected sensor's arrival report to the base
	// station (§5.3).
	MsgReport
	// MsgQuery is a coverage-status query to floor header nodes (§5.4),
	// and its response.
	MsgQuery
	// MsgInvite is a TTL-bounded random-walk Invitation (§5.5.2).
	MsgInvite
	// MsgAccept is an AcceptInvitation message.
	MsgAccept
	// MsgAck is an Acknowledge or reject response to an acceptance.
	MsgAck
	// MsgUpdate is a virtual-fixed-node location update toward the root
	// (§5.5.2).
	MsgUpdate

	numMsgKinds
)

// String implements fmt.Stringer.
func (k MsgKind) String() string {
	switch k {
	case MsgFlood:
		return "flood"
	case MsgBeacon:
		return "beacon"
	case MsgTreeCtl:
		return "tree-ctl"
	case MsgPathInquiry:
		return "path-inquiry"
	case MsgReport:
		return "report"
	case MsgQuery:
		return "query"
	case MsgInvite:
		return "invite"
	case MsgAccept:
		return "accept"
	case MsgAck:
		return "ack"
	case MsgUpdate:
		return "update"
	default:
		return "unknown"
	}
}

// MsgStats counts protocol messages by kind.
type MsgStats struct {
	counts [numMsgKinds + 1]int64
}

// Count records n transmissions of the given kind.
func (m *MsgStats) Count(kind MsgKind, n int) {
	if kind <= 0 || kind >= numMsgKinds || n <= 0 {
		return
	}
	m.counts[kind] += int64(n)
}

// Of returns the number of messages of one kind.
func (m *MsgStats) Of(kind MsgKind) int64 {
	if kind <= 0 || kind >= numMsgKinds {
		return 0
	}
	return m.counts[kind]
}

// Total returns the number of messages of all kinds.
func (m *MsgStats) Total() int64 {
	var sum int64
	for _, c := range m.counts {
		sum += c
	}
	return sum
}

// ByKind returns a map of kind name to count, for reporting.
func (m *MsgStats) ByKind() map[string]int64 {
	out := make(map[string]int64, int(numMsgKinds))
	for k := MsgKind(1); k < numMsgKinds; k++ {
		if m.counts[k] > 0 {
			out[k.String()] = m.counts[k]
		}
	}
	return out
}
