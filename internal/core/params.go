// Package core provides the shared simulation substrate for all deployment
// schemes: the sensor/world model (§3.1), per-period motion with
// piecewise-linear position interpolation, message accounting (§6.5), the
// connectivity tree (§4.1–4.2, §5.3), the lazy-movement strategy (§3.3) and
// unit-disk connectivity checks.
package core

import (
	"fmt"

	"mobisense/internal/geom"
)

// Sentinel parent values used by the connectivity tree.
const (
	// NoParent marks a sensor with no parent (disconnected or root of a
	// detached fragment).
	NoParent = -1
	// BaseParent marks a sensor whose parent is the base station itself.
	BaseParent = -2
)

// Params holds the simulation parameters of §3.1/§4.3. All distances are in
// meters and times in seconds.
type Params struct {
	// N is the number of sensors.
	N int
	// Rc is the communication range (isotropic unit disk).
	Rc float64
	// Rs is the sensing range (isotropic unit disk).
	Rs float64
	// Speed is the maximum moving speed V.
	Speed float64
	// Period is the step period T: a sensor moves in a straight line at
	// uniform speed for one period, then re-decides.
	Period float64
	// Duration is the simulated time horizon.
	Duration float64
	// Seed seeds all randomness of a run.
	Seed uint64
	// PhaseJitter, in [0,1), staggers the sensors' period boundaries by a
	// uniform fraction of the period, realizing the asynchronous system of
	// §4.2. Zero means all sensors decide simultaneously.
	PhaseJitter float64
	// InitRegion is the region in which sensors are initially placed
	// uniformly at random (the paper's clustered distribution uses the
	// [0,500]² sub-area).
	InitRegion geom.Rect
	// CoverageRes is the grid resolution for coverage measurement.
	CoverageRes float64
}

// DefaultParams returns the paper's standard settings (§4.3): 240 sensors
// clustered in [0,500]², V = 2 m/s, T = 1 s, 750 s horizon, rc = 60 m,
// rs = 40 m.
func DefaultParams() Params {
	return Params{
		N:           240,
		Rc:          60,
		Rs:          40,
		Speed:       2,
		Period:      1,
		Duration:    750,
		Seed:        1,
		PhaseJitter: 0.5,
		InitRegion:  geom.R(0, 0, 500, 500),
		CoverageRes: 5,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.N <= 0:
		return fmt.Errorf("core: N = %d, must be positive", p.N)
	case p.Rc <= 0 || p.Rs <= 0:
		return fmt.Errorf("core: ranges rc=%v rs=%v must be positive", p.Rc, p.Rs)
	case p.Speed <= 0:
		return fmt.Errorf("core: speed %v must be positive", p.Speed)
	case p.Period <= 0:
		return fmt.Errorf("core: period %v must be positive", p.Period)
	case p.Duration < 0:
		return fmt.Errorf("core: duration %v must be non-negative", p.Duration)
	case p.PhaseJitter < 0 || p.PhaseJitter >= 1:
		return fmt.Errorf("core: phase jitter %v must be in [0,1)", p.PhaseJitter)
	case p.CoverageRes <= 0:
		return fmt.Errorf("core: coverage resolution %v must be positive", p.CoverageRes)
	}
	return nil
}

// MaxStep returns the maximum distance a sensor can travel in one period.
func (p Params) MaxStep() float64 { return p.Speed * p.Period }
