package core

// Scheme is a deployment scheme controller. Attach wires the scheme's
// event handlers into a freshly constructed world; the caller then runs the
// world's engine for the configured duration.
type Scheme interface {
	// Name identifies the scheme in results and reports.
	Name() string
	// Attach registers the scheme's initial events on the world. It must
	// be called exactly once, before the engine runs.
	Attach(w *World)
}
