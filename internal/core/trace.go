package core

import "mobisense/internal/geom"

// TraceSample is one instantaneous observation of a running deployment:
// the per-tick telemetry behind run-level traces. Coverage is left zero
// here — the estimator lives above core, so the caller fills it from the
// layout SampleTrace returns.
type TraceSample struct {
	// Time is the simulation clock at the sample.
	Time float64
	// Alive is the number of non-failed sensors; Moving how many of them
	// are mid-step; Connected how many are unit-disk reachable from the
	// base station.
	Alive, Moving, Connected int
	// TotalMoved is the summed cumulative path length over all sensors
	// (failed ones keep the distance they spent); MaxMoved the largest
	// single sensor's.
	TotalMoved, MaxMoved float64
}

// SampleTrace fills s with the world's telemetry at the current time and
// returns the alive-sensor layout it was computed from, for coverage
// estimation by the caller. The returned slice is scratch owned by the
// world, valid until the next SampleTrace call.
//
// SampleTrace never touches the engine's random source, so sampling —
// at any stride — cannot perturb a run's outcome.
func (w *World) SampleTrace(s *TraceSample) []geom.Vec {
	now := w.Now()
	pts := w.traceLayout[:0]
	*s = TraceSample{Time: now}
	for i := range w.Sensors {
		sn := &w.Sensors[i]
		s.TotalMoved += sn.Traveled
		if sn.Traveled > s.MaxMoved {
			s.MaxMoved = sn.Traveled
		}
		if sn.Failed {
			continue
		}
		s.Alive++
		if w.Moving(i, now) {
			s.Moving++
		}
		pts = append(pts, w.PosAt(i, now))
	}
	w.traceLayout = pts
	for _, ok := range UnitDiskReachable(pts, w.F.Reference(), w.P.Rc) {
		if ok {
			s.Connected++
		}
	}
	return pts
}
