package core

import "sync"

// Tree is the connectivity tree rooted at the base station. parent[i] is a
// sensor ID, BaseParent, or NoParent. The tree is maintained by the schemes
// during connectivity establishment (§4.1, §5.2), parent changes (§4.2) and
// movable-sensor identification (§5.3).
type Tree struct {
	parent   []int
	children [][]int

	// chainA/chainB back TreeDist's two root chains; the registry's
	// covered-query path calls TreeDist once per candidate header per
	// period, so per-call chain allocation dominates a run's garbage.
	chainA, chainB []int
}

// treePool recycles trees (their parent/children arrays and chain
// scratch) across runs; one tree is built per run, and sweeps run
// thousands.
var treePool sync.Pool

// NewTree creates a tree of n detached sensors, reusing a pooled tree's
// storage when available (see Release).
func NewTree(n int) *Tree {
	t, _ := treePool.Get().(*Tree)
	if t == nil {
		t = &Tree{}
	}
	if cap(t.parent) < n {
		t.parent = make([]int, n)
		t.children = make([][]int, n)
	} else {
		t.parent = t.parent[:n]
		t.children = t.children[:n]
	}
	for i := range t.parent {
		t.parent[i] = NoParent
		t.children[i] = t.children[i][:0]
	}
	return t
}

// Release returns the tree's storage to the shared pool for reuse by a
// future NewTree. The tree must not be used after Release.
func (t *Tree) Release() {
	treePool.Put(t)
}

// Len returns the number of sensors.
func (t *Tree) Len() int { return len(t.parent) }

// Parent returns sensor id's parent (a sensor ID, BaseParent, or NoParent).
func (t *Tree) Parent(id int) int { return t.parent[id] }

// Children returns sensor id's children. The returned slice is owned by the
// tree and must not be modified.
func (t *Tree) Children(id int) []int { return t.children[id] }

// InTree reports whether sensor id has a path of parents ending at the
// base station.
func (t *Tree) InTree(id int) bool {
	for hops := 0; hops <= len(t.parent); hops++ {
		p := t.parent[id]
		if p == BaseParent {
			return true
		}
		if p == NoParent {
			return false
		}
		id = p
	}
	return false // cycle: not rooted
}

// SetParent makes child a child of parent (BaseParent for the base
// station). It refuses, returning false, if the change would create a
// cycle, i.e. if child is an ancestor of parent.
func (t *Tree) SetParent(child, parent int) bool {
	if parent == child {
		return false
	}
	if parent >= 0 && t.IsAncestor(child, parent) {
		return false
	}
	t.Detach(child)
	t.parent[child] = parent
	if parent >= 0 {
		t.children[parent] = append(t.children[parent], child)
	}
	return true
}

// Detach removes child from its parent. Its own subtree stays attached to
// it.
func (t *Tree) Detach(child int) {
	p := t.parent[child]
	t.parent[child] = NoParent
	if p < 0 {
		return
	}
	kids := t.children[p]
	for i, c := range kids {
		if c == child {
			t.children[p] = append(kids[:i], kids[i+1:]...)
			return
		}
	}
}

// IsAncestor reports whether a is an ancestor of id (or a == id).
func (t *Tree) IsAncestor(a, id int) bool {
	for hops := 0; hops <= len(t.parent); hops++ {
		if id == a {
			return true
		}
		if id < 0 {
			return false
		}
		id = t.parent[id]
	}
	return false
}

// Ancestors returns the chain of sensor ancestors of id, nearest first,
// excluding the base station sentinel. FLOOR keeps this list in each
// sensor's memory (§5.3).
func (t *Tree) Ancestors(id int) []int {
	return t.AncestorsAppend(nil, id)
}

// AncestorsAppend appends the chain of sensor ancestors of id (nearest
// first, excluding the base-station sentinel) to out and returns it.
func (t *Tree) AncestorsAppend(out []int, id int) []int {
	cur := t.parent[id]
	for hops := 0; hops <= len(t.parent) && cur >= 0; hops++ {
		out = append(out, cur)
		cur = t.parent[cur]
	}
	return out
}

// Depth returns the number of hops from id to the base station, or -1 if
// id is not in the tree.
func (t *Tree) Depth(id int) int {
	d := 0
	cur := id
	for hops := 0; hops <= len(t.parent); hops++ {
		p := t.parent[cur]
		if p == BaseParent {
			return d + 1
		}
		if p == NoParent {
			return -1
		}
		cur = p
		d++
	}
	return -1
}

// Subtree returns id and every descendant of id, in BFS order.
func (t *Tree) Subtree(id int) []int {
	return t.SubtreeAppend(nil, id)
}

// SubtreeAppend appends id and every descendant of id (in BFS order,
// starting from out's existing length) to out and returns it.
func (t *Tree) SubtreeAppend(out []int, id int) []int {
	start := len(out)
	out = append(out, id)
	for i := start; i < len(out); i++ {
		out = append(out, t.children[out[i]]...)
	}
	return out
}

// TreeDist returns the number of tree edges on the path between a and b
// (treating the base station as the common root), or -1 if they are in
// different fragments. The chain scratch makes repeated calls
// allocation-free; like all tree mutation, it is not safe for concurrent
// use on one tree.
func (t *Tree) TreeDist(a, b int) int {
	da, okA := t.depthChain(t.chainA[:0], a)
	t.chainA = da
	db, okB := t.depthChain(t.chainB[:0], b)
	t.chainB = db
	if !okA || !okB {
		return -1
	}
	// Chains end at BaseParent; walk back from the root to find the
	// divergence point.
	i, j := len(da)-1, len(db)-1
	for i >= 0 && j >= 0 && da[i] == db[j] {
		i--
		j--
	}
	return (i + 1) + (j + 1)
}

// depthChain appends the chain [id, parent, ..., last-before-base] to buf,
// reporting false if id is not rooted at the base station.
func (t *Tree) depthChain(buf []int, id int) ([]int, bool) {
	buf = append(buf, id)
	cur := id
	for hops := 0; hops <= len(t.parent); hops++ {
		p := t.parent[cur]
		if p == BaseParent {
			return buf, true
		}
		if p == NoParent {
			return buf, false
		}
		buf = append(buf, p)
		cur = p
	}
	return buf, false
}
