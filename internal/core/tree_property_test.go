package core

import (
	"math/rand/v2"
	"testing"
)

// refTree is a trivial reference implementation of the connectivity tree
// (parent array only; children derived by scan) used to cross-check Tree's
// incremental bookkeeping under random operation sequences.
type refTree struct {
	parent []int
}

func newRefTree(n int) *refTree {
	r := &refTree{parent: make([]int, n)}
	for i := range r.parent {
		r.parent[i] = NoParent
	}
	return r
}

func (r *refTree) wouldLoop(child, parent int) bool {
	for cur := parent; cur >= 0; cur = r.parent[cur] {
		if cur == child {
			return true
		}
	}
	return parent == child
}

func (r *refTree) children(id int) map[int]bool {
	out := map[int]bool{}
	for i, p := range r.parent {
		if p == id {
			out[i] = true
		}
	}
	return out
}

func (r *refTree) inTree(id int) bool {
	for cur := id; ; {
		p := r.parent[cur]
		if p == BaseParent {
			return true
		}
		if p == NoParent {
			return false
		}
		cur = p
	}
}

// TestTreeMatchesReferenceUnderRandomOps drives Tree and the reference
// implementation with the same random SetParent/Detach sequence and
// compares parents, children sets, and rootedness after every step.
func TestTreeMatchesReferenceUnderRandomOps(t *testing.T) {
	const n = 24
	rng := rand.New(rand.NewPCG(42, 99))
	tree := NewTree(n)
	ref := newRefTree(n)

	for step := 0; step < 5000; step++ {
		id := rng.IntN(n)
		switch rng.IntN(4) {
		case 0: // attach to base
			if tree.SetParent(id, BaseParent) {
				ref.parent[id] = BaseParent
			}
		case 1, 2: // attach to random sensor
			p := rng.IntN(n)
			got := tree.SetParent(id, p)
			want := p != id && !ref.wouldLoop(id, p)
			if got != want {
				t.Fatalf("step %d: SetParent(%d,%d) = %v, reference says %v", step, id, p, got, want)
			}
			if got {
				ref.parent[id] = p
			}
		case 3:
			tree.Detach(id)
			ref.parent[id] = NoParent
		}

		// Full-state comparison.
		for i := 0; i < n; i++ {
			if tree.Parent(i) != ref.parent[i] {
				t.Fatalf("step %d: parent(%d) = %d, reference %d", step, i, tree.Parent(i), ref.parent[i])
			}
			wantKids := ref.children(i)
			gotKids := tree.Children(i)
			if len(gotKids) != len(wantKids) {
				t.Fatalf("step %d: children(%d) size %d, reference %d", step, i, len(gotKids), len(wantKids))
			}
			for _, c := range gotKids {
				if !wantKids[c] {
					t.Fatalf("step %d: spurious child %d of %d", step, c, i)
				}
			}
			if tree.InTree(i) != ref.inTree(i) {
				t.Fatalf("step %d: InTree(%d) = %v, reference %v", step, i, tree.InTree(i), ref.inTree(i))
			}
		}
	}
}
