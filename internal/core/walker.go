package core

import (
	"mobisense/internal/bug2"
	"mobisense/internal/field"
	"mobisense/internal/geom"
)

// Walker produces movement toward connectivity for one sensor. CPVF walks
// straight to the base station with BUG2 (§4.1); FLOOR routes through two
// intermediate destinations (§5.2, Algorithm 1). The lazy-movement driver
// (§3.3) is agnostic to the route, so both are Walkers.
type Walker interface {
	// Advance moves up to budget meters along the route and returns the
	// distance actually traveled.
	Advance(budget float64) float64
	// Pos returns the walker's current position.
	Pos() geom.Vec
	// Target returns the current destination (used by the lazy-movement
	// "is this neighbor ahead of me" test).
	Target() geom.Vec
	// Arrived reports that the final destination was reached.
	Arrived() bool
	// Stuck reports that the route cannot be completed.
	Stuck() bool
}

// Leg is one stage of a multi-leg route.
type Leg struct {
	// Target is the leg's destination.
	Target geom.Vec
	// StopOnHit ends the leg at the first obstacle contact instead of
	// wall-following around it (Algorithm 1's "until ... hitting an
	// obstacle").
	StopOnHit bool
}

// RouteWalker walks a sequence of legs with BUG2, starting each leg from
// wherever the previous one ended. One planner value is reused in place
// across legs (it is re-initialized per leg, never heap-allocated).
type RouteWalker struct {
	f        *field.Field
	legs     []Leg
	cur      int
	pos      geom.Vec
	planner  bug2.Planner
	planning bool
	hand     bug2.Hand
	stuck    bool
}

var _ Walker = (*RouteWalker)(nil)

// NewRouteWalker creates a walker at start that will traverse the given
// legs in order. The legs slice is copied.
func NewRouteWalker(f *field.Field, start geom.Vec, legs []Leg, hand bug2.Hand) *RouteWalker {
	w := &RouteWalker{
		f:    f,
		legs: append([]Leg(nil), legs...),
		pos:  start,
		hand: hand,
	}
	if len(w.legs) == 0 {
		w.legs = []Leg{{Target: start}}
	}
	return w
}

// NewDirectWalker creates a single-leg walker to target with full BUG2
// (CPVF's connectivity walk, §4.1).
func NewDirectWalker(f *field.Field, start, target geom.Vec) *RouteWalker {
	return NewRouteWalker(f, start, []Leg{{Target: target}}, bug2.RightHand)
}

// Pos implements Walker.
func (r *RouteWalker) Pos() geom.Vec { return r.pos }

// Target implements Walker.
func (r *RouteWalker) Target() geom.Vec {
	if r.cur >= len(r.legs) {
		return r.legs[len(r.legs)-1].Target
	}
	return r.legs[r.cur].Target
}

// Arrived implements Walker.
func (r *RouteWalker) Arrived() bool { return r.cur >= len(r.legs) && !r.stuck }

// Stuck implements Walker.
func (r *RouteWalker) Stuck() bool { return r.stuck }

// Advance implements Walker.
func (r *RouteWalker) Advance(budget float64) float64 {
	var moved float64
	for budget-moved > 1e-9 && !r.Arrived() && !r.stuck {
		leg := r.legs[r.cur]
		if !r.planning {
			r.planner.Init(r.f, r.pos, leg.Target, r.hand, 0.5, leg.StopOnHit)
			r.planning = true
		}
		moved += r.planner.Advance(budget - moved)
		r.pos = r.planner.Pos()
		switch r.planner.Status() {
		case bug2.StatusMoving:
			// Budget exhausted mid-leg.
			return moved
		case bug2.StatusArrived, bug2.StatusHit:
			// Leg complete (or cut short by obstacle contact in
			// stop-on-hit legs); move to the next leg.
			r.cur++
			r.planning = false
		case bug2.StatusStuck:
			if leg.StopOnHit {
				r.cur++
				r.planning = false
			} else {
				r.stuck = true
			}
		}
	}
	return moved
}
