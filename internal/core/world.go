package core

import (
	"fmt"
	"slices"

	"mobisense/internal/field"
	"mobisense/internal/geom"
	"mobisense/internal/sim"
	"mobisense/internal/spatial"
)

// Sensor is one mobile node. Its position is piecewise linear in time: a
// step record says it moves from From to To during [T0, T1] at uniform
// speed (§3.1). Outside that window it is stationary at the nearer
// endpoint.
type Sensor struct {
	ID int

	// Current step record.
	From, To geom.Vec
	T0, T1   float64

	// Traveled is the cumulative path length (the energy-dominating
	// metric of §6.2). It may exceed the displacement when BUG2 rounds
	// corners within a period.
	Traveled float64

	// Connected reports whether the sensor has joined the base-station
	// tree.
	Connected bool

	// Failed marks a dead sensor (§7 failure recovery): it no longer
	// moves, communicates, or counts toward coverage.
	Failed bool

	// Phase is the offset of this sensor's period boundaries.
	Phase float64
}

// PosAt returns the sensor position at time t.
func (s *Sensor) PosAt(t float64) geom.Vec {
	switch {
	case t <= s.T0:
		return s.From
	case t >= s.T1:
		return s.To
	default:
		return s.From.Lerp(s.To, (t-s.T0)/(s.T1-s.T0))
	}
}

// Moving reports whether the sensor is mid-step at time t.
func (s *Sensor) Moving(t float64) bool {
	return t >= s.T0 && t < s.T1 && !s.From.Eq(s.To)
}

// World owns the sensors, the field, the clock and the message counters; it
// is shared by every deployment scheme.
type World struct {
	P       Params
	E       *sim.Engine
	F       *field.Field
	Sensors []*Sensor
	Msg     *MsgStats
	Tree    *Tree

	idx        *spatial.Index
	lastMove   float64
	nbrScratch []int // Neighbors result buffer, reused across calls
}

// NewWorld builds a world with sensors placed uniformly at random in
// P.InitRegion (clipped to free space).
func NewWorld(f *field.Field, p Params) (*World, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	w := &World{
		P:       p,
		E:       sim.NewEngine(p.Seed),
		F:       f,
		Sensors: make([]*Sensor, p.N),
		Msg:     &MsgStats{},
		Tree:    NewTree(p.N),
		idx:     spatial.New(p.Rc, p.N),
	}
	rng := w.E.Rand()
	for i := 0; i < p.N; i++ {
		pos := f.RandomFreePoint(rng, p.InitRegion)
		s := &Sensor{ID: i, From: pos, To: pos}
		if p.PhaseJitter > 0 {
			s.Phase = rng.Float64() * p.PhaseJitter * p.Period
		}
		w.Sensors[i] = s
		w.idx.Insert(i, pos)
	}
	return w, nil
}

// Release returns the world's pooled internals — the event engine's heap
// and the spatial index — for reuse by future runs, cutting GC pressure
// in large batch sweeps (one world is built per run). The caller must be
// done with the world, its engine and its schemes: no field of the world
// may be touched after Release.
func (w *World) Release() {
	w.E.Release()
	w.idx.Release()
	w.E = nil
	w.idx = nil
}

// Now returns the current simulation time.
func (w *World) Now() float64 { return w.E.Now() }

// Pos returns sensor id's position at the current time.
func (w *World) Pos(id int) geom.Vec { return w.Sensors[id].PosAt(w.Now()) }

// PosAt returns sensor id's position at time t.
func (w *World) PosAt(id int, t float64) geom.Vec { return w.Sensors[id].PosAt(t) }

// BeginStep commits sensor id to move from its current position to `to`
// during the next dur seconds, traveling pathLen meters (pathLen may exceed
// the displacement when the underlying path bends around obstacle corners).
// The paper's motion model (§3.1): one straight-line step per period at
// uniform speed.
func (w *World) BeginStep(id int, to geom.Vec, pathLen, dur float64) {
	s := w.Sensors[id]
	now := w.Now()
	from := s.PosAt(now)
	if pathLen < 0 {
		panic(fmt.Sprintf("core: negative path length %v for sensor %d", pathLen, id))
	}
	maxLen := w.P.Speed*dur + 1e-6
	if pathLen > maxLen {
		panic(fmt.Sprintf("core: step of %v m exceeds speed limit %v m for sensor %d", pathLen, maxLen, id))
	}
	s.From = from
	s.To = to
	s.T0 = now
	s.T1 = now + dur
	s.Traveled += pathLen
	if pathLen > 1e-9 {
		w.lastMove = now + dur
		w.idx.Insert(id, from)
	}
}

// Teleport instantly places sensor id at pos without charging moving
// distance. It is used for scenario setup in tests and for baselines whose
// pre-computed relocation cost is accounted separately (the explosion phase
// of §6.2).
func (w *World) Teleport(id int, pos geom.Vec) {
	s := w.Sensors[id]
	now := w.Now()
	s.From = pos
	s.To = pos
	s.T0 = now
	s.T1 = now
	w.idx.Insert(id, pos)
}

// Stay commits sensor id to remain stationary for the next dur seconds.
func (w *World) Stay(id int, dur float64) {
	s := w.Sensors[id]
	now := w.Now()
	pos := s.PosAt(now)
	s.From = pos
	s.To = pos
	s.T0 = now
	s.T1 = now + dur
}

// ForNeighbors calls fn for every other sensor within radius r of sensor id
// at the current time. The spatial index stores step-start positions, so
// queries are padded by twice the maximum per-period displacement and then
// filtered exactly.
func (w *World) ForNeighbors(id int, r float64, fn func(j int, pos geom.Vec)) {
	now := w.Now()
	center := w.Pos(id)
	pad := 2 * w.P.MaxStep()
	w.idx.ForNeighbors(center, r+pad, func(j int, _ geom.Vec) {
		if j == id || w.Sensors[j].Failed {
			return
		}
		p := w.Sensors[j].PosAt(now)
		if p.Dist(center) <= r {
			fn(j, p)
		}
	})
}

// Neighbors returns the IDs of sensors within radius r of sensor id at the
// current time, in ascending order. The returned slice is scratch reused
// by the next Neighbors call on this world (callers never retain it past
// their period handler; this is a per-sensor-per-period hot path).
func (w *World) Neighbors(id int, r float64) []int {
	out := w.nbrScratch[:0]
	w.ForNeighbors(id, r, func(j int, _ geom.Vec) { out = append(out, j) })
	// ForNeighbors iterates in grid order; sort for determinism across
	// index states.
	slices.Sort(out)
	w.nbrScratch = out
	return out
}

// NearBase reports whether sensor id is within radius r of the base
// station.
func (w *World) NearBase(id int, r float64) bool {
	return w.Pos(id).Dist(w.F.Reference()) <= r
}

// Layout returns a snapshot of all sensor positions at the current time.
func (w *World) Layout() []geom.Vec {
	out := make([]geom.Vec, len(w.Sensors))
	for i, s := range w.Sensors {
		out[i] = s.PosAt(w.Now())
	}
	return out
}

// AvgTraveled returns the mean cumulative moving distance per sensor.
func (w *World) AvgTraveled() float64 {
	var sum float64
	for _, s := range w.Sensors {
		sum += s.Traveled
	}
	return sum / float64(len(w.Sensors))
}

// LastMoveTime returns the time at which the last committed movement ends,
// i.e. the convergence time of the deployment so far.
func (w *World) LastMoveTime() float64 { return w.lastMove }

// ConnectedCount returns the number of sensors flagged Connected.
func (w *World) ConnectedCount() int {
	n := 0
	for _, s := range w.Sensors {
		if s.Connected {
			n++
		}
	}
	return n
}

// PeriodStart returns the first decision time at or after t for sensor id,
// respecting its phase offset.
func (w *World) PeriodStart(id int, t float64) float64 {
	s := w.Sensors[id]
	T := w.P.Period
	if t <= s.Phase {
		return s.Phase
	}
	k := (t - s.Phase) / T
	ki := float64(int(k))
	if k > ki {
		ki++
	}
	return s.Phase + ki*T
}
