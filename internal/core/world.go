package core

import (
	"fmt"
	"slices"
	"sync"

	"mobisense/internal/field"
	"mobisense/internal/geom"
	"mobisense/internal/sim"
	"mobisense/internal/spatial"
)

// Sensor is one mobile node's slow-changing state. The per-tick motion
// state (the current step record) lives in the World's parallel arrays —
// see World.PosAt — so the hot interpolation loops stream through compact
// struct-of-arrays storage instead of chasing per-sensor pointers.
type Sensor struct {
	ID int

	// Traveled is the cumulative path length (the energy-dominating
	// metric of §6.2). It may exceed the displacement when BUG2 rounds
	// corners within a period.
	Traveled float64

	// Connected reports whether the sensor has joined the base-station
	// tree.
	Connected bool

	// Failed marks a dead sensor (§7 failure recovery): it no longer
	// moves, communicates, or counts toward coverage.
	Failed bool

	// Phase is the offset of this sensor's period boundaries.
	Phase float64
}

// World owns the sensors, the field, the clock and the message counters; it
// is shared by every deployment scheme.
type World struct {
	P       Params
	E       *sim.Engine
	F       *field.Field
	Sensors []Sensor
	Msg     *MsgStats
	Tree    *Tree

	// Step records, struct-of-arrays indexed by sensor ID: sensor id
	// moves from stepFrom[id] to stepTo[id] during [stepT0[id],
	// stepT1[id]] at uniform speed (§3.1). Outside that window it is
	// stationary at the nearer endpoint.
	stepFrom []geom.Vec
	stepTo   []geom.Vec
	stepT0   []float64
	stepT1   []float64

	// moveEpoch[id] increments whenever sensor id's motion state changes
	// out of band — a new step record, a teleport, a failure. Together
	// with StepEndTime it lets observers (the incremental coverage
	// tracker) skip sensors whose position provably hasn't changed since
	// their last look, without schemes calling back.
	moveEpoch []uint64

	msgStore MsgStats

	idx        *spatial.Index
	lastMove   float64
	nbrScratch []int // Neighbors result buffer, reused across calls

	// Flood scratch (see FloodFromBase), reused across floods and runs.
	floodPos     []geom.Vec
	floodVisited []bool
	floodQueue   []int

	// Trace-sampling layout scratch (see SampleTrace), reused across
	// samples and runs.
	traceLayout []geom.Vec
}

// worldPool recycles worlds — their sensor arrays, step records and
// scratch buffers — across runs; batch sweeps build one world per run.
var worldPool sync.Pool

// NewWorld builds a world with sensors placed uniformly at random in
// P.InitRegion (clipped to free space). Pooled storage from released
// worlds is reused when available (see Release).
func NewWorld(f *field.Field, p Params) (*World, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	w, _ := worldPool.Get().(*World)
	if w == nil {
		w = &World{}
	}
	w.P = p
	w.E = sim.NewEngine(p.Seed)
	w.F = f
	w.Tree = NewTree(p.N)
	w.idx = spatial.NewBounded(p.Rc, f.Bounds(), p.N)
	w.msgStore = MsgStats{}
	w.Msg = &w.msgStore
	w.lastMove = 0
	w.Sensors = resize(w.Sensors, p.N)
	w.stepFrom = resize(w.stepFrom, p.N)
	w.stepTo = resize(w.stepTo, p.N)
	w.stepT0 = resize(w.stepT0, p.N)
	w.stepT1 = resize(w.stepT1, p.N)
	w.moveEpoch = resize(w.moveEpoch, p.N)
	clear(w.moveEpoch)
	rng := w.E.Rand()
	for i := 0; i < p.N; i++ {
		pos := f.RandomFreePoint(rng, p.InitRegion)
		w.Sensors[i] = Sensor{ID: i}
		if p.PhaseJitter > 0 {
			w.Sensors[i].Phase = rng.Float64() * p.PhaseJitter * p.Period
		}
		w.stepFrom[i] = pos
		w.stepTo[i] = pos
		w.stepT0[i] = 0
		w.stepT1[i] = 0
		w.idx.Insert(i, pos)
	}
	return w, nil
}

// resize returns s with length n, reusing capacity; contents are
// unspecified (callers overwrite every element).
func resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Release returns the world's pooled internals — the event engine's heap,
// the spatial index, the tree and the world's own arrays — for reuse by
// future runs, cutting GC pressure in large batch sweeps (one world is
// built per run). The caller must be done with the world, its engine and
// its schemes: no field of the world may be touched after Release.
func (w *World) Release() {
	w.E.Release()
	w.idx.Release()
	w.Tree.Release()
	w.E = nil
	w.idx = nil
	w.Tree = nil
	w.F = nil
	w.Msg = nil
	worldPool.Put(w)
}

// Now returns the current simulation time.
func (w *World) Now() float64 { return w.E.Now() }

// Pos returns sensor id's position at the current time.
func (w *World) Pos(id int) geom.Vec { return w.PosAt(id, w.Now()) }

// PosAt returns sensor id's position at time t, interpolating its current
// step record.
func (w *World) PosAt(id int, t float64) geom.Vec {
	switch {
	case t <= w.stepT0[id]:
		return w.stepFrom[id]
	case t >= w.stepT1[id]:
		return w.stepTo[id]
	default:
		return w.stepFrom[id].Lerp(w.stepTo[id], (t-w.stepT0[id])/(w.stepT1[id]-w.stepT0[id]))
	}
}

// Moving reports whether sensor id is mid-step at time t.
func (w *World) Moving(id int, t float64) bool {
	return t >= w.stepT0[id] && t < w.stepT1[id] && !w.stepFrom[id].Eq(w.stepTo[id])
}

// StepEndTime returns the end time of sensor id's current step record
// (its committed position stops changing at that time).
func (w *World) StepEndTime(id int) float64 { return w.stepT1[id] }

// BeginStep commits sensor id to move from its current position to `to`
// during the next dur seconds, traveling pathLen meters (pathLen may exceed
// the displacement when the underlying path bends around obstacle corners).
// The paper's motion model (§3.1): one straight-line step per period at
// uniform speed.
func (w *World) BeginStep(id int, to geom.Vec, pathLen, dur float64) {
	now := w.Now()
	from := w.PosAt(id, now)
	if pathLen < 0 {
		panic(fmt.Sprintf("core: negative path length %v for sensor %d", pathLen, id))
	}
	maxLen := w.P.Speed*dur + 1e-6
	if pathLen > maxLen {
		panic(fmt.Sprintf("core: step of %v m exceeds speed limit %v m for sensor %d", pathLen, maxLen, id))
	}
	w.stepFrom[id] = from
	w.stepTo[id] = to
	w.stepT0[id] = now
	w.stepT1[id] = now + dur
	w.moveEpoch[id]++
	w.Sensors[id].Traveled += pathLen
	if pathLen > 1e-9 {
		w.lastMove = now + dur
		w.idx.Insert(id, from)
	}
}

// Teleport instantly places sensor id at pos without charging moving
// distance. It is used for scenario setup in tests and for baselines whose
// pre-computed relocation cost is accounted separately (the explosion phase
// of §6.2).
func (w *World) Teleport(id int, pos geom.Vec) {
	now := w.Now()
	w.stepFrom[id] = pos
	w.stepTo[id] = pos
	w.stepT0[id] = now
	w.stepT1[id] = now
	w.moveEpoch[id]++
	w.idx.Insert(id, pos)
}

// MoveEpoch returns sensor id's motion-change counter; see moveEpoch.
func (w *World) MoveEpoch(id int) uint64 { return w.moveEpoch[id] }

// Stay commits sensor id to remain stationary for the next dur seconds.
func (w *World) Stay(id int, dur float64) {
	now := w.Now()
	pos := w.PosAt(id, now)
	w.stepFrom[id] = pos
	w.stepTo[id] = pos
	w.stepT0[id] = now
	w.stepT1[id] = now + dur
}

// ForNeighbors calls fn for every other sensor within radius r of sensor id
// at the current time. The spatial index stores step-start positions, so
// queries are padded by twice the maximum per-period displacement and then
// filtered exactly.
func (w *World) ForNeighbors(id int, r float64, fn func(j int, pos geom.Vec)) {
	now := w.Now()
	center := w.PosAt(id, now)
	pad := 2 * w.P.MaxStep()
	w.idx.ForNeighborsSkip(id, center, r+pad, func(j int, _ geom.Vec) {
		if w.Sensors[j].Failed {
			return
		}
		p := w.PosAt(j, now)
		if p.WithinDist(center, r) {
			fn(j, p)
		}
	})
}

// Neighbors returns the IDs of sensors within radius r of sensor id at the
// current time, in ascending order. The returned slice is scratch reused
// by the next Neighbors call on this world (callers never retain it past
// their period handler; this is a per-sensor-per-period hot path).
func (w *World) Neighbors(id int, r float64) []int {
	out := w.nbrScratch[:0]
	w.ForNeighbors(id, r, func(j int, _ geom.Vec) { out = append(out, j) })
	// ForNeighbors iterates in grid order; sort for determinism across
	// index states.
	slices.Sort(out)
	w.nbrScratch = out
	return out
}

// NearBase reports whether sensor id is within radius r of the base
// station.
func (w *World) NearBase(id int, r float64) bool {
	return w.Pos(id).WithinDist(w.F.Reference(), r)
}

// Layout returns a snapshot of all sensor positions at the current time.
func (w *World) Layout() []geom.Vec {
	out := make([]geom.Vec, len(w.Sensors))
	now := w.Now()
	for i := range w.Sensors {
		out[i] = w.PosAt(i, now)
	}
	return out
}

// AvgTraveled returns the mean cumulative moving distance per sensor.
func (w *World) AvgTraveled() float64 {
	var sum float64
	for i := range w.Sensors {
		sum += w.Sensors[i].Traveled
	}
	return sum / float64(len(w.Sensors))
}

// LastMoveTime returns the time at which the last committed movement ends,
// i.e. the convergence time of the deployment so far.
func (w *World) LastMoveTime() float64 { return w.lastMove }

// ConnectedCount returns the number of sensors flagged Connected.
func (w *World) ConnectedCount() int {
	n := 0
	for i := range w.Sensors {
		if w.Sensors[i].Connected {
			n++
		}
	}
	return n
}

// PeriodStart returns the first decision time at or after t for sensor id,
// respecting its phase offset.
func (w *World) PeriodStart(id int, t float64) float64 {
	phase := w.Sensors[id].Phase
	T := w.P.Period
	if t <= phase {
		return phase
	}
	k := (t - phase) / T
	ki := float64(int(k))
	if k > ki {
		ki++
	}
	return phase + ki*T
}
