package coverage

import (
	"math/rand/v2"
	"testing"

	"mobisense/internal/field"
	"mobisense/internal/geom"
)

// A/B tests pinning the probe-accelerated coverage kernels to the
// brute-force paths (acceleration globally disabled): results must be
// bit-identical on randomized obstacle fields, sensor layouts, and radii.

func abRandomField(t *testing.T, rng *rand.Rand) *field.Field {
	t.Helper()
	f, err := field.RandomObstacles(rng, field.RandomObstacleConfig{
		MinCount:  2,
		MaxCount:  8,
		MinSide:   60,
		MaxSide:   350,
		KeepClear: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// abPositions samples sensor positions, mostly free but some deliberately
// inside obstacles or out of bounds to exercise the blocked-sensor skip.
func abPositions(rng *rand.Rand, f *field.Field, n int) []geom.Vec {
	out := make([]geom.Vec, 0, n)
	for len(out) < n {
		switch rng.IntN(8) {
		case 0:
			out = append(out, geom.V(rng.Float64()*1400-200, rng.Float64()*1400-200))
		default:
			out = append(out, f.RandomFreePoint(rng, f.Bounds()))
		}
	}
	return out
}

func TestFractionAccelMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewPCG(404, 17))
	for trial := 0; trial < 8; trial++ {
		f := abRandomField(t, rng)
		e := NewEstimator(f, 10)
		for q := 0; q < 4; q++ {
			positions := abPositions(rng, f, 8+rng.IntN(30))
			rs := 15 + rng.Float64()*60
			k := 1 + rng.IntN(3)

			fastF := e.Fraction(positions, rs)
			fastK := e.KFraction(positions, rs, k)
			prev := field.SetAccelEnabled(false)
			slowF := e.Fraction(positions, rs)
			slowK := e.KFraction(positions, rs, k)
			field.SetAccelEnabled(prev)
			if fastF != slowF {
				t.Fatalf("trial %d/%d: Fraction accel %v != brute %v (rs=%v, %d sensors)",
					trial, q, fastF, slowF, rs, len(positions))
			}
			if fastK != slowK {
				t.Fatalf("trial %d/%d: KFraction(k=%d) accel %v != brute %v (rs=%v)",
					trial, q, k, fastK, slowK, rs)
			}
		}
	}
}

func TestExclusiveAreaAccelMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewPCG(505, 23))
	for trial := 0; trial < 8; trial++ {
		f := abRandomField(t, rng)
		for q := 0; q < 6; q++ {
			center := f.RandomFreePoint(rng, f.Bounds())
			rs := 15 + rng.Float64()*50
			// Mix of near, far, and blocked others: the prefilter must
			// discard far/blocked ones without changing the result.
			others := abPositions(rng, f, 3+rng.IntN(20))

			fast := ExclusiveArea(f, center, rs, others, rs/8)
			prev := field.SetAccelEnabled(false)
			slow := ExclusiveArea(f, center, rs, others, rs/8)
			field.SetAccelEnabled(prev)
			if fast != slow {
				t.Fatalf("trial %d/%d: ExclusiveArea accel %v != brute %v (center=%v rs=%v, %d others)",
					trial, q, fast, slow, center, rs, len(others))
			}
		}
	}
}
