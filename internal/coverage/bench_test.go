package coverage

import (
	"math/rand/v2"
	"testing"

	"mobisense/internal/field"
	"mobisense/internal/geom"
)

// losBenchSetup builds a fixed obstacle-heavy field with free sensor
// positions for the line-of-sight coverage benchmarks.
func losBenchSetup(b *testing.B, nPos int) (*field.Field, []geom.Vec) {
	b.Helper()
	rng := rand.New(rand.NewPCG(3, 14))
	f, err := field.RandomObstacles(rng, field.RandomObstacleConfig{
		MinCount:  8,
		MaxCount:  8,
		MinSide:   80,
		MaxSide:   300,
		KeepClear: 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	positions := make([]geom.Vec, nPos)
	for i := range positions {
		positions[i] = f.RandomFreePoint(rng, f.Bounds())
	}
	return f, positions
}

// BenchmarkFractionLOS measures coverage estimation on an obstacle-heavy
// field, where every in-range cell pays a line-of-sight test — the
// dominant cost of obstacle-dense sweeps.
func BenchmarkFractionLOS(b *testing.B) {
	f, positions := losBenchSetup(b, 120)
	e := NewEstimator(f, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Fraction(positions, 40)
	}
}

// BenchmarkFractionIncremental measures the steady-state cost the
// incremental tracker pays per trace sample: one sensor moved a short
// step (two disk-window updates) followed by a Fraction query answered
// from the running histogram. Compare against BenchmarkFractionLOS,
// which re-scans every sensor's disk for the same answer.
func BenchmarkFractionIncremental(b *testing.B) {
	f, positions := losBenchSetup(b, 120)
	e := NewEstimator(f, 5)
	present := make([]bool, len(positions))
	for i := range present {
		present[i] = true
	}
	tr := e.AcquireTracker(40, len(positions))
	defer tr.Release()
	tr.Seed(positions, present, 1)
	home := positions[7]
	away := geom.V(home.X+3, home.Y+3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			tr.Set(7, away)
		} else {
			tr.Set(7, home)
		}
		tr.Fraction()
	}
}

// BenchmarkExclusiveArea measures FLOOR's movable-sensor test: exclusive
// coverage of 10 centers against 40 other sensors at the rs/8 sampling
// resolution phase 2 uses.
func BenchmarkExclusiveArea(b *testing.B) {
	f, positions := losBenchSetup(b, 50)
	centers, others := positions[:10], positions[10:]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range centers {
			ExclusiveArea(f, c, 40, others, 5)
		}
	}
}
