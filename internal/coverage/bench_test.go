package coverage

import (
	"math/rand/v2"
	"testing"

	"mobisense/internal/field"
	"mobisense/internal/geom"
)

// losBenchSetup builds a fixed obstacle-heavy field with free sensor
// positions for the line-of-sight coverage benchmarks.
func losBenchSetup(b *testing.B, nPos int) (*field.Field, []geom.Vec) {
	b.Helper()
	rng := rand.New(rand.NewPCG(3, 14))
	f, err := field.RandomObstacles(rng, field.RandomObstacleConfig{
		MinCount:  8,
		MaxCount:  8,
		MinSide:   80,
		MaxSide:   300,
		KeepClear: 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	positions := make([]geom.Vec, nPos)
	for i := range positions {
		positions[i] = f.RandomFreePoint(rng, f.Bounds())
	}
	return f, positions
}

// BenchmarkFractionLOS measures coverage estimation on an obstacle-heavy
// field, where every in-range cell pays a line-of-sight test — the
// dominant cost of obstacle-dense sweeps.
func BenchmarkFractionLOS(b *testing.B) {
	f, positions := losBenchSetup(b, 120)
	e := NewEstimator(f, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Fraction(positions, 40)
	}
}

// BenchmarkExclusiveArea measures FLOOR's movable-sensor test: exclusive
// coverage of 10 centers against 40 other sensors at the rs/8 sampling
// resolution phase 2 uses.
func BenchmarkExclusiveArea(b *testing.B) {
	f, positions := losBenchSetup(b, 50)
	centers, others := positions[:10], positions[10:]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range centers {
			ExclusiveArea(f, c, 40, others, 5)
		}
	}
}
