// Package coverage measures sensing coverage: the fraction of the free
// (non-obstacle) field area covered by at least one sensing disk (§4.3's
// metric), plus the exclusive-coverage estimate used by FLOOR's
// movable-sensor test (§5.3).
package coverage

import (
	"math"
	"sync"
	"sync/atomic"

	"mobisense/internal/field"
	"mobisense/internal/geom"
)

// Estimator measures coverage on a fixed grid over a field. Construct once
// per field/resolution and reuse; the free-space mask is precomputed.
//
// Estimators are safe for concurrent use: each evaluation borrows an
// epoch-stamped scratch grid from an internal pool, so repeated calls
// allocate nothing in the steady state even when many sweep workers share
// one estimator.
type Estimator struct {
	f     *field.Field
	res   float64
	nx    int
	ny    int
	cx    []float64 // precomputed cell-center x per column
	cy    []float64 // precomputed cell-center y per row
	free  []bool
	nFree int

	// pinned is a single pre-allocated scratch slot so the common case —
	// one evaluation at a time per estimator — never touches the pool.
	// sync.Pool may drop its contents at any GC, which shows up as a
	// ~240 KB re-allocation on the next call; the pinned slot makes
	// Fraction/KFraction deterministically allocation-free even for a
	// cold first call. Concurrent evaluations overflow into the pool.
	pinned   atomic.Pointer[gridScratch]
	scratch  sync.Pool // *gridScratch
	trackers sync.Pool // *Tracker
}

// gridScratch is a reusable evaluation grid. Instead of clearing nx*ny
// cells between calls, each call bumps the epoch; a cell is "set" when its
// stamp equals the current epoch. counts carries the per-cell disk counts
// for KFraction, valid only where the stamp is current. The probe scratch
// backs the per-sensor line-of-sight probes, so they allocate nothing in
// the steady state either.
type gridScratch struct {
	epoch  uint32
	stamps []uint32
	counts []int16
	probe  field.ProbeScratch
}

// next prepares the scratch for a fresh evaluation in O(1), falling back
// to an O(n) clear only when the 32-bit epoch wraps.
func (g *gridScratch) next() {
	g.epoch++
	if g.epoch == 0 {
		clear(g.stamps)
		g.epoch = 1
	}
}

// NewEstimator builds an estimator with the given grid resolution in
// meters. Smaller resolutions cost quadratically more per evaluation.
func NewEstimator(f *field.Field, res float64) *Estimator {
	if res <= 0 {
		res = 5
	}
	b := f.Bounds()
	e := &Estimator{
		f:   f,
		res: res,
		nx:  int(math.Ceil(b.W() / res)),
		ny:  int(math.Ceil(b.H() / res)),
	}
	e.cx = make([]float64, e.nx)
	for ix := range e.cx {
		e.cx[ix] = b.Min.X + (float64(ix)+0.5)*res
	}
	e.cy = make([]float64, e.ny)
	for iy := range e.cy {
		e.cy[iy] = b.Min.Y + (float64(iy)+0.5)*res
	}
	e.free = make([]bool, e.nx*e.ny)
	for iy := 0; iy < e.ny; iy++ {
		for ix := 0; ix < e.nx; ix++ {
			p := e.cellCenter(ix, iy)
			if b.Contains(p) && f.Free(p) {
				e.free[iy*e.nx+ix] = true
				e.nFree++
			}
		}
	}
	e.scratch.New = func() any {
		return &gridScratch{
			stamps: make([]uint32, len(e.free)),
			counts: make([]int16, len(e.free)),
		}
	}
	e.pinned.Store(e.scratch.New().(*gridScratch))
	return e
}

// getScratch borrows an evaluation grid, preferring the pinned slot.
func (e *Estimator) getScratch() *gridScratch {
	if g := e.pinned.Swap(nil); g != nil {
		return g
	}
	return e.scratch.Get().(*gridScratch)
}

// putScratch returns a grid borrowed with getScratch.
func (e *Estimator) putScratch(g *gridScratch) {
	if e.pinned.CompareAndSwap(nil, g) {
		return
	}
	e.scratch.Put(g)
}

func (e *Estimator) cellCenter(ix, iy int) geom.Vec {
	return geom.V(e.cx[ix], e.cy[iy])
}

// Resolution returns the grid resolution.
func (e *Estimator) Resolution() float64 { return e.res }

// FreeArea returns the estimated free (non-obstacle) area of the field.
func (e *Estimator) FreeArea() float64 {
	return float64(e.nFree) * e.res * e.res
}

// window is the clamped scan rectangle of grid cells a disk can touch.
type window struct{ ix0, ix1, iy0, iy1 int }

// fullWindow reports whether rs is so large that every position's scan
// window spans the whole grid, letting callers clamp once instead of per
// position.
func (e *Estimator) fullWindow(rs float64) bool {
	b := e.f.Bounds()
	return rs >= b.W()+e.res && rs >= b.H()+e.res
}

func (e *Estimator) windowAround(p geom.Vec, rs float64) window {
	b := e.f.Bounds()
	return window{
		ix0: clamp(int((p.X-rs-b.Min.X)/e.res), 0, e.nx-1),
		ix1: clamp(int((p.X+rs-b.Min.X)/e.res), 0, e.nx-1),
		iy0: clamp(int((p.Y-rs-b.Min.Y)/e.res), 0, e.ny-1),
		iy1: clamp(int((p.Y+rs-b.Min.Y)/e.res), 0, e.ny-1),
	}
}

// sensorLOS is the per-sensor line-of-sight context shared by every grid
// scan: Fraction, KFraction, the incremental Tracker's disk updates, and
// the row-sharded parallel seeder. Keeping the setup in one place is what
// makes the incremental engine bit-identical to the brute scans — they
// cannot disagree on which cells a sensor covers.
//
// The rewrites it encodes are exact: a disk probe narrows the edge set to
// the sensor's window, a blocked sensor (skip) sees no cell at all (every
// Visible test would fail on its Free(p) check), and a probe with no
// nearby solid edge makes every in-disk pair visible.
type sensorLOS struct {
	visTest  bool // per-cell visibility test still required
	useProbe bool // pr is active; use VisibleFree instead of f.Visible
	skip     bool // sensor covers no cell; skip it entirely
	pr       field.Probe
}

// losSetup prepares the line-of-sight context for one sensor at p. los
// must be len(f.Obstacles()) > 0, hoisted by the caller.
func (e *Estimator) losSetup(ps *field.ProbeScratch, p geom.Vec, rs float64, los bool) sensorLOS {
	s := sensorLOS{visTest: los}
	if !los {
		return s
	}
	s.pr = e.f.DiskProbe(ps, p, rs)
	if s.useProbe = s.pr.Active(); s.useProbe {
		if !e.f.Free(p) {
			s.skip = true
			return s
		}
		if s.pr.TriviallyVisible() {
			s.visTest = false
		}
	}
	return s
}

// sees reports whether the sensor at p has line of sight to cell center
// c. Callers check s.visTest first; when it is false no test is needed.
func (s *sensorLOS) sees(e *Estimator, p, c geom.Vec) bool {
	if s.useProbe {
		return s.pr.VisibleFree(p, c)
	}
	return e.f.Visible(p, c)
}

// Fraction returns the fraction of the free area covered by at least one
// disk of radius rs centered at the given positions. Sensing is
// line-of-sight: area behind an obstacle is not covered.
func (e *Estimator) Fraction(positions []geom.Vec, rs float64) float64 {
	if e.nFree == 0 {
		return 0
	}
	g := e.getScratch()
	defer e.putScratch(g)
	g.next()
	covered := g.stamps
	epoch := g.epoch
	count := 0
	rs2 := rs * rs
	los := len(e.f.Obstacles()) > 0
	full := e.fullWindow(rs)
	w := window{ix1: e.nx - 1, iy1: e.ny - 1}
	for _, p := range positions {
		if !full {
			w = e.windowAround(p, rs)
		}
		s := e.losSetup(&g.probe, p, rs, los)
		if s.skip {
			continue
		}
		for iy := w.iy0; iy <= w.iy1; iy++ {
			row := iy * e.nx
			cyv := e.cy[iy]
			for ix := w.ix0; ix <= w.ix1; ix++ {
				i := row + ix
				if covered[i] == epoch || !e.free[i] {
					continue
				}
				c := geom.V(e.cx[ix], cyv)
				if c.Dist2(p) > rs2 {
					continue
				}
				if s.visTest && !s.sees(e, p, c) {
					continue
				}
				covered[i] = epoch
				count++
			}
		}
		if count == e.nFree {
			return 1
		}
	}
	return float64(count) / float64(e.nFree)
}

// CoveredArea returns the covered free area in square meters.
func (e *Estimator) CoveredArea(positions []geom.Vec, rs float64) float64 {
	return e.Fraction(positions, rs) * e.FreeArea()
}

// KFraction returns the fraction of the free area covered by at least k
// sensing disks (k-coverage, the "higher degree of coverage" the paper's
// §7 names as future work). KFraction(p, rs, 1) equals Fraction(p, rs).
func (e *Estimator) KFraction(positions []geom.Vec, rs float64, k int) float64 {
	if e.nFree == 0 || k <= 0 {
		return 0
	}
	g := e.getScratch()
	defer e.putScratch(g)
	g.next()
	epoch := g.epoch
	rs2 := rs * rs
	los := len(e.f.Obstacles()) > 0
	full := e.fullWindow(rs)
	w := window{ix1: e.nx - 1, iy1: e.ny - 1}
	for _, p := range positions {
		if !full {
			w = e.windowAround(p, rs)
		}
		s := e.losSetup(&g.probe, p, rs, los)
		if s.skip {
			continue
		}
		for iy := w.iy0; iy <= w.iy1; iy++ {
			row := iy * e.nx
			cyv := e.cy[iy]
			for ix := w.ix0; ix <= w.ix1; ix++ {
				i := row + ix
				if !e.free[i] {
					continue
				}
				c := geom.V(e.cx[ix], cyv)
				if c.Dist2(p) > rs2 {
					continue
				}
				if s.visTest && !s.sees(e, p, c) {
					continue
				}
				if g.stamps[i] != epoch {
					g.stamps[i] = epoch
					g.counts[i] = 0
				}
				g.counts[i]++
			}
		}
	}
	covered := 0
	for i := range e.free {
		if e.free[i] && g.stamps[i] == epoch && int(g.counts[i]) >= k {
			covered++
		}
	}
	return float64(covered) / float64(e.nFree)
}

// ExclusiveArea estimates the free area covered (with line of sight) by a
// disk of radius rs at center and by no disk at any of the others (§5.3: a
// sensor becomes movable only when the area it covers exclusively is below
// a threshold). The estimate samples the disk on a local window of the
// given resolution; no per-call grid is materialized.
func ExclusiveArea(f *field.Field, center geom.Vec, rs float64, others []geom.Vec, res float64) float64 {
	return exclusiveArea(f, center, rs, others, res, math.Inf(1))
}

// ExclusiveAreaBelow reports whether ExclusiveArea(f, center, rs, others,
// res) < limit, stopping the scan as soon as the accumulated area reaches
// the limit. The result is exact — the sampled area only ever grows, so
// once it reaches limit the full scan's verdict is already determined —
// which is what lets FLOOR's movable-sensor test (excl < threshold) skip
// most of the disk for sensors that are clearly not movable.
func ExclusiveAreaBelow(f *field.Field, center geom.Vec, rs float64, others []geom.Vec, res, limit float64) bool {
	if !IncrementalEnabled() {
		return ExclusiveArea(f, center, rs, others, res) < limit
	}
	return exclusiveArea(f, center, rs, others, res, limit) < limit
}

// exclusiveArea runs the exclusive-coverage scan, returning early once the
// accumulated area reaches limit (pass +Inf for a full scan).
func exclusiveArea(f *field.Field, center geom.Vec, rs float64, others []geom.Vec, res, limit float64) float64 {
	if res <= 0 {
		res = rs / 10
	}
	sc := exclScratch.Get().(*exclusiveScratch)
	defer exclScratch.Put(sc)
	// The probe disk must cover every segment the sampling loop tests:
	// center→p stays within rs of the center, and o→p within 2·rs (both
	// endpoints do).
	if pr := f.DiskProbe(&sc.probe, center, 2*rs); pr.Active() {
		return exclusiveAreaFast(f, center, rs, others, res, limit, sc, pr)
	}
	rs2 := rs * rs
	los := len(f.Obstacles()) > 0
	count := 0
	for y := center.Y - rs; y <= center.Y+rs; y += res {
		for x := center.X - rs; x <= center.X+rs; x += res {
			p := geom.V(x, y)
			if p.Dist2(center) > rs2 || !f.Bounds().Contains(p) || !f.Free(p) {
				continue
			}
			if los && !f.Visible(center, p) {
				continue
			}
			exclusive := true
			for _, o := range others {
				if p.Dist2(o) <= rs2 && (!los || f.Visible(o, p)) {
					exclusive = false
					break
				}
			}
			if exclusive {
				count++
				if float64(count)*res*res >= limit {
					return float64(count) * res * res
				}
			}
		}
	}
	return float64(count) * res * res
}

// exclusiveScratch pools the reusable buffers of ExclusiveArea, which is
// called once per sensor per FLOOR period across concurrent sweep
// workers.
type exclusiveScratch struct {
	probe field.ProbeScratch
	near  []geom.Vec
}

var exclScratch = sync.Pool{New: func() any { return new(exclusiveScratch) }}

// exclusiveAreaFast is ExclusiveArea on the probe-accelerated path. It is
// an exact rewrite of the brute loop above:
//   - a blocked center sees no sample (each Visible(center, p) would fail
//     its Free check), so the whole call returns 0;
//   - only others within 2·rs of the center can pass the sample test
//     p.Dist2(o) <= rs² for a sample within rs of the center (triangle
//     inequality, with a guard band far wider than float rounding), and
//     in LOS mode a blocked other can never see any sample — the filter
//     keeps order, so the first-match break is unchanged;
//   - Bounds().Contains is dropped because Free implies it;
//   - per-pair Visible calls become in-probe VisibleFree calls, and are
//     skipped wholesale when no solid edge is near the disk.
func exclusiveAreaFast(f *field.Field, center geom.Vec, rs float64, others []geom.Vec, res, limit float64, sc *exclusiveScratch, pr field.Probe) float64 {
	rs2 := rs * rs
	los := len(f.Obstacles()) > 0
	if los && !f.Free(center) {
		return 0
	}
	reach := 2*rs + 1e-6
	reach2 := reach * reach
	near := sc.near[:0]
	for _, o := range others {
		if o.Dist2(center) > reach2 {
			continue
		}
		if los && !pr.FreeInDisk(o) {
			continue
		}
		near = append(near, o)
	}
	sc.near = near
	visTest := los && !pr.TriviallyVisible()
	count := 0
	for y := center.Y - rs; y <= center.Y+rs; y += res {
		for x := center.X - rs; x <= center.X+rs; x += res {
			p := geom.V(x, y)
			if p.Dist2(center) > rs2 || !pr.FreeInDisk(p) {
				continue
			}
			if visTest && !pr.VisibleFree(center, p) {
				continue
			}
			exclusive := true
			for _, o := range near {
				if p.Dist2(o) <= rs2 && (!visTest || pr.VisibleFree(o, p)) {
					exclusive = false
					break
				}
			}
			if exclusive {
				count++
				if float64(count)*res*res >= limit {
					return float64(count) * res * res
				}
			}
		}
	}
	return float64(count) * res * res
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
