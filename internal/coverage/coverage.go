// Package coverage measures sensing coverage: the fraction of the free
// (non-obstacle) field area covered by at least one sensing disk (§4.3's
// metric), plus the exclusive-coverage estimate used by FLOOR's
// movable-sensor test (§5.3).
package coverage

import (
	"math"

	"mobisense/internal/field"
	"mobisense/internal/geom"
)

// Estimator measures coverage on a fixed grid over a field. Construct once
// per field/resolution and reuse; the free-space mask is precomputed.
type Estimator struct {
	f     *field.Field
	res   float64
	nx    int
	ny    int
	free  []bool
	nFree int
}

// NewEstimator builds an estimator with the given grid resolution in
// meters. Smaller resolutions cost quadratically more per evaluation.
func NewEstimator(f *field.Field, res float64) *Estimator {
	if res <= 0 {
		res = 5
	}
	b := f.Bounds()
	e := &Estimator{
		f:   f,
		res: res,
		nx:  int(math.Ceil(b.W() / res)),
		ny:  int(math.Ceil(b.H() / res)),
	}
	e.free = make([]bool, e.nx*e.ny)
	for iy := 0; iy < e.ny; iy++ {
		for ix := 0; ix < e.nx; ix++ {
			p := e.cellCenter(ix, iy)
			if b.Contains(p) && f.Free(p) {
				e.free[iy*e.nx+ix] = true
				e.nFree++
			}
		}
	}
	return e
}

func (e *Estimator) cellCenter(ix, iy int) geom.Vec {
	b := e.f.Bounds()
	return geom.V(b.Min.X+(float64(ix)+0.5)*e.res, b.Min.Y+(float64(iy)+0.5)*e.res)
}

// Resolution returns the grid resolution.
func (e *Estimator) Resolution() float64 { return e.res }

// FreeArea returns the estimated free (non-obstacle) area of the field.
func (e *Estimator) FreeArea() float64 {
	return float64(e.nFree) * e.res * e.res
}

// Fraction returns the fraction of the free area covered by at least one
// disk of radius rs centered at the given positions. Sensing is
// line-of-sight: area behind an obstacle is not covered.
func (e *Estimator) Fraction(positions []geom.Vec, rs float64) float64 {
	if e.nFree == 0 {
		return 0
	}
	covered := make([]bool, len(e.free))
	count := 0
	b := e.f.Bounds()
	rs2 := rs * rs
	los := len(e.f.Obstacles()) > 0
	for _, p := range positions {
		ix0 := clamp(int((p.X-rs-b.Min.X)/e.res), 0, e.nx-1)
		ix1 := clamp(int((p.X+rs-b.Min.X)/e.res), 0, e.nx-1)
		iy0 := clamp(int((p.Y-rs-b.Min.Y)/e.res), 0, e.ny-1)
		iy1 := clamp(int((p.Y+rs-b.Min.Y)/e.res), 0, e.ny-1)
		for iy := iy0; iy <= iy1; iy++ {
			for ix := ix0; ix <= ix1; ix++ {
				i := iy*e.nx + ix
				if covered[i] || !e.free[i] {
					continue
				}
				c := e.cellCenter(ix, iy)
				if c.Dist2(p) > rs2 {
					continue
				}
				if los && !e.f.Visible(p, c) {
					continue
				}
				covered[i] = true
				count++
			}
		}
	}
	return float64(count) / float64(e.nFree)
}

// CoveredArea returns the covered free area in square meters.
func (e *Estimator) CoveredArea(positions []geom.Vec, rs float64) float64 {
	return e.Fraction(positions, rs) * e.FreeArea()
}

// KFraction returns the fraction of the free area covered by at least k
// sensing disks (k-coverage, the "higher degree of coverage" the paper's
// §7 names as future work). KFraction(p, rs, 1) equals Fraction(p, rs).
func (e *Estimator) KFraction(positions []geom.Vec, rs float64, k int) float64 {
	if e.nFree == 0 || k <= 0 {
		return 0
	}
	counts := make([]int16, len(e.free))
	b := e.f.Bounds()
	rs2 := rs * rs
	los := len(e.f.Obstacles()) > 0
	for _, p := range positions {
		ix0 := clamp(int((p.X-rs-b.Min.X)/e.res), 0, e.nx-1)
		ix1 := clamp(int((p.X+rs-b.Min.X)/e.res), 0, e.nx-1)
		iy0 := clamp(int((p.Y-rs-b.Min.Y)/e.res), 0, e.ny-1)
		iy1 := clamp(int((p.Y+rs-b.Min.Y)/e.res), 0, e.ny-1)
		for iy := iy0; iy <= iy1; iy++ {
			for ix := ix0; ix <= ix1; ix++ {
				i := iy*e.nx + ix
				if !e.free[i] {
					continue
				}
				c := e.cellCenter(ix, iy)
				if c.Dist2(p) > rs2 {
					continue
				}
				if los && !e.f.Visible(p, c) {
					continue
				}
				counts[i]++
			}
		}
	}
	covered := 0
	for i, n := range counts {
		if e.free[i] && int(n) >= k {
			covered++
		}
	}
	return float64(covered) / float64(e.nFree)
}

// ExclusiveArea estimates the free area covered (with line of sight) by a
// disk of radius rs at center and by no disk at any of the others (§5.3: a
// sensor becomes movable only when the area it covers exclusively is below
// a threshold). The estimate samples the disk on a grid of the given
// resolution.
func ExclusiveArea(f *field.Field, center geom.Vec, rs float64, others []geom.Vec, res float64) float64 {
	if res <= 0 {
		res = rs / 10
	}
	rs2 := rs * rs
	los := len(f.Obstacles()) > 0
	count := 0
	for y := center.Y - rs; y <= center.Y+rs; y += res {
		for x := center.X - rs; x <= center.X+rs; x += res {
			p := geom.V(x, y)
			if p.Dist2(center) > rs2 || !f.Bounds().Contains(p) || !f.Free(p) {
				continue
			}
			if los && !f.Visible(center, p) {
				continue
			}
			exclusive := true
			for _, o := range others {
				if p.Dist2(o) <= rs2 && (!los || f.Visible(o, p)) {
					exclusive = false
					break
				}
			}
			if exclusive {
				count++
			}
		}
	}
	return float64(count) * res * res
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
