package coverage

import (
	"math"
	"testing"

	"mobisense/internal/field"
	"mobisense/internal/geom"
)

func TestFractionSingleDisk(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 100, 100), nil)
	e := NewEstimator(f, 1)
	got := e.Fraction([]geom.Vec{geom.V(50, 50)}, 20)
	want := math.Pi * 400 / 10000
	if math.Abs(got-want) > 0.01 {
		t.Errorf("fraction = %v, want ~%v", got, want)
	}
}

func TestFractionEmptyAndFull(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 100, 100), nil)
	e := NewEstimator(f, 2)
	if got := e.Fraction(nil, 20); got != 0 {
		t.Errorf("no sensors: fraction = %v", got)
	}
	if got := e.Fraction([]geom.Vec{geom.V(50, 50)}, 100); got != 1 {
		t.Errorf("giant disk: fraction = %v", got)
	}
}

func TestFractionIgnoresObstacleArea(t *testing.T) {
	// Obstacle occupies the NE quadrant; a disk covering only the obstacle
	// contributes nothing.
	f := field.MustNew(geom.R(0, 0, 100, 100),
		[]geom.Polygon{geom.R(50, 50, 100, 100).Polygon()})
	e := NewEstimator(f, 1)
	if got := e.Fraction([]geom.Vec{geom.V(80, 80)}, 15); got > 0.001 {
		t.Errorf("disk inside obstacle: fraction = %v, want ~0", got)
	}
	// The free area is 3/4 of the field.
	if got := e.FreeArea(); math.Abs(got-7500) > 150 {
		t.Errorf("free area = %v, want ~7500", got)
	}
	// A disk of radius 100 at the origin covers all free space.
	if got := e.Fraction([]geom.Vec{geom.V(0, 0)}, 150); got != 1 {
		t.Errorf("full cover fraction = %v", got)
	}
}

func TestFractionDuplicateSensorsNoDoubleCount(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 100, 100), nil)
	e := NewEstimator(f, 1)
	one := e.Fraction([]geom.Vec{geom.V(30, 30)}, 10)
	two := e.Fraction([]geom.Vec{geom.V(30, 30), geom.V(30, 30)}, 10)
	if one != two {
		t.Errorf("duplicate sensor changed fraction: %v vs %v", one, two)
	}
}

func TestFractionMonotoneInSensors(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 100, 100), nil)
	e := NewEstimator(f, 2)
	a := e.Fraction([]geom.Vec{geom.V(25, 25)}, 15)
	b := e.Fraction([]geom.Vec{geom.V(25, 25), geom.V(75, 75)}, 15)
	if b < a {
		t.Errorf("adding a sensor reduced coverage: %v -> %v", a, b)
	}
}

func TestCoveredArea(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 100, 100), nil)
	e := NewEstimator(f, 1)
	got := e.CoveredArea([]geom.Vec{geom.V(50, 50)}, 10)
	want := math.Pi * 100
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("covered area = %v, want ~%v", got, want)
	}
}

func TestExclusiveArea(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 200, 200), nil)
	center := geom.V(100, 100)

	t.Run("alone", func(t *testing.T) {
		got := ExclusiveArea(f, center, 20, nil, 1)
		want := math.Pi * 400
		if math.Abs(got-want) > 0.05*want {
			t.Errorf("exclusive = %v, want ~%v", got, want)
		}
	})

	t.Run("fully duplicated", func(t *testing.T) {
		got := ExclusiveArea(f, center, 20, []geom.Vec{center}, 1)
		if got != 0 {
			t.Errorf("exclusive = %v, want 0", got)
		}
	})

	t.Run("half overlapped", func(t *testing.T) {
		alone := ExclusiveArea(f, center, 20, nil, 1)
		got := ExclusiveArea(f, center, 20, []geom.Vec{geom.V(120, 100)}, 1)
		if got >= alone || got <= 0 {
			t.Errorf("partial overlap exclusive = %v (alone %v)", got, alone)
		}
	})

	t.Run("clipped by field boundary", func(t *testing.T) {
		corner := ExclusiveArea(f, geom.V(0, 0), 20, nil, 1)
		want := math.Pi * 400 / 4
		if math.Abs(corner-want) > 0.1*want {
			t.Errorf("corner exclusive = %v, want ~%v", corner, want)
		}
	})
}

func TestEstimatorDefaultResolution(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 100, 100), nil)
	e := NewEstimator(f, 0)
	if e.Resolution() != 5 {
		t.Errorf("default resolution = %v", e.Resolution())
	}
}

func TestKFraction(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 100, 100), nil)
	e := NewEstimator(f, 1)
	a := geom.V(45, 50)
	b := geom.V(55, 50)

	t.Run("k=1 equals Fraction", func(t *testing.T) {
		pos := []geom.Vec{a, b}
		if k1, fr := e.KFraction(pos, 20, 1), e.Fraction(pos, 20); k1 != fr {
			t.Errorf("KFraction(1)=%v != Fraction=%v", k1, fr)
		}
	})

	t.Run("k=2 is the overlap lens", func(t *testing.T) {
		got := e.KFraction([]geom.Vec{a, b}, 20, 2)
		// Two r=20 disks at distance 10: lens area = 2r²·acos(d/2r) − (d/2)·sqrt(4r²−d²).
		lens := 2*400*math.Acos(10.0/40) - 5*math.Sqrt(4*400-100)
		want := lens / 10000
		if math.Abs(got-want) > 0.01 {
			t.Errorf("k=2 fraction = %v, want ~%v", got, want)
		}
	})

	t.Run("k beyond sensors is zero", func(t *testing.T) {
		if got := e.KFraction([]geom.Vec{a, b}, 20, 3); got != 0 {
			t.Errorf("k=3 with two sensors = %v", got)
		}
	})

	t.Run("monotone in k", func(t *testing.T) {
		pos := []geom.Vec{a, b, geom.V(50, 55), geom.V(50, 45)}
		prev := 2.0
		for k := 1; k <= 4; k++ {
			cur := e.KFraction(pos, 20, k)
			if cur > prev {
				t.Errorf("KFraction not monotone at k=%d: %v > %v", k, cur, prev)
			}
			prev = cur
		}
	})

	t.Run("invalid k", func(t *testing.T) {
		if e.KFraction([]geom.Vec{a}, 20, 0) != 0 {
			t.Error("k=0 should be 0")
		}
	})
}
