package coverage

import (
	"os"
	"sync"
	"sync/atomic"

	"mobisense/internal/field"
	"mobisense/internal/geom"
)

// incrEnabled gates the incremental coverage engine at run time. It
// exists for A/B verification (the engine must be bit-identical to the
// brute-force estimator, and tests prove it by flipping this off) and as
// an operational kill switch: set MOBISENSE_NO_INCR=1 to force every
// consumer back onto the full-rescan paths.
var incrEnabled = os.Getenv("MOBISENSE_NO_INCR") != "1"

// SetIncrementalEnabled turns the incremental coverage engine on or off
// globally and returns the previous setting. Intended for tests:
//
//	defer coverage.SetIncrementalEnabled(coverage.SetIncrementalEnabled(false))
func SetIncrementalEnabled(on bool) bool {
	prev := incrEnabled
	incrEnabled = on
	return prev
}

// IncrementalEnabled reports whether the incremental engine is active.
func IncrementalEnabled() bool { return incrEnabled }

// Tracker maintains per-cell integer cover counts for a set of sensors so
// coverage queries become O(1) reads of running totals instead of full
// grid rescans. Seed it once with a full evaluation, then keep it current
// with Set/Clear as sensors move, die, or recover: each update rescans
// only the moved sensor's disk window (subtract the old disk's cells, add
// the new ones) through exactly the same per-cell predicate the
// brute-force Fraction/KFraction scans use — identical integer counts, so
// the returned fractions are bit-identical to a fresh evaluation.
//
// A Tracker belongs to one goroutine at a time; concurrent runs each
// acquire their own from the estimator's pool.
type Tracker struct {
	e       *Estimator
	rs      float64
	counts  []int32    // per-cell cover count (free cells only)
	hist    []int32    // hist[c] = number of free cells covered by exactly c disks
	pos     []geom.Vec // last applied position per sensor id
	present []bool     // sensor id currently contributes a disk
	probe   field.ProbeScratch
}

// AcquireTracker borrows a tracker for disks of radius rs over n sensor
// ids (0..n-1), reset to the empty state. Release it when the run ends.
func (e *Estimator) AcquireTracker(rs float64, n int) *Tracker {
	t, _ := e.trackers.Get().(*Tracker)
	if t == nil {
		t = &Tracker{e: e, counts: make([]int32, len(e.free))}
	}
	t.rs = rs
	t.reset(n)
	return t
}

// Release returns the tracker to its estimator's pool.
func (t *Tracker) Release() { t.e.trackers.Put(t) }

// reset clears the tracker to "no sensors present" for n sensor ids.
func (t *Tracker) reset(n int) {
	clear(t.counts)
	if cap(t.hist) < 1 {
		t.hist = make([]int32, 1, 8)
	}
	t.hist = t.hist[:1]
	clear(t.hist)
	t.hist[0] = int32(t.e.nFree)
	if cap(t.pos) < n {
		t.pos = make([]geom.Vec, n)
		t.present = make([]bool, n)
	}
	t.pos = t.pos[:n]
	t.present = t.present[:n]
	clear(t.present)
}

// shift moves one free cell from exact cover count old to new in the
// histogram.
func (t *Tracker) shift(old, new int32) {
	t.hist[old]--
	for int(new) >= len(t.hist) {
		t.hist = append(t.hist, 0)
	}
	t.hist[new]++
}

// coveredAtLeast returns the number of free cells covered by at least k
// disks — the same integer the brute-force scans count.
func (t *Tracker) coveredAtLeast(k int) int {
	cov := t.e.nFree
	for c := 0; c < k && c < len(t.hist); c++ {
		cov -= int(t.hist[c])
	}
	return cov
}

// Fraction answers Estimator.Fraction for the tracked sensor set from the
// running counts.
func (t *Tracker) Fraction() float64 {
	if t.e.nFree == 0 {
		return 0
	}
	return float64(t.coveredAtLeast(1)) / float64(t.e.nFree)
}

// KFraction answers Estimator.KFraction for the tracked sensor set from
// the running counts.
func (t *Tracker) KFraction(k int) float64 {
	if t.e.nFree == 0 || k <= 0 {
		return 0
	}
	return float64(t.coveredAtLeast(k)) / float64(t.e.nFree)
}

// Set places (or moves) sensor id at p, updating only the affected disk
// windows. A no-op when the sensor is already present at exactly p.
func (t *Tracker) Set(id int, p geom.Vec) {
	if t.present[id] && t.pos[id] == p {
		return
	}
	if t.present[id] {
		t.disk(t.pos[id], -1)
	}
	t.disk(p, +1)
	t.pos[id] = p
	t.present[id] = true
}

// UpdateCost returns the number of disk-window scans Set (with
// present=true) or Clear (present=false) would perform to bring sensor id
// to the given state: 0 when the tracker already has it, 1 for an
// appearance or disappearance, 2 for a move. Callers batching many
// updates can sum these to decide between incremental application and a
// full re-Seed (which costs one scan per present sensor).
func (t *Tracker) UpdateCost(id int, p geom.Vec, present bool) int {
	switch {
	case !present:
		if !t.present[id] {
			return 0
		}
		return 1
	case !t.present[id]:
		return 1
	case t.pos[id] == p:
		return 0
	default:
		return 2
	}
}

// Clear removes sensor id (failed or departed) from the tracked set.
func (t *Tracker) Clear(id int) {
	if !t.present[id] {
		return
	}
	t.disk(t.pos[id], -1)
	t.present[id] = false
}

// disk applies delta d (+1 or -1) to every free cell covered by a disk at
// p. The per-cell predicate — window clamp, free mask, distance, LOS via
// losSetup/sees — mirrors the brute-force scans exactly; removal is exact
// because the same position always yields the same cell set.
func (t *Tracker) disk(p geom.Vec, d int32) {
	e := t.e
	rs := t.rs
	w := window{ix1: e.nx - 1, iy1: e.ny - 1}
	if !e.fullWindow(rs) {
		w = e.windowAround(p, rs)
	}
	los := len(e.f.Obstacles()) > 0
	s := e.losSetup(&t.probe, p, rs, los)
	if s.skip {
		return
	}
	rs2 := rs * rs
	for iy := w.iy0; iy <= w.iy1; iy++ {
		row := iy * e.nx
		cyv := e.cy[iy]
		for ix := w.ix0; ix <= w.ix1; ix++ {
			i := row + ix
			if !e.free[i] {
				continue
			}
			c := geom.V(e.cx[ix], cyv)
			if c.Dist2(p) > rs2 {
				continue
			}
			if s.visTest && !s.sees(e, p, c) {
				continue
			}
			old := t.counts[i]
			t.counts[i] = old + d
			t.shift(old, old+d)
		}
	}
}

// seedBandRows is the fixed height of one row band of the parallel
// seeder. Fixed bands (not per-worker splits) are what make the result
// independent of the worker count: each band's rows are touched by
// exactly one goroutine, and integer increments over disjoint rows
// commute.
const seedBandRows = 16

// Seed performs the one full evaluation that initializes the counts:
// sensor i is placed at positions[i] when present[i] (a nil present means
// all). Rows are split into fixed bands fanned over at most workers
// goroutines; the counts — and therefore every subsequent query — are
// bit-identical at any worker count.
func (t *Tracker) Seed(positions []geom.Vec, present []bool, workers int) {
	t.reset(len(positions))
	for i, p := range positions {
		if present != nil && !present[i] {
			continue
		}
		t.pos[i] = p
		t.present[i] = true
	}
	bands := (t.e.ny + seedBandRows - 1) / seedBandRows
	if workers > bands {
		workers = bands
	}
	if workers <= 1 {
		// Serial seeding maintains the histogram inline (counts only
		// ever increment during a seed, so each cell walks hist exactly
		// as rebuildHist would recount it). That keeps re-seeds — the
		// high-churn path of a tracker syncing a converging fleet — free
		// of the full-grid rebuild scan.
		t.seedBand(0, t.e.ny, &t.probe, true)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ps field.ProbeScratch
			for {
				b := int(next.Add(1)) - 1
				if b >= bands {
					return
				}
				r1 := (b + 1) * seedBandRows
				if r1 > t.e.ny {
					r1 = t.e.ny
				}
				t.seedBand(b*seedBandRows, r1, &ps, false)
			}
		}()
	}
	wg.Wait()
	t.rebuildHist()
}

// seedBand accumulates cover counts for rows [r0, r1) across all present
// sensors. Same per-cell predicate as disk. With trackHist the histogram
// is shifted per cell (single-goroutine callers only); otherwise counts
// only, and the caller rebuilds the histogram after all bands finish.
func (t *Tracker) seedBand(r0, r1 int, ps *field.ProbeScratch, trackHist bool) {
	e := t.e
	rs := t.rs
	rs2 := rs * rs
	los := len(e.f.Obstacles()) > 0
	full := e.fullWindow(rs)
	for id, p := range t.pos {
		if !t.present[id] {
			continue
		}
		w := window{ix1: e.nx - 1, iy1: e.ny - 1}
		if !full {
			w = e.windowAround(p, rs)
		}
		iy0, iy1 := w.iy0, w.iy1
		if iy0 < r0 {
			iy0 = r0
		}
		if iy1 >= r1 {
			iy1 = r1 - 1
		}
		if iy0 > iy1 {
			continue
		}
		s := e.losSetup(ps, p, rs, los)
		if s.skip {
			continue
		}
		for iy := iy0; iy <= iy1; iy++ {
			row := iy * e.nx
			cyv := e.cy[iy]
			for ix := w.ix0; ix <= w.ix1; ix++ {
				i := row + ix
				if !e.free[i] {
					continue
				}
				c := geom.V(e.cx[ix], cyv)
				if c.Dist2(p) > rs2 {
					continue
				}
				if s.visTest && !s.sees(e, p, c) {
					continue
				}
				old := t.counts[i]
				t.counts[i] = old + 1
				if trackHist {
					t.shift(old, old+1)
				}
			}
		}
	}
}

// rebuildHist recomputes the exact-count histogram from the counts array
// after a bulk seed.
func (t *Tracker) rebuildHist() {
	t.hist = t.hist[:1]
	clear(t.hist)
	for i, free := range t.e.free {
		if !free {
			continue
		}
		c := t.counts[i]
		for int(c) >= len(t.hist) {
			t.hist = append(t.hist, 0)
		}
		t.hist[c]++
	}
}
