package coverage

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"mobisense/internal/field"
	"mobisense/internal/geom"
)

// The incremental engine's contract is bit-identity with the brute-force
// estimator. These tests drive randomized move/fail/recover/teleport
// sequences — including sensors crossing obstacle boundaries and leaving
// the field entirely — and A/B every resulting state against fresh
// full-scan evaluations.

// trackerState is everything a soak step asserts on: the running
// fractions and the raw per-cell counts.
type trackerState struct {
	frac  float64
	k2    float64
	k3    float64
	alive []geom.Vec
}

func trimHist(h []int32) []int32 {
	for len(h) > 0 && h[len(h)-1] == 0 {
		h = h[:len(h)-1]
	}
	return h
}

func bruteState(e *Estimator, rs float64, pos []geom.Vec, present []bool) trackerState {
	alive := make([]geom.Vec, 0, len(pos))
	for i, p := range pos {
		if present[i] {
			alive = append(alive, p)
		}
	}
	return trackerState{
		frac:  e.Fraction(alive, rs),
		k2:    e.KFraction(alive, rs, 2),
		k3:    e.KFraction(alive, rs, 3),
		alive: alive,
	}
}

// soak runs one randomized sequence against one field and fails on the
// first divergence between the incremental tracker and fresh brute-force
// evaluations.
func soak(t *testing.T, rng *rand.Rand, f *field.Field, steps int) {
	t.Helper()
	e := NewEstimator(f, 10)
	n := 6 + rng.IntN(10)
	rs := 20 + rng.Float64()*50
	b := f.Bounds()

	pos := make([]geom.Vec, n)
	present := make([]bool, n)
	for i := range pos {
		pos[i] = abPositions(rng, f, 1)[0]
		present[i] = rng.IntN(4) != 0
	}
	tr := e.AcquireTracker(rs, n)
	defer tr.Release()
	tr.Seed(pos, present, 1+rng.IntN(4))

	randomPoint := func() geom.Vec {
		switch rng.IntN(4) {
		case 0:
			// Off-field teleports and points inside obstacles: the
			// tracker must handle sensors that cover nothing.
			return geom.V(b.Min.X+rng.Float64()*3*b.W()-b.W(), b.Min.Y+rng.Float64()*3*b.H()-b.H())
		default:
			return f.RandomFreePoint(rng, b)
		}
	}

	for step := 0; step < steps; step++ {
		id := rng.IntN(n)
		switch rng.IntN(5) {
		case 0: // fail
			tr.Clear(id)
			present[id] = false
		case 1: // recover in place or at a new spot
			pos[id] = randomPoint()
			tr.Set(id, pos[id])
			present[id] = true
		case 2: // small move: disks overlap heavily across the update
			pos[id] = pos[id].Add(geom.V(rng.Float64()*10-5, rng.Float64()*10-5))
			tr.Set(id, pos[id])
			present[id] = true
		default: // teleport anywhere, possibly across obstacles / off field
			pos[id] = randomPoint()
			tr.Set(id, pos[id])
			present[id] = true
		}

		want := bruteState(e, rs, pos, present)
		if tr.Fraction() != want.frac || tr.KFraction(2) != want.k2 || tr.KFraction(3) != want.k3 {
			t.Fatalf("step %d: tracker (%v, %v, %v) != brute (%v, %v, %v) with %d alive",
				step, tr.Fraction(), tr.KFraction(2), tr.KFraction(3),
				want.frac, want.k2, want.k3, len(want.alive))
		}
		// Every few steps, also compare the full counts grid against a
		// freshly seeded tracker — stronger than the fractions alone.
		if step%7 == 0 {
			fresh := e.AcquireTracker(rs, n)
			fresh.Seed(pos, present, 1)
			if !reflect.DeepEqual(tr.counts, fresh.counts) {
				t.Fatalf("step %d: incremental counts diverged from fresh seed", step)
			}
			// The incremental histogram may carry trailing zero buckets
			// from departed sensors; only the populated prefix is
			// meaningful.
			if !reflect.DeepEqual(trimHist(tr.hist), trimHist(fresh.hist)) {
				t.Fatalf("step %d: incremental histogram diverged from fresh seed", step)
			}
			fresh.Release()
		}
	}
}

func TestTrackerSoakObstacleFields(t *testing.T) {
	rng := rand.New(rand.NewPCG(1001, 7))
	for trial := 0; trial < 6; trial++ {
		soak(t, rng, abRandomField(t, rng), 60)
	}
}

func TestTrackerSoakFreeField(t *testing.T) {
	rng := rand.New(rand.NewPCG(1002, 7))
	f := field.MustNew(geom.R(0, 0, 700, 500), nil)
	for trial := 0; trial < 4; trial++ {
		soak(t, rng, f, 60)
	}
}

func TestTrackerSoakAccelDisabled(t *testing.T) {
	// The tracker must mirror the brute predicate on the non-probe LOS
	// fallback too.
	defer field.SetAccelEnabled(field.SetAccelEnabled(false))
	rng := rand.New(rand.NewPCG(1003, 7))
	for trial := 0; trial < 3; trial++ {
		soak(t, rng, abRandomField(t, rng), 40)
	}
}

// TestTrackerSeedParallelDeepEqual pins the row-sharded seeder's
// determinism: the counts, histogram, and fractions must be DeepEqual at
// any worker count.
func TestTrackerSeedParallelDeepEqual(t *testing.T) {
	rng := rand.New(rand.NewPCG(1004, 7))
	for trial := 0; trial < 4; trial++ {
		f := abRandomField(t, rng)
		e := NewEstimator(f, 5)
		positions := abPositions(rng, f, 10+rng.IntN(40))
		rs := 20 + rng.Float64()*40

		ref := e.AcquireTracker(rs, len(positions))
		ref.Seed(positions, nil, 1)
		for _, workers := range []int{2, 4, 16, 64} {
			tr := e.AcquireTracker(rs, len(positions))
			tr.Seed(positions, nil, workers)
			if !reflect.DeepEqual(ref.counts, tr.counts) {
				t.Fatalf("workers=%d: counts differ from serial seed", workers)
			}
			if !reflect.DeepEqual(ref.hist, tr.hist) {
				t.Fatalf("workers=%d: histogram differs from serial seed", workers)
			}
			if tr.Fraction() != ref.Fraction() || tr.KFraction(2) != ref.KFraction(2) {
				t.Fatalf("workers=%d: fractions differ from serial seed", workers)
			}
			tr.Release()
		}
		// The seeded state must also agree with the brute-force scans.
		if got, want := ref.Fraction(), e.Fraction(positions, rs); got != want {
			t.Fatalf("seeded Fraction %v != brute %v", got, want)
		}
		if got, want := ref.KFraction(2), e.KFraction(positions, rs, 2); got != want {
			t.Fatalf("seeded KFraction %v != brute %v", got, want)
		}
		ref.Release()
	}
}

// TestExclusiveAreaBelowMatchesFull pins the early-exit variant to the
// full scan's verdict on randomized inputs, on both sides of the limit
// and with the engine disabled.
func TestExclusiveAreaBelowMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewPCG(1005, 7))
	for trial := 0; trial < 5; trial++ {
		f := abRandomField(t, rng)
		pts := abPositions(rng, f, 12)
		center, others := pts[0], pts[1:]
		rs := 20 + rng.Float64()*40
		full := ExclusiveArea(f, center, rs, others, rs/8)
		for _, limit := range []float64{0, full * 0.5, full, full*1.5 + 1, 1e12} {
			want := full < limit
			if got := ExclusiveAreaBelow(f, center, rs, others, rs/8, limit); got != want {
				t.Fatalf("ExclusiveAreaBelow(limit=%v) = %v, full scan says %v (area %v)", limit, got, want, full)
			}
			prev := SetIncrementalEnabled(false)
			got := ExclusiveAreaBelow(f, center, rs, others, rs/8, limit)
			SetIncrementalEnabled(prev)
			if got != want {
				t.Fatalf("disabled ExclusiveAreaBelow(limit=%v) = %v, want %v", limit, got, want)
			}
		}
	}
}

// TestTrackerReacquireReset guards the pooling path: a tracker reused
// from the pool must start from a clean slate.
func TestTrackerReacquireReset(t *testing.T) {
	rng := rand.New(rand.NewPCG(1006, 7))
	f := abRandomField(t, rng)
	e := NewEstimator(f, 10)
	positions := abPositions(rng, f, 20)

	tr := e.AcquireTracker(40, len(positions))
	tr.Seed(positions, nil, 2)
	tr.Release()

	tr = e.AcquireTracker(30, 5)
	if got := tr.Fraction(); got != 0 {
		t.Fatalf("reacquired tracker starts at Fraction %v, want 0", got)
	}
	tr.Set(0, positions[0])
	if got, want := tr.Fraction(), e.Fraction(positions[:1], 30); got != want {
		t.Fatalf("reacquired tracker Fraction %v != brute %v", got, want)
	}
	tr.Release()
}
