package coverage

import (
	"math/rand/v2"
	"sync"
	"testing"

	"mobisense/internal/field"
	"mobisense/internal/geom"
)

// referenceFraction is the pre-epoch-buffer implementation of Fraction: a
// freshly allocated bool grid per call, no early-out. The production path
// must stay bit-identical to it.
func referenceFraction(e *Estimator, positions []geom.Vec, rs float64) float64 {
	if e.nFree == 0 {
		return 0
	}
	covered := make([]bool, len(e.free))
	count := 0
	b := e.f.Bounds()
	rs2 := rs * rs
	los := len(e.f.Obstacles()) > 0
	for _, p := range positions {
		ix0 := clamp(int((p.X-rs-b.Min.X)/e.res), 0, e.nx-1)
		ix1 := clamp(int((p.X+rs-b.Min.X)/e.res), 0, e.nx-1)
		iy0 := clamp(int((p.Y-rs-b.Min.Y)/e.res), 0, e.ny-1)
		iy1 := clamp(int((p.Y+rs-b.Min.Y)/e.res), 0, e.ny-1)
		for iy := iy0; iy <= iy1; iy++ {
			for ix := ix0; ix <= ix1; ix++ {
				i := iy*e.nx + ix
				if covered[i] || !e.free[i] {
					continue
				}
				c := e.cellCenter(ix, iy)
				if c.Dist2(p) > rs2 {
					continue
				}
				if los && !e.f.Visible(p, c) {
					continue
				}
				covered[i] = true
				count++
			}
		}
	}
	return float64(count) / float64(e.nFree)
}

// referenceKFraction is the pre-epoch-buffer implementation of KFraction.
func referenceKFraction(e *Estimator, positions []geom.Vec, rs float64, k int) float64 {
	if e.nFree == 0 || k <= 0 {
		return 0
	}
	counts := make([]int16, len(e.free))
	b := e.f.Bounds()
	rs2 := rs * rs
	los := len(e.f.Obstacles()) > 0
	for _, p := range positions {
		ix0 := clamp(int((p.X-rs-b.Min.X)/e.res), 0, e.nx-1)
		ix1 := clamp(int((p.X+rs-b.Min.X)/e.res), 0, e.nx-1)
		iy0 := clamp(int((p.Y-rs-b.Min.Y)/e.res), 0, e.ny-1)
		iy1 := clamp(int((p.Y+rs-b.Min.Y)/e.res), 0, e.ny-1)
		for iy := iy0; iy <= iy1; iy++ {
			for ix := ix0; ix <= ix1; ix++ {
				i := iy*e.nx + ix
				if !e.free[i] {
					continue
				}
				c := e.cellCenter(ix, iy)
				if c.Dist2(p) > rs2 {
					continue
				}
				if los && !e.f.Visible(p, c) {
					continue
				}
				counts[i]++
			}
		}
	}
	covered := 0
	for i, n := range counts {
		if e.free[i] && int(n) >= k {
			covered++
		}
	}
	return float64(covered) / float64(e.nFree)
}

// scratchCase is one randomized field + layout scenario for the property
// tests below.
type scratchCase struct {
	f         *field.Field
	positions []geom.Vec
	rs        float64
}

func randomScratchCases(t *testing.T, n int) []*scratchCase {
	t.Helper()
	rng := rand.New(rand.NewPCG(42, 99))
	out := make([]*scratchCase, 0, n)
	for c := 0; c < n; c++ {
		w := 60 + rng.Float64()*140
		h := 60 + rng.Float64()*140
		var obs []geom.Polygon
		for o := rng.IntN(3); o > 0; o-- {
			x0 := rng.Float64() * w * 0.6
			y0 := rng.Float64() * h * 0.6
			obs = append(obs, geom.R(x0, y0, x0+10+rng.Float64()*w*0.3, y0+10+rng.Float64()*h*0.3).Polygon())
		}
		f, err := field.New(geom.R(0, 0, w, h), obs)
		if err != nil {
			continue
		}
		sc := &scratchCase{f: f, rs: 5 + rng.Float64()*50}
		if c%5 == 0 {
			// Exercise the giant-radius fast path: the disk swallows the
			// whole field, so the scan window is the full grid.
			sc.rs = w + h
		}
		for p := 3 + rng.IntN(20); p > 0; p-- {
			pos := geom.V(rng.Float64()*w, rng.Float64()*h)
			sc.positions = append(sc.positions, pos)
		}
		out = append(out, sc)
	}
	return out
}

// TestScratchReuseBitIdentical asserts that Fraction, KFraction and
// ExclusiveArea produce bit-identical results to the pre-epoch-buffer
// reference implementations, including across repeated (pooled) reuse of
// the same estimator where stale stamps from earlier evaluations could
// leak into later ones.
func TestScratchReuseBitIdentical(t *testing.T) {
	for _, sc := range randomScratchCases(t, 25) {
		e := NewEstimator(sc.f, 4)
		wantF := referenceFraction(e, sc.positions, sc.rs)
		wantK2 := referenceKFraction(e, sc.positions, sc.rs, 2)
		// Repeated calls reuse pooled scratch; every round must match.
		for round := 0; round < 3; round++ {
			if got := e.Fraction(sc.positions, sc.rs); got != wantF {
				t.Fatalf("round %d: Fraction = %v, want %v", round, got, wantF)
			}
			if got := e.KFraction(sc.positions, sc.rs, 2); got != wantK2 {
				t.Fatalf("round %d: KFraction = %v, want %v", round, got, wantK2)
			}
			if k1, f1 := e.KFraction(sc.positions, sc.rs, 1), e.Fraction(sc.positions, sc.rs); k1 != f1 {
				t.Fatalf("round %d: KFraction(1) = %v != Fraction = %v", round, k1, f1)
			}
		}
		// ExclusiveArea for each position against the others.
		for i, p := range sc.positions[:min(4, len(sc.positions))] {
			others := append([]geom.Vec(nil), sc.positions[:i]...)
			others = append(others, sc.positions[i+1:]...)
			a := ExclusiveArea(sc.f, p, sc.rs, others, sc.rs/8)
			b := ExclusiveArea(sc.f, p, sc.rs, others, sc.rs/8)
			if a != b {
				t.Fatalf("ExclusiveArea not reproducible: %v vs %v", a, b)
			}
		}
	}
}

// TestScratchConcurrentSweeps hammers one shared estimator from many
// goroutines (the batch-sweep sharing pattern) and checks every result
// stays bit-identical to the reference. Run under -race to verify the
// pooled scratch grids are properly isolated per evaluation.
func TestScratchConcurrentSweeps(t *testing.T) {
	cases := randomScratchCases(t, 6)
	for _, sc := range cases {
		e := NewEstimator(sc.f, 4)
		wantF := referenceFraction(e, sc.positions, sc.rs)
		wantK := referenceKFraction(e, sc.positions, sc.rs, 2)
		var wg sync.WaitGroup
		errs := make(chan string, 64)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 8; i++ {
					if got := e.Fraction(sc.positions, sc.rs); got != wantF {
						errs <- "Fraction mismatch under concurrency"
						return
					}
					if got := e.KFraction(sc.positions, sc.rs, 2); got != wantK {
						errs <- "KFraction mismatch under concurrency"
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for msg := range errs {
			t.Fatal(msg)
		}
	}
}

// TestFractionEarlyOutExact checks the count==nFree early-out returns
// exactly 1 and matches the reference on full-coverage layouts.
func TestFractionEarlyOutExact(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 80, 80), nil)
	e := NewEstimator(f, 4)
	pos := []geom.Vec{geom.V(40, 40), geom.V(10, 10), geom.V(70, 70)}
	got := e.Fraction(pos, 200)
	if got != 1 {
		t.Fatalf("full coverage fraction = %v, want exactly 1", got)
	}
	if want := referenceFraction(e, pos, 200); got != want {
		t.Fatalf("early-out diverged from reference: %v vs %v", got, want)
	}
}

// BenchmarkFractionReuse measures the steady-state allocation cost of
// repeated Fraction calls on one estimator (the batch-sweep hot path).
func BenchmarkFractionReuse(b *testing.B) {
	f := field.MustNew(geom.R(0, 0, 800, 600), nil)
	e := NewEstimator(f, 5)
	rng := rand.New(rand.NewPCG(1, 2))
	positions := make([]geom.Vec, 120)
	for i := range positions {
		positions[i] = geom.V(rng.Float64()*800, rng.Float64()*600)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Fraction(positions, 40)
	}
}
