// Package cpvf implements the Connectivity-Preserved Virtual Force scheme
// (§4 of the paper). Disconnected sensors first walk toward the base
// station with BUG2 under the lazy-movement strategy (§4.1, §3.3); once
// connected, they disperse under repulsive virtual forces while choosing
// the maximum step size that provably preserves every maintained link
// (§4.2, Appendix A). Sensors blocked by their tree links may change parent
// through the LockTree protocol, and two optional oscillation-avoidance
// techniques (§6.3) suppress the scheme's characteristic dithering.
package cpvf

import (
	"math"

	"mobisense/internal/core"
	"mobisense/internal/field"
	"mobisense/internal/geom"
)

// OscMode selects the oscillation-avoidance technique of §6.3.
type OscMode int

// Oscillation avoidance modes.
const (
	// OscNone disables oscillation avoidance (the base CPVF scheme).
	OscNone OscMode = iota + 1
	// OscOneStep cancels a move whose step size is below V*T/δ.
	OscOneStep
	// OscTwoStep cancels a move whose endpoint is within V*T/δ of the
	// endpoint of the previous step.
	OscTwoStep
)

// Config tunes the CPVF scheme.
type Config struct {
	// Oscillation selects the §6.3 avoidance technique (default OscNone).
	Oscillation OscMode
	// Delta is the oscillation-avoidance factor δ: the suppression
	// threshold is V*T/δ. Ignored by OscNone. Larger δ suppresses less.
	Delta float64
	// AllowParentChange lets a blocked sensor change its tree parent via
	// the LockTree protocol (§4.2). The paper found this improves
	// exploration; default true (disable for the ablation).
	AllowParentChange bool
	// StartDelayPeriods is the upper bound, in periods, of the random
	// delay before a disconnected sensor starts walking (§4.1: "a small
	// random time period").
	StartDelayPeriods float64
	// ForceGain scales the virtual-force magnitude before step-size
	// saturation. Larger gains disperse faster (and oscillate more); the
	// default is calibrated so the obstacle-free rc=60/rs=40 layout
	// approaches its equilibrium within the paper's 750 s horizon.
	ForceGain float64
	// DisableLazy turns off the §3.3 lazy-movement strategy during the
	// connectivity phase (ablation: every disconnected sensor walks every
	// period).
	DisableLazy bool
}

// DefaultConfig returns the paper's base CPVF configuration.
func DefaultConfig() Config {
	return Config{
		Oscillation:       OscNone,
		Delta:             4,
		AllowParentChange: true,
		StartDelayPeriods: 3,
		ForceGain:         6,
	}
}

// Scheme is one CPVF run's controller. Create with New, then Attach to a
// world and run the engine.
type Scheme struct {
	cfg Config
	w   *core.World

	lazy       *core.LazyCoordinator
	startDelay []float64
	// prevEnd[i] is the endpoint of sensor i's previous step, for two-step
	// oscillation avoidance.
	prevEnd []geom.Vec
	hasPrev []bool
	// lastParentChange[i] is the time sensor i last changed parent;
	// LockTree fails if the subtree contains a node that just changed.
	lastParentChange []float64
	// decideFns[i] is sensor i's prebuilt period handler, so rescheduling
	// does not allocate a fresh closure every period.
	decideFns []func()
	// Per-period scratch, reused across decisions (one decision runs at a
	// time on this scheme's world).
	linkScratch []link
	subScratch  []int
	inSub       []int32
	subEpoch    int32
	proxScratch []field.BoundaryProximity
	// failures arms the periodic stranded-sensor sweep after the first
	// death.
	failures bool
}

var _ core.Scheme = (*Scheme)(nil)

// New creates a CPVF scheme with the given configuration.
func New(cfg Config) *Scheme {
	if cfg.Delta <= 0 {
		cfg.Delta = 4
	}
	if cfg.ForceGain <= 0 {
		cfg.ForceGain = 6
	}
	return &Scheme{cfg: cfg}
}

// Name implements core.Scheme.
func (c *Scheme) Name() string { return "cpvf" }

// Attach implements core.Scheme: it determines initial connectivity with
// the §4.1 flood, builds BUG2 walkers for the disconnected sensors and
// schedules every sensor's periodic decisions.
func (c *Scheme) Attach(w *core.World) {
	c.w = w
	n := w.P.N
	c.startDelay = make([]float64, n)
	c.prevEnd = make([]geom.Vec, n)
	c.hasPrev = make([]bool, n)
	c.lastParentChange = make([]float64, n)
	c.inSub = make([]int32, n)
	for i := range c.lastParentChange {
		c.lastParentChange[i] = -1
	}
	c.decideFns = make([]func(), n)
	for i := 0; i < n; i++ {
		id := i
		c.decideFns[i] = func() { c.decide(id) }
	}

	w.FloodFromBase(w.P.Rc)

	walkers := make([]core.Walker, n)
	rng := w.E.Rand()
	for i := 0; i < n; i++ {
		walkers[i] = core.NewDirectWalker(w.F, w.Pos(i), w.F.Reference())
		if !w.Sensors[i].Connected {
			c.startDelay[i] = rng.Float64() * c.cfg.StartDelayPeriods * w.P.Period
		}
	}
	c.lazy = core.NewLazyCoordinator(w, walkers, core.LazyConfig{
		ConnectRadius: w.P.Rc,
		Disabled:      c.cfg.DisableLazy,
	})

	for i := 0; i < n; i++ {
		w.E.ScheduleAt(w.PeriodStart(i, 0), c.decideFns[i])
	}
}

// decide runs one period's decision for sensor id and re-schedules itself.
func (c *Scheme) decide(id int) {
	w := c.w
	if w.Sensors[id].Failed {
		return // dead sensors neither act nor reschedule
	}
	if w.Now() < w.P.Duration {
		w.E.Schedule(w.P.Period, c.decideFns[id])
	}
	if !w.Sensors[id].Connected {
		c.decideDisconnected(id)
		return
	}
	c.decideConnected(id)
}

// HandleFailure repairs CPVF's tree after sensor `victim` died with the
// given orphaned children (§7 failure-recovery extension): each orphan
// reattaches to a connected neighbor outside its own subtree; subtrees
// with no anchor in range revert to the §4.1 connectivity walk.
func (c *Scheme) HandleFailure(victim int, orphans []int) {
	w := c.w
	_ = victim // the world already detached and silenced the victim
	for _, o := range orphans {
		if w.Sensors[o].Failed {
			continue
		}
		pos := w.Pos(o)
		best := core.NoParent
		bestD := math.Inf(1)
		w.ForNeighbors(o, w.P.Rc, func(j int, q geom.Vec) {
			// The anchor must be rooted: a concurrently orphaned fragment
			// with a stale Connected flag would form an island.
			if !w.Sensors[j].Connected || !w.Tree.InTree(j) || w.Tree.IsAncestor(o, j) {
				return
			}
			if d := pos.Dist(q); d < bestD {
				bestD = d
				best = j
			}
		})
		switch {
		case w.NearBase(o, w.P.Rc):
			w.Tree.SetParent(o, core.BaseParent)
			w.Msg.Count(core.MsgTreeCtl, 2)
		case best != core.NoParent && w.Tree.SetParent(o, best):
			w.Msg.Count(core.MsgTreeCtl, 2)
		default:
			// No anchor: the subtree walks back toward the base station.
			for _, m := range w.Tree.Subtree(o) {
				if w.Sensors[m].Failed {
					continue
				}
				w.Tree.Detach(m)
				w.Sensors[m].Connected = false
				c.lazy.ReplaceWalker(m, core.NewDirectWalker(w.F, w.Pos(m), w.F.Reference()))
			}
		}
	}

	// Arm the periodic heartbeat sweep for segments severed later.
	if !c.failures {
		c.failures = true
		var sweep func()
		sweep = func() {
			c.sweepStranded()
			if w.Now() < w.P.Duration {
				w.E.Schedule(w.P.Period, sweep)
			}
		}
		w.E.Schedule(0, sweep)
	}
	c.sweepStranded()
}

// sweepStranded sends physically severed, tree-attached sensors back to
// the connectivity walk (base-station heartbeat monitoring; only runs
// under attrition).
func (c *Scheme) sweepStranded() {
	w := c.w
	stranded := w.PhysicallyStranded(w.P.Rc)
	if len(stranded) == 0 {
		return
	}
	inStranded := make(map[int]bool, len(stranded))
	for _, m := range stranded {
		inStranded[m] = true
	}
	for _, m := range stranded {
		if w.Sensors[m].Failed {
			continue
		}
		w.Msg.Count(core.MsgReport, 1)
		w.Tree.Detach(m)
		w.Sensors[m].Connected = false
		// Walk straight toward the nearest surviving reachable sensor
		// (or the base station when none remains).
		target := w.F.Reference()
		bestD := w.Pos(m).Dist(target)
		for i, sen := range w.Sensors {
			if i == m || sen.Failed || !sen.Connected || inStranded[i] {
				continue
			}
			if d := w.Pos(i).Dist(w.Pos(m)); d < bestD {
				bestD = d
				target = w.Pos(i)
			}
		}
		c.lazy.ReplaceWalker(m, core.NewDirectWalker(w.F, w.Pos(m), target))
	}
}

// decideDisconnected advances the §4.1 connectivity walk.
func (c *Scheme) decideDisconnected(id int) {
	w := c.w
	if w.Now() < c.startDelay[id] {
		w.Stay(id, w.P.Period)
		return
	}
	// A rejoin walker can arrive at a position whose anchor has since
	// moved or died; head for the base station instead of idling there.
	if wk := c.lazy.Walker(id); wk.Arrived() || wk.Stuck() {
		c.lazy.ReplaceWalker(id, core.NewDirectWalker(w.F, w.Pos(id), w.F.Reference()))
	}
	res := c.lazy.Step(id)
	switch res.Outcome {
	case core.LazyJoined:
		w.Sensors[id].Connected = true
		w.Tree.SetParent(id, res.Parent)
	case core.LazyJoinedBase:
		w.Sensors[id].Connected = true
		w.Tree.SetParent(id, core.BaseParent)
	}
}

// decideConnected runs the §4.2 virtual-force step.
func (c *Scheme) decideConnected(id int) {
	w := c.w
	T := w.P.Period
	pos := w.Pos(id)

	// One broadcast to learn the neighborhood, plus one query per
	// maintained link for its motion state (§4.2: "obtains the information
	// of s''s current moving direction, moving speed and period end time
	// by communication").
	w.Msg.Count(core.MsgBeacon, 1)
	links := c.maintainedLinks(id)
	w.Msg.Count(core.MsgBeacon, len(links))

	force := c.force(id, pos)
	if force.Len() < 1e-9 {
		w.Stay(id, T)
		c.recordEnd(id, pos)
		return
	}
	dir := force.Unit()
	// The desired step scales with the force magnitude and saturates at
	// V·T, so near-equilibrium sensors make the small dithering steps that
	// §6.3's oscillation avoidance suppresses.
	desired := w.P.MaxStep() * math.Min(1, c.cfg.ForceGain*force.Len())

	step := c.maxValidStep(id, pos, dir, desired, links)
	if step <= 1e-9 && c.cfg.AllowParentChange {
		if c.tryParentChange(id, pos) {
			links = c.maintainedLinks(id)
			step = c.maxValidStep(id, pos, dir, desired, links)
		}
	}

	step = c.applyOscillationAvoidance(id, pos, dir, step)

	if step <= 1e-9 {
		w.Stay(id, T)
		c.recordEnd(id, pos)
		return
	}
	dest := pos.Add(dir.Scale(step))
	w.BeginStep(id, dest, step, T)
	c.recordEnd(id, dest)
}

func (c *Scheme) recordEnd(id int, p geom.Vec) {
	c.prevEnd[id] = p
	c.hasPrev[id] = true
}

// applyOscillationAvoidance implements the §6.3 techniques: it returns the
// (possibly cancelled) step size.
func (c *Scheme) applyOscillationAvoidance(id int, pos, dir geom.Vec, step float64) float64 {
	if step <= 0 {
		return step
	}
	threshold := c.w.P.MaxStep() / c.cfg.Delta
	switch c.cfg.Oscillation {
	case OscOneStep:
		if step < threshold {
			return 0
		}
	case OscTwoStep:
		if c.hasPrev[id] && pos.Add(dir.Scale(step)).Dist(c.prevEnd[id]) < threshold {
			return 0
		}
	}
	return step
}

// force computes the repulsive virtual force on sensor id (§4.2): all
// neighbors within rc and all obstacle boundaries within rs repel, with
// magnitude decaying linearly to zero at the range limit.
func (c *Scheme) force(id int, pos geom.Vec) geom.Vec {
	w := c.w
	var f geom.Vec
	w.ForNeighbors(id, w.P.Rc, func(_ int, q geom.Vec) {
		d := pos.Dist(q)
		if d < 1e-9 {
			// Coincident sensors: break the tie with a deterministic
			// pseudo-random nudge derived from the ID.
			angle := float64(id) * 2.399963229728653 // golden angle
			f = f.Add(geom.V(math.Cos(angle), math.Sin(angle)))
			return
		}
		f = f.Add(pos.Sub(q).Unit().Scale(1 - d/w.P.Rc))
	})
	c.proxScratch = w.F.BoundariesWithinAppend(c.proxScratch[:0], pos, w.P.Rs)
	for _, prox := range c.proxScratch {
		if prox.Dist < 1e-9 {
			continue
		}
		f = f.Add(pos.Sub(prox.Point).Unit().Scale(1 - prox.Dist/w.P.Rs))
	}
	return f
}

// link is one connection the sensor must preserve while moving.
type link struct {
	id     int  // peer sensor, or BaseParent for the base station
	isBase bool // the base station never moves
}

// maintainedLinks returns the tree links sensor id must keep: its parent
// and all of its children (§4.2). The returned slice is scratch reused by
// the next maintainedLinks call on this scheme.
func (c *Scheme) maintainedLinks(id int) []link {
	t := c.w.Tree
	out := c.linkScratch[:0]
	switch p := t.Parent(id); {
	case p == core.BaseParent:
		out = append(out, link{isBase: true})
	case p >= 0:
		out = append(out, link{id: p})
	}
	for _, child := range t.Children(id) {
		out = append(out, link{id: child})
	}
	c.linkScratch = out
	return out
}

// maxValidStep finds the largest step size from the candidate set
// {L, 0.9·L, …, 0.1·L, 0} (§4.2's search, with L the desired step, at most
// V·T) that (a) stays in free space and (b) satisfies the
// connectivity-preserving conditions for every maintained link.
func (c *Scheme) maxValidStep(id int, pos, dir geom.Vec, desired float64, links []link) float64 {
	w := c.w
	limit := math.Min(desired, w.P.MaxStep())

	// Free-space limit along dir, with a small wall stand-off.
	freeLimit := limit
	if hit, ok := w.F.FirstHit(geom.Seg(pos, pos.Add(dir.Scale(limit)))); ok {
		freeLimit = math.Max(0, hit.T*limit-0.1)
	}

	for k := 10; k >= 1; k-- {
		step := float64(k) / 10 * limit
		if step > freeLimit {
			continue
		}
		if c.stepPreservesLinks(id, pos, dir, step, links) {
			return step
		}
	}
	return 0
}

// stepPreservesLinks checks the two connectivity-preserving conditions of
// §4.2 for a candidate move of the given size during [t, t+T]:
//
//  1. the distance between s and s′ at time t′ (the end of s′'s current
//     period) is no greater than rc, and
//  2. the distance between s′'s position at t′ and s's position at t+T is
//     no greater than rc.
func (c *Scheme) stepPreservesLinks(id int, pos, dir geom.Vec, step float64, links []link) bool {
	w := c.w
	now := w.Now()
	T := w.P.Period
	rc := w.P.Rc
	end := pos.Add(dir.Scale(step))

	for _, l := range links {
		var peerT1 float64
		var peerAtT1 geom.Vec
		if l.isBase {
			peerT1 = now
			peerAtT1 = w.F.Reference()
		} else {
			peerT1 = math.Max(w.StepEndTime(l.id), now) // t' ≤ t+T; idle peers pin t' = t
			peerAtT1 = w.PosAt(l.id, peerT1)
		}
		// Condition 1: our interpolated position at t'.
		frac := (peerT1 - now) / T
		if frac > 1 {
			frac = 1
		}
		mine := pos.Add(dir.Scale(step * frac))
		if mine.Dist(peerAtT1) > rc {
			return false
		}
		// Condition 2: peer at t' vs our endpoint at t+T.
		if peerAtT1.Dist(end) > rc {
			return false
		}
	}
	return true
}

// tryParentChange attempts the §4.2 parent-change protocol: lock the
// subtree rooted at id (LockTree / UnLockTree), pick a connected neighbor
// outside the subtree as the new parent, and join it. Returns whether the
// parent changed.
func (c *Scheme) tryParentChange(id int, pos geom.Vec) bool {
	w := c.w
	t := w.Tree

	// Candidate parents: connected neighbors outside our subtree. The
	// subtree membership test uses an epoch-stamped array instead of a
	// per-call map.
	sub := t.SubtreeAppend(c.subScratch[:0], id)
	c.subScratch = sub
	c.subEpoch++
	for _, s := range sub {
		c.inSub[s] = c.subEpoch
	}
	cur := t.Parent(id)
	best := core.NoParent
	bestDist := math.Inf(1)
	now := w.Now()
	w.ForNeighbors(id, w.P.Rc, func(j int, q geom.Vec) {
		if !w.Sensors[j].Connected || c.inSub[j] == c.subEpoch || j == cur {
			return
		}
		// The candidate only learns of the new link at its next decision:
		// its committed step must not carry it out of range first.
		if w.PosAt(j, math.Max(w.StepEndTime(j), now)).Dist(pos) > w.P.Rc {
			return
		}
		if d := pos.Dist(q); d < bestDist {
			bestDist = d
			best = j
		}
	})
	if best == core.NoParent {
		return false
	}

	// LockTree: one message down to each subtree node; a node that changed
	// parent this very period rejects the lock (it is "in the middle of a
	// period" in the paper's sense).
	w.Msg.Count(core.MsgTreeCtl, len(sub))
	for _, s := range sub {
		if s != id && now-c.lastParentChange[s] < w.P.Period {
			// UnLockTree travels back up.
			w.Msg.Count(core.MsgTreeCtl, len(sub))
			return false
		}
	}

	// Join the new parent, then unlock the subtree.
	w.Msg.Count(core.MsgTreeCtl, 2) // join request + ack
	ok := t.SetParent(id, best)
	w.Msg.Count(core.MsgTreeCtl, len(sub)) // UnLockTree
	if ok {
		c.lastParentChange[id] = now
	}
	return ok
}
