package cpvf

import (
	"math"
	"testing"

	"mobisense/internal/core"
	"mobisense/internal/coverage"
	"mobisense/internal/field"
	"mobisense/internal/geom"
)

// smallParams returns a fast test configuration: 40 sensors clustered in
// the corner of a 400x400 field.
func smallParams() core.Params {
	p := core.DefaultParams()
	p.N = 40
	p.Rc = 50
	p.Rs = 30
	p.Duration = 200
	p.InitRegion = geom.R(0, 0, 200, 200)
	p.CoverageRes = 4
	return p
}

func runScheme(t *testing.T, f *field.Field, p core.Params, cfg Config) *core.World {
	t.Helper()
	w, err := core.NewWorld(f, p)
	if err != nil {
		t.Fatal(err)
	}
	New(cfg).Attach(w)
	w.E.RunUntil(p.Duration)
	return w
}

func smallField(t *testing.T) *field.Field {
	t.Helper()
	return field.MustNew(geom.R(0, 0, 400, 400), nil)
}

func TestCPVFGuaranteesConnectivity(t *testing.T) {
	w := runScheme(t, smallField(t), smallParams(), DefaultConfig())
	if got := w.ConnectedCount(); got != w.P.N {
		t.Fatalf("connected sensors = %d / %d", got, w.P.N)
	}
	if !core.AllConnected(w.Layout(), w.F.Reference(), w.P.Rc) {
		t.Fatal("final unit-disk network is not connected to the base")
	}
}

func TestCPVFTreeInvariants(t *testing.T) {
	w := runScheme(t, smallField(t), smallParams(), DefaultConfig())
	for i, s := range w.Sensors {
		if !s.Connected {
			t.Fatalf("sensor %d not connected", i)
		}
		if !w.Tree.InTree(i) {
			t.Errorf("sensor %d connected but not rooted in tree", i)
		}
		// Every tree link must respect the communication range.
		if p := w.Tree.Parent(i); p >= 0 {
			if d := w.Pos(i).Dist(w.Pos(p)); d > w.P.Rc+1e-6 {
				t.Errorf("sensor %d parent link %.1f m exceeds rc", i, d)
			}
		} else if p == core.BaseParent {
			if d := w.Pos(i).Dist(w.F.Reference()); d > w.P.Rc+1e-6 {
				t.Errorf("sensor %d base link %.1f m exceeds rc", i, d)
			}
		}
	}
}

func TestCPVFImprovesCoverage(t *testing.T) {
	f := smallField(t)
	p := smallParams()
	w, err := core.NewWorld(f, p)
	if err != nil {
		t.Fatal(err)
	}
	est := coverage.NewEstimator(f, p.CoverageRes)
	before := est.Fraction(w.Layout(), p.Rs)
	New(DefaultConfig()).Attach(w)
	w.E.RunUntil(p.Duration)
	after := est.Fraction(w.Layout(), p.Rs)
	if after <= before {
		t.Errorf("coverage did not improve: %.3f -> %.3f", before, after)
	}
	// 40 sensors with rs=30 could cover up to 40*pi*900 ≈ 113k of the 160k
	// field; the virtual forces should realize a decent chunk of it.
	if after < 0.35 {
		t.Errorf("final coverage %.3f suspiciously low", after)
	}
}

func TestCPVFSmallRcProducesWorseCoverage(t *testing.T) {
	// The paper's central CPVF finding (Fig 3): with rc well below rs the
	// sensors cluster and coverage collapses.
	f := smallField(t)
	large := smallParams()
	large.Rc = 60
	large.Rs = 40
	wLarge := runScheme(t, f, large, DefaultConfig())

	small := smallParams()
	small.Rc = 20
	small.Rs = 40
	wSmall := runScheme(t, f, small, DefaultConfig())

	est := coverage.NewEstimator(f, 4)
	covLarge := est.Fraction(wLarge.Layout(), large.Rs)
	covSmall := est.Fraction(wSmall.Layout(), small.Rs)
	if covSmall >= covLarge {
		t.Errorf("rc=20 coverage %.3f should be below rc=60 coverage %.3f", covSmall, covLarge)
	}
}

func TestCPVFSensorsStayInFreeSpace(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 400, 400),
		[]geom.Polygon{geom.R(150, 100, 250, 300).Polygon()})
	w := runScheme(t, f, smallParams(), DefaultConfig())
	for i := range w.Sensors {
		if pos := w.Pos(i); !f.Free(pos) {
			t.Errorf("sensor %d ended inside an obstacle at %v", i, pos)
		}
	}
}

func TestCPVFRespectsSpeedLimit(t *testing.T) {
	// Total traveled distance per sensor cannot exceed V * duration.
	p := smallParams()
	w := runScheme(t, smallField(t), p, DefaultConfig())
	bound := p.Speed * p.Duration
	for i, s := range w.Sensors {
		if s.Traveled > bound+1e-6 {
			t.Errorf("sensor %d traveled %.1f m > bound %.1f m", i, s.Traveled, bound)
		}
	}
}

func TestCPVFOscillationAvoidanceReducesDistance(t *testing.T) {
	f := smallField(t)
	p := smallParams()

	base := runScheme(t, f, p, DefaultConfig())

	oneStep := DefaultConfig()
	oneStep.Oscillation = OscOneStep
	oneStep.Delta = 2
	one := runScheme(t, f, p, oneStep)

	twoStep := DefaultConfig()
	twoStep.Oscillation = OscTwoStep
	twoStep.Delta = 2
	two := runScheme(t, f, p, twoStep)

	if one.AvgTraveled() >= base.AvgTraveled() {
		t.Errorf("one-step avoidance did not reduce distance: %.1f vs %.1f",
			one.AvgTraveled(), base.AvgTraveled())
	}
	if two.AvgTraveled() >= base.AvgTraveled() {
		t.Errorf("two-step avoidance did not reduce distance: %.1f vs %.1f",
			two.AvgTraveled(), base.AvgTraveled())
	}
}

func TestCPVFDeterministicRuns(t *testing.T) {
	f := smallField(t)
	p := smallParams()
	w1 := runScheme(t, f, p, DefaultConfig())
	w2 := runScheme(t, f, p, DefaultConfig())
	for i := range w1.Sensors {
		if !w1.Pos(i).Eq(w2.Pos(i)) {
			t.Fatalf("sensor %d diverged between identical runs", i)
		}
	}
	if w1.Msg.Total() != w2.Msg.Total() {
		t.Error("message counts diverged between identical runs")
	}
}

func TestCPVFSeedChangesLayout(t *testing.T) {
	f := smallField(t)
	p1 := smallParams()
	p2 := smallParams()
	p2.Seed = 99
	w1 := runScheme(t, f, p1, DefaultConfig())
	w2 := runScheme(t, f, p2, DefaultConfig())
	same := true
	for i := range w1.Sensors {
		if !w1.Pos(i).Eq(w2.Pos(i)) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical layouts")
	}
}

func TestCPVFParentChangeAblation(t *testing.T) {
	// Disabling parent changes must still preserve connectivity.
	cfg := DefaultConfig()
	cfg.AllowParentChange = false
	w := runScheme(t, smallField(t), smallParams(), cfg)
	if !core.AllConnected(w.Layout(), w.F.Reference(), w.P.Rc) {
		t.Fatal("no-parent-change run lost connectivity")
	}
}

func TestCPVFWithObstaclesStillConnected(t *testing.T) {
	// A wall with a narrow exit between the cluster and the open area.
	f := field.MustNew(geom.R(0, 0, 400, 400),
		[]geom.Polygon{geom.R(200, 30, 230, 400).Polygon()})
	w := runScheme(t, f, smallParams(), DefaultConfig())
	if !core.AllConnected(w.Layout(), w.F.Reference(), w.P.Rc) {
		t.Fatal("obstacle run lost connectivity")
	}
}

func TestAppendixALemma(t *testing.T) {
	// Appendix A: if dist(s(t), s'(t)) <= rc and dist(s(t'), s'(t')) <= rc
	// with both moving on straight lines during [t, t'], then the distance
	// never exceeds rc in between. Verify numerically over random motions:
	// the max pairwise distance during linear interpolation of two straight
	// movers is attained at an endpoint (convexity).
	rc := 50.0
	for trial := 0; trial < 500; trial++ {
		seed := uint64(trial)
		rnd := func(k uint64) float64 {
			// Cheap deterministic hash-based pseudo-random in [0,1).
			x := seed*2654435761 + k*40503
			x ^= x >> 13
			x = x * 2654435761 % 1000003
			return float64(x) / 1000003
		}
		a0 := geom.V(rnd(1)*100, rnd(2)*100)
		b0 := geom.V(rnd(3)*100, rnd(4)*100)
		a1 := a0.Add(geom.V(rnd(5)*4-2, rnd(6)*4-2))
		b1 := b0.Add(geom.V(rnd(7)*4-2, rnd(8)*4-2))
		if a0.Dist(b0) > rc || a1.Dist(b1) > rc {
			continue // premise violated; lemma says nothing
		}
		for k := 0; k <= 20; k++ {
			u := float64(k) / 20
			if a0.Lerp(a1, u).Dist(b0.Lerp(b1, u)) > rc+1e-9 {
				t.Fatalf("trial %d: intermediate distance exceeds rc at u=%v", trial, u)
			}
		}
	}
}

func TestCPVFConvergesEventually(t *testing.T) {
	// With oscillation avoidance the layout should stop changing well
	// before the horizon.
	p := smallParams()
	p.Duration = 300
	cfg := DefaultConfig()
	cfg.Oscillation = OscOneStep
	cfg.Delta = 2
	w := runScheme(t, smallField(t), p, cfg)
	if w.LastMoveTime() >= p.Duration {
		t.Logf("warning: still moving at horizon (last move %.0f)", w.LastMoveTime())
	}
	if math.IsNaN(w.AvgTraveled()) {
		t.Fatal("NaN traveled distance")
	}
}
