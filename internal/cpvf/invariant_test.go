package cpvf

import (
	"testing"

	"mobisense/internal/core"
	"mobisense/internal/field"
	"mobisense/internal/geom"
)

// TestCPVFLinksPreservedDuringMotion validates the Appendix-A guarantee
// dynamically: at sub-period sampling instants throughout the run, every
// maintained tree link (parent/child, or base link) stays within the
// communication range — not just at period boundaries.
func TestCPVFLinksPreservedDuringMotion(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 400, 400), nil)
	p := smallParams()
	p.Duration = 150
	w, err := core.NewWorld(f, p)
	if err != nil {
		t.Fatal(err)
	}
	New(DefaultConfig()).Attach(w)

	const sample = 0.25 // four samples per period
	violations := 0
	for now := 0.0; now < p.Duration; now += sample {
		w.E.RunUntil(now)
		for i, s := range w.Sensors {
			if !s.Connected {
				continue
			}
			pos := w.PosAt(i, now)
			switch par := w.Tree.Parent(i); {
			case par >= 0:
				if d := pos.Dist(w.PosAt(par, now)); d > p.Rc+1e-6 {
					violations++
					if violations <= 3 {
						t.Errorf("t=%.2f: link %d-%d is %.2f m (> rc=%.0f)",
							now, i, par, d, p.Rc)
					}
				}
			case par == core.BaseParent:
				if d := pos.Dist(f.Reference()); d > p.Rc+1e-6 {
					violations++
					if violations <= 3 {
						t.Errorf("t=%.2f: base link of %d is %.2f m", now, i, d)
					}
				}
			}
		}
	}
	if violations > 0 {
		t.Fatalf("%d link violations during motion", violations)
	}
}

// TestCPVFConnectedNeverRegresses checks monotonicity: once a sensor is
// connected it stays connected (flagged) for the rest of the run.
func TestCPVFConnectedNeverRegresses(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 400, 400), nil)
	p := smallParams()
	p.Duration = 150
	w, err := core.NewWorld(f, p)
	if err != nil {
		t.Fatal(err)
	}
	New(DefaultConfig()).Attach(w)

	wasConnected := make([]bool, p.N)
	for now := 0.0; now < p.Duration; now += 1 {
		w.E.RunUntil(now)
		for i, s := range w.Sensors {
			if wasConnected[i] && !s.Connected {
				t.Fatalf("t=%.0f: sensor %d lost its Connected flag", now, i)
			}
			wasConnected[i] = s.Connected
		}
	}
}

// TestCPVFNoLazyStillConnects covers the §3.3 ablation path: with lazy
// movement disabled every sensor still reaches the network.
func TestCPVFNoLazyStillConnects(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableLazy = true
	w := runScheme(t, smallField(t), smallParams(), cfg)
	if !core.AllConnected(w.Layout(), w.F.Reference(), w.P.Rc) {
		t.Fatal("no-lazy run lost connectivity")
	}
}
