package cpvf

import (
	"testing"

	"mobisense/internal/core"
)

// TestCPVFRecoversFromFailures injects sensor deaths during a CPVF run and
// checks the survivors re-form a connected network (§7 failure-recovery
// extension).
func TestCPVFRecoversFromFailures(t *testing.T) {
	f := smallField(t)
	p := smallParams()
	p.N = 50
	p.Duration = 400
	w, err := core.NewWorld(f, p)
	if err != nil {
		t.Fatal(err)
	}
	s := New(DefaultConfig())
	s.Attach(w)

	inj := &core.FailureInjector{Interval: 50, MaxKills: 6, OnKill: s.HandleFailure}
	inj.Attach(w)

	w.E.RunUntil(p.Duration)

	if inj.Killed() != 6 {
		t.Fatalf("killed = %d", inj.Killed())
	}
	if !core.AllConnected(w.AliveLayout(), w.F.Reference(), p.Rc) {
		t.Error("survivors are not connected after failures")
	}
	// Tree invariant: every alive connected sensor is rooted.
	for i, sen := range w.Sensors {
		if sen.Failed || !sen.Connected {
			continue
		}
		if !w.Tree.InTree(i) {
			t.Errorf("sensor %d connected but not rooted after failures", i)
		}
	}
}

// TestCPVFFailureOfBaseAdjacentSensor kills a sensor attached directly to
// the base station: its subtree must reattach or walk back.
func TestCPVFFailureOfBaseAdjacentSensor(t *testing.T) {
	f := smallField(t)
	p := smallParams()
	p.N = 40
	p.Duration = 300
	w, err := core.NewWorld(f, p)
	if err != nil {
		t.Fatal(err)
	}
	s := New(DefaultConfig())
	s.Attach(w)
	w.E.RunUntil(100)

	victim := -1
	for i := 0; i < p.N; i++ {
		if w.Tree.Parent(i) == core.BaseParent && len(w.Tree.Children(i)) > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Skip("no base-adjacent sensor with children at t=100")
	}
	orphans := w.Kill(victim)
	s.HandleFailure(victim, orphans)
	w.E.RunUntil(p.Duration)

	if !core.AllConnected(w.AliveLayout(), w.F.Reference(), p.Rc) {
		t.Error("survivors disconnected after base-adjacent failure")
	}
}
