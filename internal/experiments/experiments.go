// Package experiments regenerates every table and figure of the paper's
// evaluation (§4.3, §5.6, §6). Each function reproduces one artifact and
// returns structured rows that cmd/experiments prints as CSV/tables and
// the root bench harness reports as benchmark metrics.
//
// All runs go through the public mobisense API: schemes and fields resolve
// through the scheme/scenario registries and independent runs fan out
// across cores via the batch runner (mobisense.RunBatch / mobisense.Sweep).
//
// Absolute values depend on constants the paper does not specify (force
// law, invitation cadence); the functions therefore also embed the paper's
// reported numbers where available so reports can show paper-vs-measured
// side by side.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"

	"mobisense"
	"mobisense/internal/baseline"
	"mobisense/internal/cpvf"
	"mobisense/internal/field"
	"mobisense/internal/geom"
	"mobisense/internal/stats"
)

// Row is one data point of an experiment: a labeled set of parameter and
// metric columns, ordered for printing.
type Row struct {
	Figure  string
	Label   string
	Columns []Column
}

// Column is one named value of a row.
type Column struct {
	Name  string
	Value float64
}

// Get returns the named column value (0 when absent).
func (r Row) Get(name string) float64 {
	for _, c := range r.Columns {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Options control experiment size, parallelism and persistence.
type Options struct {
	// Quick shrinks sweeps and run counts for smoke tests and benches.
	Quick bool
	// Seed drives all runs.
	Seed uint64
	// Workers sizes the batch runner's worker pool (0 = GOMAXPROCS).
	Workers int
	// OnProgress, if set, observes batch completions.
	OnProgress func(done, total int)
	// Context cancels in-flight experiments (nil = background). A
	// cancelled experiment panics with an error matching context.Canceled;
	// Interrupted recognizes it.
	Context context.Context
	// StoreDir, when set, persists each experiment's runs under
	// StoreDir/<figure> so interrupted suites resume without re-running
	// finished deployments (set Resume to pick an existing store up).
	StoreDir string
	// Resume continues existing stores under StoreDir.
	Resume bool
	// StoreLayouts persists every run's initial and final layouts in its
	// store record, making layout-dependent experiments (fig11's
	// Hungarian lower bounds) replayable from disk.
	StoreLayouts bool
	// Shard restricts every experiment to a deterministic subset of its
	// runs for cross-machine sharding.
	Shard mobisense.Shard
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) ctx() context.Context {
	if o.Context == nil {
		return context.Background()
	}
	return o.Context
}

// batch assembles the runner options for one experiment; name scopes the
// experiment's store subdirectory.
func (o Options) batch(name string) mobisense.BatchOptions {
	opts := mobisense.BatchOptions{Workers: o.Workers, OnProgress: o.OnProgress, Shard: o.Shard}
	if o.StoreDir != "" {
		opts.Store = &mobisense.Store{
			Dir:     filepath.Join(o.StoreDir, name),
			Resume:  o.Resume,
			Layouts: o.StoreLayouts,
		}
	}
	return opts
}

// Interrupted reports whether a panic value recovered from an experiment
// function means the run's context was cancelled (finished runs persist in
// the store; re-run with Resume to continue).
func Interrupted(v any) bool {
	err, ok := v.(error)
	return ok && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// Shardable reports whether the named experiment participates in sharded
// store runs. Fig11 normally does not: its Hungarian lower bounds need
// every run's full initial and final layout, which plain store records do
// not carry, so it is skipped rather than half-run. With layout
// persistence on (Options.StoreLayouts) the records do carry full
// layouts, and fig11 shards like everything else.
func Shardable(name string, layouts bool) bool { return name != "fig11" || layouts }

// scenarioField builds the named scenario's field once; configs sharing
// the returned handle also share one cached coverage estimator per batch.
func scenarioField(o Options, scenario string) mobisense.Field {
	f, err := mobisense.BuildScenario(scenario, o.seed())
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return f
}

// paperConfig returns the §4.3 standard parameters on the given field.
func paperConfig(o Options, scheme mobisense.Scheme, f mobisense.Field) mobisense.Config {
	cfg := mobisense.DefaultConfig(scheme)
	cfg.Seed = o.seed()
	cfg.Field = f
	return cfg
}

// paperBase returns the §4.3 standard parameters with the field left to
// the sweep's scenario axis.
func paperBase(o Options, scheme mobisense.Scheme) mobisense.Config {
	cfg := mobisense.DefaultConfig(scheme)
	cfg.Seed = o.seed()
	return cfg
}

// runSweep fans one axis sweep out on the batch runner with the
// experiment's store/shard/progress options and returns the per-run
// results in expansion order, panicking on any per-run error (experiment
// sweeps are fixed and must run). Cancellation panics with the context's
// error so callers can distinguish an interrupt (Interrupted) from a
// broken config. It returns nil under sharding, like runAll: the shard
// stores its slice and cmd/report merges the tables.
func runSweep(o Options, name string, s mobisense.Sweep) []mobisense.BatchResult {
	sr, err := s.Run(o.ctx(), o.batch(name))
	if err != nil {
		panic(fmt.Errorf("experiments: %s: %w", name, err))
	}
	for _, br := range sr.Runs {
		if br.Err != nil {
			panic(fmt.Sprintf("experiments: %s run %d: %v", name, br.Spec.Index, br.Err))
		}
	}
	if o.Shard.Count > 1 {
		return nil
	}
	return sr.Runs
}

// av is shorthand for one axis assignment in resultAt lookups.
func av(name string, value float64) mobisense.AxisValue {
	return mobisense.AxisValue{Name: name, Value: value}
}

// resultAt finds the sweep run with the given scheme, scenario, N and
// axis values. Experiment sweeps expand every requested point, so a miss
// is a bug, not a condition.
func resultAt(runs []mobisense.BatchResult, scheme mobisense.Scheme, scenario string, n int, axes ...mobisense.AxisValue) mobisense.Result {
	for _, br := range runs {
		if br.Spec.Scheme != scheme || br.Spec.Scenario != scenario || br.Spec.N != n {
			continue
		}
		found := true
		for _, want := range axes {
			match := false
			for _, got := range br.Spec.Axes {
				if got == want {
					match = true
					break
				}
			}
			if !match {
				found = false
				break
			}
		}
		if found {
			return br.Result
		}
	}
	panic(fmt.Sprintf("experiments: no run for %s on %s N=%d axes=%v", scheme, scenario, n, axes))
}

// runAll fans the configs out on the batch runner and unwraps the results,
// panicking on any per-run error (experiment configs are fixed and must
// run). Cancellation panics with the context's error so callers can
// distinguish an interrupt (Interrupted) from a broken config.
// It returns nil under sharding (Options.Shard): a shard executes and
// stores its slice of the runs, and the cross-shard tables come from
// cmd/report over the merged stores.
func runAll(o Options, name string, cfgs []mobisense.Config) []mobisense.Result {
	results, err := mobisense.RunBatch(o.ctx(), cfgs, o.batch(name))
	if err != nil {
		panic(fmt.Errorf("experiments: %s: %w", name, err))
	}
	for _, br := range results {
		if br.Err != nil {
			panic(fmt.Sprintf("experiments: %s run %d: %v", name, br.Spec.Index, br.Err))
		}
	}
	if o.Shard.Count > 1 {
		return nil
	}
	out := make([]mobisense.Result, len(cfgs))
	for i, br := range results {
		out[i] = br.Result
	}
	return out
}

func toVecs(ps []mobisense.Point) []geom.Vec {
	out := make([]geom.Vec, len(ps))
	for i, p := range ps {
		out[i] = geom.V(p.X, p.Y)
	}
	return out
}

// Fig3 reproduces Figure 3: CPVF layouts and coverage in the three
// canonical scenarios.
func Fig3(o Options) []Row {
	return layoutScenarios(o, "fig3", mobisense.SchemeCPVF,
		[3]float64{0.745, 0.264, 0.371})
}

// Fig8 reproduces Figure 8: FLOOR in the same scenarios.
func Fig8(o Options) []Row {
	return layoutScenarios(o, "fig8", mobisense.SchemeFLOOR,
		[3]float64{0.788, 0.462, 0.725})
}

func layoutScenarios(o Options, figure string, scheme mobisense.Scheme, paper [3]float64) []Row {
	type scenario struct {
		label string
		name  string
		rc    float64
		paper float64
	}
	scenarios := []scenario{
		{"(a) rc=60 rs=40 obstacle-free", "free", 60, paper[0]},
		{"(b) rc=30 rs=40 obstacle-free", "free", 30, paper[1]},
		{"(c) rc=60 rs=40 two obstacles", "two-obstacles", 60, paper[2]},
	}
	fields := map[string]mobisense.Field{}
	for _, sc := range scenarios {
		if _, ok := fields[sc.name]; !ok {
			fields[sc.name] = scenarioField(o, sc.name)
		}
	}
	cfgs := make([]mobisense.Config, len(scenarios))
	for i, sc := range scenarios {
		cfg := paperConfig(o, scheme, fields[sc.name])
		cfg.Rc = sc.rc
		cfgs[i] = cfg
	}
	results := runAll(o, figure, cfgs)
	if results == nil {
		return nil
	}
	rows := make([]Row, 0, len(scenarios))
	for i, sc := range scenarios {
		out := results[i]
		rows = append(rows, Row{
			Figure: figure,
			Label:  sc.label,
			Columns: []Column{
				{"coverage", out.Coverage},
				{"paper_coverage", sc.paper},
				{"avg_distance", out.AvgMoveDistance},
				{"connected", boolVal(out.Connected)},
			},
		})
	}
	return rows
}

// Fig9 reproduces Figure 9: coverage of CPVF, FLOOR and OPT for varying
// sensor counts and communication ranges (rs fixed at 60) on the
// obstacle-free field. An rc axis sweep with a fixed seed matches the
// paper's protocol: one initial deployment, the range knob varied.
func Fig9(o Options) []Row {
	ns := []int{120, 160, 200, 240, 280, 320}
	rcs := []float64{20, 40, 60}
	if o.Quick {
		ns = []int{120, 240}
		rcs = []float64{20, 60}
	}
	rs := 60.0
	base := paperBase(o, mobisense.SchemeCPVF)
	base.Rs = rs
	runs := runSweep(o, "fig9", mobisense.Sweep{
		Base:      base,
		Schemes:   []mobisense.Scheme{mobisense.SchemeCPVF, mobisense.SchemeFLOOR, mobisense.SchemeOPT},
		Scenarios: []string{"free"},
		Ns:        ns,
		Axes:      []mobisense.ParamAxis{mobisense.AxisRc(rcs...)},
		Seed:      o.seed(),
		FixedSeed: true,
	})
	if runs == nil {
		return nil
	}
	var rows []Row
	for _, rc := range rcs {
		for _, n := range ns {
			at := func(s mobisense.Scheme) mobisense.Result {
				return resultAt(runs, s, "free", n, av("rc", rc))
			}
			rows = append(rows, Row{
				Figure: "fig9",
				Label:  fmt.Sprintf("rc=%.0f rs=%.0f N=%d", rc, rs, n),
				Columns: []Column{
					{"n", float64(n)},
					{"rc", rc},
					{"rs", rs},
					{"cpvf_coverage", at(mobisense.SchemeCPVF).Coverage},
					{"floor_coverage", at(mobisense.SchemeFLOOR).Coverage},
					{"opt_coverage", at(mobisense.SchemeOPT).Coverage},
				},
			})
		}
	}
	return rows
}

// Fig10 reproduces Figure 10: FLOOR vs VOR vs Minimax for rs = 60 and
// rc/rs from 0.8 to 4, with disconnection and incorrect-VD detection.
// The ratio is a custom axis whose setter drives both ranges at once and,
// because setters see the fully resolved scheme, applies FLOOR's
// stabilized-layout measurement protocol only to FLOOR runs.
func Fig10(o Options) []Row {
	ratios := []float64{0.8, 1, 1.5, 2, 2.5, 3, 3.5, 4}
	if o.Quick {
		ratios = []float64{0.8, 2, 4}
	}
	rs := 60.0
	ratioAxis := mobisense.NewAxis("rc_over_rs", func(cfg *mobisense.Config, ratio float64) {
		cfg.Rc = ratio * rs
		cfg.Rs = rs
		if cfg.Scheme == mobisense.SchemeFLOOR {
			// Small rc/rs slows FLOOR's relocation pipeline; measure the
			// stabilized layout like the paper does.
			cfg.Stabilize = &mobisense.StabilizeOptions{Cap: 2250}
		}
	}, ratios...)
	base := paperBase(o, mobisense.SchemeFLOOR)
	runs := runSweep(o, "fig10", mobisense.Sweep{
		Base:      base,
		Schemes:   []mobisense.Scheme{mobisense.SchemeFLOOR, mobisense.SchemeVOR, mobisense.SchemeMinimax},
		Scenarios: []string{"free"},
		Axes:      []mobisense.ParamAxis{ratioAxis},
		Seed:      o.seed(),
		FixedSeed: true,
	})
	if runs == nil {
		return nil
	}
	var rows []Row
	for _, ratio := range ratios {
		at := func(s mobisense.Scheme) mobisense.Result {
			return resultAt(runs, s, "free", base.N, av("rc_over_rs", ratio))
		}
		fl, vor, mmx := at(mobisense.SchemeFLOOR), at(mobisense.SchemeVOR), at(mobisense.SchemeMinimax)
		rows = append(rows, Row{
			Figure: "fig10",
			Label:  fmt.Sprintf("rc/rs=%.1f", ratio),
			Columns: []Column{
				{"rc_over_rs", ratio},
				{"floor_coverage", fl.Coverage},
				{"vor_coverage", vor.Coverage},
				{"minimax_coverage", mmx.Coverage},
				{"floor_connected", boolVal(fl.Connected)},
				{"vor_connected", boolVal(vor.Connected)},
				{"minimax_connected", boolVal(mmx.Connected)},
				{"vor_incorrect_cells", float64(vor.IncorrectVoronoiCells)},
				{"minimax_incorrect_cells", float64(mmx.IncorrectVoronoiCells)},
			},
		})
	}
	return rows
}

// Fig11 reproduces Figure 11: the average moving distance of six schemes
// from the clustered start — CPVF, FLOOR, VOR and Minimax (with the
// minimum-cost explosion), plus the two Hungarian lower bounds (to the
// optimal pattern and to FLOOR's own final layout). All four scheme runs
// share a seed, hence an identical initial layout.
func Fig11(o Options) []Row {
	free := scenarioField(o, "free")
	mkCfg := func(s mobisense.Scheme) mobisense.Config {
		cfg := paperConfig(o, s, free)
		if o.Quick {
			cfg.N = 120
		}
		return cfg
	}
	// Fig11's Hungarian lower bounds need the runs' full initial and final
	// layouts. Plain store records do not persist them, so without layout
	// persistence this experiment executes live instead of replaying from
	// a store, and is skipped outright under sharding (Shardable) rather
	// than burning a shard's worth of runs it could never report on. With
	// Options.StoreLayouts the records carry full layouts: fig11 then
	// persists, resumes and shards like every other experiment.
	if o.Shard.Count > 1 && !o.StoreLayouts {
		return nil
	}
	oRun := o
	if !o.StoreLayouts {
		oRun.StoreDir = ""
	}
	results := runAll(oRun, "fig11", []mobisense.Config{
		mkCfg(mobisense.SchemeCPVF),
		mkCfg(mobisense.SchemeFLOOR),
		mkCfg(mobisense.SchemeVOR),
		mkCfg(mobisense.SchemeMinimax),
	})
	if results == nil {
		return nil
	}
	cp, fl, vor, mmx := results[0], results[1], results[2], results[3]

	cfg := mkCfg(mobisense.SchemeFLOOR)
	starts := toVecs(fl.InitialPositions)
	pattern := baseline.StripPattern(field.StandardBounds(), cfg.N, cfg.Rc, cfg.Rs)
	optDists, err := baseline.MinMatchingDistance(starts, pattern)
	if err != nil {
		panic(err)
	}
	floorLB, err := baseline.MinMatchingDistance(starts, toVecs(fl.Positions))
	if err != nil {
		panic(err)
	}

	mk := func(label string, v float64) Row {
		return Row{
			Figure:  "fig11",
			Label:   label,
			Columns: []Column{{"avg_distance", v}},
		}
	}
	return []Row{
		mk("CPVF", cp.AvgMoveDistance),
		mk("FLOOR", fl.AvgMoveDistance),
		mk("VOR (incl. explosion)", vor.AvgMoveDistance),
		mk("Minimax (incl. explosion)", mmx.AvgMoveDistance),
		mk("Hungarian to OPT pattern", stats.Mean(optDists)),
		mk("Hungarian to FLOOR layout", stats.Mean(floorLB)),
	}
}

// Fig12 reproduces Figure 12: the effect of the oscillation-avoidance
// factor δ on CPVF's moving distance and coverage, for the one-step and
// two-step techniques (§6.3).
func Fig12(o Options) []Row {
	deltas := []float64{2, 4, 6, 8, 10}
	if o.Quick {
		deltas = []float64{2, 8}
	}
	// The technique codes are the cpvf.OscMode values the old harness
	// emitted (one-step = 2, two-step = 3), kept for CSV compatibility.
	modes := []struct {
		name string
		code float64
	}{{"one-step", float64(cpvf.OscOneStep)}, {"two-step", float64(cpvf.OscTwoStep)}}

	base := paperBase(o, mobisense.SchemeCPVF)
	if o.Quick {
		base.N = 120
	}
	// The oscillation technique is a custom axis (the modes are coded as
	// their cpvf.OscMode values); δ is the built-in cpvf.delta axis. Both
	// setters copy-on-write the CPVF options, so they compose into the
	// exact option struct the old hand-built list produced.
	oscAxis := mobisense.NewAxis("cpvf.osc", func(cfg *mobisense.Config, code float64) {
		opt := mobisense.CPVFOptions{}
		if cfg.CPVF != nil {
			opt = *cfg.CPVF
		}
		switch int(code) {
		case int(cpvf.OscOneStep):
			opt.Oscillation = "one-step"
		case int(cpvf.OscTwoStep):
			opt.Oscillation = "two-step"
		default:
			opt.Oscillation = "none"
		}
		cfg.CPVF = &opt
	}, float64(cpvf.OscOneStep), float64(cpvf.OscTwoStep))
	sweep := mobisense.Sweep{
		Base:      base,
		Schemes:   []mobisense.Scheme{mobisense.SchemeCPVF},
		Scenarios: []string{"free"},
		Seed:      o.seed(),
		FixedSeed: true,
	}
	withAxes := sweep
	withAxes.Axes = []mobisense.ParamAxis{oscAxis, mobisense.AxisCPVFDelta(deltas...)}
	runs := runSweep(o, "fig12", withAxes)
	// Baseline without avoidance for reference (CPVF options left unset).
	baseline := runSweep(o, "fig12-base", sweep)
	if runs == nil || baseline == nil {
		return nil
	}

	var rows []Row
	for _, mode := range modes {
		for _, delta := range deltas {
			out := resultAt(runs, mobisense.SchemeCPVF, "free", base.N,
				av("cpvf.osc", mode.code), av("cpvf.delta", delta))
			rows = append(rows, Row{
				Figure: "fig12",
				Label:  fmt.Sprintf("%s δ=%.0f", mode.name, delta),
				Columns: []Column{
					{"delta", delta},
					{"technique", mode.code},
					{"avg_distance", out.AvgMoveDistance},
					{"coverage", out.Coverage},
				},
			})
		}
	}
	noAvoid := baseline[0].Result
	rows = append(rows, Row{
		Figure: "fig12",
		Label:  "no avoidance",
		Columns: []Column{
			{"delta", 0},
			{"technique", 0},
			{"avg_distance", noAvoid.AvgMoveDistance},
			{"coverage", noAvoid.Coverage},
		},
	})
	return rows
}

// Fig13 reproduces Figure 13: CDFs of coverage and moving distance for
// CPVF and FLOOR over repeated runs on random-obstacle fields (§6.4). The
// sweep derives one field per repeat, shared by both schemes (paired
// comparison), and fans the runs out across cores.
func Fig13(o Options) []Row {
	runs := 300
	if o.Quick {
		runs = 6
	}
	results := runSweep(o, "fig13", mobisense.Sweep{
		Base:      mobisense.DefaultConfig(mobisense.SchemeCPVF),
		Schemes:   []mobisense.Scheme{mobisense.SchemeCPVF, mobisense.SchemeFLOOR},
		Scenarios: []string{"random-obstacles"},
		Repeats:   runs,
		Seed:      o.seed(),
	})
	if results == nil {
		// A shard stores its slice of the runs; the merged CDFs come from
		// cmd/report over all shard stores.
		return nil
	}
	var covC, covF, distC, distF []float64
	for _, br := range results {
		switch br.Spec.Scheme {
		case mobisense.SchemeCPVF:
			covC = append(covC, br.Result.Coverage)
			distC = append(distC, br.Result.AvgMoveDistance)
		case mobisense.SchemeFLOOR:
			covF = append(covF, br.Result.Coverage)
			distF = append(distF, br.Result.AvgMoveDistance)
		}
	}
	quantiles := []float64{0.1, 0.25, 0.5, 0.75, 0.9}
	rows := []Row{
		{
			Figure: "fig13",
			Label:  "mean",
			Columns: []Column{
				{"cpvf_coverage", stats.Mean(covC)},
				{"floor_coverage", stats.Mean(covF)},
				{"cpvf_distance", stats.Mean(distC)},
				{"floor_distance", stats.Mean(distF)},
				{"runs", float64(runs)},
			},
		},
	}
	for _, q := range quantiles {
		rows = append(rows, Row{
			Figure: "fig13",
			Label:  fmt.Sprintf("p%02.0f", q*100),
			Columns: []Column{
				{"cpvf_coverage", stats.Quantile(covC, q)},
				{"floor_coverage", stats.Quantile(covF, q)},
				{"cpvf_distance", stats.Quantile(distC, q)},
				{"floor_distance", stats.Quantile(distF, q)},
			},
		})
	}
	return rows
}

// Table1 reproduces Table 1: FLOOR's total (and per-node) protocol message
// counts for varying N and invitation TTL, in the non-obstacle and
// two-obstacle environments.
func Table1(o Options) []Row {
	ns := []int{120, 160, 200, 240}
	fracs := []float64{0.1, 0.2, 0.3, 0.4}
	if o.Quick {
		ns = []int{120}
		fracs = []float64{0.1, 0.4}
	}
	envs := []struct {
		name     string
		scenario string
	}{
		{"non-obstacle", "free"},
		{"two-obstacle", "two-obstacles"},
	}
	// Paper totals (×1000) indexed by [env][n][frac].
	paper := map[string]map[int]map[float64]float64{
		"non-obstacle": {
			120: {0.1: 225, 0.2: 306, 0.3: 388, 0.4: 470},
			160: {0.1: 325, 0.2: 472, 0.3: 620, 0.4: 769},
			200: {0.1: 409, 0.2: 623, 0.3: 837, 0.4: 1052},
			240: {0.1: 457, 0.2: 714, 0.3: 970, 0.4: 1228},
		},
		"two-obstacle": {
			120: {0.1: 198, 0.2: 286, 0.3: 372, 0.4: 460},
			160: {0.1: 296, 0.2: 453, 0.3: 609, 0.4: 767},
			200: {0.1: 387, 0.2: 617, 0.3: 846, 0.4: 1077},
			240: {0.1: 428, 0.2: 700, 0.3: 973, 0.4: 1246},
		},
	}
	// The paper expresses the TTL as a fraction of N, so the axis setter
	// resolves each fraction against the run's own sensor count — the
	// kind of coupled parameter a plain value list cannot express.
	ttlAxis := mobisense.NewAxis("floor.ttl_frac", func(cfg *mobisense.Config, frac float64) {
		opt := mobisense.FloorOptions{}
		if cfg.Floor != nil {
			opt = *cfg.Floor
		}
		opt.TTL = int(frac * float64(cfg.N))
		cfg.Floor = &opt
	}, fracs...)
	scenarios := make([]string, len(envs))
	for i, env := range envs {
		scenarios[i] = env.scenario
	}
	runs := runSweep(o, "table1", mobisense.Sweep{
		Base:      paperBase(o, mobisense.SchemeFLOOR),
		Schemes:   []mobisense.Scheme{mobisense.SchemeFLOOR},
		Scenarios: scenarios,
		Ns:        ns,
		Axes:      []mobisense.ParamAxis{ttlAxis},
		Seed:      o.seed(),
		FixedSeed: true,
	})
	if runs == nil {
		return nil
	}
	var rows []Row
	for _, env := range envs {
		for _, n := range ns {
			for _, frac := range fracs {
				out := resultAt(runs, mobisense.SchemeFLOOR, env.scenario, n, av("floor.ttl_frac", frac))
				total := float64(out.Messages) / 1000
				rows = append(rows, Row{
					Figure: "table1",
					Label:  fmt.Sprintf("%s N=%d TTL=%.1fN", env.name, n, frac),
					Columns: []Column{
						{"n", float64(n)},
						{"ttl_frac", frac},
						{"total_k", total},
						{"per_node_k", total / float64(n)},
						{"paper_total_k", paper[env.name][n][frac]},
					},
				})
			}
		}
	}
	return rows
}

// All runs every experiment and returns the rows keyed by figure name.
func All(o Options) map[string][]Row {
	return map[string][]Row{
		"fig3":   Fig3(o),
		"fig8":   Fig8(o),
		"fig9":   Fig9(o),
		"fig10":  Fig10(o),
		"fig11":  Fig11(o),
		"fig12":  Fig12(o),
		"fig13":  Fig13(o),
		"table1": Table1(o),
	}
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
