// Package experiments regenerates every table and figure of the paper's
// evaluation (§4.3, §5.6, §6). Each function reproduces one artifact and
// returns structured rows that cmd/experiments prints as CSV/tables and
// the root bench harness reports as benchmark metrics.
//
// Absolute values depend on constants the paper does not specify (force
// law, invitation cadence); the functions therefore also embed the paper's
// reported numbers where available so reports can show paper-vs-measured
// side by side.
package experiments

import (
	"fmt"
	"math/rand/v2"

	"mobisense/internal/baseline"
	"mobisense/internal/core"
	"mobisense/internal/coverage"
	"mobisense/internal/cpvf"
	"mobisense/internal/field"
	"mobisense/internal/floor"
	"mobisense/internal/geom"
	"mobisense/internal/stats"
)

// Row is one data point of an experiment: a labeled set of parameter and
// metric columns, ordered for printing.
type Row struct {
	Figure  string
	Label   string
	Columns []Column
}

// Column is one named value of a row.
type Column struct {
	Name  string
	Value float64
}

// Get returns the named column value (0 when absent).
func (r Row) Get(name string) float64 {
	for _, c := range r.Columns {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Options control experiment size.
type Options struct {
	// Quick shrinks sweeps and run counts for smoke tests and benches.
	Quick bool
	// Seed drives all runs.
	Seed uint64
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// runOutcome bundles the metrics the experiments need from one run.
type runOutcome struct {
	coverage  float64
	avgDist   float64
	messages  int64
	connected bool
	layout    []geom.Vec
	starts    []geom.Vec
}

// runScheme executes one event-driven scheme run.
func runScheme(f *field.Field, p core.Params, s core.Scheme) runOutcome {
	w, err := core.NewWorld(f, p)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	starts := w.Layout()
	s.Attach(w)
	w.E.RunUntil(p.Duration)
	layout := w.Layout()
	est := coverage.NewEstimator(f, p.CoverageRes)
	return runOutcome{
		coverage:  est.Fraction(layout, p.Rs),
		avgDist:   w.AvgTraveled(),
		messages:  w.Msg.Total(),
		connected: core.AllConnected(layout, f.Reference(), p.Rc),
		layout:    layout,
		starts:    starts,
	}
}

// runSchemeStable runs a scheme for at least p.Duration and then keeps
// extending the horizon in 250 s chunks until no sensor moved during the
// last chunk (or the cap is reached), mirroring the paper's "after which
// the sensor layout becomes quite stable".
func runSchemeStable(f *field.Field, p core.Params, s core.Scheme, capSeconds float64) runOutcome {
	// Schemes schedule their per-period events only up to p.Duration, so
	// the horizon is raised to the cap up front and the run is cut short
	// as soon as a whole chunk passes without movement.
	minHorizon := p.Duration
	p.Duration = capSeconds
	w, err := core.NewWorld(f, p)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	starts := w.Layout()
	s.Attach(w)
	w.E.RunUntil(minHorizon)
	const chunk = 250.0
	for w.Now() < capSeconds && w.LastMoveTime() > w.Now()-chunk {
		w.E.RunUntil(w.Now() + chunk)
	}
	layout := w.Layout()
	est := coverage.NewEstimator(f, p.CoverageRes)
	return runOutcome{
		coverage:  est.Fraction(layout, p.Rs),
		avgDist:   w.AvgTraveled(),
		messages:  w.Msg.Total(),
		connected: core.AllConnected(layout, f.Reference(), p.Rc),
		layout:    layout,
		starts:    starts,
	}
}

// paperParams returns the §4.3 standard parameters.
func paperParams(seed uint64) core.Params {
	p := core.DefaultParams()
	p.Seed = seed
	return p
}

// Fig3 reproduces Figure 3: CPVF layouts and coverage in the three
// canonical scenarios.
func Fig3(o Options) []Row {
	return layoutScenarios(o, "fig3", func() core.Scheme { return cpvf.New(cpvf.DefaultConfig()) },
		[3]float64{0.745, 0.264, 0.371})
}

// Fig8 reproduces Figure 8: FLOOR in the same scenarios.
func Fig8(o Options) []Row {
	return layoutScenarios(o, "fig8", func() core.Scheme { return floor.New(floor.DefaultConfig()) },
		[3]float64{0.788, 0.462, 0.725})
}

func layoutScenarios(o Options, figure string, mk func() core.Scheme, paper [3]float64) []Row {
	type scenario struct {
		label  string
		rc     float64
		field  *field.Field
		paper  float64
		suffix string
	}
	scenarios := []scenario{
		{"(a) rc=60 rs=40 obstacle-free", 60, field.ObstacleFree(), paper[0], "a"},
		{"(b) rc=30 rs=40 obstacle-free", 30, field.ObstacleFree(), paper[1], "b"},
		{"(c) rc=60 rs=40 two obstacles", 60, field.TwoObstacles(), paper[2], "c"},
	}
	rows := make([]Row, 0, len(scenarios))
	for _, sc := range scenarios {
		p := paperParams(o.seed())
		p.Rc = sc.rc
		out := runScheme(sc.field, p, mk())
		rows = append(rows, Row{
			Figure: figure,
			Label:  sc.label,
			Columns: []Column{
				{"coverage", out.coverage},
				{"paper_coverage", sc.paper},
				{"avg_distance", out.avgDist},
				{"connected", boolVal(out.connected)},
			},
		})
	}
	return rows
}

// Fig9 reproduces Figure 9: coverage of CPVF, FLOOR and OPT for varying
// sensor counts and (rc, rs) pairs on the obstacle-free field.
func Fig9(o Options) []Row {
	ns := []int{120, 160, 200, 240, 280, 320}
	pairs := [][2]float64{{20, 60}, {40, 60}, {60, 60}}
	if o.Quick {
		ns = []int{120, 240}
		pairs = [][2]float64{{20, 60}, {60, 60}}
	}
	var rows []Row
	for _, pair := range pairs {
		rc, rs := pair[0], pair[1]
		for _, n := range ns {
			p := paperParams(o.seed())
			p.N = n
			p.Rc = rc
			p.Rs = rs
			f := field.ObstacleFree()
			est := coverage.NewEstimator(f, p.CoverageRes)

			cp := runScheme(f, p, cpvf.New(cpvf.DefaultConfig()))
			fl := runScheme(f, p, floor.New(floor.DefaultConfig()))
			opt := baseline.StripPattern(f.Bounds(), n, rc, rs)
			optCov := est.Fraction(opt, rs)

			rows = append(rows, Row{
				Figure: "fig9",
				Label:  fmt.Sprintf("rc=%.0f rs=%.0f N=%d", rc, rs, n),
				Columns: []Column{
					{"n", float64(n)},
					{"rc", rc},
					{"rs", rs},
					{"cpvf_coverage", cp.coverage},
					{"floor_coverage", fl.coverage},
					{"opt_coverage", optCov},
				},
			})
		}
	}
	return rows
}

// Fig10 reproduces Figure 10: FLOOR vs VOR vs Minimax for rs = 60 and
// rc/rs from 0.8 to 4, with disconnection and incorrect-VD detection.
func Fig10(o Options) []Row {
	ratios := []float64{0.8, 1, 1.5, 2, 2.5, 3, 3.5, 4}
	if o.Quick {
		ratios = []float64{0.8, 2, 4}
	}
	rs := 60.0
	var rows []Row
	for _, ratio := range ratios {
		rc := ratio * rs
		p := paperParams(o.seed())
		p.Rc = rc
		p.Rs = rs
		f := field.ObstacleFree()
		est := coverage.NewEstimator(f, p.CoverageRes)

		// Small rc/rs slows FLOOR's relocation pipeline; measure the
		// stabilized layout like the paper does.
		fl := runSchemeStable(f, p, floor.New(floor.DefaultConfig()), 2250)

		w, err := core.NewWorld(f, p)
		if err != nil {
			panic(err)
		}
		starts := w.Layout()
		cfg := baseline.DefaultVDConfig(rc, rs)
		cfg.Seed = o.seed()
		vor, err := baseline.RunVOR(f, starts, cfg)
		if err != nil {
			panic(err)
		}
		mmx, err := baseline.RunMinimax(f, starts, cfg)
		if err != nil {
			panic(err)
		}

		rows = append(rows, Row{
			Figure: "fig10",
			Label:  fmt.Sprintf("rc/rs=%.1f", ratio),
			Columns: []Column{
				{"rc_over_rs", ratio},
				{"floor_coverage", fl.coverage},
				{"vor_coverage", est.Fraction(vor.Positions, rs)},
				{"minimax_coverage", est.Fraction(mmx.Positions, rs)},
				{"floor_connected", boolVal(fl.connected)},
				{"vor_connected", boolVal(core.AllConnected(vor.Positions, f.Reference(), rc))},
				{"minimax_connected", boolVal(core.AllConnected(mmx.Positions, f.Reference(), rc))},
				{"vor_incorrect_cells", float64(vor.IncorrectCells)},
				{"minimax_incorrect_cells", float64(mmx.IncorrectCells)},
			},
		})
	}
	return rows
}

// Fig11 reproduces Figure 11: the average moving distance of six schemes
// from the clustered start — CPVF, FLOOR, VOR and Minimax (with the
// minimum-cost explosion), plus the two Hungarian lower bounds (to the
// optimal pattern and to FLOOR's own final layout).
func Fig11(o Options) []Row {
	p := paperParams(o.seed())
	if o.Quick {
		p.N = 120
	}
	f := field.ObstacleFree()

	cp := runScheme(f, p, cpvf.New(cpvf.DefaultConfig()))
	fl := runScheme(f, p, floor.New(floor.DefaultConfig()))

	cfg := baseline.DefaultVDConfig(p.Rc, p.Rs)
	cfg.Seed = o.seed()
	vor, err := baseline.RunVOR(f, fl.starts, cfg)
	if err != nil {
		panic(err)
	}
	mmx, err := baseline.RunMinimax(f, fl.starts, cfg)
	if err != nil {
		panic(err)
	}

	pattern := baseline.StripPattern(f.Bounds(), p.N, p.Rc, p.Rs)
	optDists, err := baseline.MinMatchingDistance(fl.starts, pattern)
	if err != nil {
		panic(err)
	}
	floorLB, err := baseline.MinMatchingDistance(fl.starts, fl.layout)
	if err != nil {
		panic(err)
	}

	mk := func(label string, v float64) Row {
		return Row{
			Figure:  "fig11",
			Label:   label,
			Columns: []Column{{"avg_distance", v}},
		}
	}
	return []Row{
		mk("CPVF", cp.avgDist),
		mk("FLOOR", fl.avgDist),
		mk("VOR (incl. explosion)", vor.AvgDistance()),
		mk("Minimax (incl. explosion)", mmx.AvgDistance()),
		mk("Hungarian to OPT pattern", stats.Mean(optDists)),
		mk("Hungarian to FLOOR layout", stats.Mean(floorLB)),
	}
}

// Fig12 reproduces Figure 12: the effect of the oscillation-avoidance
// factor δ on CPVF's moving distance and coverage, for the one-step and
// two-step techniques (§6.3).
func Fig12(o Options) []Row {
	deltas := []float64{2, 4, 6, 8, 10}
	if o.Quick {
		deltas = []float64{2, 8}
	}
	var rows []Row
	for _, mode := range []struct {
		name string
		m    cpvf.OscMode
	}{{"one-step", cpvf.OscOneStep}, {"two-step", cpvf.OscTwoStep}} {
		for _, delta := range deltas {
			p := paperParams(o.seed())
			if o.Quick {
				p.N = 120
			}
			cfg := cpvf.DefaultConfig()
			cfg.Oscillation = mode.m
			cfg.Delta = delta
			out := runScheme(field.ObstacleFree(), p, cpvf.New(cfg))
			rows = append(rows, Row{
				Figure: "fig12",
				Label:  fmt.Sprintf("%s δ=%.0f", mode.name, delta),
				Columns: []Column{
					{"delta", delta},
					{"technique", float64(mode.m)},
					{"avg_distance", out.avgDist},
					{"coverage", out.coverage},
				},
			})
		}
	}
	// Baseline without avoidance for reference.
	p := paperParams(o.seed())
	if o.Quick {
		p.N = 120
	}
	base := runScheme(field.ObstacleFree(), p, cpvf.New(cpvf.DefaultConfig()))
	rows = append(rows, Row{
		Figure: "fig12",
		Label:  "no avoidance",
		Columns: []Column{
			{"delta", 0},
			{"technique", 0},
			{"avg_distance", base.avgDist},
			{"coverage", base.coverage},
		},
	})
	return rows
}

// Fig13 reproduces Figure 13: CDFs of coverage and moving distance for
// CPVF and FLOOR over repeated runs on random-obstacle fields (§6.4).
func Fig13(o Options) []Row {
	runs := 300
	if o.Quick {
		runs = 6
	}
	rng := rand.New(rand.NewPCG(o.seed(), o.seed()^0x5bf03635))
	var covC, covF, distC, distF []float64
	for r := 0; r < runs; r++ {
		f, err := field.RandomObstacles(rng, field.DefaultRandomObstacleConfig())
		if err != nil {
			panic(err)
		}
		p := paperParams(o.seed() + uint64(r))
		cp := runScheme(f, p, cpvf.New(cpvf.DefaultConfig()))
		fl := runScheme(f, p, floor.New(floor.DefaultConfig()))
		covC = append(covC, cp.coverage)
		covF = append(covF, fl.coverage)
		distC = append(distC, cp.avgDist)
		distF = append(distF, fl.avgDist)
	}
	quantiles := []float64{0.1, 0.25, 0.5, 0.75, 0.9}
	rows := []Row{
		{
			Figure: "fig13",
			Label:  "mean",
			Columns: []Column{
				{"cpvf_coverage", stats.Mean(covC)},
				{"floor_coverage", stats.Mean(covF)},
				{"cpvf_distance", stats.Mean(distC)},
				{"floor_distance", stats.Mean(distF)},
				{"runs", float64(runs)},
			},
		},
	}
	for _, q := range quantiles {
		rows = append(rows, Row{
			Figure: "fig13",
			Label:  fmt.Sprintf("p%02.0f", q*100),
			Columns: []Column{
				{"cpvf_coverage", stats.Quantile(covC, q)},
				{"floor_coverage", stats.Quantile(covF, q)},
				{"cpvf_distance", stats.Quantile(distC, q)},
				{"floor_distance", stats.Quantile(distF, q)},
			},
		})
	}
	return rows
}

// Table1 reproduces Table 1: FLOOR's total (and per-node) protocol message
// counts for varying N and invitation TTL, in the non-obstacle and
// two-obstacle environments.
func Table1(o Options) []Row {
	ns := []int{120, 160, 200, 240}
	fracs := []float64{0.1, 0.2, 0.3, 0.4}
	if o.Quick {
		ns = []int{120}
		fracs = []float64{0.1, 0.4}
	}
	envs := []struct {
		name string
		f    func() *field.Field
	}{
		{"non-obstacle", field.ObstacleFree},
		{"two-obstacle", field.TwoObstacles},
	}
	// Paper totals (×1000) indexed by [env][n][frac].
	paper := map[string]map[int]map[float64]float64{
		"non-obstacle": {
			120: {0.1: 225, 0.2: 306, 0.3: 388, 0.4: 470},
			160: {0.1: 325, 0.2: 472, 0.3: 620, 0.4: 769},
			200: {0.1: 409, 0.2: 623, 0.3: 837, 0.4: 1052},
			240: {0.1: 457, 0.2: 714, 0.3: 970, 0.4: 1228},
		},
		"two-obstacle": {
			120: {0.1: 198, 0.2: 286, 0.3: 372, 0.4: 460},
			160: {0.1: 296, 0.2: 453, 0.3: 609, 0.4: 767},
			200: {0.1: 387, 0.2: 617, 0.3: 846, 0.4: 1077},
			240: {0.1: 428, 0.2: 700, 0.3: 973, 0.4: 1246},
		},
	}
	var rows []Row
	for _, env := range envs {
		for _, n := range ns {
			for _, frac := range fracs {
				p := paperParams(o.seed())
				p.N = n
				cfg := floor.DefaultConfig()
				cfg.TTL = int(frac * float64(n))
				out := runScheme(env.f(), p, floor.New(cfg))
				total := float64(out.messages) / 1000
				rows = append(rows, Row{
					Figure: "table1",
					Label:  fmt.Sprintf("%s N=%d TTL=%.1fN", env.name, n, frac),
					Columns: []Column{
						{"n", float64(n)},
						{"ttl_frac", frac},
						{"total_k", total},
						{"per_node_k", total / float64(n)},
						{"paper_total_k", paper[env.name][n][frac]},
					},
				})
			}
		}
	}
	return rows
}

// All runs every experiment and returns the rows keyed by figure name.
func All(o Options) map[string][]Row {
	return map[string][]Row{
		"fig3":   Fig3(o),
		"fig8":   Fig8(o),
		"fig9":   Fig9(o),
		"fig10":  Fig10(o),
		"fig11":  Fig11(o),
		"fig12":  Fig12(o),
		"fig13":  Fig13(o),
		"table1": Table1(o),
	}
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
