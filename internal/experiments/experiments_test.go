package experiments

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mobisense"
)

// All experiment tests use Quick mode; the full sweeps run via
// cmd/experiments and the root benchmarks.

func TestFig3Shape(t *testing.T) {
	rows := Fig3(Options{Quick: true})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's qualitative claim: scenario (b) (small rc) is far worse
	// than (a).
	if rows[1].Get("coverage") >= rows[0].Get("coverage") {
		t.Errorf("rc=30 coverage %.3f should be below rc=60 coverage %.3f",
			rows[1].Get("coverage"), rows[0].Get("coverage"))
	}
	for _, r := range rows {
		if r.Get("connected") != 1 {
			t.Errorf("%s: CPVF must keep the network connected", r.Label)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	rows := Fig8(Options{Quick: true})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	f3 := Fig3(Options{Quick: true})
	// FLOOR beats CPVF decisively in the small-rc scenario (b).
	if rows[1].Get("coverage") <= f3[1].Get("coverage") {
		t.Errorf("FLOOR rc=30 %.3f should beat CPVF %.3f",
			rows[1].Get("coverage"), f3[1].Get("coverage"))
	}
	// And in the obstacle scenario (c).
	if rows[2].Get("coverage") <= f3[2].Get("coverage") {
		t.Errorf("FLOOR two-obs %.3f should beat CPVF %.3f",
			rows[2].Get("coverage"), f3[2].Get("coverage"))
	}
}

func TestFig9Shape(t *testing.T) {
	rows := Fig9(Options{Quick: true})
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		// OPT upper-bounds both schemes (it is the centralized optimum).
		if r.Get("opt_coverage")+0.05 < r.Get("floor_coverage") {
			t.Errorf("%s: OPT %.3f below FLOOR %.3f", r.Label,
				r.Get("opt_coverage"), r.Get("floor_coverage"))
		}
		// At rc=20, rs=60 FLOOR must beat CPVF clearly (the paper's
		// headline gap).
		if r.Get("rc") == 20 && r.Get("floor_coverage") <= r.Get("cpvf_coverage") {
			t.Errorf("%s: FLOOR %.3f <= CPVF %.3f at small rc", r.Label,
				r.Get("floor_coverage"), r.Get("cpvf_coverage"))
		}
	}
}

func TestFig10Shape(t *testing.T) {
	rows := Fig10(Options{Quick: true})
	for _, r := range rows {
		ratio := r.Get("rc_over_rs")
		if r.Get("floor_connected") != 1 {
			t.Errorf("%s: FLOOR disconnected", r.Label)
		}
		if ratio < 1.5 {
			// The paper: neither VOR nor Minimax achieves connectivity for
			// rc/rs <= 2. With the minimum-distance explosion producing a
			// uniform layout, rc = 2·rs = 120 m is already supercritical
			// for 240 sensors, so the reproduction asserts the clearly
			// sub-critical regime only (deviation noted in EXPERIMENTS.md).
			if r.Get("vor_connected") == 1 && r.Get("minimax_connected") == 1 {
				t.Errorf("%s: VD schemes unexpectedly both connected", r.Label)
			}
		}
		if ratio < 1 && r.Get("vor_incorrect_cells") == 0 {
			t.Errorf("%s: expected incorrect cells at tiny rc", r.Label)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	rows := Fig11(Options{Quick: true})
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byLabel := map[string]float64{}
	for _, r := range rows {
		byLabel[r.Label] = r.Get("avg_distance")
	}
	// The Hungarian bound to FLOOR's own layout can never exceed FLOOR's
	// actual distance.
	if byLabel["Hungarian to FLOOR layout"] > byLabel["FLOOR"]+1e-9 {
		t.Errorf("lower bound %.1f exceeds FLOOR %.1f",
			byLabel["Hungarian to FLOOR layout"], byLabel["FLOOR"])
	}
	// VOR/Minimax carry the explosion cost: they must be the two largest
	// (the paper's main Fig 11 finding).
	for _, vd := range []string{"VOR (incl. explosion)", "Minimax (incl. explosion)"} {
		if byLabel[vd] <= byLabel["FLOOR"] {
			t.Errorf("%s %.1f should exceed FLOOR %.1f", vd, byLabel[vd], byLabel["FLOOR"])
		}
	}
}

func TestFig12Shape(t *testing.T) {
	rows := Fig12(Options{Quick: true})
	var base float64
	for _, r := range rows {
		if r.Label == "no avoidance" {
			base = r.Get("avg_distance")
		}
	}
	if base == 0 {
		t.Fatal("baseline row missing")
	}
	// Every avoidance configuration should move no more than the baseline
	// (within 10% noise).
	for _, r := range rows {
		if r.Label == "no avoidance" {
			continue
		}
		if d := r.Get("avg_distance"); d > base*1.1 {
			t.Errorf("%s: distance %.1f exceeds baseline %.1f", r.Label, d, base)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	rows := Fig13(Options{Quick: true})
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	mean := rows[0]
	if mean.Label != "mean" {
		t.Fatal("first row should be the mean")
	}
	// Both schemes must produce sane coverage on random-obstacle fields.
	// (The paper reports FLOOR's mean more than 20 points above CPVF's;
	// in this reproduction CPVF is less obstacle-impaired on benign random
	// layouts, so the gap claim is checked — and its deviation documented —
	// in EXPERIMENTS.md rather than asserted here.)
	if mean.Get("floor_coverage") < 0.35 {
		t.Errorf("FLOOR mean coverage %.3f suspiciously low", mean.Get("floor_coverage"))
	}
	if mean.Get("cpvf_coverage") < 0.25 {
		t.Errorf("CPVF mean coverage %.3f suspiciously low", mean.Get("cpvf_coverage"))
	}
	for _, r := range rows[1:] {
		for _, c := range r.Columns {
			if c.Value < 0 {
				t.Errorf("%s %s negative", r.Label, c.Name)
			}
		}
	}
}

// TestAxisSweepsMatchHandBuiltLists is the acceptance check for the axis
// rewrite: every figure that moved from a hand-built []Config list onto an
// axis sweep must produce bit-identical metrics. Each subtest rebuilds the
// pre-refactor config list exactly as the old harness did (one fixed seed,
// explicit per-config field assignments), runs it through RunBatch, and
// compares float-for-float against the axis-based figure.
func TestAxisSweepsMatchHandBuiltLists(t *testing.T) {
	o := Options{Quick: true}

	batch := func(t *testing.T, cfgs []mobisense.Config) []mobisense.Result {
		t.Helper()
		out, err := mobisense.RunBatch(context.Background(), cfgs, mobisense.BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		results := make([]mobisense.Result, len(out))
		for i, br := range out {
			if br.Err != nil {
				t.Fatalf("run %d: %v", i, br.Err)
			}
			results[i] = br.Result
		}
		return results
	}

	t.Run("fig9", func(t *testing.T) {
		ns := []int{120, 240}
		pairs := [][2]float64{{20, 60}, {60, 60}}
		schemes := []mobisense.Scheme{mobisense.SchemeCPVF, mobisense.SchemeFLOOR, mobisense.SchemeOPT}
		free := scenarioField(o, "free")
		var cfgs []mobisense.Config
		for _, pair := range pairs {
			for _, n := range ns {
				for _, s := range schemes {
					cfg := paperConfig(o, s, free)
					cfg.N = n
					cfg.Rc = pair[0]
					cfg.Rs = pair[1]
					cfgs = append(cfgs, cfg)
				}
			}
		}
		results := batch(t, cfgs)
		rows := Fig9(o)
		if len(rows) != len(ns)*len(pairs) {
			t.Fatalf("rows = %d", len(rows))
		}
		// Both orderings are rc-pair outer, N inner; the list packs the
		// three schemes per point.
		for j, row := range rows {
			cp, fl, opt := results[3*j], results[3*j+1], results[3*j+2]
			if row.Get("cpvf_coverage") != cp.Coverage ||
				row.Get("floor_coverage") != fl.Coverage ||
				row.Get("opt_coverage") != opt.Coverage {
				t.Errorf("%s: axis sweep differs from hand-built list", row.Label)
			}
		}
	})

	t.Run("fig10", func(t *testing.T) {
		ratios := []float64{0.8, 2, 4}
		rs := 60.0
		free := scenarioField(o, "free")
		var cfgs []mobisense.Config
		for _, ratio := range ratios {
			fl := paperConfig(o, mobisense.SchemeFLOOR, free)
			fl.Rc = ratio * rs
			fl.Rs = rs
			fl.Stabilize = &mobisense.StabilizeOptions{Cap: 2250}
			vor := paperConfig(o, mobisense.SchemeVOR, free)
			vor.Rc = ratio * rs
			vor.Rs = rs
			mmx := vor
			mmx.Scheme = mobisense.SchemeMinimax
			cfgs = append(cfgs, fl, vor, mmx)
		}
		results := batch(t, cfgs)
		rows := Fig10(o)
		if len(rows) != len(ratios) {
			t.Fatalf("rows = %d", len(rows))
		}
		for i, row := range rows {
			fl, vor, mmx := results[3*i], results[3*i+1], results[3*i+2]
			if row.Get("floor_coverage") != fl.Coverage ||
				row.Get("vor_coverage") != vor.Coverage ||
				row.Get("minimax_coverage") != mmx.Coverage {
				t.Errorf("%s: axis sweep differs from hand-built list", row.Label)
			}
		}
	})

	t.Run("fig12", func(t *testing.T) {
		deltas := []float64{2, 8}
		modes := []string{"one-step", "two-step"}
		free := scenarioField(o, "free")
		mkCfg := func(osc string, delta float64) mobisense.Config {
			cfg := paperConfig(o, mobisense.SchemeCPVF, free)
			cfg.N = 120
			if osc != "" {
				cfg.CPVF = &mobisense.CPVFOptions{Oscillation: osc, Delta: delta}
			}
			return cfg
		}
		var cfgs []mobisense.Config
		for _, mode := range modes {
			for _, delta := range deltas {
				cfgs = append(cfgs, mkCfg(mode, delta))
			}
		}
		cfgs = append(cfgs, mkCfg("", 0))
		results := batch(t, cfgs)
		rows := Fig12(o)
		if len(rows) != len(cfgs) {
			t.Fatalf("rows = %d, want %d", len(rows), len(cfgs))
		}
		for i, row := range rows {
			if row.Get("avg_distance") != results[i].AvgMoveDistance ||
				row.Get("coverage") != results[i].Coverage {
				t.Errorf("%s: axis sweep differs from hand-built list (dist %v vs %v)",
					row.Label, row.Get("avg_distance"), results[i].AvgMoveDistance)
			}
		}
	})

	t.Run("table1", func(t *testing.T) {
		ns := []int{120}
		fracs := []float64{0.1, 0.4}
		scenarios := []string{"free", "two-obstacles"}
		var cfgs []mobisense.Config
		for _, scen := range scenarios {
			envField := scenarioField(o, scen)
			for _, n := range ns {
				for _, frac := range fracs {
					cfg := paperConfig(o, mobisense.SchemeFLOOR, envField)
					cfg.N = n
					cfg.Floor = &mobisense.FloorOptions{TTL: int(frac * float64(n))}
					cfgs = append(cfgs, cfg)
				}
			}
		}
		results := batch(t, cfgs)
		rows := Table1(o)
		if len(rows) != len(cfgs) {
			t.Fatalf("rows = %d, want %d", len(rows), len(cfgs))
		}
		for i, row := range rows {
			want := float64(results[i].Messages) / 1000
			if row.Get("total_k") != want {
				t.Errorf("%s: axis sweep total %.3fk differs from hand-built %.3fk",
					row.Label, row.Get("total_k"), want)
			}
		}
	})
}

// TestStoreReplayReproducesRows runs one experiment twice against the same
// store: the second pass replays every run from disk and must reproduce
// the rows exactly.
func TestStoreReplayReproducesRows(t *testing.T) {
	dir := t.TempDir()
	o := Options{Quick: true, StoreDir: dir, Resume: true}
	first := Table1(o)
	if _, err := os.Stat(filepath.Join(dir, "table1", "records.jsonl")); err != nil {
		t.Fatalf("store not written: %v", err)
	}
	replayed := Table1(o)
	if !reflect.DeepEqual(first, replayed) {
		t.Errorf("replayed rows differ:\nfirst:    %+v\nreplayed: %+v", first, replayed)
	}
}

// TestInterrupted: a cancelled context panics out of the experiment
// functions with a value Interrupted recognizes.
func TestInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("cancelled experiment should panic")
		}
		if !Interrupted(v) {
			t.Fatalf("Interrupted(%v) = false", v)
		}
	}()
	Fig11(Options{Quick: true, Context: ctx})
}

func TestTable1Shape(t *testing.T) {
	rows := Table1(Options{Quick: true})
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Messages grow with the TTL within one environment and N.
	byFrac := map[float64]float64{}
	for _, r := range rows {
		if r.Get("n") == 120 && r.Label[:3] == "non" {
			byFrac[r.Get("ttl_frac")] = r.Get("total_k")
		}
	}
	if byFrac[0.4] <= byFrac[0.1] {
		t.Errorf("TTL=0.4N total %.0fk should exceed TTL=0.1N %.0fk", byFrac[0.4], byFrac[0.1])
	}
}
