package field

import (
	"math"
	"os"

	"mobisense/internal/geom"
)

// This file holds the field's segment acceleration structure: every solid
// boundary edge flattened into one struct-of-arrays arena with padded
// per-edge bounding boxes, plus a uniform grid binning edges by cell.
// Geometry kernels (FirstHit, SegmentFree/Visible, Clearance, the
// boundary queries) walk only candidate edges near the query instead of
// every edge of every solid.
//
// Every use of the structure is an *exact pruning* transformation: a
// candidate edge set is only ever a superset of the edges that can
// influence the brute-force result, and the per-edge predicates are the
// very same expressions the brute-force path evaluates, so results are
// bit-identical — the repo's determinism invariant. The padding absorbs
// the Eps-scaled slack of the geometric predicates (IntersectParam
// accepts parameters in [-Eps, 1+Eps], i.e. points up to ~Eps·length ≈
// 1e-5 m off an edge); accelPad exceeds that by two orders of magnitude.

// accelPad is the bounding-box padding in meters. It must exceed the
// largest positional slack any geometric predicate grants (~Eps times the
// longest segment, ≈1e-5 m here); 1e-3 m leaves a 100× margin while
// admitting essentially no extra candidates at field scale.
const accelPad = 1e-3

// accelEnabled gates the accelerated query paths at run time. It exists
// for A/B tests and benchmarks that compare the accelerated kernels
// against the retained brute-force paths on the same (possibly cached)
// fields; production code never touches it. Toggling is only safe when
// no queries are in flight.
var accelEnabled = os.Getenv("MOBISENSE_NO_ACCEL") != "1"

// SetAccelEnabled turns the acceleration structure on or off globally and
// returns the previous setting. Test/benchmark hook only; the
// MOBISENSE_NO_ACCEL=1 environment variable sets the initial state to off
// so A/B benchmarks can run without code changes.
func SetAccelEnabled(on bool) bool {
	prev := accelEnabled
	accelEnabled = on
	return prev
}

// accel is the immutable acceleration structure, built once per Field.
type accel struct {
	// Edge arena in (solid, edge) order: endpoints, precomputed lengths
	// and padded bounding boxes, plus the owning solid/edge indices.
	ax, ay, bx, by []float64
	elen           []float64
	bbMinX, bbMinY []float64
	bbMaxX, bbMaxY []float64
	solid, edge    []int32
	// solidStart[i] is the arena index of solid i's first edge;
	// solidStart[len(solids)] closes the last range.
	solidStart []int32

	// Uniform grid over the field bounds in CSR layout: cell c's edge ids
	// are cellEdges[cellStart[c]:cellStart[c+1]]. Edges (and queries)
	// outside the grid clamp into the border cells, so off-grid geometry
	// — the frame polygons extend frameThickness beyond the bounds — is
	// still found.
	minX, minY float64
	cellW      float64
	gnx, gny   int
	cellStart  []int32
	cellEdges  []int32
}

// buildAccel flattens the solids into the arena and bins the edges.
func buildAccel(solids []geom.Polygon, bounds geom.Rect) *accel {
	nEdges := 0
	for _, s := range solids {
		nEdges += s.NumEdges()
	}
	a := &accel{
		ax:         make([]float64, 0, nEdges),
		ay:         make([]float64, 0, nEdges),
		bx:         make([]float64, 0, nEdges),
		by:         make([]float64, 0, nEdges),
		elen:       make([]float64, 0, nEdges),
		bbMinX:     make([]float64, 0, nEdges),
		bbMinY:     make([]float64, 0, nEdges),
		bbMaxX:     make([]float64, 0, nEdges),
		bbMaxY:     make([]float64, 0, nEdges),
		solid:      make([]int32, 0, nEdges),
		edge:       make([]int32, 0, nEdges),
		solidStart: make([]int32, 0, len(solids)+1),
	}
	for si, s := range solids {
		a.solidStart = append(a.solidStart, int32(len(a.ax)))
		for e := 0; e < s.NumEdges(); e++ {
			seg := s.Edge(e)
			a.ax = append(a.ax, seg.A.X)
			a.ay = append(a.ay, seg.A.Y)
			a.bx = append(a.bx, seg.B.X)
			a.by = append(a.by, seg.B.Y)
			a.elen = append(a.elen, seg.Len())
			a.bbMinX = append(a.bbMinX, math.Min(seg.A.X, seg.B.X)-accelPad)
			a.bbMinY = append(a.bbMinY, math.Min(seg.A.Y, seg.B.Y)-accelPad)
			a.bbMaxX = append(a.bbMaxX, math.Max(seg.A.X, seg.B.X)+accelPad)
			a.bbMaxY = append(a.bbMaxY, math.Max(seg.A.Y, seg.B.Y)+accelPad)
			a.solid = append(a.solid, int32(si))
			a.edge = append(a.edge, int32(e))
		}
	}
	a.solidStart = append(a.solidStart, int32(len(a.ax)))

	// Grid resolution: scale the per-axis cell count with the edge count
	// so dense random-obstacle fields get finer bins, and keep square
	// cells over the longer bounds axis.
	n := 4 * (int(math.Sqrt(float64(nEdges))) + 1)
	if n < 8 {
		n = 8
	}
	if n > 128 {
		n = 128
	}
	ext := math.Max(bounds.W(), bounds.H())
	if ext <= 0 {
		ext = 1
	}
	a.cellW = ext / float64(n)
	a.minX, a.minY = bounds.Min.X, bounds.Min.Y
	a.gnx = int(math.Ceil(bounds.W()/a.cellW)) + 1
	a.gny = int(math.Ceil(bounds.H()/a.cellW)) + 1

	// Two-pass CSR fill: count edges per cell, then place them.
	counts := make([]int32, a.gnx*a.gny+1)
	for i := range a.ax {
		ix0, iy0 := a.cellOf(a.bbMinX[i], a.bbMinY[i])
		ix1, iy1 := a.cellOf(a.bbMaxX[i], a.bbMaxY[i])
		for iy := iy0; iy <= iy1; iy++ {
			for ix := ix0; ix <= ix1; ix++ {
				counts[iy*a.gnx+ix+1]++
			}
		}
	}
	for c := 1; c < len(counts); c++ {
		counts[c] += counts[c-1]
	}
	a.cellStart = counts
	a.cellEdges = make([]int32, a.cellStart[len(a.cellStart)-1])
	next := make([]int32, a.gnx*a.gny)
	for i := range a.ax {
		ix0, iy0 := a.cellOf(a.bbMinX[i], a.bbMinY[i])
		ix1, iy1 := a.cellOf(a.bbMaxX[i], a.bbMaxY[i])
		for iy := iy0; iy <= iy1; iy++ {
			for ix := ix0; ix <= ix1; ix++ {
				c := iy*a.gnx + ix
				a.cellEdges[a.cellStart[c]+next[c]] = int32(i)
				next[c]++
			}
		}
	}
	return a
}

// cellOf maps a point to its (clamped) grid cell.
func (a *accel) cellOf(x, y float64) (ix, iy int) {
	ix = int((x - a.minX) / a.cellW)
	if ix < 0 {
		ix = 0
	} else if ix >= a.gnx {
		ix = a.gnx - 1
	}
	iy = int((y - a.minY) / a.cellW)
	if iy < 0 {
		iy = 0
	} else if iy >= a.gny {
		iy = a.gny - 1
	}
	return ix, iy
}

// edgeSeg reconstructs arena edge i as a Segment.
func (a *accel) edgeSeg(i int32) geom.Segment {
	return geom.Segment{
		A: geom.Vec{X: a.ax[i], Y: a.ay[i]},
		B: geom.Vec{X: a.bx[i], Y: a.by[i]},
	}
}

// firstHit is the accelerated FirstHit: it walks the grid cells the query
// segment passes through and reduces the candidate edges to the
// lexicographic minimum of (t, solid, edge) — exactly the winner the
// brute-force solid-by-solid scan selects (strictly smaller t wins there,
// with ties broken by solid order and then edge order).
func (a *accel) firstHit(s geom.Segment) (Hit, bool) {
	sDir := s.B.Sub(s.A)
	sLen := sDir.Len()
	sbMinX := math.Min(s.A.X, s.B.X) - accelPad
	sbMinY := math.Min(s.A.Y, s.B.Y) - accelPad
	sbMaxX := math.Max(s.A.X, s.B.X) + accelPad
	sbMaxY := math.Max(s.A.Y, s.B.Y) + accelPad

	bestT := math.Inf(1)
	bestSolid, bestEdge := int32(-1), int32(-1)

	_, iy0 := a.cellOf(sbMinX, sbMinY)
	_, iy1 := a.cellOf(sbMaxX, sbMaxY)
	for iy := iy0; iy <= iy1; iy++ {
		// The y-band of this row, padded; border rows extend to infinity
		// because off-grid edges (and query portions) clamp into them.
		bandLo := a.minY + float64(iy)*a.cellW - accelPad
		bandHi := a.minY + float64(iy+1)*a.cellW + accelPad
		if iy == 0 {
			bandLo = math.Inf(-1)
		}
		if iy == a.gny-1 {
			bandHi = math.Inf(1)
		}
		xLo, xHi, ok := segXRange(s, bandLo, bandHi)
		if !ok {
			continue
		}
		ix0, _ := a.cellOf(xLo-accelPad, 0)
		ix1, _ := a.cellOf(xHi+accelPad, 0)
		base := iy * a.gnx
		for ix := ix0; ix <= ix1; ix++ {
			c := base + ix
			for _, ei := range a.cellEdges[a.cellStart[c]:a.cellStart[c+1]] {
				// Cheap bbox reject; edges spanning several visited cells
				// are simply tested more than once — the min-reduction is
				// idempotent, so no dedup state is needed.
				if a.bbMinX[ei] > sbMaxX || a.bbMaxX[ei] < sbMinX ||
					a.bbMinY[ei] > sbMaxY || a.bbMaxY[ei] < sbMinY {
					continue
				}
				e := a.edgeSeg(ei)
				// Identical predicates to Polygon.IntersectSegment: skip
				// parallel edges (grazing is not a crossing), then take
				// the exact segment-segment parameter.
				if math.Abs(sDir.Cross(e.B.Sub(e.A))) < geom.Eps*math.Max(1, sLen*a.elen[ei]) {
					continue
				}
				ti, hit := s.IntersectParam(e)
				if !hit {
					continue
				}
				if ti < bestT ||
					(ti == bestT && (a.solid[ei] < bestSolid ||
						(a.solid[ei] == bestSolid && a.edge[ei] < bestEdge))) {
					bestT = ti
					bestSolid = a.solid[ei]
					bestEdge = a.edge[ei]
				}
			}
		}
	}
	if bestSolid < 0 {
		return Hit{}, false
	}
	return Hit{T: bestT, Point: s.At(bestT), Solid: int(bestSolid), Edge: int(bestEdge)}, true
}

// segXRange returns the x-extent of the part of s whose y lies in
// [yLo, yHi]; ok is false when no part of the segment is in the band.
func segXRange(s geom.Segment, yLo, yHi float64) (xLo, xHi float64, ok bool) {
	t0, t1 := 0.0, 1.0
	dy := s.B.Y - s.A.Y
	if dy != 0 {
		ta := (yLo - s.A.Y) / dy
		tb := (yHi - s.A.Y) / dy
		if ta > tb {
			ta, tb = tb, ta
		}
		t0 = math.Max(t0, ta)
		t1 = math.Min(t1, tb)
		if t0 > t1 {
			return 0, 0, false
		}
	} else if s.A.Y < yLo || s.A.Y > yHi {
		return 0, 0, false
	}
	dx := s.B.X - s.A.X
	x0 := s.A.X + dx*t0
	x1 := s.A.X + dx*t1
	return math.Min(x0, x1), math.Max(x0, x1), true
}

// dist2ToPaddedRect returns the squared distance from (x, y) to the
// padded bounding box of arena edge i (zero inside the box). It
// lower-bounds the true point-to-edge distance by at least accelPad
// whenever it is positive, so pruning on it is exact even across
// floating-point rounding of the two different distance computations.
func (a *accel) dist2ToPaddedRect(i int32, x, y float64) float64 {
	var dx, dy float64
	if x < a.bbMinX[i] {
		dx = a.bbMinX[i] - x
	} else if x > a.bbMaxX[i] {
		dx = x - a.bbMaxX[i]
	}
	if y < a.bbMinY[i] {
		dy = a.bbMinY[i] - y
	} else if y > a.bbMaxY[i] {
		dy = y - a.bbMaxY[i]
	}
	return dx*dx + dy*dy
}

// closestBoundaryPoint is the accelerated Polygon.ClosestBoundaryPoint
// for solid si: identical scan order and update predicate, with edges
// whose padded bbox already lies beyond the current best pruned away.
func (a *accel) closestBoundaryPoint(si int, q geom.Vec) (geom.Vec, int) {
	lo, hi := a.solidStart[si], a.solidStart[si+1]
	best := geom.Vec{X: a.ax[lo], Y: a.ay[lo]}
	bestEdge := 0
	bestD := math.Inf(1)
	for i := lo; i < hi; i++ {
		// True d² ≥ padded-bbox d², so a strictly larger bound can never
		// beat bestD under the brute path's strict `d < bestD` update.
		if a.dist2ToPaddedRect(i, q.X, q.Y) > bestD {
			continue
		}
		pt := a.edgeSeg(i).ClosestPoint(q)
		if d := pt.Dist2(q); d < bestD {
			bestD = d
			best = pt
			bestEdge = int(i - lo)
		}
	}
	return best, bestEdge
}

// ProbeScratch holds the reusable candidate buffers of a DiskProbe, so
// per-period callers (the coverage kernels) fill probes without
// allocating.
type ProbeScratch struct {
	edges []int32
	obs   []int32
}

// Probe is a disk-scoped line-of-sight context: the candidate solid
// edges and interior obstacles that can influence visibility between
// points inside the disk it was built for. A probe whose candidate edge
// list is empty answers every in-disk visibility query with "visible"
// without any geometry work — the common case on sparse-obstacle fields.
type Probe struct {
	f      *Field
	edges  []int32
	obs    []int32
	active bool
}

// Active reports whether the probe can answer queries; it is false when
// the field has no acceleration structure, and callers must fall back to
// Field.Visible.
func (p Probe) Active() bool { return p.active }

// TriviallyVisible reports that no solid edge lies near the probe's
// disk, so every in-disk free pair is mutually visible and callers may
// skip per-pair visibility tests altogether — the common case on
// sparse-obstacle fields.
func (p Probe) TriviallyVisible() bool { return p.active && len(p.edges) == 0 }

// DiskProbe gathers the candidate edges and obstacles for visibility
// queries between points inside the disk of radius r around center. The
// scratch buffers are reused across fills; the returned probe aliases
// them and is valid until the next fill of the same scratch.
func (f *Field) DiskProbe(sc *ProbeScratch, center geom.Vec, r float64) Probe {
	if f.accel == nil || !accelEnabled {
		return Probe{f: f}
	}
	a := f.accel
	loX, loY := center.X-r-accelPad, center.Y-r-accelPad
	hiX, hiY := center.X+r+accelPad, center.Y+r+accelPad
	edges := sc.edges[:0]
	// The arena sweep is a branch-light SoA pass; for the edge counts the
	// simulator sees it beats assembling + deduping grid cell lists.
	for i := range a.ax {
		if a.bbMinX[i] > hiX || a.bbMaxX[i] < loX ||
			a.bbMinY[i] > hiY || a.bbMaxY[i] < loY {
			continue
		}
		edges = append(edges, int32(i))
	}
	sc.edges = edges
	obs := sc.obs[:0]
	for i := range f.obstacles {
		bb := f.solidBB[i]
		if bb.Min.X-accelPad > hiX || bb.Max.X+accelPad < loX ||
			bb.Min.Y-accelPad > hiY || bb.Max.Y+accelPad < loY {
			continue
		}
		obs = append(obs, int32(i))
	}
	sc.obs = obs
	return Probe{f: f, edges: edges, obs: obs, active: true}
}

// VisibleFree reports Field.Visible(a, b) for endpoints that are already
// known to be free and lie inside the probe's disk — the coverage
// kernels establish both facts before the inner loop, so the redundant
// Free point tests are elided. The hit search reduces over the probe's
// candidate edges only; every edge any in-disk segment can hit is a
// candidate, so the reduction equals the full FirstHit.
func (p Probe) VisibleFree(a, b geom.Vec) bool {
	f := p.f
	if len(f.obstacles) == 0 {
		// Visible's obstacle-free shortcut is Free(a) && Free(b), both
		// known true.
		return true
	}
	if len(p.edges) == 0 {
		// No solid edge anywhere near the disk: FirstHit cannot hit, and
		// SegmentFree of two free points with no hit is true.
		return true
	}
	ac := f.accel
	s := geom.Seg(a, b)
	sDir := s.B.Sub(s.A)
	sLen := sDir.Len()
	sbMinX := math.Min(a.X, b.X) - accelPad
	sbMinY := math.Min(a.Y, b.Y) - accelPad
	sbMaxX := math.Max(a.X, b.X) + accelPad
	sbMaxY := math.Max(a.Y, b.Y) + accelPad
	bestT := math.Inf(1)
	bestSolid, bestEdge := int32(-1), int32(-1)
	for _, ei := range p.edges {
		if ac.bbMinX[ei] > sbMaxX || ac.bbMaxX[ei] < sbMinX ||
			ac.bbMinY[ei] > sbMaxY || ac.bbMaxY[ei] < sbMinY {
			continue
		}
		e := ac.edgeSeg(ei)
		if math.Abs(sDir.Cross(e.B.Sub(e.A))) < geom.Eps*math.Max(1, sLen*ac.elen[ei]) {
			continue
		}
		ti, hit := s.IntersectParam(e)
		if !hit {
			continue
		}
		if ti < bestT ||
			(ti == bestT && (ac.solid[ei] < bestSolid ||
				(ac.solid[ei] == bestSolid && ac.edge[ei] < bestEdge))) {
			bestT = ti
			bestSolid = ac.solid[ei]
			bestEdge = ac.edge[ei]
		}
	}
	if bestSolid < 0 {
		return true
	}
	// SegmentFree's grazing-vs-crossing logic, verbatim.
	d := s.Len()
	if bestT*d > geom.Eps && (1-bestT)*d > geom.Eps {
		return false
	}
	return p.FreeInDisk(s.Midpoint())
}

// FreeInDisk is Field.Free for points inside the probe's disk: only the
// candidate obstacles can strictly contain such a point, so the rest of
// the obstacle list is skipped.
func (p Probe) FreeInDisk(q geom.Vec) bool {
	f := p.f
	if !f.bounds.Contains(q) {
		return false
	}
	for _, oi := range p.obs {
		if f.obstacles[oi].ContainsStrict(q, geom.Eps) {
			return false
		}
	}
	return true
}
