package field

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"

	"mobisense/internal/geom"
)

// These tests pin the acceleration structure to the brute-force kernels:
// for randomized fields and queries, every accelerated result must be
// *bit-identical* to the result with acceleration disabled — the repo's
// determinism invariant. Float comparisons are deliberately exact.

// withBruteForce runs fn with the acceleration structure globally
// disabled, restoring the previous setting afterwards.
func withBruteForce(fn func()) {
	prev := SetAccelEnabled(false)
	defer SetAccelEnabled(prev)
	fn()
}

// denseRandomField builds a seeded random rectangular-obstacle field
// denser than the §6.4 default, to exercise the grid with many edges.
func denseRandomField(t *testing.T, rng *rand.Rand) *Field {
	t.Helper()
	f, err := RandomObstacles(rng, RandomObstacleConfig{
		MinCount:  4,
		MaxCount:  10,
		MinSide:   60,
		MaxSide:   300,
		KeepClear: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// skewRandomField builds a field of random triangles and rotated quads,
// so the arena holds non-axis-aligned edges (the rectangle generator
// only produces axis-aligned ones). Validation is skipped: disconnected
// free space is irrelevant to geometry-query equivalence.
func skewRandomField(t *testing.T, rng *rand.Rand) *Field {
	t.Helper()
	n := 3 + rng.IntN(5)
	obstacles := make([]geom.Polygon, 0, n)
	for i := 0; i < n; i++ {
		cx := 100 + rng.Float64()*800
		cy := 100 + rng.Float64()*800
		r := 40 + rng.Float64()*120
		rot := rng.Float64() * 2 * math.Pi
		sides := 3 + rng.IntN(3)
		poly := make(geom.Polygon, 0, sides)
		for k := 0; k < sides; k++ {
			ang := rot + 2*math.Pi*float64(k)/float64(sides)
			poly = append(poly, geom.V(cx+r*math.Cos(ang), cy+r*math.Sin(ang)))
		}
		obstacles = append(obstacles, poly)
	}
	f, err := New(StandardBounds(), obstacles, WithoutValidation())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// randomFields yields a mixed bag of seeded random fields.
func randomFields(t *testing.T, rng *rand.Rand, n int) []*Field {
	t.Helper()
	fields := make([]*Field, 0, n)
	for i := 0; i < n; i++ {
		if i%3 == 2 {
			fields = append(fields, skewRandomField(t, rng))
		} else {
			fields = append(fields, denseRandomField(t, rng))
		}
	}
	return fields
}

// randomSegment samples query endpoints, occasionally off-field (to hit
// the frame polygons) and occasionally degenerate.
func randomSegment(rng *rand.Rand) geom.Segment {
	pt := func() geom.Vec { return geom.V(rng.Float64()*1200-100, rng.Float64()*1200-100) }
	a := pt()
	switch rng.IntN(10) {
	case 0:
		return geom.Seg(a, a) // degenerate
	case 1:
		return geom.Seg(a, a.Add(geom.V(rng.Float64()*4-2, rng.Float64()*4-2))) // very short
	default:
		return geom.Seg(a, pt())
	}
}

func TestAccelFirstHitMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewPCG(2024, 9))
	for fi, f := range randomFields(t, rng, 12) {
		if !f.Accelerated() {
			t.Fatal("field not accelerated")
		}
		segs := make([]geom.Segment, 80)
		for i := range segs {
			segs[i] = randomSegment(rng)
		}
		for qi, s := range segs {
			fast, fastOK := f.FirstHit(s)
			var slow Hit
			var slowOK bool
			withBruteForce(func() { slow, slowOK = f.FirstHit(s) })
			if fastOK != slowOK || fast != slow {
				t.Fatalf("field %d query %d (%v): accel (%+v, %v) != brute (%+v, %v)",
					fi, qi, s, fast, fastOK, slow, slowOK)
			}
		}
	}
}

func TestAccelSegmentFreeVisibleMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 64))
	for fi, f := range randomFields(t, rng, 10) {
		for qi := 0; qi < 80; qi++ {
			s := randomSegment(rng)
			fastSF := f.SegmentFree(s.A, s.B)
			fastV := f.Visible(s.A, s.B)
			var slowSF, slowV bool
			withBruteForce(func() {
				slowSF = f.SegmentFree(s.A, s.B)
				slowV = f.Visible(s.A, s.B)
			})
			if fastSF != slowSF || fastV != slowV {
				t.Fatalf("field %d query %d (%v): SegmentFree %v/%v Visible %v/%v",
					fi, qi, s, fastSF, slowSF, fastV, slowV)
			}
		}
	}
}

func TestAccelClearanceAndBoundariesMatchBrute(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 5))
	radii := []float64{5, 30, 100, 400}
	for fi, f := range randomFields(t, rng, 10) {
		for qi := 0; qi < 60; qi++ {
			p := geom.V(rng.Float64()*1200-100, rng.Float64()*1200-100)
			r := radii[rng.IntN(len(radii))]

			fastC := f.Clearance(p, r)
			fastBW := f.BoundariesWithin(p, r)
			fastBS := f.BoundarySegmentsWithin(p, r)
			var slowC float64
			var slowBW []BoundaryProximity
			var slowBS []BoundarySegment
			withBruteForce(func() {
				slowC = f.Clearance(p, r)
				slowBW = f.BoundariesWithin(p, r)
				slowBS = f.BoundarySegmentsWithin(p, r)
			})
			if fastC != slowC {
				t.Fatalf("field %d query %d: Clearance(%v, %v) accel %v != brute %v", fi, qi, p, r, fastC, slowC)
			}
			if !reflect.DeepEqual(fastBW, slowBW) {
				t.Fatalf("field %d query %d: BoundariesWithin(%v, %v) accel %+v != brute %+v", fi, qi, p, r, fastBW, slowBW)
			}
			if !reflect.DeepEqual(fastBS, slowBS) {
				t.Fatalf("field %d query %d: BoundarySegmentsWithin(%v, %v) accel %+v != brute %+v", fi, qi, p, r, fastBS, slowBS)
			}
		}
	}
}

func TestDiskProbeVisibleFreeMatchesVisible(t *testing.T) {
	rng := rand.New(rand.NewPCG(88, 11))
	var sc ProbeScratch
	for fi, f := range randomFields(t, rng, 10) {
		for ci := 0; ci < 15; ci++ {
			center := f.RandomFreePoint(rng, f.Bounds())
			rs := 20 + rng.Float64()*80
			probe := f.DiskProbe(&sc, center, rs)
			if !probe.Active() {
				t.Fatal("probe inactive with acceleration enabled")
			}
			tested := 0
			for qi := 0; qi < 200 && tested < 40; qi++ {
				// Sample a free in-disk point; VisibleFree's contract
				// requires free endpoints inside the probe disk.
				ang := rng.Float64() * 2 * math.Pi
				rad := rng.Float64() * rs
				b := center.Add(geom.V(rad*math.Cos(ang), rad*math.Sin(ang)))
				if !f.Free(b) {
					continue
				}
				tested++
				fast := probe.VisibleFree(center, b)
				var slow bool
				withBruteForce(func() { slow = f.Visible(center, b) })
				if fast != slow {
					t.Fatalf("field %d center %v rs %v -> %v: VisibleFree %v != Visible %v",
						fi, center, rs, b, fast, slow)
				}
			}
		}
	}
}

// TestAccelDisabledReportsBrute double-checks the toggle actually routes
// queries to the brute-force path (guards against the A/B comparisons
// silently comparing the accelerated path with itself).
func TestAccelDisabledReportsBrute(t *testing.T) {
	f := TwoObstacles()
	if !f.Accelerated() {
		t.Fatal("expected acceleration on by default")
	}
	withBruteForce(func() {
		if f.Accelerated() {
			t.Fatal("expected acceleration off inside withBruteForce")
		}
		if probe := f.DiskProbe(&ProbeScratch{}, geom.V(100, 100), 50); probe.Active() {
			t.Fatal("expected inactive probe with acceleration off")
		}
	})
}
