package field

import (
	"math/rand/v2"
	"testing"

	"mobisense/internal/geom"
)

// benchField is a fixed obstacle-heavy field (8 random rectangles, 56
// solid edges with the frame) for the perf-tracking kernel benchmarks.
func benchField(b *testing.B) (*Field, *rand.Rand) {
	b.Helper()
	rng := rand.New(rand.NewPCG(9, 9))
	f, err := RandomObstacles(rng, RandomObstacleConfig{
		MinCount:  8,
		MaxCount:  8,
		MinSide:   60,
		MaxSide:   250,
		KeepClear: 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	return f, rng
}

// BenchmarkFirstHit measures the segment-intersection kernel on an
// obstacle-heavy field: 2048 fixed queries per op, mixing long transit
// segments with short motion-step-sized ones.
func BenchmarkFirstHit(b *testing.B) {
	f, rng := benchField(b)
	segs := make([]geom.Segment, 2048)
	for i := range segs {
		a := geom.V(rng.Float64()*1000, rng.Float64()*1000)
		if i%2 == 0 {
			segs[i] = geom.Seg(a, geom.V(rng.Float64()*1000, rng.Float64()*1000))
		} else {
			segs[i] = geom.Seg(a, a.Add(geom.V(rng.Float64()*40-20, rng.Float64()*40-20)))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range segs {
			f.FirstHit(s)
		}
	}
}
