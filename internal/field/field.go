// Package field models the 2-D sensing field of the paper (§3.1): a
// rectangular region containing an arbitrary number of simple-polygon
// obstacles, possibly overlapping, as long as the free space remains
// connected. The area outside the field is represented by four "frame"
// obstacles so that motion planning treats the field boundary exactly like
// an obstacle boundary (this also realizes FLOOR's "the y axis is regarded
// as a wall-like obstacle", §5.2).
package field

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"mobisense/internal/geom"
)

// Validation errors returned by New.
var (
	ErrDegenerateObstacle = errors.New("field: obstacle has fewer than 3 vertices or zero area")
	ErrDisconnected       = errors.New("field: obstacles partition the free space")
	ErrBlockedReference   = errors.New("field: reference point is inside an obstacle")
)

// frameThickness is how far the out-of-field frame obstacles extend beyond
// the field bounds. Any positive value works; planners never travel that far
// outside.
const frameThickness = 200.0

// connectivityRes is the grid resolution (meters) used to verify that the
// free space is connected.
const connectivityRes = 5.0

// Field is an immutable description of the deployment area.
type Field struct {
	bounds    geom.Rect
	obstacles []geom.Polygon // interior obstacles, CCW
	all       []geom.Polygon // obstacles followed by the 4 frame polygons, CCW
	solidBB   []geom.Rect    // bounding box per solid, same order as all
	accel     *accel         // segment acceleration structure (see accel.go)
	reference geom.Vec       // base station / reference point O
	spec      *Spec          // originating spec, when built from one (normalized)
}

// Option customizes field construction.
type Option func(*options)

type options struct {
	reference     geom.Vec
	skipValidate  bool
	validationRes float64
}

// WithReference sets the reference point O (base station location).
// It defaults to the lower-left corner of the bounds.
func WithReference(p geom.Vec) Option {
	return func(o *options) { o.reference = p }
}

// WithoutValidation skips the free-space connectivity check. Intended for
// tests that construct deliberately broken fields.
func WithoutValidation() Option {
	return func(o *options) { o.skipValidate = true }
}

// WithValidationResolution overrides the grid resolution used by the
// connectivity check.
func WithValidationResolution(res float64) Option {
	return func(o *options) { o.validationRes = res }
}

// New constructs a Field with the given bounds and obstacles. Obstacles are
// normalized to counter-clockwise orientation. New verifies that the free
// space is connected and that the reference point is free.
func New(bounds geom.Rect, obstacles []geom.Polygon, opts ...Option) (*Field, error) {
	o := options{reference: bounds.Min, validationRes: connectivityRes}
	for _, fn := range opts {
		fn(&o)
	}

	f := &Field{
		bounds:    bounds,
		obstacles: make([]geom.Polygon, 0, len(obstacles)),
		reference: o.reference,
	}
	for i, ob := range obstacles {
		if len(ob) < 3 || abs(ob.Area()) < geom.Eps {
			return nil, fmt.Errorf("obstacle %d: %w", i, ErrDegenerateObstacle)
		}
		f.obstacles = append(f.obstacles, ob.CCW().Clone())
	}

	f.all = make([]geom.Polygon, 0, len(f.obstacles)+4)
	f.all = append(f.all, f.obstacles...)
	f.all = append(f.all, framePolygons(bounds)...)

	f.solidBB = make([]geom.Rect, len(f.all))
	for i, poly := range f.all {
		f.solidBB[i] = poly.Bounds()
	}
	f.accel = buildAccel(f.all, bounds)

	if !o.skipValidate {
		if !f.Free(f.reference) {
			return nil, ErrBlockedReference
		}
		if !f.freeSpaceConnected(o.validationRes) {
			return nil, ErrDisconnected
		}
	}
	return f, nil
}

// MustNew is New but panics on error; for tests and package-level fixtures.
func MustNew(bounds geom.Rect, obstacles []geom.Polygon, opts ...Option) *Field {
	f, err := New(bounds, obstacles, opts...)
	if err != nil {
		panic(err)
	}
	return f
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// framePolygons builds four CCW rectangles covering the complement of
// bounds, so "outside the field" behaves as ordinary obstacle space.
func framePolygons(b geom.Rect) []geom.Polygon {
	t := frameThickness
	return []geom.Polygon{
		// Left, right, bottom, top. Corners are covered by overlap.
		geom.R(b.Min.X-t, b.Min.Y-t, b.Min.X, b.Max.Y+t).Polygon(),
		geom.R(b.Max.X, b.Min.Y-t, b.Max.X+t, b.Max.Y+t).Polygon(),
		geom.R(b.Min.X-t, b.Min.Y-t, b.Max.X+t, b.Min.Y).Polygon(),
		geom.R(b.Min.X-t, b.Max.Y, b.Max.X+t, b.Max.Y+t).Polygon(),
	}
}

// Bounds returns the field rectangle.
func (f *Field) Bounds() geom.Rect { return f.bounds }

// Reference returns the reference point O (base station location).
func (f *Field) Reference() geom.Vec { return f.reference }

// Obstacles returns the interior obstacles (excluding the boundary frame).
// The returned slice must not be modified.
func (f *Field) Obstacles() []geom.Polygon { return f.obstacles }

// NumSolids returns the number of solid polygons including the four frame
// polygons that model the outside of the field.
func (f *Field) NumSolids() int { return len(f.all) }

// Solid returns the i-th solid polygon (interior obstacles first, then the
// four frame polygons). All solids are counter-clockwise.
func (f *Field) Solid(i int) geom.Polygon { return f.all[i] }

// IsFrame reports whether solid index i is one of the boundary frame
// polygons rather than an interior obstacle.
func (f *Field) IsFrame(i int) bool { return i >= len(f.obstacles) }

// Free reports whether p lies in the field and not strictly inside any
// obstacle. Points exactly on an obstacle or field boundary are free
// (a sensor may touch a wall).
func (f *Field) Free(p geom.Vec) bool {
	if !f.bounds.Contains(p) {
		return false
	}
	for i, ob := range f.obstacles {
		// Strict containment implies p is inside the obstacle's bounding
		// box, so a bbox reject (padded far beyond the Eps boundary
		// margin) cannot change the result.
		bb := f.solidBB[i]
		if p.X < bb.Min.X-accelPad || p.X > bb.Max.X+accelPad ||
			p.Y < bb.Min.Y-accelPad || p.Y > bb.Max.Y+accelPad {
			continue
		}
		if ob.ContainsStrict(p, geom.Eps) {
			return false
		}
	}
	return true
}

// acc returns the acceleration structure when present and globally
// enabled, nil otherwise; callers fall back to the brute-force path.
func (f *Field) acc() *accel {
	if accelEnabled {
		return f.accel
	}
	return nil
}

// Accelerated reports whether geometry queries on this field use the
// segment acceleration structure.
func (f *Field) Accelerated() bool { return f.acc() != nil }

// FreeArea returns the area of the field not covered by obstacles,
// estimated on a grid with the given resolution.
func (f *Field) FreeArea(res float64) float64 {
	if res <= 0 {
		res = connectivityRes
	}
	var free, total int
	for y := f.bounds.Min.Y + res/2; y < f.bounds.Max.Y; y += res {
		for x := f.bounds.Min.X + res/2; x < f.bounds.Max.X; x += res {
			total++
			if f.Free(geom.V(x, y)) {
				free++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return f.bounds.Area() * float64(free) / float64(total)
}

// RandomFreePoint samples a uniformly random free point within sub (clipped
// to the field bounds). It panics if it cannot find a free point after many
// attempts, which indicates sub is (almost) fully blocked.
func (f *Field) RandomFreePoint(rng *rand.Rand, sub geom.Rect) geom.Vec {
	lo := sub.Min.Clamp(f.bounds)
	hi := sub.Max.Clamp(f.bounds)
	for i := 0; i < 10000; i++ {
		p := geom.V(lo.X+rng.Float64()*(hi.X-lo.X), lo.Y+rng.Float64()*(hi.Y-lo.Y))
		if f.Free(p) {
			return p
		}
	}
	panic("field: RandomFreePoint could not find a free point; region blocked")
}

// freeSpaceConnected flood-fills a grid over the free space and reports
// whether every free cell is reachable from the reference point's cell.
func (f *Field) freeSpaceConnected(res float64) bool {
	nx := int(f.bounds.W()/res) + 1
	ny := int(f.bounds.H()/res) + 1
	if nx <= 0 || ny <= 0 {
		return true
	}
	idx := func(ix, iy int) int { return iy*nx + ix }
	cell := func(ix, iy int) geom.Vec {
		return geom.V(f.bounds.Min.X+(float64(ix)+0.5)*res, f.bounds.Min.Y+(float64(iy)+0.5)*res)
	}
	free := make([]bool, nx*ny)
	nFree := 0
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			p := cell(ix, iy)
			if f.bounds.Contains(p) && f.Free(p) {
				free[idx(ix, iy)] = true
				nFree++
			}
		}
	}
	if nFree == 0 {
		return false
	}
	// Start from the free cell nearest the reference point.
	startX := clampInt(int((f.reference.X-f.bounds.Min.X)/res), 0, nx-1)
	startY := clampInt(int((f.reference.Y-f.bounds.Min.Y)/res), 0, ny-1)
	start := -1
	for r := 0; r < nx+ny && start < 0; r++ {
		for iy := maxInt(0, startY-r); iy <= minInt(ny-1, startY+r) && start < 0; iy++ {
			for ix := maxInt(0, startX-r); ix <= minInt(nx-1, startX+r); ix++ {
				if free[idx(ix, iy)] {
					start = idx(ix, iy)
					break
				}
			}
		}
	}
	if start < 0 {
		return false
	}
	visited := make([]bool, nx*ny)
	queue := make([]int, 0, nFree)
	queue = append(queue, start)
	visited[start] = true
	reached := 0
	for len(queue) > 0 {
		cur := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		reached++
		cx, cy := cur%nx, cur/nx
		for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nxt, nyt := cx+d[0], cy+d[1]
			if nxt < 0 || nxt >= nx || nyt < 0 || nyt >= ny {
				continue
			}
			ni := idx(nxt, nyt)
			if free[ni] && !visited[ni] {
				visited[ni] = true
				queue = append(queue, ni)
			}
		}
	}
	return reached == nFree
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
