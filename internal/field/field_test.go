package field

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"mobisense/internal/geom"
)

func TestNewValidation(t *testing.T) {
	bounds := geom.R(0, 0, 100, 100)

	t.Run("degenerate obstacle", func(t *testing.T) {
		_, err := New(bounds, []geom.Polygon{{geom.V(1, 1), geom.V(2, 2)}})
		if !errors.Is(err, ErrDegenerateObstacle) {
			t.Errorf("err = %v, want ErrDegenerateObstacle", err)
		}
	})

	t.Run("blocked reference", func(t *testing.T) {
		_, err := New(bounds, []geom.Polygon{geom.R(-10, -10, 20, 20).Polygon()})
		if !errors.Is(err, ErrBlockedReference) {
			t.Errorf("err = %v, want ErrBlockedReference", err)
		}
	})

	t.Run("partitioned field", func(t *testing.T) {
		// A wall spanning the full height cuts the field in two.
		wall := geom.R(50, -1, 60, 101).Polygon()
		_, err := New(bounds, []geom.Polygon{wall})
		if !errors.Is(err, ErrDisconnected) {
			t.Errorf("err = %v, want ErrDisconnected", err)
		}
	})

	t.Run("valid field", func(t *testing.T) {
		f, err := New(bounds, []geom.Polygon{geom.R(40, 40, 60, 60).Polygon()})
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if len(f.Obstacles()) != 1 {
			t.Errorf("obstacles = %d", len(f.Obstacles()))
		}
		if f.NumSolids() != 5 { // obstacle + 4 frame polygons
			t.Errorf("solids = %d, want 5", f.NumSolids())
		}
	})
}

func TestFieldFree(t *testing.T) {
	f := MustNew(geom.R(0, 0, 100, 100), []geom.Polygon{geom.R(40, 40, 60, 60).Polygon()})
	tests := []struct {
		name string
		p    geom.Vec
		want bool
	}{
		{"open space", geom.V(10, 10), true},
		{"inside obstacle", geom.V(50, 50), false},
		{"on obstacle boundary", geom.V(40, 50), true},
		{"on field boundary", geom.V(0, 50), true},
		{"corner reference", geom.V(0, 0), true},
		{"outside field", geom.V(-5, 50), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := f.Free(tt.p); got != tt.want {
				t.Errorf("Free(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestFirstHit(t *testing.T) {
	f := MustNew(geom.R(0, 0, 100, 100), []geom.Polygon{geom.R(40, 40, 60, 60).Polygon()})

	t.Run("hits obstacle", func(t *testing.T) {
		hit, ok := f.FirstHit(geom.Seg(geom.V(10, 50), geom.V(90, 50)))
		if !ok {
			t.Fatal("expected hit")
		}
		if !hit.Point.Eq(geom.V(40, 50)) {
			t.Errorf("hit at %v, want (40,50)", hit.Point)
		}
		if f.IsFrame(hit.Solid) {
			t.Error("hit should be the interior obstacle, not the frame")
		}
	})

	t.Run("hits frame when leaving field", func(t *testing.T) {
		hit, ok := f.FirstHit(geom.Seg(geom.V(10, 10), geom.V(-30, 10)))
		if !ok {
			t.Fatal("expected frame hit")
		}
		if !hit.Point.Eq(geom.V(0, 10)) {
			t.Errorf("hit at %v, want (0,10)", hit.Point)
		}
		if !f.IsFrame(hit.Solid) {
			t.Error("expected frame solid")
		}
	})

	t.Run("free segment", func(t *testing.T) {
		if _, ok := f.FirstHit(geom.Seg(geom.V(5, 5), geom.V(30, 5))); ok {
			t.Error("expected no hit")
		}
	})
}

func TestSegmentFree(t *testing.T) {
	f := MustNew(geom.R(0, 0, 100, 100), []geom.Polygon{geom.R(40, 40, 60, 60).Polygon()})
	tests := []struct {
		name string
		a, b geom.Vec
		want bool
	}{
		{"clear", geom.V(5, 5), geom.V(30, 30), true},
		{"through obstacle", geom.V(10, 50), geom.V(90, 50), false},
		{"endpoint on wall", geom.V(40, 50), geom.V(10, 50), true},
		{"leaves field", geom.V(10, 10), geom.V(-5, 10), false},
		{"grazes corner", geom.V(30, 30), geom.V(39.9, 39.9), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := f.SegmentFree(tt.a, tt.b); got != tt.want {
				t.Errorf("SegmentFree(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestBoundariesWithin(t *testing.T) {
	f := MustNew(geom.R(0, 0, 100, 100), []geom.Polygon{geom.R(40, 40, 60, 60).Polygon()})
	// Near the obstacle's left wall.
	prox := f.BoundariesWithin(geom.V(30, 50), 15)
	if len(prox) != 1 {
		t.Fatalf("got %d proximities, want 1: %+v", len(prox), prox)
	}
	if !prox[0].Point.Eq(geom.V(40, 50)) || math.Abs(prox[0].Dist-10) > 1e-9 {
		t.Errorf("proximity = %+v", prox[0])
	}
	// Far from everything.
	if got := f.BoundariesWithin(geom.V(20, 20), 5); len(got) != 0 {
		t.Errorf("expected none, got %+v", got)
	}
	// Near the field corner: two frame polygons within range.
	got := f.BoundariesWithin(geom.V(3, 3), 5)
	if len(got) < 2 {
		t.Errorf("expected at least two frame proximities near corner, got %d", len(got))
	}
}

func TestBoundarySegmentsWithin(t *testing.T) {
	f := MustNew(geom.R(0, 0, 100, 100), []geom.Polygon{geom.R(40, 40, 60, 60).Polygon()})
	// The disk of radius 15 at (30,50) sees the whole left wall (corners at
	// distance sqrt(200) ≈ 14.14) plus short slivers of the top and bottom
	// walls just past the corners.
	segs := f.BoundarySegmentsWithin(geom.V(30, 50), 15)
	if len(segs) != 3 {
		t.Fatalf("got %d segments, want 3: %+v", len(segs), segs)
	}
	var wall *geom.Segment
	for i := range segs {
		s := segs[i].Seg
		if math.Abs(s.A.X-40) < 1e-9 && math.Abs(s.B.X-40) < 1e-9 {
			wall = &s
		}
	}
	if wall == nil {
		t.Fatalf("left wall segment missing: %+v", segs)
	}
	lo, hi := math.Min(wall.A.Y, wall.B.Y), math.Max(wall.A.Y, wall.B.Y)
	if math.Abs(lo-40) > 1e-6 || math.Abs(hi-60) > 1e-6 {
		t.Errorf("wall chord = [%v,%v], want [40,60]", lo, hi)
	}
	// A tighter radius sees only the wall chord.
	segs = f.BoundarySegmentsWithin(geom.V(30, 50), 12)
	if len(segs) != 1 {
		t.Fatalf("radius 12: got %d segments, want 1: %+v", len(segs), segs)
	}
	half := math.Sqrt(12*12 - 10*10)
	s := segs[0].Seg
	lo, hi = math.Min(s.A.Y, s.B.Y), math.Max(s.A.Y, s.B.Y)
	if math.Abs(lo-(50-half)) > 1e-6 || math.Abs(hi-(50+half)) > 1e-6 {
		t.Errorf("chord = [%v,%v], want [%v,%v]", lo, hi, 50-half, 50+half)
	}
}

func TestClearance(t *testing.T) {
	f := MustNew(geom.R(0, 0, 100, 100), []geom.Polygon{geom.R(40, 40, 60, 60).Polygon()})
	if d := f.Clearance(geom.V(30, 50), 100); math.Abs(d-10) > 1e-9 {
		t.Errorf("clearance = %v, want 10", d)
	}
	if d := f.Clearance(geom.V(50, 20), 5); d != 5 {
		t.Errorf("clearance capped = %v, want 5", d)
	}
}

func TestFreeArea(t *testing.T) {
	f := MustNew(geom.R(0, 0, 100, 100), []geom.Polygon{geom.R(0, 0, 50, 50).Polygon()},
		WithReference(geom.V(99, 99)))
	got := f.FreeArea(1)
	want := 100.0*100 - 50*50
	if math.Abs(got-want) > 0.03*want {
		t.Errorf("free area = %v, want ~%v", got, want)
	}
}

func TestStandardFields(t *testing.T) {
	of := ObstacleFree()
	if of.Bounds() != StandardBounds() {
		t.Error("obstacle-free bounds mismatch")
	}
	if len(of.Obstacles()) != 0 {
		t.Error("obstacle-free field has obstacles")
	}

	two := TwoObstacles()
	if len(two.Obstacles()) != 2 {
		t.Fatalf("two-obstacle field has %d obstacles", len(two.Obstacles()))
	}
	// The three exits must be free.
	for _, p := range []geom.Vec{
		geom.V(525, 20),  // bottom exit
		geom.V(60, 525),  // left/top exit
		geom.V(475, 525), // corner exit
	} {
		if !two.Free(p) {
			t.Errorf("exit point %v should be free", p)
		}
	}
	// Inside the slabs must be blocked.
	if two.Free(geom.V(525, 300)) || two.Free(geom.V(300, 525)) {
		t.Error("slab interiors should be blocked")
	}
}

func TestRandomObstacles(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 1))
	cfg := DefaultRandomObstacleConfig()
	for i := 0; i < 20; i++ {
		f, err := RandomObstacles(rng, cfg)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		n := len(f.Obstacles())
		if n < cfg.MinCount || n > cfg.MaxCount {
			t.Errorf("run %d: obstacle count %d outside [%d,%d]", i, n, cfg.MinCount, cfg.MaxCount)
		}
		if !f.Free(geom.Vec{}) {
			t.Errorf("run %d: reference blocked", i)
		}
	}
}

func TestRandomObstaclesBadConfig(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := RandomObstacles(rng, RandomObstacleConfig{MinCount: 3, MaxCount: 1}); err == nil {
		t.Error("expected error for inverted count range")
	}
}

func TestRandomFreePoint(t *testing.T) {
	f := MustNew(geom.R(0, 0, 100, 100), []geom.Polygon{geom.R(0, 0, 90, 90).Polygon()},
		WithReference(geom.V(95, 5)))
	rng := rand.New(rand.NewPCG(7, 3))
	for i := 0; i < 100; i++ {
		p := f.RandomFreePoint(rng, f.Bounds())
		if !f.Free(p) {
			t.Fatalf("sampled blocked point %v", p)
		}
	}
}

func TestSolidOrientation(t *testing.T) {
	// All solids (obstacles and frame) must be CCW so wall-following can
	// assume a consistent orientation.
	f := TwoObstacles()
	for i := 0; i < f.NumSolids(); i++ {
		if !f.Solid(i).IsCCW() {
			t.Errorf("solid %d is not CCW", i)
		}
	}
}
