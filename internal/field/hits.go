package field

import (
	"math"

	"mobisense/internal/geom"
)

// Hit describes the first collision of a motion segment with a solid
// boundary.
type Hit struct {
	T     float64  // parameter along the query segment, in [0,1]
	Point geom.Vec // collision point
	Solid int      // index into the field's solids (see Field.Solid)
	Edge  int      // edge index within the solid polygon
}

// FirstHit returns the earliest intersection of segment s with any solid
// boundary (interior obstacles or the field frame). ok is false when the
// segment stays entirely in free space.
func (f *Field) FirstHit(s geom.Segment) (Hit, bool) {
	if a := f.acc(); a != nil {
		return a.firstHit(s)
	}
	best := Hit{T: math.Inf(1)}
	found := false
	for i, poly := range f.all {
		t, edge, ok := poly.IntersectSegment(s)
		if ok && t < best.T {
			best = Hit{T: t, Point: s.At(t), Solid: i, Edge: edge}
			found = true
		}
	}
	if !found {
		return Hit{}, false
	}
	return best, true
}

// SegmentFree reports whether the open segment between a and b stays in
// free space, ignoring grazing contact at the endpoints themselves. It is
// used by motion code to test candidate steps.
func (f *Field) SegmentFree(a, b geom.Vec) bool {
	if !f.Free(a) || !f.Free(b) {
		return false
	}
	hit, ok := f.FirstHit(geom.Seg(a, b))
	if !ok {
		return true
	}
	// A hit exactly at either endpoint is grazing contact, not a crossing,
	// unless the segment midpoint is blocked (segment passes through a
	// solid whose boundary contains an endpoint).
	d := geom.Seg(a, b).Len()
	if hit.T*d > geom.Eps && (1-hit.T)*d > geom.Eps {
		return false
	}
	return f.Free(geom.Seg(a, b).Midpoint())
}

// Visible reports whether a sensor at a has line of sight to point b:
// sensing (§3.1 "recognize the boundary of the obstacles within its sensing
// range") does not penetrate obstacles. Fields without interior obstacles
// short-circuit to true for points in free space.
func (f *Field) Visible(a, b geom.Vec) bool {
	if len(f.obstacles) == 0 {
		return f.Free(a) && f.Free(b)
	}
	return f.SegmentFree(a, b)
}

// BoundaryProximity describes the closest point of one solid's boundary to
// a query point.
type BoundaryProximity struct {
	Point geom.Vec // closest boundary point
	Dist  float64  // distance from the query point
	Solid int      // solid index
	Edge  int      // edge index within the solid
}

// BoundariesWithin returns, for each solid whose boundary comes within r of
// p, the closest boundary point. Used by the virtual-force obstacle
// repulsion and by sensing-range boundary detection.
func (f *Field) BoundariesWithin(p geom.Vec, r float64) []BoundaryProximity {
	return f.BoundariesWithinAppend(nil, p, r)
}

// BoundariesWithinAppend is BoundariesWithin appending to out, letting
// per-period callers reuse one scratch slice instead of allocating.
func (f *Field) BoundariesWithinAppend(out []BoundaryProximity, p geom.Vec, r float64) []BoundaryProximity {
	a := f.acc()
	for i, poly := range f.all {
		// Cheap reject using the precomputed polygon bounding box — the
		// same predicate the brute path evaluates via poly.Bounds().
		if !f.solidBB[i].Expand(r).Contains(p) {
			continue
		}
		var pt geom.Vec
		var edge int
		if a != nil {
			pt, edge = a.closestBoundaryPoint(i, p)
		} else {
			pt, edge = poly.ClosestBoundaryPoint(p)
		}
		if d := pt.Dist(p); d <= r {
			out = append(out, BoundaryProximity{Point: pt, Dist: d, Solid: i, Edge: edge})
		}
	}
	return out
}

// BoundarySegment is a portion of a solid's boundary edge that falls inside
// a sensing disk.
type BoundarySegment struct {
	Seg   geom.Segment
	Solid int
	Edge  int
}

// BoundarySegmentsWithin returns the parts of all solid boundaries visible
// inside the disk of radius r centered at p. This implements the sensing
// assumption of §3.1 ("a sensor ... can recognize the boundary of the
// obstacles within its sensing range") and feeds BLG-expansion (§5.5.1).
func (f *Field) BoundarySegmentsWithin(p geom.Vec, r float64) []BoundarySegment {
	return f.BoundarySegmentsWithinAppend(nil, p, r)
}

// BoundarySegmentsWithinAppend is BoundarySegmentsWithin appending to
// out, letting per-period callers reuse one scratch slice.
func (f *Field) BoundarySegmentsWithinAppend(out []BoundarySegment, p geom.Vec, r float64) []BoundarySegment {
	disk := geom.Circle{C: p, R: r}
	a := f.acc()
	r2 := r * r
	for i, poly := range f.all {
		if !f.solidBB[i].Expand(r).Contains(p) {
			continue
		}
		if a != nil {
			// Walk the solid's arena edges, skipping edges whose padded
			// bbox stays outside the disk: a reported intersection needs
			// the edge within R (+Eps slack) of p, and a positive padded
			// bbox distance lower-bounds the edge distance by ≥ pad/2.
			lo, hi := a.solidStart[i], a.solidStart[i+1]
			for ai := lo; ai < hi; ai++ {
				if a.dist2ToPaddedRect(ai, p.X, p.Y) > r2 {
					continue
				}
				edge := a.edgeSeg(ai)
				t0, t1, ok := disk.IntersectSegment(edge)
				if !ok || t1-t0 < geom.Eps {
					continue
				}
				out = append(out, BoundarySegment{
					Seg:   geom.Seg(edge.At(t0), edge.At(t1)),
					Solid: i,
					Edge:  int(ai - lo),
				})
			}
			continue
		}
		for e := 0; e < poly.NumEdges(); e++ {
			edge := poly.Edge(e)
			t0, t1, ok := disk.IntersectSegment(edge)
			if !ok || t1-t0 < geom.Eps {
				continue
			}
			out = append(out, BoundarySegment{
				Seg:   geom.Seg(edge.At(t0), edge.At(t1)),
				Solid: i,
				Edge:  e,
			})
		}
	}
	return out
}

// Clearance returns the distance from p to the nearest solid boundary,
// searching up to maxR. If no boundary is within maxR it returns maxR.
func (f *Field) Clearance(p geom.Vec, maxR float64) float64 {
	a := f.acc()
	best := maxR
	for i, poly := range f.all {
		if !f.solidBB[i].Expand(best).Contains(p) {
			continue
		}
		var pt geom.Vec
		if a != nil {
			pt, _ = a.closestBoundaryPoint(i, p)
		} else {
			pt, _ = poly.ClosestBoundaryPoint(p)
		}
		if d := pt.Dist(p); d < best {
			best = d
		}
	}
	return best
}
