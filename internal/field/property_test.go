package field

import (
	"math/rand/v2"
	"testing"

	"mobisense/internal/geom"
)

// TestFirstHitInvariants checks, over random fields and query segments,
// that every reported hit lies within the segment's parameter range, on
// the reported solid's boundary, and at the earliest crossing (no solid is
// crossed strictly before it).
func TestFirstHitInvariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 7))
	for trial := 0; trial < 30; trial++ {
		f, err := RandomObstacles(rng, DefaultRandomObstacleConfig())
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 50; q++ {
			a := geom.V(rng.Float64()*1000, rng.Float64()*1000)
			b := geom.V(rng.Float64()*1000, rng.Float64()*1000)
			hit, ok := f.FirstHit(geom.Seg(a, b))
			if !ok {
				continue
			}
			if hit.T < -1e-9 || hit.T > 1+1e-9 {
				t.Fatalf("trial %d: hit.T = %v out of range", trial, hit.T)
			}
			poly := f.Solid(hit.Solid)
			if d := poly.Edge(hit.Edge).Dist(hit.Point); d > 1e-6 {
				t.Fatalf("trial %d: hit point %v is %.2e m off the reported edge", trial, hit.Point, d)
			}
			// Minimality: no other solid is crossed strictly before hit.T.
			for i := 0; i < f.NumSolids(); i++ {
				if ti, _, crossed := f.Solid(i).IntersectSegment(geom.Seg(a, b)); crossed && ti < hit.T-1e-9 {
					t.Fatalf("trial %d: solid %d crossed at %v before reported %v", trial, i, ti, hit.T)
				}
			}
		}
	}
}

// TestSegmentFreeSymmetry: traversability does not depend on direction.
func TestSegmentFreeSymmetry(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 77))
	f, err := RandomObstacles(rng, DefaultRandomObstacleConfig())
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 300; q++ {
		a := geom.V(rng.Float64()*1000, rng.Float64()*1000)
		b := geom.V(rng.Float64()*1000, rng.Float64()*1000)
		if f.SegmentFree(a, b) != f.SegmentFree(b, a) {
			t.Fatalf("SegmentFree not symmetric for %v-%v", a, b)
		}
	}
}

// TestVisibleImpliesWithinFreeSpace: a visible pair has both endpoints
// free, and visibility is symmetric.
func TestVisibleProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 3))
	f, err := RandomObstacles(rng, DefaultRandomObstacleConfig())
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 300; q++ {
		a := geom.V(rng.Float64()*1000, rng.Float64()*1000)
		b := geom.V(rng.Float64()*1000, rng.Float64()*1000)
		if f.Visible(a, b) {
			if !f.Free(a) || !f.Free(b) {
				t.Fatalf("visible pair with blocked endpoint: %v %v", a, b)
			}
		}
		if f.Visible(a, b) != f.Visible(b, a) {
			t.Fatalf("visibility not symmetric for %v-%v", a, b)
		}
	}
}
