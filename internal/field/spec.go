package field

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand/v2"

	"mobisense/internal/geom"
)

// Spec is the declarative, serializable description of a deployment field
// (§3.1): rectangular bounds, simple-polygon obstacles, the reference
// point O, and optionally a seeded random-obstacle generator. A Spec is
// pure data — it travels through JSON (store manifests, the HTTP API,
// -field files) and rebuilds the exact same Field on any machine, so an
// experiment's environment is reproducible without the binary that first
// defined it.
type Spec struct {
	// Name optionally labels the spec (registered scenarios carry their
	// registry name here). It is ignored by Build and Fingerprint: two
	// specs with identical geometry are the same field whatever they are
	// called.
	Name string `json:"name,omitempty"`
	// Bounds is the field rectangle.
	Bounds RectSpec `json:"bounds"`
	// Reference is the base-station location O; nil defaults to the
	// lower-left corner of the bounds.
	Reference *PointSpec `json:"reference,omitempty"`
	// Obstacles are the fixed interior obstacles.
	Obstacles []ObstacleSpec `json:"obstacles,omitempty"`
	// Generator, when set, adds seeded random rectangular obstacles to
	// every Build. Specs with a generator are "seeded": the build seed
	// picks the generated layout.
	Generator *GeneratorSpec `json:"generator,omitempty"`
}

// RectSpec is an axis-aligned rectangle in a field spec.
type RectSpec struct {
	MinX float64 `json:"min_x,omitempty"`
	MinY float64 `json:"min_y,omitempty"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

func (r RectSpec) rect() geom.Rect { return geom.R(r.MinX, r.MinY, r.MaxX, r.MaxY) }

// PointSpec is a 2-D point in a field spec, in meters.
type PointSpec struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// ObstacleSpec is one obstacle: either the axis-aligned rectangle
// shorthand Rect ([x0, y0, x1, y1]) or an explicit simple polygon given
// as Points (at least three vertices, either orientation). Normalization
// canonicalizes both forms to counter-clockwise Points.
type ObstacleSpec struct {
	Rect   []float64   `json:"rect,omitempty"`
	Points []PointSpec `json:"points,omitempty"`
}

func (o ObstacleSpec) polygon() geom.Polygon {
	poly := make(geom.Polygon, len(o.Points))
	for i, p := range o.Points {
		poly[i] = geom.V(p.X, p.Y)
	}
	return poly
}

// GeneratorSpec parameterizes seeded random rectangular obstacles (§6.4):
// a uniform count in [MinCount, MaxCount], uniform side lengths in
// [MinSide, MaxSide], a clear radius around the reference point, and a
// salt that domain-separates the random stream (two generators with the
// same seed but different salts produce independent layouts).
type GeneratorSpec struct {
	MinCount  int     `json:"min_count"`
	MaxCount  int     `json:"max_count"`
	MinSide   float64 `json:"min_side"`
	MaxSide   float64 `json:"max_side"`
	KeepClear float64 `json:"keep_clear,omitempty"`
	Salt      uint64  `json:"salt,omitempty"`
}

// ClampedSides returns the side range Build actually samples within a
// w×h field (see RandomObstacleConfig.ClampedSides).
func (g GeneratorSpec) ClampedSides(w, h float64) (minSide, maxSide float64) {
	return g.config().ClampedSides(w, h)
}

func (g GeneratorSpec) config() RandomObstacleConfig {
	return RandomObstacleConfig{
		MinCount:  g.MinCount,
		MaxCount:  g.MaxCount,
		MinSide:   g.MinSide,
		MaxSide:   g.MaxSide,
		KeepClear: g.KeepClear,
	}
}

// Empty reports whether the spec is the zero value — no bounds, no
// geometry, no generator.
func (s Spec) Empty() bool {
	return s.Bounds == (RectSpec{}) && s.Reference == nil &&
		len(s.Obstacles) == 0 && s.Generator == nil
}

// Seeded reports whether Build's output varies with the seed.
func (s Spec) Seeded() bool { return s.Generator != nil }

// Clone returns a deep copy of the spec.
func (s Spec) Clone() Spec {
	out := s
	if s.Reference != nil {
		ref := *s.Reference
		out.Reference = &ref
	}
	if s.Obstacles != nil {
		out.Obstacles = make([]ObstacleSpec, len(s.Obstacles))
		for i, ob := range s.Obstacles {
			out.Obstacles[i] = ObstacleSpec{
				Rect:   append([]float64(nil), ob.Rect...),
				Points: append([]PointSpec(nil), ob.Points...),
			}
		}
	}
	if s.Generator != nil {
		g := *s.Generator
		out.Generator = &g
	}
	return out
}

// Normalize validates the spec and returns its canonical form: bounds
// with positive area, an explicit reference point (defaulting to the
// lower-left corner), every obstacle as counter-clockwise Points (Rect
// shorthands expanded), and generator ranges checked. Two specs that
// normalize equal are the same field; fingerprints, manifests and the
// registry all work on the normalized form.
func (s Spec) Normalize() (Spec, error) {
	out := s.Clone()
	b := out.Bounds
	if !(b.MaxX > b.MinX) || !(b.MaxY > b.MinY) {
		return Spec{}, fmt.Errorf("field spec: bounds [%g,%g]×[%g,%g] have no area", b.MinX, b.MaxX, b.MinY, b.MaxY)
	}
	if out.Reference == nil {
		out.Reference = &PointSpec{X: b.MinX, Y: b.MinY}
	}
	for i, ob := range out.Obstacles {
		switch {
		case len(ob.Rect) > 0 && len(ob.Points) > 0:
			return Spec{}, fmt.Errorf("field spec: obstacle %d has both rect and points", i)
		case len(ob.Rect) > 0:
			if len(ob.Rect) != 4 {
				return Spec{}, fmt.Errorf("field spec: obstacle %d rect has %d coordinates, want 4 ([x0,y0,x1,y1])", i, len(ob.Rect))
			}
			poly := geom.R(ob.Rect[0], ob.Rect[1], ob.Rect[2], ob.Rect[3]).Polygon()
			pts := make([]PointSpec, len(poly))
			for j, v := range poly {
				pts[j] = PointSpec{X: v.X, Y: v.Y}
			}
			out.Obstacles[i] = ObstacleSpec{Points: pts}
		case len(ob.Points) >= 3:
			poly := out.Obstacles[i].polygon().CCW()
			pts := make([]PointSpec, len(poly))
			for j, v := range poly {
				pts[j] = PointSpec{X: v.X, Y: v.Y}
			}
			out.Obstacles[i] = ObstacleSpec{Points: pts}
		default:
			return Spec{}, fmt.Errorf("field spec: obstacle %d has %d vertices, want a rect or at least 3 points", i, len(ob.Points))
		}
	}
	if len(out.Obstacles) == 0 {
		out.Obstacles = nil
	}
	if g := out.Generator; g != nil {
		if g.MaxCount < g.MinCount || g.MinCount < 0 {
			return Spec{}, fmt.Errorf("field spec: generator count range [%d,%d] is invalid", g.MinCount, g.MaxCount)
		}
		if g.MinSide <= 0 || g.MaxSide < g.MinSide {
			return Spec{}, fmt.Errorf("field spec: generator side range [%g,%g] is invalid", g.MinSide, g.MaxSide)
		}
	}
	return out, nil
}

// Build constructs the field the spec describes. For seeded specs
// (Generator set) the seed selects the generated obstacle layout; fixed
// specs ignore it. The returned field remembers its originating spec
// (see Field.Spec).
func (s Spec) Build(seed uint64) (*Field, error) {
	n, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	bounds := n.Bounds.rect()
	ref := geom.V(n.Reference.X, n.Reference.Y)
	fixed := make([]geom.Polygon, len(n.Obstacles))
	for i, ob := range n.Obstacles {
		fixed[i] = ob.polygon()
	}
	var f *Field
	if g := n.Generator; g != nil {
		rng := rand.New(rand.NewPCG(seed, seed^g.Salt))
		f, err = randomObstaclesIn(rng, bounds, ref, fixed, g.config())
	} else {
		f, err = New(bounds, fixed, WithReference(ref))
	}
	if err != nil {
		return nil, err
	}
	f.spec = &n
	return f, nil
}

// Fingerprint returns a stable hash of the spec's geometry: bounds,
// reference point, normalized obstacles and generator parameters. The
// Name is excluded. Fingerprints survive JSON round trips (float64
// values encode and decode exactly) and identify the computation a field
// participates in, which is what caching and store identity need.
func (s Spec) Fingerprint() string {
	n, err := s.Normalize()
	if err != nil {
		// An invalid spec can never build a field; hash its raw encoding so
		// the fingerprint is still deterministic.
		raw, _ := json.Marshal(s)
		h := fnv.New64a()
		h.Write(raw)
		return fmt.Sprintf("bad-%016x", h.Sum64())
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "b=%g,%g,%g,%g ref=%g,%g",
		n.Bounds.MinX, n.Bounds.MinY, n.Bounds.MaxX, n.Bounds.MaxY,
		n.Reference.X, n.Reference.Y)
	for _, ob := range n.Obstacles {
		io.WriteString(h, " o")
		for _, p := range ob.Points {
			fmt.Fprintf(h, "=%g,%g", p.X, p.Y)
		}
	}
	if g := n.Generator; g != nil {
		fmt.Fprintf(h, " gen=%d,%d,%g,%g,%g,%d",
			g.MinCount, g.MaxCount, g.MinSide, g.MaxSide, g.KeepClear, g.Salt)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// ParseSpec decodes a JSON field spec strictly: unknown fields and
// trailing input are errors (a typoed key must not silently become the
// default geometry), and the spec must normalize.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("field spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("field spec: trailing data after the spec object")
	}
	if _, err := s.Normalize(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Spec returns the spec describing this field. Fields built from a Spec
// return that spec (generator parameters included); fields built directly
// from geometry return an extraction of their bounds, reference and
// obstacles. The result is always normalized.
func (f *Field) Spec() Spec {
	if f.spec != nil {
		return f.spec.Clone()
	}
	s := Spec{
		Bounds: RectSpec{
			MinX: f.bounds.Min.X, MinY: f.bounds.Min.Y,
			MaxX: f.bounds.Max.X, MaxY: f.bounds.Max.Y,
		},
		Reference: &PointSpec{X: f.reference.X, Y: f.reference.Y},
	}
	for _, ob := range f.obstacles {
		pts := make([]PointSpec, len(ob))
		for i, v := range ob {
			pts[i] = PointSpec{X: v.X, Y: v.Y}
		}
		s.Obstacles = append(s.Obstacles, ObstacleSpec{Points: pts})
	}
	return s
}
