package field

import (
	"encoding/json"
	"math/rand/v2"
	"reflect"
	"testing"

	"mobisense/internal/geom"
)

// randomSpec generates a random, usually-valid field spec: random bounds,
// a few random rectangular or triangular obstacles. Some layouts
// partition the field; callers skip those.
func randomSpec(rng *rand.Rand) Spec {
	w := 400 + rng.Float64()*800
	h := 400 + rng.Float64()*800
	s := Spec{Bounds: RectSpec{MaxX: w, MaxY: h}}
	if rng.IntN(2) == 0 {
		s.Reference = &PointSpec{X: rng.Float64() * w / 4, Y: rng.Float64() * h / 4}
	}
	n := rng.IntN(4)
	for i := 0; i < n; i++ {
		x := 100 + rng.Float64()*(w-300)
		y := 100 + rng.Float64()*(h-300)
		ow := 40 + rng.Float64()*150
		oh := 40 + rng.Float64()*150
		if rng.IntN(2) == 0 {
			s.Obstacles = append(s.Obstacles, ObstacleSpec{Rect: []float64{x, y, x + ow, y + oh}})
		} else {
			// A triangle, sometimes in clockwise order to exercise CCW
			// normalization.
			pts := []PointSpec{{X: x, Y: y}, {X: x + ow, Y: y}, {X: x + ow/2, Y: y + oh}}
			if rng.IntN(2) == 0 {
				pts[0], pts[2] = pts[2], pts[0]
			}
			s.Obstacles = append(s.Obstacles, ObstacleSpec{Points: pts})
		}
	}
	return s
}

// TestSpecRoundTripProperty is the spec subsystem's losslessness check:
// over random specs, (1) normalization is idempotent, (2) the JSON
// encode→decode round trip preserves the normalized spec and its
// fingerprint, and (3) building a field and extracting its geometry
// reproduces the normalized spec (and fingerprint) exactly.
func TestSpecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 9))
	built := 0
	for trial := 0; trial < 60; trial++ {
		s := randomSpec(rng)
		n, err := s.Normalize()
		if err != nil {
			t.Fatalf("trial %d: normalize: %v", trial, err)
		}
		n2, err := n.Normalize()
		if err != nil || !reflect.DeepEqual(n, n2) {
			t.Fatalf("trial %d: normalization not idempotent (err=%v)", trial, err)
		}
		if s.Fingerprint() != n.Fingerprint() {
			t.Fatalf("trial %d: fingerprint changed under normalization", trial)
		}

		// JSON round trip.
		data, err := json.Marshal(n)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := ParseSpec(data)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if !reflect.DeepEqual(decoded, n) {
			t.Fatalf("trial %d: JSON round trip changed the spec:\nin:  %+v\nout: %+v", trial, n, decoded)
		}
		if decoded.Fingerprint() != n.Fingerprint() {
			t.Fatalf("trial %d: JSON round trip changed the fingerprint", trial)
		}

		// Build → extract. Layouts that partition the free space are
		// legitimately rejected; skip them.
		f, err := s.Build(1)
		if err != nil {
			continue
		}
		built++
		got := f.Spec()
		got.Name = n.Name
		if !reflect.DeepEqual(got, n) {
			t.Fatalf("trial %d: Spec→Field→Spec lost information:\nin:  %+v\nout: %+v", trial, n, got)
		}
		if got.Fingerprint() != n.Fingerprint() {
			t.Fatalf("trial %d: field reconstruction changed the fingerprint", trial)
		}
		// Rebuilding from the extracted spec gives identical geometry.
		f2, err := got.Build(1)
		if err != nil {
			t.Fatalf("trial %d: rebuild from extracted spec: %v", trial, err)
		}
		if !reflect.DeepEqual(f.Obstacles(), f2.Obstacles()) ||
			f.Bounds() != f2.Bounds() || f.Reference() != f2.Reference() {
			t.Fatalf("trial %d: rebuilt field differs", trial)
		}
	}
	if built < 20 {
		t.Fatalf("only %d/60 random specs built; generator too aggressive for a meaningful test", built)
	}
}

// TestSpecGeometricExtraction: a field built directly from geometry
// (no spec) extracts to a spec that rebuilds the identical field.
func TestSpecGeometricExtraction(t *testing.T) {
	f := TwoObstacles()
	s := f.Spec()
	if s.Generator != nil || len(s.Obstacles) != 2 {
		t.Fatalf("extracted spec = %+v", s)
	}
	f2, err := s.Build(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.Obstacles(), f2.Obstacles()) || f.Bounds() != f2.Bounds() || f.Reference() != f2.Reference() {
		t.Error("extracted spec rebuilt a different field")
	}
}

// TestGeneratorSpecMatchesLegacyStream: a generator spec with the
// pre-spec RandomObstacleField salt reproduces the legacy generator's
// layouts bit for bit, seed by seed.
func TestGeneratorSpecMatchesLegacyStream(t *testing.T) {
	const salt = 0xabcdef12345
	spec := Spec{
		Bounds:    RectSpec{MaxX: StandardSize, MaxY: StandardSize},
		Generator: &GeneratorSpec{MinCount: 1, MaxCount: 4, MinSide: 80, MaxSide: 400, KeepClear: 30, Salt: salt},
	}
	for seed := uint64(1); seed <= 12; seed++ {
		legacyRng := rand.New(rand.NewPCG(seed, seed^salt))
		legacy, err := RandomObstacles(legacyRng, DefaultRandomObstacleConfig())
		if err != nil {
			t.Fatal(err)
		}
		got, err := spec.Build(seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy.Obstacles(), got.Obstacles()) {
			t.Fatalf("seed %d: generator spec diverged from the legacy stream", seed)
		}
		if legacy.Reference() != got.Reference() {
			t.Fatalf("seed %d: reference moved", seed)
		}
	}
}

// TestSpecValidation: structural errors are caught at parse/normalize
// time with messages naming the offending part.
func TestSpecValidation(t *testing.T) {
	cases := map[string]string{
		`{"bounds":{"max_x":0,"max_y":100}}`:                                                                         "no area",
		`{"bounds":{"max_x":100,"max_y":100},"obstacles":[{"rect":[1,2]}]}`:                                          "want 4",
		`{"bounds":{"max_x":100,"max_y":100},"obstacles":[{"points":[{"x":1,"y":1},{"x":2,"y":2}]}]}`:                "at least 3 points",
		`{"bounds":{"max_x":100,"max_y":100},"obstacles":[{"rect":[1,1,2,2],"points":[{"x":1,"y":1}]}]}`:             "both rect and points",
		`{"bounds":{"max_x":100,"max_y":100},"generator":{"min_count":3,"max_count":1,"min_side":10,"max_side":20}}`: "count range",
		`{"bounds":{"max_x":100,"max_y":100},"generator":{"min_count":1,"max_count":2,"min_side":0,"max_side":20}}`:  "side range",
		`{"bounds":{"max_x":100,"max_y":100},"bogus_key":1}`:                                                         "bogus_key",
		`{"bounds":{"max_x":100,"max_y":100}} trailing`:                                                              "trailing",
	}
	for in, want := range cases {
		_, err := ParseSpec([]byte(in))
		if err == nil {
			t.Errorf("ParseSpec(%s) should error (want %q)", in, want)
			continue
		}
		if got := err.Error(); !contains(got, want) {
			t.Errorf("ParseSpec(%s) error %q should mention %q", in, got, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestSpecBuildReference: the normalized reference defaults to the
// lower-left bounds corner, and a reference inside an obstacle is
// rejected at build time.
func TestSpecBuildReference(t *testing.T) {
	s := Spec{Bounds: RectSpec{MinX: 50, MinY: 60, MaxX: 500, MaxY: 600}}
	f, err := s.Build(0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Reference() != geom.V(50, 60) {
		t.Errorf("default reference = %v, want (50,60)", f.Reference())
	}

	blocked := Spec{
		Bounds:    RectSpec{MaxX: 500, MaxY: 500},
		Reference: &PointSpec{X: 100, Y: 100},
		Obstacles: []ObstacleSpec{{Rect: []float64{50, 50, 150, 150}}},
	}
	if _, err := blocked.Build(0); err == nil {
		t.Error("reference inside an obstacle should fail to build")
	}
}
