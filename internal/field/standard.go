package field

import (
	"fmt"
	"math"
	"math/rand/v2"

	"mobisense/internal/geom"
)

// The standard experimental geometry of the paper (§4.3, §6): a
// 1000 × 1000 m field with the base station at the origin, and sensors
// initially clustered in the [0,500]² sub-area.

// StandardSize is the side length of the paper's square field, in meters.
const StandardSize = 1000.0

// StandardBounds returns the paper's 1000×1000 m field rectangle.
func StandardBounds() geom.Rect { return geom.R(0, 0, StandardSize, StandardSize) }

// ClusterRegion returns the paper's clustered initial-distribution region,
// the [0,500]² sub-area of the field.
func ClusterRegion() geom.Rect { return geom.R(0, 0, StandardSize/2, StandardSize/2) }

// ObstacleFree returns the paper's obstacle-free 1000×1000 field
// (Figures 3(a,b), 8(a,b), 9–12).
func ObstacleFree() *Field {
	return MustNew(StandardBounds(), nil)
}

// TwoObstacles returns a field reproducing Figure 3(c)/8(c): two
// rectangular obstacles walling off the initial cluster area, leaving three
// exits to the large vacant area — two at the top and a narrower one at the
// bottom of the field.
//
// The exact obstacle coordinates are not given in the paper; these are
// inferred from the figure: a vertical slab east of the cluster with a 40 m
// gap at the field's bottom edge, and a horizontal slab north of the
// cluster leaving a 120 m exit at the left edge and a 50 m exit at the
// corner between the two slabs.
func TwoObstacles() *Field {
	obstacles := []geom.Polygon{
		geom.R(500, 40, 550, 500).Polygon(),  // vertical slab; bottom exit y ∈ [0,40]
		geom.R(120, 500, 450, 550).Polygon(), // horizontal slab; left exit x ∈ [0,120], corner exit x ∈ [450,500]
	}
	return MustNew(StandardBounds(), obstacles)
}

// Corridor returns a standard-size field folded into a serpentine corridor
// by three wall slabs with alternating gaps — a maze-like environment that
// forces deployments to thread long narrow passages.
func Corridor() *Field {
	obstacles := []geom.Polygon{
		geom.R(150, 200, StandardSize, 260).Polygon(), // gap at the left edge
		geom.R(0, 450, 850, 510).Polygon(),            // gap at the right edge
		geom.R(150, 700, StandardSize, 760).Polygon(), // gap at the left edge
	}
	return MustNew(StandardBounds(), obstacles)
}

// Campus returns an 800×600 m field with three rectangular buildings
// forming two corridors and an open quad; the base station (gateway) sits
// at the south-west corner.
func Campus() *Field {
	obstacles := []geom.Polygon{
		geom.R(150, 100, 350, 250).Polygon(), // west hall
		geom.R(450, 100, 650, 250).Polygon(), // east hall
		geom.R(250, 350, 550, 480).Polygon(), // north hall
	}
	return MustNew(geom.R(0, 0, 800, 600), obstacles)
}

// DisasterObstacleConfig returns a denser variant of the §6.4 generator:
// more, smaller debris rectangles, modeling a disaster zone strewn with
// rubble rather than a few large buildings.
func DisasterObstacleConfig() RandomObstacleConfig {
	return RandomObstacleConfig{
		MinCount:  3,
		MaxCount:  6,
		MinSide:   60,
		MaxSide:   250,
		KeepClear: 30,
	}
}

// RandomObstacleConfig controls RandomObstacles (§6.4).
type RandomObstacleConfig struct {
	MinCount, MaxCount int     // number of rectangles, uniform in [MinCount, MaxCount]
	MinSide, MaxSide   float64 // rectangle side lengths, uniform in [MinSide, MaxSide]
	KeepClear          float64 // radius around the reference point kept obstacle-free
}

// DefaultRandomObstacleConfig mirrors §6.4: between 1 and 4 rectangular
// obstacles of random size that may overlap but must not partition the
// field.
func DefaultRandomObstacleConfig() RandomObstacleConfig {
	return RandomObstacleConfig{
		MinCount:  1,
		MaxCount:  4,
		MinSide:   80,
		MaxSide:   400,
		KeepClear: 30,
	}
}

// ClampedSides returns the side range the generator actually samples
// within a w×h field: over-wide rectangles clamp to the field
// dimensions so their corners stay inside the bounds. Anything sizing
// obstacles from a generator config (the density→count axis) must use
// this, not the raw MinSide/MaxSide.
func (cfg RandomObstacleConfig) ClampedSides(w, h float64) (minSide, maxSide float64) {
	maxSide = math.Min(cfg.MaxSide, math.Min(w, h))
	minSide = math.Min(cfg.MinSide, maxSide)
	return minSide, maxSide
}

// RandomObstacles generates a standard-size field with random rectangular
// obstacles per §6.4. Layouts that partition the field or bury the
// reference point are rejected and regenerated; the function errors only if
// no valid layout is found after many attempts.
func RandomObstacles(rng *rand.Rand, cfg RandomObstacleConfig) (*Field, error) {
	bounds := StandardBounds()
	return randomObstaclesIn(rng, bounds, bounds.Min, nil, cfg)
}

// randomObstaclesIn is the generalized §6.4 generator behind both
// RandomObstacles and seeded Specs: it scatters random rectangles over
// bounds (on top of any fixed obstacles), keeps the reference point's
// neighborhood clear, and retries layouts that partition the free space.
// For the standard bounds with the reference at the origin and no fixed
// obstacles it consumes the random stream exactly like the original
// RandomObstacles, so pre-spec seeds reproduce bit-identical layouts.
func randomObstaclesIn(rng *rand.Rand, bounds geom.Rect, ref geom.Vec, fixed []geom.Polygon, cfg RandomObstacleConfig) (*Field, error) {
	if cfg.MaxCount < cfg.MinCount || cfg.MinCount < 0 {
		return nil, fmt.Errorf("field: invalid obstacle count range [%d,%d]", cfg.MinCount, cfg.MaxCount)
	}
	// Clamp the side range to the field dimensions: a generator tuned for
	// the standard 1000 m field may be applied to a small custom one (the
	// field.obstacles/field.density axes inject the §6.4 defaults into any
	// field), and an over-wide rectangle would otherwise sample its corner
	// from a negative interval and land outside the bounds. For the
	// standard geometry this is a no-op, so pre-spec random streams are
	// unchanged.
	minSide, maxSide := cfg.ClampedSides(bounds.W(), bounds.H())
	for attempt := 0; attempt < 200; attempt++ {
		n := cfg.MinCount
		if cfg.MaxCount > cfg.MinCount {
			n += rng.IntN(cfg.MaxCount - cfg.MinCount + 1)
		}
		obstacles := make([]geom.Polygon, 0, len(fixed)+n)
		obstacles = append(obstacles, fixed...)
		ok := true
		for i := 0; i < n; i++ {
			w := minSide + rng.Float64()*(maxSide-minSide)
			h := minSide + rng.Float64()*(maxSide-minSide)
			x := bounds.Min.X + rng.Float64()*(bounds.W()-w)
			y := bounds.Min.Y + rng.Float64()*(bounds.H()-h)
			r := geom.R(x, y, x+w, y+h)
			// Keep the reference point's neighborhood clear.
			if r.Expand(cfg.KeepClear).Contains(ref) {
				ok = false
				break
			}
			obstacles = append(obstacles, r.Polygon())
		}
		if !ok {
			continue
		}
		f, err := New(bounds, obstacles, WithReference(ref))
		if err == nil {
			return f, nil
		}
	}
	return nil, fmt.Errorf("field: no valid random obstacle layout after 200 attempts")
}
