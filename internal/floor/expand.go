package floor

import (
	"math"

	"mobisense/internal/core"
	"mobisense/internal/geom"
)

// epCandidate is a discovered expansion point.
type epCandidate struct {
	pos  geom.Vec
	kind epKind
}

// placementSpacing is the fraction of the expansion radius below which two
// placements are considered duplicates.
const placementSpacing = 0.7

// pendingTTLPeriods is how long an advertised EP stays pending before the
// inviter forgets it.
const pendingTTLPeriods = 120

// maxPendings caps how many EPs one inviter keeps outstanding.
const maxPendings = 8

// expandStep is one period of a fixed node's Algorithm-2 thread 1: while
// at least one EP exists, advertise it with a random-walk invitation. New
// EPs are discovered from the node itself and from its virtual/pending
// chain anchors, so chains extend one EP per period regardless of
// acceptance and travel latency. A node with no EPs, no pending
// advertisements and no in-flight virtuals stops checking (§5.5.2) until a
// new child wakes it.
func (s *Scheme) expandStep(id int) {
	w := s.w
	w.Stay(id, w.P.Period) // fixed nodes do not move
	w.Msg.Count(core.MsgBeacon, 1)
	if s.epDone[id] && len(s.ownedVirtuals[id]) == 0 && len(s.pendings[id]) == 0 {
		return
	}

	// Expire stale advertisements. When the head of the queue expires the
	// whole queue goes with it: the younger EPs are anchored beyond the
	// abandoned one, and accepting them would create disconnected islands.
	// Unaccepted EPs thereby always form a suffix of each chain.
	now := w.Now()
	if len(s.pendings[id]) > 0 && s.pendings[id][0].expires <= now {
		s.pendings[id] = nil
	}

	// Discover new EPs (throttled by the backoff only for discovery, the
	// expensive part) and queue them as pending advertisements.
	if now >= s.nextInvite[id] && len(s.pendings[id]) < maxPendings {
		eps := s.discoverEPs(id)
		if len(eps) == 0 && len(s.ownedVirtuals[id]) == 0 && len(s.pendings[id]) == 0 {
			s.epDone[id] = true
			return
		}
		for _, ep := range eps {
			s.pendings[id] = append(s.pendings[id], pendingEP{
				pos:     ep.pos,
				kind:    ep.kind,
				expires: now + pendingTTLPeriods*w.P.Period,
			})
		}
		if len(eps) == 0 {
			// Nothing new: back off discovery while ads are in flight.
			s.inviteBackoff[id] = math.Min(math.Max(1, s.inviteBackoff[id]*1.5), 8)
		} else {
			s.inviteBackoff[id] = 0
		}
		s.nextInvite[id] = now + s.inviteBackoff[id]*w.P.Period
	}

	// Advertise only the oldest pending EP (several walks per period,
	// staggered across nodes): acceptances stay FIFO per inviter, so
	// chains fill strictly front-to-back.
	if len(s.pendings[id]) == 0 {
		return
	}
	head := s.pendings[id][0]
	for k := 0; k < s.cfg.MaxInvitesPerPeriod; k++ {
		s.sendInvitation(id, epCandidate{pos: head.pos, kind: head.kind})
	}
}

// acceptPending grants an acceptance for inviter's EP at pos only when it
// matches the oldest pending advertisement (FIFO chain filling); on success
// the pending entry is consumed.
func (s *Scheme) acceptPending(inviter int, pos geom.Vec) bool {
	list := s.pendings[inviter]
	if len(list) == 0 || list[0].pos.Dist2(pos) >= 1 {
		return false
	}
	s.pendings[inviter] = list[1:]
	return true
}

// pendingNear reports whether any inviter (this node's own queue exactly,
// other nodes' via the once-per-period cache) already advertises an EP
// within the placement spacing of p.
func (s *Scheme) pendingNear(id int, p geom.Vec) bool {
	limit := placementSpacing * s.re
	limit2 := limit * limit
	for _, pe := range s.pendings[id] {
		if pe.pos.Dist2(p) <= limit2 {
			return true
		}
	}
	return false
}

// discoverEPs finds up to MaxInvitesPerPeriod expansion points in priority
// order: floor-line guided first, then boundary guided, then inter-floor
// guided (§5.5.1). Discovery runs from the node's own position and from
// each virtual fixed node it owns — virtual nodes count as fixed (§5.5.2),
// which pipelines chain growth ahead of sensors still in transit.
func (s *Scheme) discoverEPs(id int) []epCandidate {
	budget := s.cfg.MaxInvitesPerPeriod
	// Both slices are per-run scratch: the caller consumes the result
	// before the next discovery, so the backing arrays are reused.
	out := s.epScratch[:0]
	anchors := s.anchorScratch[:0]
	anchors = append(anchors, s.w.Pos(id))
	for _, v := range s.ownedVirtuals[id] {
		anchors = append(anchors, v.pos)
	}
	for _, p := range s.pendings[id] {
		anchors = append(anchors, p.pos)
	}
	for _, anchor := range anchors {
		if len(out) >= budget {
			break
		}
		if ep, ok := s.flgEP(id, anchor); ok {
			out = append(out, ep)
		}
	}
	for _, anchor := range anchors {
		if len(out) >= budget {
			break
		}
		if ep, ok := s.blgEP(id, anchor); ok {
			out = append(out, ep)
		}
	}
	// IFLG fills slivers between settled pairs. It has the lowest priority
	// (§5.5.1): it only competes for movables once this node has no chain
	// growth in flight and the bulk deployment is over (late phase), so
	// whole-tile FLG placements are never starved by sliver filling.
	if len(out) == 0 && len(s.ownedVirtuals[id]) == 0 && len(s.pendings[id]) == 0 &&
		s.w.Now() > s.w.P.Duration/2 {
		out = s.iflgEPs(out, id, budget)
	}
	s.epScratch = out
	s.anchorScratch = anchors
	return out
}

// flgEP implements FLG-expansion from the given anchor (the node itself or
// a virtual fixed node it owns): find the floor-line segment covered by
// the sensing range, take the uncovered frontier endpoint farthest from
// the y axis, and place the EP on the floor line at the expansion radius.
func (s *Scheme) flgEP(id int, pos geom.Vec) (epCandidate, bool) {
	w := s.w
	rs := w.P.Rs
	lineY := s.fl.NearestLineY(pos.Y)
	dy := math.Abs(pos.Y - lineY)
	if dy >= rs {
		return epCandidate{}, false
	}
	half := math.Sqrt(rs*rs - dy*dy)
	// Far-from-y-axis endpoint first (§5.5.1), then the near one, which
	// lets floors also fill westward past obstacles.
	for _, sign := range []float64{1, -1} {
		frontier := geom.V(pos.X+sign*half, lineY)
		if !w.F.Bounds().Contains(frontier) || !w.F.Free(frontier) {
			continue
		}
		if !w.F.SegmentFree(pos, frontier) {
			continue
		}
		if s.reg.coveredQuery(w, id, frontier, rs, skipSpec{id: id, pos: pos, usePos: true}) {
			continue
		}
		var ep geom.Vec
		if dy < s.re {
			ep = geom.V(pos.X+sign*math.Sqrt(s.re*s.re-dy*dy), lineY)
		} else {
			ep = pos.Towards(frontier, s.re)
		}
		if s.placementOK(id, pos, ep) {
			return epCandidate{pos: ep, kind: epFLG}, true
		}
	}
	return epCandidate{}, false
}

// blgEP implements BLG-expansion from the given anchor: pick a boundary
// segment visible in the sensing range, find its frontier endpoint by the
// left-hand rule, and place the EP toward it on the expansion circle.
func (s *Scheme) blgEP(id int, pos geom.Vec) (epCandidate, bool) {
	w := s.w
	s.segScratch = w.F.BoundarySegmentsWithinAppend(s.segScratch[:0], pos, w.P.Rs)
	segs := s.segScratch
	if len(segs) == 0 {
		return epCandidate{}, false
	}
	// Random segment per Algorithm 2; iterate from a random offset so one
	// blocked segment does not hide the others.
	start := w.E.Rand().IntN(len(segs))
	for i := 0; i < len(segs); i++ {
		bs := segs[(start+i)%len(segs)]
		// The field's horizontal edges are redundant with the first/last
		// floor lines by the floor construction (each is within rs of a
		// line); expanding along them wastes sensors. The vertical field
		// edge far from the reference point is likewise redundant with the
		// floor-line ends that reach it. Only the near (vine riser) edge
		// and obstacle boundaries stay eligible.
		if w.F.IsFrame(bs.Solid) {
			if math.Abs(bs.Seg.B.Y-bs.Seg.A.Y) < 1e-9 {
				continue
			}
			mid := w.F.Bounds().Center().X
			if bs.Seg.A.X > mid && w.F.Reference().X <= mid {
				continue
			}
		}
		// Boundary edges run counter-clockwise, so the left-hand-rule
		// frontier is the far end of the visible chord.
		frontier := bs.Seg.B
		if !w.F.SegmentFree(pos, frontier) {
			continue
		}
		if s.reg.coveredQuery(w, id, frontier, w.P.Rs, skipSpec{id: id, pos: pos, usePos: true}) {
			continue
		}
		ep := pos.Towards(frontier, s.re)
		if s.placementOK(id, pos, ep) {
			return epCandidate{pos: ep, kind: epBLG}, true
		}
	}
	return epCandidate{}, false
}

// iflgEPs implements IFLG-expansion: for each same-floor fixed child, the
// two expansion circles intersect at two points; the one on the side of an
// uncovered inter-floor probe becomes an EP (§5.5.1, Figure 7d). Results
// are appended to out (caller-held scratch) and the grown slice returned.
func (s *Scheme) iflgEPs(out []epCandidate, id, budget int) []epCandidate {
	w := s.w
	pos := w.Pos(id)
	base := len(out)
	floorK := s.fl.Index(pos.Y)
	for _, c := range w.Tree.Children(id) {
		if len(out)-base >= budget {
			break
		}
		if s.st[c] != stateFixed {
			continue
		}
		cpos := w.Pos(c)
		if s.fl.Index(cpos.Y) != floorK {
			continue
		}
		d := pos.Dist(cpos)
		if d < 1e-6 || d > 2*s.re {
			continue
		}
		p1, p2, ok := (geom.Circle{C: pos, R: s.re}).IntersectCircle(geom.Circle{C: cpos, R: s.re})
		if !ok {
			continue
		}
		for _, q := range []geom.Vec{p1, p2} {
			if len(out)-base >= budget {
				break
			}
			probe, ok := s.interFloorProbe(pos, cpos, q, floorK)
			if !ok {
				continue
			}
			// A hole exists only if the probe is covered by nobody —
			// including this sensor and its child.
			if pos.WithinDist(probe, w.P.Rs) || cpos.WithinDist(probe, w.P.Rs) {
				continue
			}
			if !w.F.Free(probe) {
				continue
			}
			if s.reg.coveredQuery(w, id, probe, w.P.Rs, noSkip) {
				continue
			}
			if s.placementOK(id, pos, q) {
				out = append(out, epCandidate{pos: q, kind: epIFLG})
			}
		}
	}
	return out
}

// interFloorProbe picks the probe point between the pair midpoint and the
// inter-floor line on the side of candidate point q.
func (s *Scheme) interFloorProbe(pos, cpos, q geom.Vec, floorK int) (geom.Vec, bool) {
	lineY := s.fl.LineY(floorK)
	var interY float64
	if q.Y >= lineY {
		if floorK >= s.fl.Count()-1 {
			return geom.Vec{}, false
		}
		interY = s.fl.InterLineY(floorK)
	} else {
		if floorK == 0 {
			return geom.Vec{}, false
		}
		interY = s.fl.InterLineY(floorK - 1)
	}
	mid := pos.Lerp(cpos, 0.5)
	probe := geom.V(mid.X, interY)
	if !s.w.F.Bounds().Contains(probe) {
		return geom.Vec{}, false
	}
	return probe, true
}

// placementOK validates an EP: free space, reachable in a straight line
// from the inviter, inside the field, and not already taken by another
// fixed or virtual node or one of the inviter's own pending EPs.
func (s *Scheme) placementOK(id int, from, ep geom.Vec) bool {
	w := s.w
	if !w.F.Bounds().Contains(ep) || !w.F.Free(ep) {
		return false
	}
	if !w.F.SegmentFree(from, ep) {
		return false
	}
	return !s.placementTaken(ep, id) && !s.pendingNear(id, ep)
}

// placementTaken reports whether a fixed or virtual node other than
// `exclude` already sits within placementSpacing·re of ep.
func (s *Scheme) placementTaken(ep geom.Vec, exclude int) bool {
	limit := placementSpacing * s.re
	limit2 := limit * limit
	for _, k := range s.reg.queryFloors(ep) {
		if k < 0 {
			continue
		}
		for _, rec := range s.reg.nodesInFloor(k) {
			if !rec.virtual && rec.id == exclude {
				continue
			}
			if rec.pos.Dist2(ep) <= limit2 {
				return true
			}
		}
	}
	return false
}
