package floor

import (
	"math"

	"mobisense/internal/bug2"
	"mobisense/internal/core"
	"mobisense/internal/field"
	"mobisense/internal/geom"
)

// Config tunes the FLOOR scheme.
type Config struct {
	// TTL is the invitation random-walk time-to-live in hops (§5.5.2,
	// Table 1 varies it as a fraction of N). Zero selects 0.2·N.
	TTL int
	// ExclusiveFrac is the movability threshold (§5.3): a sensor is
	// movable when the area it covers exclusively is below this fraction
	// of its full disk area.
	ExclusiveFrac float64
	// MaxInvitesPerPeriod caps how many expansion points one fixed node
	// advertises per period.
	MaxInvitesPerPeriod int
	// InvitesNeeded is how many invitations a movable sensor collects
	// before accepting the best one (§5.5.2 "a certain number"); collecting
	// several lets the FLG > BLG > IFLG priority actually bite.
	InvitesNeeded int
	// PatiencePeriods bounds how long a movable holding fewer than
	// InvitesNeeded invitations waits before acting on what it has.
	PatiencePeriods int
	// StableJoinPeriods is how many periods without a new arrival make
	// the base station start phase 2 (its "certain time has elapsed").
	StableJoinPeriods int
	// StartDelayPeriods bounds the random delay before a disconnected
	// sensor starts walking.
	StartDelayPeriods float64
	// DirectConnectWalk replaces Algorithm 1's three-leg route (floor
	// line → y axis → reference point) with CPVF's straight BUG2 walk
	// (ablation of §5.2's overlap-reducing trajectory).
	DirectConnectWalk bool
	// DisablePriority makes movables accept the first collected
	// invitation instead of the highest-priority one (ablation of the
	// FLG > BLG > IFLG ordering, §5.5.1).
	DisablePriority bool
}

// DefaultConfig returns the FLOOR configuration used by the paper's
// experiments (TTL = 0.2·N).
func DefaultConfig() Config {
	return Config{
		TTL:                 0, // 0.2·N at Attach time
		ExclusiveFrac:       0.6,
		MaxInvitesPerPeriod: 2,
		InvitesNeeded:       1,
		PatiencePeriods:     5,
		StableJoinPeriods:   20,
		StartDelayPeriods:   3,
	}
}

// nodeState is a sensor's role in the FLOOR protocol.
type nodeState int

const (
	// stateWalking: phase-1 connectivity walk (Algorithm 1).
	stateWalking nodeState = iota + 1
	// stateAwaiting: connected, waiting for the movable identification
	// phase.
	stateAwaiting
	// stateFixed: a fixed node; discovers EPs and invites movables.
	stateFixed
	// stateMovable: free to relocate; collects invitations.
	stateMovable
	// stateRelocating: en route to an accepted expansion point.
	stateRelocating
)

// epKind classifies expansion points; larger is higher priority (§5.5.1).
type epKind int

const (
	epIFLG epKind = 1
	epBLG  epKind = 2
	epFLG  epKind = 3
)

// invitation is a random-walk Invitation collected by a movable sensor.
type invitation struct {
	ep      geom.Vec
	kind    epKind
	inviter int
	hops    int
}

// relocation tracks a movable sensor traveling to its accepted EP. The
// planner is embedded by value and re-initialized in place per relocation,
// so accepting an invitation allocates nothing.
type relocation struct {
	planner bug2.Planner
	ep      geom.Vec
	kind    epKind
	inviter int
	token   int // virtual-node registry token
}

// Scheme is one FLOOR run's controller.
type Scheme struct {
	cfg Config
	w   *core.World

	fl       Floors
	reg      *registry
	lazy     *core.LazyCoordinator
	st       []nodeState
	epDone   []bool
	invites  [][]invitation
	reloc    []relocation
	phase    int
	lastJoin float64
	connectR float64 // min(rc, 2·rs), §5.2
	re       float64 // expansion-circle radius min(rc, rs), §5.5

	inviteBackoff []float64 // periods between re-invitations
	nextInvite    []float64 // earliest next invitation time

	// ownedVirtuals[i] holds the virtual fixed nodes inviter i installed
	// whose sensors are still in transit. Virtual nodes count as fixed for
	// EP discovery (§5.5.2), so chains of EPs extend ahead of traveling
	// sensors instead of serializing on arrival latency.
	ownedVirtuals [][]virtualAnchor

	// placed counts completed relocations per expansion kind.
	placed [epFLG + 1]int

	// failures arms the periodic stranded-sensor heartbeat sweep once the
	// first sensor has died.
	failures bool

	// firstInvite[i] is when movable i received its first pending
	// invitation (for the patience timeout); zero when none pending.
	firstInvite []float64

	// pendings[i] holds inviter i's advertised-but-unaccepted EPs. They
	// anchor further chain EPs (decoupling chain growth from acceptance
	// latency) and are re-advertised every period until accepted or
	// expired, per Algorithm 2's thread 1 loop.
	pendings [][]pendingEP

	// allPendingPos caches every inviter's pending EP positions, rebuilt
	// once per period by the monitor; placement checks consult it so
	// parallel chains never target overlapping spots.
	allPendingPos []geom.Vec

	// decideFns[i] is the prebuilt per-period event closure for sensor i
	// and monitorFn the base station's; building them once in Attach keeps
	// the event loop's rescheduling allocation-free.
	decideFns []func()
	monitorFn func()

	// Per-run scratch reused across periods by the discovery and
	// classification hot paths.
	epScratch     []epCandidate
	anchorScratch []geom.Vec
	segScratch    []field.BoundarySegment
	othersScratch []geom.Vec
}

// pendingEP is an advertised expansion point awaiting acceptance.
type pendingEP struct {
	pos     geom.Vec
	kind    epKind
	expires float64
}

// virtualAnchor is a pending virtual fixed node usable as an EP anchor.
type virtualAnchor struct {
	token int
	pos   geom.Vec
	kind  epKind
}

var _ core.Scheme = (*Scheme)(nil)

// New creates a FLOOR scheme with the given configuration.
func New(cfg Config) *Scheme {
	def := DefaultConfig()
	if cfg.ExclusiveFrac <= 0 {
		cfg.ExclusiveFrac = def.ExclusiveFrac
	}
	if cfg.MaxInvitesPerPeriod <= 0 {
		cfg.MaxInvitesPerPeriod = def.MaxInvitesPerPeriod
	}
	if cfg.InvitesNeeded <= 0 {
		cfg.InvitesNeeded = def.InvitesNeeded
	}
	if cfg.PatiencePeriods <= 0 {
		cfg.PatiencePeriods = def.PatiencePeriods
	}
	if cfg.StableJoinPeriods <= 0 {
		cfg.StableJoinPeriods = def.StableJoinPeriods
	}
	if cfg.StartDelayPeriods <= 0 {
		cfg.StartDelayPeriods = def.StartDelayPeriods
	}
	return &Scheme{cfg: cfg}
}

// Name implements core.Scheme.
func (s *Scheme) Name() string { return "floor" }

// Attach implements core.Scheme.
func (s *Scheme) Attach(w *core.World) {
	s.w = w
	n := w.P.N
	if s.cfg.TTL <= 0 {
		s.cfg.TTL = int(math.Max(1, 0.2*float64(n)))
	}
	s.connectR = math.Min(w.P.Rc, 2*w.P.Rs)
	// Expansion radius min(rc, rs) (§5.5), less a safety margin covering
	// the relocation arrival tolerance so that a chain link never exceeds
	// the communication range.
	s.re = math.Min(w.P.Rc, w.P.Rs) - 0.5
	s.fl = NewFloors(w.F.Bounds(), w.P.Rs)
	s.reg = newRegistry(s.fl, w.F)
	s.st = make([]nodeState, n)
	s.epDone = make([]bool, n)
	s.invites = make([][]invitation, n)
	s.reloc = make([]relocation, n)
	s.inviteBackoff = make([]float64, n)
	s.nextInvite = make([]float64, n)
	s.ownedVirtuals = make([][]virtualAnchor, n)
	s.firstInvite = make([]float64, n)
	s.pendings = make([][]pendingEP, n)
	s.phase = 1
	s.decideFns = make([]func(), n)
	for i := 0; i < n; i++ {
		id := i
		s.decideFns[i] = func() { s.decide(id) }
	}
	s.monitorFn = s.monitor

	w.FloodFromBase(s.connectR)

	// Build the Algorithm-1 walkers for disconnected sensors; already
	// connected ones await phase 2.
	walkers := make([]core.Walker, n)
	startDelay := make([]float64, n)
	rng := w.E.Rand()
	for i := 0; i < n; i++ {
		pos := w.Pos(i)
		walkers[i] = s.newConnectWalker(pos)
		if w.Sensors[i].Connected {
			s.st[i] = stateAwaiting
		} else {
			s.st[i] = stateWalking
			startDelay[i] = rng.Float64() * s.cfg.StartDelayPeriods * w.P.Period
		}
	}
	s.lazy = core.NewLazyCoordinator(w, walkers, core.LazyConfig{ConnectRadius: s.connectR})

	for i := 0; i < n; i++ {
		w.E.ScheduleAt(math.Max(w.PeriodStart(i, 0), startDelay[i]), s.decideFns[i])
	}
	// Global phase monitor (the base station's coordination role).
	w.E.ScheduleAt(0, s.monitorFn)
}

// newConnectWalker builds the three-leg route of Algorithm 1: to the
// nearest floor line, then along it to the y axis, then to the reference
// point. The first two legs end at the first obstacle contact.
func (s *Scheme) newConnectWalker(pos geom.Vec) core.Walker {
	if s.cfg.DirectConnectWalk {
		return core.NewDirectWalker(s.w.F, pos, s.w.F.Reference())
	}
	lineY := s.fl.NearestLineY(pos.Y)
	xAxis := s.w.F.Bounds().Min.X
	legs := []core.Leg{
		{Target: geom.V(pos.X, lineY), StopOnHit: true},
		{Target: geom.V(xAxis, lineY), StopOnHit: true},
		{Target: s.w.F.Reference()},
	}
	return core.NewRouteWalker(s.w.F, pos, legs, bug2.RightHand)
}

// monitor is the base station's once-per-period coordination event: it
// starts phase 2 when every sensor has reported or arrivals have gone
// quiet (§5.3).
func (s *Scheme) monitor() {
	w := s.w
	if w.Now() < w.P.Duration {
		w.E.Schedule(w.P.Period, s.monitorFn)
	}
	// Refresh the global pending-EP cache (stale by at most one period).
	s.allPendingPos = s.allPendingPos[:0]
	for i := range s.pendings {
		for _, p := range s.pendings[i] {
			s.allPendingPos = append(s.allPendingPos, p.pos)
		}
	}
	// Under attrition, the base station's heartbeat monitoring sends
	// severed segments back to re-join (§7 extension).
	if s.failures {
		s.sweepStranded()
	}
	if s.phase != 1 {
		return
	}
	cc := w.ConnectedCount()
	quiet := w.Now()-s.lastJoin > float64(s.cfg.StableJoinPeriods)*w.P.Period
	if cc == w.P.N || (cc > 0 && quiet && w.Now() > float64(s.cfg.StableJoinPeriods)*w.P.Period) {
		s.identifyMovables()
		s.phase = 3
	}
}

// decide dispatches one period's action for sensor id by protocol state.
func (s *Scheme) decide(id int) {
	w := s.w
	if w.Sensors[id].Failed {
		return // dead sensors neither act nor reschedule
	}
	if w.Now() < w.P.Duration {
		w.E.Schedule(w.P.Period, s.decideFns[id])
	}
	switch s.st[id] {
	case stateWalking:
		s.walkStep(id)
	case stateAwaiting:
		w.Stay(id, w.P.Period)
	case stateFixed:
		s.expandStep(id)
	case stateMovable:
		s.movableStep(id)
	case stateRelocating:
		s.relocStep(id)
	}
}

// walkStep advances the phase-1 connectivity walk.
func (s *Scheme) walkStep(id int) {
	w := s.w
	// A rejoin walker can arrive at a position whose anchor has since
	// moved or died; pick a fresh target instead of idling there.
	if wk := s.lazy.Walker(id); wk.Arrived() || wk.Stuck() {
		s.lazy.ReplaceWalker(id, s.rejoinWalker(w.Pos(id)))
	}
	res := s.lazy.Step(id)
	switch res.Outcome {
	case core.LazyJoined, core.LazyJoinedBase:
		parent := core.BaseParent
		if res.Outcome == core.LazyJoined {
			parent = res.Parent
		}
		w.Sensors[id].Connected = true
		w.Tree.SetParent(id, parent)
		s.lastJoin = w.Now()
		// Arrival report to the base; the response carries the ancestor
		// list (§5.3).
		if d := w.Tree.Depth(id); d > 0 {
			w.Msg.Count(core.MsgReport, 2*d)
		}
		if s.phase == 3 {
			// Late arrival: classify immediately.
			s.classifyLateJoiner(id)
		} else {
			s.st[id] = stateAwaiting
		}
	}
}

// relocStep advances a movable sensor toward its accepted EP.
func (s *Scheme) relocStep(id int) {
	w := s.w
	r := &s.reloc[id]
	moved := r.planner.Advance(w.P.MaxStep())
	w.BeginStep(id, r.planner.Pos(), moved, w.P.Period)
	switch r.planner.Status() {
	case bug2.StatusArrived:
		s.placed[r.kind]++
		s.becomeFixed(id, r)
	case bug2.StatusStuck:
		// EP unreachable: release the claim and return to the movable
		// pool.
		s.reg.removeVirtual(r.token)
		s.dropOwnedVirtual(r.inviter, r.token)
		s.st[id] = stateMovable
	}
}

// dropOwnedVirtual removes a virtual anchor from its inviter's owned list
// and wakes the inviter: the hole left behind is a fresh expansion
// opportunity.
func (s *Scheme) dropOwnedVirtual(inviter, token int) {
	if inviter < 0 || inviter >= len(s.ownedVirtuals) {
		return
	}
	list := s.ownedVirtuals[inviter]
	for i := range list {
		if list[i].token == token {
			list[i] = list[len(list)-1]
			s.ownedVirtuals[inviter] = list[:len(list)-1]
			s.epDone[inviter] = false
			s.inviteBackoff[inviter] = 0
			s.nextInvite[inviter] = 0
			return
		}
	}
}

// becomeFixed finalizes an arrival at an EP: join the inviter in the tree,
// replace the virtual node with the real one, and start expanding.
func (s *Scheme) becomeFixed(id int, r *relocation) {
	w := s.w
	s.reg.removeVirtual(r.token)
	s.dropOwnedVirtual(r.inviter, r.token)
	s.st[id] = stateFixed
	w.Sensors[id].Connected = true
	s.epDone[id] = false
	s.inviteBackoff[id] = 0
	s.nextInvite[id] = 0
	// With chained EPs the inviter may be beyond the connect radius;
	// prefer the nearest fixed neighbor (normally the chain predecessor),
	// falling back to the inviter whose virtual place-holder bridged the
	// gap until the rest of the chain lands.
	parent := s.nearestFixedWithin(id, s.connectR)
	if parent == core.NoParent {
		parent = r.inviter
	}
	if parent == id || !w.Tree.SetParent(id, parent) {
		if alt := s.nearestFixedWithin(id, s.connectR); alt != core.NoParent && alt != parent {
			w.Tree.SetParent(id, alt)
		}
	}
	s.reg.addFixed(id, w.Pos(id))
	if d := w.Tree.Depth(id); d > 0 {
		w.Msg.Count(core.MsgReport, 2*d)
	}
	// A new child creates fresh expansion opportunities (notably IFLG) for
	// the inviter: wake it if it had gone dormant.
	if r.inviter >= 0 && r.inviter < len(s.epDone) {
		s.epDone[r.inviter] = false
		s.inviteBackoff[r.inviter] = 0
		s.nextInvite[r.inviter] = 0
	}
	// Self-healing: neighbors that bridged a chain gap with an over-long
	// parent link re-parent to the new arrival when it is closer.
	myPos := w.Pos(id)
	w.ForNeighbors(id, s.connectR, func(j int, q geom.Vec) {
		// ForNeighbors never yields id itself, so only the state filter
		// remains.
		if s.st[j] != stateFixed {
			return
		}
		par := w.Tree.Parent(j)
		if par < 0 && par != core.NoParent {
			return // base links are always short
		}
		var parLink float64
		if par == core.NoParent {
			parLink = math.Inf(1)
		} else {
			parLink = q.Dist(w.Pos(par))
		}
		if parLink > w.P.Rc && q.Dist(myPos) < parLink {
			if w.Tree.SetParent(j, id) {
				w.Msg.Count(core.MsgTreeCtl, 2)
			}
		}
	})
}

// classifyLateJoiner decides fixed-vs-movable for a sensor that connected
// after phase 2 ran.
func (s *Scheme) classifyLateJoiner(id int) {
	if s.isExclusiveCoverageLow(id) {
		s.st[id] = stateMovable
		s.w.Sensors[id].Connected = false
		s.w.Tree.Detach(id)
		return
	}
	s.st[id] = stateFixed
	s.reg.addFixed(id, s.w.Pos(id))
}
