package floor

import (
	"math"
	"testing"

	"mobisense/internal/core"
	"mobisense/internal/coverage"
	"mobisense/internal/field"
	"mobisense/internal/geom"
)

func TestFloorsGeometry(t *testing.T) {
	fl := NewFloors(geom.R(0, 0, 1000, 1000), 40)
	if fl.Count() != 13 { // ceil(1000/80)
		t.Errorf("count = %d, want 13", fl.Count())
	}
	if fl.Height() != 80 {
		t.Errorf("height = %v", fl.Height())
	}
	if got := fl.LineY(0); got != 40 {
		t.Errorf("line 0 = %v", got)
	}
	if got := fl.LineY(3); got != 280 {
		t.Errorf("line 3 = %v", got)
	}
	if got := fl.InterLineY(0); got != 80 {
		t.Errorf("inter-line 0 = %v", got)
	}
	tests := []struct {
		y    float64
		want int
	}{
		{0, 0}, {79.9, 0}, {80, 1}, {500, 6}, {999, 12}, {-5, 0}, {2000, 12},
	}
	for _, tt := range tests {
		if got := fl.Index(tt.y); got != tt.want {
			t.Errorf("Index(%v) = %d, want %d", tt.y, got, tt.want)
		}
	}
	if got := fl.NearestLineY(75); got != 40 {
		t.Errorf("NearestLineY(75) = %v, want 40", got)
	}
	if got := fl.NearestLineY(85); got != 120 {
		t.Errorf("NearestLineY(85) = %v, want 120", got)
	}
}

func TestRegistryBasics(t *testing.T) {
	fl := NewFloors(geom.R(0, 0, 400, 400), 40)
	r := newRegistry(fl, field.MustNew(geom.R(0, 0, 400, 400), nil))
	r.addFixed(7, geom.V(100, 40))
	r.addFixed(3, geom.V(50, 45))
	if h := r.header(0); h != 3 {
		t.Errorf("header = %d, want 3 (smallest x)", h)
	}
	if !r.floorCovers(0, geom.V(60, 45), 40, noSkip) {
		t.Error("floor 0 should cover (60,45)")
	}
	if r.floorCovers(0, geom.V(60, 45), 40, skipSpec{id: 3}) {
		t.Error("excluding node 3 leaves (60,45) uncovered by node 7? distance is 40.3")
	}
	// Virtual node lifecycle.
	tok := r.addVirtual(geom.V(200, 40))
	if !r.floorCovers(0, geom.V(200, 40), 10, noSkip) {
		t.Error("virtual node should cover its EP")
	}
	if h := r.header(0); h != 3 {
		t.Error("virtual nodes must not become headers")
	}
	r.removeVirtual(tok)
	if r.floorCovers(0, geom.V(200, 40), 10, noSkip) {
		t.Error("virtual node not removed")
	}
	if h := r.header(5); h != -1 {
		t.Errorf("empty floor header = %d, want -1", h)
	}
}

func smallParams() core.Params {
	p := core.DefaultParams()
	p.N = 40
	p.Rc = 50
	p.Rs = 30
	p.Duration = 300
	p.InitRegion = geom.R(0, 0, 150, 150)
	p.CoverageRes = 4
	return p
}

func runFloor(t *testing.T, f *field.Field, p core.Params, cfg Config) (*core.World, *Scheme) {
	t.Helper()
	w, err := core.NewWorld(f, p)
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	s.Attach(w)
	w.E.RunUntil(p.Duration)
	return w, s
}

func smallField(t *testing.T) *field.Field {
	t.Helper()
	return field.MustNew(geom.R(0, 0, 400, 400), nil)
}

func TestFloorConnectsAllSensors(t *testing.T) {
	w, s := runFloor(t, smallField(t), smallParams(), DefaultConfig())
	if !core.AllConnected(w.Layout(), w.F.Reference(), w.P.Rc) {
		t.Fatal("final unit-disk network is not connected")
	}
	// Every fixed sensor is a tree member rooted at the base.
	for i := range w.Sensors {
		if s.st[i] == stateFixed && !w.Tree.InTree(i) {
			t.Errorf("fixed sensor %d not in tree", i)
		}
	}
}

func TestFloorImprovesCoverage(t *testing.T) {
	f := smallField(t)
	p := smallParams()
	w, err := core.NewWorld(f, p)
	if err != nil {
		t.Fatal(err)
	}
	est := coverage.NewEstimator(f, p.CoverageRes)
	before := est.Fraction(w.Layout(), p.Rs)
	s := New(DefaultConfig())
	s.Attach(w)
	w.E.RunUntil(p.Duration)
	after := est.Fraction(w.Layout(), p.Rs)
	if after <= before {
		t.Errorf("coverage did not improve: %.3f -> %.3f", before, after)
	}
	t.Logf("coverage %.3f -> %.3f (fixed %d, movable %d)",
		before, after, s.FixedCount(), s.MovableCount())
	if after < 0.25 {
		t.Errorf("final coverage %.3f suspiciously low", after)
	}
}

func TestFloorSensorsConvergeToLines(t *testing.T) {
	// Sensors placed by FLG expansion should sit near floor lines; measure
	// the fraction of fixed sensors within 5 m of a line.
	p := smallParams()
	w, s := runFloor(t, smallField(t), p, DefaultConfig())
	fl := NewFloors(w.F.Bounds(), p.Rs)
	near, total := 0, 0
	for i := range w.Sensors {
		if s.st[i] != stateFixed {
			continue
		}
		total++
		y := w.Pos(i).Y
		if math.Abs(y-fl.NearestLineY(y)) < 5 {
			near++
		}
	}
	if total == 0 {
		t.Fatal("no fixed sensors")
	}
	if frac := float64(near) / float64(total); frac < 0.35 {
		t.Errorf("only %.0f%% of fixed sensors near floor lines", 100*frac)
	}
}

func TestFloorStaysInFreeSpace(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 400, 400),
		[]geom.Polygon{geom.R(150, 100, 250, 300).Polygon()})
	w, _ := runFloor(t, f, smallParams(), DefaultConfig())
	for i := range w.Sensors {
		if pos := w.Pos(i); !f.Free(pos) {
			t.Errorf("sensor %d inside obstacle at %v", i, pos)
		}
	}
}

func TestFloorExpandsPastObstacles(t *testing.T) {
	// A wall with one exit: FLOOR must push coverage past it (the paper's
	// key advantage over CPVF, Fig 8c). The field is provisioned so that
	// movable sensors remain after the near side of the wall saturates.
	f := field.MustNew(geom.R(0, 0, 400, 200),
		[]geom.Polygon{geom.R(200, 40, 230, 200).Polygon()})
	p := smallParams()
	p.N = 55 // enough fuel to saturate the near side and push through
	p.Duration = 600
	w, _ := runFloor(t, f, p, DefaultConfig())
	beyond := 0
	for i := range w.Sensors {
		if w.Pos(i).X > 230 {
			beyond++
		}
	}
	if beyond == 0 {
		t.Error("no sensors made it past the wall")
	}
}

func TestFloorConvergence(t *testing.T) {
	// FLOOR's movement is bounded: once movables settle, nothing moves
	// (§5.6: "the convergence time of the protocol is bounded").
	p := smallParams()
	p.Duration = 700
	w, _ := runFloor(t, smallField(t), p, DefaultConfig())
	if w.LastMoveTime() > p.Duration-50 {
		t.Errorf("still moving at %.0f s of %.0f s", w.LastMoveTime(), p.Duration)
	}
}

func TestFloorDeterminism(t *testing.T) {
	f := smallField(t)
	p := smallParams()
	w1, _ := runFloor(t, f, p, DefaultConfig())
	w2, _ := runFloor(t, f, p, DefaultConfig())
	for i := range w1.Sensors {
		if !w1.Pos(i).Eq(w2.Pos(i)) {
			t.Fatalf("sensor %d diverged", i)
		}
	}
	if w1.Msg.Total() != w2.Msg.Total() {
		t.Error("message totals diverged")
	}
}

func TestFloorMessageOverheadGrowsWithTTL(t *testing.T) {
	f := smallField(t)
	p := smallParams()
	short := DefaultConfig()
	short.TTL = 4
	long := DefaultConfig()
	long.TTL = 16
	wShort, _ := runFloor(t, f, p, short)
	wLong, _ := runFloor(t, f, p, long)
	if wLong.Msg.Of(core.MsgInvite) <= wShort.Msg.Of(core.MsgInvite) {
		t.Errorf("invite messages: TTL16 %d <= TTL4 %d",
			wLong.Msg.Of(core.MsgInvite), wShort.Msg.Of(core.MsgInvite))
	}
}

func TestFloorTreeLinkLengths(t *testing.T) {
	// The paper's guarantee is physical (unit-disk) connectivity of the
	// final layout; tree links are bookkeeping that may transiently span a
	// chain gap. Assert that the overwhelming majority of parent links are
	// within rc, that base links respect the connect radius, and that every
	// fixed sensor has at least one physical neighbor.
	p := smallParams()
	w, s := runFloor(t, smallField(t), p, DefaultConfig())
	connectR := math.Min(p.Rc, 2*p.Rs)
	long, total := 0, 0
	for i := range w.Sensors {
		if s.st[i] != stateFixed {
			continue
		}
		switch par := w.Tree.Parent(i); {
		case par >= 0:
			total++
			if d := w.Pos(i).Dist(w.Pos(par)); d > p.Rc+1e-6 {
				long++
			}
		case par == core.BaseParent:
			if d := w.Pos(i).Dist(w.F.Reference()); d > connectR+1e-6 {
				t.Errorf("sensor %d: base link %.1f m exceeds connect radius", i, d)
			}
		}
		if len(w.Neighbors(i, p.Rc)) == 0 && !w.NearBase(i, p.Rc) {
			t.Errorf("fixed sensor %d has no physical neighbor", i)
		}
	}
	if total > 0 && float64(long)/float64(total) > 0.1 {
		t.Errorf("%d/%d parent links exceed rc", long, total)
	}
}

func TestFloorBeatsCPVFLikeClusteringUnderSmallRc(t *testing.T) {
	// With rc < rs, FLOOR should still spread along floor lines and obtain
	// reasonable coverage (the paper's Fig 8b vs Fig 3b contrast).
	f := smallField(t)
	p := smallParams()
	p.Rc = 20
	p.Rs = 30
	p.Duration = 800
	w, _ := runFloor(t, f, p, DefaultConfig())
	est := coverage.NewEstimator(f, 4)
	cov := est.Fraction(w.Layout(), p.Rs)
	if cov < 0.15 {
		t.Errorf("small-rc coverage %.3f too low", cov)
	}
	if !core.AllConnected(w.Layout(), w.F.Reference(), p.Rc) {
		t.Error("small-rc run lost connectivity")
	}
}

func TestFloorUniformInitialDistribution(t *testing.T) {
	// §6: results for the uniform initial distribution are consistent with
	// the clustered case.
	f := smallField(t)
	p := smallParams()
	p.InitRegion = f.Bounds()
	p.Duration = 700 // distant sensors need time to walk in and redeploy
	w, _ := runFloor(t, f, p, DefaultConfig())
	if !core.AllConnected(w.Layout(), w.F.Reference(), w.P.Rc) {
		t.Error("uniform-init run lost connectivity")
	}
}
