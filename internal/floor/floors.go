// Package floor implements the FLOOR deployment scheme (§5 of the paper).
// The field is divided into horizontal floors of height 2·rs whose center
// lines guide sensor placement. Sensors first establish connectivity along
// floor lines (Algorithm 1), then a set of movable sensors is identified
// (§5.3), and finally fixed sensors grow the covered region vine-like along
// floor lines (FLG), boundary lines (BLG) and inter-floor lines (IFLG) by
// inviting movable sensors to expansion points (§5.5, Algorithm 2).
package floor

import (
	"math"

	"mobisense/internal/geom"
)

// Floors describes the horizontal floor decomposition of a field: floor k
// occupies the band [minY + 2·rs·k, minY + 2·rs·(k+1)) and its center line
// is at minY + (2k+1)·rs.
type Floors struct {
	rs     float64
	bounds geom.Rect
	count  int
}

// NewFloors builds the floor decomposition for a field bounding box and
// sensing range.
func NewFloors(bounds geom.Rect, rs float64) Floors {
	count := int(math.Ceil(bounds.H() / (2 * rs)))
	if count < 1 {
		count = 1
	}
	return Floors{rs: rs, bounds: bounds, count: count}
}

// Count returns the number of floors.
func (fl Floors) Count() int { return fl.count }

// Height returns the floor height 2·rs.
func (fl Floors) Height() float64 { return 2 * fl.rs }

// Index returns the floor containing y, clamped to the valid range.
func (fl Floors) Index(y float64) int {
	k := int(math.Floor((y - fl.bounds.Min.Y) / fl.Height()))
	if k < 0 {
		return 0
	}
	if k >= fl.count {
		return fl.count - 1
	}
	return k
}

// LineY returns the center-line y coordinate of floor k.
func (fl Floors) LineY(k int) float64 {
	return fl.bounds.Min.Y + (2*float64(k)+1)*fl.rs
}

// NearestLineY returns the center-line y of the floor nearest to y —
// FLOOR's FloorLine(y) in Algorithm 1.
func (fl Floors) NearestLineY(y float64) float64 {
	best := fl.LineY(0)
	bestD := math.Abs(y - best)
	for k := 1; k < fl.count; k++ {
		ly := fl.LineY(k)
		if d := math.Abs(y - ly); d < bestD {
			bestD = d
			best = ly
		}
	}
	return best
}

// InterLineY returns the inter-floor line between floors k and k+1 (§5.5.1:
// "the middle of two neighboring floor lines").
func (fl Floors) InterLineY(k int) float64 {
	return fl.bounds.Min.Y + 2*float64(k+1)*fl.rs
}
