package floor

import (
	"math"

	"mobisense/internal/bug2"
	"mobisense/internal/core"
	"mobisense/internal/geom"
)

// sendInvitation launches a TTL-bounded random walk carrying an Invitation
// for the given EP (§5.5.2, Algorithm 2). The walk hops between arbitrary
// sensors — non-backtracking, so its reach grows near-linearly with the
// TTL — and the first movable sensor it reaches collects the invitation.
// Every hop is one MsgInvite transmission.
func (s *Scheme) sendInvitation(id int, ep epCandidate) {
	w := s.w
	rng := w.E.Rand()
	cur := id
	prev := -1
	for hop := 1; hop <= s.cfg.TTL; hop++ {
		nbrs := w.Neighbors(cur, w.P.Rc)
		// Avoid bouncing straight back when any alternative exists.
		if len(nbrs) > 1 && prev >= 0 {
			filtered := nbrs[:0]
			for _, n := range nbrs {
				if n != prev {
					filtered = append(filtered, n)
				}
			}
			nbrs = filtered
		}
		if len(nbrs) == 0 {
			return
		}
		prev = cur
		cur = nbrs[rng.IntN(len(nbrs))]
		w.Msg.Count(core.MsgInvite, 1)
		if s.st[cur] == stateMovable {
			if len(s.invites[cur]) == 0 {
				s.firstInvite[cur] = w.Now()
			}
			s.invites[cur] = append(s.invites[cur], invitation{
				ep:      ep.pos,
				kind:    ep.kind,
				inviter: id,
				hops:    hop,
			})
			return
		}
	}
}

// movableStep is one period of a movable sensor: wait until enough
// invitations have been collected, accept the best one (highest priority,
// then smallest Euclidean distance), and start relocating once the inviter
// acknowledges (§5.5.2).
func (s *Scheme) movableStep(id int) {
	w := s.w
	w.Msg.Count(core.MsgBeacon, 1)
	patienceUp := len(s.invites[id]) > 0 &&
		w.Now()-s.firstInvite[id] >= float64(s.cfg.PatiencePeriods)*w.P.Period
	if len(s.invites[id]) < s.cfg.InvitesNeeded && !patienceUp {
		if len(s.invites[id]) == 0 {
			// A movable stranded without any fixed anchor in communication
			// range re-runs the connectivity walk, preserving the scheme's
			// connectivity guarantee even when all its neighbors have
			// relocated away.
			if s.nearestFixedWithin(id, w.P.Rc) == core.NoParent && !w.NearBase(id, s.connectR) {
				s.st[id] = stateWalking
				w.Sensors[id].Connected = false
				w.Tree.Detach(id)
				s.lazy.ReplaceWalker(id, s.newConnectWalker(w.Pos(id)))
				s.walkStep(id)
				return
			}
		}
		w.Stay(id, w.P.Period)
		return
	}
	pos := w.Pos(id)
	best := 0
	if !s.cfg.DisablePriority {
		for i, inv := range s.invites[id] {
			b := s.invites[id][best]
			if inv.kind > b.kind ||
				(inv.kind == b.kind && pos.Dist(inv.ep) < pos.Dist(b.ep)) {
				best = i
			}
		}
	}
	inv := s.invites[id][best]
	// Drop the chosen invitation from the pending list either way.
	s.invites[id] = append(s.invites[id][:best], s.invites[id][best+1:]...)

	w.Msg.Count(core.MsgAccept, inv.hops)
	granted := s.st[inv.inviter] == stateFixed &&
		w.F.Free(inv.ep) &&
		!s.placementTaken(inv.ep, inv.inviter) &&
		s.acceptPending(inv.inviter, inv.ep)
	w.Msg.Count(core.MsgAck, inv.hops)
	if !granted {
		// Rejected: keep collecting (Algorithm 2's movable loop).
		w.Stay(id, w.P.Period)
		return
	}

	// Acknowledge: the inviter installs a virtual place-holding node and
	// updates its ancestors' location information. The virtual node now
	// also serves as an EP-discovery anchor for the inviter.
	token := s.reg.addVirtual(inv.ep)
	s.ownedVirtuals[inv.inviter] = append(s.ownedVirtuals[inv.inviter],
		virtualAnchor{token: token, pos: inv.ep, kind: inv.kind})
	// A successful placement resets the inviter's advertisement backoff:
	// demand exists, keep the pipeline full.
	s.inviteBackoff[inv.inviter] = 0
	s.nextInvite[inv.inviter] = 0
	if d := w.Tree.Depth(inv.inviter); d > 0 {
		w.Msg.Count(core.MsgUpdate, d)
	}
	s.st[id] = stateRelocating
	rel := &s.reloc[id]
	rel.planner.Init(w.F, pos, inv.ep, bug2.RightHand, 0.3, false)
	rel.ep = inv.ep
	rel.kind = inv.kind
	rel.inviter = inv.inviter
	rel.token = token
	s.invites[id] = nil
	s.relocStep(id)
}

// PlacementsByKind returns how many relocations were completed per
// expansion type (index by epKind), for diagnostics and the expansion
// ablation bench.
func (s *Scheme) PlacementsByKind() map[string]int {
	return map[string]int{
		"flg":  s.placed[epFLG],
		"blg":  s.placed[epBLG],
		"iflg": s.placed[epIFLG],
	}
}

// FixedCount returns how many sensors are currently fixed nodes (exported
// for tests and result reporting).
func (s *Scheme) FixedCount() int {
	n := 0
	for _, st := range s.st {
		if st == stateFixed {
			n++
		}
	}
	return n
}

// MovableCount returns how many sensors are currently movable or
// relocating.
func (s *Scheme) MovableCount() int {
	n := 0
	for _, st := range s.st {
		if st == stateMovable || st == stateRelocating {
			n++
		}
	}
	return n
}

// nearestFixedWithin returns the nearest fixed sensor within radius r of
// pos, or NoParent. Used as a defensive re-attachment anchor.
func (s *Scheme) nearestFixedWithin(id int, r float64) int {
	w := s.w
	pos := w.Pos(id)
	best := core.NoParent
	bestD := math.Inf(1)
	w.ForNeighbors(id, r, func(j int, q geom.Vec) {
		if s.st[j] != stateFixed {
			return
		}
		if d := pos.Dist(q); d < bestD {
			bestD = d
			best = j
		}
	})
	return best
}

// StateName returns a human-readable protocol state for sensor id
// (diagnostics).
func (s *Scheme) StateName(id int) string {
	switch s.st[id] {
	case stateWalking:
		return "walking"
	case stateAwaiting:
		return "awaiting"
	case stateFixed:
		return "fixed"
	case stateMovable:
		return "movable"
	case stateRelocating:
		return "relocating"
	default:
		return "unknown"
	}
}
