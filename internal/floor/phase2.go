package floor

import (
	"math"

	"mobisense/internal/core"
	"mobisense/internal/coverage"
	"mobisense/internal/geom"
)

// identifyMovables runs phase 2 (§5.3): a depth-first traversal of the
// tree, serialized by the base station, decides for every connected sensor
// whether it may relocate. A sensor becomes movable when (a) each of its
// children can be re-parented within its 2-hop neighborhood without
// creating loops, and (b) the area it covers exclusively is below the
// movability threshold. Everyone else becomes a fixed node.
func (s *Scheme) identifyMovables() {
	w := s.w
	t := w.Tree

	// The DFS coordination message visits every tree node and returns.
	// Each sensor also gathers its two-hop neighbor list (§5.3).
	connected := 0
	for _, sen := range w.Sensors {
		if sen.Connected {
			connected++
		}
	}
	w.Msg.Count(core.MsgTreeCtl, 2*connected)
	w.Msg.Count(core.MsgBeacon, 2*connected)

	// The serialized traversal visits leaves first (deepest first,
	// post-order): a leaf has no children to re-home, so the dense initial
	// cluster dissolves into movables from the outside in, leaving the
	// base-adjacent seeds to anchor the vine. Children are visited in ID
	// order for determinism.
	var order []int
	var visit func(id int)
	visit = func(id int) {
		kids := append([]int(nil), t.Children(id)...)
		sortInts(kids)
		for _, c := range kids {
			visit(c)
		}
		order = append(order, id)
	}
	var roots []int
	for i := 0; i < w.P.N; i++ {
		if t.Parent(i) == core.BaseParent {
			roots = append(roots, i)
		}
	}
	sortInts(roots)
	for _, r := range roots {
		visit(r)
	}

	for _, id := range order {
		if s.tryMakeMovable(id) {
			s.st[id] = stateMovable
			// A movable is no longer a tree member: it must not anchor
			// joins nor count as coverage (§5.5 considers only the fixed
			// environment).
			w.Sensors[id].Connected = false
		} else {
			s.st[id] = stateFixed
			s.reg.addFixed(id, w.Pos(id))
		}
	}
	// Anyone connected but unreachable through the tree (defensive; should
	// not happen) stays fixed.
	for i := 0; i < w.P.N; i++ {
		if w.Sensors[i].Connected && s.st[i] == stateAwaiting {
			s.st[i] = stateFixed
			s.reg.addFixed(i, w.Pos(i))
		}
	}
}

// tryMakeMovable checks both §5.3 conditions for sensor id and, on
// success, re-parents its children and detaches it from the tree.
func (s *Scheme) tryMakeMovable(id int) bool {
	w := s.w
	t := w.Tree

	// The base station's direct children are exempt: they seed the vine.
	// Without at least one fixed node adjacent to the base there would be
	// no inviter left and coverage expansion could never start.
	if t.Parent(id) == core.BaseParent {
		return false
	}
	if !s.isExclusiveCoverageLow(id) {
		return false
	}

	// Find a loop-free new parent for every child among the child's
	// neighbors (the 2-hop neighborhood of id).
	kids := append([]int(nil), t.Children(id)...)
	newParents := make(map[int]int, len(kids))
	for _, c := range kids {
		np, ok := s.findNewParent(c, id)
		if !ok {
			return false
		}
		newParents[c] = np
	}
	// Commit: re-parent children, then detach.
	for _, c := range kids {
		w.Msg.Count(core.MsgTreeCtl, 2) // leave + join control traffic
		if !t.SetParent(c, newParents[c]) {
			// Extremely defensive: abandon movability if a commit fails.
			return false
		}
	}
	t.Detach(id)
	return true
}

// findNewParent returns a replacement parent for child c when `leaving`
// departs: the base station if in range, else the nearest connected,
// still-attached neighbor whose adoption creates no loop.
func (s *Scheme) findNewParent(c, leaving int) (int, bool) {
	w := s.w
	t := w.Tree
	if w.NearBase(c, s.connectR) {
		return core.BaseParent, true
	}
	pos := w.Pos(c)
	best := core.NoParent
	bestD := math.Inf(1)
	w.ForNeighbors(c, s.connectR, func(j int, q geom.Vec) {
		if j == leaving || !w.Sensors[j].Connected {
			return
		}
		// Already-detached movables cannot anchor a subtree, and adopting
		// a descendant of c would create a loop.
		if s.st[j] == stateMovable || s.st[j] == stateRelocating {
			return
		}
		if !t.InTree(j) || t.IsAncestor(c, j) {
			return
		}
		if d := pos.Dist(q); d < bestD {
			bestD = d
			best = j
		}
	})
	if best == core.NoParent {
		return core.NoParent, false
	}
	return best, true
}

// isExclusiveCoverageLow estimates the area sensor id covers exclusively,
// sampling its disk against every physically present neighbor within 2·rs
// (§5.3 measures "the area currently covered exclusively by itself";
// already-classified movables still sit at their old positions and still
// cover area), and compares it with the movability threshold.
func (s *Scheme) isExclusiveCoverageLow(id int) bool {
	w := s.w
	pos := w.Pos(id)
	others := s.othersScratch[:0]
	w.ForNeighbors(id, 2*w.P.Rs, func(_ int, q geom.Vec) {
		others = append(others, q)
	})
	s.othersScratch = others
	// ExclusiveAreaBelow stops sampling the disk as soon as the
	// accumulated exclusive area reaches the threshold — exact, since the
	// sampled area only grows — so clearly-unmovable sensors cost a
	// fraction of the full scan.
	limit := s.cfg.ExclusiveFrac * math.Pi * w.P.Rs * w.P.Rs
	return coverage.ExclusiveAreaBelow(w.F, pos, w.P.Rs, others, w.P.Rs/8, limit)
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
