package floor

import (
	"math"

	"mobisense/internal/core"
	"mobisense/internal/geom"
)

// Failure recovery (§7 "future work", implemented as an extension): when a
// sensor dies, FLOOR repairs the deployment locally. A dead fixed node
// leaves the floor registry, its orphaned children re-home to surviving
// fixed neighbors (falling back to a fresh connectivity walk), its
// neighbors wake to re-discover the coverage hole, and a dead relocating
// sensor's virtual place-holder is withdrawn so the EP can be re-offered.

// HandleFailure repairs the protocol state after sensor `victim` died with
// the given orphaned children. Wire it to a core.FailureInjector's OnKill.
func (s *Scheme) HandleFailure(victim int, orphans []int) {
	w := s.w
	switch s.st[victim] {
	case stateRelocating:
		r := &s.reloc[victim]
		s.reg.removeVirtual(r.token)
		s.dropOwnedVirtual(r.inviter, r.token)
	case stateFixed:
		s.reg.removeFixed(victim)
		// Withdraw outstanding advertisements and release in-flight
		// claims owned by the victim: their travelers re-enter the
		// movable pool on arrival failure; simplest is to re-anchor the
		// claims to the victim's neighbors via re-discovery, so just wake
		// the neighborhood and let discovery find the hole.
		s.pendings[victim] = nil
	}
	s.st[victim] = stateAwaiting // terminal; failed sensors never decide again

	// The victim's sensing area is now a hole: wake every fixed neighbor
	// so expansion re-discovers it.
	w.ForNeighbors(victim, w.P.Rc, func(j int, _ geom.Vec) {
		if s.st[j] == stateFixed {
			s.epDone[j] = false
			s.inviteBackoff[j] = 0
			s.nextInvite[j] = 0
		}
	})

	// Re-home the orphaned subtrees.
	for _, c := range orphans {
		s.rehomeOrphan(c)
	}

	// Arm the periodic heartbeat sweep: from now on the monitor checks
	// for physically severed segments every period (a death can strand
	// sensors later, e.g. when an in-transit sensor that bridged the hole
	// moves on).
	s.failures = true
	s.sweepStranded()
}

// sweepStranded sends every physically severed, tree-attached sensor back
// to the connectivity walk (the base station noticed its heartbeats
// stopped arriving). Only meaningful once failures have occurred: in a
// healthy run, chains transiently spanning unfilled EPs are expected and
// must not be torn down.
func (s *Scheme) sweepStranded() {
	w := s.w
	for _, m := range w.PhysicallyStranded(w.P.Rc) {
		if w.Sensors[m].Failed || s.st[m] == stateWalking {
			continue
		}
		w.Msg.Count(core.MsgReport, 1)
		if s.st[m] == stateFixed {
			s.reg.removeFixed(m)
		}
		if s.st[m] == stateRelocating {
			r := &s.reloc[m]
			s.reg.removeVirtual(r.token)
			s.dropOwnedVirtual(r.inviter, r.token)
		}
		s.pendings[m] = nil
		w.Tree.Detach(m)
		w.Sensors[m].Connected = false
		s.st[m] = stateWalking
		s.lazy.ReplaceWalker(m, s.rejoinWalker(w.Pos(m)))
	}
}

// rejoinWalker routes a stranded sensor straight toward the nearest
// surviving rooted fixed sensor — far shorter than re-running the full
// Algorithm-1 route — falling back to the standard connect route when no
// anchor exists.
func (s *Scheme) rejoinWalker(from geom.Vec) core.Walker {
	w := s.w
	best := core.NoParent
	bestD := math.Inf(1)
	for i, sen := range w.Sensors {
		if sen.Failed || s.st[i] != stateFixed || !sen.Connected || !w.Tree.InTree(i) {
			continue
		}
		if d := w.Pos(i).Dist(from); d < bestD {
			bestD = d
			best = i
		}
	}
	if best == core.NoParent {
		return s.newConnectWalker(from)
	}
	return core.NewDirectWalker(w.F, from, w.Pos(best))
}

// rehomeOrphan reattaches a detached child (and implicitly its subtree):
// to the base if in range, else to the nearest surviving fixed neighbor,
// else it reverts to the connectivity walk of phase 1.
func (s *Scheme) rehomeOrphan(c int) {
	w := s.w
	if w.Sensors[c].Failed {
		return
	}
	if w.NearBase(c, s.connectR) {
		w.Tree.SetParent(c, core.BaseParent)
		w.Msg.Count(core.MsgTreeCtl, 2)
		return
	}
	// The anchor must itself be rooted at the base: attaching to another
	// detached fragment would form a physically isolated island.
	if alt := s.nearestFixedWithin(c, s.connectR); alt != core.NoParent &&
		w.Tree.InTree(alt) && !w.Tree.IsAncestor(c, alt) && w.Tree.SetParent(c, alt) {
		w.Msg.Count(core.MsgTreeCtl, 2)
		return
	}
	// No anchor in range: the orphan's subtree walks back to the network.
	for _, m := range w.Tree.Subtree(c) {
		if w.Sensors[m].Failed {
			continue
		}
		w.Tree.Detach(m)
		w.Sensors[m].Connected = false
		s.st[m] = stateWalking
		s.lazy.ReplaceWalker(m, s.newConnectWalker(w.Pos(m)))
	}
}
