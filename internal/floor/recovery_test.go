package floor

import (
	"testing"

	"mobisense/internal/core"
	"mobisense/internal/coverage"
	"mobisense/internal/field"
)

// TestFloorRecoversFromFailures injects periodic sensor deaths during a
// FLOOR deployment and checks that the surviving network self-repairs: the
// survivors end connected and the coverage hole left by each death gets
// refilled while spare movables remain.
func TestFloorRecoversFromFailures(t *testing.T) {
	f := smallField(t)
	p := smallParams()
	p.N = 50
	p.Duration = 900 // kills end at t=250; the rest is recovery headroom
	w, err := core.NewWorld(f, p)
	if err != nil {
		t.Fatal(err)
	}
	s := New(DefaultConfig())
	s.Attach(w)

	inj := &core.FailureInjector{Interval: 50, MaxKills: 5, OnKill: s.HandleFailure}
	inj.Attach(w)

	w.E.RunUntil(p.Duration)

	if inj.Killed() != 5 {
		t.Fatalf("killed = %d, want 5", inj.Killed())
	}
	if got := w.AliveCount(); got != p.N-5 {
		t.Fatalf("alive = %d, want %d", got, p.N-5)
	}
	if !core.AllConnected(w.AliveLayout(), w.F.Reference(), p.Rc) {
		t.Error("survivors are not connected after failures")
	}
	// Failed sensors must not appear in neighbor queries.
	for i := range w.Sensors {
		if !w.Sensors[i].Failed {
			continue
		}
		for j := range w.Sensors {
			if j == i || w.Sensors[j].Failed {
				continue
			}
			for _, n := range w.Neighbors(j, p.Rc) {
				if n == i {
					t.Fatalf("dead sensor %d visible to %d", i, j)
				}
			}
		}
	}
}

// TestFloorFailureCoverageRecovery kills a productive fixed node after
// convergence and verifies the coverage loss gets repaired by re-expansion
// while movables remain.
func TestFloorFailureCoverageRecovery(t *testing.T) {
	f := smallField(t)
	p := smallParams()
	p.N = 50
	p.Duration = 800
	w, err := core.NewWorld(f, p)
	if err != nil {
		t.Fatal(err)
	}
	s := New(DefaultConfig())
	s.Attach(w)

	// Let the deployment mostly settle, then kill the fixed node farthest
	// from the base (a chain tip, so the hole is real).
	w.E.RunUntil(350)
	victim := -1
	bestD := -1.0
	for i := 0; i < p.N; i++ {
		if s.st[i] != stateFixed {
			continue
		}
		if d := w.Pos(i).Dist(f.Reference()); d > bestD {
			bestD = d
			victim = i
		}
	}
	if victim < 0 {
		t.Fatal("no fixed sensor to kill")
	}
	orphans := w.Kill(victim)
	s.HandleFailure(victim, orphans)

	w.E.RunUntil(p.Duration)
	est := coverage.NewEstimator(f, 4)
	cov := est.Fraction(w.AliveLayout(), p.Rs)
	if cov < 0.25 {
		t.Errorf("post-failure coverage %.3f too low", cov)
	}
	if !core.AllConnected(w.AliveLayout(), w.F.Reference(), p.Rc) {
		t.Error("survivors disconnected after targeted failure")
	}
}

func TestKillBasics(t *testing.T) {
	f := field.MustNew(smallField(t).Bounds().Polygon().Bounds(), nil)
	p := smallParams()
	p.N = 5
	w, err := core.NewWorld(f, p)
	if err != nil {
		t.Fatal(err)
	}
	w.Tree.SetParent(0, core.BaseParent)
	w.Tree.SetParent(1, 0)
	w.Tree.SetParent(2, 1)

	orphans := w.Kill(1)
	if len(orphans) != 1 || orphans[0] != 2 {
		t.Fatalf("orphans = %v", orphans)
	}
	if w.Alive(1) {
		t.Error("killed sensor still alive")
	}
	if w.Tree.Parent(2) != core.NoParent {
		t.Error("orphan not detached")
	}
	if again := w.Kill(1); again != nil {
		t.Error("double kill should be a no-op")
	}
	if w.AliveCount() != 4 {
		t.Errorf("alive = %d", w.AliveCount())
	}
	if len(w.AliveLayout()) != 4 {
		t.Error("alive layout size mismatch")
	}
}
