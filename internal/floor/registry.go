package floor

import (
	"math"

	"mobisense/internal/core"
	"mobisense/internal/field"
	"mobisense/internal/geom"
)

// nodeRecord is one fixed (or virtual place-holding) node known to a floor
// header (§5.4). Virtual records hold an EP that an invited sensor is en
// route to (§5.5.2).
type nodeRecord struct {
	id      int // sensor ID; -1 for virtual nodes
	pos     geom.Vec
	virtual bool
	token   int // removal handle for virtual nodes
}

// registry centralizes the per-floor location structures that the paper
// distributes over floor header nodes: each floor header records the
// locations of the fixed nodes in its floor, including virtual
// place-holders. The simulator keeps them in one struct and charges the
// tree-routed query messages explicitly.
type registry struct {
	floors Floors
	f      *field.Field
	perF   [][]nodeRecord
	tokens int
}

func newRegistry(fl Floors, f *field.Field) *registry {
	return &registry{
		floors: fl,
		f:      f,
		perF:   make([][]nodeRecord, fl.Count()),
	}
}

// addFixed registers a newly fixed sensor.
func (r *registry) addFixed(id int, pos geom.Vec) {
	k := r.floors.Index(pos.Y)
	r.perF[k] = append(r.perF[k], nodeRecord{id: id, pos: pos})
}

// addVirtual registers a virtual place-holding node at an EP and returns a
// token for removal.
func (r *registry) addVirtual(pos geom.Vec) int {
	r.tokens++
	k := r.floors.Index(pos.Y)
	r.perF[k] = append(r.perF[k], nodeRecord{id: -1, pos: pos, virtual: true, token: r.tokens})
	return r.tokens
}

// removeFixed deletes the record of a (failed) fixed sensor.
func (r *registry) removeFixed(id int) {
	for k := range r.perF {
		list := r.perF[k]
		for i := range list {
			if !list[i].virtual && list[i].id == id {
				list[i] = list[len(list)-1]
				r.perF[k] = list[:len(list)-1]
				return
			}
		}
	}
}

// removeVirtual deletes a virtual node by token.
func (r *registry) removeVirtual(token int) {
	for k := range r.perF {
		list := r.perF[k]
		for i := range list {
			if list[i].virtual && list[i].token == token {
				list[i] = list[len(list)-1]
				r.perF[k] = list[:len(list)-1]
				return
			}
		}
	}
}

// queryFloors returns the floor indices whose nodes could cover point p
// with sensing range rs: the floor containing p and its two neighbors.
// Invalid slots are -1; callers skip them. Returning a fixed-size array
// keeps the per-query hot path allocation-free.
func (r *registry) queryFloors(p geom.Vec) [3]int {
	k := r.floors.Index(p.Y)
	out := [3]int{-1, -1, -1}
	for i, q := range [3]int{k - 1, k, k + 1} {
		if q >= 0 && q < r.floors.Count() {
			out[i] = q
		}
	}
	return out
}

// header returns the floor header node of floor k: the real fixed node
// with the smallest x coordinate (§5.4), or -1 if the floor has none.
func (r *registry) header(k int) int {
	if k < 0 || k >= len(r.perF) {
		return -1
	}
	best := -1
	bestX := math.Inf(1)
	for _, rec := range r.perF[k] {
		if rec.virtual {
			continue
		}
		if rec.pos.X < bestX || (rec.pos.X == bestX && (best == -1 || rec.id < best)) {
			bestX = rec.pos.X
			best = rec.id
		}
	}
	return best
}

// floorCovers reports whether any node registered in floor k (real or
// virtual) covers p with sensing radius rs. Records rejected by skip are
// ignored.
func (r *registry) floorCovers(k int, p geom.Vec, rs float64, skip skipSpec) bool {
	if k < 0 || k >= len(r.perF) {
		return false
	}
	rs2 := rs * rs
	for _, rec := range r.perF[k] {
		if skip.matches(rec) {
			continue
		}
		if rec.pos.Dist2(p) <= rs2 && r.f.Visible(rec.pos, p) {
			return true
		}
	}
	return false
}

// skipSpec selects coverage records to ignore: the record of the given
// real sensor ID, and (when usePos is set) any record sitting within a
// meter of pos (used to ignore the anchor virtual node itself when probing
// a chain tip's frontier). It is a plain value rather than a closure so
// the per-period coverage queries stay allocation-free. noSkip skips
// nothing.
type skipSpec struct {
	id     int
	pos    geom.Vec
	usePos bool
}

var noSkip = skipSpec{id: -1}

func (sp skipSpec) matches(rec nodeRecord) bool {
	if !rec.virtual && rec.id == sp.id {
		return true
	}
	return sp.usePos && rec.pos.Dist2(sp.pos) < 1
}

// coveredQuery implements the §5.4 point-coverage protocol for sensor
// `asker`: check local neighbors first, then query the headers of the
// floors that might contain a covering node, charging tree-routed MsgQuery
// traffic. It returns whether p is covered by any fixed or virtual node
// not rejected by skip (the asker itself is never part of the local scan).
func (r *registry) coveredQuery(w *core.World, asker int, p geom.Vec, rs float64, skip skipSpec) bool {
	// Local check: any neighbor within communication range covering p.
	covered := false
	w.ForNeighbors(asker, w.P.Rc, func(j int, q geom.Vec) {
		if covered || !w.Sensors[j].Connected {
			return
		}
		if skip.matches(nodeRecord{id: j, pos: q}) {
			return
		}
		if q.WithinDist(p, rs) && w.F.Visible(q, p) {
			covered = true
		}
	})
	if covered {
		return true
	}
	// Remote check through floor headers.
	for _, k := range r.queryFloors(p) {
		if k < 0 {
			continue
		}
		h := r.header(k)
		if h < 0 {
			continue
		}
		hops := 2 // query + response, at least one hop each way
		if h != asker {
			if d := w.Tree.TreeDist(asker, h); d > 0 {
				hops = 2 * d
			}
			w.Msg.Count(core.MsgQuery, hops)
		}
		if r.floorCovers(k, p, rs, skip) {
			return true
		}
	}
	return false
}

// nodesInFloor returns the records of floor k (for tests and rendering).
func (r *registry) nodesInFloor(k int) []nodeRecord { return r.perF[k] }
