package geom

import "math"

// Circle is a disk identified by its center and radius.
type Circle struct {
	C Vec
	R float64
}

// Contains reports whether p lies inside or on the circle.
func (c Circle) Contains(p Vec) bool { return c.C.Dist2(p) <= (c.R+Eps)*(c.R+Eps) }

// Area returns the area of the disk.
func (c Circle) Area() float64 { return math.Pi * c.R * c.R }

// PointAt returns the point on the circle at polar angle theta.
func (c Circle) PointAt(theta float64) Vec {
	s, cos := math.Sincos(theta)
	return Vec{c.C.X + c.R*cos, c.C.Y + c.R*s}
}

// IntersectSegment returns the portion of segment s inside the circle as a
// parameter interval [t0, t1] ⊆ [0, 1] along s, and whether the segment
// touches the disk at all.
func (c Circle) IntersectSegment(s Segment) (t0, t1 float64, ok bool) {
	d := s.B.Sub(s.A)
	f := s.A.Sub(c.C)
	a := d.Len2()
	if a < Eps*Eps {
		if c.Contains(s.A) {
			return 0, 0, true
		}
		return 0, 0, false
	}
	b := 2 * f.Dot(d)
	cc := f.Len2() - c.R*c.R
	disc := b*b - 4*a*cc
	if disc < 0 {
		return 0, 0, false
	}
	sq := math.Sqrt(disc)
	t0 = (-b - sq) / (2 * a)
	t1 = (-b + sq) / (2 * a)
	t0 = math.Max(0, t0)
	t1 = math.Min(1, t1)
	if t0 > t1 {
		return 0, 0, false
	}
	return t0, t1, true
}

// IntersectCircle returns the two intersection points of circles c and o.
// ok is false when the circles do not intersect or are identical.
func (c Circle) IntersectCircle(o Circle) (p1, p2 Vec, ok bool) {
	d := c.C.Dist(o.C)
	if d < Eps || d > c.R+o.R+Eps || d < math.Abs(c.R-o.R)-Eps {
		return Vec{}, Vec{}, false
	}
	a := (c.R*c.R - o.R*o.R + d*d) / (2 * d)
	h2 := c.R*c.R - a*a
	if h2 < 0 {
		h2 = 0
	}
	h := math.Sqrt(h2)
	mid := c.C.Add(o.C.Sub(c.C).Scale(a / d))
	perp := o.C.Sub(c.C).Unit().Perp().Scale(h)
	return mid.Add(perp), mid.Sub(perp), true
}

// UnionAreaGrid estimates the area of the union of the given disks clipped
// to rect, by sampling a uniform grid with the given resolution. It is the
// reference implementation used in tests; the simulator uses the faster
// coverage estimator in internal/coverage.
func UnionAreaGrid(disks []Circle, rect Rect, res float64) float64 {
	if res <= 0 {
		res = 1
	}
	var covered int
	var total int
	for y := rect.Min.Y + res/2; y < rect.Max.Y; y += res {
		for x := rect.Min.X + res/2; x < rect.Max.X; x += res {
			total++
			p := Vec{x, y}
			for _, d := range disks {
				if d.Contains(p) {
					covered++
					break
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return rect.Area() * float64(covered) / float64(total)
}

// MinEnclosingCircle returns the smallest circle containing all points.
// It runs Welzl's algorithm in expected linear time over the (shuffled by
// the caller if adversarial) input. An empty input yields the zero circle.
func MinEnclosingCircle(points []Vec) Circle {
	if len(points) == 0 {
		return Circle{}
	}
	c := Circle{C: points[0], R: 0}
	for i := 1; i < len(points); i++ {
		if c.Contains(points[i]) {
			continue
		}
		c = Circle{C: points[i], R: 0}
		for j := 0; j < i; j++ {
			if c.Contains(points[j]) {
				continue
			}
			c = circleFrom2(points[i], points[j])
			for k := 0; k < j; k++ {
				if c.Contains(points[k]) {
					continue
				}
				c = circleFrom3(points[i], points[j], points[k])
			}
		}
	}
	return c
}

func circleFrom2(a, b Vec) Circle {
	return Circle{C: a.Lerp(b, 0.5), R: a.Dist(b) / 2}
}

func circleFrom3(a, b, c Vec) Circle {
	// Circumcenter via perpendicular bisector intersection.
	ab := b.Sub(a)
	ac := c.Sub(a)
	cross := ab.Cross(ac)
	if math.Abs(cross) < Eps {
		// Degenerate: fall back to the widest pair.
		c1 := circleFrom2(a, b)
		c2 := circleFrom2(a, c)
		c3 := circleFrom2(b, c)
		best := c1
		if c2.R > best.R {
			best = c2
		}
		if c3.R > best.R {
			best = c3
		}
		return best
	}
	abLen2 := ab.Len2()
	acLen2 := ac.Len2()
	ux := (ac.Y*abLen2 - ab.Y*acLen2) / (2 * cross)
	uy := (ab.X*acLen2 - ac.X*abLen2) / (2 * cross)
	center := a.Add(Vec{ux, uy})
	return Circle{C: center, R: center.Dist(a)}
}
