package geom

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestCircleContains(t *testing.T) {
	c := Circle{C: V(0, 0), R: 5}
	if !c.Contains(V(3, 4)) {
		t.Error("boundary point should be contained")
	}
	if !c.Contains(V(1, 1)) {
		t.Error("interior point should be contained")
	}
	if c.Contains(V(4, 4)) {
		t.Error("exterior point should not be contained")
	}
}

func TestCirclePointAt(t *testing.T) {
	c := Circle{C: V(1, 2), R: 3}
	p := c.PointAt(math.Pi / 2)
	if !p.Eq(V(1, 5)) {
		t.Errorf("PointAt(pi/2) = %v", p)
	}
}

func TestCircleIntersectSegment(t *testing.T) {
	c := Circle{C: V(0, 0), R: 5}
	tests := []struct {
		name       string
		s          Segment
		wantOK     bool
		wantT0, t1 float64
	}{
		{"through center", Seg(V(-10, 0), V(10, 0)), true, 0.25, 0.75},
		{"miss", Seg(V(-10, 6), V(10, 6)), false, 0, 0},
		{"tangent", Seg(V(-10, 5), V(10, 5)), true, 0.5, 0.5},
		{"fully inside", Seg(V(-1, 0), V(1, 0)), true, 0, 1},
		{"starts inside", Seg(V(0, 0), V(10, 0)), true, 0, 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			t0, t1, ok := c.IntersectSegment(tt.s)
			if ok != tt.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tt.wantOK)
			}
			if ok && (!almostEq(t0, tt.wantT0, 1e-9) || !almostEq(t1, tt.t1, 1e-9)) {
				t.Errorf("interval = [%v,%v], want [%v,%v]", t0, t1, tt.wantT0, tt.t1)
			}
		})
	}
}

func TestCircleIntersectSegmentDegenerate(t *testing.T) {
	c := Circle{C: V(0, 0), R: 5}
	if _, _, ok := c.IntersectSegment(Seg(V(1, 1), V(1, 1))); !ok {
		t.Error("point inside circle should intersect")
	}
	if _, _, ok := c.IntersectSegment(Seg(V(9, 9), V(9, 9))); ok {
		t.Error("point outside circle should not intersect")
	}
}

func TestCircleIntersectCircle(t *testing.T) {
	a := Circle{C: V(0, 0), R: 5}
	b := Circle{C: V(8, 0), R: 5}
	p1, p2, ok := a.IntersectCircle(b)
	if !ok {
		t.Fatal("expected intersection")
	}
	for _, p := range []Vec{p1, p2} {
		if !almostEq(p.Dist(a.C), 5, 1e-9) || !almostEq(p.Dist(b.C), 5, 1e-9) {
			t.Errorf("intersection point %v not on both circles", p)
		}
	}
	if _, _, ok := a.IntersectCircle(Circle{C: V(20, 0), R: 5}); ok {
		t.Error("distant circles should not intersect")
	}
	if _, _, ok := a.IntersectCircle(Circle{C: V(1, 0), R: 0.5}); ok {
		t.Error("nested circles should not intersect")
	}
}

func TestMinEnclosingCircleKnown(t *testing.T) {
	tests := []struct {
		name string
		pts  []Vec
		want Circle
	}{
		{"empty", nil, Circle{}},
		{"single", []Vec{V(2, 3)}, Circle{C: V(2, 3), R: 0}},
		{"pair", []Vec{V(0, 0), V(10, 0)}, Circle{C: V(5, 0), R: 5}},
		{"square", []Vec{V(0, 0), V(10, 0), V(10, 10), V(0, 10)},
			Circle{C: V(5, 5), R: 5 * math.Sqrt2}},
		{"collinear", []Vec{V(0, 0), V(5, 0), V(10, 0)}, Circle{C: V(5, 0), R: 5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := MinEnclosingCircle(tt.pts)
			if !got.C.Eq(tt.want.C) || !almostEq(got.R, tt.want.R, 1e-9) {
				t.Errorf("got %+v, want %+v", got, tt.want)
			}
		})
	}
}

// Property: the minimal enclosing circle contains every input point and is
// no larger than the circle centered at the centroid through the farthest
// point.
func TestMinEnclosingCircleProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(20)
		pts := make([]Vec, n)
		var centroid Vec
		for i := range pts {
			pts[i] = V(rng.Float64()*100, rng.Float64()*100)
			centroid = centroid.Add(pts[i])
		}
		centroid = centroid.Scale(1 / float64(n))
		mec := MinEnclosingCircle(pts)
		var rad float64
		for _, p := range pts {
			if !mec.Contains(p) && mec.C.Dist(p) > mec.R+1e-7 {
				t.Fatalf("trial %d: point %v outside MEC %+v (dist %v)", trial, p, mec, mec.C.Dist(p))
			}
			rad = math.Max(rad, centroid.Dist(p))
		}
		if mec.R > rad+1e-7 {
			t.Fatalf("trial %d: MEC radius %v exceeds centroid bound %v", trial, mec.R, rad)
		}
	}
}

func TestUnionAreaGrid(t *testing.T) {
	rect := R(0, 0, 100, 100)
	// One disk fully inside.
	disks := []Circle{{C: V(50, 50), R: 20}}
	got := UnionAreaGrid(disks, rect, 1)
	want := math.Pi * 400
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("single disk area = %v, want ~%v", got, want)
	}
	// Two identical disks should not double-count.
	disks = append(disks, disks[0])
	got2 := UnionAreaGrid(disks, rect, 1)
	if got2 != got {
		t.Errorf("duplicate disk changed union area: %v vs %v", got2, got)
	}
}

// Property: adding a disk never decreases union area.
func TestUnionAreaMonotone(t *testing.T) {
	f := func(x1, y1, x2, y2 uint8) bool {
		rect := R(0, 0, 64, 64)
		a := Circle{C: V(float64(x1%64), float64(y1%64)), R: 8}
		b := Circle{C: V(float64(x2%64), float64(y2%64)), R: 8}
		one := UnionAreaGrid([]Circle{a}, rect, 2)
		two := UnionAreaGrid([]Circle{a, b}, rect, 2)
		return two >= one-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
