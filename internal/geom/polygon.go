package geom

import "math"

// Polygon is a simple (non-self-intersecting) polygon given as an ordered
// list of vertices. Vertex order may be clockwise or counter-clockwise;
// routines that care about orientation document it.
type Polygon []Vec

// Area returns the signed area of the polygon: positive for
// counter-clockwise vertex order, negative for clockwise.
func (p Polygon) Area() float64 {
	var sum float64
	n := len(p)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		sum += p[i].Cross(p[j])
	}
	return sum / 2
}

// IsCCW reports whether the polygon's vertices are in counter-clockwise
// order.
func (p Polygon) IsCCW() bool { return p.Area() > 0 }

// Reverse returns a copy of the polygon with reversed vertex order.
func (p Polygon) Reverse() Polygon {
	out := make(Polygon, len(p))
	for i, v := range p {
		out[len(p)-1-i] = v
	}
	return out
}

// CCW returns the polygon in counter-clockwise order, copying only when a
// reversal is needed.
func (p Polygon) CCW() Polygon {
	if p.IsCCW() {
		return p
	}
	return p.Reverse()
}

// NumEdges returns the number of boundary edges.
func (p Polygon) NumEdges() int { return len(p) }

// Edge returns the i-th boundary edge, from vertex i to vertex i+1 (mod n).
func (p Polygon) Edge(i int) Segment {
	n := len(p)
	return Segment{A: p[i%n], B: p[(i+1)%n]}
}

// Contains reports whether q lies inside the polygon or on its boundary.
// It uses the even-odd ray-crossing rule with an explicit boundary test so
// that points within Eps of an edge count as contained.
func (p Polygon) Contains(q Vec) bool {
	if p.OnBoundary(q, Eps) {
		return true
	}
	return p.containsInterior(q)
}

// ContainsStrict reports whether q lies strictly inside the polygon, i.e.
// farther than margin from every edge.
func (p Polygon) ContainsStrict(q Vec, margin float64) bool {
	if p.OnBoundary(q, margin) {
		return false
	}
	return p.containsInterior(q)
}

func (p Polygon) containsInterior(q Vec) bool {
	inside := false
	n := len(p)
	for i := 0; i < n; i++ {
		a, b := p[i], p[(i+1)%n]
		if (a.Y > q.Y) != (b.Y > q.Y) {
			xCross := a.X + (q.Y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
			if q.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// OnBoundary reports whether q lies within tol of the polygon boundary.
func (p Polygon) OnBoundary(q Vec, tol float64) bool {
	n := len(p)
	for i := 0; i < n; i++ {
		if p.Edge(i).Dist(q) <= tol {
			return true
		}
	}
	return false
}

// ClosestBoundaryPoint returns the point on the polygon boundary closest to
// q, together with the index of the edge it lies on.
func (p Polygon) ClosestBoundaryPoint(q Vec) (Vec, int) {
	best := p[0]
	bestEdge := 0
	bestD := math.Inf(1)
	for i := 0; i < len(p); i++ {
		pt := p.Edge(i).ClosestPoint(q)
		if d := pt.Dist2(q); d < bestD {
			bestD = d
			best = pt
			bestEdge = i
		}
	}
	return best, bestEdge
}

// Dist returns the distance from q to the polygon boundary (zero if q is on
// the boundary; interior points still measure to the boundary).
func (p Polygon) Dist(q Vec) float64 {
	pt, _ := p.ClosestBoundaryPoint(q)
	return pt.Dist(q)
}

// IntersectSegment finds the first transversal crossing of segment s with
// the polygon boundary: the smallest parameter t along s at which s crosses
// any edge. It returns the edge index as well. ok is false when s misses
// the boundary. Edges parallel to s are skipped: a segment sliding exactly
// along a wall touches it but never crosses it, so grazing contact is not a
// hit (a sensor may travel along a boundary).
func (p Polygon) IntersectSegment(s Segment) (t float64, edge int, ok bool) {
	t = math.Inf(1)
	sDir := s.B.Sub(s.A)
	for i := 0; i < len(p); i++ {
		e := p.Edge(i)
		if math.Abs(sDir.Cross(e.B.Sub(e.A))) < Eps*math.Max(1, sDir.Len()*e.Len()) {
			continue
		}
		if ti, hit := s.IntersectParam(e); hit && ti < t {
			t = ti
			edge = i
			ok = true
		}
	}
	if !ok {
		return 0, 0, false
	}
	return t, edge, true
}

// Perimeter returns the total boundary length of the polygon.
func (p Polygon) Perimeter() float64 {
	var sum float64
	for i := 0; i < len(p); i++ {
		sum += p.Edge(i).Len()
	}
	return sum
}

// Centroid returns the area centroid of the polygon.
func (p Polygon) Centroid() Vec {
	var cx, cy, a float64
	n := len(p)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		cross := p[i].Cross(p[j])
		a += cross
		cx += (p[i].X + p[j].X) * cross
		cy += (p[i].Y + p[j].Y) * cross
	}
	if math.Abs(a) < Eps {
		// Degenerate polygon: average the vertices.
		var s Vec
		for _, v := range p {
			s = s.Add(v)
		}
		return s.Scale(1 / float64(len(p)))
	}
	return Vec{cx / (3 * a), cy / (3 * a)}
}

// Bounds returns the axis-aligned bounding rectangle of the polygon.
func (p Polygon) Bounds() Rect {
	if len(p) == 0 {
		return Rect{}
	}
	r := Rect{Min: p[0], Max: p[0]}
	for _, v := range p[1:] {
		r.Min.X = math.Min(r.Min.X, v.X)
		r.Min.Y = math.Min(r.Min.Y, v.Y)
		r.Max.X = math.Max(r.Max.X, v.X)
		r.Max.Y = math.Max(r.Max.Y, v.Y)
	}
	return r
}

// Clone returns a deep copy of the polygon.
func (p Polygon) Clone() Polygon {
	out := make(Polygon, len(p))
	copy(out, p)
	return out
}

// ClipHalfPlane clips a convex polygon to the half-plane on the left of the
// directed line a→b (points q with (b-a) × (q-a) >= 0). The result is convex;
// it may be empty. This is the Sutherland–Hodgman step used to build Voronoi
// cells by repeated bisector clipping.
func (p Polygon) ClipHalfPlane(a, b Vec) Polygon {
	if len(p) == 0 {
		return nil
	}
	dir := b.Sub(a)
	inside := func(q Vec) bool { return dir.Cross(q.Sub(a)) >= -Eps }
	out := make(Polygon, 0, len(p)+2)
	n := len(p)
	for i := 0; i < n; i++ {
		cur, next := p[i], p[(i+1)%n]
		curIn, nextIn := inside(cur), inside(next)
		if curIn {
			out = append(out, cur)
		}
		if curIn != nextIn {
			if pt, ok := Seg(cur, next).LineIntersect(Seg(a, b)); ok {
				out = append(out, pt)
			}
		}
	}
	if len(out) < 3 {
		return nil
	}
	return out
}

// ConvexHull returns the convex hull of the given points in
// counter-clockwise order using Andrew's monotone chain. The input slice is
// not modified. Fewer than three distinct points yield a degenerate hull
// with the points that exist.
func ConvexHull(points []Vec) Polygon {
	pts := make([]Vec, len(points))
	copy(pts, points)
	n := len(pts)
	if n < 3 {
		return pts
	}
	// Sort by (X, Y).
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			if pts[j].X < pts[j-1].X || (pts[j].X == pts[j-1].X && pts[j].Y < pts[j-1].Y) {
				pts[j], pts[j-1] = pts[j-1], pts[j]
			} else {
				break
			}
		}
	}
	hull := make([]Vec, 0, 2*n)
	// Lower hull.
	for _, pt := range pts {
		for len(hull) >= 2 && hull[len(hull)-1].Sub(hull[len(hull)-2]).Cross(pt.Sub(hull[len(hull)-2])) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, pt)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := n - 2; i >= 0; i-- {
		pt := pts[i]
		for len(hull) >= lower && hull[len(hull)-1].Sub(hull[len(hull)-2]).Cross(pt.Sub(hull[len(hull)-2])) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, pt)
	}
	return Polygon(hull[:len(hull)-1])
}
