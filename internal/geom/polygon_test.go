package geom

import (
	"math"
	"math/rand/v2"
	"testing"
)

func unitSquare() Polygon { return R(0, 0, 10, 10).Polygon() }

func TestPolygonAreaOrientation(t *testing.T) {
	p := unitSquare()
	if !almostEq(p.Area(), 100, 1e-9) {
		t.Errorf("area = %v", p.Area())
	}
	rev := p.Reverse()
	if !almostEq(rev.Area(), -100, 1e-9) {
		t.Errorf("reversed area = %v", rev.Area())
	}
	if !rev.CCW().IsCCW() {
		t.Error("CCW() should produce counter-clockwise polygon")
	}
}

func TestPolygonContains(t *testing.T) {
	p := unitSquare()
	tests := []struct {
		name string
		pt   Vec
		want bool
	}{
		{"center", V(5, 5), true},
		{"outside", V(15, 5), false},
		{"on edge", V(10, 5), true},
		{"on vertex", V(0, 0), true},
		{"just outside edge", V(10.001, 5), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := p.Contains(tt.pt); got != tt.want {
				t.Errorf("Contains(%v) = %v, want %v", tt.pt, got, tt.want)
			}
		})
	}
}

func TestPolygonContainsConcave(t *testing.T) {
	// A U-shaped (concave) polygon.
	u := Polygon{V(0, 0), V(30, 0), V(30, 30), V(20, 30), V(20, 10), V(10, 10), V(10, 30), V(0, 30)}
	if !u.Contains(V(5, 5)) || !u.Contains(V(25, 20)) {
		t.Error("points in arms should be inside")
	}
	if u.Contains(V(15, 20)) {
		t.Error("point in the notch should be outside")
	}
}

func TestPolygonContainsStrict(t *testing.T) {
	p := unitSquare()
	if p.ContainsStrict(V(10, 5), 0.5) {
		t.Error("edge point should not be strictly inside")
	}
	if !p.ContainsStrict(V(5, 5), 0.5) {
		t.Error("center should be strictly inside")
	}
	if p.ContainsStrict(V(9.8, 5), 0.5) {
		t.Error("point within margin of edge should not be strictly inside")
	}
}

func TestPolygonClosestBoundaryPoint(t *testing.T) {
	p := unitSquare()
	pt, edge := p.ClosestBoundaryPoint(V(5, -3))
	if !pt.Eq(V(5, 0)) || edge != 0 {
		t.Errorf("closest = %v edge %d", pt, edge)
	}
	pt, _ = p.ClosestBoundaryPoint(V(5, 5)) // interior: nearest edge
	if !(pt.Eq(V(0, 5)) || pt.Eq(V(10, 5)) || pt.Eq(V(5, 0)) || pt.Eq(V(5, 10))) {
		t.Errorf("interior closest = %v", pt)
	}
}

func TestPolygonIntersectSegment(t *testing.T) {
	p := unitSquare()
	tt, edge, ok := p.IntersectSegment(Seg(V(-5, 5), V(5, 5)))
	if !ok {
		t.Fatal("expected hit")
	}
	if hit := Seg(V(-5, 5), V(5, 5)).At(tt); !hit.Eq(V(0, 5)) {
		t.Errorf("hit at %v", hit)
	}
	if edge != 3 { // left edge of CCW rect polygon is index 3
		t.Errorf("edge = %d", edge)
	}
	if _, _, ok := p.IntersectSegment(Seg(V(-5, 5), V(-1, 5))); ok {
		t.Error("segment stopping short should miss")
	}
}

func TestPolygonPerimeterCentroid(t *testing.T) {
	p := unitSquare()
	if !almostEq(p.Perimeter(), 40, 1e-9) {
		t.Errorf("perimeter = %v", p.Perimeter())
	}
	if got := p.Centroid(); !got.Eq(V(5, 5)) {
		t.Errorf("centroid = %v", got)
	}
}

func TestPolygonBounds(t *testing.T) {
	p := Polygon{V(2, 3), V(9, 1), V(7, 8)}
	b := p.Bounds()
	if b.Min != V(2, 1) || b.Max != V(9, 8) {
		t.Errorf("bounds = %+v", b)
	}
}

func TestClipHalfPlane(t *testing.T) {
	p := unitSquare()
	// Keep the left of the upward line x=5 (direction (0,1) at x=5 keeps x<=5...
	// left of a->b where a=(5,0), b=(5,10) is the half-plane x <= 5).
	clipped := p.ClipHalfPlane(V(5, 0), V(5, 10))
	if clipped == nil {
		t.Fatal("clip returned empty")
	}
	if !almostEq(clipped.Area(), 50, 1e-6) {
		t.Errorf("clipped area = %v, want 50", clipped.Area())
	}
	for _, v := range clipped {
		if v.X > 5+1e-9 {
			t.Errorf("vertex %v beyond clip line", v)
		}
	}
	// Clipping away everything.
	gone := p.ClipHalfPlane(V(-1, 0), V(-1, 10)) // keeps x <= -1
	if gone != nil {
		t.Errorf("expected empty polygon, got %v", gone)
	}
}

func TestClipHalfPlaneRepeatedIsStable(t *testing.T) {
	p := unitSquare()
	c1 := p.ClipHalfPlane(V(5, 0), V(5, 10))
	c2 := c1.ClipHalfPlane(V(5, 0), V(5, 10))
	if !almostEq(c1.Area(), c2.Area(), 1e-6) {
		t.Errorf("idempotent clip changed area: %v vs %v", c1.Area(), c2.Area())
	}
}

func TestConvexHull(t *testing.T) {
	pts := []Vec{V(0, 0), V(10, 0), V(10, 10), V(0, 10), V(5, 5), V(2, 3)}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull size = %d, want 4: %v", len(hull), hull)
	}
	if !hull.IsCCW() {
		t.Error("hull should be CCW")
	}
	if !almostEq(hull.Area(), 100, 1e-9) {
		t.Errorf("hull area = %v", hull.Area())
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull([]Vec{V(1, 1)}); len(h) != 1 {
		t.Errorf("single point hull = %v", h)
	}
	if h := ConvexHull([]Vec{V(0, 0), V(1, 1)}); len(h) != 2 {
		t.Errorf("two point hull = %v", h)
	}
}

// Property: clipping can only shrink area, and all original points that were
// inside the half-plane remain inside the clipped polygon.
func TestClipHalfPlaneShrinks(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 200; trial++ {
		p := unitSquare()
		a := V(rng.Float64()*20-5, rng.Float64()*20-5)
		b := V(rng.Float64()*20-5, rng.Float64()*20-5)
		if a.Dist(b) < 0.1 {
			continue
		}
		clipped := p.ClipHalfPlane(a, b)
		if clipped == nil {
			continue
		}
		if clipped.Area() > p.Area()+1e-6 {
			t.Fatalf("trial %d: clip grew area %v -> %v", trial, p.Area(), clipped.Area())
		}
	}
}

// Property: convex hull contains all input points.
func TestConvexHullContainsAll(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.IntN(30)
		pts := make([]Vec, n)
		for i := range pts {
			pts[i] = V(rng.Float64()*50, rng.Float64()*50)
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			continue
		}
		for _, p := range pts {
			if !hull.Contains(p) {
				t.Fatalf("trial %d: point %v outside hull %v", trial, p, hull)
			}
		}
	}
}

func TestPolygonCentroidDegenerate(t *testing.T) {
	// Collinear polygon has zero area; centroid should fall back to vertex mean.
	p := Polygon{V(0, 0), V(5, 0), V(10, 0)}
	if got := p.Centroid(); !got.Eq(V(5, 0)) {
		t.Errorf("degenerate centroid = %v", got)
	}
}

func TestPolygonDist(t *testing.T) {
	p := unitSquare()
	if d := p.Dist(V(5, 15)); !almostEq(d, 5, 1e-9) {
		t.Errorf("dist above square = %v", d)
	}
	if d := p.Dist(V(5, 5)); !almostEq(d, 5, 1e-9) {
		t.Errorf("interior dist to boundary = %v", d)
	}
}

func TestPolygonEdgeWrap(t *testing.T) {
	p := unitSquare()
	last := p.Edge(3)
	if !last.A.Eq(V(0, 10)) || !last.B.Eq(V(0, 0)) {
		t.Errorf("edge 3 = %+v", last)
	}
	wrapped := p.Edge(4) // same as edge 0
	if !wrapped.A.Eq(p[0]) {
		t.Errorf("edge wrap failed: %+v", wrapped)
	}
}

func TestMinEnclosingCircleRandomShuffleStable(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	pts := make([]Vec, 40)
	for i := range pts {
		pts[i] = V(rng.Float64()*100, rng.Float64()*100)
	}
	base := MinEnclosingCircle(pts)
	for trial := 0; trial < 10; trial++ {
		rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
		got := MinEnclosingCircle(pts)
		if math.Abs(got.R-base.R) > 1e-7 {
			t.Fatalf("MEC radius depends on order: %v vs %v", got.R, base.R)
		}
	}
}
