package geom

import "math"

// Segment is a closed line segment from A to B.
type Segment struct {
	A, B Vec
}

// Seg is shorthand for constructing a Segment.
func Seg(a, b Vec) Segment { return Segment{A: a, B: b} }

// Len returns the length of the segment.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// Dir returns the unit direction from A to B (zero vector if degenerate).
func (s Segment) Dir() Vec { return s.B.Sub(s.A).Unit() }

// At returns the point at parameter t along the segment, with t=0 at A and
// t=1 at B. t is not clamped.
func (s Segment) At(t float64) Vec { return s.A.Lerp(s.B, t) }

// Midpoint returns the midpoint of the segment.
func (s Segment) Midpoint() Vec { return s.At(0.5) }

// ClosestParam returns the parameter t in [0,1] of the point on the segment
// closest to p.
func (s Segment) ClosestParam(p Vec) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Len2()
	if l2 < Eps*Eps {
		return 0
	}
	t := p.Sub(s.A).Dot(d) / l2
	return math.Min(1, math.Max(0, t))
}

// ClosestPoint returns the point on the segment closest to p.
func (s Segment) ClosestPoint(p Vec) Vec { return s.At(s.ClosestParam(p)) }

// Dist returns the distance from p to the segment.
func (s Segment) Dist(p Vec) float64 { return s.ClosestPoint(p).Dist(p) }

// Side reports which side of the infinite line through s the point p lies
// on: +1 for the left of A→B, -1 for the right, 0 when within Eps of the
// line (scaled by the segment length to keep the test unit-consistent).
func (s Segment) Side(p Vec) int {
	c := s.B.Sub(s.A).Cross(p.Sub(s.A))
	scale := s.Len()
	if scale < Eps {
		scale = 1
	}
	switch {
	case c > Eps*scale:
		return 1
	case c < -Eps*scale:
		return -1
	default:
		return 0
	}
}

// Intersect computes the intersection of two segments. It returns the
// intersection point closest to s.A and ok=true when the segments share at
// least one point. Collinear overlapping segments report the overlap point
// closest to s.A.
func (s Segment) Intersect(o Segment) (Vec, bool) {
	t, ok := s.IntersectParam(o)
	if !ok {
		return Vec{}, false
	}
	return s.At(t), true
}

// IntersectParam returns the smallest parameter t in [0,1] along s at which
// s meets o, and whether the segments intersect at all.
func (s Segment) IntersectParam(o Segment) (float64, bool) {
	r := s.B.Sub(s.A)
	d := o.B.Sub(o.A)
	denom := r.Cross(d)
	diff := o.A.Sub(s.A)

	if math.Abs(denom) < Eps {
		// Parallel. Check collinearity.
		if math.Abs(diff.Cross(r)) > Eps*math.Max(1, r.Len()) {
			return 0, false
		}
		// Collinear: project o's endpoints onto s.
		rl2 := r.Len2()
		if rl2 < Eps*Eps {
			// s is a point.
			if o.Dist(s.A) <= Eps {
				return 0, true
			}
			return 0, false
		}
		t0 := diff.Dot(r) / rl2
		t1 := o.B.Sub(s.A).Dot(r) / rl2
		lo, hi := math.Min(t0, t1), math.Max(t0, t1)
		if hi < -Eps || lo > 1+Eps {
			return 0, false
		}
		return math.Max(0, lo), true
	}

	t := diff.Cross(d) / denom
	u := diff.Cross(r) / denom
	if t < -Eps || t > 1+Eps || u < -Eps || u > 1+Eps {
		return 0, false
	}
	return math.Min(1, math.Max(0, t)), true
}

// LineIntersect intersects the infinite lines through s and o. It returns
// ok=false for parallel lines.
func (s Segment) LineIntersect(o Segment) (Vec, bool) {
	r := s.B.Sub(s.A)
	d := o.B.Sub(o.A)
	denom := r.Cross(d)
	if math.Abs(denom) < Eps {
		return Vec{}, false
	}
	t := o.A.Sub(s.A).Cross(d) / denom
	return s.At(t), true
}

// Rect is an axis-aligned rectangle with Min at the lower-left corner.
type Rect struct {
	Min, Max Vec
}

// R constructs a Rect from two corner coordinates, normalizing the order.
func R(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Min: Vec{x0, y0}, Max: Vec{x1, y1}}
}

// W returns the width of the rectangle.
func (r Rect) W() float64 { return r.Max.X - r.Min.X }

// H returns the height of the rectangle.
func (r Rect) H() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of the rectangle.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Center returns the center point of the rectangle.
func (r Rect) Center() Vec { return Vec{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2} }

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Vec) bool {
	return p.X >= r.Min.X-Eps && p.X <= r.Max.X+Eps &&
		p.Y >= r.Min.Y-Eps && p.Y <= r.Max.Y+Eps
}

// ContainsStrict reports whether p lies strictly inside r (more than Eps
// from every edge).
func (r Rect) ContainsStrict(p Vec) bool {
	return p.X > r.Min.X+Eps && p.X < r.Max.X-Eps &&
		p.Y > r.Min.Y+Eps && p.Y < r.Max.Y-Eps
}

// Expand returns r grown by d on every side (shrunk for negative d).
func (r Rect) Expand(d float64) Rect {
	return Rect{Min: Vec{r.Min.X - d, r.Min.Y - d}, Max: Vec{r.Max.X + d, r.Max.Y + d}}
}

// Intersects reports whether r and o share any area or boundary.
func (r Rect) Intersects(o Rect) bool {
	return r.Min.X <= o.Max.X && o.Min.X <= r.Max.X &&
		r.Min.Y <= o.Max.Y && o.Min.Y <= r.Max.Y
}

// Polygon returns the rectangle as a counter-clockwise polygon.
func (r Rect) Polygon() Polygon {
	return Polygon{
		r.Min,
		Vec{r.Max.X, r.Min.Y},
		r.Max,
		Vec{r.Min.X, r.Max.Y},
	}
}
