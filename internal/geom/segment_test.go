package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSegmentClosestPoint(t *testing.T) {
	s := Seg(V(0, 0), V(10, 0))
	tests := []struct {
		name string
		p    Vec
		want Vec
	}{
		{"interior projection", V(5, 3), V(5, 0)},
		{"clamp to A", V(-4, 2), V(0, 0)},
		{"clamp to B", V(14, -2), V(10, 0)},
		{"on segment", V(7, 0), V(7, 0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := s.ClosestPoint(tt.p); !got.Eq(tt.want) {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSegmentDegenerateClosestPoint(t *testing.T) {
	s := Seg(V(3, 3), V(3, 3))
	if got := s.ClosestPoint(V(10, 10)); !got.Eq(V(3, 3)) {
		t.Errorf("degenerate segment closest point = %v", got)
	}
	if d := s.Dist(V(3, 7)); !almostEq(d, 4, 1e-12) {
		t.Errorf("degenerate segment dist = %v, want 4", d)
	}
}

func TestSegmentSide(t *testing.T) {
	s := Seg(V(0, 0), V(10, 0))
	if s.Side(V(5, 1)) != 1 {
		t.Error("expected left side +1")
	}
	if s.Side(V(5, -1)) != -1 {
		t.Error("expected right side -1")
	}
	if s.Side(V(5, 0)) != 0 {
		t.Error("expected on-line 0")
	}
}

func TestSegmentIntersect(t *testing.T) {
	tests := []struct {
		name   string
		s, o   Segment
		want   Vec
		wantOK bool
	}{
		{"crossing", Seg(V(0, 0), V(10, 10)), Seg(V(0, 10), V(10, 0)), V(5, 5), true},
		{"miss", Seg(V(0, 0), V(1, 1)), Seg(V(5, 0), V(5, 10)), Vec{}, false},
		{"touch at endpoint", Seg(V(0, 0), V(5, 0)), Seg(V(5, 0), V(5, 5)), V(5, 0), true},
		{"parallel disjoint", Seg(V(0, 0), V(10, 0)), Seg(V(0, 1), V(10, 1)), Vec{}, false},
		{"collinear overlap", Seg(V(0, 0), V(10, 0)), Seg(V(4, 0), V(20, 0)), V(4, 0), true},
		{"collinear disjoint", Seg(V(0, 0), V(3, 0)), Seg(V(4, 0), V(8, 0)), Vec{}, false},
		{"T junction", Seg(V(0, 0), V(10, 0)), Seg(V(5, -5), V(5, 0)), V(5, 0), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := tt.s.Intersect(tt.o)
			if ok != tt.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tt.wantOK)
			}
			if ok && !got.Eq(tt.want) {
				t.Errorf("point = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSegmentLineIntersect(t *testing.T) {
	// Lines extend beyond segment extents.
	s := Seg(V(0, 0), V(1, 0))
	o := Seg(V(5, -1), V(5, 1))
	got, ok := s.LineIntersect(o)
	if !ok || !got.Eq(V(5, 0)) {
		t.Errorf("LineIntersect = %v, %v", got, ok)
	}
	if _, ok := s.LineIntersect(Seg(V(0, 2), V(1, 2))); ok {
		t.Error("parallel lines should not intersect")
	}
}

func TestRectBasics(t *testing.T) {
	r := R(10, 20, 0, 5) // intentionally swapped corners
	if r.Min != V(0, 5) || r.Max != V(10, 20) {
		t.Fatalf("R did not normalize: %+v", r)
	}
	if r.W() != 10 || r.H() != 15 {
		t.Errorf("W/H = %v/%v", r.W(), r.H())
	}
	if r.Area() != 150 {
		t.Errorf("Area = %v", r.Area())
	}
	if !r.Contains(V(5, 10)) || r.Contains(V(-1, 10)) {
		t.Error("Contains misbehaves")
	}
	if !r.ContainsStrict(V(5, 10)) || r.ContainsStrict(V(0, 5)) {
		t.Error("ContainsStrict misbehaves")
	}
	if got := r.Center(); !got.Eq(V(5, 12.5)) {
		t.Errorf("Center = %v", got)
	}
}

func TestRectIntersects(t *testing.T) {
	a := R(0, 0, 10, 10)
	tests := []struct {
		name string
		b    Rect
		want bool
	}{
		{"overlap", R(5, 5, 15, 15), true},
		{"touch edge", R(10, 0, 20, 10), true},
		{"disjoint", R(11, 0, 20, 10), false},
		{"contained", R(2, 2, 8, 8), true},
	}
	for _, tt := range tests {
		if got := a.Intersects(tt.b); got != tt.want {
			t.Errorf("%s: got %v", tt.name, got)
		}
	}
}

func TestRectPolygonIsCCW(t *testing.T) {
	p := R(0, 0, 4, 3).Polygon()
	if !p.IsCCW() {
		t.Error("rect polygon should be CCW")
	}
	if !almostEq(p.Area(), 12, 1e-12) {
		t.Errorf("area = %v", p.Area())
	}
}

// Property: the closest point on a segment is never farther than either
// endpoint.
func TestSegmentClosestPointOptimality(t *testing.T) {
	clamp := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		return math.Mod(x, 1e4)
	}
	f := func(ax, ay, bx, by, px, py float64) bool {
		s := Seg(V(clamp(ax), clamp(ay)), V(clamp(bx), clamp(by)))
		p := V(clamp(px), clamp(py))
		d := s.Dist(p)
		return d <= p.Dist(s.A)+1e-9 && d <= p.Dist(s.B)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: if two segments intersect, the reported point lies within Eps
// of both segments.
func TestSegmentIntersectPointOnBoth(t *testing.T) {
	clamp := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		return math.Mod(x, 1e3)
	}
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		s := Seg(V(clamp(ax), clamp(ay)), V(clamp(bx), clamp(by)))
		o := Seg(V(clamp(cx), clamp(cy)), V(clamp(dx), clamp(dy)))
		p, ok := s.Intersect(o)
		if !ok {
			return true
		}
		return s.Dist(p) < 1e-5 && o.Dist(p) < 1e-5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
