// Package geom provides the 2-D computational-geometry substrate used by the
// deployment simulator: vectors, segments, circles, simple polygons and the
// predicates (intersection, containment, closest point) the motion planner
// and the Voronoi baselines rely on.
//
// All coordinates are in meters. The package is allocation-conscious: the
// value types (Vec, Segment, Circle) are plain structs and the polygon
// routines avoid per-call allocation on the hot paths used by the simulator.
package geom

import (
	"fmt"
	"math"
)

// Eps is the tolerance used by geometric predicates. Coordinates in the
// simulator are on the order of 1e3 meters, so 1e-9 leaves ~6 digits of
// headroom above float64 noise.
const Eps = 1e-9

// Vec is a 2-D point or displacement vector.
type Vec struct {
	X, Y float64
}

// V is shorthand for constructing a Vec.
func V(x, y float64) Vec { return Vec{X: x, Y: y} }

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by k.
func (v Vec) Scale(k float64) Vec { return Vec{v.X * k, v.Y * k} }

// Dot returns the dot product v · w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the z-component of the 3-D cross product v × w. It is
// positive when w is counter-clockwise from v.
func (v Vec) Cross(w Vec) float64 { return v.X*w.Y - v.Y*w.X }

// Len returns the Euclidean norm of v.
func (v Vec) Len() float64 { return math.Hypot(v.X, v.Y) }

// Len2 returns the squared Euclidean norm of v, avoiding a sqrt.
func (v Vec) Len2() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the Euclidean distance between v and w.
func (v Vec) Dist(w Vec) float64 { return v.Sub(w).Len() }

// Dist2 returns the squared Euclidean distance between v and w.
func (v Vec) Dist2(w Vec) float64 { return v.Sub(w).Len2() }

// WithinDist reports v.Dist(w) <= r, bit-identically, while avoiding the
// square root in almost every call. Squared comparison alone is not an
// exact substitute — Dist rounds through Hypot, and d² vs r² can order
// differently within half an ulp — so values inside a narrow guard band
// around r² fall back to the original Dist comparison. The band is ~1e-9
// relative, orders of magnitude wider than the ~1e-16 rounding of either
// side, and is hit only when d/r agree to nine digits.
func (v Vec) WithinDist(w Vec, r float64) bool {
	if r < 0 {
		return false
	}
	d2 := v.Dist2(w)
	r2 := r * r
	if d2 <= r2*(1-1e-9) {
		return true
	}
	if d2 > r2*(1+1e-9) {
		return false
	}
	return v.Dist(w) <= r
}

// Unit returns v normalized to length 1. The zero vector is returned
// unchanged so callers never divide by zero.
func (v Vec) Unit() Vec {
	l := v.Len()
	if l < Eps {
		return Vec{}
	}
	return Vec{v.X / l, v.Y / l}
}

// Perp returns v rotated 90 degrees counter-clockwise.
func (v Vec) Perp() Vec { return Vec{-v.Y, v.X} }

// Neg returns -v.
func (v Vec) Neg() Vec { return Vec{-v.X, -v.Y} }

// Angle returns the polar angle of v in radians, in (-pi, pi].
func (v Vec) Angle() float64 { return math.Atan2(v.Y, v.X) }

// Rotate returns v rotated by theta radians counter-clockwise.
func (v Vec) Rotate(theta float64) Vec {
	s, c := math.Sincos(theta)
	return Vec{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// Lerp returns the linear interpolation between v and w at parameter t,
// with t=0 yielding v and t=1 yielding w.
func (v Vec) Lerp(w Vec, t float64) Vec {
	return Vec{v.X + (w.X-v.X)*t, v.Y + (w.Y-v.Y)*t}
}

// Towards returns the point at distance d from v in the direction of w.
// If v and w coincide, v is returned.
func (v Vec) Towards(w Vec, d float64) Vec {
	return v.Add(w.Sub(v).Unit().Scale(d))
}

// Eq reports whether v and w coincide within Eps.
func (v Vec) Eq(w Vec) bool {
	return math.Abs(v.X-w.X) <= Eps && math.Abs(v.Y-w.Y) <= Eps
}

// IsFinite reports whether both coordinates are finite numbers.
func (v Vec) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0)
}

// String implements fmt.Stringer.
func (v Vec) String() string { return fmt.Sprintf("(%.3f, %.3f)", v.X, v.Y) }

// Clamp returns v with each coordinate clamped to [lo, hi] of r.
func (v Vec) Clamp(r Rect) Vec {
	return Vec{
		X: math.Min(math.Max(v.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(v.Y, r.Min.Y), r.Max.Y),
	}
}
