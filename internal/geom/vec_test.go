package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecBasicOps(t *testing.T) {
	tests := []struct {
		name string
		got  Vec
		want Vec
	}{
		{"add", V(1, 2).Add(V(3, -1)), V(4, 1)},
		{"sub", V(1, 2).Sub(V(3, -1)), V(-2, 3)},
		{"scale", V(1, -2).Scale(2.5), V(2.5, -5)},
		{"neg", V(1, -2).Neg(), V(-1, 2)},
		{"perp", V(1, 0).Perp(), V(0, 1)},
		{"lerp-mid", V(0, 0).Lerp(V(10, 4), 0.5), V(5, 2)},
		{"towards", V(0, 0).Towards(V(10, 0), 3), V(3, 0)},
		{"unit-zero", V(0, 0).Unit(), V(0, 0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !tt.got.Eq(tt.want) {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestVecScalarOps(t *testing.T) {
	tests := []struct {
		name string
		got  float64
		want float64
	}{
		{"dot", V(1, 2).Dot(V(3, 4)), 11},
		{"cross", V(1, 0).Cross(V(0, 1)), 1},
		{"cross-neg", V(0, 1).Cross(V(1, 0)), -1},
		{"len", V(3, 4).Len(), 5},
		{"len2", V(3, 4).Len2(), 25},
		{"dist", V(1, 1).Dist(V(4, 5)), 5},
		{"angle", V(0, 2).Angle(), math.Pi / 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !almostEq(tt.got, tt.want, 1e-12) {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestVecRotate(t *testing.T) {
	v := V(1, 0)
	got := v.Rotate(math.Pi / 2)
	if !got.Eq(V(0, 1)) {
		t.Errorf("rotate 90: got %v", got)
	}
	got = v.Rotate(math.Pi)
	if !got.Eq(V(-1, 0)) {
		t.Errorf("rotate 180: got %v", got)
	}
}

func TestVecClamp(t *testing.T) {
	r := R(0, 0, 10, 10)
	tests := []struct {
		in, want Vec
	}{
		{V(-5, 5), V(0, 5)},
		{V(5, 15), V(5, 10)},
		{V(3, 4), V(3, 4)},
		{V(20, -20), V(10, 0)},
	}
	for _, tt := range tests {
		if got := tt.in.Clamp(r); !got.Eq(tt.want) {
			t.Errorf("Clamp(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestVecIsFinite(t *testing.T) {
	if !V(1, 2).IsFinite() {
		t.Error("finite vec reported non-finite")
	}
	if V(math.NaN(), 0).IsFinite() || V(0, math.Inf(1)).IsFinite() {
		t.Error("non-finite vec reported finite")
	}
}

// Property: rotation preserves length.
func TestVecRotatePreservesLength(t *testing.T) {
	f := func(x, y, theta float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(theta) ||
			math.IsInf(x, 0) || math.IsInf(y, 0) || math.IsInf(theta, 0) {
			return true
		}
		x = math.Mod(x, 1e6)
		y = math.Mod(y, 1e6)
		v := V(x, y)
		rot := v.Rotate(math.Mod(theta, 2*math.Pi))
		return almostEq(v.Len(), rot.Len(), 1e-6*(1+v.Len()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: distance is symmetric and satisfies the triangle inequality.
func TestVecDistanceMetric(t *testing.T) {
	clamp := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		return math.Mod(x, 1e5)
	}
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := V(clamp(ax), clamp(ay))
		b := V(clamp(bx), clamp(by))
		c := V(clamp(cx), clamp(cy))
		if !almostEq(a.Dist(b), b.Dist(a), 1e-9) {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Unit yields a vector of length 1 for non-degenerate input.
func TestVecUnitLength(t *testing.T) {
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		v := V(math.Mod(x, 1e9), math.Mod(y, 1e9))
		if v.Len() < 1e-6 {
			return true
		}
		return almostEq(v.Unit().Len(), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
