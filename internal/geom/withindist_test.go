package geom

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestWithinDistMatchesDist pins WithinDist to the exact Dist comparison
// it replaces, including pairs engineered to land within float-rounding
// range of the radius — the regime where a naive squared comparison can
// order differently than Hypot.
func TestWithinDistMatchesDist(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 42))
	check := func(v, w Vec, r float64) {
		t.Helper()
		if got, want := v.WithinDist(w, r), v.Dist(w) <= r; got != want {
			t.Fatalf("WithinDist(%v, %v, %.17g) = %v, Dist comparison = %v (d=%.17g)",
				v, w, r, got, want, v.Dist(w))
		}
	}
	for i := 0; i < 200000; i++ {
		v := V(rng.Float64()*2000-500, rng.Float64()*2000-500)
		w := V(rng.Float64()*2000-500, rng.Float64()*2000-500)
		switch i % 4 {
		case 0:
			check(v, w, rng.Float64()*1500)
		case 1:
			// Radius exactly at, or within ulps of, the true distance.
			d := v.Dist(w)
			check(v, w, d)
			check(v, w, math.Nextafter(d, 0))
			check(v, w, math.Nextafter(d, math.Inf(1)))
		case 2:
			// Axis-aligned pairs: distance equals a coordinate delta.
			w.Y = v.Y
			check(v, w, math.Abs(w.X-v.X))
		default:
			check(v, w, rng.Float64()*1e-6) // tiny radii
		}
	}
	// Degenerate cases.
	check(V(1, 2), V(1, 2), 0)
	if V(0, 0).WithinDist(V(0, 0), -1) {
		t.Fatal("negative radius must report false")
	}
}
