// Package matching implements the Hungarian algorithm for the minimum-cost
// assignment problem. The paper (§6.2) uses it to compute lower-bound
// moving distances: matching initial sensor positions to target layout
// positions with minimum total distance.
//
// The implementation is the O(n³) shortest-augmenting-path formulation with
// dual potentials (Jonker–Volgenant style), operating on a rectangular cost
// matrix with rows ≤ columns.
package matching

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape is returned when the cost matrix is empty, ragged, or has more
// rows than columns.
var ErrShape = errors.New("matching: cost matrix must be non-empty, rectangular, with rows <= cols")

// Solve computes a minimum-cost assignment of each row to a distinct
// column. It returns assignment[r] = column assigned to row r, and the
// total cost.
func Solve(cost [][]float64) (assignment []int, total float64, err error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, ErrShape
	}
	m := len(cost[0])
	if m < n {
		return nil, 0, ErrShape
	}
	for i, row := range cost {
		if len(row) != m {
			return nil, 0, fmt.Errorf("%w: row %d has %d entries, want %d", ErrShape, i, len(row), m)
		}
		for j, c := range row {
			if math.IsNaN(c) {
				return nil, 0, fmt.Errorf("matching: cost[%d][%d] is NaN", i, j)
			}
		}
	}

	// Potentials and matching arrays are 1-indexed internally, following
	// the classical formulation.
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	matchCol := make([]int, m+1) // matchCol[j] = row matched to column j, 0 if free
	way := make([]int, m+1)

	for i := 1; i <= n; i++ {
		matchCol[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := matchCol[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[matchCol[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if matchCol[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			matchCol[j0] = matchCol[j1]
			j0 = j1
		}
	}

	assignment = make([]int, n)
	for j := 1; j <= m; j++ {
		if matchCol[j] > 0 {
			assignment[matchCol[j]-1] = j - 1
		}
	}
	for r, c := range assignment {
		total += cost[r][c]
	}
	return assignment, total, nil
}

// SolvePoints assigns each source point to a distinct target point
// (len(targets) >= len(sources)) minimizing the total Euclidean distance.
// It returns the assignment and the total distance. This is the §6.2
// "minimum weighted bipartite matching" used for explosion lower bounds and
// optimal-pattern baselines.
func SolvePoints(sources, targets []Point) (assignment []int, total float64, err error) {
	if len(sources) == 0 || len(targets) < len(sources) {
		return nil, 0, ErrShape
	}
	cost := make([][]float64, len(sources))
	for i, s := range sources {
		row := make([]float64, len(targets))
		for j, t := range targets {
			row[j] = math.Hypot(s.X-t.X, s.Y-t.Y)
		}
		cost[i] = row
	}
	return Solve(cost)
}

// Point is a 2-D point. It mirrors geom.Vec without importing it, keeping
// this package dependency-free (useful for reuse and fuzzing).
type Point struct {
	X, Y float64
}
