package matching

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
)

func TestSolveKnownCases(t *testing.T) {
	tests := []struct {
		name      string
		cost      [][]float64
		wantTotal float64
	}{
		{
			name:      "1x1",
			cost:      [][]float64{{7}},
			wantTotal: 7,
		},
		{
			name: "classic 3x3",
			cost: [][]float64{
				{4, 1, 3},
				{2, 0, 5},
				{3, 2, 2},
			},
			wantTotal: 5, // 1 + 2 + 2
		},
		{
			name: "diagonal optimal",
			cost: [][]float64{
				{1, 100, 100},
				{100, 1, 100},
				{100, 100, 1},
			},
			wantTotal: 3,
		},
		{
			name: "anti-diagonal optimal",
			cost: [][]float64{
				{100, 100, 1},
				{100, 1, 100},
				{1, 100, 100},
			},
			wantTotal: 3,
		},
		{
			name: "rectangular 2x4",
			cost: [][]float64{
				{10, 10, 1, 10},
				{2, 10, 10, 10},
			},
			wantTotal: 3,
		},
		{
			name: "negative costs",
			cost: [][]float64{
				{-5, 0},
				{0, -5},
			},
			wantTotal: -10,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			assign, total, err := Solve(tt.cost)
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if math.Abs(total-tt.wantTotal) > 1e-9 {
				t.Errorf("total = %v, want %v (assign %v)", total, tt.wantTotal, assign)
			}
			seen := make(map[int]bool)
			for r, c := range assign {
				if c < 0 || c >= len(tt.cost[0]) {
					t.Errorf("row %d assigned out-of-range column %d", r, c)
				}
				if seen[c] {
					t.Errorf("column %d assigned twice", c)
				}
				seen[c] = true
			}
		})
	}
}

func TestSolveShapeErrors(t *testing.T) {
	cases := [][][]float64{
		{},            // empty
		{{1, 2}, {3}}, // ragged
		{{1}, {2}},    // more rows than cols
	}
	for i, cost := range cases {
		if _, _, err := Solve(cost); !errors.Is(err, ErrShape) {
			t.Errorf("case %d: err = %v, want ErrShape", i, err)
		}
	}
	if _, _, err := Solve([][]float64{{math.NaN()}}); err == nil {
		t.Error("NaN cost should error")
	}
}

// bruteForce finds the optimal assignment by exhaustive permutation, for
// verifying small instances.
func bruteForce(cost [][]float64) float64 {
	n := len(cost)
	m := len(cost[0])
	best := math.Inf(1)
	perm := make([]int, 0, n)
	used := make([]bool, m)
	var rec func(row int, acc float64)
	rec = func(row int, acc float64) {
		// No partial-cost pruning: costs may be negative.
		if row == n {
			best = math.Min(best, acc)
			return
		}
		for c := 0; c < m; c++ {
			if used[c] {
				continue
			}
			used[c] = true
			perm = append(perm, c)
			rec(row+1, acc+cost[row][c])
			perm = perm[:len(perm)-1]
			used[c] = false
		}
	}
	rec(0, 0)
	return best
}

// Property: Solve matches brute force on random small instances.
func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(6)
		m := n + rng.IntN(3)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64()*200-50) / 2
			}
		}
		_, total, err := Solve(cost)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bruteForce(cost)
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("trial %d: total %v, brute force %v (cost %v)", trial, total, want, cost)
		}
	}
}

// Property: the optimal total never exceeds the identity assignment's cost.
func TestSolveNeverWorseThanIdentity(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 2))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.IntN(30)
		cost := make([][]float64, n)
		var identity float64
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = rng.Float64() * 100
			}
			identity += cost[i][i]
		}
		_, total, err := Solve(cost)
		if err != nil {
			t.Fatal(err)
		}
		if total > identity+1e-9 {
			t.Fatalf("trial %d: total %v worse than identity %v", trial, total, identity)
		}
	}
}

func TestSolvePoints(t *testing.T) {
	sources := []Point{{0, 0}, {10, 0}}
	targets := []Point{{10, 1}, {0, 1}}
	assign, total, err := SolvePoints(sources, targets)
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != 1 || assign[1] != 0 {
		t.Errorf("assignment = %v, want [1 0]", assign)
	}
	if math.Abs(total-2) > 1e-9 {
		t.Errorf("total = %v, want 2", total)
	}
}

func TestSolvePointsShapeError(t *testing.T) {
	if _, _, err := SolvePoints(nil, nil); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := SolvePoints([]Point{{0, 0}, {1, 1}}, []Point{{0, 0}}); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v", err)
	}
}

func BenchmarkSolve240(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	n := 240
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = rng.Float64() * 1000
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Solve(cost); err != nil {
			b.Fatal(err)
		}
	}
}
