// Package metrics is a lightweight, dependency-free metrics registry for
// the deployment service: counters, gauges and histograms with atomic
// updates, exported in Prometheus text exposition format and as an
// expvar-compatible JSON document.
//
// Design constraints, in order:
//
//   - Updating a registered metric must be allocation-free and lock-free
//     (one atomic op), because counters sit on the batch runner's per-run
//     path and the store writer's append path — paths the bench gate
//     guards.
//   - Registration (GetOrCreate) may take a lock; callers cache the
//     returned handle when they update from a hot path.
//   - No external dependencies: the Prometheus text format is simple
//     enough to emit by hand, and scraping tooling only needs the text
//     endpoint.
//
// Metric names may carry a label set baked into the name, Prometheus
// style: `jobs_total{kind="sweep"}`. The exposition writer groups series
// of one family (the name before '{') under a single # TYPE header.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (negative deltas are ignored; counters only go up).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one. Dec subtracts one.
func (g *Gauge) Inc() { g.v.Add(1) }
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefDurationBuckets are the default histogram bucket upper bounds for
// durations in seconds: sub-millisecond runs up to multi-minute sweeps.
var DefDurationBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// Histogram is a fixed-bucket cumulative histogram. Observations are
// lock-free: one atomic add on the bucket plus a CAS loop on the float
// sum.
type Histogram struct {
	bounds []float64      // upper bounds, ascending; +Inf implied last
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations; Sum their total.
func (h *Histogram) Count() int64 { return h.count.Load() }
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns cumulative bucket counts aligned with bounds (the
// implicit +Inf bucket equals Count).
func (h *Histogram) snapshot() []int64 {
	out := make([]int64, len(h.bounds))
	var cum int64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// metric is one registered series with its family metadata.
type metric struct {
	name   string // full series name, labels included
	family string // name before '{'
	kind   string // "counter", "gauge" or "histogram"
	help   string

	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() float64
	histogram *Histogram
}

// Registry holds named metrics and renders them. The zero value is not
// usable; call NewRegistry (or use Default).
type Registry struct {
	mu    sync.RWMutex
	byKey map[string]*metric
	order []*metric // registration order; exposition sorts by name
	help  map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*metric{}, help: map[string]string{}}
}

// Default is the process-wide registry the deployment service exports.
var Default = NewRegistry()

// Help sets the # HELP text for a metric family (the name before any
// label set). Optional; families without help render no HELP line.
func (r *Registry) Help(family, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[family] = text
}

func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// lookup returns the registered metric, checking its kind.
func (r *Registry) lookup(name, kind string) (*metric, bool) {
	r.mu.RLock()
	m, ok := r.byKey[name]
	r.mu.RUnlock()
	if ok && m.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, m.kind, kind))
	}
	return m, ok
}

func (r *Registry) register(m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byKey[m.name]; ok {
		if prev.kind != m.kind {
			panic(fmt.Sprintf("metrics: %s registered as %s and %s", m.name, prev.kind, m.kind))
		}
		return prev
	}
	r.byKey[m.name] = m
	r.order = append(r.order, m)
	return m
}

// Counter returns the counter registered under name, creating it on
// first use. The returned handle is safe to cache and update without
// locks.
func (r *Registry) Counter(name string) *Counter {
	if m, ok := r.lookup(name, "counter"); ok {
		return m.counter
	}
	m := r.register(&metric{name: name, family: familyOf(name), kind: "counter", counter: &Counter{}})
	return m.counter
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	if m, ok := r.lookup(name, "gauge"); ok {
		return m.gauge
	}
	m := r.register(&metric{name: name, family: familyOf(name), kind: "gauge", gauge: &Gauge{}})
	return m.gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time
// (e.g. a queue depth read under the owner's lock). Re-registering the
// same name replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if m, ok := r.lookup(name, "gauge"); ok {
		r.mu.Lock()
		m.gaugeFn = fn
		r.mu.Unlock()
		return
	}
	r.register(&metric{name: name, family: familyOf(name), kind: "gauge", gaugeFn: fn})
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (nil buckets select
// DefDurationBuckets).
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if m, ok := r.lookup(name, "histogram"); ok {
		return m.histogram
	}
	if buckets == nil {
		buckets = DefDurationBuckets
	}
	m := r.register(&metric{name: name, family: familyOf(name), kind: "histogram", histogram: newHistogram(buckets)})
	return m.histogram
}

// sorted returns the metrics sorted by series name (stable exposition
// output regardless of registration order).
func (r *Registry) sorted() []*metric {
	r.mu.RLock()
	out := make([]*metric, len(r.order))
	copy(out, r.order)
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// seriesWithLabel splices an extra label into a series name:
// name{a="b"} + le="0.5" → name{a="b",le="0.5"}.
func seriesWithLabel(name, label string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + label + "}"
	}
	return name + "{" + label + "}"
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), series sorted by name, one # TYPE line per
// family.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.RUnlock()

	lastFamily := ""
	for _, m := range r.sorted() {
		if m.family != lastFamily {
			if h, ok := help[m.family]; ok {
				fmt.Fprintf(w, "# HELP %s %s\n", m.family, h)
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", m.family, m.kind)
			lastFamily = m.family
		}
		switch m.kind {
		case "counter":
			fmt.Fprintf(w, "%s %d\n", m.name, m.counter.Value())
		case "gauge":
			if m.gaugeFn != nil {
				fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.gaugeFn()))
			} else {
				fmt.Fprintf(w, "%s %d\n", m.name, m.gauge.Value())
			}
		case "histogram":
			h := m.histogram
			cum := h.snapshot()
			for i, bound := range h.bounds {
				le := fmt.Sprintf("le=%q", formatFloat(bound))
				fmt.Fprintf(w, "%s %d\n", seriesWithLabel(m.name, le), cum[i])
			}
			fmt.Fprintf(w, "%s %d\n", seriesWithLabel(m.name, `le="+Inf"`), h.Count())
			fmt.Fprintf(w, "%s %s\n", m.family+"_sum"+m.name[len(m.family):], formatFloat(h.Sum()))
			fmt.Fprintf(w, "%s %d\n", m.family+"_count"+m.name[len(m.family):], h.Count())
		}
	}
}

// Snapshot returns the registry as a JSON-encodable map: scalar series
// map to numbers, histograms to {count, sum, buckets} objects. It is the
// expvar-compatible view (publish with expvar.Func).
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	for _, m := range r.sorted() {
		switch m.kind {
		case "counter":
			out[m.name] = m.counter.Value()
		case "gauge":
			if m.gaugeFn != nil {
				out[m.name] = m.gaugeFn()
			} else {
				out[m.name] = m.gauge.Value()
			}
		case "histogram":
			h := m.histogram
			cum := h.snapshot()
			buckets := make(map[string]int64, len(h.bounds)+1)
			for i, bound := range h.bounds {
				buckets[formatFloat(bound)] = cum[i]
			}
			buckets["+Inf"] = h.Count()
			out[m.name] = map[string]any{
				"count":   h.Count(),
				"sum":     h.Sum(),
				"buckets": buckets,
			}
		}
	}
	return out
}
