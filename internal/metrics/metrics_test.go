package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("queue_depth")
	g.Set(7)
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	// GetOrCreate semantics: same name returns the same handle.
	if r.Counter("runs_total") != c {
		t.Fatal("Counter did not return the registered handle")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("x")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("run_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 55.65; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	// Cumulative buckets: le=0.1 holds 0.05 and 0.1 (bounds are inclusive),
	// le=1 adds 0.5, le=10 adds 5, +Inf adds 50.
	cum := h.snapshot()
	want := []int64{2, 3, 4}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d", i, cum[i], w)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Help("jobs_total", "Jobs submitted by kind.")
	r.Counter(`jobs_total{kind="sweep"}`).Add(3)
	r.Counter(`jobs_total{kind="run"}`).Inc()
	r.Gauge("queue_depth").Set(2)
	r.GaugeFunc("uptime_seconds", func() float64 { return 1.5 })
	r.Histogram(`run_seconds{scheme="voronoi"}`, []float64{0.5, 1}).Observe(0.75)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"# HELP jobs_total Jobs submitted by kind.\n",
		"# TYPE jobs_total counter\n",
		`jobs_total{kind="run"} 1` + "\n",
		`jobs_total{kind="sweep"} 3` + "\n",
		"# TYPE queue_depth gauge\n",
		"queue_depth 2\n",
		"uptime_seconds 1.5\n",
		"# TYPE run_seconds histogram\n",
		`run_seconds{scheme="voronoi",le="0.5"} 0` + "\n",
		`run_seconds{scheme="voronoi",le="1"} 1` + "\n",
		`run_seconds{scheme="voronoi",le="+Inf"} 1` + "\n",
		`run_seconds_sum{scheme="voronoi"} 0.75` + "\n",
		`run_seconds_count{scheme="voronoi"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n--- got ---\n%s", want, out)
		}
	}
	// One # TYPE line per family even with two label sets.
	if got := strings.Count(out, "# TYPE jobs_total"); got != 1 {
		t.Errorf("jobs_total # TYPE lines = %d, want 1", got)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(2)
	r.Gauge("b").Set(-1)
	r.Histogram("h", []float64{1}).Observe(0.5)

	buf, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got["a"].(float64) != 2 || got["b"].(float64) != -1 {
		t.Fatalf("scalars wrong: %v", got)
	}
	h := got["h"].(map[string]any)
	if h["count"].(float64) != 1 || h["sum"].(float64) != 0.5 {
		t.Fatalf("histogram wrong: %v", h)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", []float64{1, 2})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(1.5)
				r.Gauge("g").Inc() // concurrent registration path
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 || h.Sum() != 12000 {
		t.Fatalf("histogram count=%d sum=%g", h.Count(), h.Sum())
	}
	if r.Gauge("g").Value() != 8000 {
		t.Fatalf("gauge = %d, want 8000", r.Gauge("g").Value())
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) / 10)
	}
}
