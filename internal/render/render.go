// Package render produces ASCII maps and CSV dumps of deployment layouts,
// for the example programs and the experiments CLI.
package render

import (
	"fmt"
	"strconv"
	"strings"

	"mobisense/internal/field"
	"mobisense/internal/geom"
)

// ASCIIMap renders the field and sensor layout as a text map with the
// given number of character columns. Rows are scaled to keep cells roughly
// square in terminal aspect (a character is about twice as tall as wide).
// Legend: '.' free space, '#' obstacle, 'B' the base station, digits the
// number of sensors in the cell ('*' for 10+).
func ASCIIMap(f *field.Field, positions []geom.Vec, cols int) string {
	if cols < 4 {
		cols = 4
	}
	b := f.Bounds()
	cellW := b.W() / float64(cols)
	cellH := 2 * cellW
	rows := int(b.H()/cellH) + 1

	counts := make([]int, rows*cols)
	for _, p := range positions {
		cx := clamp(int((p.X-b.Min.X)/cellW), 0, cols-1)
		cy := clamp(int((p.Y-b.Min.Y)/cellH), 0, rows-1)
		counts[cy*cols+cx]++
	}
	baseCX := clamp(int((f.Reference().X-b.Min.X)/cellW), 0, cols-1)
	baseCY := clamp(int((f.Reference().Y-b.Min.Y)/cellH), 0, rows-1)

	var sb strings.Builder
	sb.Grow((cols + 1) * rows)
	for cy := rows - 1; cy >= 0; cy-- {
		for cx := 0; cx < cols; cx++ {
			center := geom.V(
				b.Min.X+(float64(cx)+0.5)*cellW,
				b.Min.Y+(float64(cy)+0.5)*cellH,
			)
			switch n := counts[cy*cols+cx]; {
			case cx == baseCX && cy == baseCY:
				sb.WriteByte('B')
			case n >= 10:
				sb.WriteByte('*')
			case n > 0:
				sb.WriteString(strconv.Itoa(n))
			case b.Contains(center) && !f.Free(center):
				sb.WriteByte('#')
			default:
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// PositionsCSV renders sensor positions as "id,x,y" CSV text.
func PositionsCSV(positions []geom.Vec) string {
	var sb strings.Builder
	sb.WriteString("id,x,y\n")
	for i, p := range positions {
		fmt.Fprintf(&sb, "%d,%.3f,%.3f\n", i, p.X, p.Y)
	}
	return sb.String()
}

// ParsePositionsCSV parses a document in PositionsCSV's "id,x,y" format
// back into a layout. Rows may appear in any order; ids must form a
// dense 0..n-1 range (each exactly once). Positions round-trip at the
// millimeter precision PositionsCSV writes.
func ParsePositionsCSV(s string) ([]geom.Vec, error) {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != "id,x,y" {
		return nil, fmt.Errorf("render: positions CSV must start with an \"id,x,y\" header")
	}
	rows := lines[1:]
	out := make([]geom.Vec, len(rows))
	seen := make([]bool, len(rows))
	for lineNo, row := range rows {
		fields := strings.Split(row, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("render: positions CSV line %d: want 3 fields, have %d", lineNo+2, len(fields))
		}
		id, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, fmt.Errorf("render: positions CSV line %d: bad id %q", lineNo+2, fields[0])
		}
		if id < 0 || id >= len(rows) {
			return nil, fmt.Errorf("render: positions CSV line %d: id %d out of range 0..%d", lineNo+2, id, len(rows)-1)
		}
		if seen[id] {
			return nil, fmt.Errorf("render: positions CSV line %d: duplicate id %d", lineNo+2, id)
		}
		x, errX := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		y, errY := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
		if errX != nil || errY != nil {
			return nil, fmt.Errorf("render: positions CSV line %d: bad coordinates %q,%q", lineNo+2, fields[1], fields[2])
		}
		out[id] = geom.V(x, y)
		seen[id] = true
	}
	return out, nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
