package render

import (
	"strings"
	"testing"

	"mobisense/internal/field"
	"mobisense/internal/geom"
)

func TestASCIIMapBasics(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 100, 100),
		[]geom.Polygon{geom.R(40, 40, 60, 60).Polygon()})
	positions := []geom.Vec{geom.V(10, 90), geom.V(10, 90), geom.V(90, 10)}
	m := ASCIIMap(f, positions, 20)

	if !strings.Contains(m, "B") {
		t.Error("missing base station marker")
	}
	if !strings.Contains(m, "#") {
		t.Error("missing obstacle marker")
	}
	if !strings.Contains(m, "2") {
		t.Error("missing doubled-up sensor cell")
	}
	lines := strings.Split(strings.TrimSpace(m), "\n")
	for i, l := range lines {
		if len(l) != 20 {
			t.Errorf("line %d width = %d, want 20", i, len(l))
		}
	}
}

func TestASCIIMapManySensorsStar(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 100, 100), nil)
	var positions []geom.Vec
	for i := 0; i < 12; i++ {
		positions = append(positions, geom.V(50, 50))
	}
	if m := ASCIIMap(f, positions, 10); !strings.Contains(m, "*") {
		t.Error("10+ sensors should render '*'")
	}
}

func TestASCIIMapMinWidth(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 100, 100), nil)
	m := ASCIIMap(f, nil, 1) // clamped to 4
	lines := strings.Split(strings.TrimSpace(m), "\n")
	if len(lines[0]) != 4 {
		t.Errorf("clamped width = %d, want 4", len(lines[0]))
	}
}

func TestPositionsCSV(t *testing.T) {
	csv := PositionsCSV([]geom.Vec{geom.V(1.5, 2.25), geom.V(3, 4)})
	want := "id,x,y\n0,1.500,2.250\n1,3.000,4.000\n"
	if csv != want {
		t.Errorf("csv = %q, want %q", csv, want)
	}
	if PositionsCSV(nil) != "id,x,y\n" {
		t.Error("empty csv should still have a header")
	}
}

func TestPositionsCSVRoundTrip(t *testing.T) {
	layout := []geom.Vec{
		geom.V(0, 0),
		geom.V(123.456, 789.012),
		geom.V(-5.5, 1000),
		geom.V(0.001, 0.0005), // rounds to 0.001,0.001 at write precision
	}
	got, err := ParsePositionsCSV(PositionsCSV(layout))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(layout) {
		t.Fatalf("round trip returned %d positions, want %d", len(got), len(layout))
	}
	for i, p := range got {
		// PositionsCSV writes millimeter precision; the parse must land
		// within that rounding.
		if dx, dy := p.X-layout[i].X, p.Y-layout[i].Y; dx > 0.0005 || dx < -0.0005 || dy > 0.0005 || dy < -0.0005 {
			t.Errorf("position %d = %v, want %v (±0.0005)", i, p, layout[i])
		}
	}

	// Order independence: shuffled rows reconstruct by id.
	shuffled := "id,x,y\n1,3.000,4.000\n0,1.500,2.250\n"
	got, err = ParsePositionsCSV(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Eq(geom.V(1.5, 2.25)) || !got[1].Eq(geom.V(3, 4)) {
		t.Errorf("shuffled parse = %v", got)
	}

	// Empty document round-trips to an empty layout.
	if got, err := ParsePositionsCSV("id,x,y\n"); err != nil || len(got) != 0 {
		t.Errorf("empty parse = %v, %v", got, err)
	}
}

func TestParsePositionsCSVErrors(t *testing.T) {
	cases := map[string]string{
		"missing header": "0,1.0,2.0\n",
		"short row":      "id,x,y\n0,1.0\n",
		"bad id":         "id,x,y\nzero,1.0,2.0\n",
		"id gap":         "id,x,y\n0,1.0,2.0\n2,3.0,4.0\n",
		"duplicate id":   "id,x,y\n0,1.0,2.0\n0,3.0,4.0\n",
		"bad coordinate": "id,x,y\n0,one,2.0\n",
		"empty input":    "",
	}
	for name, doc := range cases {
		if _, err := ParsePositionsCSV(doc); err == nil {
			t.Errorf("%s: no error for %q", name, doc)
		}
	}
}
