package render

import (
	"strings"
	"testing"

	"mobisense/internal/field"
	"mobisense/internal/geom"
)

func TestASCIIMapBasics(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 100, 100),
		[]geom.Polygon{geom.R(40, 40, 60, 60).Polygon()})
	positions := []geom.Vec{geom.V(10, 90), geom.V(10, 90), geom.V(90, 10)}
	m := ASCIIMap(f, positions, 20)

	if !strings.Contains(m, "B") {
		t.Error("missing base station marker")
	}
	if !strings.Contains(m, "#") {
		t.Error("missing obstacle marker")
	}
	if !strings.Contains(m, "2") {
		t.Error("missing doubled-up sensor cell")
	}
	lines := strings.Split(strings.TrimSpace(m), "\n")
	for i, l := range lines {
		if len(l) != 20 {
			t.Errorf("line %d width = %d, want 20", i, len(l))
		}
	}
}

func TestASCIIMapManySensorsStar(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 100, 100), nil)
	var positions []geom.Vec
	for i := 0; i < 12; i++ {
		positions = append(positions, geom.V(50, 50))
	}
	if m := ASCIIMap(f, positions, 10); !strings.Contains(m, "*") {
		t.Error("10+ sensors should render '*'")
	}
}

func TestASCIIMapMinWidth(t *testing.T) {
	f := field.MustNew(geom.R(0, 0, 100, 100), nil)
	m := ASCIIMap(f, nil, 1) // clamped to 4
	lines := strings.Split(strings.TrimSpace(m), "\n")
	if len(lines[0]) != 4 {
		t.Errorf("clamped width = %d, want 4", len(lines[0]))
	}
}

func TestPositionsCSV(t *testing.T) {
	csv := PositionsCSV([]geom.Vec{geom.V(1.5, 2.25), geom.V(3, 4)})
	want := "id,x,y\n0,1.500,2.250\n1,3.000,4.000\n"
	if csv != want {
		t.Errorf("csv = %q, want %q", csv, want)
	}
	if PositionsCSV(nil) != "id,x,y\n" {
		t.Error("empty csv should still have a header")
	}
}
