package server

import (
	"embed"
	"io/fs"
	"net/http"
)

// The dashboard is a dependency-free static UI compiled into the server
// binary: vanilla JS over the existing JSON API and SSE hub, canvas
// charts, no build step. Serving it from the binary means a deployed
// server needs no asset directory and the UI can never drift from the
// API it was built against.

//go:embed ui
var uiFS embed.FS

// mountDashboard serves the embedded UI at / (index) and /ui/ (assets).
func mountDashboard(mux *http.ServeMux) {
	sub, err := fs.Sub(uiFS, "ui")
	if err != nil {
		panic("server: embedded ui missing: " + err.Error())
	}
	files := http.FileServerFS(sub)
	mux.Handle("GET /ui/", http.StripPrefix("/ui/", files))
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		data, err := fs.ReadFile(sub, "index.html")
		if err != nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(data)
	})
}
