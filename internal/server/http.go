package server

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"mobisense/internal/metrics"
	"mobisense/internal/store"
)

// maxRequestBytes bounds submitted request bodies.
const maxRequestBytes = 1 << 20

// NewHandler exposes the manager over HTTP:
//
//	POST   /v1/runs             submit a single deployment
//	POST   /v1/sweeps           submit a sweep
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status, progress and (when done) aggregates
//	DELETE /v1/jobs/{id}        cancel (finished runs stay on disk)
//	GET    /v1/jobs/{id}/events SSE progress stream
//	GET    /v1/jobs/{id}/records  stored per-run records (JSONL, ?format=csv)
//	GET    /v1/jobs/{id}/traces   aggregated per-group trace curves (JSON)
//	GET    /v1/jobs/{id}/store/{file}  raw store files for remote watchers
//	GET    /v1/schemes          scheme registry introspection
//	GET    /v1/scenarios        scenario registry introspection
//	GET    /v1/axes             built-in sweep axis names
//	GET    /metrics             Prometheus text exposition (?format=json for expvar-style JSON)
//	GET    /                    embedded live dashboard
//
// Every request gets a short id, attached to its access-log record and
// echoed in the X-Request-Id response header.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		submit(m, w, r, "run")
	})
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		submit(m, w, r, "sweep")
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": m.List()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, ok := m.Cancel(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(m, w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/records", func(w http.ResponseWriter, r *http.Request) {
		serveRecords(m, w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/traces", func(w http.ResponseWriter, r *http.Request) {
		serveTraces(m, w, r)
	})
	mux.HandleFunc("GET /v1/schemes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"schemes": m.Engine().Schemes()})
	})
	mux.HandleFunc("GET /v1/scenarios", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"scenarios": m.Engine().Scenarios()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/store/{file}", func(w http.ResponseWriter, r *http.Request) {
		serveStoreFile(m, w, r)
	})
	mux.HandleFunc("GET /v1/axes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"axes": m.Engine().Axes()})
	})
	mux.HandleFunc("GET /metrics", serveMetrics)
	mountDashboard(mux)
	return logRequests(m.Logger(), mux)
}

// serveMetrics renders the process-wide registry: Prometheus text by
// default, the expvar-style JSON document with ?format=json.
func serveMetrics(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "", "prometheus":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		metrics.Default.WritePrometheus(w)
	case "json":
		writeJSON(w, http.StatusOK, metrics.Default.Snapshot())
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want prometheus or json)", format)
	}
}

// serveStoreFile streams one raw file of a job's sweep store. The
// endpoints mirror the on-disk layout (manifest.json, records.jsonl,
// timing.jsonl), so a remote watcher can treat
// <server>/v1/jobs/<id>/store as a store directory: cmd/report's -watch
// polls exactly these URLs. A running job's records are trimmed to the
// last complete line, like the /records endpoint.
func serveStoreFile(m *Manager, w http.ResponseWriter, r *http.Request) {
	id, file := r.PathValue("id"), r.PathValue("file")
	v, ok := m.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if v.CacheHit {
		writeError(w, http.StatusNotFound, "job %s was answered from the result cache and has no store of its own", id)
		return
	}
	var contentType string
	switch file {
	case "manifest.json":
		contentType = "application/json"
	case "records.jsonl", "timing.jsonl":
		contentType = "application/jsonl"
	default:
		writeError(w, http.StatusNotFound, "no store file %q (want manifest.json, records.jsonl or timing.jsonl)", file)
		return
	}
	data, err := os.ReadFile(filepath.Join(m.StoreDir(id), file))
	if err != nil {
		if file == "records.jsonl" || file == "timing.jsonl" {
			// A store exists once the manifest does; records may simply not
			// have been appended yet. Serving empty keeps remote watchers
			// polling instead of erroring out.
			if _, merr := os.Stat(filepath.Join(m.StoreDir(id), "manifest.json")); merr == nil {
				w.Header().Set("Content-Type", contentType)
				w.WriteHeader(http.StatusOK)
				return
			}
		}
		writeError(w, http.StatusNotFound, "job %s has no store yet", id)
		return
	}
	if file == "records.jsonl" {
		// Trim a possible torn tail mid-append.
		if i := bytes.LastIndexByte(data, '\n'); i < 0 {
			data = nil
		} else {
			data = data[:i+1]
		}
	}
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// requestSeq numbers requests for the access log.
var requestSeq atomic.Uint64

// statusWriter records the response status for the access log while
// passing the Flusher through (SSE needs it).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Flush() {
	if fl, ok := sw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

var (
	mHTTPGet   = metrics.Default.Counter(`http_requests_total{method="GET"}`)
	mHTTPOther = metrics.Default.Counter(`http_requests_total{method="other"}`)
)

// logRequests is the access-log middleware: every request gets a short
// id (echoed as X-Request-Id) and one structured record with method,
// path, status and duration.
func logRequests(log *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := fmt.Sprintf("r%06d", requestSeq.Add(1))
		w.Header().Set("X-Request-Id", rid)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if r.Method == http.MethodGet {
			mHTTPGet.Inc()
		} else {
			mHTTPOther.Inc()
		}
		log.Info("http request", "request", rid, "method", r.Method,
			"path", r.URL.Path, "status", sw.status,
			"elapsed", time.Since(start).Round(time.Microsecond))
	})
}

// submit handles POST /v1/runs and /v1/sweeps. A cache hit answers 200
// with the finished job; a queued job answers 202.
func submit(m *Manager, w http.ResponseWriter, r *http.Request, kind string) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read request: %v", err)
		return
	}
	if len(body) > maxRequestBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "request over %d bytes", maxRequestBytes)
		return
	}
	v, err := m.Submit(kind, body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	status := http.StatusAccepted
	if v.State.Terminal() {
		status = http.StatusOK
	}
	writeJSON(w, status, v)
}

// serveEvents streams a job's lifecycle as server-sent events: an initial
// "state" event, "progress" events as runs finish, and a final terminal
// "state" event after which the stream ends.
func serveEvents(m *Manager, w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ch, unsub, ok := m.Subscribe(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	defer unsub()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			data, err := json.Marshal(ev.Payload)
			if err != nil {
				data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// serveRecords returns the job's stored per-run records: the raw
// records.jsonl by default, or a CSV rendering with ?format=csv. Jobs
// answered from the cache have no store of their own.
func serveRecords(m *Manager, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := m.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if v.CacheHit {
		writeError(w, http.StatusNotFound, "job %s was answered from the result cache and has no records of its own", id)
		return
	}
	dir := m.StoreDir(id)
	switch format := r.URL.Query().Get("format"); format {
	case "", "jsonl":
		data, err := os.ReadFile(filepath.Join(dir, "records.jsonl"))
		if err != nil {
			writeError(w, http.StatusNotFound, "job %s has no records yet", id)
			return
		}
		// A running job's writer may be mid-append; serve only complete
		// lines so clients never see a torn trailing record.
		if i := bytes.LastIndexByte(data, '\n'); i < 0 {
			data = nil
		} else {
			data = data[:i+1]
		}
		w.Header().Set("Content-Type", "application/jsonl")
		w.WriteHeader(http.StatusOK)
		w.Write(data)
	case "csv":
		_, recs, err := store.ReadDir(dir)
		if err != nil {
			writeError(w, http.StatusNotFound, "job %s has no records yet", id)
			return
		}
		w.Header().Set("Content-Type", "text/csv")
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, recordsCSV(recs))
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want jsonl or csv)", format)
	}
}

// serveTraces returns the job's aggregated trace analytics: per
// (scheme, scenario, N, axis tuple) group mean curves with CI bands,
// computed by the engine from the job's store. Untraced jobs answer an
// empty list; cache-hit jobs have no store to aggregate.
func serveTraces(m *Manager, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := m.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if v.CacheHit {
		writeError(w, http.StatusNotFound, "job %s was answered from the result cache and has no store of its own", id)
		return
	}
	out, err := m.Engine().Traces(m.StoreDir(id))
	if err != nil {
		writeError(w, http.StatusNotFound, "job %s has no store yet", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": out})
}

// recordsCSV renders store records as per-run CSV rows (layouts
// omitted). Generalized axis assignments collapse into one
// "name=value;..." column so the header stays stable whatever axes a
// sweep used. encoding/csv handles quoting, so error messages with
// commas, quotes or newlines stay one row.
func recordsCSV(recs []store.Record) string {
	var sb strings.Builder
	cw := csv.NewWriter(&sb)
	cw.Write([]string{"index", "scheme", "scenario", "n", "repeat", "axes", "seed",
		"coverage", "coverage2", "alive", "avg_move_distance", "messages",
		"convergence_time", "connected", "err"})
	f6 := func(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
	for _, rec := range recs {
		axes := make([]string, len(rec.Axes))
		for i, a := range rec.Axes {
			axes[i] = a.Name + "=" + a.ValueString()
		}
		cw.Write([]string{
			strconv.Itoa(rec.Index), rec.Scheme, rec.Scenario,
			strconv.Itoa(rec.N), strconv.Itoa(rec.Repeat),
			strings.Join(axes, ";"),
			strconv.FormatUint(rec.Seed, 10),
			f6(rec.Coverage), f6(rec.Coverage2), strconv.Itoa(rec.Alive),
			f6(rec.AvgMoveDistance), strconv.FormatInt(rec.Messages, 10),
			f6(rec.ConvergenceTime), strconv.FormatBool(rec.Connected), rec.Err,
		})
	}
	cw.Flush()
	return sb.String()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
