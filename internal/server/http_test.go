package server

import (
	"strings"
	"testing"

	"mobisense/internal/store"
)

// TestRecordsCSVEscaping: error messages containing CSV metacharacters
// (commas, quotes, newlines) must stay one well-formed row.
func TestRecordsCSVEscaping(t *testing.T) {
	recs := []store.Record{
		{Index: 0, Scheme: "floor", Scenario: "free", N: 10, Coverage: 0.5, Connected: true},
		{Index: 1, Scheme: "vor", Scenario: "two-obstacles", N: 10,
			Err: "line one,\nline \"two\""},
	}
	out := recordsCSV(recs)
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	// Header + one plain row + the error row, whose embedded newline is
	// quoted so the record spans exactly one CSV record (two physical
	// lines inside quotes).
	if !strings.HasPrefix(lines[0], "index,scheme,scenario") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(out, "0,floor,free,10") {
		t.Errorf("plain row missing:\n%s", out)
	}
	if !strings.Contains(out, `"line one,`) || !strings.Contains(out, `line ""two""`) {
		t.Errorf("error field not CSV-quoted:\n%s", out)
	}
}
