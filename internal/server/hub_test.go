package server

import (
	"context"
	"encoding/json"
	"runtime"
	"sync"
	"testing"
	"time"
)

// churnEngine emits progress events as fast as the manager accepts them
// until stop closes, then completes. It drives the SSE hub hard enough
// for the race detector to see subscribe/unsubscribe/broadcast overlap.
type churnEngine struct {
	stop chan struct{}
}

func (e *churnEngine) Prepare(kind string, req json.RawMessage) (Prepared, error) {
	return Prepared{Fingerprint: "churn-" + string(req), TotalRuns: 1 << 20}, nil
}

func (e *churnEngine) Execute(ctx context.Context, job ExecJob) (json.RawMessage, error) {
	for i := 1; ; i++ {
		select {
		case <-e.stop:
			return json.RawMessage(`{"ok":true}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
			job.OnProgress(Progress{Done: i, Total: 1 << 20})
			runtime.Gosched()
		}
	}
}

func (e *churnEngine) Schemes() any               { return nil }
func (e *churnEngine) Scenarios() any             { return nil }
func (e *churnEngine) Axes() any                  { return nil }
func (e *churnEngine) Traces(string) (any, error) { return nil, nil }

// submitRunning submits a job and waits until it leaves the queue.
func submitRunning(t *testing.T, m *Manager) JobView {
	t.Helper()
	v, err := m.Submit("run", json.RawMessage(`{"churn":true}`))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for v.State == StateQueued {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started", v.ID)
		}
		time.Sleep(time.Millisecond)
		v, _ = m.Get(v.ID)
	}
	return v
}

// TestHubSubscribeUnsubscribeChurn: many goroutines subscribing, reading
// a little and unsubscribing while the job broadcasts at full rate. Run
// under -race this exercises the hub's locking; the closing assertions
// check no subscriber leaks (gauge back to zero) and that a subscriber
// present at completion still observes the terminal state.
func TestHubSubscribeUnsubscribeChurn(t *testing.T) {
	stop := make(chan struct{})
	m, err := NewManager(t.TempDir(), &churnEngine{stop: stop}, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	v := submitRunning(t, m)

	before := mSubscribers.Value()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ch, unsub, ok := m.Subscribe(v.ID)
				if !ok {
					t.Errorf("Subscribe(%s) failed", v.ID)
					return
				}
				for j := 0; j < 3; j++ {
					select {
					case <-ch:
					case <-time.After(time.Second):
						t.Error("no event within 1s of subscribing")
						unsub()
						return
					}
				}
				unsub()
			}
		}()
	}
	wg.Wait()
	if after := mSubscribers.Value(); after != before {
		t.Errorf("subscriber gauge leaked: %d -> %d", before, after)
	}

	// A subscriber attached at completion time sees the terminal state.
	ch, unsub, ok := m.Subscribe(v.ID)
	if !ok {
		t.Fatal("final subscribe failed")
	}
	defer unsub()
	close(stop)
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, open := <-ch:
			if !open {
				t.Fatal("channel closed before a terminal state event")
			}
			if ev.Type == "state" {
				if jv, ok := ev.Payload.(JobView); ok && jv.State.Terminal() {
					return
				}
			}
		case <-deadline:
			t.Fatal("no terminal state event after stop")
		}
	}
}

// TestHubSlowConsumerBackpressure: a subscriber that never reads must not
// block the executing job — progress events are dropped on the floor —
// and the terminal state event must still land in its buffer (evicting
// older events if needed).
func TestHubSlowConsumerBackpressure(t *testing.T) {
	stop := make(chan struct{})
	m, err := NewManager(t.TempDir(), &churnEngine{stop: stop}, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	v := submitRunning(t, m)

	ch, unsub, ok := m.Subscribe(v.ID)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer unsub()

	// Let the job overrun the 64-event buffer many times over. The job
	// making progress past the buffer size is itself the backpressure
	// assertion: a blocking broadcast would deadlock the worker here.
	dropsBefore := mEventsDropped.Value()
	deadline := time.Now().Add(5 * time.Second)
	for mEventsDropped.Value() < dropsBefore+256 {
		if time.Now().After(deadline) {
			t.Fatal("no events dropped for a full slow consumer; broadcast may be blocking")
		}
		runtime.Gosched()
	}

	close(stop)
	waitTerminal(t, m, v.ID)

	// Drain the never-read channel: the terminal state event must be in
	// there despite the overflow.
	sawTerminal := false
	for ev := range ch {
		if ev.Type == "state" {
			if jv, ok := ev.Payload.(JobView); ok && jv.State.Terminal() {
				sawTerminal = true
			}
		}
	}
	if !sawTerminal {
		t.Error("slow consumer never received the terminal state event")
	}
}

// TestHubProgressMonotonic: progress events observed by one subscriber
// are monotonically non-decreasing in Done even while other subscribers
// churn — drops are allowed, reordering is not.
func TestHubProgressMonotonic(t *testing.T) {
	stop := make(chan struct{})
	m, err := NewManager(t.TempDir(), &churnEngine{stop: stop}, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	v := submitRunning(t, m)

	ch, unsub, ok := m.Subscribe(v.ID)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer unsub()

	// Churn other subscribers to stir the hub while we read.
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; i < 100; i++ {
			_, u, ok := m.Subscribe(v.ID)
			if ok {
				u()
			}
			runtime.Gosched()
		}
	}()

	last, seen := 0, 0
	for seen < 500 {
		select {
		case ev := <-ch:
			if ev.Type != "progress" {
				continue
			}
			p, ok := ev.Payload.(Progress)
			if !ok {
				t.Fatalf("progress payload is %T", ev.Payload)
			}
			if p.Done < last {
				t.Fatalf("progress went backwards: %d after %d", p.Done, last)
			}
			last = p.Done
			seen++
		case <-time.After(5 * time.Second):
			t.Fatal("progress stream stalled")
		}
	}
	<-churnDone
	close(stop)
	waitTerminal(t, m, v.ID)
}

func waitTerminal(t *testing.T, m *Manager, id string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, _ := m.Get(id)
		if v.State.Terminal() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, v.State)
		}
		time.Sleep(time.Millisecond)
	}
}
