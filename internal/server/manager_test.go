package server

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// stubEngine completes every job instantly with a fixed result; the
// fingerprint is the raw request body, so distinct bodies are distinct
// computations. A non-nil gate blocks Execute until the gate closes.
type stubEngine struct {
	gate chan struct{}
}

func (e *stubEngine) Prepare(kind string, req json.RawMessage) (Prepared, error) {
	return Prepared{Fingerprint: "fp-" + string(req), TotalRuns: 1}, nil
}

func (e *stubEngine) Execute(ctx context.Context, job ExecJob) (json.RawMessage, error) {
	if e.gate != nil {
		select {
		case <-e.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return json.RawMessage(`{"ok":true}`), nil
}

func (e *stubEngine) Schemes() any               { return nil }
func (e *stubEngine) Scenarios() any             { return nil }
func (e *stubEngine) Axes() any                  { return nil }
func (e *stubEngine) Traces(string) (any, error) { return nil, nil }

// submitAndWait submits a job and waits for it to reach a terminal state.
func submitAndWait(t *testing.T, m *Manager, body string) JobView {
	t.Helper()
	v, err := m.Submit("run", json.RawMessage(body))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !v.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", v.ID, v.State)
		}
		time.Sleep(time.Millisecond)
		v, _ = m.Get(v.ID)
	}
	return v
}

// TestResultCacheLRUBound: the fingerprint cache holds at most cacheSize
// entries and evicts the least recently used completed entry, so an old
// fingerprint re-executes while a fresh one still answers O(1).
func TestResultCacheLRUBound(t *testing.T) {
	m, err := NewManager(t.TempDir(), &stubEngine{}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	a := submitAndWait(t, m, `{"job":"a"}`)
	if a.CacheHit {
		t.Fatal("first submission should execute")
	}
	submitAndWait(t, m, `{"job":"b"}`)
	submitAndWait(t, m, `{"job":"c"}`) // evicts a (oldest of max 2)

	if again := submitAndWait(t, m, `{"job":"a"}`); again.CacheHit {
		t.Error("evicted fingerprint answered from the cache")
	}
	// c stayed resident (a's re-insert evicted b, the then-oldest).
	if again := submitAndWait(t, m, `{"job":"c"}`); !again.CacheHit {
		t.Error("resident fingerprint re-executed")
	}
	if again := submitAndWait(t, m, `{"job":"b"}`); again.CacheHit {
		t.Error("evicted fingerprint b answered from the cache")
	}
}

// TestResultCacheHitRefreshesLRU: a cache hit counts as use, protecting
// the entry from the next eviction.
func TestResultCacheHitRefreshesLRU(t *testing.T) {
	m, err := NewManager(t.TempDir(), &stubEngine{}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	submitAndWait(t, m, `{"job":"a"}`)
	submitAndWait(t, m, `{"job":"b"}`)
	if v := submitAndWait(t, m, `{"job":"a"}`); !v.CacheHit {
		t.Fatal("a should still be cached")
	}
	submitAndWait(t, m, `{"job":"c"}`) // must evict b, not the just-used a
	if v := submitAndWait(t, m, `{"job":"a"}`); !v.CacheHit {
		t.Error("recently hit entry was evicted")
	}
}

// TestGCPrunesFinishedJobs: the GC removes terminal jobs (and their
// directories) older than the TTL, drops their cache entries, and leaves
// running jobs alone whatever their age.
func TestGCPrunesFinishedJobs(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	m, err := NewManager(dir, &stubEngine{gate: gate}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// A running job must survive any TTL.
	running, err := m.Submit("run", json.RawMessage(`{"job":"slow"}`))
	if err != nil {
		t.Fatal(err)
	}
	for {
		v, _ := m.Get(running.ID)
		if v.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}

	close(gate)
	done := submitAndWait(t, m, `{"job":"done"}`)

	if n := m.GC(0); n != 0 {
		t.Errorf("GC(0) removed %d jobs; want no-op", n)
	}
	if n := m.GC(time.Hour); n != 0 {
		t.Errorf("GC(1h) removed %d fresh jobs", n)
	}

	time.Sleep(20 * time.Millisecond)
	// The slow job finished when the gate closed; both terminal jobs are
	// now older than the TTL.
	submitAndWait(t, m, `{"job":"slow"}`)
	removedIDs := []string{running.ID, done.ID}
	if n := m.GC(10 * time.Millisecond); n < 2 {
		t.Fatalf("GC removed %d jobs, want >= 2", n)
	}
	for _, id := range removedIDs {
		if _, ok := m.Get(id); ok {
			t.Errorf("job %s still registered after GC", id)
		}
		if _, err := os.Stat(filepath.Join(dir, "jobs", id)); !os.IsNotExist(err) {
			t.Errorf("job %s directory survived GC", id)
		}
	}
	// The pruned jobs' cache entries are gone: resubmission executes.
	if v := submitAndWait(t, m, `{"job":"done"}`); v.CacheHit {
		t.Error("GC left a cache entry for a pruned job")
	}
}

// TestGCPrunesCancelledQueuedJob is the regression test for the
// GC-vs-queue race: a job cancelled while still queued is terminal but
// its id remains in the pending queue; pruning it must not leave the
// worker to pop an unregistered job and crash.
func TestGCPrunesCancelledQueuedJob(t *testing.T) {
	gate := make(chan struct{})
	m, err := NewManager(t.TempDir(), &stubEngine{gate: gate}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Occupy the single worker so the next submission stays queued.
	if _, err := m.Submit("run", json.RawMessage(`{"job":"slow"}`)); err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit("run", json.RawMessage(`{"job":"queued"}`))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Cancel(queued.ID); v.State != StateCancelled {
		t.Fatalf("cancelled queued job state = %s", v.State)
	}
	time.Sleep(20 * time.Millisecond)
	if n := m.GC(10 * time.Millisecond); n != 1 {
		t.Fatalf("GC removed %d jobs, want the cancelled one", n)
	}

	// Release the worker; it must survive the stale queue entry and keep
	// executing new jobs.
	close(gate)
	if v := submitAndWait(t, m, `{"job":"after"}`); v.State != StateDone {
		t.Fatalf("post-GC job state = %s (worker dead?)", v.State)
	}
}

// TestGCKeepsCacheBackedBySurvivingJob: pruning an old job must not evict
// a cache entry that a newer, surviving done job also backs.
func TestGCKeepsCacheBackedBySurvivingJob(t *testing.T) {
	m, err := NewManager(t.TempDir(), &stubEngine{}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	old := submitAndWait(t, m, `{"job":"shared"}`)
	// Evict the fingerprint (cache size 1), then re-execute it as a
	// second, younger done job backing the same fingerprint.
	submitAndWait(t, m, `{"job":"other"}`)
	if v := submitAndWait(t, m, `{"job":"shared"}`); v.CacheHit {
		t.Fatal("fingerprint should have been evicted before the re-run")
	}

	// Age only the first job past the TTL.
	m.mu.Lock()
	m.jobs[old.ID].meta.Finished = time.Now().UTC().Add(-time.Hour)
	m.mu.Unlock()
	if n := m.GC(time.Minute); n != 1 {
		t.Fatalf("GC removed %d jobs, want only the aged one", n)
	}
	if v := submitAndWait(t, m, `{"job":"shared"}`); !v.CacheHit {
		t.Error("GC evicted a cache entry still backed by a surviving job")
	}
}
