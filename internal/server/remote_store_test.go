package server

import (
	"context"
	"encoding/json"
	"errors"
	"io/fs"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"mobisense/internal/store"
)

// storeEngine writes a small real sweep store into job.StoreDir, like the
// mobisense service engine does, so the store endpoints serve genuine
// files. With holdRecords set it writes only the manifest (a sweep that
// has not finished a run yet).
type storeEngine struct {
	holdRecords bool
}

func (e *storeEngine) Prepare(kind string, req json.RawMessage) (Prepared, error) {
	return Prepared{Fingerprint: "store-" + string(req), TotalRuns: 2}, nil
}

func (e *storeEngine) Execute(ctx context.Context, job ExecJob) (json.RawMessage, error) {
	w, err := store.Create(job.StoreDir, store.Manifest{Kind: "sweep", TotalRuns: 2})
	if err != nil {
		return nil, err
	}
	if !e.holdRecords {
		for i := 0; i < 2; i++ {
			rec := store.Record{Index: i, Scheme: "floor", N: 10, Repeat: i, Seed: uint64(i), Coverage: 0.5}
			if err := w.Append(i, rec, time.Duration(i+1)*time.Millisecond); err != nil {
				return nil, err
			}
		}
	}
	if err := w.Close(); err != nil && e.holdRecords {
		// Close flags the zero-record store incomplete; that's the point.
		_ = err
	}
	return json.RawMessage(`{"ok":true}`), nil
}

func (e *storeEngine) Schemes() any               { return nil }
func (e *storeEngine) Scenarios() any             { return nil }
func (e *storeEngine) Axes() any                  { return nil }
func (e *storeEngine) Traces(string) (any, error) { return nil, nil }

// TestRemoteStoreRoundTrip: the /v1/jobs/{id}/store endpoints serve a
// job's store such that store.ReadDir / store.ReadTimings accept the URL
// as a store directory — the client half of report -watch against a
// remote server.
func TestRemoteStoreRoundTrip(t *testing.T) {
	m, err := NewManager(t.TempDir(), &storeEngine{}, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	v := submitAndWait(t, m, `{"sweep":"remote"}`)
	if v.State != StateDone {
		t.Fatalf("job state = %s", v.State)
	}
	url := ts.URL + "/v1/jobs/" + v.ID + "/store"

	if !store.IsRemote(url) {
		t.Fatalf("IsRemote(%q) = false", url)
	}
	man, recs, err := store.ReadDir(url)
	if err != nil {
		t.Fatal(err)
	}
	localMan, localRecs, err := store.ReadDir(m.StoreDir(v.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(man, localMan) {
		t.Errorf("remote manifest %+v != local %+v", man, localMan)
	}
	if len(recs) != len(localRecs) || len(recs) != 2 {
		t.Fatalf("remote records = %d, local = %d, want 2", len(recs), len(localRecs))
	}
	for i := range recs {
		if recs[i].Key() != localRecs[i].Key() {
			t.Errorf("record %d keys differ: %q vs %q", i, recs[i].Key(), localRecs[i].Key())
		}
	}

	times, err := store.ReadTimings(url)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Errorf("remote timings = %d, want 2", len(times))
	}
}

// TestRemoteStoreTornTail: a torn final record line (server read racing
// the writer's append) is dropped by the remote reader exactly as the
// local one drops it.
func TestRemoteStoreTornTail(t *testing.T) {
	m, err := NewManager(t.TempDir(), &storeEngine{}, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	v := submitAndWait(t, m, `{"sweep":"torn"}`)
	path := filepath.Join(m.StoreDir(v.ID), "records.jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"index":2,"scheme":"flo`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, recs, err := store.ReadDir(ts.URL + "/v1/jobs/" + v.ID + "/store")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Errorf("torn tail not dropped: got %d records, want 2", len(recs))
	}
}

// TestRemoteStoreEmpty: a job whose store holds only a manifest serves
// empty records/timing files (HTTP 200), so a watcher keeps polling
// instead of erroring out before the first run lands.
func TestRemoteStoreEmpty(t *testing.T) {
	m, err := NewManager(t.TempDir(), &storeEngine{holdRecords: true}, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	v := submitAndWait(t, m, `{"sweep":"empty"}`)
	url := ts.URL + "/v1/jobs/" + v.ID + "/store"
	man, recs, err := store.ReadDir(url)
	if err != nil {
		t.Fatal(err)
	}
	if man.TotalRuns != 2 || len(recs) != 0 {
		t.Errorf("got total=%d records=%d, want total=2 records=0", man.TotalRuns, len(recs))
	}
	times, err := store.ReadTimings(url)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 0 {
		t.Errorf("timings = %d, want 0", len(times))
	}
}

// TestRemoteStoreMissing: an unknown job's store URL reads as
// fs.ErrNotExist, the signal report -watch uses to distinguish "store
// gone" from transport errors.
func TestRemoteStoreMissing(t *testing.T) {
	m, err := NewManager(t.TempDir(), &storeEngine{}, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	_, _, err = store.ReadDir(ts.URL + "/v1/jobs/j999999/store")
	if !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("missing remote store error = %v, want fs.ErrNotExist", err)
	}
}
