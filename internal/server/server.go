// Package server turns the batch runner into a long-running deployment
// service: an asynchronous job queue with on-disk persistence, a
// fingerprint-keyed result cache, per-job cancellation and live progress
// events, fronted by an HTTP API (see NewHandler).
//
// The package is deliberately independent of the root mobisense package
// (mirroring internal/store): job execution is delegated through the
// Engine interface, which the root package's service façade implements.
// Each job owns a directory under <data>/jobs/<id> holding job.json (the
// request plus its lifecycle state) and, for executed jobs, a sweep store
// (internal/store) the runner streams finished runs into. Because the
// store is resumable, a server killed mid-job picks the job up on restart
// and re-executes only the missing runs.
package server

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mobisense/internal/metrics"
)

// Service telemetry, exported at GET /metrics. Counter/gauge handles are
// resolved once at init; per-event updates are single atomic ops.
var (
	mCacheHits      = metrics.Default.Counter(`jobs_total{outcome="cache_hit"}`)
	mJobsDone       = metrics.Default.Counter(`jobs_total{outcome="done"}`)
	mJobsFailed     = metrics.Default.Counter(`jobs_total{outcome="failed"}`)
	mJobsCancelled  = metrics.Default.Counter(`jobs_total{outcome="cancelled"}`)
	mJobsRunning    = metrics.Default.Gauge("jobs_running")
	mSubscribers    = metrics.Default.Gauge("sse_subscribers")
	mEventsSent     = metrics.Default.Counter("sse_events_sent_total")
	mEventsDropped  = metrics.Default.Counter("sse_events_dropped_total")
	mJobsGCPruned   = metrics.Default.Counter("jobs_gc_pruned_total")
	mSubmittedRun   = metrics.Default.Counter(`jobs_submitted_total{kind="run"}`)
	mSubmittedSweep = metrics.Default.Counter(`jobs_submitted_total{kind="sweep"}`)
)

func init() {
	metrics.Default.Help("jobs_total", "Jobs reaching a terminal state, by outcome.")
	metrics.Default.Help("jobs_submitted_total", "Jobs accepted for execution, by kind.")
	metrics.Default.Help("jobs_running", "Jobs currently executing.")
	metrics.Default.Help("job_queue_depth", "Jobs waiting for a worker.")
	metrics.Default.Help("sse_subscribers", "Open event-stream subscriptions.")
	metrics.Default.Help("sse_events_sent_total", "Events delivered to subscribers.")
	metrics.Default.Help("sse_events_dropped_total", "Events dropped or evicted on slow subscribers.")
	metrics.Default.Help("store_bytes_written_total", "Bytes appended to sweep stores.")
	metrics.Default.Help("runs_started_total", "Deployment runs started.")
	metrics.Default.Help("runs_finished_total", "Deployment runs finished successfully.")
	metrics.Default.Help("runs_failed_total", "Deployment runs that returned an error.")
	metrics.Default.Help("run_duration_seconds", "Wall-clock run duration, by scheme.")
	metrics.Default.Help("run_settling_time_seconds", "Trace-derived settling time of traced runs (simulation seconds).")
	metrics.Default.Help("run_time_to_90_coverage_seconds", "Trace-derived time to 90% of final coverage (simulation seconds).")
	metrics.Default.Help("run_time_to_connectivity_seconds", "Trace-derived time to stable full connectivity (simulation seconds).")
	metrics.Default.Help("http_requests_total", "HTTP requests served, by method.")
}

func submittedCounter(kind string) *metrics.Counter {
	switch kind {
	case "run":
		return mSubmittedRun
	case "sweep":
		return mSubmittedSweep
	}
	return metrics.Default.Counter(fmt.Sprintf("jobs_submitted_total{kind=%q}", kind))
}

// JobState is a job's lifecycle state. Queued and running jobs are
// re-queued (and resumed from their store) when the server restarts; the
// other states are terminal.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether a job in this state will never run again.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Prepared is the engine's validation result for a submitted request.
type Prepared struct {
	// Fingerprint deterministically identifies the computation the request
	// describes; two requests share one exactly when their results are
	// interchangeable. It keys the result cache and restart identity.
	Fingerprint string
	// TotalRuns is the number of runs the request expands to.
	TotalRuns int
}

// Progress is one progress observation of a running job, computed by the
// engine (which owns rate/ETA estimation) and broadcast to subscribers.
type Progress struct {
	Done      int   `json:"done"`
	Total     int   `json:"total"`
	ElapsedMS int64 `json:"elapsed_ms"`
	EtaMS     int64 `json:"eta_ms,omitempty"`
}

// ExecJob is one job execution handed to the engine.
type ExecJob struct {
	Kind    string
	Request json.RawMessage
	// StoreDir is the job-owned sweep store directory; Resume is set when
	// the directory may already hold records from an interrupted session.
	StoreDir string
	Resume   bool
	// OnProgress observes run completions (calls are serialized).
	OnProgress func(Progress)
}

// Engine executes submitted jobs; the mobisense service façade implements
// it on top of RunBatch / Sweep.Run.
type Engine interface {
	// Prepare validates a request of the given kind ("run" or "sweep")
	// and returns its fingerprint and run count.
	Prepare(kind string, req json.RawMessage) (Prepared, error)
	// Execute runs the job to completion (or ctx cancellation), streaming
	// finished runs into job.StoreDir, and returns the JSON result
	// summary. A ctx cancellation must surface as ctx.Err().
	Execute(ctx context.Context, job ExecJob) (json.RawMessage, error)
	// Schemes, Scenarios and Axes describe the registries for the
	// introspection endpoints; the returned values must be JSON-encodable.
	Schemes() any
	Scenarios() any
	Axes() any
	// Traces aggregates the trace series of the store at storeDir into
	// per-group mean curves for GET /v1/jobs/{id}/traces. The returned
	// value must be JSON-encodable.
	Traces(storeDir string) (any, error)
}

// Event is one server-sent update about a job.
type Event struct {
	// Type is "state" (payload JobView) or "progress" (payload Progress).
	Type string
	// Payload is JSON-encodable.
	Payload any
}

// JobView is the externally visible snapshot of a job, returned by the
// status endpoints and embedded in state events.
type JobView struct {
	ID          string          `json:"id"`
	Kind        string          `json:"kind"`
	State       JobState        `json:"state"`
	Fingerprint string          `json:"fingerprint"`
	CacheHit    bool            `json:"cache_hit,omitempty"`
	Created     time.Time       `json:"created"`
	Request     json.RawMessage `json:"request"`
	Progress    *Progress       `json:"progress,omitempty"`
	Error       string          `json:"error,omitempty"`
	// Result is the job's JSON result summary (aggregates), present once
	// the job is done.
	Result json.RawMessage `json:"result,omitempty"`
}

// jobFile is the persisted section of a job (jobs/<id>/job.json).
type jobFile struct {
	ID          string    `json:"id"`
	Kind        string    `json:"kind"`
	State       JobState  `json:"state"`
	Fingerprint string    `json:"fingerprint"`
	TotalRuns   int       `json:"total_runs"`
	CacheHit    bool      `json:"cache_hit,omitempty"`
	Created     time.Time `json:"created"`
	// Finished is when the job reached a terminal state (zero for jobs
	// persisted before it existed, or not yet terminal); the GC ages
	// terminal jobs by it, falling back to Created.
	Finished time.Time       `json:"finished,omitzero"`
	Request  json.RawMessage `json:"request"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// age returns the terminal job's reference time for TTL pruning.
func (f jobFile) age() time.Time {
	if !f.Finished.IsZero() {
		return f.Finished
	}
	return f.Created
}

// job is the in-memory state of one job. All mutable fields are guarded
// by the manager's mutex.
type job struct {
	meta            jobFile
	progress        *Progress
	cancelRun       context.CancelFunc // non-nil while running
	cancelRequested bool
	subs            []chan Event
}

func (j *job) view() JobView {
	v := JobView{
		ID:          j.meta.ID,
		Kind:        j.meta.Kind,
		State:       j.meta.State,
		Fingerprint: j.meta.Fingerprint,
		CacheHit:    j.meta.CacheHit,
		Created:     j.meta.Created,
		Request:     j.meta.Request,
		Error:       j.meta.Error,
		Result:      j.meta.Result,
	}
	if j.progress != nil {
		p := *j.progress
		v.Progress = &p
	} else if j.meta.TotalRuns > 0 {
		v.Progress = &Progress{Total: j.meta.TotalRuns}
		if j.meta.State == StateDone {
			v.Progress.Done = j.meta.TotalRuns
		}
	}
	return v
}

// DefaultCacheSize bounds the result cache when the caller passes no
// explicit size.
const DefaultCacheSize = 1024

// resultCache is a max-entries LRU over completed job results, keyed by
// request fingerprint. Hits stay O(1): a map finds the entry, the
// intrusive list re-links it to the front, and inserts evict from the
// back once the bound is reached. It is guarded by the manager's mutex.
type resultCache struct {
	max int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type cacheEntry struct {
	key string
	val json.RawMessage
}

func newResultCache(max int) *resultCache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &resultCache{max: max, ll: list.New(), m: map[string]*list.Element{}}
}

func (c *resultCache) get(key string) (json.RawMessage, bool) {
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

func (c *resultCache) add(key string, val json.RawMessage) {
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) remove(key string) {
	if el, ok := c.m[key]; ok {
		c.ll.Remove(el)
		delete(c.m, key)
	}
}

// Manager owns the job queue: submission, persistence, the result cache,
// execution workers and event fan-out.
type Manager struct {
	dir    string
	engine Engine
	log    atomic.Pointer[slog.Logger] // set via SetLogger, read by workers

	ctx    context.Context
	cancel context.CancelFunc
	wake   *sync.Cond
	wg     sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order (restart: created order)
	queue  []string // pending job IDs, FIFO
	cache  *resultCache
	closed bool
}

// SetLogger attaches a structured logger for job lifecycle records; nil
// (the default) discards them. Safe to call while workers are running.
func (m *Manager) SetLogger(l *slog.Logger) {
	if l == nil {
		l = discardLogger()
	}
	m.log.Store(l)
}

// Logger returns the manager's logger (never nil).
func (m *Manager) Logger() *slog.Logger { return m.log.Load() }

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// NewManager opens (or creates) the server data directory, reloads every
// persisted job — terminal jobs populate the result cache, interrupted
// ones re-queue with store resume — and starts `workers` job executors
// (each job saturates the batch runner's own worker pool, so 1 is the
// sensible default). cacheSize bounds the result cache's entry count
// (<= 0 selects DefaultCacheSize); the oldest completed entries are
// evicted LRU once it fills.
func NewManager(dir string, engine Engine, workers, cacheSize int) (*Manager, error) {
	if dir == "" {
		return nil, fmt.Errorf("server: no data directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		dir:    dir,
		engine: engine,
		ctx:    ctx,
		cancel: cancel,
		jobs:   map[string]*job{},
		cache:  newResultCache(cacheSize),
	}
	m.log.Store(discardLogger())
	m.wake = sync.NewCond(&m.mu)
	if err := m.scan(); err != nil {
		cancel()
		return nil, err
	}
	// Queue depth is sampled at scrape time under the manager lock; a
	// later manager in the same process (tests) takes over the series.
	metrics.Default.GaugeFunc("job_queue_depth", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(len(m.queue))
	})
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// scan reloads persisted jobs from the data directory.
func (m *Manager) scan() error {
	entries, err := os.ReadDir(filepath.Join(m.dir, "jobs"))
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	var loaded []*job
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		path := filepath.Join(m.dir, "jobs", e.Name(), "job.json")
		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue // half-created job dir; ignore
			}
			return fmt.Errorf("server: %w", err)
		}
		var meta jobFile
		if err := json.Unmarshal(data, &meta); err != nil {
			return fmt.Errorf("server: %s: %w", path, err)
		}
		if meta.ID != e.Name() {
			return fmt.Errorf("server: %s names job %q", path, meta.ID)
		}
		loaded = append(loaded, &job{meta: meta})
	}
	sort.Slice(loaded, func(i, j int) bool {
		a, b := loaded[i].meta, loaded[j].meta
		if !a.Created.Equal(b.Created) {
			return a.Created.Before(b.Created)
		}
		return a.ID < b.ID
	})
	for _, j := range loaded {
		m.jobs[j.meta.ID] = j
		m.order = append(m.order, j.meta.ID)
		switch {
		case j.meta.State == StateDone && !j.meta.CacheHit && len(j.meta.Result) > 0:
			m.cache.add(j.meta.Fingerprint, j.meta.Result)
		case !j.meta.State.Terminal():
			// Interrupted mid-flight (crash or shutdown): re-queue; the
			// job's store resumes, so only missing runs execute.
			j.meta.State = StateQueued
			m.queue = append(m.queue, j.meta.ID)
		}
	}
	return nil
}

// Close stops accepting jobs, cancels the running ones (their finished
// runs persist; they re-queue on the next start) and waits for the
// workers to exit.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cancel()
	m.wake.Broadcast()
	m.wg.Wait()
}

// Dir returns the server data directory.
func (m *Manager) Dir() string { return m.dir }

// Engine returns the execution engine (for the introspection endpoints).
func (m *Manager) Engine() Engine { return m.engine }

// StoreDir returns the job's sweep-store directory (which may not exist
// yet, or ever, for cache-hit jobs).
func (m *Manager) StoreDir(id string) string {
	return filepath.Join(m.dir, "jobs", id, "store")
}

func newJobID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: job id entropy: %v", err))
	}
	return "j" + hex.EncodeToString(b[:])
}

// Submit validates a request, answers it from the result cache when an
// identical computation already completed, and otherwise persists and
// enqueues a new job.
func (m *Manager) Submit(kind string, req json.RawMessage) (JobView, error) {
	prep, err := m.engine.Prepare(kind, req)
	if err != nil {
		return JobView{}, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return JobView{}, fmt.Errorf("server: shutting down")
	}
	id := newJobID()
	for m.jobs[id] != nil {
		id = newJobID()
	}
	j := &job{meta: jobFile{
		ID:          id,
		Kind:        kind,
		State:       StateQueued,
		Fingerprint: prep.Fingerprint,
		TotalRuns:   prep.TotalRuns,
		Created:     time.Now().UTC(),
		Request:     req,
	}}
	if result, hit := m.cache.get(prep.Fingerprint); hit {
		// An identical computation already completed: answer O(1) from
		// the cache, no store, no execution.
		j.meta.State = StateDone
		j.meta.CacheHit = true
		j.meta.Finished = j.meta.Created
		j.meta.Result = result
	}
	if err := m.persistLocked(j); err != nil {
		return JobView{}, err
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	submittedCounter(kind).Inc()
	if j.meta.CacheHit {
		mCacheHits.Inc()
	}
	m.Logger().Info("job submitted", "job", id, "kind", kind,
		"fingerprint", prep.Fingerprint, "total_runs", prep.TotalRuns,
		"cache_hit", j.meta.CacheHit)
	if !j.meta.State.Terminal() {
		m.queue = append(m.queue, id)
		m.wake.Signal()
	}
	return j.view(), nil
}

// Get returns a job's current view.
func (m *Manager) Get(id string) (JobView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// List returns every job in submission order.
func (m *Manager) List() []JobView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobView, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id].view())
	}
	return out
}

// Cancel stops a queued or running job. Finished runs stay in the job's
// store; cancelling an already-terminal job is a no-op.
func (m *Manager) Cancel(id string) (JobView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, false
	}
	switch j.meta.State {
	case StateQueued:
		j.cancelRequested = true
		j.meta.State = StateCancelled
		j.meta.Finished = time.Now().UTC()
		mJobsCancelled.Inc()
		m.Logger().Info("job cancelled", "job", id, "state", "queued")
		m.persistLocked(j) // best effort; state change survives either way
		m.broadcastLocked(j, Event{Type: "state", Payload: j.view()})
		m.closeSubsLocked(j)
	case StateRunning:
		j.cancelRequested = true
		if j.cancelRun != nil {
			j.cancelRun()
		}
		// The worker observes the cancellation, finishes in-flight runs
		// (they reach the store) and marks the job cancelled.
	}
	return j.view(), true
}

// Subscribe returns a channel of events for a job plus an unsubscribe
// function. The current state (and latest progress) is delivered first;
// the channel closes after a terminal state event.
func (m *Manager) Subscribe(id string) (<-chan Event, func(), bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, nil, false
	}
	ch := make(chan Event, 64)
	ch <- Event{Type: "state", Payload: j.view()}
	if j.progress != nil {
		ch <- Event{Type: "progress", Payload: *j.progress}
	}
	if j.meta.State.Terminal() {
		close(ch)
		return ch, func() {}, true
	}
	j.subs = append(j.subs, ch)
	mSubscribers.Inc()
	unsub := func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		for i, s := range j.subs {
			if s == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				mSubscribers.Dec()
				return
			}
		}
	}
	return ch, unsub, true
}

// worker executes queued jobs until the manager closes.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.closed {
			m.wake.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		id := m.queue[0]
		m.queue = m.queue[1:]
		j := m.jobs[id]
		if j == nil || j.meta.State != StateQueued || j.cancelRequested {
			// nil: the job was GC'd while its id sat in the queue.
			m.mu.Unlock()
			continue
		}
		ctx, cancel := context.WithCancel(m.ctx)
		j.cancelRun = cancel
		j.meta.State = StateRunning
		mJobsRunning.Inc()
		started := time.Now()
		m.Logger().Info("job started", "job", id, "kind", j.meta.Kind, "total_runs", j.meta.TotalRuns)
		m.persistLocked(j)
		m.broadcastLocked(j, Event{Type: "state", Payload: j.view()})
		storeDir := m.StoreDir(id)
		// Resume whenever the store already exists (prior interrupted
		// session); the Store layer treats a fresh directory as a new
		// store either way.
		_, statErr := os.Stat(storeDir)
		exec := ExecJob{
			Kind:     j.meta.Kind,
			Request:  j.meta.Request,
			StoreDir: storeDir,
			Resume:   statErr == nil,
			OnProgress: func(p Progress) {
				m.mu.Lock()
				j.progress = &p
				m.broadcastLocked(j, Event{Type: "progress", Payload: p})
				m.mu.Unlock()
			},
		}
		m.mu.Unlock()

		result, err := m.engine.Execute(ctx, exec)
		cancel()

		m.mu.Lock()
		j.cancelRun = nil
		mJobsRunning.Dec()
		switch {
		case err == nil:
			j.meta.State = StateDone
			j.meta.Result = result
			m.cache.add(j.meta.Fingerprint, result)
			mJobsDone.Inc()
		case j.cancelRequested:
			j.meta.State = StateCancelled
			j.meta.Error = "cancelled"
			mJobsCancelled.Inc()
		case ctx.Err() != nil && m.ctx.Err() != nil:
			// Server shutdown, not a job failure: back to queued so the
			// next start resumes it from the store.
			j.meta.State = StateQueued
		default:
			j.meta.State = StateFailed
			j.meta.Error = err.Error()
			mJobsFailed.Inc()
		}
		if j.meta.State.Terminal() {
			j.meta.Finished = time.Now().UTC()
		}
		if err == nil {
			m.Logger().Info("job finished", "job", id, "state", j.meta.State,
				"elapsed", time.Since(started).Round(time.Millisecond))
		} else {
			m.Logger().Warn("job ended", "job", id, "state", j.meta.State, "err", err,
				"elapsed", time.Since(started).Round(time.Millisecond))
		}
		m.persistLocked(j)
		m.broadcastLocked(j, Event{Type: "state", Payload: j.view()})
		if j.meta.State.Terminal() {
			m.closeSubsLocked(j)
		}
		m.mu.Unlock()
	}
}

// GC prunes terminal jobs (and their on-disk directories, stores
// included) whose terminal timestamp is older than ttl, returning how
// many were removed. Queued and running jobs are never touched, whatever
// their age. A pruned job's result-cache entry is dropped with it —
// unless a surviving done job backs the same fingerprint — so the cache
// never outlives every job that could repopulate it across a restart.
// ttl <= 0 is a no-op.
//
// Directory deletion happens after the manager lock is released: a
// multi-gigabyte layout store must not stall submissions or progress
// broadcasts. If a deletion fails the job is already unregistered; the
// leftover directory reloads as a terminal job on the next start and a
// later sweep retries it.
func (m *Manager) GC(ttl time.Duration) int {
	if ttl <= 0 {
		return 0
	}
	cutoff := time.Now().UTC().Add(-ttl)
	m.mu.Lock()
	var pruned []*job
	kept := m.order[:0]
	// Fingerprints still backed by a kept done job must stay cached.
	keptBacking := map[string]bool{}
	for _, id := range m.order {
		j := m.jobs[id]
		if !j.meta.State.Terminal() || j.meta.age().After(cutoff) {
			kept = append(kept, id)
			if j.meta.State == StateDone && !j.meta.CacheHit {
				keptBacking[j.meta.Fingerprint] = true
			}
			continue
		}
		pruned = append(pruned, j)
	}
	m.order = kept
	for _, j := range pruned {
		if j.meta.State == StateDone && !j.meta.CacheHit && !keptBacking[j.meta.Fingerprint] {
			m.cache.remove(j.meta.Fingerprint)
		}
		m.closeSubsLocked(j)
		delete(m.jobs, j.meta.ID)
	}
	if len(pruned) > 0 {
		// A job cancelled while queued is terminal but its id may still
		// sit in the pending queue; drop pruned ids so the worker never
		// pops an unregistered job.
		queue := m.queue[:0]
		for _, id := range m.queue {
			if m.jobs[id] != nil {
				queue = append(queue, id)
			}
		}
		m.queue = queue
	}
	m.mu.Unlock()

	for _, j := range pruned {
		os.RemoveAll(filepath.Join(m.dir, "jobs", j.meta.ID))
	}
	if len(pruned) > 0 {
		mJobsGCPruned.Add(int64(len(pruned)))
		m.Logger().Info("gc pruned jobs", "count", len(pruned), "ttl", ttl)
	}
	return len(pruned)
}

// persistLocked writes the job's metadata atomically (write + rename).
func (m *Manager) persistLocked(j *job) error {
	dir := filepath.Join(m.dir, "jobs", j.meta.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	data, err := json.MarshalIndent(j.meta, "", "  ")
	if err != nil {
		return fmt.Errorf("server: encode job: %w", err)
	}
	data = append(data, '\n')
	tmp := filepath.Join(dir, "job.json.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "job.json")); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return nil
}

// broadcastLocked fans an event out to the job's subscribers. Progress
// events may be dropped for a slow subscriber (the next one supersedes
// them); the oldest buffered event is evicted for state events so
// terminal notifications always arrive.
func (m *Manager) broadcastLocked(j *job, ev Event) {
	for _, ch := range j.subs {
		deliver(ch, ev)
	}
}

// deliver sends ev without ever blocking: progress events are dropped
// when the subscriber's buffer is full, state events evict the oldest
// buffered event until they fit.
func deliver(ch chan Event, ev Event) {
	for {
		select {
		case ch <- ev:
			mEventsSent.Inc()
			return
		default:
		}
		if ev.Type == "progress" {
			mEventsDropped.Inc()
			return // drop; a newer snapshot will follow
		}
		select { // evict oldest to make room for the state event
		case <-ch:
			mEventsDropped.Inc()
		default:
		}
	}
}

// closeSubsLocked ends every subscription after a terminal event.
func (m *Manager) closeSubsLocked(j *job) {
	for _, ch := range j.subs {
		close(ch)
	}
	mSubscribers.Add(-int64(len(j.subs)))
	j.subs = nil
}
