// mobisense dashboard: vanilla JS over the server's JSON API and SSE hub.
// State refreshes by polling /v1/jobs; the selected job additionally gets
// a live EventSource so progress bars move between polls.

'use strict';

const $ = (sel) => document.querySelector(sel);

const state = {
  jobs: [],
  selected: null,   // job id
  records: [],      // parsed records.jsonl of the selected job
  result: null,     // aggregates of the selected job
  traces: [],       // aggregated trace curves of the selected job
  es: null,         // EventSource for the selected job
  replay: null,     // interval handle of a running replay animation
};

// ---- job list ----------------------------------------------------------

async function refreshJobs() {
  try {
    const res = await fetch('/v1/jobs');
    const body = await res.json();
    state.jobs = body.jobs || [];
    setConn('live');
  } catch (e) {
    setConn('dead');
    return;
  }
  renderJobs();
}

function setConn(cls) {
  const el = $('#conn');
  el.textContent = cls === 'live' ? 'connected' : 'unreachable';
  el.className = 'pill ' + cls;
}

function fmtETA(p) {
  if (!p || !p.eta_ms) return '';
  const s = Math.round(p.eta_ms / 1000);
  if (s < 60) return s + 's';
  return Math.floor(s / 60) + 'm' + (s % 60) + 's';
}

function renderJobs() {
  const tbody = $('#jobs tbody');
  tbody.textContent = '';
  $('#no-jobs').hidden = state.jobs.length > 0;
  for (const j of [...state.jobs].reverse()) {
    const tr = document.createElement('tr');
    tr.className = 'selectable' + (j.id === state.selected ? ' selected' : '');
    const p = j.progress;
    const frac = p && p.total ? p.done / p.total : (j.state === 'done' ? 1 : 0);
    tr.innerHTML =
      `<td>${j.id}</td><td>${j.kind}</td>` +
      `<td><span class="pill ${j.state}">${j.state}${j.cache_hit ? ' (cache)' : ''}</span></td>` +
      `<td><span class="bar"><i style="width:${Math.round(100 * frac)}%"></i></span> ` +
      `${p ? p.done + '/' + p.total : ''}</td>` +
      `<td>${j.state === 'running' ? fmtETA(p) : ''}</td><td></td>`;
    if (j.state === 'queued' || j.state === 'running') {
      const btn = document.createElement('button');
      btn.textContent = 'cancel';
      btn.onclick = (ev) => { ev.stopPropagation(); fetch('/v1/jobs/' + j.id, {method: 'DELETE'}); };
      tr.lastElementChild.appendChild(btn);
    }
    tr.onclick = () => selectJob(j.id);
    tbody.appendChild(tr);
  }
}

// ---- selected job: SSE + detail ---------------------------------------

function selectJob(id) {
  state.selected = id;
  if (state.es) { state.es.close(); state.es = null; }
  const es = new EventSource('/v1/jobs/' + id + '/events');
  es.addEventListener('progress', (ev) => {
    const p = JSON.parse(ev.data);
    const j = state.jobs.find((j) => j.id === id);
    if (j) { j.progress = p; renderJobs(); }
  });
  es.addEventListener('state', (ev) => {
    const v = JSON.parse(ev.data);
    const i = state.jobs.findIndex((j) => j.id === id);
    if (i >= 0) state.jobs[i] = v;
    renderJobs();
    loadDetail(id);
  });
  es.onerror = () => es.close();
  state.es = es;
  loadDetail(id);
}

async function loadDetail(id) {
  $('#detail').hidden = false;
  $('#detail-id').textContent = id;
  const j = state.jobs.find((j) => j.id === id);
  const st = $('#detail-state');
  st.textContent = j ? j.state : '';
  st.className = 'pill ' + (j ? j.state : '');
  state.result = j && j.result ? j.result : null;

  state.records = [];
  try {
    const res = await fetch('/v1/jobs/' + id + '/records');
    if (res.ok) {
      const text = await res.text();
      state.records = text.split('\n').filter(Boolean).map((l) => JSON.parse(l));
    }
  } catch (e) { /* job may have no store */ }

  state.traces = [];
  try {
    const res = await fetch('/v1/jobs/' + id + '/traces');
    if (res.ok) {
      const body = await res.json();
      state.traces = body.traces || [];
    }
  } catch (e) { /* job may have no store */ }

  drawAggregates();
  drawTraceAgg();
  setupRunPickers();
}

// ---- aggregate chart ---------------------------------------------------

function aggregates() {
  if (state.result && state.result.aggregates) return state.result.aggregates;
  return [];
}

function aggLabel(a) {
  let l = a.scheme;
  if (a.scenario) l += '/' + a.scenario;
  l += ' n=' + a.n;
  for (const ax of a.axes || []) l += ' ' + ax.name + '=' + ax.value;
  return l;
}

function drawAggregates() {
  const canvas = $('#agg-chart');
  const ctx = canvas.getContext('2d');
  ctx.clearRect(0, 0, canvas.width, canvas.height);
  const aggs = aggregates();
  const metric = $('#agg-metric').value;
  if (!aggs.length) {
    drawEmpty(ctx, canvas, 'no aggregates yet');
    return;
  }
  const vals = aggs.map((a) => (a[metric] || {}).mean || 0);
  const errs = aggs.map((a) => (a[metric] || {}).ci95 || 0);
  const max = Math.max(...vals.map((v, i) => v + errs[i]), 1e-9);
  const pad = 34, w = canvas.width - pad - 8, h = canvas.height - pad - 8;
  const bw = Math.min(48, w / vals.length * 0.7);
  ctx.font = '10px ui-monospace, monospace';
  // y axis
  ctx.strokeStyle = '#232c37';
  ctx.fillStyle = '#7a8694';
  for (let g = 0; g <= 4; g++) {
    const y = 8 + h - (h * g) / 4;
    ctx.beginPath(); ctx.moveTo(pad, y); ctx.lineTo(pad + w, y); ctx.stroke();
    ctx.fillText(short(max * g / 4), 2, y + 3);
  }
  vals.forEach((v, i) => {
    const x = pad + (w * (i + 0.5)) / vals.length - bw / 2;
    const bh = (h * v) / max;
    ctx.fillStyle = '#4fb6a2';
    ctx.fillRect(x, 8 + h - bh, bw, bh);
    // 95% CI whisker
    if (errs[i] > 0) {
      const cx = x + bw / 2;
      const y1 = 8 + h - (h * Math.min(max, v + errs[i])) / max;
      const y2 = 8 + h - (h * Math.max(0, v - errs[i])) / max;
      ctx.strokeStyle = '#d7dde4';
      ctx.beginPath(); ctx.moveTo(cx, y1); ctx.lineTo(cx, y2); ctx.stroke();
    }
    ctx.save();
    ctx.translate(x + bw / 2, canvas.height - 2);
    ctx.rotate(-Math.PI / 8);
    ctx.fillStyle = '#7a8694';
    ctx.textAlign = 'right';
    ctx.fillText(aggLabel(aggs[i]).slice(0, 28), 0, 0);
    ctx.restore();
  });
}

function short(v) {
  if (v >= 1e6) return (v / 1e6).toFixed(1) + 'M';
  if (v >= 1e3) return (v / 1e3).toFixed(1) + 'k';
  if (v >= 10) return v.toFixed(0);
  return v.toFixed(2);
}

function drawEmpty(ctx, canvas, msg) {
  ctx.fillStyle = '#7a8694';
  ctx.font = '12px ui-monospace, monospace';
  ctx.textAlign = 'center';
  ctx.fillText(msg, canvas.width / 2, canvas.height / 2);
  ctx.textAlign = 'left';
}

// ---- aggregated trace curves ------------------------------------------

const groupColors = ['#4fb6a2', '#d0a24f', '#7aa2e8', '#d06a6a', '#a27ad0', '#6ac08a'];

function traceAggLabel(tr) {
  let l = tr.scheme;
  if (tr.scenario) l += '/' + tr.scenario;
  l += ' n=' + tr.n;
  for (const ax of tr.axes || []) l += ' ' + ax.name + '=' + ax.value;
  return l;
}

// drawTraceAgg renders every group's mean curve for the selected metric,
// with a translucent ±95% CI band behind each line.
function drawTraceAgg() {
  const canvas = $('#traceagg-chart');
  const ctx = canvas.getContext('2d');
  ctx.clearRect(0, 0, canvas.width, canvas.height);
  const traces = state.traces || [];
  $('#traceagg-fig').hidden = traces.length === 0;
  if (!traces.length) return;
  const key = $('#traceagg-metric').value;
  let tMax = 1e-9, vMax = 1e-9;
  for (const tr of traces) {
    for (const p of tr.points || []) {
      tMax = Math.max(tMax, p.t);
      vMax = Math.max(vMax, (p[key] || {}).mean + ((p[key] || {}).ci95 || 0));
    }
  }
  const pad = 34, w = canvas.width - pad - 8, h = canvas.height - 8 - 18;
  const px = (t) => pad + (w * t) / tMax;
  const py = (v) => 8 + h - (h * Math.max(0, Math.min(vMax, v))) / vMax;
  ctx.font = '10px ui-monospace, monospace';
  ctx.strokeStyle = '#232c37';
  ctx.fillStyle = '#7a8694';
  for (let g = 0; g <= 4; g++) {
    const y = 8 + h - (h * g) / 4;
    ctx.beginPath(); ctx.moveTo(pad, y); ctx.lineTo(pad + w, y); ctx.stroke();
    ctx.fillText(short(vMax * g / 4), 2, y + 3);
  }
  ctx.fillText('t=' + short(tMax) + 's', pad + w - 48, canvas.height - 4);
  traces.forEach((tr, gi) => {
    const pts = tr.points || [];
    if (!pts.length) return;
    const color = groupColors[gi % groupColors.length];
    // CI band: mean+ci forward, mean-ci back.
    ctx.fillStyle = color + '33';
    ctx.beginPath();
    pts.forEach((p, i) => {
      const m = (p[key] || {}).mean || 0, ci = (p[key] || {}).ci95 || 0;
      if (i === 0) ctx.moveTo(px(p.t), py(m + ci)); else ctx.lineTo(px(p.t), py(m + ci));
    });
    for (let i = pts.length - 1; i >= 0; i--) {
      const p = pts[i];
      const m = (p[key] || {}).mean || 0, ci = (p[key] || {}).ci95 || 0;
      ctx.lineTo(px(p.t), py(m - ci));
    }
    ctx.closePath();
    ctx.fill();
    // mean line
    ctx.strokeStyle = color;
    ctx.lineWidth = 1.5;
    ctx.beginPath();
    pts.forEach((p, i) => {
      const m = (p[key] || {}).mean || 0;
      if (i === 0) ctx.moveTo(px(p.t), py(m)); else ctx.lineTo(px(p.t), py(m));
    });
    ctx.stroke();
    ctx.lineWidth = 1;
    // legend entry
    ctx.fillStyle = color;
    ctx.fillRect(pad + 4, 12 + gi * 12, 8, 8);
    ctx.fillStyle = '#7a8694';
    ctx.fillText(traceAggLabel(tr).slice(0, 40), pad + 16, 19 + gi * 12);
  });
}

// ---- deployment replay -------------------------------------------------

function replayRun() {
  const idx = Number($('#replay-run').value);
  return state.records.find((r) => r.index === idx && r.trace &&
    r.trace.some((s) => s.layout && s.layout.length));
}

function stopReplay() {
  if (state.replay) { clearInterval(state.replay); state.replay = null; }
  $('#replay-play').textContent = 'play';
}

function toggleReplay() {
  if (state.replay) { stopReplay(); return; }
  const run = replayRun();
  if (!run) return;
  const slider = $('#replay-slider');
  $('#replay-play').textContent = 'pause';
  state.replay = setInterval(() => {
    let i = Number(slider.value) + 1;
    if (i > Number(slider.max)) i = 0; // loop
    slider.value = i;
    drawReplayFrame();
  }, 150);
}

function setupReplay() {
  stopReplay();
  const runs = state.records.filter((r) => r.trace &&
    r.trace.some((s) => s.layout && s.layout.length));
  fillPicker($('#replay-run'), runs);
  $('#replay-fig').hidden = runs.length === 0;
  if (!runs.length) return;
  const run = replayRun();
  const slider = $('#replay-slider');
  slider.max = run ? run.trace.length - 1 : 0;
  slider.value = 0;
  drawReplayFrame();
}

function drawReplayFrame() {
  const canvas = $('#replay-chart');
  const ctx = canvas.getContext('2d');
  ctx.clearRect(0, 0, canvas.width, canvas.height);
  const run = replayRun();
  if (!run) { drawEmpty(ctx, canvas, 'no replayable runs'); return; }
  const i = Math.min(Number($('#replay-slider').value), run.trace.length - 1);
  const s = run.trace[i];
  $('#replay-time').textContent =
    't=' + s.t + 's cov=' + (100 * s.coverage).toFixed(1) + '%';
  const pts = s.layout || [];
  if (!pts.length) { drawEmpty(ctx, canvas, 'no layout in sample'); return; }
  // Fixed scale over the whole series so the animation doesn't rescale
  // frame to frame.
  let minX = Infinity, maxX = -Infinity, minY = Infinity, maxY = -Infinity;
  for (const sm of run.trace) {
    for (const p of sm.layout || []) {
      minX = Math.min(minX, p.x); maxX = Math.max(maxX, p.x);
      minY = Math.min(minY, p.y); maxY = Math.max(maxY, p.y);
    }
  }
  const span = Math.max(maxX - minX, maxY - minY, 1e-9);
  const pad = 12, sc = (canvas.width - 2 * pad) / span;
  ctx.fillStyle = '#4fb6a2';
  for (const p of pts) {
    const x = pad + (p.x - minX) * sc;
    const y = canvas.height - pad - (p.y - minY) * sc;
    ctx.beginPath();
    ctx.arc(x, y, 2.2, 0, 2 * Math.PI);
    ctx.fill();
  }
}

// ---- trace + layout charts --------------------------------------------

function runName(r) {
  let l = '#' + r.index + ' ' + r.scheme;
  if (r.scenario) l += '/' + r.scenario;
  l += ' n=' + r.n + ' r' + r.repeat;
  return l;
}

function setupRunPickers() {
  const traced = state.records.filter((r) => r.trace && r.trace.length);
  const withLayout = state.records.filter((r) => r.positions && r.positions.length);
  fillPicker($('#trace-run'), traced);
  fillPicker($('#layout-run'), withLayout);
  $('#trace-fig').hidden = traced.length === 0;
  $('#layout-fig').hidden = withLayout.length === 0;
  drawTrace();
  drawLayout();
  setupReplay();
}

function fillPicker(sel, runs) {
  sel.textContent = '';
  runs.forEach((r) => {
    const o = document.createElement('option');
    o.value = r.index;
    o.textContent = runName(r);
    sel.appendChild(o);
  });
}

function drawTrace() {
  const canvas = $('#trace-chart');
  const ctx = canvas.getContext('2d');
  ctx.clearRect(0, 0, canvas.width, canvas.height);
  const idx = Number($('#trace-run').value);
  const run = state.records.find((r) => r.index === idx && r.trace);
  if (!run) { drawEmpty(ctx, canvas, 'no traced runs'); return; }
  const key = $('#trace-metric').value;
  const pts = run.trace.map((s) => [s.t, s[key] || 0]);
  const tMax = Math.max(...pts.map((p) => p[0]), 1e-9);
  const vMax = Math.max(...pts.map((p) => p[1]), 1e-9);
  const pad = 34, w = canvas.width - pad - 8, h = canvas.height - 8 - 18;
  ctx.font = '10px ui-monospace, monospace';
  ctx.strokeStyle = '#232c37';
  ctx.fillStyle = '#7a8694';
  for (let g = 0; g <= 4; g++) {
    const y = 8 + h - (h * g) / 4;
    ctx.beginPath(); ctx.moveTo(pad, y); ctx.lineTo(pad + w, y); ctx.stroke();
    ctx.fillText(short(vMax * g / 4), 2, y + 3);
  }
  ctx.fillText('t=' + short(tMax) + 's', pad + w - 48, canvas.height - 4);
  ctx.strokeStyle = '#4fb6a2';
  ctx.lineWidth = 1.5;
  ctx.beginPath();
  pts.forEach(([t, v], i) => {
    const x = pad + (w * t) / tMax;
    const y = 8 + h - (h * v) / vMax;
    if (i === 0) ctx.moveTo(x, y); else ctx.lineTo(x, y);
  });
  ctx.stroke();
  ctx.lineWidth = 1;
}

function drawLayout() {
  const canvas = $('#layout-chart');
  const ctx = canvas.getContext('2d');
  ctx.clearRect(0, 0, canvas.width, canvas.height);
  const idx = Number($('#layout-run').value);
  const run = state.records.find((r) => r.index === idx && r.positions);
  if (!run) { drawEmpty(ctx, canvas, 'no layout records'); return; }
  const initial = $('#layout-initial').checked && run.initial_positions;
  const pts = initial ? run.initial_positions : run.positions;
  const xs = pts.map((p) => p.x), ys = pts.map((p) => p.y);
  const minX = Math.min(...xs), maxX = Math.max(...xs, minX + 1e-9);
  const minY = Math.min(...ys), maxY = Math.max(...ys, minY + 1e-9);
  const span = Math.max(maxX - minX, maxY - minY);
  const pad = 12, s = (canvas.width - 2 * pad) / span;
  ctx.fillStyle = initial ? '#d0a24f' : '#4fb6a2';
  for (const p of pts) {
    const x = pad + (p.x - minX) * s;
    const y = canvas.height - pad - (p.y - minY) * s;
    ctx.beginPath();
    ctx.arc(x, y, 2.2, 0, 2 * Math.PI);
    ctx.fill();
  }
}

// ---- metrics pane ------------------------------------------------------

async function refreshMetrics() {
  try {
    const res = await fetch('/metrics');
    const text = await res.text();
    $('#metrics').textContent = text
      .split('\n')
      .filter((l) => l && !l.startsWith('#'))
      .join('\n');
  } catch (e) { /* leave the previous snapshot */ }
}

// ---- wiring ------------------------------------------------------------

$('#agg-metric').onchange = drawAggregates;
$('#traceagg-metric').onchange = drawTraceAgg;
$('#trace-run').onchange = drawTrace;
$('#trace-metric').onchange = drawTrace;
$('#layout-run').onchange = drawLayout;
$('#layout-initial').onchange = drawLayout;
$('#replay-run').onchange = () => { stopReplay(); setupReplay(); };
$('#replay-slider').oninput = () => { stopReplay(); drawReplayFrame(); };
$('#replay-play').onclick = toggleReplay;

refreshJobs();
refreshMetrics();
setInterval(refreshJobs, 3000);
setInterval(refreshMetrics, 5000);
