// Package sim provides the discrete-event simulation engine underlying the
// deployment schemes: a time-ordered event queue with deterministic
// tie-breaking and a seeded random source. The paper's evaluation (§4.3)
// uses an event-based simulator; this is its Go equivalent.
package sim

import (
	"container/heap"
	"math/rand/v2"
)

// Engine is a discrete-event scheduler. Time is in seconds. Events
// scheduled for the same instant fire in scheduling order, which makes runs
// with the same seed byte-for-byte reproducible.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap
	rng    *rand.Rand
}

// NewEngine creates an engine whose random source is seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule enqueues fn to run delay seconds from now. Negative delays are
// clamped to zero (the event fires after already-queued events at the
// current instant).
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt enqueues fn at absolute time t. Times in the past are clamped
// to the current time.
func (e *Engine) ScheduleAt(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{time: t, seq: e.seq, fn: fn})
}

// Step executes the earliest pending event. It returns false when the queue
// is empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.time
	ev.fn()
	return true
}

// RunUntil executes events in order until the queue is empty or the next
// event is later than t, then advances the clock to t.
func (e *Engine) RunUntil(t float64) {
	for len(e.events) > 0 && e.events[0].time <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

type event struct {
	time float64
	seq  uint64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}
