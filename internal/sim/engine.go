// Package sim provides the discrete-event simulation engine underlying the
// deployment schemes: a time-ordered event queue with deterministic
// tie-breaking and a seeded random source. The paper's evaluation (§4.3)
// uses an event-based simulator; this is its Go equivalent.
package sim

import (
	"math/rand/v2"
	"sync"
)

// Engine is a discrete-event scheduler. Time is in seconds. Events
// scheduled for the same instant fire in scheduling order, which makes runs
// with the same seed byte-for-byte reproducible.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap
	rng    *rand.Rand
}

// heapPool recycles event-heap backing arrays across engines: batch
// sweeps build one engine per run, and regrowing the heap to thousands
// of events every run is pure GC pressure.
var heapPool sync.Pool

// NewEngine creates an engine whose random source is seeded with seed.
// The event heap reuses a pooled backing array when one is available
// (see Release); heap capacity never influences event ordering, so
// pooled engines stay byte-for-byte deterministic.
func NewEngine(seed uint64) *Engine {
	e := &Engine{
		rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
	if v := heapPool.Get(); v != nil {
		e.events = (*v.(*eventHeap))[:0]
	}
	return e
}

// Release returns the engine's event-heap backing array to the shared
// pool for future engines. Pending events are dropped and their closures
// released. The engine must not be used after Release.
func (e *Engine) Release() {
	h := e.events[:cap(e.events)]
	clear(h) // drop closure references so pooled arrays retain nothing
	h = h[:0]
	e.events = nil
	heapPool.Put(&h)
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule enqueues fn to run delay seconds from now. Negative delays are
// clamped to zero (the event fires after already-queued events at the
// current instant).
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt enqueues fn at absolute time t. Times in the past are clamped
// to the current time.
func (e *Engine) ScheduleAt(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.events.push(event{time: t, seq: e.seq, fn: fn})
}

// ScheduleEvery enqueues fn at absolute time start and then every stride
// seconds for as long as fn returns true. The periodic event is an
// ordinary queue entry: it interleaves deterministically with other events
// via the (time, seq) order, and — as long as fn does not touch the
// engine's random source — its presence cannot change what any other event
// computes, only when the clock happens to pause. Telemetry samplers rely
// on exactly that property.
func (e *Engine) ScheduleEvery(start, stride float64, fn func() bool) {
	if stride <= 0 {
		panic("sim: ScheduleEvery with non-positive stride")
	}
	var tick func()
	tick = func() {
		if fn() {
			e.Schedule(stride, tick)
		}
	}
	e.ScheduleAt(start, tick)
}

// Step executes the earliest pending event. It returns false when the queue
// is empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.events.pop()
	e.now = ev.time
	ev.fn()
	return true
}

// RunUntil executes events in order until the queue is empty or the next
// event is later than t, then advances the clock to t.
func (e *Engine) RunUntil(t float64) {
	for len(e.events) > 0 && e.events[0].time <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

type event struct {
	time float64
	seq  uint64
	fn   func()
}

// eventHeap is a hand-rolled binary min-heap over (time, seq). The
// container/heap interface would box every pushed and popped event in an
// interface value — one allocation per event, on a path that fires once
// per sensor per period — so the sift operations are implemented
// directly. The (time, seq) order is a strict total order, hence the pop
// sequence is unique and independent of the heap's internal layout.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	// Sift up.
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	ev := s[0]
	s[0] = s[n]
	s[n] = event{} // release the closure
	s = s[:n]
	*h = s
	// Sift down.
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && s.less(right, left) {
			min = right
		}
		if !s.less(min, i) {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return ev
}
