package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.RunUntil(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 10 {
		t.Errorf("now = %v, want 10", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.RunUntil(5)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of order: %v", order)
		}
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	e := NewEngine(1)
	fired := make(map[float64]bool)
	e.Schedule(1, func() { fired[1] = true })
	e.Schedule(5, func() { fired[5] = true })
	e.Schedule(9, func() { fired[9] = true })
	e.RunUntil(5)
	if !fired[1] || !fired[5] || fired[9] {
		t.Errorf("fired = %v", fired)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d", e.Pending())
	}
	e.RunUntil(20)
	if !fired[9] {
		t.Error("event at 9 never fired")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine(1)
	var times []float64
	var recur func()
	recur = func() {
		times = append(times, e.Now())
		if e.Now() < 4 {
			e.Schedule(1, recur)
		}
	}
	e.Schedule(1, recur)
	e.RunUntil(10)
	want := []float64{1, 2, 3, 4}
	if len(times) != len(want) {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("times[%d] = %v, want %v", i, times[i], want[i])
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.Schedule(2, func() {
		e.Schedule(-5, func() { ran = true })
	})
	e.RunUntil(2)
	if !ran {
		t.Error("negative-delay event should run at current time")
	}
	if e.Now() != 2 {
		t.Errorf("now = %v", e.Now())
	}
}

func TestStepEmptyQueue(t *testing.T) {
	e := NewEngine(1)
	if e.Step() {
		t.Error("Step on empty queue should return false")
	}
}

func TestDeterministicRand(t *testing.T) {
	a := NewEngine(42)
	b := NewEngine(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Float64() != b.Rand().Float64() {
			t.Fatal("same seed should give identical streams")
		}
	}
	c := NewEngine(43)
	same := true
	for i := 0; i < 10; i++ {
		if a.Rand().Float64() != c.Rand().Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical streams")
	}
}
