// Package spatial provides a uniform-grid spatial index for neighbor
// queries over moving sensors. The deployment simulator queries "all
// sensors within rc of p" once per sensor per period; the grid makes that
// O(neighbors) instead of O(n).
package spatial

import (
	"math"
	"slices"
	"sync"

	"mobisense/internal/geom"
)

// Index is a uniform hash-grid over 2-D points identified by dense integer
// IDs. The zero value is not usable; construct with New.
type Index struct {
	cellSize float64
	cells    map[cellKey][]int32
	pos      []geom.Vec
	present  []bool
	count    int
}

type cellKey struct{ x, y int32 }

// indexPool recycles released indexes (their cell map, bucket slices and
// dense arrays) across runs: the deployment simulator builds one index
// per run, and sweeps run thousands.
var indexPool sync.Pool

// New creates an index with the given cell size. Choosing the typical query
// radius as the cell size keeps each query to a 3×3 cell scan. A pooled
// index is reused when available (see Release); reuse never changes query
// results or iteration determinism, because every pooled bucket is
// emptied first.
func New(cellSize float64, capacityHint int) *Index {
	if cellSize <= 0 {
		cellSize = 1
	}
	if v := indexPool.Get(); v != nil {
		ix := v.(*Index)
		ix.reset(cellSize)
		return ix
	}
	return &Index{
		cellSize: cellSize,
		cells:    make(map[cellKey][]int32, capacityHint),
		pos:      make([]geom.Vec, 0, capacityHint),
		present:  make([]bool, 0, capacityHint),
	}
}

// Release returns the index to the shared pool for reuse by a future
// New. The index must not be used after Release.
func (ix *Index) Release() {
	indexPool.Put(ix)
}

// reset empties a pooled index for a new run, keeping the cell map (and
// its bucket slices) and the dense arrays' capacity.
func (ix *Index) reset(cellSize float64) {
	ix.cellSize = cellSize
	for k, bucket := range ix.cells {
		ix.cells[k] = bucket[:0]
	}
	ix.pos = ix.pos[:0]
	ix.present = ix.present[:0]
	ix.count = 0
}

func (ix *Index) key(p geom.Vec) cellKey {
	return cellKey{
		x: int32(math.Floor(p.X / ix.cellSize)),
		y: int32(math.Floor(p.Y / ix.cellSize)),
	}
}

// Insert adds or moves the point with the given ID to position p. IDs must
// be small non-negative integers (they index an internal dense array).
func (ix *Index) Insert(id int, p geom.Vec) {
	for id >= len(ix.pos) {
		ix.pos = append(ix.pos, geom.Vec{})
		ix.present = append(ix.present, false)
	}
	if ix.present[id] {
		ix.removeFromCell(id, ix.key(ix.pos[id]))
	} else {
		ix.count++
	}
	ix.pos[id] = p
	ix.present[id] = true
	k := ix.key(p)
	ix.cells[k] = append(ix.cells[k], int32(id))
}

// Remove deletes the point with the given ID, if present.
func (ix *Index) Remove(id int) {
	if id < 0 || id >= len(ix.present) || !ix.present[id] {
		return
	}
	ix.removeFromCell(id, ix.key(ix.pos[id]))
	ix.present[id] = false
	ix.count--
}

func (ix *Index) removeFromCell(id int, k cellKey) {
	bucket := ix.cells[k]
	for i, v := range bucket {
		if v == int32(id) {
			bucket[i] = bucket[len(bucket)-1]
			ix.cells[k] = bucket[:len(bucket)-1]
			return
		}
	}
}

// Position returns the indexed position of id and whether it is present.
func (ix *Index) Position(id int) (geom.Vec, bool) {
	if id < 0 || id >= len(ix.present) || !ix.present[id] {
		return geom.Vec{}, false
	}
	return ix.pos[id], true
}

// ForNeighbors calls fn for every indexed point within radius r of p,
// including a point exactly at p (callers exclude self by ID). Iteration
// order is deterministic for a fixed insertion history.
func (ix *Index) ForNeighbors(p geom.Vec, r float64, fn func(id int, q geom.Vec)) {
	r2 := r * r
	lo := ix.key(geom.V(p.X-r, p.Y-r))
	hi := ix.key(geom.V(p.X+r, p.Y+r))
	for cy := lo.y; cy <= hi.y; cy++ {
		for cx := lo.x; cx <= hi.x; cx++ {
			for _, id := range ix.cells[cellKey{cx, cy}] {
				q := ix.pos[id]
				if q.Dist2(p) <= r2 {
					fn(int(id), q)
				}
			}
		}
	}
}

// Neighbors returns the IDs of all points within radius r of p, in
// ascending ID order.
func (ix *Index) Neighbors(p geom.Vec, r float64) []int {
	var out []int
	ix.ForNeighbors(p, r, func(id int, _ geom.Vec) { out = append(out, id) })
	slices.Sort(out)
	return out
}

// Len returns the number of points currently in the index.
func (ix *Index) Len() int { return ix.count }
