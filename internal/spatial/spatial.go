// Package spatial provides a uniform-grid spatial index for neighbor
// queries over moving sensors. The deployment simulator queries "all
// sensors within rc of p" once per sensor per period; the grid makes that
// O(neighbors) instead of O(n).
//
// When the point population lives inside known bounds (the usual case: a
// deployment field), the index uses a dense cell array over a flat int32
// arena instead of a map of slices, so Insert/Move/Neighbors touch no
// per-cell heap objects. Points that stray outside the bounds fall back
// to a small overflow map, so bounded construction is an optimization,
// never a correctness constraint.
package spatial

import (
	"math"
	"slices"
	"sync"

	"mobisense/internal/geom"
)

// Index is a uniform grid over 2-D points identified by dense integer
// IDs. The zero value is not usable; construct with New or NewBounded.
type Index struct {
	cellSize float64

	// Dense grid (bounded mode). Cell (cx, cy) in key space maps to
	// dense[(cy-oy)*ncx + (cx-ox)] when ox <= cx < ox+ncx and likewise
	// for y; its elements live in arena[off : off+n].
	bounded  bool
	ox, oy   int32
	ncx, ncy int32
	dense    []bucket
	arena    []int32
	freeByC  [arenaClasses][]int32 // free block offsets by capacity class

	// overflow holds cells outside the dense range (and every cell in
	// unbounded mode).
	overflow map[cellKey][]int32

	pos     []geom.Vec
	present []bool
	count   int
}

// bucket is one dense cell: a block of the shared arena. Capacity is
// always 0 or 1<<class with class >= minClass.
type bucket struct{ off, n, cap int32 }

type cellKey struct{ x, y int32 }

const (
	minClass     = 2 // smallest arena block: 4 elements
	arenaClasses = 28
	// maxDenseCells caps the dense grid size; absurdly fine cell sizes
	// over large bounds fall back to the overflow map rather than
	// allocating a huge, mostly-empty array.
	maxDenseCells = 1 << 20
)

// indexPool recycles released indexes (their grid, arena, overflow map
// and dense arrays) across runs: the deployment simulator builds one
// index per run, and sweeps run thousands.
var indexPool sync.Pool

// New creates an unbounded index with the given cell size. Choosing the
// typical query radius as the cell size keeps each query to a 3×3 cell
// scan. A pooled index is reused when available (see Release); reuse
// never changes query results or iteration determinism, because every
// pooled bucket is emptied first.
func New(cellSize float64, capacityHint int) *Index {
	return newIndex(cellSize, false, geom.Rect{}, capacityHint)
}

// NewBounded creates an index whose points are expected to stay within
// bounds b (e.g. the deployment field). Cells inside the bounds use a
// dense array with flat bucket storage; points outside are still indexed
// correctly through an overflow map.
func NewBounded(cellSize float64, b geom.Rect, capacityHint int) *Index {
	return newIndex(cellSize, true, b, capacityHint)
}

func newIndex(cellSize float64, bounded bool, b geom.Rect, capacityHint int) *Index {
	if cellSize <= 0 {
		cellSize = 1
	}
	var ix *Index
	if v := indexPool.Get(); v != nil {
		ix = v.(*Index)
	} else {
		ix = &Index{
			overflow: make(map[cellKey][]int32, capacityHint),
			pos:      make([]geom.Vec, 0, capacityHint),
			present:  make([]bool, 0, capacityHint),
		}
	}
	ix.reset(cellSize, bounded, b)
	return ix
}

// Release returns the index to the shared pool for reuse by a future
// New/NewBounded. The index must not be used after Release.
func (ix *Index) Release() {
	indexPool.Put(ix)
}

// reset reconfigures a (possibly pooled) index for a new run, keeping
// the overflow map's bucket slices, the arena and the dense arrays'
// capacity.
func (ix *Index) reset(cellSize float64, bounded bool, b geom.Rect) {
	ix.cellSize = cellSize
	ix.bounded = false
	if bounded {
		// One cell of margin on each side absorbs points that brush the
		// boundary; anything further out lands in the overflow map.
		lo := ix.key(b.Min)
		hi := ix.key(b.Max)
		ncx := int64(hi.x-lo.x) + 3
		ncy := int64(hi.y-lo.y) + 3
		if ncx > 0 && ncy > 0 && ncx*ncy <= maxDenseCells {
			ix.bounded = true
			ix.ox, ix.oy = lo.x-1, lo.y-1
			ix.ncx, ix.ncy = int32(ncx), int32(ncy)
			n := int(ncx * ncy)
			if cap(ix.dense) < n {
				ix.dense = make([]bucket, n)
			} else {
				ix.dense = ix.dense[:n]
				clear(ix.dense)
			}
		}
	}
	if !ix.bounded {
		ix.dense = ix.dense[:0]
	}
	ix.arena = ix.arena[:0]
	for c := range ix.freeByC {
		ix.freeByC[c] = ix.freeByC[c][:0]
	}
	for k, bkt := range ix.overflow {
		ix.overflow[k] = bkt[:0]
	}
	ix.pos = ix.pos[:0]
	ix.present = ix.present[:0]
	ix.count = 0
}

func (ix *Index) key(p geom.Vec) cellKey {
	return cellKey{
		x: int32(math.Floor(p.X / ix.cellSize)),
		y: int32(math.Floor(p.Y / ix.cellSize)),
	}
}

// denseIdx returns the dense-array index for a cell key, or -1 if the
// cell is outside the dense range (or the index is unbounded).
func (ix *Index) denseIdx(k cellKey) int32 {
	if !ix.bounded {
		return -1
	}
	gx, gy := k.x-ix.ox, k.y-ix.oy
	if gx < 0 || gx >= ix.ncx || gy < 0 || gy >= ix.ncy {
		return -1
	}
	return gy*ix.ncx + gx
}

// allocBlock returns the arena offset of a free block with capacity
// 1<<class, reusing a freed block when one is available.
func (ix *Index) allocBlock(class int32) int32 {
	if fl := ix.freeByC[class]; len(fl) > 0 {
		off := fl[len(fl)-1]
		ix.freeByC[class] = fl[:len(fl)-1]
		return off
	}
	off := int32(len(ix.arena))
	ix.arena = append(ix.arena, make([]int32, 1<<class)...)
	return off
}

func classOf(capacity int32) int32 {
	c := int32(minClass)
	for int32(1)<<c < capacity {
		c++
	}
	return c
}

// appendDense appends id to the dense cell di, growing its arena block
// when full. Element order within a cell is append order (with
// swap-remove), matching the map-of-slices implementation exactly.
func (ix *Index) appendDense(di int32, id int32) {
	b := &ix.dense[di]
	if b.n == b.cap {
		newCap := int32(1) << minClass
		if b.cap > 0 {
			newCap = b.cap * 2
		}
		class := classOf(newCap)
		newOff := ix.allocBlock(class)
		copy(ix.arena[newOff:newOff+b.n], ix.arena[b.off:b.off+b.n])
		if b.cap > 0 {
			ix.freeByC[classOf(b.cap)] = append(ix.freeByC[classOf(b.cap)], b.off)
		}
		b.off, b.cap = newOff, int32(1)<<class
	}
	ix.arena[b.off+b.n] = id
	b.n++
}

// Insert adds or moves the point with the given ID to position p. IDs must
// be small non-negative integers (they index an internal dense array).
func (ix *Index) Insert(id int, p geom.Vec) {
	for id >= len(ix.pos) {
		ix.pos = append(ix.pos, geom.Vec{})
		ix.present = append(ix.present, false)
	}
	if ix.present[id] {
		ix.removeFromCell(id, ix.key(ix.pos[id]))
	} else {
		ix.count++
	}
	ix.pos[id] = p
	ix.present[id] = true
	k := ix.key(p)
	if di := ix.denseIdx(k); di >= 0 {
		ix.appendDense(di, int32(id))
	} else {
		ix.overflow[k] = append(ix.overflow[k], int32(id))
	}
}

// Remove deletes the point with the given ID, if present.
func (ix *Index) Remove(id int) {
	if id < 0 || id >= len(ix.present) || !ix.present[id] {
		return
	}
	ix.removeFromCell(id, ix.key(ix.pos[id]))
	ix.present[id] = false
	ix.count--
}

func (ix *Index) removeFromCell(id int, k cellKey) {
	if di := ix.denseIdx(k); di >= 0 {
		b := &ix.dense[di]
		elems := ix.arena[b.off : b.off+b.n]
		for i, v := range elems {
			if v == int32(id) {
				elems[i] = elems[len(elems)-1]
				b.n--
				return
			}
		}
		return
	}
	bkt := ix.overflow[k]
	for i, v := range bkt {
		if v == int32(id) {
			bkt[i] = bkt[len(bkt)-1]
			ix.overflow[k] = bkt[:len(bkt)-1]
			return
		}
	}
}

// Position returns the indexed position of id and whether it is present.
func (ix *Index) Position(id int) (geom.Vec, bool) {
	if id < 0 || id >= len(ix.present) || !ix.present[id] {
		return geom.Vec{}, false
	}
	return ix.pos[id], true
}

// cellElems returns the elements of cell k, whether dense or overflow.
func (ix *Index) cellElems(k cellKey) []int32 {
	if di := ix.denseIdx(k); di >= 0 {
		b := ix.dense[di]
		return ix.arena[b.off : b.off+b.n]
	}
	return ix.overflow[k]
}

// ForNeighbors calls fn for every indexed point within radius r of p,
// including a point exactly at p. Iteration order is deterministic for a
// fixed insertion history, and identical whether the index is bounded or
// not.
func (ix *Index) ForNeighbors(p geom.Vec, r float64, fn func(id int, q geom.Vec)) {
	ix.ForNeighborsSkip(-1, p, r, fn)
}

// ForNeighborsSkip is ForNeighbors excluding the point with ID skip (a
// querying sensor excludes itself without filtering in the callback).
// Pass a negative skip to exclude nothing.
func (ix *Index) ForNeighborsSkip(skip int, p geom.Vec, r float64, fn func(id int, q geom.Vec)) {
	r2 := r * r
	lo := ix.key(geom.V(p.X-r, p.Y-r))
	hi := ix.key(geom.V(p.X+r, p.Y+r))
	sk := int32(skip)
	for cy := lo.y; cy <= hi.y; cy++ {
		for cx := lo.x; cx <= hi.x; cx++ {
			for _, id := range ix.cellElems(cellKey{cx, cy}) {
				if id == sk {
					continue
				}
				q := ix.pos[id]
				if q.Dist2(p) <= r2 {
					fn(int(id), q)
				}
			}
		}
	}
}

// Neighbors returns the IDs of all points within radius r of p, in
// ascending ID order.
func (ix *Index) Neighbors(p geom.Vec, r float64) []int {
	var out []int
	ix.ForNeighbors(p, r, func(id int, _ geom.Vec) { out = append(out, id) })
	slices.Sort(out)
	return out
}

// Len returns the number of points currently in the index.
func (ix *Index) Len() int { return ix.count }
