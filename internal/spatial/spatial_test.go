package spatial

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"mobisense/internal/geom"
)

func TestInsertAndQuery(t *testing.T) {
	ix := New(10, 8)
	ix.Insert(0, geom.V(5, 5))
	ix.Insert(1, geom.V(8, 5))
	ix.Insert(2, geom.V(50, 50))

	got := ix.Neighbors(geom.V(5, 5), 5)
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("Neighbors = %v, want [0 1]", got)
	}
	got = ix.Neighbors(geom.V(5, 5), 1)
	if !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("Neighbors = %v, want [0]", got)
	}
	if got := ix.Neighbors(geom.V(100, 100), 10); len(got) != 0 {
		t.Errorf("Neighbors far away = %v, want none", got)
	}
}

func TestBoundaryRadius(t *testing.T) {
	ix := New(10, 4)
	ix.Insert(0, geom.V(0, 0))
	ix.Insert(1, geom.V(10, 0))
	// Exactly at radius: included.
	if got := ix.Neighbors(geom.V(0, 0), 10); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("Neighbors = %v, want [0 1]", got)
	}
	if got := ix.Neighbors(geom.V(0, 0), 9.999); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("Neighbors = %v, want [0]", got)
	}
}

func TestMoveUpdatesCell(t *testing.T) {
	ix := New(10, 4)
	ix.Insert(0, geom.V(5, 5))
	ix.Insert(0, geom.V(95, 95)) // move far away
	if got := ix.Neighbors(geom.V(5, 5), 8); len(got) != 0 {
		t.Errorf("stale index entry: %v", got)
	}
	if got := ix.Neighbors(geom.V(95, 95), 1); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("moved entry missing: %v", got)
	}
	if ix.Len() != 1 {
		t.Errorf("Len = %d, want 1", ix.Len())
	}
}

func TestRemove(t *testing.T) {
	ix := New(10, 4)
	ix.Insert(3, geom.V(1, 1))
	ix.Remove(3)
	if got := ix.Neighbors(geom.V(1, 1), 5); len(got) != 0 {
		t.Errorf("removed entry still found: %v", got)
	}
	if _, ok := ix.Position(3); ok {
		t.Error("Position should report absence after Remove")
	}
	ix.Remove(3)  // double remove is a no-op
	ix.Remove(99) // unknown ID is a no-op
}

func TestPosition(t *testing.T) {
	ix := New(10, 4)
	ix.Insert(2, geom.V(7, 8))
	p, ok := ix.Position(2)
	if !ok || !p.Eq(geom.V(7, 8)) {
		t.Errorf("Position = %v, %v", p, ok)
	}
	if _, ok := ix.Position(0); ok {
		t.Error("unset ID should be absent")
	}
	if _, ok := ix.Position(-1); ok {
		t.Error("negative ID should be absent")
	}
}

func TestNegativeCoordinates(t *testing.T) {
	ix := New(10, 4)
	ix.Insert(0, geom.V(-15, -25))
	if got := ix.Neighbors(geom.V(-15, -25), 1); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("negative coords: %v", got)
	}
}

// Property: index queries agree with brute force under random insert /
// move / remove workloads.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	ix := New(25, 64)
	type entry struct {
		p     geom.Vec
		alive bool
	}
	truth := make([]entry, 64)

	for step := 0; step < 2000; step++ {
		id := rng.IntN(64)
		switch rng.IntN(3) {
		case 0, 1: // insert / move
			p := geom.V(rng.Float64()*500-100, rng.Float64()*500-100)
			ix.Insert(id, p)
			truth[id] = entry{p: p, alive: true}
		case 2: // remove
			ix.Remove(id)
			truth[id].alive = false
		}
		// Verify a random query.
		q := geom.V(rng.Float64()*500-100, rng.Float64()*500-100)
		r := rng.Float64() * 80
		var want []int
		for i, e := range truth {
			if e.alive && e.p.Dist(q) <= r {
				want = append(want, i)
			}
		}
		got := ix.Neighbors(q, r)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: query %v r=%v: got %v want %v", step, q, r, got, want)
		}
	}
}

func TestZeroCellSizeDefaults(t *testing.T) {
	ix := New(0, 1)
	ix.Insert(0, geom.V(1, 1))
	if got := ix.Neighbors(geom.V(1, 1), 0.5); len(got) != 1 {
		t.Errorf("got %v", got)
	}
}

// Property: a bounded index returns the same results AND the same
// callback iteration order as the unbounded map-backed mode under random
// insert / move / remove workloads, including points that stray outside
// the declared bounds (overflow cells).
func TestBoundedMatchesUnbounded(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 14))
	bounds := geom.R(0, 0, 400, 300)
	bi := NewBounded(25, bounds, 64)
	ui := New(25, 64)
	for step := 0; step < 3000; step++ {
		id := rng.IntN(48)
		switch rng.IntN(3) {
		case 0, 1:
			p := geom.V(rng.Float64()*600-100, rng.Float64()*500-100)
			bi.Insert(id, p)
			ui.Insert(id, p)
		case 2:
			bi.Remove(id)
			ui.Remove(id)
		}
		q := geom.V(rng.Float64()*600-100, rng.Float64()*500-100)
		r := rng.Float64() * 90
		var gotB, gotU []int
		bi.ForNeighbors(q, r, func(id int, _ geom.Vec) { gotB = append(gotB, id) })
		ui.ForNeighbors(q, r, func(id int, _ geom.Vec) { gotU = append(gotU, id) })
		if !reflect.DeepEqual(gotB, gotU) {
			t.Fatalf("step %d: iteration order diverged: bounded %v unbounded %v", step, gotB, gotU)
		}
	}
	if bi.Len() != ui.Len() {
		t.Fatalf("Len diverged: %d vs %d", bi.Len(), ui.Len())
	}
}

func TestForNeighborsSkip(t *testing.T) {
	ix := NewBounded(10, geom.R(0, 0, 100, 100), 8)
	ix.Insert(0, geom.V(5, 5))
	ix.Insert(1, geom.V(6, 5))
	ix.Insert(2, geom.V(7, 5))
	var got []int
	ix.ForNeighborsSkip(1, geom.V(6, 5), 5, func(id int, _ geom.Vec) { got = append(got, id) })
	if !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("ForNeighborsSkip = %v, want [0 2]", got)
	}
	got = nil
	ix.ForNeighborsSkip(-1, geom.V(6, 5), 5, func(id int, _ geom.Vec) { got = append(got, id) })
	if len(got) != 3 {
		t.Errorf("negative skip should exclude nothing: %v", got)
	}
}

// TestDenseBucketGrowth crams many points into one cell to force arena
// block growth and freelist reuse, then migrates them to verify
// swap-remove bookkeeping in the dense path.
func TestDenseBucketGrowth(t *testing.T) {
	ix := NewBounded(50, geom.R(0, 0, 200, 200), 4)
	const n = 120
	for i := 0; i < n; i++ {
		ix.Insert(i, geom.V(10+float64(i)*0.01, 10))
	}
	if got := len(ix.Neighbors(geom.V(10, 10), 5)); got != n {
		t.Fatalf("crowded cell query = %d, want %d", got, n)
	}
	// Migrate everyone to another cell; old blocks go to the freelist.
	for i := 0; i < n; i++ {
		ix.Insert(i, geom.V(150+float64(i)*0.01, 150))
	}
	if got := len(ix.Neighbors(geom.V(10, 10), 5)); got != 0 {
		t.Fatalf("stale entries after migration: %d", got)
	}
	if got := len(ix.Neighbors(geom.V(150, 150), 5)); got != n {
		t.Fatalf("migrated cell query = %d, want %d", got, n)
	}
}

// TestPooledReshapeAcrossModes releases a bounded index and reuses the
// pooled object as unbounded (and vice versa), checking no stale state
// leaks through the pool.
func TestPooledReshapeAcrossModes(t *testing.T) {
	a := NewBounded(10, geom.R(0, 0, 100, 100), 8)
	a.Insert(0, geom.V(5, 5))
	a.Insert(1, geom.V(95, 95))
	a.Release()

	b := New(20, 8)
	if got := b.Neighbors(geom.V(5, 5), 50); len(got) != 0 {
		t.Fatalf("pooled reuse leaked entries: %v", got)
	}
	b.Insert(2, geom.V(5, 5))
	if got := b.Neighbors(geom.V(5, 5), 1); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("unbounded reuse query = %v", got)
	}
	b.Release()

	c := NewBounded(5, geom.R(-50, -50, 50, 50), 8)
	if got := c.Neighbors(geom.V(5, 5), 100); len(got) != 0 {
		t.Fatalf("pooled reuse leaked entries: %v", got)
	}
	c.Insert(3, geom.V(-40, -40))
	if got := c.Neighbors(geom.V(-40, -40), 1); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("reshaped bounded query = %v", got)
	}
	c.Release()
}

// BenchmarkInsertMoveQuery measures the steady-state cost of the
// simulator's per-period index traffic on a bounded index.
func BenchmarkInsertMoveQuery(b *testing.B) {
	bounds := geom.R(0, 0, 800, 600)
	rng := rand.New(rand.NewPCG(7, 7))
	pts := make([]geom.Vec, 200)
	for i := range pts {
		pts[i] = geom.V(rng.Float64()*800, rng.Float64()*600)
	}
	ix := NewBounded(50, bounds, len(pts))
	for i, p := range pts {
		ix.Insert(i, p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i % len(pts)
		p := pts[id]
		p.X += 1.5
		if p.X > 800 {
			p.X -= 800
		}
		pts[id] = p
		ix.Insert(id, p)
		ix.ForNeighborsSkip(id, p, 50, func(int, geom.Vec) {})
	}
}
