package spatial

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"mobisense/internal/geom"
)

func TestInsertAndQuery(t *testing.T) {
	ix := New(10, 8)
	ix.Insert(0, geom.V(5, 5))
	ix.Insert(1, geom.V(8, 5))
	ix.Insert(2, geom.V(50, 50))

	got := ix.Neighbors(geom.V(5, 5), 5)
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("Neighbors = %v, want [0 1]", got)
	}
	got = ix.Neighbors(geom.V(5, 5), 1)
	if !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("Neighbors = %v, want [0]", got)
	}
	if got := ix.Neighbors(geom.V(100, 100), 10); len(got) != 0 {
		t.Errorf("Neighbors far away = %v, want none", got)
	}
}

func TestBoundaryRadius(t *testing.T) {
	ix := New(10, 4)
	ix.Insert(0, geom.V(0, 0))
	ix.Insert(1, geom.V(10, 0))
	// Exactly at radius: included.
	if got := ix.Neighbors(geom.V(0, 0), 10); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("Neighbors = %v, want [0 1]", got)
	}
	if got := ix.Neighbors(geom.V(0, 0), 9.999); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("Neighbors = %v, want [0]", got)
	}
}

func TestMoveUpdatesCell(t *testing.T) {
	ix := New(10, 4)
	ix.Insert(0, geom.V(5, 5))
	ix.Insert(0, geom.V(95, 95)) // move far away
	if got := ix.Neighbors(geom.V(5, 5), 8); len(got) != 0 {
		t.Errorf("stale index entry: %v", got)
	}
	if got := ix.Neighbors(geom.V(95, 95), 1); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("moved entry missing: %v", got)
	}
	if ix.Len() != 1 {
		t.Errorf("Len = %d, want 1", ix.Len())
	}
}

func TestRemove(t *testing.T) {
	ix := New(10, 4)
	ix.Insert(3, geom.V(1, 1))
	ix.Remove(3)
	if got := ix.Neighbors(geom.V(1, 1), 5); len(got) != 0 {
		t.Errorf("removed entry still found: %v", got)
	}
	if _, ok := ix.Position(3); ok {
		t.Error("Position should report absence after Remove")
	}
	ix.Remove(3)  // double remove is a no-op
	ix.Remove(99) // unknown ID is a no-op
}

func TestPosition(t *testing.T) {
	ix := New(10, 4)
	ix.Insert(2, geom.V(7, 8))
	p, ok := ix.Position(2)
	if !ok || !p.Eq(geom.V(7, 8)) {
		t.Errorf("Position = %v, %v", p, ok)
	}
	if _, ok := ix.Position(0); ok {
		t.Error("unset ID should be absent")
	}
	if _, ok := ix.Position(-1); ok {
		t.Error("negative ID should be absent")
	}
}

func TestNegativeCoordinates(t *testing.T) {
	ix := New(10, 4)
	ix.Insert(0, geom.V(-15, -25))
	if got := ix.Neighbors(geom.V(-15, -25), 1); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("negative coords: %v", got)
	}
}

// Property: index queries agree with brute force under random insert /
// move / remove workloads.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	ix := New(25, 64)
	type entry struct {
		p     geom.Vec
		alive bool
	}
	truth := make([]entry, 64)

	for step := 0; step < 2000; step++ {
		id := rng.IntN(64)
		switch rng.IntN(3) {
		case 0, 1: // insert / move
			p := geom.V(rng.Float64()*500-100, rng.Float64()*500-100)
			ix.Insert(id, p)
			truth[id] = entry{p: p, alive: true}
		case 2: // remove
			ix.Remove(id)
			truth[id].alive = false
		}
		// Verify a random query.
		q := geom.V(rng.Float64()*500-100, rng.Float64()*500-100)
		r := rng.Float64() * 80
		var want []int
		for i, e := range truth {
			if e.alive && e.p.Dist(q) <= r {
				want = append(want, i)
			}
		}
		got := ix.Neighbors(q, r)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: query %v r=%v: got %v want %v", step, q, r, got, want)
		}
	}
}

func TestZeroCellSizeDefaults(t *testing.T) {
	ix := New(0, 1)
	ix.Insert(0, geom.V(1, 1))
	if got := ix.Neighbors(geom.V(1, 1), 0.5); len(got) != 1 {
		t.Errorf("got %v", got)
	}
}
