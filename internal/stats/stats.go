// Package stats provides the small statistical helpers used by the
// experiment harness: means, quantiles and empirical CDFs (Figure 13).
package stats

import "sort"

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation on the sorted sample. It returns 0 for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// CDFPoint is one point of an empirical distribution function.
type CDFPoint struct {
	X float64 // value
	P float64 // fraction of samples ≤ X
}

// CDF returns the empirical CDF of xs as a step-function sample, one point
// per input value.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	for i, x := range s {
		out[i] = CDFPoint{X: x, P: float64(i+1) / float64(len(s))}
	}
	return out
}
