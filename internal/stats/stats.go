// Package stats provides the small statistical helpers used by the
// experiment harness and the batch runner: means, standard deviations,
// confidence intervals, quantiles and empirical CDFs (Figure 13).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Summary describes a sample: size, mean, sample standard deviation, the
// half-width of the normal-approximation 95% confidence interval of the
// mean, and range.
type Summary struct {
	N            int
	Mean, StdDev float64
	CI95         float64
	Min, Max     float64
}

// Summarize computes the Summary of xs (zero value for empty input).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    xs[0],
		Max:    xs[0],
	}
	for _, x := range xs[1:] {
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	if s.N > 1 {
		s.CI95 = 1.96 * s.StdDev / math.Sqrt(float64(s.N))
	}
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation on the sorted sample. It returns 0 for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// CDFPoint is one point of an empirical distribution function.
type CDFPoint struct {
	X float64 // value
	P float64 // fraction of samples ≤ X
}

// CDF returns the empirical CDF of xs as a step-function sample, one point
// per input value.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	for i, x := range s {
		out[i] = CDFPoint{X: x, P: float64(i+1) / float64(len(s))}
	}
	return out
}
