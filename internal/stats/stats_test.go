package stats

import (
	"math"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("mean = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	tests := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-1, 1}, {2, 4},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("input mutated")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{2, 1})
	if len(pts) != 2 {
		t.Fatal("size")
	}
	if pts[0].X != 1 || pts[0].P != 0.5 || pts[1].X != 2 || pts[1].P != 1 {
		t.Errorf("cdf = %+v", pts)
	}
	if CDF(nil) != nil {
		t.Error("empty CDF should be nil")
	}
}
