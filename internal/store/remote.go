package store

import (
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"strings"
	"time"
)

// Remote stores: anywhere the tooling accepts a store directory it also
// accepts an http(s) URL naming a deployment server's store endpoint
// (GET <url>/manifest.json, <url>/records.jsonl, <url>/timing.jsonl —
// the same three files a local store holds, served by the /v1/jobs/{id}/store
// routes). ReadDir and ReadTimings dispatch on the prefix, so report,
// LoadStores and the progress watcher work against a live server without
// a shared filesystem. Writers stay local-only: a store has exactly one
// writing process, and it owns the directory.

// IsRemote reports whether dir names a remote store endpoint rather than
// a local directory.
func IsRemote(dir string) bool {
	return strings.HasPrefix(dir, "http://") || strings.HasPrefix(dir, "https://")
}

// remoteClient bounds each store fetch; tails of running sweeps are small
// relative to this, and a watcher polls rather than streams.
var remoteClient = &http.Client{Timeout: 60 * time.Second}

// fetchRemote GETs one store file. A 404 reports os.ErrNotExist-like
// absence via the ok flag so callers can mirror the local missing-file
// behavior (missing records/timing files mean an empty store, not an
// error).
func fetchRemote(dir, file string) (body io.ReadCloser, ok bool, err error) {
	url := strings.TrimRight(dir, "/") + "/" + file
	resp, err := remoteClient.Get(url)
	if err != nil {
		return nil, false, fmt.Errorf("store: fetch %s: %w", url, err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return resp.Body, true, nil
	case http.StatusNotFound:
		resp.Body.Close()
		return nil, false, nil
	default:
		resp.Body.Close()
		return nil, false, fmt.Errorf("store: fetch %s: %s", url, resp.Status)
	}
}

func readManifestRemote(dir string) (Manifest, error) {
	var m Manifest
	body, ok, err := fetchRemote(dir, manifestFile)
	if err != nil {
		return m, err
	}
	if !ok {
		// Wrap fs.ErrNotExist so callers distinguish "no store here (yet or
		// anymore)" from transport and corruption errors, exactly as the
		// local path does.
		return m, fmt.Errorf("store: %s is not a store: %w", dir, fs.ErrNotExist)
	}
	defer body.Close()
	if err := decodeManifest(body, &m); err != nil {
		return m, fmt.Errorf("store: %s manifest: %w", dir, err)
	}
	if m.Version != Version {
		return m, fmt.Errorf("store: %s has layout version %d, want %d", dir, m.Version, Version)
	}
	return m, nil
}

func readDirRemote(dir string) (Manifest, []Record, error) {
	m, err := readManifestRemote(dir)
	if err != nil {
		return m, nil, err
	}
	body, ok, err := fetchRemote(dir, recordsFile)
	if err != nil {
		return m, nil, err
	}
	if !ok {
		return m, nil, nil
	}
	defer body.Close()
	recs, _, err := ParseRecords(body)
	if err != nil {
		return m, nil, fmt.Errorf("store: %s/%s: %w", dir, recordsFile, err)
	}
	return m, recs, nil
}

func readTimingsRemote(dir string) (map[string]time.Duration, error) {
	body, ok, err := fetchRemote(dir, timingFile)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	defer body.Close()
	return ParseTimings(body)
}
