// Package store persists batch and sweep runs to disk as they finish.
//
// A store is a directory with three files:
//
//   - manifest.json — the sweep's identity: axes, base-config fingerprint,
//     shard index/count, expected run count and completion state. Every
//     field is a pure function of the sweep definition, so the manifest is
//     byte-identical across machines and worker counts.
//   - records.jsonl — one JSON record per completed run, appended as runs
//     finish. Records hold only deterministic quantities (axes, derived
//     seed, metrics), and the writer flushes them in dispatch order, so the
//     file diffs byte-identically across worker counts. Memory stays
//     constant for arbitrarily large sweeps: at most one pending record per
//     in-flight worker is buffered.
//   - timing.jsonl — the explicitly non-deterministic section of each
//     record (wall-clock elapsed time), keyed by record key and appended in
//     completion order. Tooling that compares or merges stores ignores it.
//
// Records are keyed by the run's axes plus its deterministic derived seed
// and per-run config fingerprint, which is what makes sweeps resumable:
// re-running against an existing store skips every key already on disk.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
	"time"

	"mobisense/internal/field"
	"mobisense/internal/metrics"
)

// bytesWritten counts every record and timing byte any store writer in
// the process appends — the store_bytes_written_total series of the
// deployment service's /metrics endpoint. The handle is resolved once;
// updating it is a single atomic add on the append path.
var bytesWritten = metrics.Default.Counter("store_bytes_written_total")

// Version is the store layout version written to manifests.
const Version = 1

const (
	manifestFile = "manifest.json"
	recordsFile  = "records.jsonl"
	timingFile   = "timing.jsonl"
)

// SweepAxes records the sweep definition that produced a store, for
// resume-compatibility checks and reporting. Every field is omitted when
// empty, so pre-axis manifests load unchanged and axis-free sweeps keep
// writing byte-identical manifests.
type SweepAxes struct {
	Schemes   []string `json:"schemes,omitempty"`
	Scenarios []string `json:"scenarios,omitempty"`
	Ns        []int    `json:"ns,omitempty"`
	// Axes are the sweep's generalized parameter dimensions (rc, rs,
	// speed, scheme options, custom axes) by name and ordered value list.
	Axes []Axis `json:"axes,omitempty"`
	// FixedSeed marks a sweep whose runs all use Seed verbatim instead of
	// per-combination derived seeds (paired parameter studies).
	FixedSeed bool   `json:"fixed_seed,omitempty"`
	Repeats   int    `json:"repeats,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
}

// Axis is one generalized sweep dimension as persisted in a manifest.
// Numeric axes fill Values; categorical (string-valued) axes fill
// Strings. Numeric manifests keep their pre-categorical byte layout.
type Axis struct {
	Name    string    `json:"name"`
	Values  []float64 `json:"values"`
	Strings []string  `json:"strings,omitempty"`
}

// FieldEntry embeds one environment's declarative geometry in a
// manifest: the field spec behind a scenario name (or behind the sweep's
// inline/custom field, with an empty Scenario). A store carrying its
// FieldEntries is reproducible on a machine without the originating
// binary or spec files.
type FieldEntry struct {
	Scenario string     `json:"scenario,omitempty"`
	Spec     field.Spec `json:"spec"`
}

// AxisValue is one run's assignment on one axis, as persisted in records.
// A categorical assignment carries its value in Str (omitted for numeric
// axes, keeping pre-categorical records byte-identical).
type AxisValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Str   string  `json:"str,omitempty"`
}

// ValueString renders the assignment's value: the categorical string, or
// the compact lossless numeric form.
func (a AxisValue) ValueString() string {
	if a.Str != "" {
		return a.Str
	}
	return strconv.FormatFloat(a.Value, 'g', -1, 64)
}

// Manifest identifies a store: what sweep it holds, which shard of it, and
// whether all expected records are present. It contains no wall-clock
// fields so that a sweep's manifest is reproducible bit for bit.
type Manifest struct {
	Version int `json:"version"`
	// Kind is "sweep" for Sweep.Run stores and "batch" for RunBatch stores.
	Kind  string    `json:"kind"`
	Sweep SweepAxes `json:"sweep,omitzero"`
	// Fields are the declarative specs of the sweep's environments, one
	// per scenario (or one nameless entry for a custom field). Stores
	// written before the field-spec refactor omit them; compatibility
	// checks only compare Fields when both manifests carry them.
	Fields []FieldEntry `json:"fields,omitempty"`
	// ConfigFingerprint hashes the non-axis base configuration (ranges,
	// speeds, horizons, scheme options); resuming with a different base
	// config is refused.
	ConfigFingerprint string `json:"config_fingerprint"`
	// ShardIndex/ShardCount place this store in a cross-machine sharding
	// (0/1 when unsharded).
	ShardIndex int `json:"shard_index"`
	ShardCount int `json:"shard_count"`
	// TotalRuns is the number of records this shard will hold when done.
	TotalRuns int `json:"total_runs"`
	// Layouts is set when the store's records carry full sensor layouts
	// (positions sections). Mixing layout and non-layout sessions in one
	// store would leave records with inconsistent replay fidelity, so
	// resuming across the flag is refused.
	Layouts bool `json:"layouts,omitempty"`
	// Trace is set when the store's records carry per-tick telemetry
	// series. Like Layouts it gates resume: a store must be uniformly
	// traced or untraced. Untraced stores omit the flag, keeping pre-trace
	// manifests byte-identical.
	Trace bool `json:"trace,omitempty"`
	// TraceLayouts is set when the trace samples additionally carry
	// per-sample layout snapshots (replay animation). It gates resume the
	// same way Trace does, and stores without snapshots omit it so their
	// manifests stay byte-identical.
	TraceLayouts bool `json:"trace_layouts,omitempty"`
	// Complete is set once all TotalRuns records are on disk.
	Complete bool `json:"complete"`
}

// compatible reports whether a store created with manifest m can be
// resumed by a runner expecting manifest n (everything but the completion
// state must match). Embedded field specs are compared only when both
// manifests carry them: pre-spec stores have none, and refusing to
// resume them would orphan every store written before the refactor. The
// geometry is still guarded — the base-config fingerprint hashes it, and
// every record key carries a per-run config fingerprint.
func (m Manifest) compatible(n Manifest) bool {
	m.Complete, n.Complete = false, false
	if m.Fields == nil || n.Fields == nil {
		m.Fields, n.Fields = nil, nil
	}
	return reflect.DeepEqual(m, n)
}

// Record is the deterministic result of one completed run: its axes, the
// derived seed and config fingerprint that key it, and the metrics the
// aggregates are computed from. Wall-clock time lives in Timing, not here.
type Record struct {
	// Index is the run's position in the full (unsharded) sweep expansion;
	// merging shards sorts by it to reproduce the unsharded order.
	Index    int    `json:"index"`
	Scheme   string `json:"scheme"`
	Scenario string `json:"scenario,omitempty"`
	N        int    `json:"n"`
	Repeat   int    `json:"repeat"`
	// Axes are the run's generalized axis assignments, in axis order;
	// omitted for axis-free runs so pre-axis records round-trip unchanged.
	Axes              []AxisValue `json:"axes,omitempty"`
	Seed              uint64      `json:"seed"`
	ConfigFingerprint string      `json:"config_fingerprint"`
	Coverage          float64     `json:"coverage"`
	Coverage2         float64     `json:"coverage2"`
	Alive             int         `json:"alive"`
	AvgMoveDistance   float64     `json:"avg_move_distance"`
	Messages          int64       `json:"messages"`
	ConvergenceTime   float64     `json:"convergence_time"`
	Connected         bool        `json:"connected"`
	IncorrectCells    int         `json:"incorrect_voronoi_cells,omitempty"`
	// Positions and InitialPositions are the run's final and starting
	// sensor layouts, persisted only when the store was created with
	// Manifest.Layouts — they make stored runs fully replayable (layout
	// post-processing like Hungarian lower bounds) at the cost of record
	// size. Both are deterministic, so layout stores still diff
	// byte-identically across worker counts.
	Positions        []Point `json:"positions,omitempty"`
	InitialPositions []Point `json:"initial_positions,omitempty"`
	// Trace is the run's per-tick telemetry series, persisted only when
	// the store was created with Manifest.Trace. The samples are pure
	// functions of the run's config and seed, so traced stores still diff
	// byte-identically across worker counts.
	Trace []TraceSample `json:"trace,omitempty"`
	// Convergence holds the trace-derived convergence metrics, present
	// exactly when Trace is.
	Convergence *Convergence `json:"convergence,omitempty"`
	// Err is the run's error message ("" on success); failed runs are
	// recorded too so a resume does not retry deterministic failures.
	Err string `json:"err,omitempty"`
}

// Point is one stored sensor position in meters.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// TraceSample is one stored per-tick telemetry observation. Layout is the
// optional per-sample layout snapshot, present only in stores created
// with Manifest.TraceLayouts.
type TraceSample struct {
	Time       float64 `json:"t"`
	Coverage   float64 `json:"coverage"`
	Connected  int     `json:"connected"`
	Alive      int     `json:"alive"`
	Moving     int     `json:"moving"`
	TotalMoved float64 `json:"total_moved"`
	MaxMoved   float64 `json:"max_moved"`
	Layout     []Point `json:"layout,omitempty"`
}

// Convergence is the stored form of a run's trace-derived convergence
// metrics.
type Convergence struct {
	TimeTo90Coverage   float64 `json:"t90"`
	TimeTo99Coverage   float64 `json:"t99"`
	TimeToConnectivity float64 `json:"tconn"`
	SettlingTime       float64 `json:"settle"`
	TotalMovedAtSettle float64 `json:"settle_total_moved"`
	MaxMovedAtSettle   float64 `json:"settle_max_moved"`
}

// Key identifies a run within a sweep: every axis value plus the derived
// seed and the per-run config fingerprint. Two runs share a key exactly
// when they are the same deterministic computation. Axis-free records
// produce the exact pre-axis key, so old stores keep resuming.
func (r Record) Key() string {
	k := fmt.Sprintf("%s|%s|n%d|r%d|s%016x|c%s",
		r.Scheme, r.Scenario, r.N, r.Repeat, r.Seed, r.ConfigFingerprint)
	for _, a := range r.Axes {
		k += fmt.Sprintf("|%s=%s", a.Name, a.ValueString())
	}
	return k
}

// Timing is the non-deterministic sidecar section of one record.
type Timing struct {
	Key       string `json:"key"`
	ElapsedNS int64  `json:"elapsed_ns"`
}

// Writer appends records to a store directory. Append may be called from
// many goroutines; records flush to disk in seq order (the deterministic
// dispatch order) regardless of completion order, buffering at most the
// in-flight window.
type Writer struct {
	dir      string
	manifest Manifest

	mu      sync.Mutex
	records *os.File
	timing  *os.File
	next    int            // next seq to flush
	pending map[int][]byte // out-of-order completed records
	times   map[int][]byte // their timing lines
	written int            // records on disk (including replayed ones)
	closed  bool
}

// Create initializes a new store directory with the given manifest. It
// fails if the directory already holds a store.
func Create(dir string, m Manifest) (*Writer, error) {
	if _, err := os.Stat(filepath.Join(dir, manifestFile)); err == nil {
		return nil, fmt.Errorf("store: %s already holds a store (resume instead?)", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	m.Version = Version
	if err := writeManifest(dir, m); err != nil {
		return nil, err
	}
	return newWriter(dir, m, 0)
}

// Open resumes an existing store, validating that its manifest matches the
// expected one, and returns the records already on disk alongside the
// writer. A truncated trailing line (killed mid-write) is dropped — and
// physically truncated away, so appended records never merge into it.
func Open(dir string, want Manifest) (*Writer, []Record, error) {
	want.Version = Version
	got, err := readManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	if !got.compatible(want) {
		return nil, nil, fmt.Errorf("store: %s holds a different sweep (manifest mismatch: have %+v, want %+v)", dir, got, want)
	}
	path := filepath.Join(dir, recordsFile)
	recs, intact, err := readRecords(path)
	if err != nil {
		return nil, nil, err
	}
	if fi, statErr := os.Stat(path); statErr == nil && fi.Size() > intact {
		if err := os.Truncate(path, intact); err != nil {
			return nil, nil, fmt.Errorf("store: drop torn record tail: %w", err)
		}
	}
	w, err := newWriter(dir, want, len(recs))
	if err != nil {
		return nil, nil, err
	}
	return w, recs, nil
}

func newWriter(dir string, m Manifest, existing int) (*Writer, error) {
	rf, err := os.OpenFile(filepath.Join(dir, recordsFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	tf, err := os.OpenFile(filepath.Join(dir, timingFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		rf.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Writer{
		dir:      dir,
		manifest: m,
		records:  rf,
		timing:   tf,
		pending:  map[int][]byte{},
		times:    map[int][]byte{},
		written:  existing,
	}, nil
}

// Append stores one completed run. seq is the record's position in this
// session's dispatch order; records reach the file in seq order no matter
// which worker finishes first, so the stored bytes are independent of the
// worker count.
func (w *Writer) Append(seq int, rec Record, elapsed time.Duration) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode record: %w", err)
	}
	tline, err := json.Marshal(Timing{Key: rec.Key(), ElapsedNS: int64(elapsed)})
	if err != nil {
		return fmt.Errorf("store: encode timing: %w", err)
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("store: append after close")
	}
	w.pending[seq] = append(line, '\n')
	w.times[seq] = append(tline, '\n')
	for {
		line, ok := w.pending[w.next]
		if !ok {
			return nil
		}
		if _, err := w.records.Write(line); err != nil {
			return fmt.Errorf("store: write record: %w", err)
		}
		if _, err := w.timing.Write(w.times[w.next]); err != nil {
			return fmt.Errorf("store: write timing: %w", err)
		}
		bytesWritten.Add(int64(len(line) + len(w.times[w.next])))
		delete(w.pending, w.next)
		delete(w.times, w.next)
		w.next++
		w.written++
	}
}

// Written returns the number of records on disk, including any replayed
// from a previous session.
func (w *Writer) Written() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.written
}

// Close flushes and closes the store files and, when every expected record
// is present, rewrites the manifest with Complete set.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	var firstErr error
	if len(w.pending) > 0 {
		// A dispatch-order gap means a dispatched run never reported; keep
		// the contiguous prefix (everything on disk stays valid) and
		// surface the anomaly.
		firstErr = fmt.Errorf("store: %d completed record(s) stranded behind a dispatch gap", len(w.pending))
	}
	if err := w.records.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := w.timing.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if w.written >= w.manifest.TotalRuns && !w.manifest.Complete {
		w.manifest.Complete = true
		if err := writeManifest(w.dir, w.manifest); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func writeManifest(dir string, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode manifest: %w", err)
	}
	data = append(data, '\n')
	// Write-then-rename so a crash never leaves a half-written manifest.
	tmp := filepath.Join(dir, manifestFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestFile)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// ReadDir loads a store: its manifest and every intact record. A
// truncated trailing record line (process killed mid-write, or an append
// racing the read) is dropped; corruption anywhere else is an error. dir
// may be a local directory or a remote store URL (see IsRemote).
func ReadDir(dir string) (Manifest, []Record, error) {
	if IsRemote(dir) {
		return readDirRemote(dir)
	}
	m, err := readManifest(dir)
	if err != nil {
		return m, nil, err
	}
	recs, _, err := readRecords(filepath.Join(dir, recordsFile))
	if err != nil {
		return m, nil, err
	}
	return m, recs, nil
}

func readManifest(dir string) (Manifest, error) {
	var m Manifest
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return m, fmt.Errorf("store: %s is not a store: %w", dir, err)
	}
	if err := decodeManifest(bytes.NewReader(data), &m); err != nil {
		return m, fmt.Errorf("store: %s manifest: %w", dir, err)
	}
	if m.Version != Version {
		return m, fmt.Errorf("store: %s has layout version %d, want %d", dir, m.Version, Version)
	}
	return m, nil
}

func decodeManifest(src io.Reader, m *Manifest) error {
	return json.NewDecoder(src).Decode(m)
}

// readRecords parses a records file, returning the intact records and the
// byte offset just past the last one — the point a resuming writer must
// truncate to so new appends never merge into a torn tail.
func readRecords(path string) ([]Record, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	recs, intact, err := ParseRecords(f)
	if err != nil {
		return nil, 0, fmt.Errorf("store: %s: %w", path, err)
	}
	return recs, intact, nil
}

// ParseRecords parses a records.jsonl stream, returning the intact
// records and the byte offset just past the last one. The stream need
// not be a local file — the deployment server's store endpoints let
// remote watchers parse a records tail over HTTP — and a torn or
// still-being-appended final line is silently dropped, exactly as when
// resuming a local store.
func ParseRecords(src io.Reader) ([]Record, int64, error) {
	var recs []Record
	r := bufio.NewReaderSize(src, 64*1024)
	var offset, intact int64
	lineNo := 0
	for {
		line, err := r.ReadBytes('\n')
		offset += int64(len(line))
		lineNo++
		complete := err == nil
		if err != nil && err != io.EOF {
			return nil, 0, err
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			var rec Record
			if jsonErr := json.Unmarshal(trimmed, &rec); jsonErr != nil {
				if complete {
					// A parseable-length, newline-terminated line that is
					// garbage mid-file means real corruption, not a torn
					// final append.
					if _, peekErr := r.Peek(1); peekErr != io.EOF {
						return nil, 0, fmt.Errorf("line %d: corrupt record followed by more data", lineNo)
					}
				}
				// Torn tail (no newline, or undecodable final line): drop it.
				return recs, intact, nil
			}
			if !complete {
				// Valid JSON but no trailing newline: the final byte(s) of
				// the append may be missing; treat as torn.
				return recs, intact, nil
			}
			recs = append(recs, rec)
		}
		if complete {
			intact = offset
		}
		if err == io.EOF {
			return recs, intact, nil
		}
	}
}

// ReadTimings loads the non-deterministic timing sidecar (missing file →
// no timings). Like ReadDir, dir may be a remote store URL.
func ReadTimings(dir string) (map[string]time.Duration, error) {
	if IsRemote(dir) {
		return readTimingsRemote(dir)
	}
	f, err := os.Open(filepath.Join(dir, timingFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return ParseTimings(f)
}

// ParseTimings parses a timing.jsonl stream (see ReadTimings); torn lines
// are skipped, as the sidecar is advisory.
func ParseTimings(src io.Reader) (map[string]time.Duration, error) {
	out := map[string]time.Duration{}
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var t Timing
		if err := json.Unmarshal(line, &t); err != nil {
			continue // sidecar is advisory; skip torn lines
		}
		out[t.Key] = time.Duration(t.ElapsedNS)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return out, nil
}
