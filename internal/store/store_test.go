package store

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func testManifest(total int) Manifest {
	return Manifest{
		Kind:              "sweep",
		Sweep:             SweepAxes{Schemes: []string{"floor"}, Scenarios: []string{"free"}, Ns: []int{30}, Repeats: total, Seed: 42},
		ConfigFingerprint: "deadbeef00000000",
		ShardCount:        1,
		TotalRuns:         total,
	}
}

func testRecord(i int) Record {
	return Record{
		Index:             i,
		Scheme:            "floor",
		Scenario:          "free",
		N:                 30,
		Repeat:            i,
		Seed:              uint64(1000 + i),
		ConfigFingerprint: "deadbeef00000000",
		Coverage:          0.5 + float64(i)/100,
		Alive:             30,
		Connected:         true,
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, testManifest(3))
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{testRecord(0), testRecord(1), testRecord(2)}
	for i, r := range want {
		if err := w.Append(i, r, time.Duration(i)*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	m, recs, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Complete {
		t.Error("manifest should be complete after all records")
	}
	if !reflect.DeepEqual(recs, want) {
		t.Errorf("records = %+v, want %+v", recs, want)
	}
	times, err := ReadTimings(dir)
	if err != nil {
		t.Fatal(err)
	}
	if times[want[2].Key()] != 2*time.Millisecond {
		t.Errorf("timing for %s = %v", want[2].Key(), times[want[2].Key()])
	}
}

// TestOutOfOrderAppendsFlushInSeqOrder is the determinism core: records
// appended out of completion order must reach the file in dispatch order.
func TestOutOfOrderAppendsFlushInSeqOrder(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, testManifest(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range []int{2, 0, 3, 1} {
		if err := w.Append(seq, testRecord(seq), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if r.Index != i {
			t.Errorf("record %d has index %d; file not in dispatch order", i, r.Index)
		}
	}
}

func TestCreateRefusesExistingStore(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, testManifest(1))
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := Create(dir, testManifest(1)); err == nil {
		t.Error("Create over an existing store should fail")
	}
}

func TestOpenResumesAndValidates(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, testManifest(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, testRecord(0), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume with the matching manifest sees the finished record.
	w2, recs, err := Open(dir, testManifest(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Index != 0 {
		t.Fatalf("resumed records = %+v", recs)
	}
	if err := w2.Append(0, testRecord(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(1, testRecord(2), 0); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	m, recs, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || !m.Complete {
		t.Errorf("after resume: %d records, complete=%v", len(recs), m.Complete)
	}

	// A different sweep must be refused.
	other := testManifest(3)
	other.Sweep.Seed = 7
	if _, _, err := Open(dir, other); err == nil {
		t.Error("Open with mismatched manifest should fail")
	}
	otherFP := testManifest(3)
	otherFP.ConfigFingerprint = "0000000000000000"
	if _, _, err := Open(dir, otherFP); err == nil {
		t.Error("Open with mismatched config fingerprint should fail")
	}
}

// TestTruncatedTrailingLine simulates a process killed mid-append: the torn
// final line is dropped, everything before it survives.
func TestTruncatedTrailingLine(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, testManifest(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := w.Append(i, testRecord(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	path := filepath.Join(dir, "records.jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"index":2,"scheme":"floo`) // torn write, no newline
	f.Close()

	_, recs, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Errorf("got %d records, want 2 (torn line dropped)", len(recs))
	}

	// Resuming over the torn tail must truncate it away so appended
	// records never merge into the partial line.
	w2, recs, err := Open(dir, testManifest(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("resume saw %d records, want 2", len(recs))
	}
	if err := w2.Append(0, testRecord(2), 0); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	m, recs, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("store unreadable after resume over torn tail: %v", err)
	}
	if len(recs) != 3 || !m.Complete {
		t.Errorf("after resume: %d records, complete=%v; want 3, true", len(recs), m.Complete)
	}

	// Corruption in the middle is NOT tolerated.
	data, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(data), "\n")
	os.WriteFile(path, []byte("garbage\n"+strings.Join(lines, "")), 0o644)
	if _, _, err := ReadDir(dir); err == nil {
		t.Error("mid-file corruption should error")
	}
}

func TestRecordKeyDistinguishesAxes(t *testing.T) {
	base := testRecord(0)
	keys := map[string]string{}
	add := func(name string, r Record) {
		k := r.Key()
		if prev, dup := keys[k]; dup {
			t.Errorf("%s collides with %s: %s", name, prev, k)
		}
		keys[k] = name
	}
	add("base", base)
	r := base
	r.Scheme = "cpvf"
	add("scheme", r)
	r = base
	r.Scenario = "corridor"
	add("scenario", r)
	r = base
	r.N = 60
	add("n", r)
	r = base
	r.Repeat = 9
	add("repeat", r)
	r = base
	r.Seed = 77
	add("seed", r)
	r = base
	r.ConfigFingerprint = "aaaaaaaaaaaaaaaa"
	add("config", r)

	// Index and metrics are NOT part of the key (same computation).
	r = base
	r.Index = 99
	r.Coverage = 0.99
	if r.Key() != base.Key() {
		t.Error("key should ignore index and metrics")
	}
}
