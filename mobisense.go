// Package mobisense is a reproduction of "Connectivity-Guaranteed and
// Obstacle-Adaptive Deployment Schemes for Mobile Sensor Networks" (Tan,
// Jarvis, Kermarrec; ICDCS 2008 / IEEE TMC 2009) as a reusable Go library.
//
// It simulates the self-deployment of mobile sensor networks in 2-D fields
// with arbitrary rectangular/polygonal obstacles and provides:
//
//   - CPVF, the Connectivity-Preserved Virtual Force scheme (§4);
//   - FLOOR, the floor-based vine-growth scheme (§5);
//   - the VOR and Minimax Voronoi baselines of Wang et al. and the strip
//     pattern of Bai et al. for comparison (§6);
//   - coverage, moving-distance and message-overhead measurement matching
//     the paper's evaluation.
//
// Quick start:
//
//	cfg := mobisense.DefaultConfig(mobisense.SchemeFLOOR)
//	res, err := mobisense.Run(cfg)
//	if err != nil { ... }
//	fmt.Printf("coverage %.1f%%\n", 100*res.Coverage)
package mobisense

import (
	"fmt"
	"time"

	"mobisense/internal/baseline"
	"mobisense/internal/core"
	"mobisense/internal/coverage"
	"mobisense/internal/cpvf"
	ifield "mobisense/internal/field"
	"mobisense/internal/floor"
	"mobisense/internal/geom"
	"mobisense/internal/render"
)

// Run executes one deployment according to cfg and returns its metrics.
func Run(cfg Config) (Result, error) {
	start := time.Now()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	f := cfg.Field.internal()
	params := cfg.params()

	w, err := core.NewWorld(f, params)
	if err != nil {
		return Result{}, fmt.Errorf("mobisense: %w", err)
	}

	var res Result
	switch cfg.Scheme {
	case SchemeCPVF, SchemeFLOOR:
		var scheme core.Scheme
		var onKill func(int, []int)
		if cfg.Scheme == SchemeCPVF {
			cs := cpvf.New(cfg.cpvfConfig())
			scheme, onKill = cs, cs.HandleFailure
		} else {
			fs := floor.New(cfg.floorConfig())
			scheme, onKill = fs, fs.HandleFailure
		}
		scheme.Attach(w)
		if fo := cfg.Failures; fo != nil {
			inj := &core.FailureInjector{
				Interval: fo.Interval,
				MaxKills: fo.MaxKills,
				OnKill:   onKill,
			}
			inj.Attach(w)
		}
		w.E.RunUntil(params.Duration)
		res = resultFromWorld(cfg, w)
		if fs, ok := scheme.(*floor.Scheme); ok {
			res.Placements = fs.PlacementsByKind()
		}

	case SchemeVOR, SchemeMinimax:
		starts := w.Layout()
		vdCfg := cfg.vdConfig()
		var vd baseline.VDResult
		if cfg.Scheme == SchemeVOR {
			vd, err = baseline.RunVOR(f, starts, vdCfg)
		} else {
			vd, err = baseline.RunMinimax(f, starts, vdCfg)
		}
		if err != nil {
			return Result{}, fmt.Errorf("mobisense: %w", err)
		}
		res = resultFromLayout(cfg, f, vd.Positions, vd.AvgDistance())
		res.IncorrectVoronoiCells = vd.IncorrectCells

	case SchemeOPT:
		starts := w.Layout()
		layout := baseline.StripPattern(f.Bounds(), params.N, params.Rc, params.Rs)
		dists, err := baseline.MinMatchingDistance(starts, layout)
		if err != nil {
			return Result{}, fmt.Errorf("mobisense: %w", err)
		}
		var sum float64
		for _, d := range dists {
			sum += d
		}
		res = resultFromLayout(cfg, f, layout, sum/float64(len(dists)))

	default:
		return Result{}, fmt.Errorf("mobisense: unknown scheme %q", cfg.Scheme)
	}

	res.Elapsed = time.Since(start)
	return res, nil
}

// resultFromWorld gathers metrics from an event-driven scheme run. All
// layout metrics consider the surviving sensors only.
func resultFromWorld(cfg Config, w *core.World) Result {
	layout := w.AliveLayout()
	res := resultFromLayout(cfg, w.F, layout, w.AvgTraveled())
	res.Messages = w.Msg.Total()
	res.MessagesByKind = w.Msg.ByKind()
	res.ConvergenceTime = w.LastMoveTime()
	res.Alive = w.AliveCount()
	return res
}

// resultFromLayout computes the layout-dependent metrics shared by all
// schemes.
func resultFromLayout(cfg Config, f *ifield.Field, layout []geom.Vec, avgDist float64) Result {
	est := coverage.NewEstimator(f, cfg.coverageRes())
	positions := make([]Point, len(layout))
	for i, p := range layout {
		positions[i] = Point{X: p.X, Y: p.Y}
	}
	return Result{
		Scheme:          cfg.Scheme,
		Coverage:        est.Fraction(layout, cfg.Rs),
		Coverage2:       est.KFraction(layout, cfg.Rs, 2),
		AvgMoveDistance: avgDist,
		Connected:       core.AllConnected(layout, f.Reference(), cfg.Rc),
		Positions:       positions,
		Alive:           len(positions),
		fieldRef:        f,
	}
}

// ASCIIMap renders the result's final layout as a text map with the given
// number of character columns (legend: '.' free, '#' obstacle, 'B' base
// station, digits sensor counts).
func (r Result) ASCIIMap(cols int) string {
	if r.fieldRef == nil {
		return ""
	}
	layout := make([]geom.Vec, len(r.Positions))
	for i, p := range r.Positions {
		layout[i] = geom.V(p.X, p.Y)
	}
	return render.ASCIIMap(r.fieldRef, layout, cols)
}

// PositionsCSV renders the final sensor positions as CSV ("id,x,y").
func (r Result) PositionsCSV() string {
	layout := make([]geom.Vec, len(r.Positions))
	for i, p := range r.Positions {
		layout[i] = geom.V(p.X, p.Y)
	}
	return render.PositionsCSV(layout)
}
