// Package mobisense is a reproduction of "Connectivity-Guaranteed and
// Obstacle-Adaptive Deployment Schemes for Mobile Sensor Networks" (Tan,
// Jarvis, Kermarrec; ICDCS 2008 / IEEE TMC 2009) as a reusable Go library.
//
// It simulates the self-deployment of mobile sensor networks in 2-D fields
// with arbitrary rectangular/polygonal obstacles and provides:
//
//   - CPVF, the Connectivity-Preserved Virtual Force scheme (§4);
//   - FLOOR, the floor-based vine-growth scheme (§5);
//   - the VOR and Minimax Voronoi baselines of Wang et al. and the strip
//     pattern of Bai et al. for comparison (§6);
//   - coverage, moving-distance and message-overhead measurement matching
//     the paper's evaluation.
//
// Quick start:
//
//	cfg := mobisense.DefaultConfig(mobisense.SchemeFLOOR)
//	res, err := mobisense.Run(cfg)
//	if err != nil { ... }
//	fmt.Printf("coverage %.1f%%\n", 100*res.Coverage)
package mobisense

import (
	"fmt"
	"sync"
	"time"

	"mobisense/internal/core"
	ifield "mobisense/internal/field"
	"mobisense/internal/geom"
	"mobisense/internal/metrics"
	"mobisense/internal/render"
)

// Process-wide run telemetry, exported by the deployment service's
// /metrics endpoint. Handles are resolved once; per-run updates are
// single atomic ops, so instrumentation stays invisible to the bench
// gate's allocation counts.
var (
	runsStarted  = metrics.Default.Counter("runs_started_total")
	runsFinished = metrics.Default.Counter("runs_finished_total")
	runsFailed   = metrics.Default.Counter("runs_failed_total")
	// schemeDurations caches the per-scheme run-duration histogram handles
	// so the hot path never re-composes a series name.
	schemeDurations sync.Map // Scheme -> *metrics.Histogram

	// Convergence histograms, observed only for traced runs (untraced runs
	// derive no convergence metrics, so the hot path stays untouched). The
	// buckets are simulation seconds spanning quick small-field runs up to
	// the paper's 750 s horizon and stabilized extensions beyond it.
	convergenceBuckets = []float64{10, 25, 50, 100, 150, 200, 300, 400, 500, 750, 1000, 1500, 2000}
	settlingTimes      = metrics.Default.Histogram("run_settling_time_seconds", convergenceBuckets)
	t90Times           = metrics.Default.Histogram("run_time_to_90_coverage_seconds", convergenceBuckets)
	connectivityTimes  = metrics.Default.Histogram("run_time_to_connectivity_seconds", convergenceBuckets)
)

func runDuration(s Scheme) *metrics.Histogram {
	if h, ok := schemeDurations.Load(s); ok {
		return h.(*metrics.Histogram)
	}
	h := metrics.Default.Histogram(fmt.Sprintf("run_duration_seconds{scheme=%q}", s), nil)
	schemeDurations.Store(s, h)
	return h
}

// Run executes one deployment according to cfg and returns its metrics.
// The scheme is resolved through the scheme registry; see
// RegisteredSchemes for the available names.
func Run(cfg Config) (Result, error) {
	start := time.Now()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	runner, ok := lookupScheme(cfg.Scheme)
	if !ok {
		return Result{}, fmt.Errorf("mobisense: unknown scheme %q", cfg.Scheme)
	}
	runsStarted.Inc()
	res, err := runner(cfg, cfg.Field.internal())
	if err != nil {
		runsFailed.Inc()
		return Result{}, err
	}
	res.Elapsed = time.Since(start)
	runsFinished.Inc()
	runDuration(cfg.Scheme).Observe(res.Elapsed.Seconds())
	if res.Convergence = ConvergenceFrom(res.Trace); res.Convergence != nil {
		settlingTimes.Observe(res.Convergence.SettlingTime)
		t90Times.Observe(res.Convergence.TimeTo90Coverage)
		if res.Convergence.TimeToConnectivity >= 0 {
			connectivityTimes.Observe(res.Convergence.TimeToConnectivity)
		}
	}
	return res, nil
}

// resultFromWorld gathers metrics from an event-driven scheme run. All
// layout metrics consider the surviving sensors only. A traced run hands
// in its tracer so the final coverage figures are read from the already
// up-to-date incremental tracker instead of a fresh full scan
// (bit-identical: the tracker's integer counts are the brute scan's).
func resultFromWorld(cfg Config, w *core.World, tr *tracer) Result {
	layout := w.AliveLayout()
	var cov, cov2 float64
	if tr != nil && tr.wt != nil && tr.wt.seeded {
		tr.wt.sync(w)
		cov, cov2 = tr.wt.t.Fraction(), tr.wt.t.KFraction(2)
	} else {
		cov, cov2 = coveragePair(cfg, cfg.estimatorFor(w.F), layout)
	}
	res := resultWithCoverage(cfg, w.F, layout, w.AvgTraveled(), cov, cov2)
	res.Messages = w.Msg.Total()
	res.MessagesByKind = w.Msg.ByKind()
	res.ConvergenceTime = w.LastMoveTime()
	res.Alive = w.AliveCount()
	return res
}

// resultFromLayout computes the layout-dependent metrics shared by all
// schemes.
func resultFromLayout(cfg Config, f *ifield.Field, layout []geom.Vec, avgDist float64) Result {
	cov, cov2 := coveragePair(cfg, cfg.estimatorFor(f), layout)
	return resultWithCoverage(cfg, f, layout, avgDist, cov, cov2)
}

func resultWithCoverage(cfg Config, f *ifield.Field, layout []geom.Vec, avgDist, cov, cov2 float64) Result {
	positions := toPoints(layout)
	return Result{
		Scheme:          cfg.Scheme,
		Coverage:        cov,
		Coverage2:       cov2,
		AvgMoveDistance: avgDist,
		Connected:       core.AllConnected(layout, f.Reference(), cfg.Rc),
		Positions:       positions,
		Alive:           len(positions),
		fieldRef:        f,
	}
}

// ASCIIMap renders the result's final layout as a text map with the given
// number of character columns (legend: '.' free, '#' obstacle, 'B' base
// station, digits sensor counts).
func (r Result) ASCIIMap(cols int) string {
	if r.fieldRef == nil {
		return ""
	}
	layout := make([]geom.Vec, len(r.Positions))
	for i, p := range r.Positions {
		layout[i] = geom.V(p.X, p.Y)
	}
	return render.ASCIIMap(r.fieldRef, layout, cols)
}

// PositionsCSV renders the final sensor positions as CSV ("id,x,y").
func (r Result) PositionsCSV() string {
	layout := make([]geom.Vec, len(r.Positions))
	for i, p := range r.Positions {
		layout[i] = geom.V(p.X, p.Y)
	}
	return render.PositionsCSV(layout)
}
