package mobisense

import (
	"math"
	"strings"
	"testing"

	"mobisense/internal/render"
)

// quickConfig shrinks the default scenario for fast API tests.
func quickConfig(s Scheme) Config {
	cfg := DefaultConfig(s)
	cfg.N = 40
	cfg.Duration = 120
	f, err := NewField(400, 400, nil)
	if err != nil {
		panic(err)
	}
	cfg.Field = f
	cfg.Rc = 50
	cfg.Rs = 30
	return cfg
}

func TestRunAllSchemes(t *testing.T) {
	for _, s := range []Scheme{SchemeCPVF, SchemeFLOOR, SchemeVOR, SchemeMinimax, SchemeOPT} {
		s := s
		t.Run(string(s), func(t *testing.T) {
			res, err := Run(quickConfig(s))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Scheme != s {
				t.Errorf("scheme = %q", res.Scheme)
			}
			if res.Coverage <= 0 || res.Coverage > 1 {
				t.Errorf("coverage = %v", res.Coverage)
			}
			if len(res.Positions) != 40 {
				t.Errorf("positions = %d", len(res.Positions))
			}
			if res.AvgMoveDistance < 0 {
				t.Errorf("distance = %v", res.AvgMoveDistance)
			}
		})
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Scheme: "bogus"}); err == nil {
		t.Error("bogus scheme should error")
	}
	if _, err := Run(Config{Scheme: SchemeCPVF}); err == nil {
		t.Error("missing field should error")
	}
	cfg := quickConfig(SchemeCPVF)
	cfg.N = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero sensors should error")
	}
}

func TestRunDeterminism(t *testing.T) {
	a, err := Run(quickConfig(SchemeFLOOR))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickConfig(SchemeFLOOR))
	if err != nil {
		t.Fatal(err)
	}
	if a.Coverage != b.Coverage || a.AvgMoveDistance != b.AvgMoveDistance || a.Messages != b.Messages {
		t.Error("identical configs produced different results")
	}
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] {
			t.Fatalf("position %d diverged", i)
		}
	}
}

func TestSchemesGuaranteeConnectivity(t *testing.T) {
	for _, s := range []Scheme{SchemeCPVF, SchemeFLOOR} {
		cfg := quickConfig(s)
		cfg.Duration = 300
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Connected {
			t.Errorf("%s: final network disconnected", s)
		}
	}
}

func TestVORBaselineDisconnectsAtSmallRc(t *testing.T) {
	cfg := quickConfig(SchemeVOR)
	cfg.Rc = 24 // rc/rs = 0.8, the Fig 10 failure regime
	cfg.Rs = 30
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Connected {
		t.Error("VOR at rc/rs=0.8 should disconnect (Fig 10)")
	}
	if res.IncorrectVoronoiCells == 0 {
		t.Error("expected incorrect local Voronoi cells")
	}
}

func TestFieldConstructors(t *testing.T) {
	of := ObstacleFreeField()
	if w, h := of.Bounds(); w != 1000 || h != 1000 {
		t.Errorf("bounds = %v x %v", w, h)
	}
	if of.NumObstacles() != 0 {
		t.Error("obstacle-free field has obstacles")
	}
	two := TwoObstacleField()
	if two.NumObstacles() != 2 {
		t.Errorf("two-obstacle field has %d obstacles", two.NumObstacles())
	}
	if frac := two.FreeAreaFraction(); frac >= 1 || frac < 0.9 {
		t.Errorf("free fraction = %v", frac)
	}
	if _, err := RandomObstacleField(7); err != nil {
		t.Errorf("random field: %v", err)
	}
	if _, err := NewField(100, 100, [][4]float64{{-10, -10, 200, 200}}); err == nil {
		t.Error("field-covering obstacle should error")
	}
}

func TestResultRenderers(t *testing.T) {
	res, err := Run(quickConfig(SchemeFLOOR))
	if err != nil {
		t.Fatal(err)
	}
	m := res.ASCIIMap(40)
	if !strings.Contains(m, "B") {
		t.Error("map missing base station")
	}
	if len(strings.Split(strings.TrimSpace(m), "\n")) < 5 {
		t.Error("map too short")
	}
	csv := res.PositionsCSV()
	if !strings.HasPrefix(csv, "id,x,y\n") {
		t.Error("csv header missing")
	}
	if got := len(strings.Split(strings.TrimSpace(csv), "\n")); got != 41 {
		t.Errorf("csv rows = %d, want 41", got)
	}
}

func TestCPVFOptionsRoundTrip(t *testing.T) {
	cfg := quickConfig(SchemeCPVF)
	cfg.CPVF = &CPVFOptions{Oscillation: "two-step", Delta: 2}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.CPVF = &CPVFOptions{Oscillation: "one-step", Delta: 8, DisallowParentChange: true}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFloorPlacementsReported(t *testing.T) {
	cfg := quickConfig(SchemeFLOOR)
	cfg.Duration = 300
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placements == nil {
		t.Fatal("FLOOR placements missing")
	}
	total := res.Placements["flg"] + res.Placements["blg"] + res.Placements["iflg"]
	if total == 0 {
		t.Error("no placements recorded")
	}
}

func TestRunWithFailures(t *testing.T) {
	cfg := quickConfig(SchemeFLOOR)
	cfg.Duration = 400
	cfg.Failures = &FailureOptions{Interval: 40, MaxKills: 4}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Alive != cfg.N-4 {
		t.Errorf("alive = %d, want %d", res.Alive, cfg.N-4)
	}
	if len(res.Positions) != res.Alive {
		t.Errorf("positions (%d) should cover survivors only (%d)", len(res.Positions), res.Alive)
	}
	// Coverage must remain sane and 2-coverage must not exceed 1-coverage.
	if res.Coverage <= 0 || res.Coverage2 > res.Coverage {
		t.Errorf("coverage=%v coverage2=%v", res.Coverage, res.Coverage2)
	}
}

func TestCoverage2Reported(t *testing.T) {
	res, err := Run(quickConfig(SchemeOPT))
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage2 < 0 || res.Coverage2 > res.Coverage {
		t.Errorf("coverage2 = %v vs coverage %v", res.Coverage2, res.Coverage)
	}
}

// TestPositionsCSVRoundTrip: a real deployment's PositionsCSV output
// parses back into the identical layout (at the CSV's millimeter write
// precision) — the contract that makes exported layouts replayable.
func TestPositionsCSVRoundTrip(t *testing.T) {
	res, err := Run(quickConfig(SchemeFLOOR))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positions) == 0 {
		t.Fatal("run produced no positions")
	}
	parsed, err := render.ParsePositionsCSV(res.PositionsCSV())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(res.Positions) {
		t.Fatalf("parsed %d positions, want %d", len(parsed), len(res.Positions))
	}
	for i, p := range parsed {
		if math.Abs(p.X-res.Positions[i].X) > 0.0005 || math.Abs(p.Y-res.Positions[i].Y) > 0.0005 {
			t.Errorf("position %d = (%v,%v), want (%v,%v) ±0.0005",
				i, p.X, p.Y, res.Positions[i].X, res.Positions[i].Y)
		}
	}
}
