package mobisense

import (
	"context"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// preAxisSweep reconstructs the sweep that produced the checked-in
// pre-axis store fixture (testdata/preaxis, see gen.go there).
func preAxisSweep() Sweep {
	cfg := DefaultConfig(SchemeFLOOR)
	cfg.N = 20
	cfg.Duration = 60
	return Sweep{
		Base:      cfg,
		Schemes:   []Scheme{SchemeCPVF, SchemeFLOOR},
		Scenarios: []string{"free", "random-obstacles"},
		Repeats:   2,
		Seed:      42,
	}
}

// copyDir clones a fixture store into a writable temp directory.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPreAxisStoreFixture is the backward-compatibility acceptance test:
// stores written before the axis system (checked in under
// testdata/preaxis) must still load, resume without re-running any stored
// record, and merge into the same aggregates a live run produces.
func TestPreAxisStoreFixture(t *testing.T) {
	sweep := preAxisSweep()
	shard0 := filepath.Join("testdata", "preaxis", "shard0")
	shard1Fixture := filepath.Join("testdata", "preaxis", "shard1")

	// Load: the complete pre-axis shard parses, axes absent.
	data, err := LoadStores(shard0)
	if err != nil {
		t.Fatalf("pre-axis store no longer loads: %v", err)
	}
	if !data.Stores[0].Complete || data.Stores[0].TotalRuns != 4 || len(data.Runs) != 4 {
		t.Fatalf("pre-axis shard0 = %+v with %d runs", data.Stores[0], len(data.Runs))
	}
	for _, br := range data.Runs {
		if br.Spec.Axes != nil {
			t.Errorf("pre-axis record %d grew axes: %+v", br.Spec.Index, br.Spec.Axes)
		}
	}

	// Resume: the interrupted pre-axis shard1 (2 of 4 records) continues
	// under the axis-aware runner, executing only the missing runs.
	shard1 := filepath.Join(t.TempDir(), "shard1")
	copyDir(t, shard1Fixture, shard1)
	executed := 0
	if _, err := sweep.Run(context.Background(), BatchOptions{
		Workers:    1,
		Store:      &Store{Dir: shard1, Resume: true},
		Shard:      Shard{Index: 1, Count: 2},
		OnProgress: func(int, int) { executed++ },
	}); err != nil {
		t.Fatalf("pre-axis store no longer resumes: %v", err)
	}
	if executed != 2 {
		t.Errorf("resume executed %d runs, want 2 (2 of 4 were stored pre-axis)", executed)
	}

	// Merge: fixture shard0 + resumed shard1 reproduce the live sweep's
	// aggregates exactly (what cmd/report prints over these directories).
	want, err := sweep.Run(context.Background(), BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := LoadStores(shard0, shard1)
	if err != nil {
		t.Fatalf("pre-axis shards no longer merge: %v", err)
	}
	if len(merged.Runs) != len(want.Runs) {
		t.Fatalf("merged %d runs, want %d", len(merged.Runs), len(want.Runs))
	}
	if !reflect.DeepEqual(merged.Aggregates, want.Aggregates) {
		t.Errorf("pre-axis merge aggregates differ from live run:\nmerged: %+v\nwant:   %+v",
			merged.Aggregates, want.Aggregates)
	}
}
