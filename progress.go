package mobisense

import (
	"time"

	istore "mobisense/internal/store"
)

// ProgressSnapshot is a point-in-time view of a batch or sweep's
// completion, shared by the deployment server's SSE progress events and
// cmd/report's -watch mode.
type ProgressSnapshot struct {
	// Done and Total count completed and expected runs (replayed runs
	// count as done).
	Done, Total int
	// Complete is true once every expected run is done.
	Complete bool
	// Elapsed is the observation window the ETA is extrapolated from: the
	// job's wall-clock runtime for a live server job, the poll interval
	// for a watcher, or the store's summed compute time for a cold store.
	Elapsed time.Duration
	// ETA estimates the remaining time at the observed rate (zero when no
	// rate is observable yet).
	ETA time.Duration
}

// SnapshotProgress summarizes completion and extrapolates an ETA from the
// observed rate. rateRuns is the number of runs actually executed during
// elapsed — callers exclude runs replayed from a store so instant replays
// don't skew the estimate.
func SnapshotProgress(done, total, rateRuns int, elapsed time.Duration) ProgressSnapshot {
	ps := ProgressSnapshot{
		Done:     done,
		Total:    total,
		Elapsed:  elapsed,
		Complete: total > 0 && done >= total,
	}
	if rateRuns > 0 && elapsed > 0 && done < total {
		per := elapsed / time.Duration(rateRuns)
		ps.ETA = per * time.Duration(total-done)
	}
	return ps
}

// ReadStoreProgress summarizes a store that another process may still be
// writing: how many of its expected records are on disk, and the total
// compute time recorded so far. dir may be a local directory or a remote
// store URL (see LoadStores). The ETA is left zero — a watcher
// derives it from the record-count delta between two polls (see
// SnapshotProgress).
func ReadStoreProgress(dir string) (ProgressSnapshot, error) {
	m, recs, err := istore.ReadDir(dir)
	if err != nil {
		return ProgressSnapshot{}, err
	}
	times, err := istore.ReadTimings(dir)
	if err != nil {
		return ProgressSnapshot{}, err
	}
	var elapsed time.Duration
	for _, d := range times {
		elapsed += d
	}
	return ProgressSnapshot{
		Done:     len(recs),
		Total:    m.TotalRuns,
		Complete: m.Complete || (m.TotalRuns > 0 && len(recs) >= m.TotalRuns),
		Elapsed:  elapsed,
	}, nil
}
