package mobisense

import (
	"fmt"
	"sort"
	"sync"

	"mobisense/internal/baseline"
	"mobisense/internal/core"
	"mobisense/internal/cpvf"
	ifield "mobisense/internal/field"
	"mobisense/internal/floor"
	"mobisense/internal/geom"
	"mobisense/internal/matching"
)

// schemeRunner executes one deployment of a registered scheme on a
// validated config. The field is the unwrapped cfg.Field.
type schemeRunner func(cfg Config, f *ifield.Field) (Result, error)

var (
	schemeMu      sync.RWMutex
	schemeRunners = map[Scheme]schemeRunner{}
)

// registerScheme adds a scheme to the registry. Run and Config.validate
// resolve schemes exclusively through it, so a new scheme plugs in with a
// single registration and no changes to the run path.
func registerScheme(s Scheme, r schemeRunner) {
	if s == "" || r == nil {
		panic("mobisense: registerScheme with empty name or nil runner")
	}
	schemeMu.Lock()
	defer schemeMu.Unlock()
	if _, dup := schemeRunners[s]; dup {
		panic(fmt.Sprintf("mobisense: scheme %q registered twice", s))
	}
	schemeRunners[s] = r
}

func lookupScheme(s Scheme) (schemeRunner, bool) {
	schemeMu.RLock()
	defer schemeMu.RUnlock()
	r, ok := schemeRunners[s]
	return r, ok
}

// RegisteredSchemes returns the names of all available deployment schemes
// in sorted order.
func RegisteredSchemes() []Scheme {
	schemeMu.RLock()
	defer schemeMu.RUnlock()
	out := make([]Scheme, 0, len(schemeRunners))
	for s := range schemeRunners {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func init() {
	registerScheme(SchemeCPVF, func(cfg Config, f *ifield.Field) (Result, error) {
		s := cpvf.New(cfg.cpvfConfig())
		return runEventScheme(cfg, f, s, s.HandleFailure)
	})
	registerScheme(SchemeFLOOR, func(cfg Config, f *ifield.Field) (Result, error) {
		s := floor.New(cfg.floorConfig())
		return runEventScheme(cfg, f, s, s.HandleFailure)
	})
	registerScheme(SchemeVOR, func(cfg Config, f *ifield.Field) (Result, error) {
		return runVDScheme(cfg, f, baseline.RunVOR)
	})
	registerScheme(SchemeMinimax, func(cfg Config, f *ifield.Field) (Result, error) {
		return runVDScheme(cfg, f, baseline.RunMinimax)
	})
	registerScheme(SchemeOPT, runOPTScheme)
}

// runEventScheme drives an event-driven scheme (CPVF, FLOOR) through the
// simulation engine, with optional failure injection and §6-style
// stabilization (keep simulating past the horizon until a whole chunk
// passes without movement).
func runEventScheme(cfg Config, f *ifield.Field, scheme core.Scheme, onKill func(int, []int)) (Result, error) {
	params := cfg.params()
	minHorizon := params.Duration
	var stabCap, stabChunk float64
	if st := cfg.Stabilize; st != nil && st.Cap > minHorizon {
		// Schemes schedule their per-period events only up to
		// params.Duration, so the horizon is raised to the cap up front and
		// the run cut short once a whole chunk passes without movement.
		stabCap = st.Cap
		stabChunk = st.Chunk
		if stabChunk <= 0 {
			stabChunk = 250
		}
		params.Duration = stabCap
	}

	w, err := core.NewWorld(f, params)
	if err != nil {
		return Result{}, fmt.Errorf("mobisense: %w", err)
	}
	starts := w.Layout()
	scheme.Attach(w)
	if fo := cfg.Failures; fo != nil {
		inj := &core.FailureInjector{
			Interval: fo.Interval,
			MaxKills: fo.MaxKills,
			OnKill:   onKill,
		}
		inj.Attach(w)
	}
	var tr *tracer
	if cfg.Trace != nil {
		tr = &tracer{cfg: cfg, f: f}
		tr.attach(w, params.Duration)
	}
	w.E.RunUntil(minHorizon)
	for stabCap > 0 && w.Now() < stabCap && w.LastMoveTime() > w.Now()-stabChunk {
		w.E.RunUntil(w.Now() + stabChunk)
	}

	res := resultFromWorld(cfg, w, tr)
	res.InitialPositions = toPoints(starts)
	if tr != nil {
		res.Trace = tr.samples
		if tr.wt != nil {
			tr.wt.release()
		}
	}
	if fs, ok := scheme.(*floor.Scheme); ok {
		res.Placements = fs.PlacementsByKind()
	}
	// Everything result-bearing has been copied out of the world; recycle
	// its event heap and spatial index for the next run of the batch.
	w.Release()
	return res, nil
}

// runVDScheme drives one of the Voronoi-diagram baselines (VOR, Minimax).
func runVDScheme(cfg Config, f *ifield.Field, run func(*ifield.Field, []geom.Vec, baseline.VDConfig) (baseline.VDResult, error)) (Result, error) {
	w, err := core.NewWorld(f, cfg.params())
	if err != nil {
		return Result{}, fmt.Errorf("mobisense: %w", err)
	}
	starts := w.Layout()
	vd, err := run(f, starts, cfg.vdConfig())
	if err != nil {
		return Result{}, fmt.Errorf("mobisense: %w", err)
	}
	res := resultFromLayout(cfg, f, vd.Positions, vd.AvgDistance())
	res.IncorrectVoronoiCells = vd.IncorrectCells
	res.InitialPositions = toPoints(starts)
	w.Release()
	return res, nil
}

// runOPTScheme places the centralized strip pattern directly; its moving
// distance is the Hungarian lower bound from the initial layout. When the
// field saturates before all sensors are used (the pattern needs fewer
// than N positions), the surplus sensors stay parked at their starts.
func runOPTScheme(cfg Config, f *ifield.Field) (Result, error) {
	params := cfg.params()
	w, err := core.NewWorld(f, params)
	if err != nil {
		return Result{}, fmt.Errorf("mobisense: %w", err)
	}
	starts := w.Layout()
	pattern := baseline.StripPattern(f.Bounds(), params.N, params.Rc, params.Rs)

	var layout []geom.Vec
	var sum float64
	if len(pattern) >= len(starts) {
		dists, err := baseline.MinMatchingDistance(starts, pattern)
		if err != nil {
			return Result{}, fmt.Errorf("mobisense: %w", err)
		}
		for _, d := range dists {
			sum += d
		}
		layout = pattern
	} else {
		src := make([]matching.Point, len(pattern))
		for i, p := range pattern {
			src[i] = matching.Point{X: p.X, Y: p.Y}
		}
		dst := make([]matching.Point, len(starts))
		for i, p := range starts {
			dst[i] = matching.Point{X: p.X, Y: p.Y}
		}
		assign, total, err := matching.SolvePoints(src, dst)
		if err != nil {
			return Result{}, fmt.Errorf("mobisense: %w", err)
		}
		sum = total
		layout = append([]geom.Vec(nil), starts...)
		for slot, sensor := range assign {
			layout[sensor] = pattern[slot]
		}
	}
	res := resultFromLayout(cfg, f, layout, sum/float64(len(starts)))
	res.InitialPositions = toPoints(starts)
	w.Release()
	return res, nil
}

func toPoints(layout []geom.Vec) []Point {
	out := make([]Point, len(layout))
	for i, p := range layout {
		out[i] = Point{X: p.X, Y: p.Y}
	}
	return out
}
