package mobisense

import (
	"time"

	"mobisense/internal/field"
)

// Result holds the metrics of one deployment run, mirroring the paper's
// evaluation quantities (§6).
type Result struct {
	// Scheme is the scheme that produced this result.
	Scheme Scheme
	// Coverage is the fraction of the free field area covered by at least
	// one sensing disk (line-of-sight through obstacles), §4.3's metric.
	Coverage float64
	// Coverage2 is the 2-coverage fraction (area seen by at least two
	// sensors), the "higher degree of coverage" of §7.
	Coverage2 float64
	// Alive is the number of surviving sensors (equals the configured N
	// unless failures were injected).
	Alive int
	// AvgMoveDistance is the mean per-sensor moving distance in meters —
	// the energy-dominating quantity of §6.2. For SchemeOPT it is the
	// Hungarian lower bound from the initial layout to the pattern.
	AvgMoveDistance float64
	// Messages is the total number of protocol message transmissions
	// (§6.5); zero for the non-message-based baselines.
	Messages int64
	// MessagesByKind breaks Messages down by protocol message type.
	MessagesByKind map[string]int64
	// ConvergenceTime is when the last committed movement ended.
	ConvergenceTime float64
	// Connected reports whether every sensor in the final layout is
	// unit-disk reachable from the base station — the paper's
	// connectivity guarantee.
	Connected bool
	// Positions is the final sensor layout.
	Positions []Point
	// InitialPositions is the starting layout the run deployed from
	// (before any failures), useful for relocation-cost lower bounds.
	InitialPositions []Point
	// Placements counts FLOOR's completed relocations per expansion type
	// (nil for other schemes).
	Placements map[string]int
	// IncorrectVoronoiCells counts sensors whose rc-local Voronoi cell
	// differs from the true cell (VOR/Minimax only; Figure 10's
	// "Incorrect VD" annotation).
	IncorrectVoronoiCells int
	// Elapsed is the wall-clock time of the run.
	Elapsed time.Duration
	// Trace is the run's per-tick telemetry series, present only when
	// Config.Trace was set (and only for event-driven schemes).
	Trace []TraceSample
	// Convergence derives transient metrics (time to 90%/99% coverage,
	// time to stable connectivity, settling time and the movement cost at
	// convergence) from Trace; nil exactly when Trace is empty.
	Convergence *Convergence

	fieldRef *field.Field
}
