package mobisense

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"

	"mobisense/internal/field"
)

// Scenario is a named, parameterized deployment environment. Scenarios are
// resolved by string from the CLIs and from Sweep, so new environments
// plug in with a single registration.
type Scenario struct {
	// Name identifies the scenario (e.g. "two-obstacles").
	Name string
	// Description is a one-line summary for catalogs and -help output.
	Description string
	// Seeded reports whether Build's output varies with the seed
	// (randomly generated environments). Unseeded scenarios are built once
	// per sweep and shared across runs.
	Seeded bool
	// Build constructs the scenario's field. Unseeded scenarios ignore the
	// seed.
	Build func(seed uint64) (Field, error)
}

var (
	scenarioMu      sync.RWMutex
	scenarioByName  = map[string]Scenario{}
	scenarioAliases = map[string]string{}
)

// RegisterScenario adds a scenario to the registry; it panics on an empty
// name, nil builder, or duplicate registration.
func RegisterScenario(sc Scenario) {
	if sc.Name == "" || sc.Build == nil {
		panic("mobisense: RegisterScenario with empty name or nil Build")
	}
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	if _, dup := scenarioByName[sc.Name]; dup {
		panic(fmt.Sprintf("mobisense: scenario %q registered twice", sc.Name))
	}
	if _, dup := scenarioAliases[sc.Name]; dup {
		panic(fmt.Sprintf("mobisense: scenario %q shadows an alias", sc.Name))
	}
	scenarioByName[sc.Name] = sc
}

// registerScenarioAlias makes alias resolve to the scenario named name.
func registerScenarioAlias(alias, name string) {
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	if _, dup := scenarioByName[alias]; dup {
		panic(fmt.Sprintf("mobisense: alias %q shadows a scenario", alias))
	}
	scenarioAliases[alias] = name
}

// LookupScenario resolves a scenario by name or alias.
func LookupScenario(name string) (Scenario, bool) {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	if target, ok := scenarioAliases[name]; ok {
		name = target
	}
	sc, ok := scenarioByName[name]
	return sc, ok
}

// Scenarios returns the registered scenarios sorted by name (aliases are
// not listed).
func Scenarios() []Scenario {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	out := make([]Scenario, 0, len(scenarioByName))
	for _, sc := range scenarioByName {
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ScenarioNames returns the registered scenario names, sorted.
func ScenarioNames() []string {
	scs := Scenarios()
	out := make([]string, len(scs))
	for i, sc := range scs {
		out[i] = sc.Name
	}
	return out
}

// BuildScenario constructs the named scenario's field. For seeded
// scenarios the seed selects the generated environment.
func BuildScenario(name string, seed uint64) (Field, error) {
	sc, ok := LookupScenario(name)
	if !ok {
		return Field{}, fmt.Errorf("mobisense: unknown scenario %q (have %v)", name, ScenarioNames())
	}
	return sc.Build(seed)
}

func init() {
	RegisterScenario(Scenario{
		Name:        "free",
		Description: "the paper's obstacle-free 1000×1000 m field (§4.3)",
		Build:       func(uint64) (Field, error) { return ObstacleFreeField(), nil },
	})
	registerScenarioAlias("obstacle-free", "free")

	RegisterScenario(Scenario{
		Name:        "two-obstacles",
		Description: "two wall slabs boxing in the initial cluster with three exits (Fig 3c/8c)",
		Build:       func(uint64) (Field, error) { return TwoObstacleField(), nil },
	})

	RegisterScenario(Scenario{
		Name:        "random-obstacles",
		Description: "1–4 random rectangular obstacles per §6.4; the seed picks the layout",
		Seeded:      true,
		Build:       RandomObstacleField,
	})
	registerScenarioAlias("random", "random-obstacles")

	RegisterScenario(Scenario{
		Name:        "corridor",
		Description: "serpentine corridor folded by three wall slabs with alternating gaps",
		Build:       func(uint64) (Field, error) { return Field{f: field.Corridor()}, nil },
	})
	registerScenarioAlias("maze", "corridor")

	RegisterScenario(Scenario{
		Name:        "campus",
		Description: "800×600 m campus: three buildings forming two corridors and a quad",
		Build:       func(uint64) (Field, error) { return Field{f: field.Campus()}, nil },
	})

	RegisterScenario(Scenario{
		Name:        "disaster",
		Description: "disaster zone strewn with 3–6 random debris fields; the seed picks the layout",
		Seeded:      true,
		Build: func(seed uint64) (Field, error) {
			rng := rand.New(rand.NewPCG(seed, seed^0x6d0b15a7e9c3))
			f, err := field.RandomObstacles(rng, field.DisasterObstacleConfig())
			if err != nil {
				return Field{}, fmt.Errorf("mobisense: %w", err)
			}
			return Field{f: f}, nil
		},
	})
}
