package mobisense

import (
	"fmt"
	"sort"
	"sync"
)

// Scenario is a named, parameterized deployment environment. Scenarios are
// resolved by string from the CLIs and from Sweep, so new environments
// plug in with a single registration. Since the field-spec refactor a
// scenario is data first: its geometry lives in a declarative FieldSpec
// that encodes to JSON, embeds in store manifests, and rebuilds the exact
// same field anywhere; the optional Build hook remains for environments
// that cannot be expressed as data.
type Scenario struct {
	// Name identifies the scenario (e.g. "two-obstacles").
	Name string
	// Description is a one-line summary for catalogs and -help output.
	Description string
	// Seeded reports whether the built field varies with the seed
	// (randomly generated environments). It is set automatically for
	// specs with a Generator. Unseeded scenarios are built once per sweep
	// and shared across runs.
	Seeded bool
	// Spec is the scenario's declarative geometry. RegisterScenario
	// normalizes it, so lookups always observe the canonical form.
	Spec FieldSpec
	// Build, when set, overrides spec-driven construction. Scenarios with
	// only a Build cannot be exported to foreign machines; prefer Spec.
	Build func(seed uint64) (Field, error)
}

var (
	scenarioMu      sync.RWMutex
	scenarioByName  = map[string]Scenario{}
	scenarioAliases = map[string]string{}
)

// RegisterScenario adds a scenario to the registry; it panics on an empty
// name, a scenario with neither a Spec nor a Build, an invalid spec, or a
// duplicate registration.
func RegisterScenario(sc Scenario) {
	if sc.Name == "" || (sc.Build == nil && sc.Spec.Empty()) {
		panic("mobisense: RegisterScenario needs a name and a Spec or Build")
	}
	if !sc.Spec.Empty() {
		n, err := sc.Spec.Normalize()
		if err != nil {
			panic(fmt.Sprintf("mobisense: scenario %q: %v", sc.Name, err))
		}
		n.Name = sc.Name
		sc.Spec = n
		if sc.Spec.Seeded() {
			sc.Seeded = true
		}
	}
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	if _, dup := scenarioByName[sc.Name]; dup {
		panic(fmt.Sprintf("mobisense: scenario %q registered twice", sc.Name))
	}
	if _, dup := scenarioAliases[sc.Name]; dup {
		panic(fmt.Sprintf("mobisense: scenario %q shadows an alias", sc.Name))
	}
	scenarioByName[sc.Name] = sc
}

// registerScenarioAlias makes alias resolve to the scenario named name.
func registerScenarioAlias(alias, name string) {
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	if _, dup := scenarioByName[alias]; dup {
		panic(fmt.Sprintf("mobisense: alias %q shadows a scenario", alias))
	}
	scenarioAliases[alias] = name
}

// LookupScenario resolves a scenario by name or alias.
func LookupScenario(name string) (Scenario, bool) {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	if target, ok := scenarioAliases[name]; ok {
		name = target
	}
	sc, ok := scenarioByName[name]
	return sc, ok
}

// Scenarios returns the registered scenarios sorted by name (aliases are
// not listed).
func Scenarios() []Scenario {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	out := make([]Scenario, 0, len(scenarioByName))
	for _, sc := range scenarioByName {
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ScenarioNames returns the registered scenario names, sorted.
func ScenarioNames() []string {
	scs := Scenarios()
	out := make([]string, len(scs))
	for i, sc := range scs {
		out[i] = sc.Name
	}
	return out
}

// BuildScenario constructs the named scenario's field. For seeded
// scenarios the seed selects the generated environment. Builds are
// cached (see BuildFieldSpec), so the schemes of a paired comparison —
// and repeated requests for the same generated environment — share one
// field instead of regenerating it.
func BuildScenario(name string, seed uint64) (Field, error) {
	sc, ok := LookupScenario(name)
	if !ok {
		return Field{}, fmt.Errorf("mobisense: unknown scenario %q (have %v)", name, ScenarioNames())
	}
	return sc.buildField(seed)
}

// buildField constructs the scenario's field through the shared build
// cache. Unseeded scenarios normalize the cache seed to 0 so every seed
// maps to the single shared instance.
func (sc Scenario) buildField(seed uint64) (Field, error) {
	if sc.Build != nil {
		eff := seed
		if !sc.Seeded {
			eff = 0
		}
		return cachedFieldBuild("name:"+sc.Name, eff, func() (Field, error) {
			return sc.Build(seed)
		})
	}
	return BuildFieldSpec(sc.Spec, seed)
}

// fieldBuildCache memoizes field construction by geometry identity and
// seed. Building a field validates free-space connectivity on a grid —
// pure waste to repeat for the same geometry — and sharing the immutable
// *field.Field also lets the batch runner's estimator cache share one
// coverage estimator across every run of that environment. The cache is
// bounded FIFO; a sweep touches few distinct fields, so the bound only
// matters for long-lived services crossing many seeded layouts.
const fieldBuildCacheCap = 128

var fieldBuildCache = struct {
	sync.Mutex
	m     map[fieldCacheKey]Field
	order []fieldCacheKey
}{m: map[fieldCacheKey]Field{}}

type fieldCacheKey struct {
	id   string
	seed uint64
}

func cachedFieldBuild(id string, seed uint64, build func() (Field, error)) (Field, error) {
	k := fieldCacheKey{id, seed}
	fieldBuildCache.Lock()
	if f, ok := fieldBuildCache.m[k]; ok {
		fieldBuildCache.Unlock()
		return f, nil
	}
	fieldBuildCache.Unlock()
	// Build outside the lock: construction can flood-fill a large grid,
	// and a duplicate concurrent build is benign (identical geometry).
	f, err := build()
	if err != nil || f.f == nil {
		return f, err
	}
	fieldBuildCache.Lock()
	if _, ok := fieldBuildCache.m[k]; !ok {
		fieldBuildCache.m[k] = f
		fieldBuildCache.order = append(fieldBuildCache.order, k)
		if len(fieldBuildCache.order) > fieldBuildCacheCap {
			evict := fieldBuildCache.order[0]
			fieldBuildCache.order = fieldBuildCache.order[1:]
			delete(fieldBuildCache.m, evict)
		}
	}
	fieldBuildCache.Unlock()
	return f, nil
}

// standardBoundsSpec is the paper's 1000×1000 m field rectangle (§4.3).
func standardBoundsSpec() RectSpec { return RectSpec{MaxX: 1000, MaxY: 1000} }

func init() {
	RegisterScenario(Scenario{
		Name:        "free",
		Description: "the paper's obstacle-free 1000×1000 m field (§4.3)",
		Spec:        FieldSpec{Bounds: standardBoundsSpec()},
	})
	registerScenarioAlias("obstacle-free", "free")

	RegisterScenario(Scenario{
		Name:        "two-obstacles",
		Description: "two wall slabs boxing in the initial cluster with three exits (Fig 3c/8c)",
		Spec: FieldSpec{
			Bounds: standardBoundsSpec(),
			Obstacles: []ObstacleSpec{
				RectObstacle(500, 40, 550, 500),  // vertical slab; bottom exit y ∈ [0,40]
				RectObstacle(120, 500, 450, 550), // horizontal slab; left exit x ∈ [0,120], corner exit x ∈ [450,500]
			},
		},
	})

	RegisterScenario(Scenario{
		Name:        "random-obstacles",
		Description: "1–4 random rectangular obstacles per §6.4; the seed picks the layout",
		Spec: FieldSpec{
			Bounds: standardBoundsSpec(),
			// Salt matches the pre-spec RandomObstacleField stream, so old
			// seeds keep producing bit-identical layouts.
			Generator: &GeneratorSpec{MinCount: 1, MaxCount: 4, MinSide: 80, MaxSide: 400, KeepClear: 30, Salt: 0xabcdef12345},
		},
	})
	registerScenarioAlias("random", "random-obstacles")

	RegisterScenario(Scenario{
		Name:        "corridor",
		Description: "serpentine corridor folded by three wall slabs with alternating gaps",
		Spec: FieldSpec{
			Bounds: standardBoundsSpec(),
			Obstacles: []ObstacleSpec{
				RectObstacle(150, 200, 1000, 260), // gap at the left edge
				RectObstacle(0, 450, 850, 510),    // gap at the right edge
				RectObstacle(150, 700, 1000, 760), // gap at the left edge
			},
		},
	})
	registerScenarioAlias("maze", "corridor")

	RegisterScenario(Scenario{
		Name:        "campus",
		Description: "800×600 m campus: three buildings forming two corridors and a quad",
		Spec: FieldSpec{
			Bounds: RectSpec{MaxX: 800, MaxY: 600},
			Obstacles: []ObstacleSpec{
				RectObstacle(150, 100, 350, 250), // west hall
				RectObstacle(450, 100, 650, 250), // east hall
				RectObstacle(250, 350, 550, 480), // north hall
			},
		},
	})

	RegisterScenario(Scenario{
		Name:        "disaster",
		Description: "disaster zone strewn with 3–6 random debris fields; the seed picks the layout",
		Spec: FieldSpec{
			Bounds:    standardBoundsSpec(),
			Generator: &GeneratorSpec{MinCount: 3, MaxCount: 6, MinSide: 60, MaxSide: 250, KeepClear: 30, Salt: 0x6d0b15a7e9c3},
		},
	})

	RegisterScenario(Scenario{
		Name:        "narrow-door",
		Description: "a 40 m thick wall splits the field, pierced by a single 50 m door — the connectivity stress test",
		Spec: FieldSpec{
			Bounds: standardBoundsSpec(),
			Obstacles: []ObstacleSpec{
				RectObstacle(480, 0, 520, 475),    // south wall segment
				RectObstacle(480, 525, 520, 1000), // north wall segment; door y ∈ [475,525]
			},
		},
	})
	registerScenarioAlias("door", "narrow-door")

	RegisterScenario(Scenario{
		Name:        "l-shaped",
		Description: "L-shaped free space: the north-east quadrant of the 1000×1000 m field is solid",
		Spec: FieldSpec{
			Bounds:    standardBoundsSpec(),
			Obstacles: []ObstacleSpec{RectObstacle(500, 500, 1000, 1000)},
		},
	})
	registerScenarioAlias("l", "l-shaped")

	RegisterScenario(Scenario{
		Name: "random-field",
		Description: "parameterized random field: 2–8 rectangles of 50–300 m; sweep obstacle count or density " +
			"with the field.obstacles / field.density axes",
		Spec: FieldSpec{
			Bounds:    standardBoundsSpec(),
			Generator: &GeneratorSpec{MinCount: 2, MaxCount: 8, MinSide: 50, MaxSide: 300, KeepClear: 30, Salt: 0x51f0e7d2c4b1},
		},
	})
}
