package mobisense

import (
	"strings"
	"testing"
)

// mustPanic runs fn and asserts it panics with a message containing want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		v := recover()
		if v == nil {
			t.Errorf("expected a panic mentioning %q", want)
			return
		}
		msg, ok := v.(string)
		if !ok {
			t.Fatalf("panic value %v is not a string", v)
		}
		if !strings.Contains(msg, want) {
			t.Errorf("panic %q should mention %q", msg, want)
		}
	}()
	fn()
}

func TestBuildScenarioUnknownName(t *testing.T) {
	_, err := BuildScenario("atlantis", 1)
	if err == nil {
		t.Fatal("unknown scenario should error")
	}
	// The error must name the unknown scenario and list the known ones so
	// CLI typos are self-diagnosing.
	msg := err.Error()
	if !strings.Contains(msg, "atlantis") {
		t.Errorf("error %q should name the unknown scenario", msg)
	}
	if !strings.Contains(msg, "free") || !strings.Contains(msg, "two-obstacles") {
		t.Errorf("error %q should list the registered scenarios", msg)
	}
	if _, ok := LookupScenario("atlantis"); ok {
		t.Error("LookupScenario should miss on unknown names")
	}
}

func TestScenarioAliasLookup(t *testing.T) {
	for alias, target := range map[string]string{
		"obstacle-free": "free",
		"random":        "random-obstacles",
		"maze":          "corridor",
	} {
		sc, ok := LookupScenario(alias)
		if !ok {
			t.Errorf("alias %q missing", alias)
			continue
		}
		if sc.Name != target {
			t.Errorf("alias %q resolved to %q, want %q", alias, sc.Name, target)
		}
		// An alias builds the same field as its target.
		af, err := BuildScenario(alias, 3)
		if err != nil {
			t.Fatal(err)
		}
		tf, err := BuildScenario(target, 3)
		if err != nil {
			t.Fatal(err)
		}
		aw, ah := af.Bounds()
		tw, th := tf.Bounds()
		if aw != tw || ah != th || af.NumObstacles() != tf.NumObstacles() {
			t.Errorf("alias %q builds a different field than %q", alias, target)
		}
	}
	// Aliases are lookup-only: they must not appear in the catalog.
	for _, sc := range Scenarios() {
		if sc.Name == "obstacle-free" || sc.Name == "random" || sc.Name == "maze" {
			t.Errorf("alias %q leaked into Scenarios()", sc.Name)
		}
	}
}

func TestRegisterScenarioValidation(t *testing.T) {
	build := func(uint64) (Field, error) { return ObstacleFreeField(), nil }

	mustPanic(t, "needs a name and a Spec or Build", func() {
		RegisterScenario(Scenario{Name: "", Build: build})
	})
	mustPanic(t, "needs a name and a Spec or Build", func() {
		RegisterScenario(Scenario{Name: "no-builder"})
	})
	// A spec that cannot normalize is rejected at registration, not at
	// first build.
	mustPanic(t, "bounds", func() {
		RegisterScenario(Scenario{Name: "degenerate",
			Spec: FieldSpec{Obstacles: []ObstacleSpec{RectObstacle(0, 0, 10, 10)}}})
	})

	// Duplicate registration of an existing scenario panics and leaves the
	// original registration intact.
	mustPanic(t, "registered twice", func() {
		RegisterScenario(Scenario{Name: "free", Build: build})
	})
	sc, ok := LookupScenario("free")
	if !ok || sc.Seeded {
		t.Error("duplicate panic must not clobber the original scenario")
	}

	// A scenario may not take a name already used as an alias, and an
	// alias may not shadow a scenario.
	mustPanic(t, "shadows an alias", func() {
		RegisterScenario(Scenario{Name: "maze", Build: build})
	})
	mustPanic(t, "shadows a scenario", func() {
		registerScenarioAlias("free", "two-obstacles")
	})
}
