package mobisense

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"log/slog"
	"math"
	"net/http"
	"time"

	"mobisense/internal/server"
	istore "mobisense/internal/store"
)

// This file is the public façade of the deployment service: it wires the
// generic job queue / HTTP layer of internal/server onto the batch
// runner, the sweep store and the scheme/scenario registries. Start one
// with NewService (cmd/serve is the CLI around it):
//
//	svc, err := mobisense.NewService("serve-data", mobisense.ServiceOptions{})
//	http.ListenAndServe(":8080", svc.Handler())
//
// Jobs submitted over HTTP run asynchronously on the batch runner's
// worker pool, stream every finished run into a job-owned sweep store
// (so a killed server resumes mid-sweep on restart), and are answered
// O(1) from a fingerprint-keyed result cache when an identical
// computation has already completed.

// RunRequest is the JSON body of POST /v1/runs: one deployment. Zero
// fields take the paper's §4.3 defaults (DefaultConfig).
type RunRequest struct {
	// Scheme is required; see GET /v1/schemes.
	Scheme string `json:"scheme"`
	// Scenario names the deployment environment (default "free"); see
	// GET /v1/scenarios. FieldSeed selects the generated layout of seeded
	// scenarios and field specs (default 1).
	Scenario  string `json:"scenario,omitempty"`
	FieldSeed uint64 `json:"field_seed,omitempty"`
	// Field is an inline declarative environment — bounds, obstacles,
	// reference point, optional generator — submitted as data instead of
	// a scenario name (setting both is an error). The job's store
	// manifest embeds it, so the result is reproducible anywhere.
	Field *FieldSpec `json:"field,omitempty"`

	N           int     `json:"n,omitempty"`
	Rc          float64 `json:"rc,omitempty"`
	Rs          float64 `json:"rs,omitempty"`
	Speed       float64 `json:"speed,omitempty"`
	Duration    float64 `json:"duration,omitempty"`
	Seed        uint64  `json:"seed,omitempty"`
	Uniform     bool    `json:"uniform,omitempty"`
	CoverageRes float64 `json:"coverage_res,omitempty"`

	// Scheme option structs (JSON field names follow the Go fields).
	CPVF  *CPVFOptions  `json:"cpvf,omitempty"`
	Floor *FloorOptions `json:"floor,omitempty"`
	VD    *VDOptions    `json:"vd,omitempty"`

	// StoreLayouts persists full sensor layouts in the job's store
	// records (GET /v1/jobs/{id}/records).
	StoreLayouts bool `json:"store_layouts,omitempty"`

	// Trace enables per-tick telemetry sampling at this stride in
	// simulated seconds (0 = off). The series is persisted in the job's
	// store records and powers the dashboard's run-trace chart.
	Trace float64 `json:"trace,omitempty"`
	// TraceLayouts additionally captures the full sensor layout in every
	// trace sample, powering the dashboard's replay animation. Requires
	// Trace.
	TraceLayouts bool `json:"trace_layouts,omitempty"`
	// TraceLayoutStride thins layout capture to every Nth trace sample
	// (0 or 1 = every). Requires TraceLayouts.
	TraceLayoutStride int `json:"trace_layout_stride,omitempty"`
}

// config expands the request into a validated run configuration.
func (r RunRequest) config() (Config, error) {
	if r.Scheme == "" {
		return Config{}, fmt.Errorf("mobisense: request has no scheme (have %v)", RegisteredSchemes())
	}
	cfg := DefaultConfig(Scheme(r.Scheme))
	fieldSeed := r.FieldSeed
	if fieldSeed == 0 {
		fieldSeed = 1
	}
	var f Field
	var err error
	if r.Field != nil {
		if r.Scenario != "" {
			return Config{}, fmt.Errorf("mobisense: request sets both scenario %q and an inline field; pick one", r.Scenario)
		}
		f, err = BuildFieldSpec(*r.Field, fieldSeed)
	} else {
		scenario := r.Scenario
		if scenario == "" {
			scenario = "free"
		}
		f, err = BuildScenario(scenario, fieldSeed)
	}
	if err != nil {
		return Config{}, err
	}
	cfg.Field = f
	if r.N > 0 {
		cfg.N = r.N
	}
	if r.Rc > 0 {
		cfg.Rc = r.Rc
	}
	if r.Rs > 0 {
		cfg.Rs = r.Rs
	}
	if r.Speed > 0 {
		cfg.Speed = r.Speed
	}
	if r.Duration > 0 {
		cfg.Duration = r.Duration
	}
	if r.Seed != 0 {
		cfg.Seed = r.Seed
	}
	if r.CoverageRes > 0 {
		cfg.CoverageRes = r.CoverageRes
	}
	cfg.ClusterInit = !r.Uniform
	cfg.CPVF = r.CPVF
	cfg.Floor = r.Floor
	cfg.VD = r.VD
	if math.IsNaN(r.Trace) || math.IsInf(r.Trace, 0) || r.Trace < 0 {
		return Config{}, fmt.Errorf("mobisense: trace stride must be a finite value >= 0, got %g", r.Trace)
	}
	if r.TraceLayoutStride < 0 {
		return Config{}, fmt.Errorf("mobisense: trace_layout_stride must be >= 0, got %d", r.TraceLayoutStride)
	}
	if r.Trace > 0 {
		if r.TraceLayoutStride > 1 && !r.TraceLayouts {
			return Config{}, fmt.Errorf("mobisense: trace_layout_stride requires trace_layouts")
		}
		cfg.Trace = &TraceOptions{Stride: r.Trace, Layouts: r.TraceLayouts, LayoutStride: r.TraceLayoutStride}
	} else if r.TraceLayouts {
		return Config{}, fmt.Errorf("mobisense: trace_layouts requires a trace stride; set trace > 0")
	} else if r.TraceLayoutStride > 1 {
		return Config{}, fmt.Errorf("mobisense: trace_layout_stride requires a trace stride; set trace > 0")
	}
	if err := cfg.validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// scenarioName returns the request's effective scenario name ("" for an
// inline custom field, which store records report as such).
func (r RunRequest) scenarioName() string {
	if r.Field != nil {
		return ""
	}
	if r.Scenario == "" {
		return "free"
	}
	return r.Scenario
}

// SweepRequest is the JSON body of POST /v1/sweeps: a cross-product
// sweep. The embedded RunRequest fields form the base configuration; the
// axis lists default to the base's single value.
type SweepRequest struct {
	RunRequest
	Schemes   []string `json:"schemes,omitempty"`
	Scenarios []string `json:"scenarios,omitempty"`
	Ns        []int    `json:"ns,omitempty"`
	// Axes are generalized parameter dimensions by built-in axis name
	// (see GET /v1/axes): e.g. {"name":"rc","values":[30,60]}. Aggregates
	// in the job result carry the per-group axis values back.
	Axes []AxisSpec `json:"axes,omitempty"`
	// FixedSeed runs every combination with the base seed verbatim (the
	// paper's paired parameter studies) instead of derived seeds.
	FixedSeed bool `json:"fixed_seed,omitempty"`
	Repeats   int  `json:"repeats,omitempty"`
}

// sweep expands the request into a Sweep. The scenario axis is always
// explicit (default: the base scenario) so fields resolve through the
// registry with paired per-repeat seeds, exactly like the CLIs.
func (r SweepRequest) sweep() (Sweep, error) {
	base := r.RunRequest
	if base.Scheme == "" && len(r.Schemes) > 0 {
		base.Scheme = r.Schemes[0]
	}
	cfg, err := base.config()
	if err != nil {
		return Sweep{}, err
	}
	scenarios := r.Scenarios
	if r.Field != nil {
		// An inline field is the sweep's environment; the scenario axis
		// stays empty (Sweep.Expand rejects setting both).
		if len(scenarios) > 0 {
			return Sweep{}, fmt.Errorf("mobisense: request sets both scenarios and an inline field; pick one")
		}
	} else if len(scenarios) == 0 {
		scenarios = []string{base.scenarioName()}
	}
	schemes := make([]Scheme, 0, len(r.Schemes))
	for _, s := range r.Schemes {
		schemes = append(schemes, Scheme(s))
	}
	axes := make([]ParamAxis, 0, len(r.Axes))
	for _, spec := range r.Axes {
		var ax ParamAxis
		var err error
		if len(spec.Strings) > 0 {
			ax, err = BuildStringAxis(spec.Name, spec.Strings...)
		} else {
			ax, err = BuildAxis(spec.Name, spec.Values...)
		}
		if err != nil {
			return Sweep{}, err
		}
		axes = append(axes, ax)
	}
	return Sweep{
		Base:      cfg,
		Schemes:   schemes,
		Scenarios: scenarios,
		Field:     r.Field,
		Ns:        r.Ns,
		Axes:      axes,
		Repeats:   r.Repeats,
		Seed:      cfg.Seed,
		FixedSeed: r.FixedSeed,
	}, nil
}

// ServiceOptions tune a deployment service.
type ServiceOptions struct {
	// Workers sizes each job's batch worker pool (0 = GOMAXPROCS).
	Workers int
	// Jobs is the number of jobs executing concurrently (default 1 —
	// each job already saturates the batch pool).
	Jobs int
	// CacheSize bounds the fingerprint-keyed result cache's entry count;
	// the least recently used completed entries are evicted beyond it
	// (<= 0 selects the server default of 1024).
	CacheSize int
	// Logger receives the service's structured log records (job
	// lifecycle, HTTP requests); nil discards them.
	Logger *slog.Logger
}

// Service is a deployment server: an HTTP API over an async job queue
// with on-disk persistence and a fingerprint-keyed result cache. Create
// one with NewService and mount Handler on an http.Server.
type Service struct {
	m *server.Manager
}

// NewService opens (or creates) the service's data directory and starts
// its job executors. Jobs interrupted by a previous shutdown or crash are
// re-queued immediately and resume from their stores, re-executing only
// the runs that never finished.
func NewService(dataDir string, opts ServiceOptions) (*Service, error) {
	m, err := server.NewManager(dataDir, &serviceEngine{workers: opts.Workers}, opts.Jobs, opts.CacheSize)
	if err != nil {
		return nil, err
	}
	m.SetLogger(opts.Logger)
	return &Service{m: m}, nil
}

// Handler returns the service's HTTP API (see internal/server.NewHandler
// for the route table).
func (s *Service) Handler() http.Handler { return server.NewHandler(s.m) }

// GC prunes finished jobs — and their on-disk stores — older than ttl,
// returning how many were removed. Queued and running jobs are never
// touched. cmd/serve calls this at startup and periodically when
// -jobs-ttl is set.
func (s *Service) GC(ttl time.Duration) int { return s.m.GC(ttl) }

// Close cancels running jobs (finished runs persist and resume on the
// next start) and waits for the executors to stop.
func (s *Service) Close() { s.m.Close() }

// serviceEngine implements internal/server.Engine on the batch runner.
type serviceEngine struct {
	workers int
}

// decodeStrict unmarshals a request body, rejecting unknown fields so
// typos fail loudly instead of silently running the default sweep.
func decodeStrict(raw json.RawMessage, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("mobisense: bad request: %w", err)
	}
	return nil
}

func (e *serviceEngine) Prepare(kind string, raw json.RawMessage) (server.Prepared, error) {
	switch kind {
	case "run":
		var req RunRequest
		if err := decodeStrict(raw, &req); err != nil {
			return server.Prepared{}, err
		}
		cfg, err := req.config()
		if err != nil {
			return server.Prepared{}, err
		}
		return server.Prepared{Fingerprint: runFingerprint(req, cfg), TotalRuns: 1}, nil
	case "sweep":
		var req SweepRequest
		if err := decodeStrict(raw, &req); err != nil {
			return server.Prepared{}, err
		}
		sweep, err := req.sweep()
		if err != nil {
			return server.Prepared{}, err
		}
		specs, err := sweep.Expand()
		if err != nil {
			return server.Prepared{}, err
		}
		return server.Prepared{
			Fingerprint: sweepFingerprint(sweep, len(specs), req.StoreLayouts, req.Trace > 0),
			TotalRuns:   len(specs),
		}, nil
	default:
		return server.Prepared{}, fmt.Errorf("mobisense: unknown job kind %q", kind)
	}
}

// runFingerprint is a single run's cache/restart identity: its axes plus
// the full config fingerprint (field geometry included).
func runFingerprint(req RunRequest, cfg Config) string {
	sp := RunSpec{
		Scheme:   cfg.Scheme,
		Scenario: req.scenarioName(),
		N:        cfg.N,
		Seed:     cfg.Seed,
		Config:   cfg,
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "run|%s|layouts=%t", specKey(sp), req.StoreLayouts)
	return fmt.Sprintf("%016x", h.Sum64())
}

// sweepFingerprint is a sweep's cache/restart identity: the hash of its
// store manifest (axes, base-config fingerprint, run count), which is a
// pure function of the sweep definition.
func sweepFingerprint(s Sweep, totalRuns int, layouts, trace bool) string {
	m := s.manifest(Shard{}, totalRuns)
	m.Layouts = layouts
	m.Trace = trace
	data, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("mobisense: encode manifest: %v", err))
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("sweep-%016x", h.Sum64())
}

// SweepJobResult is the JSON result summary of a sweep job.
type SweepJobResult struct {
	Runs       int         `json:"runs"`
	Errors     int         `json:"errors,omitempty"`
	Skipped    int         `json:"skipped,omitempty"`
	Aggregates []Aggregate `json:"aggregates"`
}

func (e *serviceEngine) Execute(ctx context.Context, job server.ExecJob) (json.RawMessage, error) {
	opts := BatchOptions{
		Workers: e.workers,
	}
	switch job.Kind {
	case "run":
		var req RunRequest
		if err := decodeStrict(job.Request, &req); err != nil {
			return nil, err
		}
		cfg, err := req.config()
		if err != nil {
			return nil, err
		}
		opts.Store = &Store{Dir: job.StoreDir, Resume: job.Resume, Layouts: req.StoreLayouts, Trace: req.Trace > 0}
		opts.OnProgress = progressAdapter(job.OnProgress)
		// Drive the shared executor directly (rather than RunBatch) so the
		// spec — and therefore the stored record — carries the scenario
		// name, exactly like sweep-job records do.
		specs := []RunSpec{{
			Scheme:   cfg.Scheme,
			Scenario: req.scenarioName(),
			N:        cfg.N,
			Seed:     cfg.Seed,
			Config:   cfg,
		}}
		m := istore.Manifest{
			Kind:              "batch",
			Fields:            runFieldEntries(req, cfg),
			ConfigFingerprint: combinedFingerprint(specs),
			ShardCount:        1,
			TotalRuns:         1,
			Layouts:           req.StoreLayouts,
			Trace:             req.Trace > 0,
			TraceLayouts:      req.Trace > 0 && req.TraceLayouts,
		}
		out, err := runSpecs(ctx, specs, opts, m)
		if err != nil {
			return nil, err
		}
		br := out[0]
		if br.Err != nil {
			return nil, br.Err
		}
		// The run's record shape (metrics + optional layouts) is the
		// natural single-run result document.
		rec := recordFrom(br.Spec, br.Result, nil, req.StoreLayouts)
		return json.Marshal(rec)
	case "sweep":
		var req SweepRequest
		if err := decodeStrict(job.Request, &req); err != nil {
			return nil, err
		}
		sweep, err := req.sweep()
		if err != nil {
			return nil, err
		}
		opts.Store = &Store{Dir: job.StoreDir, Resume: job.Resume, Layouts: req.StoreLayouts, Trace: req.Trace > 0}
		opts.OnProgress = progressAdapter(job.OnProgress)
		sr, err := sweep.Run(ctx, opts)
		if err != nil {
			return nil, err
		}
		sum := SweepJobResult{Aggregates: sr.Aggregates}
		for _, br := range sr.Runs {
			switch {
			case br.skipped():
				sum.Skipped++
			case br.Err != nil:
				sum.Errors++
			default:
				sum.Runs++
			}
		}
		return json.Marshal(sum)
	default:
		return nil, fmt.Errorf("mobisense: unknown job kind %q", job.Kind)
	}
}

// runFieldEntries embeds a single-run job's environment spec in its
// store manifest: the registered scenario's spec when one was named, or
// the inline/built field's spec otherwise, so the job store reproduces
// without this server's binary.
func runFieldEntries(req RunRequest, cfg Config) []istore.FieldEntry {
	if name := req.scenarioName(); name != "" {
		if sc, ok := LookupScenario(name); ok && !sc.Spec.Empty() {
			return []istore.FieldEntry{{Scenario: sc.Name, Spec: sc.Spec}}
		}
		return nil
	}
	if cfg.Field.internal() == nil {
		return nil
	}
	// Cosmetic names stay out of manifests (and therefore out of cache
	// fingerprints); see Sweep.fieldEntries.
	spec := cfg.Field.Spec()
	spec.Name = ""
	return []istore.FieldEntry{{Spec: spec}}
}

// progressAdapter converts batch progress callbacks into server progress
// events, extrapolating the ETA from the live execution rate via the
// shared snapshot helper (replays from a resumed store are excluded from
// the rate, so they don't fake an instant ETA).
func progressAdapter(emit func(server.Progress)) func(done, total int) {
	if emit == nil {
		return nil
	}
	started := time.Now()
	live := 0
	return func(done, total int) {
		live++
		ps := SnapshotProgress(done, total, live, time.Since(started))
		emit(server.Progress{
			Done:      ps.Done,
			Total:     ps.Total,
			ElapsedMS: ps.Elapsed.Milliseconds(),
			EtaMS:     ps.ETA.Milliseconds(),
		})
	}
}

// SchemeInfo and ScenarioInfo are the registry introspection documents
// served by GET /v1/schemes and /v1/scenarios.
type SchemeInfo struct {
	Name string `json:"name"`
}

type ScenarioInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Seeded      bool   `json:"seeded"`
	// Obstacles counts the scenario's fixed obstacles (seeded scenarios
	// add generated ones on top; see the spec's generator).
	Obstacles int `json:"obstacles"`
	// Spec is the scenario's full declarative geometry — fetch it, tweak
	// it, and resubmit it as an inline "field". Omitted for the rare
	// code-only scenario that has no spec.
	Spec *FieldSpec `json:"spec,omitempty"`
}

func (e *serviceEngine) Schemes() any {
	out := make([]SchemeInfo, 0, 8)
	for _, s := range RegisteredSchemes() {
		out = append(out, SchemeInfo{Name: string(s)})
	}
	return out
}

func (e *serviceEngine) Scenarios() any {
	scs := Scenarios()
	out := make([]ScenarioInfo, 0, len(scs))
	for _, sc := range scs {
		info := ScenarioInfo{Name: sc.Name, Description: sc.Description, Seeded: sc.Seeded}
		if !sc.Spec.Empty() {
			spec := sc.Spec
			info.Spec = &spec
			info.Obstacles = len(spec.Obstacles)
		}
		out = append(out, info)
	}
	return out
}

// AxisInfo is the introspection document of one built-in sweep axis
// (GET /v1/axes).
type AxisInfo struct {
	Name string `json:"name"`
	// Integer marks axes whose values must be whole numbers.
	Integer     bool   `json:"integer,omitempty"`
	Description string `json:"description,omitempty"`
	// String marks categorical axes; Choices lists their allowed values.
	// Requests pass them in AxisSpec.Strings instead of Values.
	String  bool     `json:"string,omitempty"`
	Choices []string `json:"choices,omitempty"`
}

func (e *serviceEngine) Axes() any {
	names := AxisNames()
	out := make([]AxisInfo, 0, len(names))
	for _, name := range names {
		out = append(out, AxisInfo{
			Name:        name,
			Integer:     AxisIsInteger(name),
			Description: AxisDescription(name),
			String:      AxisIsString(name),
			Choices:     AxisStringValues(name),
		})
	}
	return out
}

// Traces loads a job's store and aggregates its trace series into
// per-group mean curves (GET /v1/jobs/{id}/traces). The aggregation is
// the same AggregateTraces that cmd/report uses, so the endpoint and the
// CSV export agree byte-for-byte on the numbers.
func (e *serviceEngine) Traces(storeDir string) (any, error) {
	data, err := LoadStores(storeDir)
	if err != nil {
		return nil, err
	}
	return AggregateTraces(data.Runs), nil
}
