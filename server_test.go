package mobisense

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"mobisense/internal/server"
)

// The tests in this file are the deployment service's acceptance
// criteria: submitting the same sweep twice hits the result cache
// without re-running; killing the service mid-sweep and restarting
// resumes only the missing runs; the SSE stream reports monotonically
// increasing completed-run counts; and cancellation keeps finished
// records on disk.

// testSweepBody is a small, fast sweep request used across the tests.
func testSweepBody(repeats int, seed uint64) string {
	return fmt.Sprintf(`{"scheme":"floor","scenario":"free","n":24,"duration":90,"repeats":%d,"seed":%d}`,
		repeats, seed)
}

func startService(t *testing.T, dir string, workers int) (*Service, *httptest.Server) {
	t.Helper()
	svc, err := NewService(dir, ServiceOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	return svc, ts
}

func postJSON(t *testing.T, url, body string) (server.JobView, int) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v server.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v, resp.StatusCode
}

func getJob(t *testing.T, base, id string) server.JobView {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v server.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode job view: %v", err)
	}
	return v
}

func waitState(t *testing.T, base, id string, want server.JobState) server.JobView {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		v := getJob(t, base, id)
		if v.State == want {
			return v
		}
		if v.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s state = %q (err %q), want %q", id, v.State, v.Error, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func countLines(data []byte) int {
	return bytes.Count(data, []byte("\n"))
}

// TestServerSweepCacheAndSSE: a sweep job runs to completion with a
// monotonic SSE progress stream, serves its stored records, and an
// identical second submission is answered from the result cache without
// executing anything.
func TestServerSweepCacheAndSSE(t *testing.T) {
	dir := t.TempDir()
	svc, ts := startService(t, dir, 2)
	defer ts.Close()
	defer svc.Close()

	body := testSweepBody(4, 7)
	first, status := postJSON(t, ts.URL+"/v1/sweeps", body)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", status)
	}
	if first.State.Terminal() {
		t.Fatalf("fresh job already terminal: %q", first.State)
	}

	// Consume the SSE stream until the job finishes.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + first.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("events content-type = %q", ct)
	}
	var dones []int
	finalState := server.JobState("")
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "progress":
				var p server.Progress
				if err := json.Unmarshal([]byte(data), &p); err != nil {
					t.Fatalf("bad progress payload %q: %v", data, err)
				}
				if p.Total != 4 {
					t.Errorf("progress total = %d, want 4", p.Total)
				}
				dones = append(dones, p.Done)
			case "state":
				var v server.JobView
				if err := json.Unmarshal([]byte(data), &v); err != nil {
					t.Fatalf("bad state payload %q: %v", data, err)
				}
				finalState = v.State
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if finalState != server.StateDone {
		t.Fatalf("final SSE state = %q, want done", finalState)
	}
	if len(dones) == 0 {
		t.Fatal("no progress events")
	}
	for i := 1; i < len(dones); i++ {
		if dones[i] < dones[i-1] {
			t.Fatalf("progress counts not monotonic: %v", dones)
		}
	}
	if last := dones[len(dones)-1]; last != 4 {
		t.Errorf("last progress done = %d, want 4", last)
	}

	done := waitState(t, ts.URL, first.ID, server.StateDone)
	var sum SweepJobResult
	if err := json.Unmarshal(done.Result, &sum); err != nil {
		t.Fatalf("decode sweep result: %v", err)
	}
	if sum.Runs != 4 || len(sum.Aggregates) == 0 {
		t.Fatalf("sweep result = %+v, want 4 runs with aggregates", sum)
	}
	if sum.Aggregates[0].Coverage.Mean <= 0 {
		t.Error("aggregate coverage mean should be positive")
	}

	// Stored records are served as JSONL and CSV.
	recResp, err := http.Get(ts.URL + "/v1/jobs/" + first.ID + "/records")
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := readAll(t, recResp)
	if countLines(recs) != 4 {
		t.Errorf("records.jsonl has %d lines, want 4", countLines(recs))
	}
	csvResp, err := http.Get(ts.URL + "/v1/jobs/" + first.ID + "/records?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	csv, _ := readAll(t, csvResp)
	if countLines(csv) != 5 || !bytes.HasPrefix(csv, []byte("index,scheme")) {
		t.Errorf("records csv = %q", csv)
	}

	// An identical submission is a cache hit: immediately done, same
	// result, no store of its own.
	second, status := postJSON(t, ts.URL+"/v1/sweeps", body)
	if status != http.StatusOK {
		t.Fatalf("cache-hit status = %d, want 200", status)
	}
	if !second.CacheHit || second.State != server.StateDone {
		t.Fatalf("second submission = state %q cacheHit=%v, want done/true", second.State, second.CacheHit)
	}
	if !bytes.Equal(second.Result, done.Result) {
		t.Error("cache-hit result differs from the original job's result")
	}
	if _, err := os.Stat(filepath.Join(dir, "jobs", second.ID, "store")); !os.IsNotExist(err) {
		t.Errorf("cache-hit job grew a store (stat err %v)", err)
	}
	// A different sweep is NOT a cache hit.
	third, status := postJSON(t, ts.URL+"/v1/sweeps", testSweepBody(4, 8))
	if status != http.StatusAccepted || third.CacheHit {
		t.Fatalf("different sweep: status %d cacheHit=%v, want 202/false", status, third.CacheHit)
	}
}

func readAll(t *testing.T, resp *http.Response) ([]byte, int) {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), resp.StatusCode
}

// TestServerRestartResume: shutting the service down mid-sweep keeps the
// finished runs on disk; a new service over the same data directory
// re-queues the job and executes only the missing runs (the stored
// record bytes are a strict prefix of the completed file).
func TestServerRestartResume(t *testing.T) {
	dir := t.TempDir()
	svc1, ts1 := startService(t, dir, 1)

	// Individual runs are milliseconds; a wide sweep (60 repeats) keeps a
	// comfortable window to shut down mid-flight without flakes.
	const repeats = 60
	v, status := postJSON(t, ts1.URL+"/v1/sweeps", testSweepBody(repeats, 13))
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	recordsPath := filepath.Join(dir, "jobs", v.ID, "store", "records.jsonl")

	// Wait for at least one finished run to reach the store, then shut
	// down mid-sweep.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if data, err := os.ReadFile(recordsPath); err == nil && countLines(data) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no record appeared before the deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ts1.Close()
	svc1.Close()

	before, err := os.ReadFile(recordsPath)
	if err != nil {
		t.Fatal(err)
	}
	if n := countLines(before); n == 0 || n >= repeats {
		t.Fatalf("interrupted store holds %d of %d runs; want a proper subset", n, repeats)
	}

	// Restart: the job re-queues automatically and resumes from the store.
	svc2, ts2 := startService(t, dir, 1)
	defer ts2.Close()
	defer svc2.Close()
	done := waitState(t, ts2.URL, v.ID, server.StateDone)

	after, err := os.ReadFile(recordsPath)
	if err != nil {
		t.Fatal(err)
	}
	if countLines(after) != repeats {
		t.Fatalf("resumed store holds %d records, want %d", countLines(after), repeats)
	}
	// Resumed sessions replay finished runs instead of re-executing them,
	// so the pre-restart bytes survive verbatim as a prefix.
	if !bytes.HasPrefix(after, before) {
		t.Error("pre-restart records were rewritten; resume should only append missing runs")
	}
	var sum SweepJobResult
	if err := json.Unmarshal(done.Result, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Runs != repeats {
		t.Errorf("resumed job result runs = %d, want %d", sum.Runs, repeats)
	}

	// The completed (resumed) job also feeds the cache after restart.
	hit, status := postJSON(t, ts2.URL+"/v1/sweeps", testSweepBody(repeats, 13))
	if status != http.StatusOK || !hit.CacheHit {
		t.Errorf("post-restart resubmission: status %d cacheHit=%v, want 200/true", status, hit.CacheHit)
	}
}

// TestServerCancelKeepsRecords: DELETE stops a running job after its
// in-flight runs finish; every completed run's record stays on disk.
func TestServerCancelKeepsRecords(t *testing.T) {
	dir := t.TempDir()
	svc, ts := startService(t, dir, 1)
	defer ts.Close()
	defer svc.Close()

	const repeats = 60
	v, _ := postJSON(t, ts.URL+"/v1/sweeps", testSweepBody(repeats, 21))
	recordsPath := filepath.Join(dir, "jobs", v.ID, "store", "records.jsonl")
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if data, err := os.ReadFile(recordsPath); err == nil && countLines(data) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no record appeared before the deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancelled := waitState(t, ts.URL, v.ID, server.StateCancelled)
	if cancelled.Error != "cancelled" {
		t.Errorf("cancelled job error = %q", cancelled.Error)
	}

	data, err := os.ReadFile(recordsPath)
	if err != nil {
		t.Fatal(err)
	}
	if n := countLines(data); n == 0 || n >= repeats {
		t.Errorf("cancelled job kept %d of %d records; want a proper subset", n, repeats)
	}
}

// TestServerRunJobAndIntrospection: single-run jobs work end to end, the
// registries are introspectable, and malformed requests are rejected.
func TestServerRunJobAndIntrospection(t *testing.T) {
	dir := t.TempDir()
	svc, ts := startService(t, dir, 0)
	defer ts.Close()
	defer svc.Close()

	v, status := postJSON(t, ts.URL+"/v1/runs", `{"scheme":"opt","n":40}`)
	if status != http.StatusAccepted {
		t.Fatalf("run submit status = %d", status)
	}
	done := waitState(t, ts.URL, v.ID, server.StateDone)
	var rec struct {
		Scheme   string  `json:"scheme"`
		Coverage float64 `json:"coverage"`
	}
	if err := json.Unmarshal(done.Result, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Scheme != "opt" || rec.Coverage <= 0 {
		t.Errorf("run result = %+v", rec)
	}
	// Identical run → cache hit.
	if hit, status := postJSON(t, ts.URL+"/v1/runs", `{"scheme":"opt","n":40}`); status != http.StatusOK || !hit.CacheHit {
		t.Errorf("identical run: status %d cacheHit=%v", status, hit.CacheHit)
	}
	// The stored record carries the (defaulted) scenario name, like
	// sweep-job records do.
	recCSV, _ := readAll(t, mustGet(t, ts.URL+"/v1/jobs/"+v.ID+"/records?format=csv"))
	if !bytes.Contains(recCSV, []byte(",opt,free,")) {
		t.Errorf("run record csv lacks scheme/scenario: %s", recCSV)
	}

	// Registry introspection.
	schemes, _ := readAll(t, mustGet(t, ts.URL+"/v1/schemes"))
	if !bytes.Contains(schemes, []byte(`"floor"`)) || !bytes.Contains(schemes, []byte(`"cpvf"`)) {
		t.Errorf("schemes = %s", schemes)
	}
	scenarios, _ := readAll(t, mustGet(t, ts.URL+"/v1/scenarios"))
	if !bytes.Contains(scenarios, []byte(`"two-obstacles"`)) {
		t.Errorf("scenarios = %s", scenarios)
	}

	// Bad requests fail loudly.
	if _, status := postJSON(t, ts.URL+"/v1/runs", `{"scheme":"nope"}`); status != http.StatusBadRequest {
		t.Errorf("unknown scheme status = %d, want 400", status)
	}
	if _, status := postJSON(t, ts.URL+"/v1/sweeps", `{"scheme":"floor","repeat":3}`); status != http.StatusBadRequest {
		t.Errorf("unknown field status = %d, want 400", status)
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/jdeadbeef0000"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestSweepRequestAxes: the wire axes resolve through the built-in axis
// registry into real sweep dimensions, fixed_seed pins every run to the
// base seed, and unknown axis names are rejected at validation.
func TestSweepRequestAxes(t *testing.T) {
	req := SweepRequest{
		RunRequest: RunRequest{Scheme: "floor", N: 20, Duration: 60, Seed: 9},
		Axes:       []AxisSpec{{Name: "rc", Values: []float64{50, 60}}},
		FixedSeed:  true,
	}
	s, err := req.sweep()
	if err != nil {
		t.Fatal(err)
	}
	specs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("expanded %d runs, want 2", len(specs))
	}
	for i, want := range []float64{50, 60} {
		if specs[i].Config.Rc != want || specs[i].Seed != 9 {
			t.Errorf("run %d: rc=%g seed=%d, want rc=%g seed=9",
				i, specs[i].Config.Rc, specs[i].Seed, want)
		}
	}

	req.Axes = []AxisSpec{{Name: "bogus", Values: []float64{1}}}
	if _, err := req.sweep(); err == nil {
		t.Error("unknown axis name should be rejected")
	}
}

// TestServerInlineField: a custom environment submitted as inline JSON
// data runs end to end — the job completes, its record carries an empty
// scenario (custom field), the store manifest embeds the spec, the
// catalog exposes every scenario's spec, and conflicting or malformed
// field requests are rejected up front.
func TestServerInlineField(t *testing.T) {
	dir := t.TempDir()
	svc, ts := startService(t, dir, 2)
	defer ts.Close()
	defer svc.Close()

	field := `{"name":"depot","bounds":{"max_x":900,"max_y":700},"obstacles":[{"rect":[300,150,500,350]}]}`

	// Single run over the inline field.
	v, status := postJSON(t, ts.URL+"/v1/runs", `{"scheme":"floor","n":20,"duration":60,"field":`+field+`}`)
	if status != http.StatusAccepted {
		t.Fatalf("inline-field run submit status = %d", status)
	}
	done := waitState(t, ts.URL, v.ID, server.StateDone)
	var rec struct {
		Scenario string  `json:"scenario"`
		Coverage float64 `json:"coverage"`
	}
	if err := json.Unmarshal(done.Result, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Scenario != "" || rec.Coverage <= 0 {
		t.Errorf("inline-field run result = %+v", rec)
	}

	// A sweep over the inline field persists the spec in its store
	// manifest, so the store reproduces without this server.
	sv, status := postJSON(t, ts.URL+"/v1/sweeps",
		`{"scheme":"floor","n":20,"duration":60,"repeats":2,"seed":5,"field":`+field+`}`)
	if status != http.StatusAccepted {
		t.Fatalf("inline-field sweep submit status = %d", status)
	}
	waitState(t, ts.URL, sv.ID, server.StateDone)
	manifest, err := os.ReadFile(filepath.Join(dir, "jobs", sv.ID, "store", "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(manifest, []byte(`"fields"`)) || !bytes.Contains(manifest, []byte(`"max_x": 900`)) {
		t.Errorf("sweep store manifest lacks the embedded field spec:\n%s", manifest)
	}
	// The identical resubmission is a cache hit: the fingerprint hashes
	// the geometry, not a scenario name.
	if hit, status := postJSON(t, ts.URL+"/v1/sweeps",
		`{"scheme":"floor","n":20,"duration":60,"repeats":2,"seed":5,"field":`+field+`}`); status != http.StatusOK || !hit.CacheHit {
		t.Errorf("identical inline-field sweep: status %d cacheHit=%v", status, hit.CacheHit)
	}

	// Conflicts and malformed specs are 400s.
	if _, status := postJSON(t, ts.URL+"/v1/runs",
		`{"scheme":"floor","scenario":"free","field":`+field+`}`); status != http.StatusBadRequest {
		t.Errorf("field+scenario status = %d, want 400", status)
	}
	if _, status := postJSON(t, ts.URL+"/v1/sweeps",
		`{"scheme":"floor","scenarios":["free"],"field":`+field+`}`); status != http.StatusBadRequest {
		t.Errorf("field+scenarios status = %d, want 400", status)
	}
	if _, status := postJSON(t, ts.URL+"/v1/runs",
		`{"scheme":"floor","field":{"bounds":{"max_x":0,"max_y":0}}}`); status != http.StatusBadRequest {
		t.Errorf("degenerate field status = %d, want 400", status)
	}

	// The scenario catalog carries each entry's spec and obstacle count,
	// and the axis catalog marks integer axes.
	catalog, _ := readAll(t, mustGet(t, ts.URL+"/v1/scenarios"))
	var scList struct {
		Scenarios []ScenarioInfo `json:"scenarios"`
	}
	if err := json.Unmarshal(catalog, &scList); err != nil {
		t.Fatal(err)
	}
	found := map[string]ScenarioInfo{}
	for _, sc := range scList.Scenarios {
		found[sc.Name] = sc
	}
	if sc := found["narrow-door"]; sc.Spec == nil || sc.Obstacles != 2 {
		t.Errorf("narrow-door catalog entry = %+v", sc)
	}
	if sc := found["random-field"]; sc.Spec == nil || !sc.Seeded || sc.Spec.Generator == nil {
		t.Errorf("random-field catalog entry = %+v", sc)
	}
	axes, _ := readAll(t, mustGet(t, ts.URL+"/v1/axes"))
	if !bytes.Contains(axes, []byte(`"field.ref"`)) || !bytes.Contains(axes, []byte(`"integer": true`)) {
		t.Errorf("axes catalog = %s", axes)
	}
}

// TestServerTraceAnalytics: trace series round-trip through the remote
// store URL, the /traces endpoint serves the same aggregation that local
// LoadStores + AggregateTraces computes, and bad trace parameters answer
// 400 with a clear message.
func TestServerTraceAnalytics(t *testing.T) {
	dir := t.TempDir()
	svc, ts := startService(t, dir, 0)
	defer ts.Close()
	defer svc.Close()

	body := `{"scheme":"cpvf","scenario":"free","n":24,"duration":60,"repeats":2,"seed":5,"trace":20,"trace_layouts":true}`
	v, status := postJSON(t, ts.URL+"/v1/sweeps", body)
	if status != http.StatusAccepted {
		t.Fatalf("traced sweep submit status = %d", status)
	}
	waitState(t, ts.URL, v.ID, server.StateDone)

	// Remote store round trip: the server's store URL loads like a local
	// directory and aggregates identically.
	remote, err := LoadStores(ts.URL + "/v1/jobs/" + v.ID + "/store")
	if err != nil {
		t.Fatal(err)
	}
	if len(remote.Runs) != 2 {
		t.Fatalf("remote store has %d runs, want 2", len(remote.Runs))
	}
	for i, br := range remote.Runs {
		if len(br.Result.Trace) == 0 {
			t.Fatalf("remote run %d lost its trace", i)
		}
		for j, s := range br.Result.Trace {
			if len(s.Layout) == 0 {
				t.Fatalf("remote run %d sample %d lost its layout snapshot", i, j)
			}
		}
		if br.Result.Convergence == nil {
			t.Fatalf("remote run %d lost its convergence metrics", i)
		}
	}
	want := AggregateTraces(remote.Runs)

	// The /traces endpoint serves exactly that aggregation.
	resp := mustGet(t, ts.URL+"/v1/jobs/"+v.ID+"/traces")
	var got struct {
		Traces []TraceAggregate `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !reflect.DeepEqual(got.Traces, want) {
		t.Fatal("/traces disagrees with local aggregation of the remote store")
	}
	if len(got.Traces) != 1 || got.Traces[0].Runs != 2 || len(got.Traces[0].Points) == 0 {
		t.Fatalf("traces = %+v", got.Traces)
	}

	// Invalid trace parameters are rejected with 400s.
	if _, status := postJSON(t, ts.URL+"/v1/runs", `{"scheme":"cpvf","trace":-5}`); status != http.StatusBadRequest {
		t.Errorf("negative stride status = %d, want 400", status)
	}
	if _, status := postJSON(t, ts.URL+"/v1/runs", `{"scheme":"cpvf","trace_layouts":true}`); status != http.StatusBadRequest {
		t.Errorf("trace_layouts without trace status = %d, want 400", status)
	}
	if _, status := postJSON(t, ts.URL+"/v1/runs", `{"scheme":"cpvf","trace":20,"trace_layout_stride":-1}`); status != http.StatusBadRequest {
		t.Errorf("negative trace_layout_stride status = %d, want 400", status)
	}
	if _, status := postJSON(t, ts.URL+"/v1/runs", `{"scheme":"cpvf","trace":20,"trace_layout_stride":3}`); status != http.StatusBadRequest {
		t.Errorf("trace_layout_stride without trace_layouts status = %d, want 400", status)
	}
	if _, status := postJSON(t, ts.URL+"/v1/runs", `{"scheme":"cpvf","trace_layout_stride":3}`); status != http.StatusBadRequest {
		t.Errorf("trace_layout_stride without trace status = %d, want 400", status)
	}
}
