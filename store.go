package mobisense

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"reflect"
	"sort"
	"sync"
	"time"

	istore "mobisense/internal/store"
)

// Store points the batch runner at an on-disk sweep store: a directory
// holding a manifest, a records.jsonl with one deterministic record per
// finished run (streamed as runs complete, constant memory at any sweep
// size), and a timing.jsonl sidecar with the explicitly non-deterministic
// wall-clock section of each record.
//
// Attach one to BatchOptions.Store. Without Resume the directory must not
// already hold a store; with Resume an existing store is validated against
// the sweep (axes, base-config fingerprint, shard) and every run already
// recorded is replayed from disk instead of re-executed.
type Store struct {
	// Dir is the store directory (created on first use).
	Dir string
	// Resume allows continuing an interrupted sweep in Dir.
	Resume bool
	// Layouts persists each run's full initial and final sensor layouts in
	// its record, making stored runs replayable for layout post-processing
	// (fig11-style Hungarian lower bounds) at the cost of record size.
	// Resuming a store across a Layouts change is refused.
	Layouts bool
	// Trace persists each run's per-tick telemetry series (Result.Trace)
	// in its record. It only has an effect when the batch's configs set
	// Config.Trace; like Layouts, resuming a store across a Trace change
	// is refused.
	Trace bool
}

// storeSession is one batch's open store: the streaming writer plus the
// replay index of records already on disk.
type storeSession struct {
	w        *istore.Writer
	layouts  bool
	trace    bool
	existing map[string]istore.Record

	mu  sync.Mutex
	err error // first append failure
}

// begin opens (or creates) the store for a batch described by m. A nil
// *Store begins a nil session, which every method tolerates.
func (st *Store) begin(m istore.Manifest) (*storeSession, error) {
	if st == nil {
		return nil, nil
	}
	if st.Dir == "" {
		return nil, fmt.Errorf("mobisense: store has no directory")
	}
	var (
		w    *istore.Writer
		recs []istore.Record
		err  error
	)
	if st.Resume {
		w, recs, err = istore.Open(st.Dir, m)
		if isNotAStore(err) {
			// Resuming into a fresh directory starts a new store.
			w, err = istore.Create(st.Dir, m)
		}
	} else {
		w, err = istore.Create(st.Dir, m)
	}
	if err != nil {
		return nil, err
	}
	sess := &storeSession{w: w, layouts: st.Layouts, trace: st.Trace, existing: make(map[string]istore.Record, len(recs))}
	for _, r := range recs {
		sess.existing[r.Key()] = r
	}
	return sess, nil
}

// isNotAStore reports whether err means "no store here yet" (as opposed to
// a store we failed to read).
func isNotAStore(err error) bool {
	var pathErr *fs.PathError
	return errors.As(err, &pathErr) && errors.Is(err, fs.ErrNotExist)
}

// lookup returns the stored record for a spec, if present.
func (s *storeSession) lookup(sp RunSpec) (istore.Record, bool) {
	rec, ok := s.existing[specKey(sp)]
	return rec, ok
}

// append streams one finished run to disk. Failures are remembered and
// surfaced once at close; the batch itself keeps running.
func (s *storeSession) append(seq int, sp RunSpec, res Result, runErr error, elapsed time.Duration) {
	rec := recordFrom(sp, res, runErr, s.layouts)
	if s.trace {
		rec.Trace = toStoreTrace(res.Trace)
		rec.Convergence = toStoreConvergence(res.Convergence)
	}
	if err := s.w.Append(seq, rec, elapsed); err != nil {
		s.mu.Lock()
		if s.err == nil {
			s.err = err
		}
		s.mu.Unlock()
	}
}

func (s *storeSession) close() error {
	err := s.w.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return err
}

// specKey is the run's store identity: axes + derived seed + per-run
// config fingerprint.
func specKey(sp RunSpec) string {
	return recordFrom(sp, Result{}, nil, false).Key()
}

// recordFrom converts one finished run into its deterministic store
// record. Wall-clock time is deliberately absent (it lives in the timing
// sidecar) so stored sweeps diff byte-identically across worker counts.
// With layouts set, the run's initial and final positions are persisted
// too.
func recordFrom(sp RunSpec, res Result, runErr error, layouts bool) istore.Record {
	rec := istore.Record{
		Index:             sp.Index,
		Scheme:            string(sp.Scheme),
		Scenario:          sp.Scenario,
		N:                 sp.N,
		Repeat:            sp.Repeat,
		Axes:              toStoreAxes(sp.Axes),
		Seed:              sp.Seed,
		ConfigFingerprint: configFingerprint(sp.Config),
	}
	if runErr != nil {
		rec.Err = runErr.Error()
		return rec
	}
	rec.Coverage = res.Coverage
	rec.Coverage2 = res.Coverage2
	rec.Alive = res.Alive
	rec.AvgMoveDistance = res.AvgMoveDistance
	rec.Messages = res.Messages
	rec.ConvergenceTime = res.ConvergenceTime
	rec.Connected = res.Connected
	rec.IncorrectCells = res.IncorrectVoronoiCells
	if layouts {
		rec.Positions = toStorePoints(res.Positions)
		rec.InitialPositions = toStorePoints(res.InitialPositions)
	}
	return rec
}

func toStoreAxes(axes []AxisValue) []istore.AxisValue {
	if axes == nil {
		return nil
	}
	out := make([]istore.AxisValue, len(axes))
	for i, a := range axes {
		out[i] = istore.AxisValue{Name: a.Name, Value: a.Value, Str: a.Str}
	}
	return out
}

func fromStoreAxes(axes []istore.AxisValue) []AxisValue {
	if axes == nil {
		return nil
	}
	out := make([]AxisValue, len(axes))
	for i, a := range axes {
		out[i] = AxisValue{Name: a.Name, Value: a.Value, Str: a.Str}
	}
	return out
}

func toStorePoints(ps []Point) []istore.Point {
	if ps == nil {
		return nil
	}
	out := make([]istore.Point, len(ps))
	for i, p := range ps {
		out[i] = istore.Point{X: p.X, Y: p.Y}
	}
	return out
}

func fromStorePoints(ps []istore.Point) []Point {
	if ps == nil {
		return nil
	}
	out := make([]Point, len(ps))
	for i, p := range ps {
		out[i] = Point{X: p.X, Y: p.Y}
	}
	return out
}

func toStoreTrace(ts []TraceSample) []istore.TraceSample {
	if ts == nil {
		return nil
	}
	out := make([]istore.TraceSample, len(ts))
	for i, s := range ts {
		out[i] = istore.TraceSample{
			Time:       s.Time,
			Coverage:   s.Coverage,
			Connected:  s.Connected,
			Alive:      s.Alive,
			Moving:     s.Moving,
			TotalMoved: s.TotalMoved,
			MaxMoved:   s.MaxMoved,
			Layout:     toStorePoints(s.Layout),
		}
	}
	return out
}

func fromStoreTrace(ts []istore.TraceSample) []TraceSample {
	if ts == nil {
		return nil
	}
	out := make([]TraceSample, len(ts))
	for i, s := range ts {
		out[i] = TraceSample{
			Time:       s.Time,
			Coverage:   s.Coverage,
			Connected:  s.Connected,
			Alive:      s.Alive,
			Moving:     s.Moving,
			TotalMoved: s.TotalMoved,
			MaxMoved:   s.MaxMoved,
			Layout:     fromStorePoints(s.Layout),
		}
	}
	return out
}

func toStoreConvergence(c *Convergence) *istore.Convergence {
	if c == nil {
		return nil
	}
	return &istore.Convergence{
		TimeTo90Coverage:   c.TimeTo90Coverage,
		TimeTo99Coverage:   c.TimeTo99Coverage,
		TimeToConnectivity: c.TimeToConnectivity,
		SettlingTime:       c.SettlingTime,
		TotalMovedAtSettle: c.TotalMovedAtSettle,
		MaxMovedAtSettle:   c.MaxMovedAtSettle,
	}
}

func fromStoreConvergence(c *istore.Convergence) *Convergence {
	if c == nil {
		return nil
	}
	return &Convergence{
		TimeTo90Coverage:   c.TimeTo90Coverage,
		TimeTo99Coverage:   c.TimeTo99Coverage,
		TimeToConnectivity: c.TimeToConnectivity,
		SettlingTime:       c.SettlingTime,
		TotalMovedAtSettle: c.TotalMovedAtSettle,
		MaxMovedAtSettle:   c.MaxMovedAtSettle,
	}
}

// replayedResult reconstructs a BatchResult from a stored record. The
// aggregate metrics always survive the round trip; layouts do only when
// the store was written with Store.Layouts, and message breakdowns never
// do.
func replayedResult(sp RunSpec, rec istore.Record) BatchResult {
	br := BatchResult{Spec: sp}
	if rec.Err != "" {
		br.Err = errors.New(rec.Err)
		return br
	}
	br.Result = resultFromRecord(rec)
	return br
}

func resultFromRecord(rec istore.Record) Result {
	return Result{
		Scheme:                Scheme(rec.Scheme),
		Coverage:              rec.Coverage,
		Coverage2:             rec.Coverage2,
		Alive:                 rec.Alive,
		AvgMoveDistance:       rec.AvgMoveDistance,
		Messages:              rec.Messages,
		ConvergenceTime:       rec.ConvergenceTime,
		Connected:             rec.Connected,
		IncorrectVoronoiCells: rec.IncorrectCells,
		Positions:             fromStorePoints(rec.Positions),
		InitialPositions:      fromStorePoints(rec.InitialPositions),
		Trace:                 fromStoreTrace(rec.Trace),
		Convergence:           fromStoreConvergence(rec.Convergence),
	}
}

// configFingerprint hashes every non-axis parameter of a config — ranges,
// speeds, horizons, option structs and the field geometry — so that two
// runs share a fingerprint exactly when they are the same computation
// modulo the sweep axes (scheme, N, seed are keyed separately).
func configFingerprint(c Config) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "rc=%g rs=%g v=%g T=%g D=%g cluster=%t res=%g",
		c.Rc, c.Rs, c.Speed, c.Period, c.Duration, c.ClusterInit, c.coverageRes())
	if st := c.Stabilize; st != nil {
		fmt.Fprintf(h, " stab=%g/%g", st.Cap, st.Chunk)
	}
	if fo := c.Failures; fo != nil {
		fmt.Fprintf(h, " fail=%g/%d", fo.Interval, fo.MaxKills)
	}
	if tr := c.Trace; tr != nil {
		fmt.Fprintf(h, " trace=%g", tr.stride(c.Period))
		// The layouts and stride markers are appended only when set, so
		// traced configs from before each option keep their fingerprint.
		if tr.Layouts {
			io.WriteString(h, " layouts")
		}
		if tr.LayoutStride > 1 {
			fmt.Fprintf(h, " lstride=%d", tr.LayoutStride)
		}
	}
	if o := c.CPVF; o != nil {
		fmt.Fprintf(h, " cpvf=%s/%g/%t/%g/%t",
			o.Oscillation, o.Delta, o.DisallowParentChange, o.ForceGain, o.DisableLazy)
	}
	if o := c.Floor; o != nil {
		fmt.Fprintf(h, " floor=%d/%g/%t/%t",
			o.TTL, o.ExclusiveFrac, o.DirectConnectWalk, o.DisablePriority)
	}
	if o := c.VD; o != nil {
		fmt.Fprintf(h, " vd=%d/%t/%t", o.Rounds, o.NoExplosion, o.PerfectKnowledge)
	}
	if f := c.Field.internal(); f != nil {
		b := f.Bounds()
		ref := f.Reference()
		fmt.Fprintf(h, " field=%g,%g,%g,%g ref=%g,%g",
			b.Min.X, b.Min.Y, b.Max.X, b.Max.Y, ref.X, ref.Y)
		for _, poly := range f.Obstacles() {
			io.WriteString(h, " o")
			for _, v := range poly {
				fmt.Fprintf(h, "=%g,%g", v.X, v.Y)
			}
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// combinedFingerprint condenses an explicit config list (RunBatch) into
// one manifest fingerprint: the hash of every run's key in order.
func combinedFingerprint(specs []RunSpec) string {
	h := fnv.New64a()
	for _, sp := range specs {
		io.WriteString(h, specKey(sp))
		io.WriteString(h, "\n")
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// StoreInfo describes one loaded store directory.
type StoreInfo struct {
	Dir string
	// Kind is "sweep" or "batch".
	Kind string
	// ShardIndex/ShardCount place the store in a sharded sweep.
	ShardIndex, ShardCount int
	// TotalRuns is the shard's expected record count; Records is how many
	// are actually on disk; Complete is the manifest's completion mark.
	TotalRuns, Records int
	Complete           bool
	// Fields are the environment specs embedded in the store's manifest
	// (empty for stores written before the field-spec refactor). They
	// make a foreign store reproducible: rebuild any entry with
	// BuildFieldSpec and re-run its records' configs.
	Fields []StoreField
	// Elapsed is the total wall-clock compute time recorded in the store's
	// timing sidecar (non-deterministic, informational).
	Elapsed time.Duration
}

// StoreField is one embedded environment of a store: the scenario name
// (empty for a custom field) and its declarative spec.
type StoreField struct {
	Scenario string
	Spec     FieldSpec
}

// StoreData is the merged content of one or more store directories —
// typically the shards of one sweep run on different machines.
type StoreData struct {
	Stores []StoreInfo
	// Runs holds every stored run, sorted by sweep expansion index, so the
	// merged order (and therefore the aggregate order) reproduces the
	// unsharded sweep exactly.
	Runs []BatchResult
	// Aggregates are recomputed from the stored records.
	Aggregates []Aggregate
}

// LoadStores reads one or more stores and merges their records into a
// single result set with recomputed aggregates. Each argument is a local
// store directory or an http(s) URL of a deployment server's
// /v1/jobs/{id}/store endpoint. All stores must hold the same sweep
// (matching kind, axes and base-config fingerprint); duplicate records
// are deduplicated, and records that disagree for the same key are an
// error.
func LoadStores(dirs ...string) (StoreData, error) {
	if len(dirs) == 0 {
		return StoreData{}, fmt.Errorf("mobisense: LoadStores with no directories")
	}
	var data StoreData
	var ref istore.Manifest
	byKey := map[string]istore.Record{}
	for i, dir := range dirs {
		m, recs, err := istore.ReadDir(dir)
		if err != nil {
			return StoreData{}, err
		}
		if i == 0 {
			ref = m
		} else if !sameSweep(ref, m) {
			return StoreData{}, fmt.Errorf("mobisense: %s holds a different sweep than %s (mismatched axes or config)", dir, dirs[0])
		}
		times, err := istore.ReadTimings(dir)
		if err != nil {
			return StoreData{}, err
		}
		var elapsed time.Duration
		for _, d := range times {
			elapsed += d
		}
		var specs []StoreField
		for _, fe := range m.Fields {
			specs = append(specs, StoreField{Scenario: fe.Scenario, Spec: fe.Spec})
		}
		data.Stores = append(data.Stores, StoreInfo{
			Dir:        dir,
			Kind:       m.Kind,
			ShardIndex: m.ShardIndex,
			ShardCount: m.ShardCount,
			TotalRuns:  m.TotalRuns,
			Records:    len(recs),
			Complete:   m.Complete,
			Fields:     specs,
			Elapsed:    elapsed,
		})
		for _, rec := range recs {
			k := rec.Key()
			if prev, dup := byKey[k]; dup {
				// Records carry slices (layouts), so equality is deep.
				if !reflect.DeepEqual(prev, rec) {
					return StoreData{}, fmt.Errorf("mobisense: stores disagree on run %s", k)
				}
				continue
			}
			byKey[k] = rec
		}
	}

	data.Runs = make([]BatchResult, 0, len(byKey))
	for _, rec := range byKey {
		sp := RunSpec{
			Index:    rec.Index,
			Scheme:   Scheme(rec.Scheme),
			Scenario: rec.Scenario,
			N:        rec.N,
			Repeat:   rec.Repeat,
			Axes:     fromStoreAxes(rec.Axes),
			Seed:     rec.Seed,
		}
		data.Runs = append(data.Runs, replayedResult(sp, rec))
	}
	sort.Slice(data.Runs, func(i, j int) bool { return data.Runs[i].Spec.Index < data.Runs[j].Spec.Index })
	data.Aggregates = aggregateRuns(data.Runs)
	return data, nil
}

// sameSweep reports whether two manifests describe the same sweep,
// ignoring shard placement and completion state. Embedded field specs
// are compared only when both stores carry them, so shards written
// before the field-spec refactor still merge with newer ones.
func sameSweep(a, b istore.Manifest) bool {
	a.ShardIndex, b.ShardIndex = 0, 0
	a.ShardCount, b.ShardCount = 0, 0
	a.TotalRuns, b.TotalRuns = 0, 0
	a.Complete, b.Complete = false, false
	if a.Fields == nil || b.Fields == nil {
		a.Fields, b.Fields = nil, nil
	}
	return reflect.DeepEqual(a, b)
}
