package mobisense

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// storeSweep is a small mixed sweep used by the persistence tests.
func storeSweep() Sweep {
	return Sweep{
		Base:      sweepConfig(),
		Schemes:   []Scheme{SchemeCPVF, SchemeFLOOR},
		Scenarios: []string{"free", "random-obstacles"},
		Ns:        []int{20, 30},
		Repeats:   2,
		Seed:      42,
	}
}

// TestStoreDeterministicBytesAcrossWorkers is the satellite determinism
// check: the same sweep stored at -workers 1 and -workers 8 must produce
// byte-identical manifest and records files. Wall-clock time lives only in
// the timing.jsonl sidecar, and records flush in dispatch order, so the
// deterministic files cannot depend on scheduling.
func TestStoreDeterministicBytesAcrossWorkers(t *testing.T) {
	sweep := storeSweep()
	dirs := [2]string{filepath.Join(t.TempDir(), "w1"), filepath.Join(t.TempDir(), "w8")}
	for i, workers := range []int{1, 8} {
		_, err := sweep.Run(context.Background(), BatchOptions{
			Workers: workers,
			Store:   &Store{Dir: dirs[i]},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, file := range []string{"manifest.json", "records.jsonl"} {
		a, err := os.ReadFile(filepath.Join(dirs[0], file))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirs[1], file))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between workers=1 and workers=8", file)
		}
	}
	if len(bytesOrEmpty(t, dirs[0], "records.jsonl")) == 0 {
		t.Fatal("records.jsonl is empty")
	}
}

func bytesOrEmpty(t *testing.T, dir, file string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, file))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestStoreInterruptResume is the acceptance check for resumability: a
// sweep cancelled partway keeps its finished runs on disk, and re-running
// with Resume executes only the missing runs yet reproduces the
// uninterrupted sweep's aggregates exactly.
func TestStoreInterruptResume(t *testing.T) {
	sweep := storeSweep()
	want, err := sweep.Run(context.Background(), BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := len(want.Runs)

	dir := filepath.Join(t.TempDir(), "store")
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	stopAt := total / 3
	_, err = sweep.Run(ctx, BatchOptions{
		Workers: 2,
		Store:   &Store{Dir: dir},
		OnProgress: func(done, _ int) {
			mu.Lock()
			defer mu.Unlock()
			if done >= stopAt {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep err = %v, want context.Canceled", err)
	}
	partial, err := LoadStores(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(partial.Runs) == 0 || len(partial.Runs) >= total {
		t.Fatalf("interrupted store holds %d of %d runs; want a proper subset", len(partial.Runs), total)
	}
	stored := len(partial.Runs)

	// Resume: only the missing runs may execute.
	executed := 0
	resumed, err := sweep.Run(context.Background(), BatchOptions{
		Workers: 2,
		Store:   &Store{Dir: dir, Resume: true},
		OnProgress: func(done, tot int) {
			mu.Lock()
			defer mu.Unlock()
			executed++
			if tot != total {
				t.Errorf("progress total = %d, want %d", tot, total)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if executed != total-stored {
		t.Errorf("resume executed %d runs, want %d (=%d total - %d stored)", executed, total-stored, total, stored)
	}
	if !reflect.DeepEqual(resumed.Aggregates, want.Aggregates) {
		t.Errorf("resumed aggregates differ from uninterrupted run:\nresumed: %+v\nwant:    %+v",
			resumed.Aggregates, want.Aggregates)
	}

	// The completed store must load back to the same aggregates too.
	final, err := LoadStores(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(final.Aggregates, want.Aggregates) {
		t.Errorf("stored aggregates differ from live run:\nstored: %+v\nwant:   %+v",
			final.Aggregates, want.Aggregates)
	}
	if !final.Stores[0].Complete {
		t.Error("manifest should be marked complete after resume")
	}
	// Resuming a complete store executes nothing.
	executed = 0
	if _, err := sweep.Run(context.Background(), BatchOptions{
		Store:      &Store{Dir: dir, Resume: true},
		OnProgress: func(int, int) { mu.Lock(); executed++; mu.Unlock() },
	}); err != nil {
		t.Fatal(err)
	}
	if executed != 0 {
		t.Errorf("resume of a complete store executed %d runs", executed)
	}
}

// TestShardMergeReproducesUnsharded is the acceptance check for sharding:
// running the same sweep as two shards into two stores and merging them
// with LoadStores (what cmd/report does) reproduces the unsharded sweep's
// aggregates bit for bit.
func TestShardMergeReproducesUnsharded(t *testing.T) {
	sweep := storeSweep()
	base := t.TempDir()
	full := filepath.Join(base, "full")
	want, err := sweep.Run(context.Background(), BatchOptions{Store: &Store{Dir: full}})
	if err != nil {
		t.Fatal(err)
	}

	shardDirs := []string{filepath.Join(base, "shard0"), filepath.Join(base, "shard1")}
	for i, dir := range shardDirs {
		sr, err := sweep.Run(context.Background(), BatchOptions{
			Store: &Store{Dir: dir},
			Shard: Shard{Index: i, Count: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(sr.Runs) == 0 || len(sr.Runs) >= len(want.Runs) {
			t.Fatalf("shard %d ran %d of %d runs", i, len(sr.Runs), len(want.Runs))
		}
	}

	merged, err := LoadStores(shardDirs...)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Runs) != len(want.Runs) {
		t.Fatalf("merged %d runs, want %d", len(merged.Runs), len(want.Runs))
	}
	if !reflect.DeepEqual(merged.Aggregates, want.Aggregates) {
		t.Errorf("merged shard aggregates differ from unsharded run:\nmerged: %+v\nwant:   %+v",
			merged.Aggregates, want.Aggregates)
	}

	// And they match the unsharded store read back from disk.
	fullData, err := LoadStores(full)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Aggregates, fullData.Aggregates) {
		t.Error("merged shard aggregates differ from the unsharded store")
	}
}

// TestBatchShardMerge: plain RunBatch (explicit config lists, as the
// experiments harness uses) shards and merges the same way sweeps do —
// the manifest fingerprint covers the full batch, not the shard's slice.
func TestBatchShardMerge(t *testing.T) {
	cfgs := make([]Config, 6)
	for i := range cfgs {
		cfgs[i] = sweepConfig()
		cfgs[i].Seed = uint64(i + 1)
		cfgs[i].Rc = 50 + 10*float64(i%2) // two distinct configurations
	}
	base := t.TempDir()
	full := filepath.Join(base, "full")
	want, err := RunBatch(context.Background(), cfgs, BatchOptions{Store: &Store{Dir: full}})
	if err != nil {
		t.Fatal(err)
	}
	shardDirs := []string{filepath.Join(base, "b0"), filepath.Join(base, "b1")}
	for i, dir := range shardDirs {
		if _, err := RunBatch(context.Background(), cfgs, BatchOptions{
			Store: &Store{Dir: dir},
			Shard: Shard{Index: i, Count: 2},
		}); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := LoadStores(shardDirs...)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Runs) != len(want) {
		t.Fatalf("merged %d runs, want %d", len(merged.Runs), len(want))
	}
	// A shard with no runs of its own (more shards than runs) still leaves
	// a complete zero-run store behind, so merges see every shard.
	empty := filepath.Join(base, "empty")
	if _, err := RunBatch(context.Background(), cfgs[:1], BatchOptions{
		Store: &Store{Dir: empty},
		Shard: Shard{Index: 3, Count: 4},
	}); err != nil {
		t.Fatal(err)
	}
	emptyData, err := LoadStores(empty)
	if err != nil {
		t.Fatalf("empty shard store unreadable: %v", err)
	}
	if !emptyData.Stores[0].Complete || emptyData.Stores[0].TotalRuns != 0 {
		t.Errorf("empty shard store = %+v; want complete with 0 runs", emptyData.Stores[0])
	}
	fullData, err := LoadStores(full)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Aggregates, fullData.Aggregates) {
		t.Error("merged batch-shard aggregates differ from the unsharded store")
	}
}

func TestStoreMisuse(t *testing.T) {
	sweep := storeSweep()
	dir := filepath.Join(t.TempDir(), "store")
	if _, err := sweep.Run(context.Background(), BatchOptions{Store: &Store{Dir: dir}}); err != nil {
		t.Fatal(err)
	}

	// Re-running without Resume must refuse to touch the existing store.
	if _, err := sweep.Run(context.Background(), BatchOptions{Store: &Store{Dir: dir}}); err == nil {
		t.Error("overwriting an existing store without Resume should error")
	}

	// Resuming with a different sweep must be refused.
	other := sweep
	other.Seed = 7
	if _, err := other.Run(context.Background(), BatchOptions{Store: &Store{Dir: dir, Resume: true}}); err == nil {
		t.Error("resuming a different sweep should error")
	}
	// ... including a same-axes sweep with different base parameters.
	tweaked := sweep
	tweaked.Base.Rc = 90
	if _, err := tweaked.Run(context.Background(), BatchOptions{Store: &Store{Dir: dir, Resume: true}}); err == nil {
		t.Error("resuming with a different base config should error")
	}

	// Merging stores of different sweeps must be refused.
	otherDir := filepath.Join(t.TempDir(), "other")
	if _, err := other.Run(context.Background(), BatchOptions{Store: &Store{Dir: otherDir}}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadStores(dir, otherDir); err == nil {
		t.Error("merging different sweeps should error")
	}
	if _, err := LoadStores(); err == nil {
		t.Error("LoadStores with no dirs should error")
	}

	// A store without a directory is an error, not a silent no-op.
	if _, err := sweep.Run(context.Background(), BatchOptions{Store: &Store{}}); err == nil {
		t.Error("store without a directory should error")
	}
}

// TestStoreLayoutsRoundTrip: with Store.Layouts, every run's initial and
// final sensor layouts persist in its record and replay identically on
// resume — the property that makes fig11-style layout post-processing
// replayable from disk.
func TestStoreLayoutsRoundTrip(t *testing.T) {
	sweep := Sweep{
		Base:      sweepConfig(),
		Schemes:   []Scheme{SchemeFLOOR},
		Scenarios: []string{"free"},
		Repeats:   2,
		Seed:      11,
	}
	dir := filepath.Join(t.TempDir(), "store")
	live, err := sweep.Run(context.Background(), BatchOptions{Store: &Store{Dir: dir, Layouts: true}})
	if err != nil {
		t.Fatal(err)
	}

	executed := 0
	replayed, err := sweep.Run(context.Background(), BatchOptions{
		Store:      &Store{Dir: dir, Resume: true, Layouts: true},
		OnProgress: func(int, int) { executed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if executed != 0 {
		t.Fatalf("replay executed %d runs, want 0", executed)
	}
	for i, br := range replayed.Runs {
		want := live.Runs[i].Result
		if len(br.Result.Positions) == 0 || !reflect.DeepEqual(br.Result.Positions, want.Positions) {
			t.Errorf("run %d replayed final layout differs (got %d positions, want %d)",
				i, len(br.Result.Positions), len(want.Positions))
		}
		if len(br.Result.InitialPositions) == 0 ||
			!reflect.DeepEqual(br.Result.InitialPositions, want.InitialPositions) {
			t.Errorf("run %d replayed initial layout differs", i)
		}
	}

	// LoadStores restores the layouts too.
	data, err := LoadStores(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, br := range data.Runs {
		if !reflect.DeepEqual(br.Result.Positions, live.Runs[i].Result.Positions) {
			t.Errorf("loaded run %d final layout differs", i)
		}
	}

	// Resuming across the Layouts flag is refused: the store would end up
	// with records of inconsistent replay fidelity.
	if _, err := sweep.Run(context.Background(), BatchOptions{
		Store: &Store{Dir: dir, Resume: true},
	}); err == nil {
		t.Error("resuming a layouts store without Layouts should error")
	}
}

// TestStoreRecordsFailedRuns: deterministic per-run failures (here: VOR on
// an obstacle scenario) are persisted and replayed on resume rather than
// retried.
func TestStoreRecordsFailedRuns(t *testing.T) {
	sweep := Sweep{
		Base:      sweepConfig(),
		Schemes:   []Scheme{SchemeVOR},
		Scenarios: []string{"two-obstacles"},
		Repeats:   2,
		Seed:      5,
	}
	dir := filepath.Join(t.TempDir(), "store")
	sr, err := sweep.Run(context.Background(), BatchOptions{Store: &Store{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	for _, br := range sr.Runs {
		if br.Err == nil {
			t.Fatal("VOR on obstacles should fail by design")
		}
	}
	executed := 0
	resumed, err := sweep.Run(context.Background(), BatchOptions{
		Store:      &Store{Dir: dir, Resume: true},
		OnProgress: func(int, int) { executed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if executed != 0 {
		t.Errorf("resume retried %d deterministic failures", executed)
	}
	for i, br := range resumed.Runs {
		if br.Err == nil || br.Err.Error() != sr.Runs[i].Err.Error() {
			t.Errorf("run %d replayed error = %v, want %v", i, br.Err, sr.Runs[i].Err)
		}
	}
	data, err := LoadStores(dir)
	if err != nil {
		t.Fatal(err)
	}
	if data.Aggregates[0].Errors != 2 {
		t.Errorf("stored aggregate errors = %d, want 2", data.Aggregates[0].Errors)
	}
}
