package mobisense

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// Categorical (string-valued) axes must flow end-to-end: parse, sweep
// expansion, store records, sharded merge, aggregation and report keys.

func TestStringAxisParseAndBuild(t *testing.T) {
	ax, err := ParseAxis("cpvf.osc=none,two-step")
	if err != nil {
		t.Fatal(err)
	}
	if !ax.categorical() || !reflect.DeepEqual(ax.Strings, []string{"none", "two-step"}) {
		t.Fatalf("parsed axis = %+v, want categorical [none two-step]", ax)
	}
	if _, err := ParseAxis("cpvf.osc=sideways"); err == nil {
		t.Error("unknown categorical value should be rejected at parse time")
	}
	if _, err := BuildAxis("cpvf.osc", 1, 2); err == nil {
		t.Error("BuildAxis on a string-valued axis should error")
	}
	if _, err := BuildStringAxis("rc", "fast"); err == nil {
		t.Error("BuildStringAxis on a numeric axis should error")
	}
	if !AxisIsString("cpvf.osc") || AxisIsString("rc") {
		t.Error("AxisIsString misclassifies axes")
	}
	if got := AxisStringValues("cpvf.osc"); len(got) != 3 {
		t.Errorf("AxisStringValues(cpvf.osc) = %v, want the 3 oscillation modes", got)
	}
}

func TestStringAxisExpansionSetsConfig(t *testing.T) {
	sweep := Sweep{
		Base:    sweepConfig(),
		Schemes: []Scheme{SchemeCPVF},
		Axes:    []ParamAxis{mustParseAxis(t, "cpvf.osc=none,one-step,two-step")},
		Repeats: 1,
		Seed:    9,
	}
	specs, err := sweep.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("expanded %d specs, want 3", len(specs))
	}
	for i, want := range []string{"none", "one-step", "two-step"} {
		sp := specs[i]
		if sp.Config.CPVF == nil || sp.Config.CPVF.Oscillation != want {
			t.Errorf("spec %d: config oscillation = %+v, want %q", i, sp.Config.CPVF, want)
		}
		if len(sp.Axes) != 1 || sp.Axes[0].Str != want || sp.Axes[0].Name != "cpvf.osc" {
			t.Errorf("spec %d: axes = %+v, want cpvf.osc=%q", i, sp.Axes, want)
		}
		if got := sp.Axes[0].ValueString(); got != want {
			t.Errorf("spec %d: ValueString = %q, want %q", i, got, want)
		}
	}
}

func mustParseAxis(t *testing.T, spec string) ParamAxis {
	t.Helper()
	ax, err := ParseAxis(spec)
	if err != nil {
		t.Fatal(err)
	}
	return ax
}

// TestStringAxisShardedStoreMerge is the regression test for categorical
// axes through the full persistence pipeline: a sweep over a string axis
// runs unsharded and as two shards; the merged shards must reproduce the
// unsharded aggregates exactly, with the string values intact on every
// reloaded run and aggregate row.
func TestStringAxisShardedStoreMerge(t *testing.T) {
	cfg := sweepConfig()
	cfg.Scheme = SchemeCPVF
	sweep := Sweep{
		Base:    cfg,
		Schemes: []Scheme{SchemeCPVF},
		Axes: []ParamAxis{
			AxisRc(50, 60),
			mustParseAxis(t, "cpvf.osc=none,two-step"),
		},
		Repeats: 2,
		Seed:    23,
	}
	base := t.TempDir()
	full := filepath.Join(base, "full")
	want, err := sweep.Run(context.Background(), BatchOptions{Store: &Store{Dir: full}})
	if err != nil {
		t.Fatal(err)
	}

	shardDirs := []string{filepath.Join(base, "s0"), filepath.Join(base, "s1")}
	for i, dir := range shardDirs {
		if _, err := sweep.Run(context.Background(), BatchOptions{
			Store: &Store{Dir: dir},
			Shard: Shard{Index: i, Count: 2},
		}); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := LoadStores(shardDirs...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Aggregates, want.Aggregates) {
		t.Errorf("merged string-axis aggregates differ:\nmerged: %+v\nwant:   %+v",
			merged.Aggregates, want.Aggregates)
	}
	for _, br := range merged.Runs {
		if len(br.Spec.Axes) != 2 || br.Spec.Axes[1].Str == "" {
			t.Fatalf("reloaded run %d lost its string axis value: %+v", br.Spec.Index, br.Spec.Axes)
		}
	}

	// The string value must split aggregate rows: each (rc, osc)
	// combination is its own group.
	groups := map[string]bool{}
	for _, a := range want.Aggregates {
		groups[axisTupleKey(a.Axes)] = true
	}
	if len(groups) != 4 {
		t.Errorf("aggregates form %d axis groups %v, want 4", len(groups), groups)
	}
	for key := range groups {
		if !strings.Contains(key, "cpvf.osc=") {
			t.Errorf("aggregate group key %q lacks the categorical axis", key)
		}
	}

	// Resuming the completed store executes nothing — record keys with
	// string values round-trip through the resume index.
	executed := 0
	resumed, err := sweep.Run(context.Background(), BatchOptions{
		Store:      &Store{Dir: full, Resume: true},
		OnProgress: func(int, int) { executed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if executed != 0 {
		t.Errorf("resume executed %d runs, want 0", executed)
	}
	if !reflect.DeepEqual(resumed.Aggregates, want.Aggregates) {
		t.Error("resumed string-axis aggregates differ from live run")
	}
	// A different value list on the string axis is a different sweep.
	other := sweep
	other.Axes = []ParamAxis{AxisRc(50, 60), mustParseAxis(t, "cpvf.osc=none,one-step")}
	if _, err := other.Run(context.Background(), BatchOptions{Store: &Store{Dir: full, Resume: true}}); err == nil {
		t.Error("resuming with different string-axis values should error")
	}
}
