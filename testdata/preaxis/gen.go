//go:build ignore

// gen.go regenerated the pre-axis store fixture in this directory. It was
// run against the last pre-axis commit, so shard0/ and shard1/ hold
// manifests and records exactly as that version wrote them: no "axes"
// section anywhere. TestPreAxisStoreFixture loads, resumes and merges
// these bytes to prove the axis refactor never invalidates old stores.
//
// shard0 is a complete shard; shard1 was interrupted after two runs (its
// manifest is not complete), so the fixture also exercises resume.
//
//	go run testdata/preaxis/gen.go
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"mobisense"
)

func main() {
	dir := filepath.Join("testdata", "preaxis")
	cfg := mobisense.DefaultConfig(mobisense.SchemeFLOOR)
	cfg.N = 20
	cfg.Duration = 60
	sweep := mobisense.Sweep{
		Base:      cfg,
		Schemes:   []mobisense.Scheme{mobisense.SchemeCPVF, mobisense.SchemeFLOOR},
		Scenarios: []string{"free", "random-obstacles"},
		Repeats:   2,
		Seed:      42,
	}

	shard0 := filepath.Join(dir, "shard0")
	os.RemoveAll(shard0)
	if _, err := sweep.Run(context.Background(), mobisense.BatchOptions{
		Workers: 1,
		Store:   &mobisense.Store{Dir: shard0},
		Shard:   mobisense.Shard{Index: 0, Count: 2},
	}); err != nil {
		panic(err)
	}

	shard1 := filepath.Join(dir, "shard1")
	os.RemoveAll(shard1)
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	_, err := sweep.Run(ctx, mobisense.BatchOptions{
		Workers: 1,
		Store:   &mobisense.Store{Dir: shard1},
		OnProgress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			if done >= 2 {
				cancel()
			}
		},
		Shard: mobisense.Shard{Index: 1, Count: 2},
	})
	if err != context.Canceled {
		panic(fmt.Sprintf("expected an interrupted shard1, got err=%v", err))
	}
	fmt.Println("fixture regenerated under", dir)
}
