package mobisense

import (
	"mobisense/internal/core"
	ifield "mobisense/internal/field"
)

// TraceOptions turns on run-level telemetry for event-driven schemes
// (CPVF, FLOOR): the sim loop samples a TraceSample every Stride seconds
// and the series lands in Result.Trace. Sampling is an observer — it
// never touches the engine's random source — so a traced run produces
// bit-identical metrics to the same run untraced. The Voronoi and OPT
// baselines compute their layouts outside the event loop and yield no
// trace.
type TraceOptions struct {
	// Stride is the sampling interval in seconds (default: the decision
	// period).
	Stride float64
}

func (t *TraceOptions) stride(period float64) float64 {
	if t.Stride > 0 {
		return t.Stride
	}
	return period
}

// TraceSample is one per-tick telemetry observation of a running
// deployment: how the paper's evaluation quantities evolve on the way to
// the final layout, not just where they end up.
type TraceSample struct {
	// Time is the simulation clock of the sample in seconds.
	Time float64 `json:"t"`
	// Coverage is the instantaneous 1-coverage fraction.
	Coverage float64 `json:"coverage"`
	// Connected is the number of alive sensors unit-disk reachable from
	// the base station at the sample time.
	Connected int `json:"connected"`
	// Alive is the number of non-failed sensors; Moving how many of them
	// are mid-step.
	Alive  int `json:"alive"`
	Moving int `json:"moving"`
	// TotalMoved is the summed cumulative moving distance in meters over
	// all sensors; MaxMoved the largest single sensor's.
	TotalMoved float64 `json:"total_moved"`
	MaxMoved   float64 `json:"max_moved"`
}

// tracer samples a world's telemetry on the engine clock. attach
// schedules it; the collected series is read from samples afterwards.
type tracer struct {
	cfg     Config
	f       *ifield.Field
	samples []TraceSample
}

// attach schedules periodic sampling on the world's engine, from t=0 to
// the horizon. The sampler reads world state and computes coverage but
// never consumes engine randomness, keeping traced runs bit-identical to
// untraced ones.
func (tr *tracer) attach(w *core.World, horizon float64) {
	stride := tr.cfg.Trace.stride(w.P.Period)
	est := tr.cfg.estimatorFor(tr.f)
	var cs core.TraceSample
	w.E.ScheduleEvery(0, stride, func() bool {
		layout := w.SampleTrace(&cs)
		tr.samples = append(tr.samples, TraceSample{
			Time:       cs.Time,
			Coverage:   est.Fraction(layout, tr.cfg.Rs),
			Connected:  cs.Connected,
			Alive:      cs.Alive,
			Moving:     cs.Moving,
			TotalMoved: cs.TotalMoved,
			MaxMoved:   cs.MaxMoved,
		})
		// Keep rescheduling while more simulated time remains; the engine
		// drops whatever is still queued past the final RunUntil.
		return cs.Time < horizon
	})
}
