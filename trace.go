package mobisense

import (
	"fmt"
	"math"

	"mobisense/internal/core"
	"mobisense/internal/coverage"
	ifield "mobisense/internal/field"
)

// TraceOptions turns on run-level telemetry for event-driven schemes
// (CPVF, FLOOR): the sim loop samples a TraceSample every Stride seconds
// and the series lands in Result.Trace. Sampling is an observer — it
// never touches the engine's random source — so a traced run produces
// bit-identical metrics to the same run untraced. The Voronoi and OPT
// baselines compute their layouts outside the event loop and yield no
// trace.
type TraceOptions struct {
	// Stride is the sampling interval in seconds (default: the decision
	// period).
	Stride float64
	// Layouts captures the full alive-sensor layout in every sample,
	// making a traced run replayable as a deployment animation (the
	// dashboard's replay view) at the cost of sample size. The capture is
	// a plain copy of state the sampler already reads, so it is exactly as
	// RNG-silent as the scalar telemetry.
	Layouts bool
	// LayoutStride thins layout capture to every LayoutStride-th trace
	// sample (0 or 1 = every sample). Scalar telemetry keeps the full
	// Stride resolution; only the expensive Layout snapshots are decimated,
	// so long replay-enabled sweeps don't pay full layout cost per tick.
	// Requires Layouts.
	LayoutStride int
}

// validate rejects strides that would silently break sampling: negative,
// NaN and infinite values all have no sensible sampling schedule. A nil
// receiver (tracing off) and zero (default to the period) are valid.
func (t *TraceOptions) validate() error {
	if t == nil {
		return nil
	}
	if math.IsNaN(t.Stride) || math.IsInf(t.Stride, 0) || t.Stride < 0 {
		return fmt.Errorf("mobisense: trace stride must be a finite value >= 0, got %g", t.Stride)
	}
	if t.LayoutStride < 0 {
		return fmt.Errorf("mobisense: trace layout stride must be >= 0, got %d", t.LayoutStride)
	}
	if t.LayoutStride > 1 && !t.Layouts {
		return fmt.Errorf("mobisense: trace layout stride requires Layouts; there are no layout samples to thin")
	}
	return nil
}

func (t *TraceOptions) stride(period float64) float64 {
	if t.Stride > 0 {
		return t.Stride
	}
	return period
}

// TraceSample is one per-tick telemetry observation of a running
// deployment: how the paper's evaluation quantities evolve on the way to
// the final layout, not just where they end up.
type TraceSample struct {
	// Time is the simulation clock of the sample in seconds.
	Time float64 `json:"t"`
	// Coverage is the instantaneous 1-coverage fraction.
	Coverage float64 `json:"coverage"`
	// Connected is the number of alive sensors unit-disk reachable from
	// the base station at the sample time.
	Connected int `json:"connected"`
	// Alive is the number of non-failed sensors; Moving how many of them
	// are mid-step.
	Alive  int `json:"alive"`
	Moving int `json:"moving"`
	// TotalMoved is the summed cumulative moving distance in meters over
	// all sensors; MaxMoved the largest single sensor's.
	TotalMoved float64 `json:"total_moved"`
	MaxMoved   float64 `json:"max_moved"`
	// Layout is the alive-sensor layout at the sample time, captured only
	// when TraceOptions.Layouts is set.
	Layout []Point `json:"layout,omitempty"`
}

// Convergence summarizes how one traced run approached its final state —
// the paper's §6 evaluation is about these transients, not just the end
// point. All times are simulation seconds read off the trace grid, so
// their resolution is the trace stride.
type Convergence struct {
	// TimeTo90Coverage / TimeTo99Coverage are the first sample times at
	// which coverage reached 90% / 99% of the run's final coverage.
	TimeTo90Coverage float64 `json:"t90"`
	TimeTo99Coverage float64 `json:"t99"`
	// TimeToConnectivity is the earliest sample time from which every
	// alive sensor stayed base-station reachable through the end of the
	// trace; -1 when the final sample is not fully connected.
	TimeToConnectivity float64 `json:"tconn"`
	// SettlingTime is the earliest sample time from which no sensor moved
	// (and no distance accrued) through the end of the trace; the final
	// sample time when the run never settled.
	SettlingTime float64 `json:"settle"`
	// TotalMovedAtSettle / MaxMovedAtSettle are the cumulative movement
	// totals at the settling sample — the movement cost of convergence.
	TotalMovedAtSettle float64 `json:"settle_total_moved"`
	MaxMovedAtSettle   float64 `json:"settle_max_moved"`
}

// ConvergenceFrom derives the convergence metrics of one trace series.
// It returns nil for an empty trace (untraced runs, baselines with no
// event loop), so Result.Convergence stays absent exactly when
// Result.Trace is.
func ConvergenceFrom(trace []TraceSample) *Convergence {
	if len(trace) == 0 {
		return nil
	}
	final := trace[len(trace)-1]
	c := &Convergence{
		TimeTo90Coverage:   final.Time,
		TimeTo99Coverage:   final.Time,
		TimeToConnectivity: -1,
		SettlingTime:       final.Time,
		TotalMovedAtSettle: final.TotalMoved,
		MaxMovedAtSettle:   final.MaxMoved,
	}
	// Coverage thresholds scan forward: the final sample trivially
	// satisfies both, so the loops always terminate with a valid time.
	for _, s := range trace {
		if s.Coverage >= 0.9*final.Coverage {
			c.TimeTo90Coverage = s.Time
			break
		}
	}
	for _, s := range trace {
		if s.Coverage >= 0.99*final.Coverage {
			c.TimeTo99Coverage = s.Time
			break
		}
	}
	// Connectivity and settling scan backward for the earliest suffix in
	// which the condition holds through the end — a transiently connected
	// (or transiently still) prefix must not count as converged.
	if final.Connected == final.Alive {
		for i := len(trace) - 1; i >= 0; i-- {
			if trace[i].Connected != trace[i].Alive {
				break
			}
			c.TimeToConnectivity = trace[i].Time
		}
	}
	for i := len(trace) - 1; i >= 0; i-- {
		s := trace[i]
		if s.Moving != 0 || s.TotalMoved != final.TotalMoved {
			break
		}
		c.SettlingTime = s.Time
	}
	return c
}

// tracer samples a world's telemetry on the engine clock. attach
// schedules it; the collected series is read from samples afterwards.
type tracer struct {
	cfg     Config
	f       *ifield.Field
	samples []TraceSample
	// wt is the incremental coverage tracker (nil when the engine is
	// disabled): seeded on the first sample, then updated per sample in
	// O(moved sensors × disk window) instead of O(grid × N).
	wt *worldTracker
}

// attach schedules periodic sampling on the world's engine, from t=0 to
// the horizon. The sampler reads world state and computes coverage but
// never consumes engine randomness, keeping traced runs bit-identical to
// untraced ones.
func (tr *tracer) attach(w *core.World, horizon float64) {
	stride := tr.cfg.Trace.stride(w.P.Period)
	layouts := tr.cfg.Trace.Layouts
	layoutStride := tr.cfg.Trace.LayoutStride
	if layoutStride < 1 {
		layoutStride = 1
	}
	est := tr.cfg.estimatorFor(tr.f)
	if coverage.IncrementalEnabled() {
		tr.wt = newWorldTracker(est, tr.cfg.Rs, len(w.Sensors), seedWorkers(tr.cfg))
	}
	var cs core.TraceSample
	w.E.ScheduleEvery(0, stride, func() bool {
		layout := w.SampleTrace(&cs)
		var cov float64
		if tr.wt != nil {
			tr.wt.sync(w)
			cov = tr.wt.t.Fraction()
		} else {
			cov = est.Fraction(layout, tr.cfg.Rs)
		}
		sample := TraceSample{
			Time:       cs.Time,
			Coverage:   cov,
			Connected:  cs.Connected,
			Alive:      cs.Alive,
			Moving:     cs.Moving,
			TotalMoved: cs.TotalMoved,
			MaxMoved:   cs.MaxMoved,
		}
		if layouts && len(tr.samples)%layoutStride == 0 {
			// The world's scratch layout is only valid until the next
			// sample; the persisted copy is the sampler's own.
			sample.Layout = toPoints(layout)
		}
		tr.samples = append(tr.samples, sample)
		// Keep rescheduling while more simulated time remains; the engine
		// drops whatever is still queued past the final RunUntil.
		return cs.Time < horizon
	})
}
