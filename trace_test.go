package mobisense

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"
)

func TestTraceSamplesCollected(t *testing.T) {
	cfg := quickConfig(SchemeCPVF)
	cfg.Trace = &TraceOptions{Stride: 10}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Samples at t = 0, 10, ..., Duration inclusive.
	want := int(cfg.Duration/10) + 1
	if len(res.Trace) != want {
		t.Fatalf("trace has %d samples, want %d", len(res.Trace), want)
	}
	for i, s := range res.Trace {
		if s.Time != float64(i)*10 {
			t.Fatalf("sample %d at t=%g, want %g", i, s.Time, float64(i)*10)
		}
		if s.Coverage <= 0 || s.Coverage > 1 {
			t.Fatalf("sample %d coverage = %g", i, s.Coverage)
		}
		if s.Alive != cfg.N {
			t.Fatalf("sample %d alive = %d, want %d", i, s.Alive, cfg.N)
		}
		if s.Connected < 0 || s.Connected > s.Alive {
			t.Fatalf("sample %d connected = %d", i, s.Connected)
		}
		if s.MaxMoved > s.TotalMoved {
			t.Fatalf("sample %d max %g > total %g", i, s.MaxMoved, s.TotalMoved)
		}
	}
	// Cumulative distance is monotone over the run.
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].TotalMoved < res.Trace[i-1].TotalMoved {
			t.Fatalf("total moved decreased at sample %d", i)
		}
	}
	last := res.Trace[len(res.Trace)-1]
	if got := last.TotalMoved / float64(cfg.N); !almostEq(got, res.AvgMoveDistance) {
		t.Errorf("final trace distance %g != result %g", got, res.AvgMoveDistance)
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// TestTraceDoesNotPerturbRun is the trace subsystem's core contract: the
// sampler is a pure observer, so a traced run must produce bit-identical
// metrics and layouts to the same run untraced.
func TestTraceDoesNotPerturbRun(t *testing.T) {
	for _, s := range []Scheme{SchemeCPVF, SchemeFLOOR} {
		plain, err := Run(quickConfig(s))
		if err != nil {
			t.Fatal(err)
		}
		// Layout snapshots copy state the sampler already reads, so they
		// must be exactly as RNG-silent as the scalar telemetry.
		for _, layouts := range []bool{false, true} {
			cfg := quickConfig(s)
			cfg.Trace = &TraceOptions{Stride: 1, Layouts: layouts}
			traced, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if plain.Coverage != traced.Coverage || plain.AvgMoveDistance != traced.AvgMoveDistance ||
				plain.Messages != traced.Messages || plain.ConvergenceTime != traced.ConvergenceTime {
				t.Errorf("%s (layouts=%t): tracing changed run metrics", s, layouts)
			}
			if !reflect.DeepEqual(plain.Positions, traced.Positions) {
				t.Errorf("%s (layouts=%t): tracing changed the final layout", s, layouts)
			}
		}
	}
}

func TestTraceDefaultStrideIsPeriod(t *testing.T) {
	cfg := quickConfig(SchemeCPVF)
	cfg.Duration = 20
	cfg.Trace = &TraceOptions{}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := int(cfg.Duration/cfg.Period) + 1; len(res.Trace) != want {
		t.Fatalf("trace has %d samples, want %d (period default)", len(res.Trace), want)
	}
}

func TestStoreTraceRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	cfg := quickConfig(SchemeCPVF)
	cfg.Duration = 30
	cfg.Trace = &TraceOptions{Stride: 10}
	sw := Sweep{Base: cfg, Repeats: 2}

	res, err := sw.Run(context.Background(), BatchOptions{
		Workers: 2,
		Store:   &Store{Dir: dir, Trace: true},
	})
	if err != nil {
		t.Fatal(err)
	}

	data, err := LoadStores(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Runs) != 2 {
		t.Fatalf("loaded %d runs, want 2", len(data.Runs))
	}
	for i, br := range data.Runs {
		if len(br.Result.Trace) == 0 {
			t.Fatalf("run %d replayed without its trace", i)
		}
		if !reflect.DeepEqual(br.Result.Trace, res.Runs[i].Result.Trace) {
			t.Fatalf("run %d trace did not survive the round trip", i)
		}
	}

	// Resuming the store without the trace flag must be refused: a store
	// is uniformly traced or untraced.
	_, err = sw.Run(context.Background(), BatchOptions{
		Store: &Store{Dir: dir, Resume: true},
	})
	if err == nil {
		t.Fatal("resume across a trace-flag change was accepted")
	}
}

func TestUntracedStoreOmitsTraceFlag(t *testing.T) {
	// Untraced stores must keep writing byte-identical manifests and
	// records: the trace fields are omitempty and the config fingerprint
	// only changes when tracing is on.
	cfg := quickConfig(SchemeVOR)
	a, b := configFingerprint(cfg), configFingerprint(cfg)
	if a != b {
		t.Fatal("fingerprint not deterministic")
	}
	cfg.Trace = &TraceOptions{Stride: 5}
	traced := configFingerprint(cfg)
	if traced == a {
		t.Fatal("trace stride not covered by the config fingerprint")
	}
	// The layouts marker appends only when set, so traced fingerprints
	// from before the snapshot option stay stable.
	cfg.Trace.Layouts = true
	if configFingerprint(cfg) == traced {
		t.Fatal("layout snapshots not covered by the config fingerprint")
	}
	withLayouts := configFingerprint(cfg)
	// LayoutStride <= 1 means "every sample" — identical stored bytes, so
	// it must not perturb the fingerprint; thinning (> 1) must.
	cfg.Trace.LayoutStride = 1
	if configFingerprint(cfg) != withLayouts {
		t.Fatal("layout stride 1 changed the fingerprint of an identical store")
	}
	cfg.Trace.LayoutStride = 4
	if configFingerprint(cfg) == withLayouts {
		t.Fatal("layout thinning not covered by the config fingerprint")
	}
}

// TestTraceLayoutStride checks layout decimation: scalar telemetry keeps
// full stride resolution while Layout snapshots land only on every
// LayoutStride-th sample.
func TestTraceLayoutStride(t *testing.T) {
	full := quickConfig(SchemeCPVF)
	full.Trace = &TraceOptions{Stride: 10, Layouts: true}
	fullRes, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}

	cfg := quickConfig(SchemeCPVF)
	cfg.Trace = &TraceOptions{Stride: 10, Layouts: true, LayoutStride: 3}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != len(fullRes.Trace) {
		t.Fatalf("thinning layouts changed the sample count: %d vs %d", len(res.Trace), len(fullRes.Trace))
	}
	for i, s := range res.Trace {
		f := fullRes.Trace[i]
		if i%3 == 0 {
			if !reflect.DeepEqual(s.Layout, f.Layout) {
				t.Fatalf("sample %d: kept layout differs from the unthinned run", i)
			}
			if len(s.Layout) == 0 {
				t.Fatalf("sample %d: layout missing on a stride boundary", i)
			}
		} else if s.Layout != nil {
			t.Fatalf("sample %d: layout captured between stride boundaries", i)
		}
		s.Layout, f.Layout = nil, nil
		if !reflect.DeepEqual(s, f) {
			t.Fatalf("sample %d: thinning layouts perturbed scalar telemetry", i)
		}
	}

	bad := quickConfig(SchemeCPVF)
	bad.Trace = &TraceOptions{Stride: 10, LayoutStride: -1}
	if _, err := Run(bad); err == nil {
		t.Fatal("negative layout stride was accepted")
	}
	bad.Trace = &TraceOptions{Stride: 10, LayoutStride: 2}
	if _, err := Run(bad); err == nil {
		t.Fatal("layout stride without Layouts was accepted")
	}
}
