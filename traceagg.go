package mobisense

import "sort"

// Per-axis-point trace aggregation: the per-run telemetry series of a
// sweep's repeats, aligned on the sampling-stride grid and summarized
// into mean curves with CI bands — the "coverage over time" figures of
// the paper's evaluation, computed across repeats instead of from one
// run. Grouping mirrors aggregateRuns (full axis tuple in the key) and
// iteration stays in run-index order, so the output is bit-identical
// whatever the worker count and however the sweep was sharded.

// TracePoint is one time slot of an aggregated trace: the summary of
// every group run's sample at that simulation time.
type TracePoint struct {
	// Time is the sample's simulation clock in seconds.
	Time float64 `json:"t"`
	// Runs is the number of runs contributing a sample at this time (runs
	// whose horizon ended earlier — stabilization, failures — drop out of
	// later points).
	Runs int `json:"runs"`
	// Summaries of the per-run telemetry at this time.
	Coverage   MetricSummary `json:"coverage"`
	Connected  MetricSummary `json:"connected"`
	Moving     MetricSummary `json:"moving"`
	TotalMoved MetricSummary `json:"total_moved"`
	MaxMoved   MetricSummary `json:"max_moved"`
}

// TraceAggregate is the aggregated telemetry curve of one
// (scheme, scenario, N, axis tuple) group: mean trajectories with CI
// bands over the group's traced runs.
type TraceAggregate struct {
	Scheme   Scheme      `json:"scheme"`
	Scenario string      `json:"scenario,omitempty"`
	N        int         `json:"n"`
	Axes     []AxisValue `json:"axes,omitempty"`
	// Runs is the number of traced runs in the group.
	Runs int `json:"runs"`
	// Points are the aligned time slots in ascending time order.
	Points []TracePoint `json:"points"`
}

// AggregateTraces aligns the trace series of a result set on their
// sampling grids and summarizes them per (scheme, scenario, N, axis
// tuple) group, in the groups' first-seen run-index order. Runs without
// a trace (untraced sweeps, baselines, failed runs) contribute nothing;
// when no run carries a trace the result is nil.
func AggregateTraces(runs []BatchResult) []TraceAggregate {
	type key struct {
		scheme   Scheme
		scenario string
		n        int
		axes     string
	}
	var order []key
	groups := map[key][][]TraceSample{}
	axesOf := map[key][]AxisValue{}
	for _, r := range runs {
		if r.Err != nil || len(r.Result.Trace) == 0 {
			continue
		}
		k := key{r.Spec.Scheme, r.Spec.Scenario, r.Spec.N, axisTupleKey(r.Spec.Axes)}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
			axesOf[k] = r.Spec.Axes
		}
		groups[k] = append(groups[k], r.Result.Trace)
	}
	if len(order) == 0 {
		return nil
	}
	out := make([]TraceAggregate, 0, len(order))
	for _, k := range order {
		traces := groups[k]
		out = append(out, TraceAggregate{
			Scheme:   k.scheme,
			Scenario: k.scenario,
			N:        k.n,
			Axes:     axesOf[k],
			Runs:     len(traces),
			Points:   alignTraces(traces),
		})
	}
	return out
}

// alignTraces merges a group's trace series on the union of their sample
// times and summarizes each slot over the runs that sampled it. All runs
// of a group share a config (and therefore a stride), so their times lie
// on one grid and match exactly; runs differ only in how far their
// horizon reached.
func alignTraces(traces [][]TraceSample) []TracePoint {
	seen := map[float64]bool{}
	var times []float64
	for _, tr := range traces {
		for _, s := range tr {
			if !seen[s.Time] {
				seen[s.Time] = true
				times = append(times, s.Time)
			}
		}
	}
	sort.Float64s(times)

	points := make([]TracePoint, 0, len(times))
	// One ascending cursor per run: each series is visited once overall,
	// keeping alignment O(samples), not O(points × runs).
	cursors := make([]int, len(traces))
	cov := make([]float64, 0, len(traces))
	conn := make([]float64, 0, len(traces))
	mov := make([]float64, 0, len(traces))
	tot := make([]float64, 0, len(traces))
	max := make([]float64, 0, len(traces))
	for _, t := range times {
		cov, conn, mov, tot, max = cov[:0], conn[:0], mov[:0], tot[:0], max[:0]
		for ri, tr := range traces {
			for cursors[ri] < len(tr) && tr[cursors[ri]].Time < t {
				cursors[ri]++
			}
			if cursors[ri] < len(tr) && tr[cursors[ri]].Time == t {
				s := tr[cursors[ri]]
				cov = append(cov, s.Coverage)
				conn = append(conn, float64(s.Connected))
				mov = append(mov, float64(s.Moving))
				tot = append(tot, s.TotalMoved)
				max = append(max, s.MaxMoved)
				cursors[ri]++
			}
		}
		points = append(points, TracePoint{
			Time:       t,
			Runs:       len(cov),
			Coverage:   metricSummary(cov),
			Connected:  metricSummary(conn),
			Moving:     metricSummary(mov),
			TotalMoved: metricSummary(tot),
			MaxMoved:   metricSummary(max),
		})
	}
	return points
}

// ConvergenceAggregate summarizes the convergence metrics over one
// aggregate group's traced runs.
type ConvergenceAggregate struct {
	// Runs is the number of traced runs summarized.
	Runs int `json:"runs"`
	// TimeTo90Coverage / TimeTo99Coverage / SettlingTime summarize the
	// per-run convergence times over all traced runs.
	TimeTo90Coverage MetricSummary `json:"t90"`
	TimeTo99Coverage MetricSummary `json:"t99"`
	SettlingTime     MetricSummary `json:"settle"`
	// TotalMovedAtSettle / MaxMovedAtSettle summarize the movement cost
	// at convergence.
	TotalMovedAtSettle MetricSummary `json:"settle_total_moved"`
	MaxMovedAtSettle   MetricSummary `json:"settle_max_moved"`
	// ConnectedRuns counts the runs that reached stable full
	// connectivity; TimeToConnectivity summarizes only those (runs that
	// never connected have no finite time to report).
	ConnectedRuns      int           `json:"connected_runs"`
	TimeToConnectivity MetricSummary `json:"tconn"`
}

// aggregateConvergence summarizes a group's per-run convergence metrics,
// or returns nil when no run in the group carried any.
func aggregateConvergence(runs []BatchResult) *ConvergenceAggregate {
	var t90, t99, settle, tot, max, tconn []float64
	for _, r := range runs {
		c := r.Result.Convergence
		if r.Err != nil || c == nil {
			continue
		}
		t90 = append(t90, c.TimeTo90Coverage)
		t99 = append(t99, c.TimeTo99Coverage)
		settle = append(settle, c.SettlingTime)
		tot = append(tot, c.TotalMovedAtSettle)
		max = append(max, c.MaxMovedAtSettle)
		if c.TimeToConnectivity >= 0 {
			tconn = append(tconn, c.TimeToConnectivity)
		}
	}
	if len(t90) == 0 {
		return nil
	}
	return &ConvergenceAggregate{
		Runs:               len(t90),
		TimeTo90Coverage:   metricSummary(t90),
		TimeTo99Coverage:   metricSummary(t99),
		SettlingTime:       metricSummary(settle),
		TotalMovedAtSettle: metricSummary(tot),
		MaxMovedAtSettle:   metricSummary(max),
		ConnectedRuns:      len(tconn),
		TimeToConnectivity: metricSummary(tconn),
	}
}
