package mobisense

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"
)

// synthTrace builds a simple coverage ramp: coverage climbs linearly to
// 1.0 at t=60, everything connected from t=40, movement stops at t=50.
func synthTrace() []TraceSample {
	var out []TraceSample
	for t := 0.0; t <= 100; t += 10 {
		s := TraceSample{Time: t, Alive: 10, Coverage: t / 60}
		if s.Coverage > 1 {
			s.Coverage = 1
		}
		if t >= 40 {
			s.Connected = 10
		} else {
			s.Connected = 5
		}
		if t < 50 {
			s.Moving = 3
			s.TotalMoved = 10 * t
			s.MaxMoved = t
		} else {
			s.TotalMoved = 500
			s.MaxMoved = 50
		}
		out = append(out, s)
	}
	return out
}

func TestConvergenceFrom(t *testing.T) {
	c := ConvergenceFrom(synthTrace())
	if c == nil {
		t.Fatal("no convergence from a non-empty trace")
	}
	// Final coverage 1.0: 90% first reached at t=60 (0.9 exactly at t=54,
	// grid sample 60 has 1.0; t=50 has 0.833).
	if c.TimeTo90Coverage != 60 {
		t.Errorf("t90 = %g, want 60", c.TimeTo90Coverage)
	}
	if c.TimeTo99Coverage != 60 {
		t.Errorf("t99 = %g, want 60", c.TimeTo99Coverage)
	}
	if c.TimeToConnectivity != 40 {
		t.Errorf("tconn = %g, want 40", c.TimeToConnectivity)
	}
	if c.SettlingTime != 50 {
		t.Errorf("settle = %g, want 50", c.SettlingTime)
	}
	if c.TotalMovedAtSettle != 500 || c.MaxMovedAtSettle != 50 {
		t.Errorf("settle movement = %g/%g, want 500/50", c.TotalMovedAtSettle, c.MaxMovedAtSettle)
	}
}

func TestConvergenceEdgeCases(t *testing.T) {
	if ConvergenceFrom(nil) != nil {
		t.Error("empty trace produced convergence metrics")
	}
	// A run whose final layout is disconnected never "reaches"
	// connectivity, whatever transient connectivity it saw mid-run.
	tr := synthTrace()
	tr[len(tr)-1].Connected = 9
	if c := ConvergenceFrom(tr); c.TimeToConnectivity != -1 {
		t.Errorf("disconnected final sample: tconn = %g, want -1", c.TimeToConnectivity)
	}
	// A transiently-still prefix must not count as settled: movement at
	// the very last sample pins the settling time there.
	tr = synthTrace()
	last := &tr[len(tr)-1]
	last.Moving = 1
	if c := ConvergenceFrom(tr); c.SettlingTime != last.Time {
		t.Errorf("still-moving run settled at %g, want %g", c.SettlingTime, last.Time)
	}
}

func TestTraceStrideValidation(t *testing.T) {
	for _, bad := range []float64{-1, nan(), inf()} {
		cfg := quickConfig(SchemeCPVF)
		cfg.Trace = &TraceOptions{Stride: bad}
		if _, err := Run(cfg); err == nil {
			t.Errorf("stride %g was accepted", bad)
		}
	}
}

func nan() float64 { z := 0.0; return z / z }
func inf() float64 { z := 0.0; return 1 / z }

// TestAggregateTracesDeterministic is the tentpole contract: aggregated
// trace curves are bit-identical whatever the worker count and however
// the sweep was sharded.
func TestAggregateTracesDeterministic(t *testing.T) {
	base := quickConfig(SchemeCPVF)
	base.Duration = 30
	base.Trace = &TraceOptions{Stride: 10}
	sw := Sweep{Base: base, Schemes: []Scheme{SchemeCPVF, SchemeFLOOR}, Repeats: 2}

	run := func(workers int) SweepResult {
		t.Helper()
		sr, err := sw.Run(context.Background(), BatchOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return sr
	}
	one, many := run(1), run(4)
	aggOne, aggMany := AggregateTraces(one.Runs), AggregateTraces(many.Runs)
	if !reflect.DeepEqual(aggOne, aggMany) {
		t.Fatal("aggregated traces differ across worker counts")
	}
	if len(aggOne) != 2 {
		t.Fatalf("got %d trace groups, want 2 (one per scheme)", len(aggOne))
	}
	for _, tr := range aggOne {
		if tr.Runs != 2 {
			t.Errorf("%s group has %d runs, want 2", tr.Scheme, tr.Runs)
		}
		if len(tr.Points) == 0 {
			t.Errorf("%s group has no points", tr.Scheme)
		}
		for i, p := range tr.Points {
			if p.Runs != 2 {
				t.Errorf("%s point %d summarizes %d runs, want 2", tr.Scheme, i, p.Runs)
			}
			if i > 0 && p.Time <= tr.Points[i-1].Time {
				t.Errorf("%s points not in ascending time order", tr.Scheme)
			}
		}
	}

	// Sharded stores, merged, reproduce the unsharded aggregation exactly.
	dirs := []string{filepath.Join(t.TempDir(), "s0"), filepath.Join(t.TempDir(), "s1")}
	for i, dir := range dirs {
		_, err := sw.Run(context.Background(), BatchOptions{
			Shard: Shard{Index: i, Count: 2},
			Store: &Store{Dir: dir, Trace: true},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	data, err := LoadStores(dirs...)
	if err != nil {
		t.Fatal(err)
	}
	if got := AggregateTraces(data.Runs); !reflect.DeepEqual(got, aggOne) {
		t.Fatal("shard-merged trace aggregation differs from the unsharded one")
	}
	// The run-level aggregates carry the same determinism for the
	// convergence summaries.
	if !reflect.DeepEqual(one.Aggregates, many.Aggregates) ||
		!reflect.DeepEqual(data.Aggregates, one.Aggregates) {
		t.Fatal("aggregates (with convergence) differ across worker counts or sharding")
	}
	for _, a := range one.Aggregates {
		if a.Convergence == nil {
			t.Fatalf("%s aggregate has no convergence summary", a.Scheme)
		}
		if a.Convergence.Runs != 2 {
			t.Errorf("%s convergence summarizes %d runs, want 2", a.Scheme, a.Convergence.Runs)
		}
	}
}

func TestAggregateTracesSkipsUntraced(t *testing.T) {
	// Baselines yield no trace; a mixed sweep aggregates only the traced
	// groups, and a fully untraced result set aggregates to nil.
	base := quickConfig(SchemeCPVF)
	base.Duration = 30
	base.Trace = &TraceOptions{Stride: 10}
	base.Rc = 240 // VOR needs a large rc on the quick field
	sw := Sweep{Base: base, Schemes: []Scheme{SchemeCPVF, SchemeVOR}, Repeats: 1}
	sr, err := sw.Run(context.Background(), BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	traces := AggregateTraces(sr.Runs)
	if len(traces) != 1 || traces[0].Scheme != SchemeCPVF {
		t.Fatalf("mixed sweep aggregated %d trace groups, want 1 (cpvf only)", len(traces))
	}
	for _, a := range sr.Aggregates {
		if a.Scheme == SchemeVOR && a.Convergence != nil {
			t.Error("untraced VOR group grew a convergence summary")
		}
	}
	if AggregateTraces(nil) != nil {
		t.Error("empty run set aggregated to non-nil")
	}
}

func TestTraceLayoutsRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	cfg := quickConfig(SchemeCPVF)
	cfg.Duration = 30
	cfg.Trace = &TraceOptions{Stride: 10, Layouts: true}
	sw := Sweep{Base: cfg, Repeats: 2}
	sr, err := sw.Run(context.Background(), BatchOptions{
		Store: &Store{Dir: dir, Trace: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, br := range sr.Runs {
		for j, s := range br.Result.Trace {
			if len(s.Layout) != s.Alive {
				t.Fatalf("run %d sample %d has %d layout points, want %d", i, j, len(s.Layout), s.Alive)
			}
		}
		if br.Result.Convergence == nil {
			t.Fatalf("run %d has no convergence metrics", i)
		}
	}
	// Final sample's layout matches the run's final positions.
	last := sr.Runs[0].Result.Trace[len(sr.Runs[0].Result.Trace)-1]
	if !reflect.DeepEqual(last.Layout, sr.Runs[0].Result.Positions) {
		t.Error("final trace layout differs from the result's final positions")
	}

	data, err := LoadStores(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, br := range data.Runs {
		if !reflect.DeepEqual(br.Result.Trace, sr.Runs[i].Result.Trace) {
			t.Fatalf("run %d trace (with layouts) did not survive the round trip", i)
		}
		if !reflect.DeepEqual(br.Result.Convergence, sr.Runs[i].Result.Convergence) {
			t.Fatalf("run %d convergence did not survive the round trip", i)
		}
	}

	// The manifest records the snapshot mode, and resuming without it is
	// refused like any other store-shape change.
	plain := sw
	plain.Base.Trace = &TraceOptions{Stride: 10}
	if _, err := plain.Run(context.Background(), BatchOptions{
		Store: &Store{Dir: dir, Resume: true, Trace: true},
	}); err == nil {
		t.Fatal("resume across a trace-layouts change was accepted")
	}
}
